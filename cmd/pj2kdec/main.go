// Command pj2kdec decompresses a JPEG2000 codestream produced by pj2kenc
// back into a PGM (grayscale) or PPM (color, for Csiz=3 streams) image.
//
//	pj2kdec -in image.j2k -out image.pgm|image.ppm [-layers 0] [-reduce 0] \
//	        [-workers 0] [-resilient] [-verbose]
//
// With -resilient, a damaged codestream decodes best-effort: corrupt packets
// and code-blocks are concealed, a damage summary goes to stderr, and the
// exit status stays 0 as long as an image came out (only an unrecoverable
// stream — nothing to decode at all — exits nonzero).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

func main() {
	in := flag.String("in", "", "input codestream file")
	out := flag.String("out", "", "output PGM (1 component) or PPM (3 components) file")
	layers := flag.Int("layers", 0, "decode only the first N quality layers (0 = all)")
	reduce := flag.Int("reduce", 0, "discard the N highest resolution levels, decoding at 1/2^N scale")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	depth := flag.Int("depth", 8, "output bit depth (8 or 12/16 for medical imagery)")
	resilient := flag.Bool("resilient", false, "conceal damaged packets/code-blocks instead of failing; damage report on stderr")
	verbose := flag.Bool("verbose", false, "print the per-stage timing breakdown")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	// The codestream stays on disk: the decoder reads the headers, the
	// tile-part chain, and the tile bodies through the file source directly,
	// so decoding a window of a huge scene never pulls the whole file in.
	src, err := t2.OpenFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	dec := jp2k.NewDecoder()
	pl, err := dec.DecodePlanarSource(src, jp2k.DecodeOptions{
		MaxLayers:     *layers,
		DiscardLevels: *reduce,
		Workers:       *workers,
		VertMode:      dwt.VertBlocked,
		Resilient:     *resilient,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxval := 255
	if *depth > 8 {
		maxval = 1<<uint(*depth) - 1
	} else {
		pl.ClampTo8()
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	switch pl.NComp() {
	case 1:
		err = raster.WritePGM(f, pl.Comps[0], maxval)
	case 3:
		err = raster.WritePPM(f, pl, maxval)
	default:
		err = fmt.Errorf("pj2kdec: no PNM format for %d components", pl.NComp())
	}
	if err != nil {
		log.Fatal(err)
	}
	if *resilient {
		if dmg := dec.Damage(); dmg.Damaged() {
			fmt.Fprintf(os.Stderr, "pj2kdec: %s: %s\n", *in, dmg)
			for _, td := range dmg.Tiles {
				// IO damage is a different operational problem than corrupt
				// bits (fix the storage, not the file), so it gets its own
				// marker on the tile line.
				io := ""
				if td.IOUnreadable > 0 {
					io = "; body UNREADABLE (IO) — tile concealed"
				}
				fmt.Fprintf(os.Stderr, "  tile %d: %d bad packets, %d resynced, %d lost, "+
					"%d blocks concealed, %d passes dropped%s\n",
					td.Tile, td.BadPackets, td.PacketsResynced, td.PacketsLost,
					td.BlocksConcealed, td.PassesDropped, io)
			}
		}
	}
	fmt.Printf("%s: %dx%dx%d decoded\n", *out, pl.Width(), pl.Height(), pl.NComp())
	if *verbose {
		st := dec.Stats()
		fmt.Printf("  %d bytes in, %d tiles, %d code-blocks\n", st.BytesIn, st.Tiles, st.CodeBlocks)
		if p, _, err := t2.ScanCodestream(src); err == nil {
			if s := coderStyles(p); s != "" {
				fmt.Printf("  coder styles: %s\n", s)
			}
		}
		fmt.Print(st.Timings.Breakdown())
	}
}

// coderStyles renders the COD code-block styles of a parsed stream the way
// pj2kenc's -coder flag spells them.
func coderStyles(p t2.Params) string {
	var s []string
	if p.Bypass {
		s = append(s, "bypass")
	}
	if p.TermAll {
		s = append(s, "termall")
	}
	if p.ResetCtx {
		s = append(s, "reset")
	}
	if p.Causal {
		s = append(s, "causal")
	}
	if p.SegSym {
		s = append(s, "segsym")
	}
	return strings.Join(s, ",")
}
