// Command pj2kdec decompresses a JPEG2000 codestream produced by pj2kenc
// back into a PGM (grayscale) or PPM (color, for Csiz=3 streams) image.
//
//	pj2kdec -in image.j2k -out image.pgm|image.ppm [-layers 0] [-reduce 0] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

func main() {
	in := flag.String("in", "", "input codestream file")
	out := flag.String("out", "", "output PGM (1 component) or PPM (3 components) file")
	layers := flag.Int("layers", 0, "decode only the first N quality layers (0 = all)")
	reduce := flag.Int("reduce", 0, "discard the N highest resolution levels, decoding at 1/2^N scale")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	depth := flag.Int("depth", 8, "output bit depth (8 or 12/16 for medical imagery)")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := jp2k.DecodePlanar(data, jp2k.DecodeOptions{
		MaxLayers:     *layers,
		DiscardLevels: *reduce,
		Workers:       *workers,
		VertMode:      dwt.VertBlocked,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxval := 255
	if *depth > 8 {
		maxval = 1<<uint(*depth) - 1
	} else {
		pl.ClampTo8()
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	switch pl.NComp() {
	case 1:
		err = raster.WritePGM(f, pl.Comps[0], maxval)
	case 3:
		err = raster.WritePPM(f, pl, maxval)
	default:
		err = fmt.Errorf("pj2kdec: no PNM format for %d components", pl.NComp())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %dx%dx%d decoded\n", *out, pl.Width(), pl.Height(), pl.NComp())
}
