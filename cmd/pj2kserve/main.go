// Command pj2kserve serves JPEG2000 codestreams progressively over HTTP:
// windowed region decodes at any resolution/quality, layer-truncated
// codestream slices, and geometry/stats endpoints. Images are registered
// lazily at startup — only headers and the tile-part chain are read, tile
// bodies stay on disk — so memory scales with the tiles actually served, not
// the corpus; per-request work is bounded by the tiles a window touches and
// amortized by the decoded-tile cache.
//
//	pj2kserve -dir images/ [-addr :8732] [-cache-mb 256] [-tile-workers 1] \
//	          [-timeout 0] [-max-inflight 64] [-resilient] \
//	          [-io-retries 2] [-io-read-timeout 0] \
//	          [-pprof] [-trace-out trace.out]
//
// The hardening knobs: -timeout bounds each decode-bearing request (504 past
// the deadline), -max-inflight sheds excess load with 503 + Retry-After
// instead of queueing without bound, and -resilient serves damaged
// codestreams degraded (concealed tiles + damage counters in /stats) instead
// of failing them. The IO fault-tolerance knobs: -io-retries retries
// transient source-read failures with exponential backoff, and
// -io-read-timeout abandons (and retries) reads a stalled disk or mount
// never answers; an image whose source keeps failing is quarantined
// (503 + Retry-After) and re-probed in the background until it reads again.
//
// The observability knobs: -pprof mounts net/http/pprof under /debug/pprof/
// (off by default — profiles expose internals and cost CPU), and -trace-out
// records a runtime execution trace from startup until shutdown, for
// `go tool trace` inspection of scheduling across the decode pool. Both are
// opt-in; /metrics and /stats are always on.
//
// Endpoints (see internal/serve for the full contract):
//
//	GET /img/{id}?x0=&y0=&x1=&y1=&reduce=&layers=&format=pgm|raw
//	GET /img/{id}/info
//	GET /img/{id}/stream?layers=N
//	GET /stats | /metrics
//	GET /healthz | /readyz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/trace"
	"strings"
	"syscall"
	"time"

	"pj2k/internal/serve"
	"pj2k/internal/t2"
)

func main() {
	addr := flag.String("addr", ":8732", "listen address")
	dir := flag.String("dir", "", "directory of *.j2k codestreams to serve (id = basename)")
	cacheMB := flag.Int64("cache-mb", 256, "decoded-tile cache budget in MiB (0 disables caching)")
	tileWorkers := flag.Int("tile-workers", 1, "parallel workers per tile decode (request concurrency is separate)")
	maxMPix := flag.Int64("max-mpix", 64, "largest window in megapixels a single request may ask for")
	timeout := flag.Duration("timeout", 0, "per-request decode deadline (0 = unbounded)")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight,
		"max concurrently admitted decode requests before shedding with 503 (-1 = unbounded)")
	resilient := flag.Bool("resilient", false, "serve damaged codestreams degraded instead of failing them")
	ioRetries := flag.Int("io-retries", serve.DefaultIORetries,
		"retries per source read after a transient IO failure (0 disables retries)")
	ioReadTimeout := flag.Duration("io-read-timeout", 0,
		"per-read deadline on source IO; a stalled read is abandoned and retried (0 = unbounded)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceOut := flag.String("trace-out", "", "record a runtime execution trace to this file until shutdown")
	flag.Parse()

	store := serve.NewStore()
	n := 0
	if *dir != "" {
		var err error
		n, err = store.LoadDir(*dir)
		if err != nil {
			// LoadDir skips unloadable files and keeps going; what arrives
			// here is the joined per-file errors. One corrupt file is a
			// warning, not a reason to take the whole instance down — unless
			// nothing at all loaded, which the n == 0 exit below catches.
			log.Printf("warning: loading %s: %v", *dir, err)
		}
	}
	// Positional arguments are individual codestream files, registered as
	// lazy file-backed sources like -dir: startup reads headers and the
	// tile-part chain, tile bodies stay on disk until a request needs them.
	for _, path := range flag.Args() {
		src, err := t2.OpenFile(path)
		if err != nil {
			log.Fatal(err)
		}
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, err := store.AddSource(id, src); err != nil {
			src.Close()
			if !*resilient {
				log.Fatal(err)
			}
			log.Printf("warning: skipping %s: %v", path, err)
			continue
		}
		n++
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "pj2kserve: no images; pass -dir or codestream files")
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range store.IDs() {
		img, _ := store.Get(id)
		p := img.Params()
		log.Printf("serving %q: %dx%d, %d components, %d tiles, %d levels, %d layers, %d bytes",
			id, p.Width, p.Height, p.Components(), img.Index.NumTiles(), p.Levels, p.Layers, img.Size())
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // explicit off, not the package default
	}
	retries := *ioRetries
	if retries <= 0 {
		retries = -1 // explicit off, not the package default
	}
	srv := serve.New(store, serve.Options{
		CacheBytes:    cacheBytes,
		TileWorkers:   *tileWorkers,
		MaxPixels:     *maxMPix << 20,
		Timeout:       *timeout,
		MaxInFlight:   *maxInFlight,
		Resilient:     *resilient,
		IORetries:     retries,
		IOReadTimeout: *ioReadTimeout,
		Pprof:         *pprofOn,
	})

	// The execution trace runs until shutdown, so -trace-out needs the server
	// to stop cleanly on SIGINT/SIGTERM (trace.Stop flushes buffered events;
	// a killed process leaves a truncated, unreadable trace). Graceful
	// shutdown is the right behavior regardless, so it is unconditional.
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := trace.Start(f); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		traceFile = f
		log.Printf("tracing execution to %s", *traceOut)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	log.Printf("listening on %s (%d images, %d MiB tile cache, timeout %v, max in-flight %d, resilient %v, pprof %v)",
		*addr, n, *cacheMB, *timeout, *maxInFlight, *resilient, *pprofOn)

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		srv.Close()
		if err := store.Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				log.Printf("trace-out: %v", err)
			}
			log.Printf("trace written to %s", *traceOut)
		}
	}
}
