// Command pj2kserve serves JPEG2000 codestreams progressively over HTTP:
// windowed region decodes at any resolution/quality, layer-truncated
// codestream slices, and geometry/stats endpoints. Images are indexed once
// at startup; per-request work is bounded by the tiles a window touches and
// amortized by the decoded-tile cache.
//
//	pj2kserve -dir images/ [-addr :8732] [-cache-mb 256] [-tile-workers 1]
//
// Endpoints (see internal/serve for the full contract):
//
//	GET /img/{id}?x0=&y0=&x1=&y1=&reduce=&layers=&format=pgm|raw
//	GET /img/{id}/info
//	GET /img/{id}/stream?layers=N
//	GET /stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"pj2k/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8732", "listen address")
	dir := flag.String("dir", "", "directory of *.j2k codestreams to serve (id = basename)")
	cacheMB := flag.Int64("cache-mb", 256, "decoded-tile cache budget in MiB (0 disables caching)")
	tileWorkers := flag.Int("tile-workers", 1, "parallel workers per tile decode (request concurrency is separate)")
	maxMPix := flag.Int64("max-mpix", 64, "largest window in megapixels a single request may ask for")
	flag.Parse()

	store := serve.NewStore()
	n := 0
	if *dir != "" {
		var err error
		if n, err = store.LoadDir(*dir); err != nil {
			log.Fatalf("loading %s: %v", *dir, err)
		}
	}
	// Positional arguments are individual codestream files.
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, err := store.Add(id, data); err != nil {
			log.Fatal(err)
		}
		n++
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "pj2kserve: no images; pass -dir or codestream files")
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range store.IDs() {
		img, _ := store.Get(id)
		p := img.Params()
		log.Printf("serving %q: %dx%d, %d components, %d tiles, %d levels, %d layers, %d bytes",
			id, p.Width, p.Height, p.Components(), img.Index.NumTiles(), p.Levels, p.Layers, len(img.Data))
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // explicit off, not the package default
	}
	srv := serve.New(store, serve.Options{
		CacheBytes:  cacheBytes,
		TileWorkers: *tileWorkers,
		MaxPixels:   *maxMPix << 20,
	})
	log.Printf("listening on %s (%d images, %d MiB tile cache)", *addr, n, *cacheMB)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
