// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Run with -run all (default) or a comma-separated list
// of experiment ids: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig13 quant amdahl.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pj2k/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (fig2..fig13, quant, amdahl) or 'all'")
	big := flag.Bool("big", false, "include the full 16384-Kpixel sizes (slow)")
	flag.Parse()

	sizes := []int{256, 1024, 4096}
	filterSide := 2048
	modelKpix := 1024
	if *big {
		sizes = []int{256, 1024, 4096, 16384}
		filterSide = 4096
		modelKpix = 4096
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := 0
	exp := func(id string, fn func() *experiments.Table) {
		if all || want[id] {
			fn().Fprint(os.Stdout)
			ran++
		}
	}

	exp("fig2", func() *experiments.Table { return experiments.Fig2(sizes) })
	exp("fig3", func() *experiments.Table { return experiments.Fig3(sizes) })
	exp("fig4", experiments.Fig4)
	exp("fig5", experiments.Fig5)
	exp("fig6", func() *experiments.Table { return experiments.Fig6(sizes) })
	exp("fig7", func() *experiments.Table { return experiments.Fig7(filterSide) })
	exp("fig8", func() *experiments.Table { return experiments.Fig8(filterSide) })
	exp("fig9", func() *experiments.Table { return experiments.Fig9(sizes) })
	exp("fig10", experiments.Fig10)
	exp("fig11", experiments.Fig11)
	// The SGI figures always use the paper's 16384-Kpixel workload; the
	// model needs no host-side encoding, so this is cheap at any size.
	exp("fig12", func() *experiments.Table { return experiments.Fig12(16384) })
	exp("fig13", func() *experiments.Table { return experiments.Fig13(16384) })
	exp("quant", func() *experiments.Table { return experiments.QuantSpeedup(modelKpix) })
	exp("amdahl", func() *experiments.Table { return experiments.Amdahl(modelKpix) })

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id(s): %s\n", *run)
		os.Exit(2)
	}
}
