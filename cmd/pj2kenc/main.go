// Command pj2kenc compresses a PGM (grayscale) or PPM (color) image into a
// JPEG2000 codestream. Color input produces a standard Csiz=3 codestream with
// the inter-component transform applied (disable with -mct=false).
//
//	pj2kenc -in image.pgm|image.ppm -out image.j2k [-rate 1.0] [-lossless] \
//	        [-levels 5] [-tile 0] [-workers 0] [-mct] [-improved] [-verbose] \
//	        [-resilient | -sop -eph -segsym] [-coder bypass,termall,reset,causal]
//
// The resilience flags embed the JPEG2000 error-resilience tools — SOP
// packet framing, EPH header terminators, cleanup-pass segmentation symbols
// — so a decoder in resilient mode can detect damage, resynchronize and
// conceal instead of discarding the stream. -resilient turns on all three.
//
// -coder selects optional code-block coding styles (comma-separated):
// "bypass" (lazy mode: raw-coded significance/refinement passes after the
// fourth plane — faster, slightly larger), "termall" (terminate every pass,
// enabling exact truncation and parallel in-block decode with bypass),
// "reset" (reset contexts each pass), "causal" (stripe-causal contexts).
// All are signalled in the COD marker; any JPEG2000 Part 1 decoder reads
// the result.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

// parseCoder maps the -coder comma list onto jp2k.CoderOptions.
func parseCoder(spec string) (jp2k.CoderOptions, error) {
	var c jp2k.CoderOptions
	if spec == "" {
		return c, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "bypass":
			c.Bypass = true
		case "termall":
			c.TermAll = true
		case "reset":
			c.ResetCtx = true
		case "causal":
			c.Causal = true
		case "":
		default:
			return c, fmt.Errorf("unknown coder style %q (want bypass, termall, reset, causal)", tok)
		}
	}
	return c, nil
}

func main() {
	in := flag.String("in", "", "input image: binary PGM (P5) or PPM (P6)")
	out := flag.String("out", "", "output codestream file")
	rate := flag.Float64("rate", 1.0, "target bitrate in bits per pixel (lossy mode)")
	lossless := flag.Bool("lossless", false, "use the reversible 5/3 transform, no rate target")
	levels := flag.Int("levels", 5, "wavelet decomposition levels")
	tile := flag.Int("tile", 0, "tile size (0 = whole image; quality suffers, see paper Fig. 5)")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	mct := flag.Bool("mct", true, "apply the inter-component transform to color input")
	improved := flag.Bool("improved", true, "use the paper's improved (blocked) vertical filtering")
	verbose := flag.Bool("verbose", false, "print the per-stage timing breakdown")
	stats := flag.Bool("stats", false, "alias for -verbose")
	resilient := flag.Bool("resilient", false, "enable every error-resilience tool (-sop -eph -segsym)")
	sop := flag.Bool("sop", false, "frame each packet with a numbered SOP marker (resync anchor)")
	eph := flag.Bool("eph", false, "terminate each packet header with an EPH marker")
	segsym := flag.Bool("segsym", false, "embed segmentation symbols after each cleanup pass (corruption detector)")
	coder := flag.String("coder", "", "code-block coding styles, comma-separated: bypass,termall,reset,causal")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	coderOpts, err := parseCoder(*coder)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	pl, maxval, err := raster.ReadPNM(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	depth := 8
	if maxval > 255 {
		depth = 16
	}

	opts := jp2k.Options{
		Levels:   *levels,
		Workers:  *workers,
		BitDepth: depth,
		MCT:      *mct && pl.NComp() == 3,
		Coder:    coderOpts,
		Resilience: jp2k.ResilienceOptions{
			SOP:        *sop || *resilient,
			EPH:        *eph || *resilient,
			SegSymbols: *segsym || *resilient,
		},
	}
	if *improved {
		opts.VertMode = dwt.VertBlocked
	}
	if *lossless {
		opts.Kernel = dwt.Rev53
	} else {
		opts.Kernel = dwt.Irr97
		opts.LayerBPP = []float64{*rate}
	}
	if *tile > 0 {
		opts.TileW, opts.TileH = *tile, *tile
	}
	cs, st, err := jp2k.EncodePlanar(pl, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, cs, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %dx%dx%d -> %d bytes (%.3f bpp), %d code-blocks\n",
		*out, pl.Width(), pl.Height(), pl.NComp(), st.Bytes, st.BPP, st.CodeBlocks)
	if *verbose || *stats {
		fmt.Print(st.Timings.Breakdown())
	}
}
