// Command pj2kenc compresses a PGM image into a JPEG2000 codestream.
//
//	pj2kenc -in image.pgm -out image.j2k [-rate 1.0] [-lossless] \
//	        [-levels 5] [-tile 0] [-workers 0] [-improved] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

func main() {
	in := flag.String("in", "", "input PGM file (binary P5)")
	out := flag.String("out", "", "output codestream file")
	rate := flag.Float64("rate", 1.0, "target bitrate in bits per pixel (lossy mode)")
	lossless := flag.Bool("lossless", false, "use the reversible 5/3 transform, no rate target")
	levels := flag.Int("levels", 5, "wavelet decomposition levels")
	tile := flag.Int("tile", 0, "tile size (0 = whole image; quality suffers, see paper Fig. 5)")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	improved := flag.Bool("improved", true, "use the paper's improved (blocked) vertical filtering")
	stats := flag.Bool("stats", false, "print the per-stage runtime analysis")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	im, maxval, err := raster.ReadPGM(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	depth := 8
	if maxval > 255 {
		depth = 16
	}

	opts := jp2k.Options{
		Levels:   *levels,
		Workers:  *workers,
		BitDepth: depth,
	}
	if *improved {
		opts.VertMode = dwt.VertBlocked
	}
	if *lossless {
		opts.Kernel = dwt.Rev53
	} else {
		opts.Kernel = dwt.Irr97
		opts.LayerBPP = []float64{*rate}
	}
	if *tile > 0 {
		opts.TileW, opts.TileH = *tile, *tile
	}
	cs, st, err := jp2k.Encode(im, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, cs, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %dx%d -> %d bytes (%.3f bpp), %d code-blocks\n",
		*out, im.Width, im.Height, st.Bytes, st.BPP, st.CodeBlocks)
	if *stats {
		tm := st.Timings
		fmt.Printf("  setup      %8v\n  DWT        %8v (H %v / V %v)\n  quant      %8v\n"+
			"  tier-1     %8v\n  rate-alloc %8v\n  tier-2     %8v\n  stream-io  %8v\n  total      %8v\n",
			tm.Setup, tm.IntraComp, tm.DWTDetail.Horizontal, tm.DWTDetail.Vertical,
			tm.Quant, tm.Tier1, tm.RateAlloc, tm.Tier2, tm.StreamIO, tm.Total())
	}
}
