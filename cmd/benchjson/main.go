// Command benchjson runs the repo's benchmark suite and writes the results
// as JSON — the machine-readable perf snapshot each PR checks in (BENCH_PRn
// .json) so the trajectory of the paper-reproduction benchmarks is diffable
// across commits without re-running old binaries.
//
//	benchjson [-out BENCH_PR8.json] [-bench <pattern>] [-benchtime 20x] \
//	          [-count 1] [-pkg ./...]
//
// It shells out to `go test -run=NONE -bench=... -benchmem` (the exact suite
// ROADMAP.md's perf methodology names by default), parses the standard bench
// output lines, and emits the schema documented in ROADMAP.md: an environment
// header plus one entry per benchmark with ns/op, B/op and allocs/op.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// defaultPattern is the ROADMAP.md perf-methodology suite: the root-package
// wall-time benches plus the per-pass and per-coder attribution benches that
// live next to their subsystems (internal/t1's pass benches; the MQ and
// coder-mode benches in the root package).
const defaultPattern = "BenchmarkEncodeWorkers|BenchmarkDecode|BenchmarkDecodeRegion|" +
	"BenchmarkEncodeColor|BenchmarkDecodeColor|BenchmarkDWT53|BenchmarkT1Block|" +
	"BenchmarkT1Passes|BenchmarkT1DecodePasses|BenchmarkMQEncode|BenchmarkMQDecode|" +
	"BenchmarkEncodeCoderModes|BenchmarkDecodeCoderModes"

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchFile is the emitted document (schema documented in ROADMAP.md).
type benchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Date          string        `json:"date"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	NumCPU        int           `json:"num_cpu"`
	BenchTime     string        `json:"benchtime"`
	Pattern       string        `json:"pattern"`
	Pkg           string        `json:"pkg"`
	Results       []benchResult `json:"results"`
}

// benchLine matches standard `go test -bench -benchmem` output:
//
//	BenchmarkDecode/w=4/reduce=0-8   20   15661234 ns/op   123456 B/op   40 allocs/op
//
// The trailing -N (GOMAXPROCS) is split off the name so results compare
// across machines with different core counts.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output JSON file")
	bench := flag.String("bench", defaultPattern, "benchmark pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "20x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	flag.Parse()

	args := []string{"test", "-run=NONE", "-bench=" + *bench, "-benchmem",
		"-benchtime=" + *benchtime, "-count=" + strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %v: %v", args, err)
	}
	os.Stdout.Write(raw) // keep the human-readable output visible too

	results := parseBench(raw)
	if len(results) == 0 {
		log.Fatalf("no benchmark lines parsed from go test output")
	}

	doc := benchFile{
		SchemaVersion: 1,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		BenchTime:     *benchtime,
		Pattern:       *bench,
		Pkg:           *pkg,
		Results:       results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d results to %s\n", len(results), *out)
}

// parseBench extracts benchmark results from go test output. Repeated names
// (-count > 1) all appear; consumers aggregate as they see fit.
func parseBench(raw []byte) []benchResult {
	var results []benchResult
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	return results
}
