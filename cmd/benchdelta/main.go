// Command benchdelta compares two benchjson snapshots and reports per-bench
// ns/op deltas. CI runs it after the bench JSON step, diffing the fresh
// bench-ci.json against the checked-in BENCH_PRn.json, so a perf regression
// shows up as an annotation on the PR instead of a silent drift between perf
// PRs.
//
//	benchdelta -old BENCH_PR8.json -new bench-ci.json [-threshold 20] [-github]
//
// Output is one line per benchmark present in both files. ns/op regressions
// beyond the threshold (percent) are flagged, and an allocs/op count more
// than double the baseline is flagged separately — allocation counts are
// deterministic, so unlike wall time a jump there is a real change, usually a
// pooled buffer that stopped being reused. With -github both are additionally
// emitted as ::warning:: workflow annotations. The exit code is always 0:
// shared CI hardware is too noisy to gate merges on wall time (the checked-in
// snapshots come from quiet hardware; see ROADMAP.md's perf methodology), so
// this is a tripwire, not a gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchFile struct {
	Results []benchResult `json:"results"`
}

func load(path string) map[string]benchResult {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	m := make(map[string]benchResult, len(f.Results))
	for _, r := range f.Results {
		// With -count > 1 a name repeats; keep the fastest run, the standard
		// noise-rejection choice for wall-time comparison.
		if prev, ok := m[r.Name]; !ok || r.NsPerOp < prev.NsPerOp {
			m[r.Name] = r
		}
	}
	return m
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file (checked-in BENCH_PRn.json)")
	newPath := flag.String("new", "", "candidate benchjson file (fresh run)")
	threshold := flag.Float64("threshold", 20, "regression warning threshold in percent ns/op")
	github := flag.Bool("github", false, "emit GitHub ::warning:: annotations for regressions")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldRes, newRes := load(*oldPath), load(*newPath)
	var matched, regressed, missing int
	for _, nr := range sortedValues(newRes) {
		or, ok := oldRes[nr.Name]
		if !ok {
			fmt.Printf("%-60s %12.0f ns/op  (new bench, no baseline)\n", nr.Name, nr.NsPerOp)
			continue
		}
		matched++
		pct := 0.0
		if or.NsPerOp > 0 {
			pct = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		mark := ""
		if pct > *threshold {
			regressed++
			mark = "  <-- REGRESSION"
			if *github {
				fmt.Printf("::warning title=bench regression::%s ns/op %+.1f%% (%.0f -> %.0f), threshold %.0f%%\n",
					nr.Name, pct, or.NsPerOp, nr.NsPerOp, *threshold)
			}
		}
		// Allocation counts are deterministic; >2x the baseline (including any
		// growth from a zero-alloc baseline) means a reuse path broke.
		if nr.AllocsPerOp > 2*or.AllocsPerOp {
			regressed++
			mark += fmt.Sprintf("  <-- ALLOCS %d -> %d", or.AllocsPerOp, nr.AllocsPerOp)
			if *github {
				fmt.Printf("::warning title=alloc regression::%s allocs/op %d -> %d (more than 2x baseline)\n",
					nr.Name, or.AllocsPerOp, nr.AllocsPerOp)
			}
		}
		fmt.Printf("%-60s %12.0f -> %10.0f ns/op  %+7.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, pct, mark)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			missing++
			fmt.Printf("%-60s (present in baseline, missing from new run)\n", name)
		}
	}
	fmt.Printf("\n%d compared, %d over the %+.0f%% threshold, %d missing\n", matched, regressed, *threshold, missing)
	// Always exit 0: annotations warn, humans decide (CI hardware noise).
}

// sortedValues returns the results in stable name order so diffs of the
// output are readable.
func sortedValues(m map[string]benchResult) []benchResult {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]benchResult, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}
