package experiments

import (
	"fmt"

	"pj2k/internal/amdahl"
	"pj2k/internal/cachesim"
	"pj2k/internal/smp"
)

// Fig6 reproduces the parallel runtime analysis of the naive-filter encoder
// on the 4-CPU Intel SMP (paper Fig. 6): per-stage model times with the
// transform and code-block stages parallelized.
func Fig6(sizes []int) *Table {
	m := smp.PentiumIIXeon(4)
	t := &Table{
		Title:   "Fig. 6 — Parallel runtime analysis, 4 CPUs, original filtering (model ms)",
		Columns: []string{"Kpixels", "setup", "DWT", "quant", "tier-1", "seq-rest", "total", "speedup-vs-serial"},
		Notes: []string{
			"paper shape: overall speedup only ~1.75-1.85 on 4 CPUs; the",
			"DWT barely improves because the naive vertical filter congests",
			"the bus with cache misses.",
		},
	}
	for _, kp := range sizes {
		st, _ := buildModelPair(m, cachesim.NewPentiumII(), kp)
		serial := st.totalTime(m, 1)
		dwtT := m.ParallelTime(st.vert, 4, st.levels) + m.ParallelTime(st.horiz, 4, st.levels)
		qT := m.ParallelTime(st.quant, 4, 1)
		t1T := m.ParallelTime(st.t1, 4, 1)
		seqRest := m.SerialTime(st.setup) + m.SerialTime(st.ra) + m.SerialTime(st.t2) + m.SerialTime(st.io)
		total := st.totalTime(m, 4)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kp),
			fmt.Sprintf("%.0f", m.SerialTime(st.setup)*1e3),
			fmt.Sprintf("%.0f", dwtT*1e3),
			fmt.Sprintf("%.0f", qT*1e3),
			fmt.Sprintf("%.0f", t1T*1e3),
			fmt.Sprintf("%.0f", seqRest*1e3),
			fmt.Sprintf("%.0f", total*1e3),
			f2(serial / total),
		})
	}
	return t
}

// Fig9 is Fig6 with the improved (blocked) vertical filtering — paper
// Fig. 9, where the overall gain versus the ORIGINAL serial code becomes
// superlinear (~2.7x on 4 CPUs) because the filter fix compounds with the
// parallelism.
func Fig9(sizes []int) *Table {
	m := smp.PentiumIIXeon(4)
	t := &Table{
		Title:   "Fig. 9 — Parallel runtime analysis, 4 CPUs, improved filtering (model ms)",
		Columns: []string{"Kpixels", "DWT", "tier-1", "seq-rest", "total", "speedup-vs-original-serial"},
		Notes: []string{
			"paper shape: ~2.7x vs the original serial implementation;",
			"superlinearity comes from the cache fix, not the CPUs.",
		},
	}
	for _, kp := range sizes {
		orig, impr := buildModelPair(m, cachesim.NewPentiumII(), kp)
		origSerial := orig.totalTime(m, 1)
		dwtT := m.ParallelTime(impr.vert, 4, impr.levels) + m.ParallelTime(impr.horiz, 4, impr.levels)
		t1T := m.ParallelTime(impr.t1, 4, 1)
		seqRest := m.SerialTime(impr.setup) + m.SerialTime(impr.ra) + m.SerialTime(impr.t2) + m.SerialTime(impr.io)
		total := impr.totalTime(m, 4)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kp),
			fmt.Sprintf("%.0f", dwtT*1e3),
			fmt.Sprintf("%.0f", t1T*1e3),
			fmt.Sprintf("%.0f", seqRest*1e3),
			fmt.Sprintf("%.0f", total*1e3),
			f2(origSerial / total),
		})
	}
	return t
}

// Fig7 reproduces the original-vs-improved filtering runtimes on 1-4 CPUs of
// the Intel SMP (paper Fig. 7), fully in the model domain.
func Fig7(side int) *Table {
	vn, vb, hz := filterWorks(cachesim.NewPentiumII(), side)
	m := smp.PentiumIIXeon(4)
	t := &Table{
		Title:   fmt.Sprintf("Fig. 7 — Filtering runtimes, %dx%d, Intel SMP (model ms)", side, side),
		Columns: []string{"CPUs", "vertical", "vert-improved", "horizontal"},
		Notes: []string{
			"paper shape: original vertical filtering several times slower",
			"than horizontal; the improved filter closes the gap.",
		},
	}
	for p := 1; p <= 4; p++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.0f", m.ParallelTime(vn, p, 5)*1e3),
			fmt.Sprintf("%.0f", m.ParallelTime(vb, p, 5)*1e3),
			fmt.Sprintf("%.0f", m.ParallelTime(hz, p, 5)*1e3),
		})
	}
	return t
}

// Fig8 converts Fig7 into speedup curves (paper Fig. 8).
func Fig8(side int) *Table {
	vn, vb, hz := filterWorks(cachesim.NewPentiumII(), side)
	m := smp.PentiumIIXeon(4)
	t := &Table{
		Title:   "Fig. 8 — Filtering speedup vs 1 CPU (Intel SMP, model)",
		Columns: []string{"CPUs", "linear", "vertical", "vert-improved", "horizontal"},
		Notes: []string{
			"paper shape: original vertical saturates well below linear",
			"(bus congestion from cache misses); improved matches horizontal.",
		},
	}
	base := map[string]float64{
		"vn": m.ParallelTime(vn, 1, 5),
		"vb": m.ParallelTime(vb, 1, 5),
		"hz": m.ParallelTime(hz, 1, 5),
	}
	for p := 1; p <= 4; p++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", p),
			f2(base["vn"] / m.ParallelTime(vn, p, 5)),
			f2(base["vb"] / m.ParallelTime(vb, p, 5)),
			f2(base["hz"] / m.ParallelTime(hz, p, 5)),
		})
	}
	return t
}

// Fig10 reproduces the SGI filtering runtimes for the 16384-Kpixel image
// (paper Fig. 10): original vs modified vertical filtering, 1-16 CPUs.
func Fig10() *Table {
	const side = 4096
	vn, vb, hz := filterWorks(cachesim.NewSGIIP25(), side)
	t := &Table{
		Title:   "Fig. 10 — Vertical filtering runtimes, 16384 Kpixels, SGI (model ms)",
		Columns: []string{"CPUs", "original-vertical", "modified-vertical", "original-horizontal"},
		Notes: []string{
			"paper shape: a big gap between original vertical and horizontal",
			"filtering; the modified filter closes it at every CPU count.",
		},
	}
	for _, p := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		m := smp.SGIPowerChallenge(16)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.0f", m.ParallelTime(vn, p, 5)*1e3),
			fmt.Sprintf("%.0f", m.ParallelTime(vb, p, 5)*1e3),
			fmt.Sprintf("%.0f", m.ParallelTime(hz, p, 5)*1e3),
		})
	}
	return t
}

// Fig11 reproduces the SGI vertical-filtering speedup relative to the
// ORIGINAL serial vertical filter (paper Fig. 11, which peaks around 80x).
func Fig11() *Table {
	const side = 4096
	vn, vb, _ := filterWorks(cachesim.NewSGIIP25(), side)
	m := smp.SGIPowerChallenge(16)
	origSerial := m.ParallelTime(vn, 1, 5)
	t := &Table{
		Title:   "Fig. 11 — Vertical filtering speedup vs ORIGINAL serial (SGI, model)",
		Columns: []string{"CPUs", "original", "modified"},
		Notes: []string{
			"paper shape: modified filtering reaches ~80x vs the original",
			"serial routine at 16 CPUs (cache gain times CPU count);",
			"the original saturates.",
		},
	}
	for _, p := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			f2(origSerial / m.ParallelTime(vn, p, 5)),
			f2(origSerial / m.ParallelTime(vb, p, 5)),
		})
	}
	return t
}

// Fig12 reproduces the total-coding-time speedup vs the original serial
// Jasper (paper Fig. 12: ~5x with 10 CPUs).
func Fig12(kpix int) *Table {
	m := smp.SGIPowerChallenge(16)
	orig, impr := buildModelPair(m, cachesim.NewSGIIP25(), kpix)
	origSerial := orig.totalTime(m, 1)
	t := &Table{
		Title:   "Fig. 12 — Total coding speedup vs ORIGINAL serial (SGI, model)",
		Columns: []string{"CPUs", "parallel-only", "parallel+modified-filtering"},
		Notes: []string{
			"paper shape: parallelism plus the filter fix reach ~5x vs the",
			"original serial coder around 10-16 CPUs; superlinear because",
			"the baseline is the unoptimized code.",
		},
	}
	for _, p := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			f2(origSerial / orig.totalTime(m, p)),
			f2(origSerial / impr.totalTime(m, p)),
		})
	}
	return t
}

// Fig13 is the classical speedup: the same parallel runs measured against
// the best serial code (improved filtering), paper Fig. 13 (~2x).
func Fig13(kpix int) *Table {
	m := smp.SGIPowerChallenge(16)
	_, impr := buildModelPair(m, cachesim.NewSGIIP25(), kpix)
	bestSerial := impr.totalTime(m, 1)
	t := &Table{
		Title:   "Fig. 13 — Classical speedup vs best serial (SGI, model)",
		Columns: []string{"CPUs", "speedup"},
		Notes: []string{
			"paper shape: little more than 2x — the intrinsically",
			"sequential stages now dominate (Amdahl).",
		},
	}
	for _, p := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			f2(bestSerial / impr.totalTime(m, p)),
		})
	}
	return t
}

// QuantSpeedup reproduces the parallel-quantization aside of Sec. 3.3
// (~3.2x on 4 CPUs for the quantization slice alone).
func QuantSpeedup(kpix int) *Table {
	m := smp.PentiumIIXeon(4)
	_, st := buildModelPair(m, cachesim.NewPentiumII(), kpix)
	base := m.ParallelTime(st.quant, 1, 1)
	t := &Table{
		Title:   "Sec. 3.3 — Parallel quantization speedup (Intel SMP, model)",
		Columns: []string{"CPUs", "speedup"},
		Notes: []string{
			"paper: ~3.2x at 4 CPUs, but the stage is too small to move",
			"the end-to-end number.",
		},
	}
	for p := 1; p <= 4; p++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			f2(base / m.ParallelTime(st.quant, p, 1)),
		})
	}
	return t
}

// Amdahl reproduces the Sec. 3.4 table: theoretical vs model-practical
// speedup on 4 CPUs, before and after the filtering optimization.
func Amdahl(kpix int) *Table {
	m := smp.PentiumIIXeon(4)
	t := &Table{
		Title:   "Sec. 3.4 — Theoretical (Amdahl) vs practical speedup, 4 CPUs",
		Columns: []string{"configuration", "parallel-fraction", "theoretical", "model-practical"},
		Notes: []string{
			"paper: theoretical ~2.1 vs measured 1.85 (Jasper-like);",
			"after the filter fix the parallel fraction — and with it the",
			"bound — drops toward ~2.4 overall.",
		},
	}
	orig, impr := buildModelPair(m, cachesim.NewPentiumII(), kpix)
	for _, cfg := range []struct {
		name string
		st   modelStages
	}{
		{"original filtering", orig},
		{"improved filtering", impr},
	} {
		st := cfg.st
		seq, par := st.profile(m)
		pr := amdahl.Profile{Sequential: seq, Parallel: par}
		practical := st.totalTime(m, 1) / st.totalTime(m, 4)
		t.Rows = append(t.Rows, []string{
			cfg.name,
			f2(pr.ParallelFraction()),
			f2(pr.Speedup(4)),
			f2(practical),
		})
	}
	return t
}
