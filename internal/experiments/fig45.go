package experiments

import (
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/jpegbase"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

// encodeDecodePSNR runs one lossy encode/decode cycle and returns PSNR and
// the decoded image.
func encodeDecodePSNR(im *raster.Image, opts jp2k.Options) (float64, *raster.Image) {
	cs, _, err := jp2k.Encode(im, opts)
	if err != nil {
		panic(err)
	}
	back, err := jp2k.Decode(cs, jp2k.DecodeOptions{})
	if err != nil {
		panic(err)
	}
	back.ClampTo8()
	p, err := metrics.PSNR(im, back, 255)
	if err != nil {
		panic(err)
	}
	return p, back
}

// Fig4 quantifies the subjective comparison of the paper's Fig. 4: the
// Lena-like 512x512 image at 0.125 bpp coded with JPEG, JPEG2000 without
// tiling, and JPEG2000 with 128x128 tiles. Blockiness is the mean extra
// intensity discontinuity across the tiling grid.
func Fig4() *Table {
	im := raster.Synthetic(512, 512, 4242)
	t := &Table{
		Title:   "Fig. 4 — 512x512 @ 0.125 bpp: tiling artifacts, quantified",
		Columns: []string{"codec", "PSNR(dB)", "blockiness@128", "blockiness@8"},
		Notes: []string{
			"paper shape: JPEG shows 8x8 block artifacts at this rate;",
			"JPEG2000 without tiling is artifact-free; 128x128 tiling",
			"re-introduces visible grid discontinuities.",
		},
	}
	// JPEG: search the quality that lands near 0.125 bpp (1 KB per 64x64).
	target := 512 * 512 / 64 // bytes at 0.125 bpp
	quality := 1
	for q := 50; q >= 1; q-- {
		if len(jpegbase.Encode(im, q)) <= target {
			quality = q
			break
		}
	}
	jp := jpegbase.Encode(im, quality)
	jdec, err := jpegbase.Decode(jp)
	if err != nil {
		panic(err)
	}
	jpsnr, _ := metrics.PSNR(im, jdec, 255)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("JPEG(q%d)", quality), f2(jpsnr),
		f2(metrics.Blockiness(jdec, 128)), f2(metrics.Blockiness(jdec, 8)),
	})

	p2, whole := encodeDecodePSNR(im, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.125}})
	t.Rows = append(t.Rows, []string{
		"JPEG2000", f2(p2),
		f2(metrics.Blockiness(whole, 128)), f2(metrics.Blockiness(whole, 8)),
	})

	p3, tiled := encodeDecodePSNR(im, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.125}, TileW: 128, TileH: 128})
	t.Rows = append(t.Rows, []string{
		"JPEG2000+128-tiles", f2(p3),
		f2(metrics.Blockiness(tiled, 128)), f2(metrics.Blockiness(tiled, 8)),
	})
	return t
}

// Fig5 reproduces the rate-distortion impact of tile-based parallelization
// (paper Fig. 5): PSNR vs bitrate for the 512x512 image under the tile sizes
// that would be handed to 1, 4, 16, 64 and 256 CPUs.
func Fig5() *Table {
	im := raster.Synthetic(512, 512, 4242)
	bitrates := []float64{2.0, 1.0, 0.5, 0.25, 0.125, 0.0625}
	tileSizes := []int{512, 256, 128, 64, 32}
	t := &Table{
		Title:   "Fig. 5 — PSNR (dB) vs bitrate under tile-based parallelization",
		Columns: []string{"bpp", "1cpu(512)", "4cpu(256)", "16cpu(128)", "64cpu(64)", "256cpu(32)"},
		Notes: []string{
			"paper shape: quality loss grows as tiles shrink, dramatic at",
			"low bitrates — the reason the paper rejects tile parallelism.",
		},
	}
	for _, bpp := range bitrates {
		row := []string{fmt.Sprintf("%.4g", bpp)}
		for _, ts := range tileSizes {
			opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}}
			if ts < 512 {
				opts.TileW, opts.TileH = ts, ts
			}
			p, _ := encodeDecodePSNR(im, opts)
			row = append(row, f2(p))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
