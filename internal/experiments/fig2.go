package experiments

import (
	"fmt"
	"time"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/jpegbase"
	"pj2k/internal/raster"
	"pj2k/internal/spiht"
)

// Fig2 reproduces the compression-timings comparison: encoding time of JPEG,
// SPIHT and JPEG2000 across image sizes (paper Fig. 2). The paper's JJ2000
// (Java) and Jasper (C) series are played by the single Go implementation —
// the paper itself found "not much difference between the C and JAVA
// implementations". sizes are in Kpixels.
func Fig2(sizes []int) *Table {
	t := &Table{
		Title:   "Fig. 2 — Compression timings (encode, seconds)",
		Columns: []string{"Kpixels", "JPEG", "SPIHT", "JPEG2000"},
		Notes: []string{
			"JPEG at quality 75; SPIHT and JPEG2000 at 1.0 bpp.",
			"paper shape: JPEG fastest by a wide margin, JPEG2000 slowest;",
			"SPIHT skips sizes whose side is not a power of two.",
		},
	}
	for _, kp := range sizes {
		im := raster.KPixelImage(kp, uint64(kp))
		n := im.Width * im.Height

		t0 := time.Now()
		jpegbase.Encode(im, 75)
		jpegTime := time.Since(t0)

		spihtCell := "-"
		if im.Width == im.Height && im.Width&(im.Width-1) == 0 {
			t0 = time.Now()
			if _, err := spiht.Encode(im, 5, n/8); err == nil {
				spihtCell = fmt.Sprintf("%.2f", time.Since(t0).Seconds())
			}
		}

		t0 = time.Now()
		_, _, err := jp2k.Encode(im, jp2k.Options{
			Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		j2kTime := time.Since(t0)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kp),
			fmt.Sprintf("%.2f", jpegTime.Seconds()),
			spihtCell,
			fmt.Sprintf("%.2f", j2kTime.Seconds()),
		})
	}
	return t
}

// Fig3 reproduces the serial runtime analysis: per-stage encoder time across
// image sizes (paper Fig. 3). The original implementations' vertical filter
// (column at a time) is used, as in the paper's baseline.
func Fig3(sizes []int) *Table {
	t := &Table{
		Title:   "Fig. 3 — Serial runtime analysis (ms per stage)",
		Columns: []string{"Kpixels", "setup", "DWT", "quant", "tier-1", "R/D-alloc", "tier-2", "stream-I/O"},
		Notes: []string{
			"paper shape: the wavelet transform dominates, tier-1 coding second;",
			"setup/rate-allocation/bitstream I/O are comparatively small.",
		},
	}
	for _, kp := range sizes {
		tm, _ := measureStages(kp, dwt.Irr97, dwt.VertNaive, 1.0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kp),
			ms(tm.Setup), ms(tm.IntraComp), ms(tm.Quant), ms(tm.Tier1),
			ms(tm.RateAlloc), ms(tm.Tier2), ms(tm.StreamIO),
		})
	}
	return t
}
