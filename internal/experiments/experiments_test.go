package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"pj2k/internal/cachesim"
	"pj2k/internal/smp"
)

// cell parses table cell (r, c) as a float.
func cell(t *testing.T, tb *Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tb.Rows[r][c]), 64)
	if err != nil {
		t.Fatalf("table %q cell (%d,%d) = %q: %v", tb.Title, r, c, tb.Rows[r][c], err)
	}
	return v
}

func TestTablePrinting(t *testing.T) {
	tb := &Table{
		Title:   "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== t ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tb := Fig2([]int{256})
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 4 {
		t.Fatalf("bad table shape: %+v", tb.Rows)
	}
	jpeg := cell(t, tb, 0, 1)
	spiht := cell(t, tb, 0, 2)
	j2k := cell(t, tb, 0, 3)
	// The paper's central ordering.
	if !(jpeg < spiht && spiht < j2k) {
		t.Fatalf("timing order violated: JPEG %.3f, SPIHT %.3f, JPEG2000 %.3f", jpeg, spiht, j2k)
	}
}

func TestFig3Shape(t *testing.T) {
	tb := Fig3([]int{256})
	// DWT + tier-1 must dominate the serial profile.
	dwt := cell(t, tb, 0, 2)
	t1 := cell(t, tb, 0, 4)
	ra := cell(t, tb, 0, 5)
	t2 := cell(t, tb, 0, 6)
	if dwt+t1 < 5*(ra+t2+1) {
		t.Fatalf("DWT+tier-1 (%v) do not dominate R/D+tier-2 (%v)", dwt+t1, ra+t2)
	}
}

func TestFig5TilingPenalty(t *testing.T) {
	tb := Fig5()
	// At every bitrate, 32x32 tiles must not beat whole-image coding, and
	// at the lowest bitrate the gap must be large.
	for r := range tb.Rows {
		whole := cell(t, tb, r, 1)
		tiny := cell(t, tb, r, 5)
		if tiny > whole+0.01 {
			t.Fatalf("row %d: 32x32 tiles PSNR %.2f beats whole image %.2f", r, tiny, whole)
		}
	}
	last := len(tb.Rows) - 1
	if gap := cell(t, tb, last, 1) - cell(t, tb, last, 5); gap < 5 {
		t.Fatalf("lowest-rate tiling gap only %.2f dB", gap)
	}
}

func TestFig8Saturation(t *testing.T) {
	tb := Fig8(1024)
	// Row 3 (4 CPUs): naive vertical saturates, improved and horizontal
	// scale.
	naive := cell(t, tb, 3, 2)
	improved := cell(t, tb, 3, 3)
	horiz := cell(t, tb, 3, 4)
	if naive > 2.5 {
		t.Fatalf("naive vertical speedup %.2f; should saturate below 2.5", naive)
	}
	if improved < 3.5 || horiz < 3.5 {
		t.Fatalf("improved %.2f / horizontal %.2f should be near-linear", improved, horiz)
	}
}

func TestFig11ModifiedFilteringGain(t *testing.T) {
	tb := Fig11()
	last := len(tb.Rows) - 1
	orig := cell(t, tb, last, 1)
	mod := cell(t, tb, last, 2)
	// Paper: ~80x for modified vs ~saturated original.
	if mod < 40 {
		t.Fatalf("modified filtering gain %.1f at 16 CPUs; want the paper's tens", mod)
	}
	if orig > mod/2 {
		t.Fatalf("original filter (%.1f) should saturate far below modified (%.1f)", orig, mod)
	}
}

func TestFig12Fig13PaperShape(t *testing.T) {
	tb12 := Fig12(16384)
	last := len(tb12.Rows) - 1
	full := cell(t, tb12, last, 2)
	if full < 4 || full > 6.5 {
		t.Fatalf("Fig12 total speedup %.2f at 16 CPUs; paper ~5", full)
	}
	tb13 := Fig13(16384)
	classic := cell(t, tb13, len(tb13.Rows)-1, 1)
	if classic < 1.8 || classic > 3.2 {
		t.Fatalf("Fig13 classical speedup %.2f; paper ~2", classic)
	}
	if classic >= full {
		t.Fatal("classical speedup must be below the vs-original speedup")
	}
}

func TestAmdahlConsistency(t *testing.T) {
	tb := Amdahl(1024)
	for r := range tb.Rows {
		theo := cell(t, tb, r, 2)
		prac := cell(t, tb, r, 3)
		if prac > theo+0.01 {
			t.Fatalf("row %d: practical %.2f exceeds theoretical %.2f", r, prac, theo)
		}
	}
	// The filter fix must not increase the parallel fraction.
	if cell(t, tb, 1, 1) > cell(t, tb, 0, 1)+0.01 {
		t.Fatal("improved filtering should shrink the parallel fraction")
	}
}

func TestPaperSharesSumToOne(t *testing.T) {
	for _, kp := range []int{128, 256, 1024, 4096, 16384, 65536} {
		s := paperShares(kp)
		sum := s.serial + s.dwt + s.quant + s.t1
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("kpix %d: shares sum to %v", kp, sum)
		}
		if s.t1 <= 0 {
			t.Fatalf("kpix %d: non-positive tier-1 share", kp)
		}
	}
}

func TestBuildModelPairInvariants(t *testing.T) {
	m := smp.PentiumIIXeon(4)
	orig, impr := buildModelPair(m, cachesim.NewPentiumII(), 1024)
	// The improved profile differs only in the vertical filter work.
	if orig.t1 != impr.t1 || orig.imageIO != impr.imageIO {
		t.Fatal("profiles must share non-DWT stages")
	}
	if impr.vert.Misses >= orig.vert.Misses {
		t.Fatal("improved filtering must reduce misses")
	}
	// Naive DWT serial time must match its Fig. 3 share.
	sh := paperShares(1024)
	total := paperTotalSec(m, 1024)
	gotDWT := m.SerialTime(smp.Work{
		Ops:    orig.vert.Ops + orig.horiz.Ops,
		Misses: orig.vert.Misses + orig.horiz.Misses,
	})
	if rel := gotDWT/(sh.dwt*total) - 1; rel > 0.01 || rel < -0.01 {
		t.Fatalf("DWT share calibration off by %.3f", rel)
	}
	// Serial times scale down with CPUs; totals are monotone.
	prev := orig.totalTime(m, 1)
	for p := 2; p <= 4; p++ {
		cur := orig.totalTime(m, p)
		if cur > prev {
			t.Fatalf("model total time rose from %v to %v at p=%d", prev, cur, p)
		}
		prev = cur
	}
}

func TestQuantSpeedupShape(t *testing.T) {
	tb := QuantSpeedup(1024)
	if got := cell(t, tb, 3, 1); got < 3 {
		t.Fatalf("quantization speedup %.2f at 4 CPUs; paper ~3.2", got)
	}
}
