// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Measured quantities come
// from this repository's codec running on the host; speedup curves for the
// paper's 4-CPU Intel SMP and 16-CPU SGI come from the internal/smp machine
// model driven by cache simulation (the substitution DESIGN.md documents —
// this reproduction may run on hosts with a single core).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pj2k/internal/cachesim"
	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/smp"
)

// Table is a simple printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func ms(d time.Duration) string { return fmt.Sprintf("%d", d.Milliseconds()) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// measureStages encodes a synthetic image of the given Kpixel size and
// returns the encoder's stage timings.
func measureStages(kpix int, kernel dwt.Kernel, mode dwt.VertMode, bpp float64) (jp2k.StageTimings, int) {
	im := raster.KPixelImage(kpix, uint64(kpix))
	opts := jp2k.Options{
		Kernel:   kernel,
		Workers:  1,
		VertMode: mode,
	}
	if bpp > 0 {
		opts.LayerBPP = []float64{bpp}
	}
	_, stats, err := jp2k.Encode(im, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: encode failed: %v", err))
	}
	return stats.Timings, stats.Bytes
}

// filterWorks returns the model work of each filtering variant for a square
// image of the given side, on the paper's default 5-level 9/7 pyramid, under
// the given cache (Pentium-II 4-way for the Intel figures, direct-mapped
// IP25 for the SGI figures).
func filterWorks(cfg cachesim.Config, side int) (vertNaive, vertBlocked, horiz smp.Work) {
	spec := smp.FilterSpec{W: side, H: side, Stride: side, Levels: 5, Kernel: dwt.Irr97}
	spec.Mode = dwt.VertNaive
	vertNaive = smp.VerticalWork(cfg, spec)
	spec.Mode = dwt.VertBlocked
	vertBlocked = smp.VerticalWork(cfg, spec)
	horiz = smp.HorizontalWork(cfg, spec)
	return
}

// paperShares is the stage profile of the ORIGINAL serial coder taken from
// the paper's Fig. 3 measurements (Jasper/JJ2000). The wavelet transform's
// share grows with image size (its cache misses hurt superlinearly), which
// is what makes the filtering fix dominate on large images; the intrinsic
// serial share (image I/O, setup, rate allocation, tier-2, bitstream I/O)
// shrinks with size. Our own Go pipeline has a different profile (Fig. 3
// table, host-measured) — these shares anchor the *paper's* system.
type shares struct {
	serial float64 // image I/O + setup + R/D + tier-2 + bitstream I/O
	dwt    float64
	quant  float64
	t1     float64
}

func paperShares(kpix int) shares {
	var s shares
	switch {
	case kpix <= 256:
		s = shares{serial: 0.40, dwt: 0.35, quant: 0.03}
	case kpix <= 1024:
		s = shares{serial: 0.35, dwt: 0.42, quant: 0.03}
	case kpix <= 4096:
		s = shares{serial: 0.30, dwt: 0.50, quant: 0.03}
	default:
		s = shares{serial: 0.18, dwt: 0.65, quant: 0.03}
	}
	s.t1 = 1 - s.serial - s.dwt - s.quant
	return s
}

// paperTotalSec is the original serial coding time of the paper's testbeds:
// ~2.7 ms/Kpixel on the 500 MHz Intel box (Fig. 3) and roughly four times
// that on the SGI ("very poor computation times when compared with the fast
// Intel processors").
func paperTotalSec(m smp.Machine, kpix int) float64 {
	perKpix := 2.7e-3
	if m.ClockHz < 300e6 {
		perKpix = 11e-3
	}
	return perKpix * float64(kpix)
}

// modelStages is the model-domain stage profile of the paper's encoder for
// one image size on one machine: pure-ops work for the non-transform stages
// (sized by the Fig. 3 shares) and cache-simulated work for the filtering
// variants (scaled so the naive transform matches its Fig. 3 share).
type modelStages struct {
	imageIO, setup, quant, t1, ra, t2, io smp.Work
	vert, horiz                           smp.Work
	levels                                int
}

// buildModelPair builds the original- and improved-filtering profiles for an
// image of kpix Kpixels on machine m with per-CPU cache cfg.
func buildModelPair(m smp.Machine, cfg cachesim.Config, kpix int) (orig, impr modelStages) {
	sh := paperShares(kpix)
	total := paperTotalSec(m, kpix)
	side := raster.KPixelImage(kpix, 1).Width
	vn, vb, hz := filterWorks(cfg, side)

	opsFor := func(frac float64) smp.Work {
		return smp.Work{Ops: frac * total * m.ClockHz * m.OpsPerCycle}
	}
	base := modelStages{
		// Serial split within the serial share: image I/O 35%, setup 15%,
		// R/D allocation 20%, tier-2 20%, bitstream I/O 10%.
		imageIO: opsFor(sh.serial * 0.35),
		setup:   opsFor(sh.serial * 0.15),
		ra:      opsFor(sh.serial * 0.20),
		t2:      opsFor(sh.serial * 0.20),
		io:      opsFor(sh.serial * 0.10),
		quant:   opsFor(sh.quant),
		t1:      opsFor(sh.t1),
		levels:  5,
	}
	// Scale the cache-simulated filtering works so the NAIVE transform's
	// serial time equals its Fig. 3 share; the improvement ratio and the
	// bus traffic then follow from the cache simulation.
	naiveSerial := m.SerialTime(smp.Work{Ops: vn.Ops + hz.Ops, Misses: vn.Misses + hz.Misses})
	scale := sh.dwt * total / naiveSerial
	mul := func(w smp.Work) smp.Work {
		return smp.Work{Ops: w.Ops * scale, Misses: w.Misses * scale}
	}
	orig, impr = base, base
	orig.vert, impr.vert = mul(vn), mul(vb)
	orig.horiz, impr.horiz = mul(hz), mul(hz)
	return orig, impr
}

// totalTime evaluates the full pipeline on machine m with p CPUs: DWT, quant
// and tier-1 run in parallel; image I/O, setup, rate allocation, tier-2 and
// bitstream I/O remain sequential (the paper's intrinsically sequential
// parts).
func (st modelStages) totalTime(m smp.Machine, p int) float64 {
	t := m.SerialTime(st.imageIO) + m.SerialTime(st.setup)
	t += m.ParallelTime(st.vert, p, st.levels) + m.ParallelTime(st.horiz, p, st.levels)
	t += m.ParallelTime(st.quant, p, 1)
	t += m.ParallelTime(st.t1, p, 1)
	t += m.SerialTime(st.ra) + m.SerialTime(st.t2) + m.SerialTime(st.io)
	return t
}

// profile returns the Amdahl split of the pipeline on machine m.
func (st modelStages) profile(m smp.Machine) (seq, par float64) {
	seq = m.SerialTime(st.imageIO) + m.SerialTime(st.setup) +
		m.SerialTime(st.ra) + m.SerialTime(st.t2) + m.SerialTime(st.io)
	par = m.SerialTime(st.vert) + m.SerialTime(st.horiz) + m.SerialTime(st.quant) + m.SerialTime(st.t1)
	return
}
