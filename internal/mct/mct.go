// Package mct implements the multiple-component (inter-component) transforms
// of JPEG2000 — the first stage of the paper's Fig. 1 pipeline: the
// reversible color transform (RCT) used with the 5/3 path and the
// irreversible color transform (ICT, the YCbCr rotation) used with the 9/7
// path. Both operate in place on three equally sized planes.
package mct

import (
	"fmt"

	"pj2k/internal/core"
	"pj2k/internal/raster"
)

// forMax dispatches a row/sample barrier on pool (nil selects the shared
// default pool), so codecs can keep every MCT stage on their own resident
// workers.
func forMax(pool *core.Pool, workers, n int, fn func(lo, hi int)) {
	if pool == nil {
		pool = core.Default()
	}
	pool.ForMax(core.Workers(workers), n, fn)
}

// check validates that the three planes agree in size.
func check(r, g, b *raster.Image) error {
	if r.Width != g.Width || r.Width != b.Width ||
		r.Height != g.Height || r.Height != b.Height {
		return fmt.Errorf("mct: component size mismatch %dx%d / %dx%d / %dx%d",
			r.Width, r.Height, g.Width, g.Height, b.Width, b.Height)
	}
	return nil
}

// ForwardRCT applies the reversible color transform in place:
//
//	Y  = floor((R + 2G + B) / 4),  Cb = B - G,  Cr = R - G
//
// It is exactly invertible in integer arithmetic (ISO 15444-1 G.2).
// workers parallelizes over rows on pool's resident workers (nil selects
// the shared default pool).
func ForwardRCT(r, g, b *raster.Image, workers int, pool *core.Pool) error {
	if err := check(r, g, b); err != nil {
		return err
	}
	forMax(pool, workers, r.Height, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			rr, gr, br := r.Row(y), g.Row(y), b.Row(y)
			for x := range rr {
				R, G, B := rr[x], gr[x], br[x]
				yv := (R + 2*G + B) >> 2
				cb := B - G
				cr := R - G
				rr[x], gr[x], br[x] = yv, cb, cr
			}
		}
	})
	return nil
}

// InverseRCT inverts ForwardRCT in place (planes hold Y, Cb, Cr).
func InverseRCT(yp, cb, cr *raster.Image, workers int, pool *core.Pool) error {
	if err := check(yp, cb, cr); err != nil {
		return err
	}
	forMax(pool, workers, yp.Height, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			yr, br, rr := yp.Row(y), cb.Row(y), cr.Row(y)
			for x := range yr {
				Y, Cb, Cr := yr[x], br[x], rr[x]
				G := Y - ((Cb + Cr) >> 2)
				R := Cr + G
				B := Cb + G
				yr[x], br[x], rr[x] = R, G, B
			}
		}
	})
	return nil
}

// ICT coefficients (the standard Rec. 601 luma rotation).
const (
	ictYR, ictYG, ictYB = 0.299, 0.587, 0.114
	ictCbB              = 0.5 / (1 - ictYB)
	ictCrR              = 0.5 / (1 - ictYR)
	ictInvCrR           = 1.402
	ictInvCbG           = -0.344136
	ictInvCrG           = -0.714136
	ictInvCbB           = 1.772
)

// ForwardICT applies the irreversible YCbCr transform in place on float
// planes (the 9/7 path operates on floats anyway).
func ForwardICT(r, g, b []float64, workers int, pool *core.Pool) {
	forMax(pool, workers, len(r), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			R, G, B := r[i], g[i], b[i]
			Y := ictYR*R + ictYG*G + ictYB*B
			r[i] = Y
			g[i] = ictCbB * (B - Y)
			b[i] = ictCrR * (R - Y)
		}
	})
}

// InverseICT inverts ForwardICT in place (planes hold Y, Cb, Cr).
func InverseICT(yp, cb, cr []float64, workers int, pool *core.Pool) {
	forMax(pool, workers, len(yp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Y, Cb, Cr := yp[i], cb[i], cr[i]
			yp[i] = Y + ictInvCrR*Cr
			cb[i] = Y + ictInvCbG*Cb + ictInvCrG*Cr
			cr[i] = Y + ictInvCbB*Cb
		}
	})
}
