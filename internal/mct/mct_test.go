package mct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pj2k/internal/raster"
)

func randPlane(w, h int, seed int64) *raster.Image {
	im := raster.New(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Pix {
		im.Pix[i] = int32(rng.Intn(256)) - 128 // level-shifted 8-bit
	}
	return im
}

func TestRCTPerfectReconstruction(t *testing.T) {
	r := randPlane(37, 21, 1)
	g := randPlane(37, 21, 2)
	b := randPlane(37, 21, 3)
	r0, g0, b0 := r.Clone(), g.Clone(), b.Clone()
	if err := ForwardRCT(r, g, b, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := InverseRCT(r, g, b, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(r, r0) || !raster.Equal(g, g0) || !raster.Equal(b, b0) {
		t.Fatal("RCT round trip not exact")
	}
}

func TestRCTDecorrelatesGray(t *testing.T) {
	// For a gray image (R=G=B) the chroma planes must be exactly zero.
	g := randPlane(16, 16, 4)
	r, b := g.Clone(), g.Clone()
	if err := ForwardRCT(r, g, b, 1, nil); err != nil {
		t.Fatal(err)
	}
	for i := range g.Pix {
		if g.Pix[i] != 0 || b.Pix[i] != 0 {
			t.Fatal("gray input must give zero chroma")
		}
	}
}

func TestRCTSizeMismatch(t *testing.T) {
	if err := ForwardRCT(raster.New(4, 4), raster.New(5, 4), raster.New(4, 4), 1, nil); err == nil {
		t.Fatal("want size-mismatch error")
	}
}

func TestRCTParallelMatchesSerial(t *testing.T) {
	mk := func() (*raster.Image, *raster.Image, *raster.Image) {
		return randPlane(64, 48, 7), randPlane(64, 48, 8), randPlane(64, 48, 9)
	}
	r1, g1, b1 := mk()
	r2, g2, b2 := mk()
	ForwardRCT(r1, g1, b1, 1, nil)
	ForwardRCT(r2, g2, b2, 8, nil)
	if !raster.Equal(r1, r2) || !raster.Equal(g1, g2) || !raster.Equal(b1, b2) {
		t.Fatal("parallel RCT differs from serial")
	}
}

func TestICTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1000
	r := make([]float64, n)
	g := make([]float64, n)
	b := make([]float64, n)
	r0 := make([]float64, n)
	g0 := make([]float64, n)
	b0 := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = rng.Float64()*255 - 128
		g[i] = rng.Float64()*255 - 128
		b[i] = rng.Float64()*255 - 128
		r0[i], g0[i], b0[i] = r[i], g[i], b[i]
	}
	ForwardICT(r, g, b, 1, nil)
	InverseICT(r, g, b, 1, nil)
	for i := 0; i < n; i++ {
		if math.Abs(r[i]-r0[i]) > 1e-3 || math.Abs(g[i]-g0[i]) > 1e-3 || math.Abs(b[i]-b0[i]) > 1e-3 {
			t.Fatalf("ICT round trip error at %d: (%g,%g,%g) vs (%g,%g,%g)",
				i, r[i], g[i], b[i], r0[i], g0[i], b0[i])
		}
	}
}

func TestICTLumaWeights(t *testing.T) {
	// White input must give Y = level, zero chroma.
	r := []float64{100}
	g := []float64{100}
	b := []float64{100}
	ForwardICT(r, g, b, 1, nil)
	if math.Abs(r[0]-100) > 1e-9 || math.Abs(g[0]) > 1e-9 || math.Abs(b[0]) > 1e-9 {
		t.Fatalf("white pixel: Y=%g Cb=%g Cr=%g", r[0], g[0], b[0])
	}
}

func TestQuickRCTRoundTrip(t *testing.T) {
	f := func(R, G, B int16) bool {
		r, g, b := raster.New(1, 1), raster.New(1, 1), raster.New(1, 1)
		r.Pix[0], g.Pix[0], b.Pix[0] = int32(R), int32(G), int32(B)
		ForwardRCT(r, g, b, 1, nil)
		InverseRCT(r, g, b, 1, nil)
		return r.Pix[0] == int32(R) && g.Pix[0] == int32(G) && b.Pix[0] == int32(B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
