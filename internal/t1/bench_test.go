package t1

import (
	"strconv"
	"testing"

	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// passSnap captures the coder state at the entry of one coding pass, so a
// benchmark can re-run exactly that pass from identical state every
// iteration.
type passSnap struct {
	mag   []int32
	flags []uint32
	cx    [nctx]mq.Context
}

func snap(c *coder) passSnap {
	return passSnap{
		mag:   append([]int32(nil), c.mag...),
		flags: append([]uint32(nil), c.flags...),
		cx:    c.cx,
	}
}

func (s *passSnap) restore(c *coder) {
	copy(c.mag, s.mag)
	copy(c.flags, s.flags)
	c.cx = s.cx
}

// passSnapshots replays the encode of a canonical block down to the given
// plane and captures the state at the entry of each of its three passes.
func passSnapshots(data []int32, n int, band dwt.BandType, plane uint) (co *Coder, sig, ref, clean passSnap) {
	co = NewCoder()
	c := &co.c
	c.reset(n, n, band)
	var maxMag int32
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := data[y*n+x]
			i := c.idx(x, y)
			if v < 0 {
				c.flags[i] |= fNeg
				v = -v
			}
			c.mag[i] = v
			if v > maxMag {
				maxMag = v
			}
		}
	}
	nbp := 0
	for m := maxMag; m > 0; m >>= 1 {
		nbp++
	}
	if int(plane) >= nbp-1 {
		panic("bench: plane too high for the canonical block")
	}
	c.resetContexts()
	enc := co.enc
	enc.Init()
	for p := nbp - 1; p > int(plane); p-- {
		pp := uint(p)
		if p != nbp-1 {
			c.encSigProp(enc, pp)
			c.encRefine(enc, pp)
		}
		c.encCleanup(enc, pp)
		c.clearVisited()
	}
	sig = snap(c)
	c.encSigProp(enc, plane)
	ref = snap(c)
	c.encRefine(enc, plane)
	clean = snap(c)
	return co, sig, ref, clean
}

// BenchmarkT1Passes times each tier-1 coding pass in isolation on a
// canonical 64x64 block at a mid-depth plane (realistic significance state),
// so the flag-word/LUT and MQ wins are attributable per pass. State is
// restored from a snapshot every iteration; the restore (two ~17 KB copies)
// is a few percent of a pass.
func BenchmarkT1Passes(b *testing.B) {
	data := testBlock(64)
	const plane = 4 // canonical block has 10 bit-planes; mid-depth state
	co, sigS, refS, cleanS := passSnapshots(data, 64, dwt.HH, plane)
	c := &co.c
	run := func(s *passSnap, pass func(enc *mq.Encoder, plane uint) float64) func(b *testing.B) {
		return func(b *testing.B) {
			b.SetBytes(64 * 64)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.restore(c)
				co.enc.Init()
				pass(co.enc, plane)
			}
		}
	}
	b.Run("sigprop", run(&sigS, c.encSigProp))
	b.Run("magref", run(&refS, c.encRefine))
	b.Run("cleanup", run(&cleanS, c.encCleanup))

	// Raw (bypass) variants of the two passes the lazy mode bypasses, from
	// the same snapshots — the per-pass attribution behind the headline
	// bypass-vs-MQ speedup (the raw coder emits bits with only 0xFF
	// stuffing, no interval arithmetic or context lookups).
	var rw bitio.StuffWriter
	runRaw := func(s *passSnap, pass func(w *bitio.StuffWriter, plane uint) float64) func(b *testing.B) {
		return func(b *testing.B) {
			b.SetBytes(64 * 64)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.restore(c)
				rw.Reset()
				pass(&rw, plane)
			}
		}
	}
	b.Run("sigprop-raw", runRaw(&sigS, c.encSigPropRaw))
	b.Run("magref-raw", runRaw(&refS, c.encRefineRaw))
}

// BenchmarkT1DecodePasses is the decode analogue: the same canonical block's
// passes, decoded from the matching segment prefix each iteration.
func BenchmarkT1DecodePasses(b *testing.B) {
	data := testBlock(64)
	eb := Encode(data, 64, 64, 64, dwt.HH)
	bd := NewBlockDecoder()
	for _, np := range []int{1, len(eb.Passes) / 2, len(eb.Passes)} {
		np := np
		b.Run("passes="+strconv.Itoa(np), func(b *testing.B) {
			seg := eb.Data
			if r := eb.Passes[np-1].Rate; r < len(seg) {
				seg = seg[:r]
			}
			b.SetBytes(64 * 64)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bd.DecodeSegment(64, 64, dwt.HH, eb.NumBitplanes, seg, np); err != nil {
					b.Fatal(err)
				}
				bd.Release()
			}
		})
	}
}
