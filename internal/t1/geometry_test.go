package t1

import (
	"bytes"
	"testing"

	"pj2k/internal/dwt"
)

// TestStripeTailHeights round-trips blocks whose height is not a multiple of
// the 4-row stripe: the tail stripe disables run-length mode and exercises
// the partial-column scan, which the flag-word rewrite must handle for every
// band orientation (the HL swap path included).
func TestStripeTailHeights(t *testing.T) {
	for _, h := range []int{1, 2, 3, 5, 6, 7, 9, 11, 13, 17, 63} {
		for _, w := range []int{4, 7, 16} {
			for _, band := range bandTypes {
				data := randBlock(w, h, 900, 0.4, int64(h*100+w)+int64(band))
				eb := Encode(data, w, h, w, band)
				got, err := Decode(eb, len(eb.Passes))
				if err != nil {
					t.Fatalf("%dx%d %v: %v", w, h, band, err)
				}
				for i := range data {
					if got[i] != data[i] {
						t.Fatalf("%dx%d %v: sample %d got %d want %d", w, h, band, i, got[i], data[i])
					}
				}
			}
		}
	}
}

// TestDegenerateRowsAndColumns round-trips 1xN and Nx1 blocks — the
// degenerate geometries where most of the 3x3 neighborhood lies in the
// border ring — per band type, at full and sparse density.
func TestDegenerateRowsAndColumns(t *testing.T) {
	for _, sz := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {1, 7}, {7, 1}, {1, 64}, {64, 1}, {1, 63}, {63, 1}} {
		for _, band := range bandTypes {
			for _, density := range []float64{0.3, 1.0} {
				data := randBlock(sz[0], sz[1], 2000, density, int64(sz[0]*31+sz[1]*7)+int64(band))
				eb := Encode(data, sz[0], sz[1], sz[0], band)
				got, err := Decode(eb, len(eb.Passes))
				if err != nil {
					t.Fatalf("%v %v density %.1f: %v", sz, band, density, err)
				}
				for i := range data {
					if got[i] != data[i] {
						t.Fatalf("%v %v density %.1f: sample %d got %d want %d", sz, band, density, i, got[i], data[i])
					}
				}
			}
		}
	}
}

// TestPooledCoderEdgeGeometry interleaves edge-geometry blocks through one
// pooled Coder/BlockDecoder pair and checks the output matches the one-shot
// path: stale flag words from a larger previous block must never leak into a
// smaller or differently-shaped one.
func TestPooledCoderEdgeGeometry(t *testing.T) {
	shapes := []struct {
		w, h int
		band dwt.BandType
	}{
		{64, 64, dwt.HH}, // large first, to warm (and dirty) the arenas
		{1, 64, dwt.HL},
		{64, 1, dwt.LH},
		{5, 7, dwt.LL},
		{3, 3, dwt.HL},
		{16, 13, dwt.HH},
		{1, 1, dwt.LH},
		{4, 6, dwt.HL},
	}
	co := NewCoder()
	bd := NewBlockDecoder()
	for round := 0; round < 2; round++ {
		for si, s := range shapes {
			data := randBlock(s.w, s.h, 1200, 0.5, int64(si*997+round))
			want := Encode(data, s.w, s.h, s.w, s.band)
			got := co.Encode(data, s.w, s.h, s.w, s.band)
			if !bytes.Equal(got.Data, want.Data) || got.NumBitplanes != want.NumBitplanes {
				t.Fatalf("round %d shape %dx%d %v: pooled encode differs from one-shot", round, s.w, s.h, s.band)
			}
			vals, err := bd.DecodeSegment(s.w, s.h, s.band, got.NumBitplanes, got.Data, len(got.Passes))
			if err != nil {
				t.Fatalf("round %d shape %dx%d %v: %v", round, s.w, s.h, s.band, err)
			}
			for i := range data {
				if vals[i] != data[i] {
					t.Fatalf("round %d shape %dx%d %v: sample %d got %d want %d",
						round, s.w, s.h, s.band, i, vals[i], data[i])
				}
			}
		}
		co.Release()
		bd.Release()
	}
}

// TestHLSwapBaked verifies the HL orientation table is the LH table with the
// h/v axes swapped — the swap the LUT build bakes in so the hot loop does
// not branch per sample.
func TestHLSwapBaked(t *testing.T) {
	for m := 0; m < 256; m++ {
		swapped := m &^ (int(fSigN | fSigS | fSigE | fSigW))
		if m&int(fSigN) != 0 {
			swapped |= int(fSigW)
		}
		if m&int(fSigS) != 0 {
			swapped |= int(fSigE)
		}
		if m&int(fSigW) != 0 {
			swapped |= int(fSigN)
		}
		if m&int(fSigE) != 0 {
			swapped |= int(fSigS)
		}
		if zcLUT[dwt.HL][m] != zcLUT[dwt.LH][swapped] {
			t.Fatalf("mask %#x: HL context %d != swapped LH context %d",
				m, zcLUT[dwt.HL][m], zcLUT[dwt.LH][swapped])
		}
	}
}
