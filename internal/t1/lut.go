package t1

import "pj2k/internal/dwt"

// Neighborhood flag words: every sample carries a uint32 that aggregates the
// coding state of its 3x3 neighborhood, maintained incrementally — when a
// sample becomes significant, setSig updates the relevant bits in its eight
// neighbors' words once, instead of every context computation re-reading
// eight scattered neighbor flags per sample per pass. With the neighborhood
// packed into the low bits, the Annex D context functions collapse into
// 256-entry lookup tables built once at init (the OpenJPEG/Kakadu layout).
//
// Bit layout (directions name where the *neighbor* sits relative to the
// sample owning the word; fSigN set means "my northern neighbor is
// significant"):
//
//	0-3   diagonal neighbor significance (NE, SE, SW, NW)
//	4-7   primary neighbor significance  (N,  E,  S,  W)
//	8-11  primary neighbor sign          (N,  E,  S,  W; set = negative)
//	12    this sample is significant
//	13    this sample has been refined at least once
//	14    this sample was coded in the current plane's sig-prop pass
//	15    this sample's input sign (encode side; set = negative)
const (
	fSigNE uint32 = 1 << 0
	fSigSE uint32 = 1 << 1
	fSigSW uint32 = 1 << 2
	fSigNW uint32 = 1 << 3
	fSigN  uint32 = 1 << 4
	fSigE  uint32 = 1 << 5
	fSigS  uint32 = 1 << 6
	fSigW  uint32 = 1 << 7
	fSgnN  uint32 = 1 << 8
	fSgnE  uint32 = 1 << 9
	fSgnS  uint32 = 1 << 10
	fSgnW  uint32 = 1 << 11

	fSig     uint32 = 1 << 12
	fRefined uint32 = 1 << 13
	fVisited uint32 = 1 << 14
	fNeg     uint32 = 1 << 15

	// fSigOth masks all eight neighbor-significance bits: nonzero iff any
	// 8-neighbor is significant.
	fSigOth = fSigNE | fSigSE | fSigSW | fSigNW | fSigN | fSigE | fSigS | fSigW
)

// zcLUT maps the eight neighbor-significance bits (flags & fSigOth) to the
// zero-coding context, one table per band orientation (indexed by
// dwt.BandType): the HL swap and the per-band switch of Annex D Table D.1
// are baked into the tables, so the per-sample cost is one masked load.
var zcLUT [4][256]uint8

// scLUT maps the primary-neighbor significance+sign bits ((flags >> 4) &
// 0xFF) to the sign-coding context and XOR bit of Table D.3, packed as
// ctx | xorbit<<7.
var scLUT [256]uint8

func init() {
	for _, band := range []dwt.BandType{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for m := 0; m < 256; m++ {
			zcLUT[band][m] = zcFromFlags(band, uint32(m))
		}
	}
	for m := 0; m < 256; m++ {
		ctx, xorbit := scFromFlags(uint32(m) << 4)
		scLUT[m] = uint8(ctx) | uint8(xorbit)<<7
	}
}

// setSig marks sample i significant with the given sign and pushes the
// significance/sign bits into its eight neighbors' flag words — the one-time
// update that replaces per-context neighbor gathering. Writes that fall on
// the border ring of the (w+2)x(h+2) array land in cells never coded, so no
// bounds checks are needed.
func (c *coder) setSig(i int, neg bool) {
	f := c.flags
	bw := c.bw
	f[i-bw-1] |= fSigSE // the NW neighbor sees this sample to its south-east
	f[i-bw+1] |= fSigSW
	f[i+bw-1] |= fSigNE
	f[i+bw+1] |= fSigNW
	if neg {
		f[i-bw] |= fSigS | fSgnS
		f[i-1] |= fSigE | fSgnE
		f[i+1] |= fSigW | fSgnW
		f[i+bw] |= fSigN | fSgnN
	} else {
		f[i-bw] |= fSigS
		f[i-1] |= fSigE
		f[i+1] |= fSigW
		f[i+bw] |= fSigN
	}
	f[i] |= fSig
}

// mrCtx returns the magnitude-refinement context (Table D.2) from a flag
// word: 16 once refined, else 15 with any significant neighbor, else 14.
func mrCtx(fl uint32) int {
	if fl&fRefined != 0 {
		return ctxMR0 + 2
	}
	if fl&fSigOth != 0 {
		return ctxMR0 + 1
	}
	return ctxMR0
}

// zcFromFlags is the build-time reference for zcLUT: the neighbor counts and
// the band-orientation switch of Annex D Table D.1, computed from the
// neighbor-significance bits of a flag word.
func zcFromFlags(band dwt.BandType, neigh uint32) uint8 {
	bit := func(m uint32) int {
		if neigh&m != 0 {
			return 1
		}
		return 0
	}
	h := bit(fSigW) + bit(fSigE)
	v := bit(fSigN) + bit(fSigS)
	d := bit(fSigNW) + bit(fSigNE) + bit(fSigSW) + bit(fSigSE)
	if band == dwt.HL {
		h, v = v, h
	}
	if band == dwt.HH {
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	}
	// LL, LH (and HL after the swap above).
	switch {
	case h == 2:
		return 8
	case h == 1:
		switch {
		case v >= 1:
			return 7
		case d >= 1:
			return 6
		default:
			return 5
		}
	default:
		switch {
		case v == 2:
			return 4
		case v == 1:
			return 3
		case d >= 2:
			return 2
		case d == 1:
			return 1
		default:
			return 0
		}
	}
}

// scFromFlags is the build-time reference for scLUT: clamped horizontal and
// vertical sign contributions and Table D.3.
func scFromFlags(fl uint32) (ctx, xorbit int) {
	contrib := func(sig, sgn uint32) int {
		if fl&sig == 0 {
			return 0
		}
		if fl&sgn != 0 {
			return -1
		}
		return 1
	}
	h := contrib(fSigW, fSgnW) + contrib(fSigE, fSgnE)
	if h > 1 {
		h = 1
	} else if h < -1 {
		h = -1
	}
	v := contrib(fSigN, fSgnN) + contrib(fSigS, fSgnS)
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	switch {
	case h == 1:
		switch v {
		case 1:
			return 13, 0
		case 0:
			return 12, 0
		default:
			return 11, 0
		}
	case h == 0:
		switch v {
		case 1:
			return 10, 0
		case 0:
			return 9, 0
		default:
			return 10, 1
		}
	default: // h == -1
		switch v {
		case 1:
			return 11, 1
		case 0:
			return 12, 1
		default:
			return 13, 1
		}
	}
}
