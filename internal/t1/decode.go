package t1

import (
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// decoder carries the decode-side state threaded through the shared pass
// routines.
type decoder struct {
	mq        *mq.Decoder
	lastPlane []uint8 // per bordered sample: (last updated plane)+1, 0 = never
}

// Decode reconstructs a code-block from the first npasses coding passes of
// eb. For truncated decodes (npasses < len(eb.Passes)) the remaining
// uncertainty interval is compensated with a midpoint offset, the standard
// dequantization convention. With all passes decoded the result is exactly
// the encoder's input. The result has stride eb.W.
func Decode(eb *EncodedBlock, npasses int) ([]int32, error) {
	if npasses < 0 || npasses > len(eb.Passes) {
		return nil, fmt.Errorf("t1: npasses %d out of range [0,%d]", npasses, len(eb.Passes))
	}
	data := eb.Data
	if npasses > 0 {
		if r := eb.Passes[npasses-1].Rate; r < len(data) {
			data = data[:r]
		}
	}
	return NewBlockDecoder().DecodeSegment(eb.W, eb.H, eb.Band, eb.NumBitplanes, data, npasses)
}

// BlockDecoder is the reusable tier-1 block decoder, mirroring Coder on the
// encode side: the bordered magnitude/flag/last-plane arrays, the MQ decoder
// and the output arena all persist across blocks, so steady-state decoding
// performs no heap allocations. Code-blocks are independent, so each decode
// worker owns one BlockDecoder and shares nothing.
//
// Returned sample slices live in an arena owned by the BlockDecoder: they
// stay valid until Release, which reclaims every slice handed out since the
// previous Release. A BlockDecoder is not safe for concurrent use.
type BlockDecoder struct {
	c   coder
	mq  mq.Decoder
	dec decoder
	out []int32
}

// NewBlockDecoder returns an empty BlockDecoder; buffers are sized on first
// use.
func NewBlockDecoder() *BlockDecoder { return &BlockDecoder{} }

// Release reclaims every sample slice returned by DecodeSegment since the
// last Release. The caller must have dropped all references to them.
func (bd *BlockDecoder) Release() { bd.out = bd.out[:0] }

// takeOut carves a zeroed length-n slice out of the sample arena. When the
// current chunk is exhausted a larger one replaces it; slices handed out
// earlier keep their (still live) old backing storage.
func (bd *BlockDecoder) takeOut(n int) []int32 {
	if cap(bd.out)-len(bd.out) < n {
		c := 2 * cap(bd.out)
		if c < n {
			c = n
		}
		if c < 1<<12 {
			c = 1 << 12
		}
		bd.out = make([]int32, 0, c)
	}
	base := len(bd.out)
	bd.out = bd.out[:base+n]
	s := bd.out[base : base+n : base+n]
	clear(s)
	return s
}

// DecodeSegment reconstructs a w x h code-block from the first npasses coding
// passes of a codeword segment, reusing the BlockDecoder's buffers. data must
// already be truncated to the rate of pass npasses (the tier-2 packet walk
// hands segments out at exactly that granularity). See Decode for the
// midpoint-compensation convention and BlockDecoder for the result lifetime.
func (bd *BlockDecoder) DecodeSegment(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int) ([]int32, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("t1: invalid block %dx%d", w, h)
	}
	if npasses < 0 {
		return nil, fmt.Errorf("t1: negative pass count %d", npasses)
	}
	out := bd.takeOut(w * h)
	if numBitplanes <= 0 || npasses == 0 {
		return out, nil
	}
	c := &bd.c
	c.w, c.h, c.bw, c.band = w, h, w+2, band
	n := (w + 2) * (h + 2)
	if cap(c.mag) < n {
		c.mag = make([]int32, n)
		c.flags = make([]uint8, n)
		bd.dec.lastPlane = make([]uint8, n)
	} else {
		c.mag = c.mag[:n]
		c.flags = c.flags[:n]
		bd.dec.lastPlane = bd.dec.lastPlane[:n]
		clear(c.mag)
		clear(c.flags)
		clear(bd.dec.lastPlane)
	}
	c.resetContexts()
	bd.mq.Reset(data)
	bd.dec.mq = &bd.mq
	dec := &bd.dec

	pass := 0
	nbp := numBitplanes
planes:
	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			if pass == npasses {
				break planes
			}
			c.sigPropPass(nil, plane, dec)
			pass++
			if pass == npasses {
				break planes
			}
			c.refinePass(nil, plane, dec)
			pass++
		}
		if pass == npasses {
			break planes
		}
		c.cleanupPass(nil, plane, dec)
		pass++
		for i := range c.flags {
			c.flags[i] &^= fVisited
		}
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := c.idx(x, y)
			if c.flags[i]&fSig == 0 {
				continue
			}
			v := c.mag[i]
			if lp := dec.lastPlane[i]; lp >= 2 {
				v += 1 << (lp - 2) // midpoint of the undecoded interval
			}
			if c.flags[i]&fNeg != 0 {
				v = -v
			}
			out[y*w+x] = v
		}
	}
	return out, nil
}

// TotalPasses returns the number of coding passes for a block with the given
// number of bit-planes (3 per plane, minus the two skipped passes of the
// most significant plane).
func TotalPasses(numBitplanes int) int {
	if numBitplanes <= 0 {
		return 0
	}
	return 3*numBitplanes - 2
}
