package t1

import (
	"fmt"

	"pj2k/internal/mq"
)

// decoder carries the decode-side state threaded through the shared pass
// routines.
type decoder struct {
	mq        *mq.Decoder
	lastPlane []uint8 // per bordered sample: (last updated plane)+1, 0 = never
}

// Decode reconstructs a code-block from the first npasses coding passes of
// eb. For truncated decodes (npasses < len(eb.Passes)) the remaining
// uncertainty interval is compensated with a midpoint offset, the standard
// dequantization convention. With all passes decoded the result is exactly
// the encoder's input. The result has stride eb.W.
func Decode(eb *EncodedBlock, npasses int) ([]int32, error) {
	if npasses < 0 || npasses > len(eb.Passes) {
		return nil, fmt.Errorf("t1: npasses %d out of range [0,%d]", npasses, len(eb.Passes))
	}
	out := make([]int32, eb.W*eb.H)
	if eb.NumBitplanes == 0 || npasses == 0 {
		return out, nil
	}
	c := &coder{w: eb.W, h: eb.H, bw: eb.W + 2, band: eb.Band}
	c.mag = make([]int32, (eb.W+2)*(eb.H+2))
	c.flags = make([]uint8, (eb.W+2)*(eb.H+2))
	c.resetContexts()

	data := eb.Data
	if r := eb.Passes[npasses-1].Rate; r < len(data) {
		data = data[:r]
	}
	dec := &decoder{
		mq:        mq.NewDecoder(data),
		lastPlane: make([]uint8, (eb.W+2)*(eb.H+2)),
	}

	pass := 0
	nbp := eb.NumBitplanes
planes:
	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			if pass == npasses {
				break planes
			}
			c.sigPropPass(nil, plane, dec)
			pass++
			if pass == npasses {
				break planes
			}
			c.refinePass(nil, plane, dec)
			pass++
		}
		if pass == npasses {
			break planes
		}
		c.cleanupPass(nil, plane, dec)
		pass++
		for i := range c.flags {
			c.flags[i] &^= fVisited
		}
	}

	for y := 0; y < eb.H; y++ {
		for x := 0; x < eb.W; x++ {
			i := c.idx(x, y)
			if c.flags[i]&fSig == 0 {
				continue
			}
			v := c.mag[i]
			if lp := dec.lastPlane[i]; lp >= 2 {
				v += 1 << (lp - 2) // midpoint of the undecoded interval
			}
			if c.flags[i]&fNeg != 0 {
				v = -v
			}
			out[y*eb.W+x] = v
		}
	}
	return out, nil
}

// TotalPasses returns the number of coding passes for a block with the given
// number of bit-planes (3 per plane, minus the two skipped passes of the
// most significant plane).
func TotalPasses(numBitplanes int) int {
	if numBitplanes <= 0 {
		return 0
	}
	return 3*numBitplanes - 2
}
