package t1

import (
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// Decode reconstructs a code-block from the first npasses coding passes of
// eb. For truncated decodes (npasses < len(eb.Passes)) the remaining
// uncertainty interval is compensated with a midpoint offset, the standard
// dequantization convention. With all passes decoded the result is exactly
// the encoder's input. The result has stride eb.W.
func Decode(eb *EncodedBlock, npasses int) ([]int32, error) {
	if npasses < 0 || npasses > len(eb.Passes) {
		return nil, fmt.Errorf("t1: npasses %d out of range [0,%d]", npasses, len(eb.Passes))
	}
	data := eb.Data
	if npasses > 0 {
		if r := eb.Passes[npasses-1].Rate; r < len(data) {
			data = data[:r]
		}
	}
	return NewBlockDecoder().DecodeSegment(eb.W, eb.H, eb.Band, eb.NumBitplanes, data, npasses)
}

// BlockDecoder is the reusable tier-1 block decoder, mirroring Coder on the
// encode side: the bordered magnitude/flag/last-plane arrays, the MQ decoder
// and the output arena all persist across blocks, so steady-state decoding
// performs no heap allocations. Code-blocks are independent, so each decode
// worker owns one BlockDecoder and shares nothing.
//
// Returned sample slices live in an arena owned by the BlockDecoder: they
// stay valid until Release, which reclaims every slice handed out since the
// previous Release. A BlockDecoder is not safe for concurrent use.
type BlockDecoder struct {
	c         coder
	mq        mq.Decoder
	lastPlane []uint8 // per bordered sample: (last updated plane)+1, 0 = never
	out       []int32
}

// NewBlockDecoder returns an empty BlockDecoder; buffers are sized on first
// use.
func NewBlockDecoder() *BlockDecoder { return &BlockDecoder{} }

// Release reclaims every sample slice returned by DecodeSegment since the
// last Release. The caller must have dropped all references to them.
func (bd *BlockDecoder) Release() { bd.out = bd.out[:0] }

// takeOut carves a zeroed length-n slice out of the sample arena. When the
// current chunk is exhausted a larger one replaces it; slices handed out
// earlier keep their (still live) old backing storage.
func (bd *BlockDecoder) takeOut(n int) []int32 {
	if cap(bd.out)-len(bd.out) < n {
		c := 2 * cap(bd.out)
		if c < n {
			c = n
		}
		if c < 1<<12 {
			c = 1 << 12
		}
		bd.out = make([]int32, 0, c)
	}
	base := len(bd.out)
	bd.out = bd.out[:base+n]
	s := bd.out[base : base+n : base+n]
	clear(s)
	return s
}

// SegStats reports what a checked decode had to do to a block: whether the
// result was concealed (truncated to its last clean cleanup pass, or zeroed
// outright) and how many of the requested passes were dropped doing so.
type SegStats struct {
	Concealed     bool
	DroppedPasses int
}

// overrunSlack is the largest number of synthetic past-the-end MQ byte reads
// a clean decode is allowed before the segment counts as corrupt: the encoder
// drops at most one trailing 0xFF plus up to two flush bytes, and the decoder
// reads at most a couple of bytes ahead, so a healthy segment never synthesizes
// more than a handful. The data-proportional term keeps the bound loose for
// rate-truncated segments, whose final bits legitimately come from synthesis.
func overrunSlack(n int) int { return 8 + n/4 }

// DecodeSegment reconstructs a w x h code-block from the first npasses coding
// passes of a codeword segment, reusing the BlockDecoder's buffers. data must
// already be truncated to the rate of pass npasses (the tier-2 packet walk
// hands segments out at exactly that granularity). See Decode for the
// midpoint-compensation convention and BlockDecoder for the result lifetime.
func (bd *BlockDecoder) DecodeSegment(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int) ([]int32, error) {
	out, _, err := bd.DecodeSegmentChecked(w, h, band, numBitplanes, data, npasses, false, false)
	return out, err
}

// DecodeSegmentChecked is DecodeSegment with the error-resilience tools wired
// in. With segSym set, the four-symbol segmentation marker terminating each
// cleanup pass is verified: a mismatch is corruption at or before that pass.
// With resilient set, detected corruption — a failed segmentation symbol, or
// (without symbols) the MQ decoder running far past its segment — is concealed
// instead of returned as an error: the block is re-decoded truncated to its
// last clean cleanup pass (or zeroed when no clean prefix exists) and the
// damage is reported in SegStats. With resilient false a failed symbol is an
// error, making strict decodes of symbol-carrying streams self-checking.
func (bd *BlockDecoder) DecodeSegmentChecked(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int, segSym, resilient bool) ([]int32, SegStats, error) {
	var st SegStats
	if w <= 0 || h <= 0 {
		return nil, st, fmt.Errorf("t1: invalid block %dx%d", w, h)
	}
	if npasses < 0 {
		if !resilient {
			return nil, st, fmt.Errorf("t1: negative pass count %d", npasses)
		}
		st.Concealed = true // impossible state: conceal as an empty block
		npasses = 0
	}
	out := bd.takeOut(w * h)
	if numBitplanes <= 0 || npasses == 0 {
		return out, st, nil
	}
	if resilient && numBitplanes > 31 {
		// int32 magnitudes cannot hold more planes: a corrupt zero-bit-plane
		// count drove Mb-zbp out of range. Conceal as a zero block.
		st.Concealed = true
		st.DroppedPasses = npasses
		return out, st, nil
	}
	decoded, ok := bd.runPasses(w, h, band, numBitplanes, data, npasses, segSym)
	if !ok {
		if !resilient {
			return nil, st, fmt.Errorf("t1: segmentation symbol mismatch after pass %d", decoded)
		}
		st.Concealed = true
		st.DroppedPasses = npasses - decoded
		if decoded == 0 {
			return out, st, nil // no clean prefix: zero the block
		}
		// The prefix through the last verified cleanup pass is clean;
		// re-decode just it (corruption is rare, so the replay cost is paid
		// almost never).
		bd.runPasses(w, h, band, numBitplanes, data, decoded, segSym)
	} else if resilient && !segSym {
		if bd.mq.Overrun() > overrunSlack(len(data)) {
			// Without segmentation symbols there is no per-pass checkpoint to
			// replay to; a decoder driven far past its segment zeroes the block.
			st.Concealed = true
			st.DroppedPasses = npasses
			return out, st, nil
		}
	}
	bd.fillOut(out, w, h)
	return out, st, nil
}

// runPasses runs the pass loop over the decoder's bordered state, verifying
// the segmentation symbol after each cleanup pass when segSym is set. Returns
// the pass count reached and whether every checked symbol matched; on a
// mismatch the returned count is the passes through the last verified cleanup
// (the clean prefix a concealment replay can trust).
func (bd *BlockDecoder) runPasses(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int, segSym bool) (int, bool) {
	c := &bd.c
	c.reset(w, h, band)
	n := (w + 2) * (h + 2)
	if cap(bd.lastPlane) < n {
		bd.lastPlane = make([]uint8, n)
	} else {
		bd.lastPlane = bd.lastPlane[:n]
		clear(bd.lastPlane)
	}
	c.resetContexts()
	bd.mq.Reset(data)

	pass, good := 0, 0
	nbp := numBitplanes
planes:
	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			if pass == npasses {
				break planes
			}
			bd.decSigProp(plane)
			pass++
			if pass == npasses {
				break planes
			}
			bd.decRefine(plane)
			pass++
		}
		if pass == npasses {
			break planes
		}
		bd.decCleanup(plane)
		pass++
		if segSym && !bd.decSegSym() {
			return good, false
		}
		good = pass
		c.clearVisited()
	}
	return pass, true
}

// decSegSym decodes the four-symbol segmentation marker terminating a cleanup
// pass, reporting whether it matched the encoder's 0xA.
func (bd *BlockDecoder) decSegSym() bool {
	c := &bd.c
	v := 0
	for i := 0; i < 4; i++ {
		v = v<<1 | bd.mq.Decode(&c.cx[ctxUNI])
	}
	return v == 0xA
}

// fillOut writes the decoded samples (with midpoint compensation for planes
// below the last decoded one) into out from the coder's bordered state.
func (bd *BlockDecoder) fillOut(out []int32, w, h int) {
	c := &bd.c
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := c.idx(x, y)
			if c.flags[i]&fSig == 0 {
				continue
			}
			v := c.mag[i]
			if lp := bd.lastPlane[i]; lp >= 2 {
				v += 1 << (lp - 2) // midpoint of the undecoded interval
			}
			if c.flags[i]&fNeg != 0 {
				v = -v
			}
			out[y*w+x] = v
		}
	}
}

// decSigProp mirrors encSigProp on the decode side.
func (bd *BlockDecoder) decSigProp(plane uint) {
	c := &bd.c
	f, bw, zc := c.flags, c.bw, c.zc
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSigOth == 0 {
				continue // nothing in this column has a significant neighbor
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&fSig != 0 || fl&fSigOth == 0 {
					continue
				}
				if bd.mq.Decode(&c.cx[zc[fl&fSigOth]]) == 1 {
					bd.decSign(i, plane)
				}
				f[i] |= fVisited
			}
		}
	}
}

// decSign decodes the sign of sample i which just became significant at
// plane, marks it significant in its neighborhood, and records the plane for
// the midpoint compensation of truncated decodes.
func (bd *BlockDecoder) decSign(i int, plane uint) {
	c := &bd.c
	sc := scLUT[(c.flags[i]>>4)&0xFF]
	bit := bd.mq.Decode(&c.cx[sc&0x1F])
	neg := bit^int(sc>>7) == 1
	if neg {
		c.flags[i] |= fNeg
	}
	c.setSig(i, neg)
	c.mag[i] |= 1 << plane
	bd.lastPlane[i] = uint8(plane) + 1 // store plane+1 (0 = untouched)
}

// decRefine mirrors encRefine on the decode side.
func (bd *BlockDecoder) decRefine(plane uint) {
	c := &bd.c
	f, mag, bw := c.flags, c.mag, c.bw
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue // nothing significant in this column to refine
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&(fSig|fVisited) != fSig {
					continue
				}
				if bd.mq.Decode(&c.cx[mrCtx(fl)]) == 1 {
					mag[i] |= 1 << plane
				}
				bd.lastPlane[i] = uint8(plane) + 1
				f[i] = fl | fRefined
			}
		}
	}
}

// decCleanup mirrors encCleanup on the decode side.
func (bd *BlockDecoder) decCleanup(plane uint) {
	c := &bd.c
	f, bw, zc := c.flags, c.bw, c.zc
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			y := 0
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&(fSig|fVisited|fSigOth) == 0 {
				if bd.mq.Decode(&c.cx[ctxRL]) == 0 {
					continue
				}
				first := bd.mq.Decode(&c.cx[ctxUNI])<<1 | bd.mq.Decode(&c.cx[ctxUNI])
				bd.decSign(i+first*bw, plane)
				y = first + 1
			}
			for ; y < rows; y++ {
				ii := i + y*bw
				fl := f[ii]
				if fl&(fSig|fVisited) != 0 {
					continue
				}
				if bd.mq.Decode(&c.cx[zc[fl&fSigOth]]) == 1 {
					bd.decSign(ii, plane)
				}
			}
		}
	}
}
