package t1

import (
	"fmt"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// Decode reconstructs a code-block from the first npasses coding passes of
// eb. For truncated decodes (npasses < len(eb.Passes)) the remaining
// uncertainty interval is compensated with a midpoint offset, the standard
// dequantization convention. With all passes decoded the result is exactly
// the encoder's input. The result has stride eb.W.
func Decode(eb *EncodedBlock, npasses int) ([]int32, error) {
	if npasses < 0 || npasses > len(eb.Passes) {
		return nil, fmt.Errorf("t1: npasses %d out of range [0,%d]", npasses, len(eb.Passes))
	}
	data := eb.Data
	if npasses > 0 {
		if r := eb.Passes[npasses-1].Rate; r < len(data) {
			data = data[:r]
		}
	}
	in := BlockIn{
		W: eb.W, H: eb.H, Band: eb.Band,
		NumBitplanes: eb.NumBitplanes,
		Data:         data,
		NPasses:      npasses,
		Modes:        eb.Modes,
		SegEnds:      eb.SegmentEnds(nil, npasses),
	}
	out, _, err := NewBlockDecoder().DecodeBlock(&in, false)
	return out, err
}

// BlockDecoder is the reusable tier-1 block decoder, mirroring Coder on the
// encode side: the bordered magnitude/flag/last-plane arrays, the MQ decoder
// and the output arena all persist across blocks, so steady-state decoding
// performs no heap allocations. Code-blocks are independent, so each decode
// worker owns one BlockDecoder and shares nothing.
//
// Returned sample slices live in an arena owned by the BlockDecoder: they
// stay valid until Release, which reclaims every slice handed out since the
// previous Release. A BlockDecoder is not safe for concurrent use.
type BlockDecoder struct {
	c         coder
	mq        mq.Decoder
	lastPlane []uint8 // per bordered sample: (last updated plane)+1, 0 = never
	out       []int32

	// Pool, when set, lets DecodeBlock run a bypassed significance pass and
	// the following refinement pass concurrently — their raw segments are
	// independently positioned under Bypass+TermAll, and refinement touches
	// only samples significant before the plane, disjoint from the state
	// significance propagation writes. Nil keeps decoding fully serial.
	Pool *core.Pool

	modes   Modes
	segData []byte
	segEnds []int
	ovr     int // overrun total banked across codeword segments

	rr, rr2  rawReader // raw-segment readers (rr2 feeds the parallel MR pass)
	mrIdx    []int32   // scan-order magnitude-refinement members for rr2
	parPlane uint
	parFn    func(worker, task int)
}

// NewBlockDecoder returns an empty BlockDecoder; buffers are sized on first
// use.
func NewBlockDecoder() *BlockDecoder {
	bd := &BlockDecoder{}
	// Bound once so the parallel fork allocates nothing per block.
	bd.parFn = func(_, task int) {
		if task == 0 {
			bd.decSigPropRaw(bd.parPlane)
		} else {
			bd.decRefineRawList(bd.parPlane)
		}
	}
	return bd
}

// Release reclaims every sample slice returned by DecodeSegment since the
// last Release. The caller must have dropped all references to them.
func (bd *BlockDecoder) Release() { bd.out = bd.out[:0] }

// takeOut carves a zeroed length-n slice out of the sample arena. When the
// current chunk is exhausted a larger one replaces it; slices handed out
// earlier keep their (still live) old backing storage.
func (bd *BlockDecoder) takeOut(n int) []int32 {
	if cap(bd.out)-len(bd.out) < n {
		c := 2 * cap(bd.out)
		if c < n {
			c = n
		}
		if c < 1<<12 {
			c = 1 << 12
		}
		bd.out = make([]int32, 0, c)
	}
	base := len(bd.out)
	bd.out = bd.out[:base+n]
	s := bd.out[base : base+n : base+n]
	clear(s)
	return s
}

// SegStats reports what a checked decode had to do to a block: whether the
// result was concealed (truncated to its last clean cleanup pass, or zeroed
// outright) and how many of the requested passes were dropped doing so.
type SegStats struct {
	Concealed     bool
	DroppedPasses int
}

// overrunSlack is the largest number of synthetic past-the-end MQ byte reads
// a clean decode is allowed before the segment counts as corrupt: the encoder
// drops at most one trailing 0xFF plus up to two flush bytes, and the decoder
// reads at most a couple of bytes ahead, so a healthy segment never synthesizes
// more than a handful. The data-proportional term keeps the bound loose for
// rate-truncated segments, whose final bits legitimately come from synthesis.
func overrunSlack(n int) int { return 8 + n/4 }

// DecodeSegment reconstructs a w x h code-block from the first npasses coding
// passes of a codeword segment, reusing the BlockDecoder's buffers. data must
// already be truncated to the rate of pass npasses (the tier-2 packet walk
// hands segments out at exactly that granularity). See Decode for the
// midpoint-compensation convention and BlockDecoder for the result lifetime.
func (bd *BlockDecoder) DecodeSegment(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int) ([]int32, error) {
	out, _, err := bd.DecodeSegmentChecked(w, h, band, numBitplanes, data, npasses, false, false)
	return out, err
}

// DecodeSegmentChecked is DecodeSegment with the error-resilience tools wired
// in; it is DecodeBlock for default-mode blocks (single codeword segment,
// optionally with segmentation symbols).
func (bd *BlockDecoder) DecodeSegmentChecked(w, h int, band dwt.BandType, numBitplanes int, data []byte, npasses int, segSym, resilient bool) ([]int32, SegStats, error) {
	in := BlockIn{
		W: w, H: h, Band: band,
		NumBitplanes: numBitplanes,
		Data:         data,
		NPasses:      npasses,
		Modes:        Modes{SegSym: segSym},
	}
	return bd.DecodeBlock(&in, resilient)
}

// BlockIn describes one code-block handed to DecodeBlock: the concatenated
// codeword segments in Data, the pass count they cover, the coder modes the
// stream was encoded with, and — when Modes terminate passes — the cumulative
// byte offsets in Data at which segments end (nil otherwise; tier-2 collects
// them from the per-segment lengths the packet headers signal).
type BlockIn struct {
	W, H         int
	Band         dwt.BandType
	NumBitplanes int
	Data         []byte
	NPasses      int
	Modes        Modes
	SegEnds      []int
}

// DecodeBlock reconstructs a code-block under its coder modes, with the
// error-resilience tools wired in. With Modes.SegSym the four-symbol
// segmentation marker terminating each cleanup pass is verified: a mismatch
// is corruption at or before that pass. With resilient set, detected
// corruption — a failed segmentation symbol, an inconsistent segment layout,
// or (without symbols) the coders running far past their segments — is
// concealed instead of returned as an error: the block is re-decoded
// truncated to its last clean cleanup pass (or zeroed when no clean prefix
// exists) and the damage is reported in SegStats. With resilient false those
// conditions are errors, making strict decodes self-checking.
func (bd *BlockDecoder) DecodeBlock(in *BlockIn, resilient bool) ([]int32, SegStats, error) {
	var st SegStats
	if in.W <= 0 || in.H <= 0 {
		return nil, st, fmt.Errorf("t1: invalid block %dx%d", in.W, in.H)
	}
	npasses := in.NPasses
	if npasses < 0 {
		if !resilient {
			return nil, st, fmt.Errorf("t1: negative pass count %d", npasses)
		}
		st.Concealed = true // impossible state: conceal as an empty block
		npasses = 0
	}
	out := bd.takeOut(in.W * in.H)
	if in.NumBitplanes <= 0 || npasses == 0 {
		return out, st, nil
	}
	if resilient && in.NumBitplanes > 31 {
		// int32 magnitudes cannot hold more planes: a corrupt zero-bit-plane
		// count drove Mb-zbp out of range. Conceal as a zero block.
		st.Concealed = true
		st.DroppedPasses = npasses
		return out, st, nil
	}
	if err := bd.bindSegments(in, npasses); err != nil {
		if !resilient {
			return nil, st, err
		}
		st.Concealed = true // segment layout lies about the data: zero the block
		st.DroppedPasses = npasses
		return out, st, nil
	}
	decoded, ok := bd.runPasses(in.W, in.H, in.Band, in.NumBitplanes, npasses)
	if !ok {
		if !resilient {
			return nil, st, fmt.Errorf("t1: segmentation symbol mismatch after pass %d", decoded)
		}
		st.Concealed = true
		st.DroppedPasses = npasses - decoded
		if decoded == 0 {
			return out, st, nil // no clean prefix: zero the block
		}
		// The prefix through the last verified cleanup pass is clean;
		// re-decode just it (corruption is rare, so the replay cost is paid
		// almost never).
		bd.runPasses(in.W, in.H, in.Band, in.NumBitplanes, decoded)
	} else if resilient && !in.Modes.SegSym {
		if bd.ovr > overrunSlack(len(in.Data)) {
			// Without segmentation symbols there is no per-pass checkpoint to
			// replay to; a decoder driven far past its segments zeroes the block.
			st.Concealed = true
			st.DroppedPasses = npasses
			return out, st, nil
		}
	}
	bd.fillOut(out, in.W, in.H)
	return out, st, nil
}

// bindSegments validates in's codeword-segment layout against its modes and
// stashes it on the decoder for runPasses. Non-terminating modes use all of
// Data as the single segment; terminating modes require one byte offset per
// segment, non-decreasing and within Data.
func (bd *BlockDecoder) bindSegments(in *BlockIn, npasses int) error {
	bd.modes, bd.segData, bd.segEnds = in.Modes, in.Data, nil
	if !in.Modes.Terminated() {
		return nil
	}
	want := in.Modes.NumSegments(npasses)
	if len(in.SegEnds) != want {
		return fmt.Errorf("t1: %d codeword segments signalled, modes require %d for %d passes",
			len(in.SegEnds), want, npasses)
	}
	prev := 0
	for _, e := range in.SegEnds {
		if e < prev || e > len(in.Data) {
			return fmt.Errorf("t1: codeword segment end %d out of order or past %d data bytes", e, len(in.Data))
		}
		prev = e
	}
	bd.segEnds = in.SegEnds
	return nil
}

// segRange returns the byte range of codeword segment k within segData.
func (bd *BlockDecoder) segRange(k int) (int, int) {
	if bd.segEnds == nil {
		return 0, len(bd.segData)
	}
	lo := 0
	if k > 0 && k <= len(bd.segEnds) {
		lo = bd.segEnds[k-1]
	}
	hi := lo
	if k < len(bd.segEnds) {
		hi = bd.segEnds[k]
	}
	return lo, hi
}

// startSeg aims the MQ or raw reader at pass's codeword segment. A new
// segment begins at pass 0 and after every terminated pass; before re-aiming,
// the finished segment's overrun is banked so DecodeBlock can judge the
// whole block. The finished pass pass-1 read via the raw reader exactly when
// it was bypassed, so the banking mirrors the reader choice.
func (bd *BlockDecoder) startSeg(pass int, seg *int, raw bool) {
	if pass > 0 {
		if !bd.modes.TermPass(pass - 1) {
			return
		}
		if bd.modes.PassBypassed(pass - 1) {
			bd.ovr += bd.rr.overrun
		} else {
			bd.ovr += bd.mq.Overrun()
		}
		*seg++
	}
	lo, hi := bd.segRange(*seg)
	if raw {
		bd.rr.Reset(bd.segData[lo:hi])
	} else {
		bd.mq.Reset(bd.segData[lo:hi])
	}
}

// runPasses runs the pass loop over the decoder's bordered state, switching
// coders and codeword segments at the boundaries the bound modes dictate and
// verifying the segmentation symbol after each cleanup pass when enabled.
// Returns the pass count reached and whether every checked symbol matched;
// on a mismatch the returned count is the passes through the last verified
// cleanup (the clean prefix a concealment replay can trust).
func (bd *BlockDecoder) runPasses(w, h int, band dwt.BandType, numBitplanes, npasses int) (int, bool) {
	c := &bd.c
	m := bd.modes
	c.causal = m.Causal
	c.reset(w, h, band)
	n := (w + 2) * (h + 2)
	if cap(bd.lastPlane) < n {
		bd.lastPlane = make([]uint8, n)
	} else {
		bd.lastPlane = bd.lastPlane[:n]
		clear(bd.lastPlane)
	}
	c.resetContexts()
	bd.ovr = 0
	// Fork bypassed SP‖MR pairs only when TermAll gives them independent
	// segments and a pool with real parallelism is attached.
	fork := m.Bypass && m.TermAll && bd.Pool != nil && bd.Pool.Size() > 1

	pass, good, seg := 0, 0, 0
	nbp := numBitplanes
planes:
	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			if pass == npasses {
				break planes
			}
			if raw := m.PassBypassed(pass); raw && fork && pass+1 < npasses {
				bd.startSeg(pass, &seg, true) // rr over the SP segment
				seg++
				lo, hi := bd.segRange(seg) // rr2 over the MR segment
				bd.rr2.Reset(bd.segData[lo:hi])
				bd.buildMRList()
				bd.parPlane = plane
				bd.Pool.TasksIDMax(2, 2, bd.parFn)
				// MR only toggles magnitude bits at pre-listed samples; its
				// flag updates are applied here, after the join, so the two
				// passes never write the same word. rr still holds the SP
				// segment's unbanked overrun (banked at the next startSeg);
				// rr2's is banked now.
				bd.ovr += bd.rr2.overrun
				for _, i := range bd.mrIdx {
					c.flags[i] |= fRefined
				}
				pass += 2
			} else {
				if raw {
					bd.startSeg(pass, &seg, true)
					bd.decSigPropRaw(plane)
				} else {
					bd.startSeg(pass, &seg, false)
					bd.decSigProp(plane)
				}
				if m.ResetCtx {
					c.resetContexts()
				}
				pass++
				if pass == npasses {
					break planes
				}
				if m.PassBypassed(pass) {
					bd.startSeg(pass, &seg, true)
					bd.decRefineRaw(plane)
				} else {
					bd.startSeg(pass, &seg, false)
					bd.decRefine(plane)
				}
				pass++
			}
			if m.ResetCtx {
				c.resetContexts()
			}
		}
		if pass == npasses {
			break planes
		}
		bd.startSeg(pass, &seg, false)
		bd.decCleanup(plane)
		pass++
		if m.SegSym && !bd.decSegSym() {
			return good, false
		}
		good = pass
		if m.ResetCtx {
			c.resetContexts()
		}
		c.clearVisited()
	}
	// Bank the final segment's overrun (raw iff the last pass was bypassed).
	if pass > 0 {
		if m.PassBypassed(pass - 1) {
			bd.ovr += bd.rr.overrun
		} else {
			bd.ovr += bd.mq.Overrun()
		}
	}
	return pass, true
}

// buildMRList collects, in exact stripe-column scan order, the samples the
// current plane's magnitude-refinement pass will visit. Before the plane's
// significance pass runs, those are precisely the currently significant
// samples: SP marks everything it makes significant as visited, excluding it
// from refinement. The list lets the refinement bits be consumed
// independently of (and concurrently with) the significance pass.
func (bd *BlockDecoder) buildMRList() {
	c := &bd.c
	f, bw := c.flags, c.bw
	bd.mrIdx = bd.mrIdx[:0]
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				if f[i]&fSig != 0 {
					bd.mrIdx = append(bd.mrIdx, int32(i))
				}
			}
		}
	}
}

// decSegSym decodes the four-symbol segmentation marker terminating a cleanup
// pass, reporting whether it matched the encoder's 0xA.
func (bd *BlockDecoder) decSegSym() bool {
	c := &bd.c
	v := 0
	for i := 0; i < 4; i++ {
		v = v<<1 | bd.mq.Decode(&c.cx[ctxUNI])
	}
	return v == 0xA
}

// fillOut writes the decoded samples (with midpoint compensation for planes
// below the last decoded one) into out from the coder's bordered state.
func (bd *BlockDecoder) fillOut(out []int32, w, h int) {
	c := &bd.c
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := c.idx(x, y)
			if c.flags[i]&fSig == 0 {
				continue
			}
			v := c.mag[i]
			if lp := bd.lastPlane[i]; lp >= 2 {
				v += 1 << (lp - 2) // midpoint of the undecoded interval
			}
			if c.flags[i]&fNeg != 0 {
				v = -v
			}
			out[y*w+x] = v
		}
	}
}

// decSigProp mirrors encSigProp on the decode side.
func (bd *BlockDecoder) decSigProp(plane uint) {
	c := &bd.c
	f, bw, zc := c.flags, c.bw, c.zc
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&fSigOth == 0 {
				continue // nothing in this column has a significant neighbor
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i] & rm[k]
				if fl&fSig != 0 || fl&fSigOth == 0 {
					continue
				}
				if bd.mq.Decode(&c.cx[zc[fl&fSigOth]]) == 1 {
					bd.decSign(i, plane, rm[k])
				}
				f[i] |= fVisited
			}
		}
	}
}

// decSigPropRaw mirrors encSigPropRaw: the bypassed significance pass, read
// as raw stuffed bits.
func (bd *BlockDecoder) decSigPropRaw(plane uint) {
	c := &bd.c
	f, bw := c.flags, c.bw
	r := &bd.rr
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&fSigOth == 0 {
				continue
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i] & rm[k]
				if fl&fSig != 0 || fl&fSigOth == 0 {
					continue
				}
				if r.ReadBit() == 1 {
					neg := r.ReadBit() == 1
					if neg {
						f[i] |= fNeg
					}
					c.setSig(i, neg)
					c.mag[i] |= 1 << plane
					bd.lastPlane[i] = uint8(plane) + 1
				}
				f[i] |= fVisited
			}
		}
	}
}

// decSign decodes the sign of sample i which just became significant at
// plane, marks it significant in its neighborhood, and records the plane for
// the midpoint compensation of truncated decodes. mask is the stripe-row
// flag mask (all ones outside causal mode).
func (bd *BlockDecoder) decSign(i int, plane uint, mask uint32) {
	c := &bd.c
	sc := scLUT[(c.flags[i]&mask)>>4&0xFF]
	bit := bd.mq.Decode(&c.cx[sc&0x1F])
	neg := bit^int(sc>>7) == 1
	if neg {
		c.flags[i] |= fNeg
	}
	c.setSig(i, neg)
	c.mag[i] |= 1 << plane
	bd.lastPlane[i] = uint8(plane) + 1 // store plane+1 (0 = untouched)
}

// decRefine mirrors encRefine on the decode side.
func (bd *BlockDecoder) decRefine(plane uint) {
	c := &bd.c
	f, mag, bw := c.flags, c.mag, c.bw
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue // nothing significant in this column to refine
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&(fSig|fVisited) != fSig {
					continue
				}
				if bd.mq.Decode(&c.cx[mrCtx(fl&rm[k])]) == 1 {
					mag[i] |= 1 << plane
				}
				bd.lastPlane[i] = uint8(plane) + 1
				f[i] = fl | fRefined
			}
		}
	}
}

// decRefineRaw mirrors encRefineRaw: the bypassed refinement pass, read as
// raw stuffed bits from the serial raw reader.
func (bd *BlockDecoder) decRefineRaw(plane uint) {
	c := &bd.c
	f, mag, bw := c.flags, c.mag, c.bw
	r := &bd.rr
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&(fSig|fVisited) != fSig {
					continue
				}
				// No fRefined update, as in decRefineRawList: the flag only
				// selects the MQ refine context, never consulted again once
				// the plane is bypassed.
				if r.ReadBit() == 1 {
					mag[i] |= 1 << plane
				}
				bd.lastPlane[i] = uint8(plane) + 1
			}
		}
	}
}

// decRefineRawList consumes the bypassed refinement pass from rr2 over the
// pre-scanned member list. It runs concurrently with decSigPropRaw: it
// writes only the magnitude word and last-plane byte of samples significant
// before the plane, which the significance pass never touches, and defers
// its flag updates to the serial join.
func (bd *BlockDecoder) decRefineRawList(plane uint) {
	c := &bd.c
	mag, lp := c.mag, bd.lastPlane
	r := &bd.rr2
	for _, i := range bd.mrIdx {
		if r.ReadBit() == 1 {
			mag[i] |= 1 << plane
		}
		lp[i] = uint8(plane) + 1
	}
}

// decCleanup mirrors encCleanup on the decode side.
func (bd *BlockDecoder) decCleanup(plane uint) {
	c := &bd.c
	f, bw, zc := c.flags, c.bw, c.zc
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			y := 0
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&(fSig|fVisited|fSigOth) == 0 {
				if bd.mq.Decode(&c.cx[ctxRL]) == 0 {
					continue
				}
				first := bd.mq.Decode(&c.cx[ctxUNI])<<1 | bd.mq.Decode(&c.cx[ctxUNI])
				bd.decSign(i+first*bw, plane, rm[first])
				y = first + 1
			}
			for ; y < rows; y++ {
				ii := i + y*bw
				fl := f[ii] & rm[y]
				if fl&(fSig|fVisited) != 0 {
					continue
				}
				if bd.mq.Decode(&c.cx[zc[fl&fSigOth]]) == 1 {
					bd.decSign(ii, plane, rm[y])
				}
			}
		}
	}
}
