package t1

import (
	"testing"

	"pj2k/internal/dwt"
)

// Neighbor positions for the reference implementations, by index into a
// state vector: 0=NW 1=N 2=NE 3=W 4=E 5=SW 6=S 7=SE. States: 0 =
// insignificant, 1 = significant positive, 2 = significant negative.
const (
	nNW = iota
	nN
	nNE
	nW
	nE
	nSW
	nS
	nSE
)

// refZC is an independent transcription of the pre-flag-word zcContext: the
// neighbor significance counts and the per-band switch of Annex D Table D.1,
// computed from an explicit neighbor-state vector rather than flag bits.
func refZC(band dwt.BandType, st [8]int) int {
	sig := func(i int) int {
		if st[i] != 0 {
			return 1
		}
		return 0
	}
	h := sig(nW) + sig(nE)
	v := sig(nN) + sig(nS)
	d := sig(nNW) + sig(nNE) + sig(nSW) + sig(nSE)
	if band == dwt.HL {
		h, v = v, h
	}
	switch band {
	case dwt.HH:
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	default:
		switch {
		case h == 2:
			return 8
		case h == 1:
			switch {
			case v >= 1:
				return 7
			case d >= 1:
				return 6
			default:
				return 5
			}
		default:
			switch {
			case v == 2:
				return 4
			case v == 1:
				return 3
			case d >= 2:
				return 2
			case d == 1:
				return 1
			default:
				return 0
			}
		}
	}
}

// refSC is an independent transcription of the pre-flag-word scContext
// (Table D.3).
func refSC(st [8]int) (ctx, xorbit int) {
	contrib := func(i int) int {
		switch st[i] {
		case 1:
			return 1
		case 2:
			return -1
		}
		return 0
	}
	h := contrib(nW) + contrib(nE)
	if h > 1 {
		h = 1
	} else if h < -1 {
		h = -1
	}
	v := contrib(nN) + contrib(nS)
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	switch {
	case h == 1:
		switch v {
		case 1:
			return 13, 0
		case 0:
			return 12, 0
		default:
			return 11, 0
		}
	case h == 0:
		switch v {
		case 1:
			return 10, 0
		case 0:
			return 9, 0
		default:
			return 10, 1
		}
	default:
		switch v {
		case 1:
			return 11, 1
		case 0:
			return 12, 1
		default:
			return 13, 1
		}
	}
}

// refMR is an independent transcription of the pre-flag-word mrContext
// (Table D.2).
func refMR(refined bool, st [8]int) int {
	if refined {
		return 16
	}
	for _, s := range st {
		if s != 0 {
			return 15
		}
	}
	return 14
}

// neighborOffsets maps the state-vector index to the (dx, dy) of that
// neighbor around a center sample.
var neighborOffsets = [8][2]int{
	{-1, -1}, {0, -1}, {1, -1}, // NW N NE
	{-1, 0}, {1, 0}, // W E
	{-1, 1}, {0, 1}, {1, 1}, // SW S SE
}

// TestFlagWordContextsMatchReference exhaustively enumerates all 3^8 = 6561
// neighborhood configurations (each of the 8 neighbors absent, positive or
// negative), drives them through setSig — the incremental flag-word update —
// and checks that the LUT-derived zero-coding, sign-coding and refinement
// contexts match the independent per-neighbor reference transcribed from the
// pre-LUT implementation. This is the proof that the table-driven rewrite
// computes exactly the contexts the old code did, for every reachable
// neighborhood.
func TestFlagWordContextsMatchReference(t *testing.T) {
	bands := []dwt.BandType{dwt.LL, dwt.HL, dwt.LH, dwt.HH}
	var c coder
	for cfg := 0; cfg < 6561; cfg++ {
		var st [8]int
		v := cfg
		for i := range st {
			st[i] = v % 3
			v /= 3
		}
		c.reset(3, 3, dwt.LL)
		for i, s := range st {
			if s != 0 {
				dx, dy := neighborOffsets[i][0], neighborOffsets[i][1]
				c.setSig(c.idx(1+dx, 1+dy), s == 2)
			}
		}
		fl := c.flags[c.idx(1, 1)]
		for _, band := range bands {
			if got, want := int(zcLUT[band][fl&fSigOth]), refZC(band, st); got != want {
				t.Fatalf("cfg %d band %v: zc context %d, want %d (flags %#x)", cfg, band, got, want, fl)
			}
		}
		sc := scLUT[(fl>>4)&0xFF]
		wantCtx, wantXor := refSC(st)
		if got := int(sc & 0x1F); got != wantCtx {
			t.Fatalf("cfg %d: sc context %d, want %d (flags %#x)", cfg, got, wantCtx, fl)
		}
		if got := int(sc >> 7); got != wantXor {
			t.Fatalf("cfg %d: sc xorbit %d, want %d (flags %#x)", cfg, got, wantXor, fl)
		}
		if got, want := mrCtx(fl), refMR(false, st); got != want {
			t.Fatalf("cfg %d: mr context %d, want %d (flags %#x)", cfg, got, want, fl)
		}
		if got := mrCtx(fl | fRefined); got != 16 {
			t.Fatalf("cfg %d: refined mr context %d, want 16", cfg, got)
		}
	}
}

// TestSetSigSymmetry spot-checks the neighbor bit directions: a significant
// sample must appear in each neighbor's word under the opposite direction
// bit, with the sign bit present only on the four primary neighbors.
func TestSetSigSymmetry(t *testing.T) {
	var c coder
	for _, neg := range []bool{false, true} {
		c.reset(3, 3, dwt.LL)
		c.setSig(c.idx(1, 1), neg)
		check := func(x, y int, sig, sgn uint32) {
			t.Helper()
			fl := c.flags[c.idx(x, y)]
			if fl&sig == 0 {
				t.Fatalf("neighbor (%d,%d): significance bit %#x not set (flags %#x)", x, y, sig, fl)
			}
			if sgn != 0 {
				if got := fl&sgn != 0; got != neg {
					t.Fatalf("neighbor (%d,%d): sign bit %#x = %v, want %v", x, y, sgn, got, neg)
				}
			}
		}
		check(1, 0, fSigS, fSgnS) // sample to my south is significant
		check(1, 2, fSigN, fSgnN)
		check(0, 1, fSigE, fSgnE)
		check(2, 1, fSigW, fSgnW)
		check(0, 0, fSigSE, 0)
		check(2, 0, fSigSW, 0)
		check(0, 2, fSigNE, 0)
		check(2, 2, fSigNW, 0)
		if c.flags[c.idx(1, 1)]&fSig == 0 {
			t.Fatal("center not marked significant")
		}
	}
}
