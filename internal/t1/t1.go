// Package t1 implements the EBCOT tier-1 code-block coder of JPEG2000
// (ISO/IEC 15444-1 Annex D): bit-plane coding of quantized wavelet
// coefficients in three passes per plane (significance propagation, magnitude
// refinement, cleanup) driven by the MQ arithmetic coder, with per-pass rate
// and distortion tracking for the PCRD rate allocator.
//
// The coding contexts are table-driven: each sample carries a neighborhood
// flag word (see lut.go) kept current incrementally, so the per-sample cost
// of a pass is one flag load and one LUT index instead of eight neighbor
// loads and a branchy per-band switch.
//
// Code-blocks are strictly independent — the property the paper's parallel
// encoding stage exploits: "no synchronization is necessary due to the
// processing of independent code-blocks."
package t1

import (
	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// Context indices (Annex D conventions): 0-8 zero coding, 9-13 sign coding,
// 14-16 magnitude refinement, 17 run-length, 18 uniform.
const (
	ctxZC0 = 0
	ctxSC0 = 9
	ctxMR0 = 14
	ctxRL  = 17
	ctxUNI = 18
	nctx   = 19
)

// rateMargin is the number of bytes added to the MQ coder's emitted count at
// each pass boundary so that truncating the final segment at a pass's rate
// always yields a decodable prefix (covers the C register and flush bytes).
// rawRateMargin is the raw-segment equivalent (a pending partial byte is
// already counted by StuffWriter.Len; the margin covers the possible stuffed
// 0x00 after a trailing 0xFF). At terminated passes rates are exact instead.
const (
	rateMargin    = 5
	rawRateMargin = 2
)

// Pass records one coding pass's cumulative rate and its distortion
// reduction in quantized-magnitude units squared; the caller scales by
// (step * band synthesis norm)^2 to get image-domain MSE reduction.
type Pass struct {
	Rate      int     // bytes of Data sufficient to decode through this pass
	DistDelta float64 // MSE reduction contributed by this pass
}

// EncodedBlock is the output of Encode for one code-block. Data concatenates
// the block's codeword segments (one unless Modes terminate passes); Pass
// rates are exact at segment terminations and conservatively margined inside
// a segment, so SegmentEnds can recover segment boundaries from them.
type EncodedBlock struct {
	W, H         int
	Band         dwt.BandType
	NumBitplanes int
	Modes        Modes
	Passes       []Pass
	Data         []byte
}

// SegmentEnds appends the cumulative byte offsets in Data at which the
// codeword segments covering the first npasses passes end. Returns dst
// unchanged (nil for a nil dst) when the block is a single segment, matching
// BlockIn's contract.
func (eb *EncodedBlock) SegmentEnds(dst []int, npasses int) []int {
	m := eb.Modes
	if !m.Terminated() || npasses <= 0 {
		return dst
	}
	for p := 0; p < npasses-1; p++ {
		if m.TermPass(p) {
			dst = append(dst, eb.Passes[p].Rate)
		}
	}
	end := eb.Passes[npasses-1].Rate
	if end > len(eb.Data) {
		end = len(eb.Data)
	}
	return append(dst, end)
}

// coder holds the per-block state shared by the encode and decode pass
// machinery: bordered magnitude and flag-word arrays plus the MQ contexts.
type coder struct {
	w, h   int
	bw     int // bordered width
	mag    []int32
	flags  []uint32
	cx     [nctx]mq.Context
	band   dwt.BandType
	zc     *[256]uint8 // zcLUT[band], rebound per block
	causal bool
	// rowMask masks the flag word per stripe row before context formation.
	// Rows 0-2 pass everything; under stripe-causal mode row 3 drops the
	// south-neighbor bits so contexts never depend on the stripe below.
	rowMask [4]uint32
}

func (c *coder) idx(x, y int) int { return (y+1)*c.bw + (x + 1) }

// reset sizes the bordered arrays for a w x h block of the given band and
// clears all per-block state.
func (c *coder) reset(w, h int, band dwt.BandType) {
	c.w, c.h, c.bw, c.band = w, h, w+2, band
	c.zc = &zcLUT[band]
	c.rowMask = [4]uint32{^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)}
	if c.causal {
		c.rowMask[3] = ^uint32(fSigSE | fSigSW | fSigS | fSgnS)
	}
	n := (w + 2) * (h + 2)
	if cap(c.mag) < n {
		c.mag = make([]int32, n)
		c.flags = make([]uint32, n)
	} else {
		c.mag = c.mag[:n]
		c.flags = c.flags[:n]
		clear(c.mag)
		clear(c.flags)
	}
}

func (c *coder) resetContexts() {
	for i := range c.cx {
		c.cx[i].Reset(0, 0)
	}
	c.cx[ctxZC0].Reset(4, 0)
	c.cx[ctxRL].Reset(3, 0)
	c.cx[ctxUNI].Reset(46, 0)
}

// clearVisited drops the per-plane visited bits. Only interior samples ever
// set fVisited, but clearing the whole bordered array is branch-free.
func (c *coder) clearVisited() {
	for i := range c.flags {
		c.flags[i] &^= fVisited
	}
}

// distSig is the distortion reduction when magnitude v becomes significant
// at plane p (reconstruction moves from 0 to the plane-p midpoint). All the
// quantities involved are integers (the midpoint offset 2^(p-1) included),
// so the error terms are computed in int64 — one conversion per call instead
// of four, and exact for any magnitude below 2^31.
func distSig(v int32, p uint) float64 {
	var e1 int64
	if p > 0 {
		e1 = int64(v&(1<<p-1)) - int64(1)<<(p-1)
	}
	vi := int64(v)
	return float64(vi*vi - e1*e1)
}

// distRef is the distortion reduction when a significant magnitude v is
// refined at plane p. Same integer formulation as distSig: the plane-p
// residual r determines both error terms directly.
func distRef(v int32, p uint) float64 {
	r := int64(v & (1<<p - 1))
	e0 := r
	if v>>p&1 == 0 {
		e0 = r - int64(1)<<p
	}
	var e1 int64
	if p > 0 {
		e1 = r - int64(1)<<(p-1)
	}
	return float64(e0*e0 - e1*e1)
}

// Encode codes one code-block. data holds signed quantized coefficients for
// a w x h block with the given row stride; band selects the context tables.
// It is a convenience wrapper over a fresh Coder; hot paths coding many
// blocks should hold one Coder per worker instead.
func Encode(data []int32, w, h, stride int, band dwt.BandType) *EncodedBlock {
	return NewCoder().Encode(data, w, h, stride, band)
}

// Coder is a reusable tier-1 block encoder: the bordered magnitude/flag
// arrays, the MQ encoder and the output storage all persist across blocks,
// so steady-state encoding performs no heap allocations. Code-blocks are
// independent (the property the paper's synchronization-free parallel tier-1
// stage rests on), so each worker owns one Coder and shares nothing.
//
// Returned EncodedBlocks live in arenas owned by the Coder: they stay valid
// until Release, which reclaims every block handed out since the previous
// Release. A Coder is not safe for concurrent use.
type Coder struct {
	c   coder
	enc *mq.Encoder

	// Modes selects the optional code-block styles (bypass, per-pass
	// termination, context reset, stripe-causal contexts, segmentation
	// symbols). The zero value is the default coder; any non-default mode
	// changes the bitstream and must be signalled in the COD marker.
	Modes Modes

	raw    *bitio.StuffWriter // raw (bypass) segment writer
	seg    []byte             // completed codeword segments of the current block
	blocks []EncodedBlock
	passes []Pass
	data   []byte
}

// NewCoder returns an empty Coder; buffers are sized on first use.
func NewCoder() *Coder { return &Coder{enc: mq.NewEncoder(), raw: bitio.NewStuffWriter()} }

// Release reclaims all EncodedBlocks returned by Encode since the last
// Release. The caller must have dropped every reference to them.
func (co *Coder) Release() {
	co.blocks = co.blocks[:0]
	co.passes = co.passes[:0]
	co.data = co.data[:0]
}

// takeBlock returns a zeroed EncodedBlock from the block arena.
func (co *Coder) takeBlock() *EncodedBlock {
	if len(co.blocks) < cap(co.blocks) {
		co.blocks = co.blocks[:len(co.blocks)+1]
		eb := &co.blocks[len(co.blocks)-1]
		*eb = EncodedBlock{}
		return eb
	}
	co.blocks = append(co.blocks, EncodedBlock{})
	return &co.blocks[len(co.blocks)-1]
}

// takePasses carves a len-0 cap-n slice out of the pass arena. When the
// current chunk is exhausted a larger one replaces it; slices handed out
// earlier keep their (still live) old backing storage.
func (co *Coder) takePasses(n int) []Pass {
	if cap(co.passes)-len(co.passes) < n {
		c := 2 * cap(co.passes)
		if c < n {
			c = n
		}
		if c < 512 {
			c = 512
		}
		co.passes = make([]Pass, 0, c)
	}
	base := len(co.passes)
	co.passes = co.passes[:base+n]
	return co.passes[base : base : base+n]
}

// takeData carves a length-n slice out of the byte arena.
func (co *Coder) takeData(n int) []byte {
	if cap(co.data)-len(co.data) < n {
		c := 2 * cap(co.data)
		if c < n {
			c = n
		}
		if c < 1<<14 {
			c = 1 << 14
		}
		co.data = make([]byte, 0, c)
	}
	base := len(co.data)
	co.data = co.data[:base+n]
	return co.data[base : base+n : base+n]
}

// Encode codes one code-block, reusing the Coder's buffers. See Encode (the
// package-level function) for the parameter contract and Coder for the
// lifetime of the result.
func (co *Coder) Encode(data []int32, w, h, stride int, band dwt.BandType) *EncodedBlock {
	c := &co.c
	m := co.Modes
	c.causal = m.Causal
	c.reset(w, h, band)
	var maxMag int32
	for y := 0; y < h; y++ {
		i := c.idx(0, y)
		for _, v := range data[y*stride : y*stride+w] {
			if v < 0 {
				c.flags[i] |= fNeg
				v = -v
			}
			c.mag[i] = v
			if v > maxMag {
				maxMag = v
			}
			i++
		}
	}
	eb := co.takeBlock()
	eb.W, eb.H, eb.Band, eb.Modes = w, h, band, m
	if maxMag == 0 {
		return eb
	}
	nbp := 0
	for v := maxMag; v > 0; v >>= 1 {
		nbp++
	}
	eb.NumBitplanes = nbp
	c.resetContexts()
	enc := co.enc
	enc.Init()
	co.raw.Reset()
	co.seg = co.seg[:0]
	total := TotalPasses(nbp)
	eb.Passes = co.takePasses(total)

	pass := 0
	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			var d float64
			if m.PassBypassed(pass) {
				d = c.encSigPropRaw(co.raw, plane)
			} else {
				d = c.encSigProp(enc, plane)
			}
			co.endPass(eb, pass, total, d)
			pass++
			if m.PassBypassed(pass) {
				d = c.encRefineRaw(co.raw, plane)
			} else {
				d = c.encRefine(enc, plane)
			}
			co.endPass(eb, pass, total, d)
			pass++
		}
		d := c.encCleanup(enc, plane)
		if m.SegSym {
			c.encSegSym(enc)
		}
		co.endPass(eb, pass, total, d)
		pass++
		if p != 0 {
			c.clearVisited() // reset re-zeroes flags, so the last plane skips it
		}
	}
	eb.Data = co.takeData(len(co.seg))
	copy(eb.Data, co.seg)
	// Clamp pass rates: within the data and non-decreasing. A margined
	// (non-terminal) rate can overshoot the exact rate of a later terminated
	// pass; lower it backward rather than disturb exact segment boundaries —
	// the smaller value is already enough bytes to decode the earlier pass.
	// Default modes have non-decreasing margined rates, so this reduces to
	// the plain cap at the data length.
	if n := len(eb.Passes); n > 0 {
		eb.Passes[n-1].Rate = len(eb.Data)
		for k := n - 2; k >= 0; k-- {
			if eb.Passes[k].Rate > eb.Passes[k+1].Rate {
				eb.Passes[k].Rate = eb.Passes[k+1].Rate
			}
		}
	}
	return eb
}

// endPass closes coding pass pass: records its cumulative rate (exact when
// the codeword segment terminates here, margined otherwise) and applies the
// per-pass mode hooks — segment termination and context reset. Default modes
// terminate only the final pass, reproducing the single-segment bitstream.
func (co *Coder) endPass(eb *EncodedBlock, pass, total int, d float64) {
	m := co.Modes
	rawPass := m.PassBypassed(pass)
	var rate int
	switch {
	case pass == total-1 || m.TermPass(pass):
		if rawPass {
			co.seg = append(co.seg, co.raw.Bytes()...)
			co.raw.Reset()
		} else {
			co.seg = append(co.seg, co.enc.Flush()...)
			co.enc.Init()
		}
		rate = len(co.seg)
	case rawPass:
		rate = len(co.seg) + co.raw.Len() + rawRateMargin
	default:
		rate = len(co.seg) + co.enc.NumBytes() + rateMargin
	}
	eb.Passes = append(eb.Passes, Pass{Rate: rate, DistDelta: d})
	if m.ResetCtx {
		co.c.resetContexts()
	}
}

// encSigProp runs the significance-propagation pass at the given plane:
// insignificant samples with at least one significant neighbor are zero-coded
// (and sign-coded on becoming significant). Returns the distortion reduction.
func (c *coder) encSigProp(enc *mq.Encoder, plane uint) float64 {
	var dist float64
	f, mag, bw, zc := c.flags, c.mag, c.bw, c.zc
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&fSigOth == 0 {
				continue // nothing in this column has a significant neighbor
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i] & rm[k]
				if fl&fSig != 0 || fl&fSigOth == 0 {
					continue
				}
				bit := int(mag[i] >> plane & 1)
				enc.Encode(bit, &c.cx[zc[fl&fSigOth]])
				if bit == 1 {
					dist += c.encSign(enc, i, plane, rm[k])
				}
				f[i] |= fVisited
			}
		}
	}
	return dist
}

// encSigPropRaw is the arithmetic-bypass significance pass: the same
// membership walk as encSigProp, but the decision and sign are written as
// raw stuffed bits (no contexts, no sign prediction).
func (c *coder) encSigPropRaw(w *bitio.StuffWriter, plane uint) float64 {
	var dist float64
	f, mag, bw := c.flags, c.mag, c.bw
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&fSigOth == 0 {
				continue
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i] & rm[k]
				if fl&fSig != 0 || fl&fSigOth == 0 {
					continue
				}
				bit := int(mag[i] >> plane & 1)
				w.WriteBit(bit)
				if bit == 1 {
					s := 0
					if f[i]&fNeg != 0 {
						s = 1
					}
					w.WriteBit(s)
					c.setSig(i, s == 1)
					dist += distSig(mag[i], plane)
				}
				f[i] |= fVisited
			}
		}
	}
	return dist
}

// encSign codes the sign of sample i which just became significant at plane,
// marks it significant in its neighborhood, and returns the significance
// distortion. mask is the stripe-row flag mask (all ones outside causal mode).
func (c *coder) encSign(enc *mq.Encoder, i int, plane uint, mask uint32) float64 {
	sc := scLUT[(c.flags[i]&mask)>>4&0xFF]
	s := 0
	if c.flags[i]&fNeg != 0 {
		s = 1
	}
	enc.Encode(s^int(sc>>7), &c.cx[sc&0x1F])
	c.setSig(i, s == 1)
	return distSig(c.mag[i], plane)
}

// encRefine runs the magnitude-refinement pass: samples already significant
// before this plane (and not coded by this plane's sig-prop pass) emit one
// magnitude bit.
func (c *coder) encRefine(enc *mq.Encoder, plane uint) float64 {
	var dist float64
	f, mag, bw := c.flags, c.mag, c.bw
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue // nothing significant in this column to refine
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&(fSig|fVisited) != fSig {
					continue
				}
				enc.Encode(int(mag[i]>>plane&1), &c.cx[mrCtx(fl&rm[k])])
				dist += distRef(mag[i], plane)
				f[i] = fl | fRefined
			}
		}
	}
	return dist
}

// encRefineRaw is the arithmetic-bypass refinement pass: one raw magnitude
// bit per sample already significant before this plane.
func (c *coder) encRefineRaw(w *bitio.StuffWriter, plane uint) float64 {
	var dist float64
	f, mag, bw := c.flags, c.mag, c.bw
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw])&fSig == 0 {
				continue
			}
			for k := 0; k < rows; k, i = k+1, i+bw {
				fl := f[i]
				if fl&(fSig|fVisited) != fSig {
					continue
				}
				// No fRefined update: the flag only selects the MQ refine
				// context, and every later refine pass is also bypassed.
				w.WriteBit(int(mag[i] >> plane & 1))
				dist += distRef(mag[i], plane)
			}
		}
	}
	return dist
}

// encCleanup runs the cleanup pass with run-length coding: full 4-sample
// columns with no significant state or neighborhood take the run-length
// shortcut; everything else left uncoded this plane is zero-coded.
func (c *coder) encCleanup(enc *mq.Encoder, plane uint) float64 {
	var dist float64
	f, mag, bw, zc := c.flags, c.mag, c.bw, c.zc
	rm := &c.rowMask
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		i0 := (y0+1)*bw + 1
		for x := 0; x < c.w; x++ {
			i := i0 + x
			y := 0
			if rows == 4 && (f[i]|f[i+bw]|f[i+2*bw]|f[i+3*bw]&rm[3])&(fSig|fVisited|fSigOth) == 0 {
				// Run-length mode: column of four, all insignificant,
				// unvisited, with no significant neighbours.
				first := 4 // position of first 1-bit, 4 = none
				for k := 0; k < 4; k++ {
					if mag[i+k*bw]>>plane&1 == 1 {
						first = k
						break
					}
				}
				if first == 4 {
					enc.Encode(0, &c.cx[ctxRL])
					continue
				}
				enc.Encode(1, &c.cx[ctxRL])
				enc.Encode(first>>1&1, &c.cx[ctxUNI])
				enc.Encode(first&1, &c.cx[ctxUNI])
				dist += c.encSign(enc, i+first*bw, plane, rm[first])
				y = first + 1
			}
			for ; y < rows; y++ {
				ii := i + y*bw
				fl := f[ii] & rm[y]
				if fl&(fSig|fVisited) != 0 {
					continue
				}
				bit := int(mag[ii] >> plane & 1)
				enc.Encode(bit, &c.cx[zc[fl&fSigOth]])
				if bit == 1 {
					dist += c.encSign(enc, ii, plane, rm[y])
				}
			}
		}
	}
	return dist
}

// encSegSym codes the segmentation symbol — the four decisions 1,0,1,0 (0xA)
// in the UNIFORM context — terminating a cleanup pass. A decoder that cannot
// reproduce it knows the segment is corrupt at or before this pass.
func (c *coder) encSegSym(enc *mq.Encoder) {
	enc.Encode(1, &c.cx[ctxUNI])
	enc.Encode(0, &c.cx[ctxUNI])
	enc.Encode(1, &c.cx[ctxUNI])
	enc.Encode(0, &c.cx[ctxUNI])
}

// TotalPasses returns the number of coding passes for a block with the given
// number of bit-planes (3 per plane, minus the two skipped passes of the
// most significant plane).
func TotalPasses(numBitplanes int) int {
	if numBitplanes <= 0 {
		return 0
	}
	return 3*numBitplanes - 2
}
