// Package t1 implements the EBCOT tier-1 code-block coder of JPEG2000
// (ISO/IEC 15444-1 Annex D): bit-plane coding of quantized wavelet
// coefficients in three passes per plane (significance propagation, magnitude
// refinement, cleanup) driven by the MQ arithmetic coder, with per-pass rate
// and distortion tracking for the PCRD rate allocator.
//
// Code-blocks are strictly independent — the property the paper's parallel
// encoding stage exploits: "no synchronization is necessary due to the
// processing of independent code-blocks."
package t1

import (
	"pj2k/internal/dwt"
	"pj2k/internal/mq"
)

// Context indices (Annex D conventions): 0-8 zero coding, 9-13 sign coding,
// 14-16 magnitude refinement, 17 run-length, 18 uniform.
const (
	ctxZC0 = 0
	ctxSC0 = 9
	ctxMR0 = 14
	ctxRL  = 17
	ctxUNI = 18
	nctx   = 19
)

// rateMargin is the number of bytes added to the MQ coder's emitted count at
// each pass boundary so that truncating the final segment at a pass's rate
// always yields a decodable prefix (covers the C register and flush bytes).
const rateMargin = 5

// Pass records one coding pass's cumulative rate and its distortion
// reduction in quantized-magnitude units squared; the caller scales by
// (step * band synthesis norm)^2 to get image-domain MSE reduction.
type Pass struct {
	Rate      int     // bytes of Data sufficient to decode through this pass
	DistDelta float64 // MSE reduction contributed by this pass
}

// EncodedBlock is the output of Encode for one code-block.
type EncodedBlock struct {
	W, H         int
	Band         dwt.BandType
	NumBitplanes int
	Passes       []Pass
	Data         []byte
}

// flags per sample, stored in a bordered (w+2)x(h+2) array.
const (
	fSig     uint8 = 1 << iota // became significant
	fVisited                   // coded in the current plane's sig-prop pass
	fRefined                   // has been refined at least once
	fNeg                       // sign bit (negative)
)

type coder struct {
	w, h  int
	bw    int // bordered width
	mag   []int32
	flags []uint8
	cx    [nctx]mq.Context
	band  dwt.BandType
}

func (c *coder) idx(x, y int) int { return (y+1)*c.bw + (x + 1) }

func (c *coder) resetContexts() {
	for i := range c.cx {
		c.cx[i].Reset(0, 0)
	}
	c.cx[ctxZC0].Reset(4, 0)
	c.cx[ctxRL].Reset(3, 0)
	c.cx[ctxUNI].Reset(46, 0)
}

// zcContext returns the zero-coding context from the neighbour significance
// counts, per the band-orientation tables of Annex D.
func (c *coder) zcContext(i int) int {
	f := c.flags
	bw := c.bw
	h := int(f[i-1]&fSig) + int(f[i+1]&fSig)
	v := int(f[i-bw]&fSig) + int(f[i+bw]&fSig)
	d := int(f[i-bw-1]&fSig) + int(f[i-bw+1]&fSig) + int(f[i+bw-1]&fSig) + int(f[i+bw+1]&fSig)
	if c.band == dwt.HL {
		h, v = v, h
	}
	switch c.band {
	case dwt.HH:
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	default: // LL, LH (and HL after the swap above)
		switch {
		case h == 2:
			return 8
		case h == 1:
			switch {
			case v >= 1:
				return 7
			case d >= 1:
				return 6
			default:
				return 5
			}
		default:
			switch {
			case v == 2:
				return 4
			case v == 1:
				return 3
			case d >= 2:
				return 2
			case d == 1:
				return 1
			default:
				return 0
			}
		}
	}
}

// scContext returns the sign-coding context and XOR bit from the signs of
// the significant horizontal/vertical neighbours.
func (c *coder) scContext(i int) (ctx int, xorbit int) {
	f := c.flags
	bw := c.bw
	contrib := func(j int) int {
		if f[j]&fSig == 0 {
			return 0
		}
		if f[j]&fNeg != 0 {
			return -1
		}
		return 1
	}
	h := contrib(i-1) + contrib(i+1)
	if h > 1 {
		h = 1
	} else if h < -1 {
		h = -1
	}
	v := contrib(i-bw) + contrib(i+bw)
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	// Table D.3.
	switch {
	case h == 1:
		switch v {
		case 1:
			return 13, 0
		case 0:
			return 12, 0
		default:
			return 11, 0
		}
	case h == 0:
		switch v {
		case 1:
			return 10, 0
		case 0:
			return 9, 0
		default:
			return 10, 1
		}
	default: // h == -1
		switch v {
		case 1:
			return 11, 1
		case 0:
			return 12, 1
		default:
			return 13, 1
		}
	}
}

// mrContext returns the magnitude-refinement context.
func (c *coder) mrContext(i int) int {
	if c.flags[i]&fRefined != 0 {
		return 16
	}
	f := c.flags
	bw := c.bw
	any := f[i-1] | f[i+1] | f[i-bw] | f[i+bw] | f[i-bw-1] | f[i-bw+1] | f[i+bw-1] | f[i+bw+1]
	if any&fSig != 0 {
		return 15
	}
	return 14
}

// hasSigNeighbor reports whether any 8-neighbour is significant.
func (c *coder) hasSigNeighbor(i int) bool {
	f := c.flags
	bw := c.bw
	any := f[i-1] | f[i+1] | f[i-bw] | f[i+bw] | f[i-bw-1] | f[i-bw+1] | f[i+bw-1] | f[i+bw+1]
	return any&fSig != 0
}

// recon is the decoder's reconstruction of magnitude v after its last update
// at plane p: the decoded bits plus a midpoint offset for the undecoded
// interval (none at plane 0, where decoding is exact).
func recon(v int32, p uint) float64 {
	r := float64(int32(v>>p) << p)
	if p > 0 {
		r += 0.5 * float64(int32(1)<<p)
	}
	return r
}

// distSig is the distortion reduction when magnitude v becomes significant
// at plane p (reconstruction moves from 0 to the plane-p midpoint).
func distSig(v int32, p uint) float64 {
	vf := float64(v)
	e1 := vf - recon(v, p)
	return vf*vf - e1*e1
}

// distRef is the distortion reduction when a significant magnitude v is
// refined at plane p.
func distRef(v int32, p uint) float64 {
	vf := float64(v)
	e0 := vf - recon(v, p+1)
	e1 := vf - recon(v, p)
	return e0*e0 - e1*e1
}

// Encode codes one code-block. data holds signed quantized coefficients for
// a w x h block with the given row stride; band selects the context tables.
// It is a convenience wrapper over a fresh Coder; hot paths coding many
// blocks should hold one Coder per worker instead.
func Encode(data []int32, w, h, stride int, band dwt.BandType) *EncodedBlock {
	return NewCoder().Encode(data, w, h, stride, band)
}

// Coder is a reusable tier-1 block encoder: the bordered magnitude/flag
// arrays, the MQ encoder and the output storage all persist across blocks,
// so steady-state encoding performs no heap allocations. Code-blocks are
// independent (the property the paper's synchronization-free parallel tier-1
// stage rests on), so each worker owns one Coder and shares nothing.
//
// Returned EncodedBlocks live in arenas owned by the Coder: they stay valid
// until Release, which reclaims every block handed out since the previous
// Release. A Coder is not safe for concurrent use.
type Coder struct {
	c   coder
	enc *mq.Encoder

	blocks []EncodedBlock
	passes []Pass
	data   []byte
}

// NewCoder returns an empty Coder; buffers are sized on first use.
func NewCoder() *Coder { return &Coder{enc: mq.NewEncoder()} }

// Release reclaims all EncodedBlocks returned by Encode since the last
// Release. The caller must have dropped every reference to them.
func (co *Coder) Release() {
	co.blocks = co.blocks[:0]
	co.passes = co.passes[:0]
	co.data = co.data[:0]
}

// takeBlock returns a zeroed EncodedBlock from the block arena.
func (co *Coder) takeBlock() *EncodedBlock {
	if len(co.blocks) < cap(co.blocks) {
		co.blocks = co.blocks[:len(co.blocks)+1]
		eb := &co.blocks[len(co.blocks)-1]
		*eb = EncodedBlock{}
		return eb
	}
	co.blocks = append(co.blocks, EncodedBlock{})
	return &co.blocks[len(co.blocks)-1]
}

// takePasses carves a len-0 cap-n slice out of the pass arena. When the
// current chunk is exhausted a larger one replaces it; slices handed out
// earlier keep their (still live) old backing storage.
func (co *Coder) takePasses(n int) []Pass {
	if cap(co.passes)-len(co.passes) < n {
		c := 2 * cap(co.passes)
		if c < n {
			c = n
		}
		if c < 512 {
			c = 512
		}
		co.passes = make([]Pass, 0, c)
	}
	base := len(co.passes)
	co.passes = co.passes[:base+n]
	return co.passes[base : base : base+n]
}

// takeData carves a length-n slice out of the byte arena.
func (co *Coder) takeData(n int) []byte {
	if cap(co.data)-len(co.data) < n {
		c := 2 * cap(co.data)
		if c < n {
			c = n
		}
		if c < 1<<14 {
			c = 1 << 14
		}
		co.data = make([]byte, 0, c)
	}
	base := len(co.data)
	co.data = co.data[:base+n]
	return co.data[base : base+n : base+n]
}

// Encode codes one code-block, reusing the Coder's buffers. See Encode (the
// package-level function) for the parameter contract and Coder for the
// lifetime of the result.
func (co *Coder) Encode(data []int32, w, h, stride int, band dwt.BandType) *EncodedBlock {
	c := &co.c
	c.w, c.h, c.bw, c.band = w, h, w+2, band
	n := (w + 2) * (h + 2)
	if cap(c.mag) < n {
		c.mag = make([]int32, n)
		c.flags = make([]uint8, n)
	} else {
		c.mag = c.mag[:n]
		c.flags = c.flags[:n]
		clear(c.mag)
		clear(c.flags)
	}
	var maxMag int32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := data[y*stride+x]
			i := c.idx(x, y)
			if v < 0 {
				c.flags[i] |= fNeg
				v = -v
			}
			c.mag[i] = v
			if v > maxMag {
				maxMag = v
			}
		}
	}
	eb := co.takeBlock()
	eb.W, eb.H, eb.Band = w, h, band
	if maxMag == 0 {
		return eb
	}
	nbp := 0
	for m := maxMag; m > 0; m >>= 1 {
		nbp++
	}
	eb.NumBitplanes = nbp
	c.resetContexts()
	enc := co.enc
	enc.Init()
	eb.Passes = co.takePasses(TotalPasses(nbp))

	for p := nbp - 1; p >= 0; p-- {
		plane := uint(p)
		if p != nbp-1 {
			d := c.sigPropPass(enc, plane, nil)
			eb.Passes = append(eb.Passes, Pass{Rate: enc.NumBytes() + rateMargin, DistDelta: d})
			d = c.refinePass(enc, plane, nil)
			eb.Passes = append(eb.Passes, Pass{Rate: enc.NumBytes() + rateMargin, DistDelta: d})
		}
		d := c.cleanupPass(enc, plane, nil)
		eb.Passes = append(eb.Passes, Pass{Rate: enc.NumBytes() + rateMargin, DistDelta: d})
		// Clear per-plane visited flags.
		for i := range c.flags {
			c.flags[i] &^= fVisited
		}
	}
	seg := enc.Flush()
	eb.Data = co.takeData(len(seg))
	copy(eb.Data, seg)
	// Clamp pass rates: non-decreasing and within the final segment.
	for k := range eb.Passes {
		if eb.Passes[k].Rate > len(eb.Data) {
			eb.Passes[k].Rate = len(eb.Data)
		}
		if k > 0 && eb.Passes[k].Rate < eb.Passes[k-1].Rate {
			eb.Passes[k].Rate = eb.Passes[k-1].Rate
		}
	}
	if n := len(eb.Passes); n > 0 {
		eb.Passes[n-1].Rate = len(eb.Data)
	}
	return eb
}

// sigPropPass runs the significance-propagation pass at the given plane.
// When dec is nil it encodes using c.enc conventions via the closure below;
// the decode path passes a decoder. Returns the distortion reduction.
func (c *coder) sigPropPass(enc *mq.Encoder, plane uint, dec *decoder) float64 {
	var dist float64
	c.forEachStripeSample(func(x, y, i int) {
		if c.flags[i]&fSig != 0 || !c.hasSigNeighbor(i) {
			return
		}
		ctx := c.zcContext(i)
		var bit int
		if dec == nil {
			bit = int(c.mag[i] >> plane & 1)
			enc.Encode(bit, &c.cx[ctx])
		} else {
			bit = dec.mq.Decode(&c.cx[ctx])
		}
		if bit == 1 {
			dist += c.codeSign(enc, dec, i, plane)
		}
		c.flags[i] |= fVisited
	})
	return dist
}

// codeSign codes/decodes the sign of sample i which just became significant
// at plane, marks it significant, and returns the significance distortion.
func (c *coder) codeSign(enc *mq.Encoder, dec *decoder, i int, plane uint) float64 {
	ctx, xorbit := c.scContext(i)
	if dec == nil {
		s := 0
		if c.flags[i]&fNeg != 0 {
			s = 1
		}
		enc.Encode(s^xorbit, &c.cx[ctx])
		c.flags[i] |= fSig
		return distSig(c.mag[i], plane)
	}
	bit := dec.mq.Decode(&c.cx[ctx])
	if bit^xorbit == 1 {
		c.flags[i] |= fNeg
	}
	c.flags[i] |= fSig
	c.mag[i] |= 1 << plane
	dec.lastPlane[i] = uint8(plane) + 1 // store plane+1 (0 = untouched)
	return 0
}

// refinePass runs the magnitude-refinement pass.
func (c *coder) refinePass(enc *mq.Encoder, plane uint, dec *decoder) float64 {
	var dist float64
	c.forEachStripeSample(func(x, y, i int) {
		if c.flags[i]&fSig == 0 || c.flags[i]&fVisited != 0 {
			return
		}
		ctx := c.mrContext(i)
		if dec == nil {
			bit := int(c.mag[i] >> plane & 1)
			enc.Encode(bit, &c.cx[ctx])
			dist += distRef(c.mag[i], plane)
		} else {
			bit := dec.mq.Decode(&c.cx[ctx])
			if bit == 1 {
				c.mag[i] |= 1 << plane
			}
			dec.lastPlane[i] = uint8(plane) + 1
		}
		c.flags[i] |= fRefined
	})
	return dist
}

// cleanupPass runs the cleanup pass with run-length coding.
func (c *coder) cleanupPass(enc *mq.Encoder, plane uint, dec *decoder) float64 {
	var dist float64
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		for x := 0; x < c.w; x++ {
			y := 0
			// Run-length mode: full column of four, all insignificant,
			// unvisited, with no significant neighbours.
			if rows == 4 && c.rlEligible(x, y0) {
				var first int
				if dec == nil {
					first = 4 // position of first 1-bit, 4 = none
					for k := 0; k < 4; k++ {
						if c.mag[c.idx(x, y0+k)]>>plane&1 == 1 {
							first = k
							break
						}
					}
					if first == 4 {
						enc.Encode(0, &c.cx[ctxRL])
						continue
					}
					enc.Encode(1, &c.cx[ctxRL])
					enc.Encode(first>>1&1, &c.cx[ctxUNI])
					enc.Encode(first&1, &c.cx[ctxUNI])
				} else {
					if dec.mq.Decode(&c.cx[ctxRL]) == 0 {
						continue
					}
					first = dec.mq.Decode(&c.cx[ctxUNI])<<1 | dec.mq.Decode(&c.cx[ctxUNI])
				}
				// The sample at `first` is significant: code its sign.
				dist += c.codeSign(enc, dec, c.idx(x, y0+first), plane)
				y = first + 1
			}
			for ; y < rows; y++ {
				i := c.idx(x, y0+y)
				if c.flags[i]&(fSig|fVisited) != 0 {
					continue
				}
				ctx := c.zcContext(i)
				var bit int
				if dec == nil {
					bit = int(c.mag[i] >> plane & 1)
					enc.Encode(bit, &c.cx[ctx])
				} else {
					bit = dec.mq.Decode(&c.cx[ctx])
				}
				if bit == 1 {
					dist += c.codeSign(enc, dec, i, plane)
				}
			}
		}
	}
	return dist
}

// rlEligible reports whether the 4-sample column at (x, y0) qualifies for
// run-length mode.
func (c *coder) rlEligible(x, y0 int) bool {
	for k := 0; k < 4; k++ {
		i := c.idx(x, y0+k)
		if c.flags[i]&(fSig|fVisited) != 0 || c.hasSigNeighbor(i) {
			return false
		}
	}
	return true
}

// forEachStripeSample visits samples in the standard scan order: stripes of
// four rows, column by column, top to bottom within the column.
func (c *coder) forEachStripeSample(fn func(x, y, i int)) {
	for y0 := 0; y0 < c.h; y0 += 4 {
		rows := c.h - y0
		if rows > 4 {
			rows = 4
		}
		for x := 0; x < c.w; x++ {
			for k := 0; k < rows; k++ {
				y := y0 + k
				fn(x, y, c.idx(x, y))
			}
		}
	}
}
