package t1

import (
	"fmt"
	"testing"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
)

// modeCombos are the coder-style combinations the round-trip matrix covers:
// every single style plus the interactions that change segment structure.
var modeCombos = []Modes{
	{},
	{Bypass: true},
	{TermAll: true},
	{ResetCtx: true},
	{Causal: true},
	{SegSym: true},
	{Bypass: true, TermAll: true},
	{Bypass: true, Causal: true},
	{TermAll: true, ResetCtx: true},
	{Bypass: true, TermAll: true, ResetCtx: true, Causal: true},
	{Bypass: true, TermAll: true, SegSym: true},
	{Bypass: true, Causal: true, SegSym: true},
}

func modeName(m Modes) string {
	s := ""
	if m.Bypass {
		s += "+bypass"
	}
	if m.TermAll {
		s += "+termall"
	}
	if m.ResetCtx {
		s += "+reset"
	}
	if m.Causal {
		s += "+causal"
	}
	if m.SegSym {
		s += "+segsym"
	}
	if s == "" {
		return "default"
	}
	return s[1:]
}

func TestModesRoundTripExact(t *testing.T) {
	sizes := [][2]int{{1, 1}, {5, 7}, {16, 16}, {13, 4}, {32, 32}, {64, 64}, {3, 64}, {33, 29}}
	co := NewCoder()
	for _, m := range modeCombos {
		co.Modes = m
		for _, sz := range sizes {
			for _, band := range bandTypes {
				// maxMag 30000 gives ~15 bit-planes, deep enough that the
				// bypass boundary (4th significant plane) is well exercised.
				data := randBlock(sz[0], sz[1], 30000, 0.6, int64(sz[0]*7919+sz[1])+int64(band))
				eb := co.Encode(data, sz[0], sz[1], sz[0], band)
				got, err := Decode(eb, len(eb.Passes))
				if err != nil {
					t.Fatalf("%s size %v band %v: %v", modeName(m), sz, band, err)
				}
				for i := range data {
					if got[i] != data[i] {
						t.Fatalf("%s size %v band %v: sample %d got %d want %d",
							modeName(m), sz, band, i, got[i], data[i])
					}
				}
			}
		}
		co.Release()
	}
}

func TestModesEveryPrefixDecodable(t *testing.T) {
	co := NewCoder()
	bd := NewBlockDecoder()
	for _, m := range modeCombos {
		co.Modes = m
		data := randBlock(32, 32, 20000, 0.5, 171)
		eb := co.Encode(data, 32, 32, 32, dwt.HL)
		for np := 0; np <= len(eb.Passes); np++ {
			segData := eb.Data
			if np > 0 {
				if r := eb.Passes[np-1].Rate; r < len(segData) {
					segData = segData[:r]
				}
			}
			in := BlockIn{
				W: 32, H: 32, Band: dwt.HL,
				NumBitplanes: eb.NumBitplanes,
				Data:         segData,
				NPasses:      np,
				Modes:        m,
				SegEnds:      eb.SegmentEnds(nil, np),
			}
			if _, _, err := bd.DecodeBlock(&in, false); err != nil {
				t.Fatalf("%s: prefix of %d passes: %v", modeName(m), np, err)
			}
			bd.Release()
		}
		co.Release()
	}
}

// TestModesSegmentEnds checks the segment layout invariants: exact rates at
// terminated passes, non-decreasing ends, and the final end at the data end.
func TestModesSegmentEnds(t *testing.T) {
	co := NewCoder()
	for _, m := range modeCombos {
		co.Modes = m
		data := randBlock(32, 32, 20000, 0.5, 311)
		eb := co.Encode(data, 32, 32, 32, dwt.LH)
		np := len(eb.Passes)
		ends := eb.SegmentEnds(nil, np)
		if !m.Terminated() {
			if ends != nil {
				t.Fatalf("%s: unexpected segment ends %v", modeName(m), ends)
			}
			co.Release()
			continue
		}
		if len(ends) != m.NumSegments(np) {
			t.Fatalf("%s: %d segment ends, want %d", modeName(m), len(ends), m.NumSegments(np))
		}
		prev := 0
		for _, e := range ends {
			if e < prev || e > len(eb.Data) {
				t.Fatalf("%s: bad segment end %d (prev %d, data %d)", modeName(m), e, prev, len(eb.Data))
			}
			prev = e
		}
		if ends[len(ends)-1] != len(eb.Data) {
			t.Fatalf("%s: final segment end %d != data length %d", modeName(m), ends[len(ends)-1], len(eb.Data))
		}
		co.Release()
	}
}

// TestParallelSegmentDecodeMatchesSerial pins the pool-forked bypass+TermAll
// decode to the serial result, across worker counts.
func TestParallelSegmentDecodeMatchesSerial(t *testing.T) {
	co := NewCoder()
	co.Modes = Modes{Bypass: true, TermAll: true}
	for _, workers := range []int{2, 4, 8} {
		pool := core.NewPool(workers)
		bdSerial := NewBlockDecoder()
		bdPar := NewBlockDecoder()
		bdPar.Pool = pool
		for _, sz := range [][2]int{{16, 16}, {32, 32}, {64, 64}, {33, 29}} {
			data := randBlock(sz[0], sz[1], 30000, 0.6, int64(workers*100+sz[0]))
			eb := co.Encode(data, sz[0], sz[1], sz[0], dwt.HH)
			for _, np := range []int{len(eb.Passes), len(eb.Passes) / 2, 1} {
				in := BlockIn{
					W: sz[0], H: sz[1], Band: dwt.HH,
					NumBitplanes: eb.NumBitplanes,
					Data:         eb.Data[:eb.Passes[max(np, 1)-1].Rate],
					NPasses:      np,
					Modes:        co.Modes,
					SegEnds:      eb.SegmentEnds(nil, np),
				}
				want, _, err := bdSerial.DecodeBlock(&in, false)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := bdPar.DecodeBlock(&in, false)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("w=%d size %v np=%d: sample %d parallel %d serial %d",
							workers, sz, np, i, got[i], want[i])
					}
				}
			}
			co.Release()
			bdSerial.Release()
			bdPar.Release()
		}
		pool.Close()
	}
}

// TestDecodeBlockRejectsBadSegmentLayout covers the strict/resilient split
// for inconsistent segment signalling.
func TestDecodeBlockRejectsBadSegmentLayout(t *testing.T) {
	co := NewCoder()
	co.Modes = Modes{Bypass: true, TermAll: true}
	data := randBlock(16, 16, 20000, 0.6, 5)
	eb := co.Encode(data, 16, 16, 16, dwt.LL)
	np := len(eb.Passes)
	good := eb.SegmentEnds(nil, np)
	bd := NewBlockDecoder()
	bad := [][]int{
		nil,      // missing layout entirely
		good[:1], // too few segments
		append(append([]int(nil), good...), len(eb.Data)), // too many
	}
	reversed := append([]int(nil), good...)
	if len(reversed) >= 2 {
		reversed[0], reversed[1] = reversed[1], reversed[0]
		bad = append(bad, reversed) // out of order
	}
	for i, ends := range bad {
		in := BlockIn{
			W: 16, H: 16, Band: dwt.LL,
			NumBitplanes: eb.NumBitplanes,
			Data:         eb.Data,
			NPasses:      np,
			Modes:        co.Modes,
			SegEnds:      ends,
		}
		if _, _, err := bd.DecodeBlock(&in, false); err == nil {
			t.Fatalf("case %d: strict decode accepted bad segment layout %v", i, ends)
		}
		out, st, err := bd.DecodeBlock(&in, true)
		if err != nil {
			t.Fatalf("case %d: resilient decode errored: %v", i, err)
		}
		if !st.Concealed || st.DroppedPasses != np {
			t.Fatalf("case %d: resilient stats %+v, want full concealment", i, st)
		}
		for _, v := range out {
			if v != 0 {
				t.Fatalf("case %d: concealed block not zeroed", i)
			}
		}
		bd.Release()
	}
}

// TestModesResilienceRoundTrip crosses the segment-producing modes with the
// segmentation-symbol checked decode: clean streams decode exactly and
// corrupted raw segments are concealed, not errored.
func TestModesResilienceRoundTrip(t *testing.T) {
	co := NewCoder()
	bd := NewBlockDecoder()
	for _, m := range []Modes{
		{Bypass: true, SegSym: true},
		{Bypass: true, TermAll: true, SegSym: true},
		{Bypass: true, TermAll: true, ResetCtx: true, Causal: true, SegSym: true},
	} {
		co.Modes = m
		data := randBlock(32, 32, 30000, 0.6, 999)
		eb := co.Encode(data, 32, 32, 32, dwt.HL)
		np := len(eb.Passes)
		in := BlockIn{
			W: 32, H: 32, Band: dwt.HL,
			NumBitplanes: eb.NumBitplanes,
			Data:         eb.Data,
			NPasses:      np,
			Modes:        m,
			SegEnds:      eb.SegmentEnds(nil, np),
		}
		got, st, err := bd.DecodeBlock(&in, true)
		if err != nil || st.Concealed {
			t.Fatalf("%s: clean decode err=%v stats=%+v", modeName(m), err, st)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("%s: sample %d got %d want %d", modeName(m), i, got[i], data[i])
			}
		}
		// Corrupt a byte inside a late segment; the checked decode must
		// conceal (keeping a clean prefix), never error.
		corrupt := append([]byte(nil), eb.Data...)
		corrupt[len(corrupt)*3/4] ^= 0x5A
		in.Data = corrupt
		_, st, err = bd.DecodeBlock(&in, true)
		if err != nil {
			t.Fatalf("%s: resilient decode of corrupt data errored: %v", modeName(m), err)
		}
		_ = st // corruption may or may not reach a checked symbol; no error is the contract
		bd.Release()
		co.Release()
	}
}

// TestCoderModesSteadyStateAllocs extends the zero-alloc discipline to the
// raw (bypass) coder path: warm encode+decode of bypass+TermAll blocks must
// stay as allocation-free as the default path.
func TestCoderModesSteadyStateAllocs(t *testing.T) {
	co := NewCoder()
	co.Modes = Modes{Bypass: true, TermAll: true}
	bd := NewBlockDecoder()
	data := randBlock(32, 32, 30000, 0.6, 77)
	var segEnds []int
	run := func() {
		co.Release()
		bd.Release()
		eb := co.Encode(data, 32, 32, 32, dwt.HH)
		segEnds = eb.SegmentEnds(segEnds[:0], len(eb.Passes))
		in := BlockIn{
			W: 32, H: 32, Band: dwt.HH,
			NumBitplanes: eb.NumBitplanes,
			Data:         eb.Data,
			NPasses:      len(eb.Passes),
			Modes:        co.Modes,
			SegEnds:      segEnds,
		}
		if _, _, err := bd.DecodeBlock(&in, false); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm arenas
	if allocs := testing.AllocsPerRun(20, run); allocs > 1 {
		t.Fatalf("raw coder path allocates %.1f/op, want <= 1", allocs)
	}
}

// TestBypassShrinksPassCost sanity-checks the mode's purpose at the t1
// level: bypassed blocks must not code dramatically worse than MQ (raw bits
// cost some rate) while exercising real segment structure.
func TestBypassShrinksPassCost(t *testing.T) {
	data := randBlock(64, 64, 30000, 0.7, 4242)
	mq := NewCoder()
	ebMQ := mq.Encode(data, 64, 64, 64, dwt.LL)
	by := NewCoder()
	by.Modes = Modes{Bypass: true}
	ebBy := by.Encode(data, 64, 64, 64, dwt.LL)
	if got, limit := len(ebBy.Data), len(ebMQ.Data)*13/10; got > limit {
		t.Fatalf("bypass data %d bytes vs MQ %d (limit %d)", got, len(ebMQ.Data), limit)
	}
	if n := ebBy.Modes.NumSegments(len(ebBy.Passes)); n < 3 {
		t.Fatalf("bypass block produced %d segments, want several", n)
	}
}

func ExampleModes_PassBypassed() {
	m := Modes{Bypass: true}
	for pass := 8; pass <= 13; pass++ {
		fmt.Printf("pass %d bypassed=%v terminated=%v\n", pass, m.PassBypassed(pass), m.TermPass(pass))
	}
	// Output:
	// pass 8 bypassed=false terminated=false
	// pass 9 bypassed=false terminated=true
	// pass 10 bypassed=true terminated=false
	// pass 11 bypassed=true terminated=true
	// pass 12 bypassed=false terminated=true
	// pass 13 bypassed=true terminated=false
}
