package t1

import (
	"testing"

	"pj2k/internal/dwt"
)

// patterns that stress specific coder paths: run-length mode (sparse),
// sign contexts (alternating signs), refinement (dense similar magnitudes).
func patternBlock(kind string, w, h int) []int32 {
	data := make([]int32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			switch kind {
			case "checker":
				if (x+y)&1 == 0 {
					data[i] = 100
				} else {
					data[i] = -100
				}
			case "stripesH":
				if y&1 == 0 {
					data[i] = 77
				}
			case "stripesV":
				if x&1 == 0 {
					data[i] = -55
				}
			case "singleColumn":
				if x == w/2 {
					data[i] = 1 << 15
				}
			case "gradient":
				data[i] = int32(x*y) - int32(w*h/2)
			case "maxdense":
				data[i] = int32((x*131+y*137)%2048) - 1024
			}
		}
	}
	return data
}

func TestExtremePatterns(t *testing.T) {
	kinds := []string{"checker", "stripesH", "stripesV", "singleColumn", "gradient", "maxdense"}
	for _, kind := range kinds {
		for _, band := range bandTypes {
			for _, sz := range [][2]int{{4, 4}, {17, 5}, {64, 64}} {
				data := patternBlock(kind, sz[0], sz[1])
				eb := Encode(data, sz[0], sz[1], sz[0], band)
				got, err := Decode(eb, len(eb.Passes))
				if err != nil {
					t.Fatalf("%s %v %v: %v", kind, band, sz, err)
				}
				for i := range data {
					if got[i] != data[i] {
						t.Fatalf("%s %v %v: sample %d got %d want %d", kind, band, sz, i, got[i], data[i])
					}
				}
			}
		}
	}
}

func TestDecodeDeterministic(t *testing.T) {
	data := patternBlock("maxdense", 32, 32)
	eb := Encode(data, 32, 32, 32, dwt.HL)
	a, err := Decode(eb, len(eb.Passes)/2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(eb, len(eb.Passes)/2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoder is not deterministic")
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	data := patternBlock("gradient", 48, 24)
	a := Encode(data, 48, 24, 48, dwt.LH)
	b := Encode(data, 48, 24, 48, dwt.LH)
	if len(a.Data) != len(b.Data) {
		t.Fatal("encoder is not deterministic")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("encoder output differs between runs")
		}
	}
}

func TestPassCountStaysVLCRepresentable(t *testing.T) {
	// Tier-2's pass-count VLC tops out at 164 per packet; a single-layer
	// stream sends all passes of a block in one packet, so the encoder must
	// never exceed that for plausible magnitudes (30 bit-planes -> 88).
	data := patternBlock("singleColumn", 64, 64) // contains 1<<15
	eb := Encode(data, 64, 64, 64, dwt.HH)
	if len(eb.Passes) > 164 {
		t.Fatalf("%d passes exceed the VLC limit", len(eb.Passes))
	}
}
