package t1

import (
	"testing"

	"pj2k/internal/dwt"
)

// testBlock returns a sparse signed coefficient block exercising all three
// pass types.
func testBlock(n int) []int32 {
	data := make([]int32, n*n)
	for i := range data {
		v := int32((i * 2654435761) % 512)
		if i%3 == 0 {
			v = -v
		}
		if i%5 != 0 {
			v = 0
		}
		data[i] = v
	}
	return data
}

// TestCoderSteadyStateAllocs caps the steady-state allocations of pooled
// block encoding: once the Coder's arenas are warm, encoding must not touch
// the heap. The cap of 1 absorbs rare arena-chunk growth on outlier blocks.
func TestCoderSteadyStateAllocs(t *testing.T) {
	data := testBlock(64)
	co := NewCoder()
	// Warm the arenas with one full round.
	co.Encode(data, 64, 64, 64, dwt.HH)
	co.Release()
	avg := testing.AllocsPerRun(50, func() {
		co.Encode(data, 64, 64, 64, dwt.HH)
		co.Release()
	})
	if avg > 1 {
		t.Fatalf("steady-state t1 block encode allocates %.1f objects/run, want <= 1", avg)
	}
}

// TestCoderMatchesEncode asserts a reused Coder produces byte-identical
// output to the one-shot Encode path, across blocks of different shapes and
// bands (pooled state must not leak between blocks).
func TestCoderMatchesEncode(t *testing.T) {
	co := NewCoder()
	shapes := []struct {
		w, h int
		band dwt.BandType
	}{
		{64, 64, dwt.HH},
		{32, 64, dwt.HL},
		{64, 32, dwt.LH},
		{17, 13, dwt.LL},
		{64, 64, dwt.LH},
	}
	for round := 0; round < 3; round++ {
		for _, s := range shapes {
			data := testBlock(64)[:64*s.h]
			want := Encode(data, s.w, s.h, 64, s.band)
			got := co.Encode(data, s.w, s.h, 64, s.band)
			if got.NumBitplanes != want.NumBitplanes || len(got.Passes) != len(want.Passes) {
				t.Fatalf("%dx%d %v: pooled shape mismatch: %d planes/%d passes, want %d/%d",
					s.w, s.h, s.band, got.NumBitplanes, len(got.Passes), want.NumBitplanes, len(want.Passes))
			}
			if string(got.Data) != string(want.Data) {
				t.Fatalf("%dx%d %v: pooled data differs from one-shot encode", s.w, s.h, s.band)
			}
			for k := range got.Passes {
				if got.Passes[k] != want.Passes[k] {
					t.Fatalf("%dx%d %v: pass %d differs: %+v vs %+v", s.w, s.h, s.band, k, got.Passes[k], want.Passes[k])
				}
			}
		}
		co.Release()
	}
}
