package t1

// Modes selects the optional code-block coding styles of JPEG2000 Part 1
// (the COD marker's code-block style bits). The zero value is the default
// coder: every pass MQ-coded into a single codeword segment, full-neighborhood
// contexts, no segmentation symbols.
type Modes struct {
	// Bypass (arithmetic bypass, "lazy" coding, style bit 0x01) codes the
	// significance-propagation and magnitude-refinement passes from the
	// fourth significant bit-plane on as raw stuffed bits, skipping the MQ
	// coder where most of the coded data lives. Implies segment
	// terminations at every MQ↔raw transition.
	Bypass bool
	// ResetCtx (style bit 0x02) resets the MQ context states after every
	// coding pass.
	ResetCtx bool
	// TermAll (style bit 0x04) terminates the codeword segment after every
	// coding pass, so each pass occupies an independently positioned byte
	// range (signalled per-segment in packet headers).
	TermAll bool
	// Causal (style bit 0x08) makes context formation vertically
	// stripe-causal: samples in the last row of a stripe ignore their
	// neighbors in the stripe below, removing the inter-stripe dependency.
	Causal bool
	// SegSym (style bit 0x20) codes a segmentation symbol after every
	// cleanup pass, giving the decoder an error-detection checkpoint.
	SegSym bool
}

// Any reports whether any non-default style is selected.
func (m Modes) Any() bool {
	return m.Bypass || m.ResetCtx || m.TermAll || m.Causal || m.SegSym
}

// Terminated reports whether m can produce more than one codeword segment
// per block, i.e. whether per-segment lengths must be signalled.
func (m Modes) Terminated() bool { return m.TermAll || m.Bypass }

// bypassFirstPass is the first coding pass raw-coded under Bypass. Passes
// are numbered from 0 (the cleanup of the most significant plane); pass p≥1
// codes plane (p-1)/3+1 below the MSB, so pass 10 is the significance pass
// of the fourth significant bit-plane — the standard's bypass boundary.
const bypassFirstPass = 10

// PassBypassed reports whether coding pass pass is raw-coded under m:
// significance and refinement (but never cleanup) passes from the fourth
// significant bit-plane on.
func (m Modes) PassBypassed(pass int) bool {
	return m.Bypass && pass >= bypassFirstPass && (pass-1)%3 != 2
}

// TermPass reports whether the codeword segment is terminated after pass.
// TermAll terminates every pass; Bypass terminates at each MQ↔raw
// transition. The block's final contributed pass is always terminated,
// independent of this.
func (m Modes) TermPass(pass int) bool {
	if m.TermAll {
		return true
	}
	return m.Bypass && m.PassBypassed(pass) != m.PassBypassed(pass+1)
}

// NumSegments returns the number of codeword segments covering the first
// npasses coding passes of a block coded with m.
func (m Modes) NumSegments(npasses int) int {
	if npasses <= 0 {
		return 0
	}
	if !m.Terminated() {
		return 1
	}
	n := 1
	for p := 0; p < npasses-1; p++ {
		if m.TermPass(p) {
			n++
		}
	}
	return n
}

// AppendSegEnds appends the cumulative pass counts at which codeword
// segments end, for passes [from, to) of a block coded with m: one entry
// after each terminated pass plus one for the final pass. Tier-2 uses it to
// split a packet's contribution into per-segment signalled lengths.
func (m Modes) AppendSegEnds(dst []int, from, to int) []int {
	if !m.Terminated() {
		return append(dst, to)
	}
	for p := from; p < to-1; p++ {
		if m.TermPass(p) {
			dst = append(dst, p+1)
		}
	}
	return append(dst, to)
}

// rawReader reads the bits of a raw (arithmetic-bypass) codeword segment:
// MSB-first with the 0xFF stuffing rule (after an 0xFF byte only seven bits
// occupy the next byte; its MSB is a stuffed zero). Reads past the end of
// the segment synthesize 1-bits and are counted, mirroring mq.Decoder's
// overrun accounting so resilience checks can spot truncated segments.
type rawReader struct {
	data    []byte
	pos     int
	acc     uint32
	nacc    int
	prev    byte
	overrun int
}

// Reset re-aims the reader at a new segment.
func (r *rawReader) Reset(data []byte) {
	r.data, r.pos, r.acc, r.nacc, r.prev, r.overrun = data, 0, 0, 0, 0, 0
}

// ReadBit returns the next raw bit.
func (r *rawReader) ReadBit() int {
	if r.nacc == 0 {
		lim := 8
		if r.prev == 0xFF {
			lim = 7
		}
		if r.pos < len(r.data) {
			r.prev = r.data[r.pos]
			r.pos++
		} else {
			r.overrun++
			r.prev = 0xFF
		}
		r.acc = uint32(r.prev)
		r.nacc = lim
	}
	r.nacc--
	return int(r.acc >> uint(r.nacc) & 1)
}
