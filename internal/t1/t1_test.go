package t1

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pj2k/internal/dwt"
)

var bandTypes = []dwt.BandType{dwt.LL, dwt.HL, dwt.LH, dwt.HH}

func randBlock(w, h int, maxMag int32, density float64, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int32, w*h)
	for i := range data {
		if rng.Float64() < density {
			v := rng.Int31n(maxMag + 1)
			if rng.Intn(2) == 1 {
				v = -v
			}
			data[i] = v
		}
	}
	return data
}

func TestRoundTripExact(t *testing.T) {
	sizes := [][2]int{{1, 1}, {3, 3}, {4, 4}, {5, 7}, {8, 8}, {16, 16}, {13, 4}, {4, 13}, {32, 32}, {64, 64}, {64, 3}, {3, 64}}
	for _, sz := range sizes {
		for _, band := range bandTypes {
			for _, density := range []float64{0.05, 0.5, 1.0} {
				data := randBlock(sz[0], sz[1], 1000, density, int64(sz[0]*1000+sz[1])+int64(band))
				eb := Encode(data, sz[0], sz[1], sz[0], band)
				got, err := Decode(eb, len(eb.Passes))
				if err != nil {
					t.Fatal(err)
				}
				for i := range data {
					if got[i] != data[i] {
						t.Fatalf("size %v band %v density %.2f: sample %d got %d want %d",
							sz, band, density, i, got[i], data[i])
					}
				}
			}
		}
	}
}

func TestAllZeroBlock(t *testing.T) {
	data := make([]int32, 8*8)
	eb := Encode(data, 8, 8, 8, dwt.HH)
	if eb.NumBitplanes != 0 || len(eb.Passes) != 0 || len(eb.Data) != 0 {
		t.Fatalf("zero block: nbp=%d passes=%d data=%d", eb.NumBitplanes, len(eb.Passes), len(eb.Data))
	}
	got, err := Decode(eb, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero block decoded nonzero")
		}
	}
}

func TestSingleCoefficient(t *testing.T) {
	for _, v := range []int32{1, -1, 2, 255, -256, 1 << 20} {
		data := make([]int32, 16)
		data[5] = v
		eb := Encode(data, 4, 4, 4, dwt.LH)
		got, err := Decode(eb, len(eb.Passes))
		if err != nil {
			t.Fatal(err)
		}
		if got[5] != v {
			t.Fatalf("v=%d: got %d", v, got[5])
		}
		for i := range got {
			if i != 5 && got[i] != 0 {
				t.Fatalf("v=%d: spurious nonzero at %d", v, i)
			}
		}
	}
}

func TestStrideInput(t *testing.T) {
	// The encoder must honour the stride parameter.
	w, h, stride := 6, 5, 11
	flat := randBlock(w, h, 500, 0.7, 42)
	strided := make([]int32, stride*h)
	for y := 0; y < h; y++ {
		copy(strided[y*stride:y*stride+w], flat[y*w:(y+1)*w])
	}
	a := Encode(flat, w, h, w, dwt.HL)
	b := Encode(strided, w, h, stride, dwt.HL)
	if len(a.Data) != len(b.Data) {
		t.Fatalf("stride changed output: %d vs %d bytes", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("stride changed output bytes")
		}
	}
}

func TestPassCountMatchesFormula(t *testing.T) {
	data := randBlock(32, 32, 4095, 0.9, 7)
	eb := Encode(data, 32, 32, 32, dwt.LL)
	if want := TotalPasses(eb.NumBitplanes); len(eb.Passes) != want {
		t.Fatalf("passes %d, want %d for %d planes", len(eb.Passes), want, eb.NumBitplanes)
	}
}

func TestRatesMonotone(t *testing.T) {
	data := randBlock(64, 64, 30000, 0.8, 3)
	eb := Encode(data, 64, 64, 64, dwt.HH)
	prev := 0
	for k, p := range eb.Passes {
		if p.Rate < prev {
			t.Fatalf("pass %d rate %d < previous %d", k, p.Rate, prev)
		}
		if p.Rate > len(eb.Data) {
			t.Fatalf("pass %d rate %d exceeds segment %d", k, p.Rate, len(eb.Data))
		}
		prev = p.Rate
	}
	if eb.Passes[len(eb.Passes)-1].Rate != len(eb.Data) {
		t.Fatal("final pass rate must equal segment length")
	}
}

func TestTruncatedDecodeImproves(t *testing.T) {
	// Decoding more passes must not increase MSE (distortion is monotone
	// non-increasing in the pass count).
	data := randBlock(32, 32, 10000, 0.6, 11)
	eb := Encode(data, 32, 32, 32, dwt.LH)
	mse := func(got []int32) float64 {
		var s float64
		for i := range data {
			d := float64(got[i] - data[i])
			s += d * d
		}
		return s / float64(len(data))
	}
	prev := math.Inf(1)
	for np := 0; np <= len(eb.Passes); np += 3 {
		got, err := Decode(eb, np)
		if err != nil {
			t.Fatal(err)
		}
		m := mse(got)
		if m > prev*1.001 {
			t.Fatalf("MSE rose from %.1f to %.1f at %d passes", prev, m, np)
		}
		prev = m
	}
	if prev != 0 {
		t.Fatalf("full decode MSE %.3f != 0", prev)
	}
}

func TestDistortionDeltasPositiveTotal(t *testing.T) {
	data := randBlock(32, 32, 5000, 0.5, 13)
	eb := Encode(data, 32, 32, 32, dwt.HL)
	var total float64
	for _, p := range eb.Passes {
		total += p.DistDelta
	}
	// Total distortion reduction must equal the initial distortion (sum of
	// squared magnitudes) because the final reconstruction is exact.
	var want float64
	for _, v := range data {
		want += float64(v) * float64(v)
	}
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("sum of pass distortion deltas %.1f, want %.1f", total, want)
	}
}

func TestEveryPrefixDecodable(t *testing.T) {
	// Every pass count must decode without error and approximate the
	// original no worse than the midpoint guarantee for its depth.
	data := randBlock(16, 16, 4000, 0.7, 17)
	eb := Encode(data, 16, 16, 16, dwt.HH)
	for np := 0; np <= len(eb.Passes); np++ {
		if _, err := Decode(eb, np); err != nil {
			t.Fatalf("npasses=%d: %v", np, err)
		}
	}
	if _, err := Decode(eb, len(eb.Passes)+1); err == nil {
		t.Fatal("want error for excess pass count")
	}
}

func TestBandContextsDiffer(t *testing.T) {
	// The same data coded as HL vs HH should (almost always) produce
	// different bytes because the context tables differ.
	data := randBlock(32, 32, 1000, 0.4, 19)
	a := Encode(data, 32, 32, 32, dwt.HL)
	b := Encode(data, 32, 32, 32, dwt.HH)
	same := len(a.Data) == len(b.Data)
	if same {
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("HL and HH coding produced identical streams; contexts ignored?")
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Sparse natural-ish data must compress well below raw size.
	data := randBlock(64, 64, 3, 0.05, 23)
	eb := Encode(data, 64, 64, 64, dwt.HH)
	raw := 64 * 64 * 2 // 2 bytes per sample baseline
	if len(eb.Data) > raw/8 {
		t.Fatalf("sparse block coded to %d bytes; raw is %d", len(eb.Data), raw)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64, band uint8, dens uint8) bool {
		w, h := 1+int(w8%64), 1+int(h8%64)
		density := 0.05 + float64(dens%90)/100
		data := randBlock(w, h, 2000, density, seed)
		eb := Encode(data, w, h, w, bandTypes[band%4])
		got, err := Decode(eb, len(eb.Passes))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeMagnitudes(t *testing.T) {
	// 30-bit magnitudes exercise deep bit-plane counts.
	data := []int32{1 << 29, -(1<<29 + 12345), 3, 0}
	eb := Encode(data, 2, 2, 2, dwt.LL)
	if eb.NumBitplanes != 30 {
		t.Fatalf("nbp = %d", eb.NumBitplanes)
	}
	got, err := Decode(eb, len(eb.Passes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("sample %d: got %d want %d", i, got[i], data[i])
		}
	}
}
