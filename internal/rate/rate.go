// Package rate implements the PCRD-opt rate allocation of EBCOT/JPEG2000:
// each code-block's coding passes form rate-distortion points; the allocator
// keeps each block's convex hull and fills the byte budget globally in order
// of decreasing distortion-rate slope, which is the paper's "sophisticated
// optimization strategy for optimal rate/distortion performance". This stage
// is one of the intrinsically sequential parts of the pipeline (Fig. 3's
// "R/D allocation").
package rate

import (
	"math"
	"slices"
)

// BlockPasses summarizes one code-block for the allocator.
type BlockPasses struct {
	Rates []int     // cumulative segment bytes through each pass
	Dist  []float64 // distortion reduction of each pass (image-domain MSE units)
	// Terminal, when non-nil, restricts the candidate truncation points to the
	// passes marked true (the distortion of skipped passes accrues to the next
	// candidate). Terminating tier-1 modes use it to truncate on codeword
	// segment boundaries, where the signalled byte rates are exact rather than
	// margined estimates. Nil admits every pass, the default.
	Terminal []bool
}

// segment is one convex-hull edge of a block's R-D curve.
type segment struct {
	block  int
	passes int // cumulative passes once this segment is included
	bytes  int // rate delta of this segment
	slope  float64
}

type rdPoint struct {
	passes int
	rate   int
	dist   float64
}

// slopeBetween returns the distortion-rate slope from a to b (+Inf for free
// improvements).
func slopeBetween(a, b rdPoint) float64 {
	dr := b.rate - a.rate
	if dr <= 0 {
		return math.Inf(1)
	}
	return (b.dist - a.dist) / float64(dr)
}

// hull appends the convex-hull segments for one block to a.segs, slopes
// strictly decreasing. Individual pass distortion deltas may be negative
// (magnitude refinement can transiently worsen the midpoint reconstruction),
// so points that do not improve on the current hull top are skipped.
func (a *Allocator) hull(b BlockPasses, blockIdx int) {
	a.st = a.st[:0]
	a.st = append(a.st, rdPoint{0, 0, 0})
	st := a.st
	cum := 0.0
	for k := range b.Rates {
		cum += b.Dist[k]
		if b.Terminal != nil && !b.Terminal[k] {
			continue // not a segment boundary: never a truncation point
		}
		p := rdPoint{k + 1, b.Rates[k], cum}
		if p.dist <= st[len(st)-1].dist {
			continue // no distortion improvement: never a truncation point
		}
		for len(st) >= 2 && slopeBetween(st[len(st)-1], p) >= slopeBetween(st[len(st)-2], st[len(st)-1]) {
			st = st[:len(st)-1]
		}
		st = append(st, p)
	}
	a.st = st
	for i := 1; i < len(st); i++ {
		a.segs = append(a.segs, segment{
			block:  blockIdx,
			passes: st[i].passes,
			bytes:  st[i].rate - st[i-1].rate,
			slope:  slopeBetween(st[i-1], st[i]),
		})
	}
}

// Allocation maps layers to cumulative pass counts per block.
type Allocation struct {
	// NPasses[layer][block] is the number of coding passes of block included
	// through that layer (cumulative).
	NPasses [][]int
	// BodyBytes[layer] is the cumulative body size through that layer.
	BodyBytes []int
}

// Allocator runs PCRD allocations with reusable scratch buffers, so the
// per-encode hull and segment storage is paid once per pooled encoder rather
// than per call. The zero value is ready for use; an Allocator is not safe
// for concurrent use. The returned Allocation is freshly allocated and stays
// valid across subsequent calls.
type Allocator struct {
	segs []segment
	st   []rdPoint
	cur  []int
}

// Allocate fills the cumulative layer budgets (body bytes) with hull segments
// in globally decreasing slope order. Budgets beyond the total available data
// simply include everything.
func Allocate(blocks []BlockPasses, layerBudgets []int) Allocation {
	var a Allocator
	return a.Allocate(blocks, layerBudgets)
}

// Allocate is the scratch-reusing form of the package-level Allocate.
func (a *Allocator) Allocate(blocks []BlockPasses, layerBudgets []int) Allocation {
	a.segs = a.segs[:0]
	for i, b := range blocks {
		a.hull(b, i)
	}
	segs := a.segs
	// Stable sort by decreasing slope keeps each block's segments in pass
	// order (their slopes decrease strictly within a block).
	slices.SortStableFunc(segs, func(x, y segment) int {
		switch {
		case x.slope > y.slope:
			return -1
		case x.slope < y.slope:
			return 1
		default:
			return 0
		}
	})

	alloc := Allocation{
		NPasses:   make([][]int, len(layerBudgets)),
		BodyBytes: make([]int, len(layerBudgets)),
	}
	if cap(a.cur) < len(blocks) {
		a.cur = make([]int, len(blocks))
	}
	cur := a.cur[:len(blocks)]
	clear(cur)
	bytes := 0
	si := 0
	for li, budget := range layerBudgets {
		for si < len(segs) && bytes+segs[si].bytes <= budget {
			cur[segs[si].block] = segs[si].passes
			bytes += segs[si].bytes
			si++
		}
		alloc.NPasses[li] = append([]int(nil), cur...)
		alloc.BodyBytes[li] = bytes
	}
	return alloc
}

// TotalBytes returns the body size if every pass of every block is included.
func TotalBytes(blocks []BlockPasses) int {
	total := 0
	for _, b := range blocks {
		if n := len(b.Rates); n > 0 {
			total += b.Rates[n-1]
		}
	}
	return total
}
