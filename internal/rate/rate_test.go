package rate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHullMonotoneSlopes(t *testing.T) {
	b := BlockPasses{
		Rates: []int{10, 20, 30, 40, 50},
		Dist:  []float64{100, 50, 200, 10, 5},
	}
	var a Allocator
	a.hull(b, 0)
	segs := a.segs
	prev := segs[0].slope
	for _, s := range segs[1:] {
		if s.slope >= prev {
			t.Fatalf("hull slopes not strictly decreasing: %v then %v", prev, s.slope)
		}
		prev = s.slope
	}
	// Total bytes and distortion on the hull must end at the full point.
	last := segs[len(segs)-1]
	if last.passes != 5 {
		t.Fatalf("hull must end at the final pass, got pass %d", last.passes)
	}
}

func TestHullSkipsNegativeDeltas(t *testing.T) {
	b := BlockPasses{
		Rates: []int{10, 20, 30},
		Dist:  []float64{100, -5, 50},
	}
	var a Allocator
	a.hull(b, 0)
	segs := a.segs
	for _, s := range segs {
		if s.slope <= 0 {
			t.Fatalf("hull contains non-positive slope %v", s.slope)
		}
		if s.passes == 2 {
			t.Fatal("pass 2 (negative cumulative gain vs pass 1) must not be a truncation point")
		}
	}
}

func TestAllocateRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	blocks := make([]BlockPasses, 20)
	for i := range blocks {
		n := 1 + rng.Intn(15)
		rates := make([]int, n)
		dist := make([]float64, n)
		r := 0
		for k := 0; k < n; k++ {
			r += 1 + rng.Intn(50)
			rates[k] = r
			dist[k] = rng.Float64() * 1000
		}
		blocks[i] = BlockPasses{Rates: rates, Dist: dist}
	}
	total := TotalBytes(blocks)
	for _, budget := range []int{0, total / 10, total / 3, total, total * 2} {
		alloc := Allocate(blocks, []int{budget})
		if alloc.BodyBytes[0] > budget {
			t.Fatalf("budget %d exceeded: %d", budget, alloc.BodyBytes[0])
		}
		// Verify reported bytes match the pass selections.
		sum := 0
		for bi, np := range alloc.NPasses[0] {
			if np > 0 {
				sum += blocks[bi].Rates[np-1]
			}
		}
		if sum != alloc.BodyBytes[0] {
			t.Fatalf("budget %d: BodyBytes %d but selections cost %d", budget, alloc.BodyBytes[0], sum)
		}
	}
	// A generous budget must include every pass.
	alloc := Allocate(blocks, []int{total * 2})
	for bi, np := range alloc.NPasses[0] {
		if np != len(blocks[bi].Rates) {
			t.Fatalf("block %d: %d of %d passes under unlimited budget", bi, np, len(blocks[bi].Rates))
		}
	}
}

func TestAllocateLayersCumulative(t *testing.T) {
	blocks := []BlockPasses{
		{Rates: []int{10, 30, 60}, Dist: []float64{300, 100, 30}},
		{Rates: []int{5, 25, 70}, Dist: []float64{500, 80, 10}},
	}
	alloc := Allocate(blocks, []int{20, 60, 1000})
	for li := 1; li < 3; li++ {
		for bi := range blocks {
			if alloc.NPasses[li][bi] < alloc.NPasses[li-1][bi] {
				t.Fatalf("layer %d block %d passes decreased: %d -> %d",
					li, bi, alloc.NPasses[li-1][bi], alloc.NPasses[li][bi])
			}
		}
		if alloc.BodyBytes[li] < alloc.BodyBytes[li-1] {
			t.Fatal("cumulative bytes decreased across layers")
		}
	}
}

func TestAllocateGreedyOptimality(t *testing.T) {
	// Two blocks, clear priorities: the allocator must take the highest
	// slope segments first.
	blocks := []BlockPasses{
		{Rates: []int{10}, Dist: []float64{1000}}, // slope 100
		{Rates: []int{10}, Dist: []float64{10}},   // slope 1
	}
	alloc := Allocate(blocks, []int{10})
	if alloc.NPasses[0][0] != 1 || alloc.NPasses[0][1] != 0 {
		t.Fatalf("allocator picked wrong block: %v", alloc.NPasses[0])
	}
}

func TestZeroBlocks(t *testing.T) {
	alloc := Allocate([]BlockPasses{{}, {}}, []int{100})
	if alloc.BodyBytes[0] != 0 {
		t.Fatal("empty blocks produced bytes")
	}
	if TotalBytes([]BlockPasses{{}}) != 0 {
		t.Fatal("TotalBytes of empty block")
	}
}

func TestQuickAllocationInvariants(t *testing.T) {
	f := func(seed int64, budget16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(10)
		blocks := make([]BlockPasses, nb)
		for i := range blocks {
			n := rng.Intn(10)
			r := 0
			for k := 0; k < n; k++ {
				r += 1 + rng.Intn(30)
				blocks[i].Rates = append(blocks[i].Rates, r)
				blocks[i].Dist = append(blocks[i].Dist, rng.Float64()*100-5)
			}
		}
		budget := int(budget16) % 1000
		alloc := Allocate(blocks, []int{budget})
		if alloc.BodyBytes[0] > budget {
			return false
		}
		for bi, np := range alloc.NPasses[0] {
			if np < 0 || np > len(blocks[bi].Rates) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
