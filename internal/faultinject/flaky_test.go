package faultinject

import (
	"bytes"
	"testing"
	"time"
)

func flakyOver(data []byte, cfg FlakyConfig) *FlakyReaderAt {
	return NewFlaky(bytes.NewReader(data), cfg)
}

func seq(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	return data
}

func TestFlakyFailNth(t *testing.T) {
	f := flakyOver(seq(64), FlakyConfig{FailNth: 3})
	p := make([]byte, 8)
	for call := 1; call <= 5; call++ {
		_, err := f.ReadAt(p, 0)
		if wantErr := call >= 3; (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v; want error %v", call, err, wantErr)
		}
	}
	if f.Calls() != 5 || f.Failures() != 3 {
		t.Fatalf("calls=%d failures=%d; want 5, 3", f.Calls(), f.Failures())
	}
}

func TestFlakyFailSpanContainment(t *testing.T) {
	// Only reads lying entirely inside [16, 32) fault: a chunked header scan
	// whose window merely overlaps the span must pass through untouched.
	f := flakyOver(seq(64), FlakyConfig{FailSpan: Span{Off: 16, Len: 16}})
	cases := []struct {
		off, n int64
		fault  bool
	}{
		{16, 16, true},  // exactly the span
		{20, 8, true},   // strictly inside
		{8, 16, false},  // starts before
		{24, 16, false}, // ends after
		{0, 8, false},   // disjoint
		{40, 8, false},  // disjoint after
	}
	for _, c := range cases {
		_, err := f.ReadAt(make([]byte, c.n), c.off)
		if (err != nil) != c.fault {
			t.Errorf("read [%d, %d): err = %v; want fault %v", c.off, c.off+c.n, err, c.fault)
		}
	}
}

func TestFlakyRecover(t *testing.T) {
	f := flakyOver(seq(32), FlakyConfig{FailNth: 1, Recover: 2})
	p := make([]byte, 4)
	for call := 1; call <= 4; call++ {
		_, err := f.ReadAt(p, 8)
		if wantErr := call <= 2; (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v; want error %v", call, err, wantErr)
		}
	}
	if p[0] != 8 {
		t.Fatalf("healed read returned %d; want the underlying byte 8", p[0])
	}
}

func TestFlakyShortRead(t *testing.T) {
	f := flakyOver(seq(32), FlakyConfig{FailNth: 1, ShortRead: true})
	p := make([]byte, 8)
	n, err := f.ReadAt(p, 4)
	if err != nil || n != 4 {
		t.Fatalf("short read = %d, %v; want half the request (4) with nil error", n, err)
	}
	for i := 0; i < 4; i++ {
		if p[i] != byte(4+i) {
			t.Fatalf("short read byte %d = %d; want %d", i, p[i], 4+i)
		}
	}
}

func TestFlakyStall(t *testing.T) {
	const stall = 30 * time.Millisecond
	f := flakyOver(seq(32), FlakyConfig{FailNth: 1, Stall: stall})
	start := time.Now()
	p := make([]byte, 4)
	n, err := f.ReadAt(p, 0)
	if err != nil || n != 4 {
		t.Fatalf("stalled read = %d, %v; want success after the stall", n, err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("read returned in %v; want at least the %v stall", elapsed, stall)
	}
}

func TestFlakyTransientFlag(t *testing.T) {
	for _, transient := range []bool{true, false} {
		f := flakyOver(seq(32), FlakyConfig{FailNth: 1, Transient: transient})
		_, err := f.ReadAt(make([]byte, 4), 0)
		if err == nil {
			t.Fatal("no injected error")
		}
		tmp, ok := err.(interface{ Temporary() bool })
		if !ok || tmp.Temporary() != transient {
			t.Fatalf("Transient=%v: injected error %v advertises Temporary()=%v", transient, err, ok && tmp.Temporary())
		}
	}
}

func TestFlakyHealBreak(t *testing.T) {
	f := flakyOver(seq(32), FlakyConfig{FailNth: 1})
	p := make([]byte, 4)
	if _, err := f.ReadAt(p, 0); err == nil {
		t.Fatal("armed fault did not fire")
	}
	f.Heal()
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatalf("healed read failed: %v", err)
	}
	f.Break()
	if _, err := f.ReadAt(p, 0); err == nil {
		t.Fatal("re-armed fault did not fire")
	}
}

func TestFlakyNoSelectorNeverFaults(t *testing.T) {
	f := flakyOver(seq(64), FlakyConfig{Transient: true, Recover: 1})
	for i := 0; i < 50; i++ {
		if _, err := f.ReadAt(make([]byte, 4), int64(i)); err != nil {
			t.Fatalf("read %d faulted with no selector configured: %v", i, err)
		}
	}
	if f.Failures() != 0 {
		t.Fatalf("failures = %d; want 0", f.Failures())
	}
}

func TestFlakyBothSelectorsMustMatch(t *testing.T) {
	f := flakyOver(seq(64), FlakyConfig{FailNth: 2, FailSpan: Span{Off: 16, Len: 16}})
	p := make([]byte, 8)
	if _, err := f.ReadAt(p, 20); err != nil {
		t.Fatalf("call 1 inside span: %v; FailNth 2 should spare it", err)
	}
	if _, err := f.ReadAt(p, 20); err == nil {
		t.Fatal("call 2 inside span did not fault")
	}
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatalf("call 3 outside span: %v; FailSpan should spare it", err)
	}
}
