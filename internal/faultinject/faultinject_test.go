package faultinject

import (
	"bytes"
	"testing"

	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

func encodeTiled(t *testing.T) []byte {
	t.Helper()
	im := raster.Synthetic(96, 96, 7)
	cs, _, err := jp2k.Encode(im, jp2k.Options{TileW: 48, TileH: 48})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return cs
}

func TestTileBodiesOnEncodedStream(t *testing.T) {
	cs := encodeTiled(t)
	spans := TileBodies(cs)
	if len(spans) != 4 {
		t.Fatalf("got %d tile bodies, want 4 (2x2 tiling)", len(spans))
	}
	hdr := Header(cs)
	if hdr.Len <= 0 || hdr.Off != 0 {
		t.Fatalf("bad header span %+v", hdr)
	}
	prevEnd := hdr.End()
	for i, sp := range spans {
		if sp.Len <= 0 {
			t.Fatalf("span %d empty: %+v", i, sp)
		}
		if sp.Off < prevEnd || sp.End() > len(cs) {
			t.Fatalf("span %d out of order or out of range: %+v (prev end %d, len %d)",
				i, sp, prevEnd, len(cs))
		}
		prevEnd = sp.End()
	}
}

func TestTileBodiesGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{0xFF},
		{0x00, 0x01, 0x02},
		{0xFF, 0x4F},                         // bare SOC
		{0xFF, 0x4F, 0xFF, 0x90, 0x00, 0x01}, // SOT with absurd Lsot
	} {
		if spans := TileBodies(data); len(spans) != 0 {
			t.Fatalf("garbage %x yielded spans %+v", data, spans)
		}
	}
}

func TestMutatorsDeterministicAndBounded(t *testing.T) {
	cs := encodeTiled(t)
	spans := TileBodies(cs)
	sp := spans[0]

	a := BitFlip(cs, sp, 8, 42)
	b := BitFlip(cs, sp, 8, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("BitFlip not deterministic for equal seeds")
	}
	if bytes.Equal(a, cs) {
		t.Fatal("BitFlip changed nothing")
	}
	// Damage confined to the span: everything outside must be untouched.
	if !bytes.Equal(a[:sp.Off], cs[:sp.Off]) || !bytes.Equal(a[sp.End():], cs[sp.End():]) {
		t.Fatal("BitFlip leaked outside its span")
	}

	tr := Truncate(cs, sp, 42)
	if len(tr) >= len(cs) || len(tr) < sp.Off {
		t.Fatalf("Truncate length %d out of range (span %+v, stream %d)", len(tr), sp, len(cs))
	}
	if !bytes.Equal(tr, Truncate(cs, sp, 42)) {
		t.Fatal("Truncate not deterministic")
	}

	dr := DropBytes(cs, sp, 42)
	if len(dr) >= len(cs) || len(cs)-len(dr) > 16 {
		t.Fatalf("DropBytes removed %d bytes, want 1..16", len(cs)-len(dr))
	}
	if !bytes.Equal(dr, DropBytes(cs, sp, 42)) {
		t.Fatal("DropBytes not deterministic")
	}

	// Empty spans are no-ops that still copy.
	if out := BitFlip(cs, Span{}, 8, 1); !bytes.Equal(out, cs) {
		t.Fatal("BitFlip on empty span mutated data")
	}
}

func TestMutationsSet(t *testing.T) {
	cs := encodeTiled(t)
	muts := Mutations(cs, 1)
	// 4 tiles x 3 mutators + header flip.
	if len(muts) != 13 {
		t.Fatalf("got %d mutations, want 13", len(muts))
	}
	seen := make(map[string]bool)
	for _, m := range muts {
		if seen[m.Name] {
			t.Fatalf("duplicate mutation name %q", m.Name)
		}
		seen[m.Name] = true
		if bytes.Equal(m.Data, cs) {
			t.Fatalf("mutation %q left stream unchanged", m.Name)
		}
	}
	again := Mutations(cs, 1)
	for i := range muts {
		if muts[i].Name != again[i].Name || !bytes.Equal(muts[i].Data, again[i].Data) {
			t.Fatalf("Mutations not deterministic at %d (%s)", i, muts[i].Name)
		}
	}
}
