package faultinject

import (
	"io"
	"sync/atomic"
	"time"
)

// FlakyConfig shapes the IO faults a FlakyReaderAt injects. Which reads are
// hit is selected by FailNth and/or FailSpan (when both are set, both must
// match); what happens to a matching read is selected by Stall / ShortRead /
// Transient. With neither selector set no read ever faults. Everything is
// deterministic given the sequence of ReadAt calls, so a failing test
// reproduces from its config and call order alone.
type FlakyConfig struct {
	// FailNth makes the Nth ReadAt call (1-based) and every later one match.
	// Zero disables call-ordinal matching.
	FailNth int
	// FailSpan makes reads lying entirely inside the span match — the shape
	// that targets tile-body reads (which fetch exactly the damaged range)
	// without also killing the coarse chunked header scans that merely pass
	// over it. Zero Len disables range matching.
	FailSpan Span
	// Recover heals the fault after this many injected failures — the
	// fail-then-recover shape a retry layer must absorb. Zero never heals.
	Recover int
	// Stall makes matching reads sleep this long and then succeed, instead
	// of failing — the shape a per-read deadline must catch.
	Stall time.Duration
	// ShortRead makes matching reads return half the requested bytes with a
	// nil error — the io.ReaderAt contract violation a wrapper must detect.
	ShortRead bool
	// Transient makes injected errors advertise Temporary() == true, so a
	// classifier sees them as retryable.
	Transient bool
}

// FlakyReaderAt wraps an io.ReaderAt and injects the configured faults. It
// is safe for concurrent use (decode workers read tiles in parallel): the
// call ordinal, failure count and healed flag are all atomic.
type FlakyReaderAt struct {
	r   io.ReaderAt
	cfg FlakyConfig

	calls    atomic.Int64
	failures atomic.Int64
	healed   atomic.Bool
}

// NewFlaky returns a FlakyReaderAt over r with the given fault shape.
func NewFlaky(r io.ReaderAt, cfg FlakyConfig) *FlakyReaderAt {
	return &FlakyReaderAt{r: r, cfg: cfg}
}

// Heal switches every fault off: subsequent reads pass straight through.
// Tests use it to model a source that recovered (quarantine re-probe).
func (f *FlakyReaderAt) Heal() { f.healed.Store(true) }

// Break re-arms the fault shape after a Heal.
func (f *FlakyReaderAt) Break() { f.healed.Store(false) }

// Calls returns the number of ReadAt calls observed.
func (f *FlakyReaderAt) Calls() int64 { return f.calls.Load() }

// Failures returns the number of faults injected so far.
func (f *FlakyReaderAt) Failures() int64 { return f.failures.Load() }

func (f *FlakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	call := f.calls.Add(1)
	if f.healed.Load() || !f.matches(call, off, len(p)) {
		return f.r.ReadAt(p, off)
	}
	n := f.failures.Add(1)
	if f.cfg.Recover > 0 && n > int64(f.cfg.Recover) {
		f.healed.Store(true)
		return f.r.ReadAt(p, off)
	}
	switch {
	case f.cfg.Stall > 0:
		time.Sleep(f.cfg.Stall)
		return f.r.ReadAt(p, off)
	case f.cfg.ShortRead:
		half := len(p) / 2
		n, _ := f.r.ReadAt(p[:half], off)
		return n, nil
	default:
		return 0, flakyError{transient: f.cfg.Transient}
	}
}

func (f *FlakyReaderAt) matches(call, off int64, n int) bool {
	nth, span := f.cfg.FailNth > 0, f.cfg.FailSpan.Len > 0
	if !nth && !span {
		return false
	}
	if nth && call < int64(f.cfg.FailNth) {
		return false
	}
	if span && (off < int64(f.cfg.FailSpan.Off) || off+int64(n) > int64(f.cfg.FailSpan.End())) {
		return false
	}
	return true
}

// flakyError is the injected read failure; Temporary reports the configured
// transience so error classifiers exercise both branches.
type flakyError struct{ transient bool }

func (e flakyError) Error() string {
	if e.transient {
		return "faultinject: transient read failure"
	}
	return "faultinject: permanent read failure"
}

func (e flakyError) Temporary() bool { return e.transient }
