// Package faultinject builds deterministic damaged variants of JPEG2000
// codestreams for resilience testing: bit flips, truncations and byte drops
// aimed at specific byte ranges (tile-part bodies, the main header). Every
// mutator is a pure function of (input, seed), so a failing case reproduces
// from its seed alone — the property a fault-injection matrix and a fuzzer
// corpus both need.
package faultinject

import "fmt"

// Span is a byte range [Off, Off+Len) within a codestream.
type Span struct {
	Off, Len int
}

// End returns the offset one past the span.
func (s Span) End() int { return s.Off + s.Len }

// Marker codes used by the independent walk (kept local on purpose: the
// injector must not depend on the parser it is trying to break).
const (
	mSOC = 0xFF4F
	mSOT = 0xFF90
	mSOD = 0xFF93
	mEOC = 0xFFD9
)

func u16(data []byte, pos int) (int, bool) {
	if pos+2 > len(data) {
		return 0, false
	}
	return int(data[pos])<<8 | int(data[pos+1]), true
}

func u32(data []byte, pos int) (int, bool) {
	if pos+4 > len(data) {
		return 0, false
	}
	return int(data[pos])<<24 | int(data[pos+1])<<16 | int(data[pos+2])<<8 | int(data[pos+3]), true
}

// Header returns the main-header span: everything from SOC up to the first
// tile-part (or the whole stream when no SOT is found).
func Header(data []byte) Span {
	for i := 0; i+1 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] == mSOT&0xFF {
			return Span{Off: 0, Len: i}
		}
	}
	return Span{Off: 0, Len: len(data)}
}

// TileBodies locates the tile-part body bytes (between each SOD and the end
// of its tile-part, per the SOT's Psot) by walking the marker structure
// independently of the codec's own parser. Streams the walk cannot follow
// yield the spans found so far.
func TileBodies(data []byte) []Span {
	var spans []Span
	if m, ok := u16(data, 0); !ok || m != mSOC {
		return nil
	}
	pos := 2
	for {
		m, ok := u16(data, pos)
		if !ok {
			return spans
		}
		pos += 2
		switch m {
		case mEOC:
			return spans
		case mSOT:
			start := pos - 2
			psot, ok := u32(data, pos+4) // after Lsot, Isot
			if !ok {
				return spans
			}
			// SOT header is 12 bytes (marker + Lsot..TNsot), then SOD (2).
			bodyOff := start + 12 + 2
			bodyEnd := start + psot
			if m, ok := u16(data, start+12); !ok || m != mSOD ||
				psot < 14 || bodyEnd > len(data) {
				return spans
			}
			spans = append(spans, Span{Off: bodyOff, Len: bodyEnd - bodyOff})
			pos = bodyEnd
		default:
			l, ok := u16(data, pos)
			if !ok || l < 2 || pos+l > len(data) {
				return spans
			}
			pos += l
		}
	}
}

// splitmix64 is the deterministic PRNG behind every mutator.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// BitFlip returns a copy of data with n pseudo-random single-bit flips
// confined to span. An empty span returns the data unchanged.
func BitFlip(data []byte, span Span, n int, seed uint64) []byte {
	out := append([]byte(nil), data...)
	if span.Len <= 0 {
		return out
	}
	for i := 0; i < n; i++ {
		r := splitmix64(&seed)
		idx := span.Off + int(r%uint64(span.Len))
		out[idx] ^= 1 << ((r >> 32) % 8)
	}
	return out
}

// Truncate returns a copy of data cut off at a pseudo-random point inside
// span — modelling a transfer that died mid-tile (the EOC and any following
// tile-parts are gone too).
func Truncate(data []byte, span Span, seed uint64) []byte {
	if span.Len <= 0 {
		return append([]byte(nil), data...)
	}
	cut := span.Off + int(splitmix64(&seed)%uint64(span.Len))
	return append([]byte(nil), data[:cut]...)
}

// DropBytes returns a copy of data with a short pseudo-random run of bytes
// inside span removed (the tail shifts down) — the framing damage that makes
// everything after the drop parse at the wrong offset.
func DropBytes(data []byte, span Span, seed uint64) []byte {
	if span.Len <= 0 {
		return append([]byte(nil), data...)
	}
	r := splitmix64(&seed)
	start := span.Off + int(r%uint64(span.Len))
	maxRun := span.End() - start
	run := 1 + int((r>>32)%16)
	if run > maxRun {
		run = maxRun
	}
	out := append([]byte(nil), data[:start]...)
	return append(out, data[start+run:]...)
}

// Mutation couples a mutator's name (stable across runs, usable as a subtest
// name) with its damaged codestream.
type Mutation struct {
	Name string
	Data []byte
}

// Mutations applies the standard mutator set — bit flips, truncation and a
// byte drop per tile body, plus a main-header bit flip — to one codestream.
// The same (cs, seed) always yields the same set.
func Mutations(cs []byte, seed uint64) []Mutation {
	var muts []Mutation
	for ti, sp := range TileBodies(cs) {
		if sp.Len == 0 {
			continue
		}
		s := seed ^ uint64(ti+1)*0x9E3779B97F4A7C15
		muts = append(muts,
			Mutation{Name: fmt.Sprintf("tile%d-bitflip", ti), Data: BitFlip(cs, sp, 8, s)},
			Mutation{Name: fmt.Sprintf("tile%d-truncate", ti), Data: Truncate(cs, sp, s)},
			Mutation{Name: fmt.Sprintf("tile%d-drop", ti), Data: DropBytes(cs, sp, s)},
		)
	}
	if h := Header(cs); h.Len > 0 {
		muts = append(muts, Mutation{Name: "header-bitflip", Data: BitFlip(cs, h, 2, seed)})
	}
	return muts
}
