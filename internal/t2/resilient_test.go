package t2

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// --- Fake readers with scripted failure shapes.

// tempErr advertises Temporary() so the classifier sees it as retryable.
type tempErr struct{}

func (tempErr) Error() string   { return "fake transient failure" }
func (tempErr) Temporary() bool { return true }

// failNReader fails its first limit reads with err, then serves data.
type failNReader struct {
	data  []byte
	limit int64
	err   error
	calls atomic.Int64
}

func (r *failNReader) ReadAt(p []byte, off int64) (int, error) {
	if r.calls.Add(1) <= r.limit {
		return 0, r.err
	}
	return copy(p, r.data[off:]), nil
}

// stallReader sleeps, then scribbles a marker byte over the whole request —
// the straggler shape the owned-buffer deadline path must contain.
type stallReader struct {
	d        time.Duration
	fastFrom int64 // calls after this many respond immediately (0 = never)
	calls    atomic.Int64
	finished atomic.Int64
}

func (r *stallReader) ReadAt(p []byte, off int64) (int, error) {
	c := r.calls.Add(1)
	if r.fastFrom == 0 || c <= r.fastFrom {
		time.Sleep(r.d)
	}
	for i := range p {
		p[i] = 0xBB
	}
	r.finished.Add(1)
	return len(p), nil
}

// shortNReader returns half the requested bytes with a nil error (the
// io.ReaderAt contract violation) for its first limit calls, then behaves.
type shortNReader struct {
	data  []byte
	limit int64
	calls atomic.Int64
}

func (r *shortNReader) ReadAt(p []byte, off int64) (int, error) {
	if r.calls.Add(1) <= r.limit {
		n := copy(p[:len(p)/2], r.data[off:])
		return n, nil
	}
	return copy(p, r.data[off:]), nil
}

// countReader serves data and counts full-stream reads (All materializations).
type countReader struct {
	data      []byte
	fullReads atomic.Int64
}

func (r *countReader) ReadAt(p []byte, off int64) (int, error) {
	if off == 0 && len(p) == len(r.data) {
		r.fullReads.Add(1)
	}
	return copy(p, r.data[off:]), nil
}

func resilientOver(r io.ReaderAt, size int64, pol RetryPolicy) *Source {
	return ResilientSource(NewSource(r, size), pol)
}

// --- Retry loop.

func TestResilientRetriesTransient(t *testing.T) {
	data := []byte("hello, resilient world")
	r := &failNReader{data: data, limit: 2, err: tempErr{}}
	var ctr IOCounters
	src := resilientOver(r, int64(len(data)), RetryPolicy{Retries: 3, Counters: &ctr})
	p := make([]byte, 5)
	n, err := src.ReadAt(p, 0)
	if err != nil || n != 5 || string(p) != "hello" {
		t.Fatalf("ReadAt = %d, %q, %v; want 5, \"hello\", nil", n, p, err)
	}
	if ctr.Reads.Load() != 3 || ctr.Retries.Load() != 2 || ctr.Failures.Load() != 0 {
		t.Fatalf("counters reads=%d retries=%d failures=%d; want 3, 2, 0",
			ctr.Reads.Load(), ctr.Retries.Load(), ctr.Failures.Load())
	}
}

func TestResilientPermanentFailsFirstAttempt(t *testing.T) {
	permanent := errors.New("disk on fire")
	r := &failNReader{limit: 1 << 30, err: permanent}
	var ctr IOCounters
	src := resilientOver(r, 100, RetryPolicy{Retries: 5, Counters: &ctr})
	_, err := src.ReadAt(make([]byte, 10), 20)
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *ReadError", err, err)
	}
	if re.Attempts != 1 || re.Transient || re.Off != 20 || re.Len != 10 {
		t.Fatalf("ReadError = %+v; want attempts 1, permanent, span [20, 30)", re)
	}
	if !errors.Is(err, permanent) {
		t.Fatal("ReadError does not wrap the underlying error")
	}
	if ctr.Reads.Load() != 1 || ctr.Retries.Load() != 0 || ctr.Failures.Load() != 1 {
		t.Fatalf("permanent failure burned retries: reads=%d retries=%d failures=%d",
			ctr.Reads.Load(), ctr.Retries.Load(), ctr.Failures.Load())
	}
	if !IsIOError(err) {
		t.Fatal("IsIOError = false for a Source read failure")
	}
}

func TestResilientRetriesExhausted(t *testing.T) {
	r := &failNReader{limit: 1 << 30, err: tempErr{}}
	var ctr IOCounters
	src := resilientOver(r, 100, RetryPolicy{Retries: 2, Counters: &ctr})
	_, err := src.ReadAt(make([]byte, 8), 0)
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *ReadError", err)
	}
	if re.Attempts != 3 || !re.Transient {
		t.Fatalf("ReadError = %+v; want 3 attempts, transient", re)
	}
	if ctr.Reads.Load() != 3 || ctr.Retries.Load() != 2 || ctr.Failures.Load() != 1 {
		t.Fatalf("counters reads=%d retries=%d failures=%d; want 3, 2, 1",
			ctr.Reads.Load(), ctr.Retries.Load(), ctr.Failures.Load())
	}
}

func TestRetryBudgetCapsRetries(t *testing.T) {
	r := &failNReader{limit: 1 << 30, err: tempErr{}}
	var ctr IOCounters
	budget := NewRetryBudget(3)
	src := resilientOver(r, 100, RetryPolicy{Retries: 10, Budget: budget, Counters: &ctr})
	_, err := src.ReadAt(make([]byte, 4), 0)
	var re *ReadError
	if !errors.As(err, &re) || re.Attempts != 4 {
		t.Fatalf("first read: err %v; want *ReadError with 4 attempts (1 + 3 budgeted retries)", err)
	}
	if got := budget.Remaining(); got != 0 {
		t.Fatalf("budget remaining = %d after exhaustion; want 0", got)
	}
	// The spent budget makes later reads fail fast: one attempt, no retries.
	_, err = src.ReadAt(make([]byte, 4), 8)
	if !errors.As(err, &re) || re.Attempts != 1 {
		t.Fatalf("post-budget read: err %v; want single-attempt *ReadError", err)
	}
	if ctr.Retries.Load() != 3 {
		t.Fatalf("total retries = %d; want exactly the budget of 3", ctr.Retries.Load())
	}
}

// --- Per-read deadline.

func TestReadTimeoutAbandonsStalledRead(t *testing.T) {
	r := &stallReader{d: 500 * time.Millisecond}
	var ctr IOCounters
	src := resilientOver(r, 100, RetryPolicy{ReadTimeout: 10 * time.Millisecond, Counters: &ctr})
	start := time.Now()
	_, err := src.ReadAt(make([]byte, 16), 0)
	elapsed := time.Since(start)
	var re *ReadError
	if !errors.As(err, &re) || !re.Transient {
		t.Fatalf("stalled read: err %v; want transient *ReadError", err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("read took %v; the deadline did not abandon the stall", elapsed)
	}
	if ctr.Timeouts.Load() != 1 {
		t.Fatalf("timeouts = %d; want 1", ctr.Timeouts.Load())
	}
}

func TestReadTimeoutStragglerCannotScribble(t *testing.T) {
	r := &stallReader{d: 50 * time.Millisecond}
	src := resilientOver(r, 100, RetryPolicy{ReadTimeout: 5 * time.Millisecond})
	p := make([]byte, 16)
	for i := range p {
		p[i] = 0xAA
	}
	if _, err := src.ReadAt(p, 0); err == nil {
		t.Fatal("stalled read did not fail")
	}
	// Wait for the abandoned straggler to finish its scribble, then verify it
	// landed in the owned buffer, not the caller's memory.
	deadline := time.Now().Add(2 * time.Second)
	for r.finished.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.finished.Load() == 0 {
		t.Fatal("straggler never completed")
	}
	for i, b := range p {
		if b != 0xAA {
			t.Fatalf("caller buffer byte %d = %#x; straggler scribbled on abandoned memory", i, b)
		}
	}
}

func TestReadTimeoutRecoversOnRetry(t *testing.T) {
	data := []byte("0123456789abcdef")
	// First call stalls past the deadline; the retry responds instantly (the
	// scribble marker is what a successful stallReader read returns).
	r := &stallReader{d: 60 * time.Millisecond, fastFrom: 1}
	var ctr IOCounters
	src := resilientOver(r, int64(len(data)), RetryPolicy{
		Retries: 2, ReadTimeout: 15 * time.Millisecond, Counters: &ctr,
	})
	p := make([]byte, 8)
	if n, err := src.ReadAt(p, 0); err != nil || n != 8 {
		t.Fatalf("ReadAt = %d, %v; want full read after timed-out first attempt", n, err)
	}
	if ctr.Timeouts.Load() < 1 || ctr.Retries.Load() < 1 {
		t.Fatalf("timeouts=%d retries=%d; the deadline path never fired", ctr.Timeouts.Load(), ctr.Retries.Load())
	}
}

// --- Short reads.

func TestShortReadRetried(t *testing.T) {
	data := []byte("0123456789abcdef")
	r := &shortNReader{data: data, limit: 1}
	src := resilientOver(r, int64(len(data)), RetryPolicy{Retries: 1})
	p := make([]byte, 8)
	if n, err := src.ReadAt(p, 0); err != nil || n != 8 || string(p) != "01234567" {
		t.Fatalf("ReadAt = %d, %q, %v; want the retry to deliver the full read", n, p, err)
	}
}

func TestShortReadWithoutRetriesIsTyped(t *testing.T) {
	data := []byte("0123456789abcdef")
	r := &shortNReader{data: data, limit: 1 << 30}
	src := resilientOver(r, int64(len(data)), RetryPolicy{})
	_, err := src.ReadAt(make([]byte, 8), 0)
	var re *ReadError
	if !errors.As(err, &re) || !re.Transient {
		t.Fatalf("short read: err %v; want transient *ReadError", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read error %v does not wrap io.ErrUnexpectedEOF", err)
	}
}

// --- Classification.

func TestTransientClassifier(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"temporary", tempErr{}, true},
		{"timeout", timeoutError{time.Second}, true},
		{"deadline-os", os.ErrDeadlineExceeded, true},
		{"deadline-ctx", context.DeadlineExceeded, true},
		{"short-read", io.ErrUnexpectedEOF, true},
		{"wrapped-deadline", fmt.Errorf("tile 3: %w", os.ErrDeadlineExceeded), true},
		{"plain", errors.New("no such device"), false},
		{"eof", io.EOF, false},
		// A ReadError's own verdict wins over whatever it wraps: the retry
		// layer already classified (and possibly retried) the inner error.
		{"readerror-permanent-wrapping-temporary", &ReadError{Transient: false, Err: tempErr{}}, false},
		{"readerror-transient", &ReadError{Transient: true, Err: errors.New("x")}, true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// --- Backoff.

func TestBackoffDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		r := &failNReader{limit: 1 << 30, err: tempErr{}}
		src := resilientOver(r, 100, RetryPolicy{
			Retries: 4, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
			JitterSeed: 42,
			Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
		})
		src.ReadAt(make([]byte, 4), 96)
		return sleeps
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("%d sleeps for 4 retries; want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter is not deterministic: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
	// Exponential growth with ±25% jitter: attempt i sleeps in
	// [0.75*base, 1.75*base) for base = min(1ms << i, 8ms).
	for i, d := range a {
		base := time.Millisecond << uint(i)
		if base > 8*time.Millisecond {
			base = 8 * time.Millisecond
		}
		if d < base*3/4 || d >= base*7/4 {
			t.Errorf("sleep %d = %v outside jitter window around %v", i, d, base)
		}
	}
}

// --- Source integration: typed errors, All guard, Close semantics.

func TestSourceReadAtWrapsErrors(t *testing.T) {
	r := &failNReader{limit: 1 << 30, err: errors.New("bad sector")}
	src := NewSource(r, 64)
	_, err := src.ReadAt(make([]byte, 8), 16)
	var re *ReadError
	if !errors.As(err, &re) || re.Off != 16 || re.Len != 8 {
		t.Fatalf("raw Source read failure %v is not a spanned *ReadError", err)
	}
	// A bounds violation is a caller bug, not an IO fault.
	_, err = src.ReadAt(make([]byte, 8), 60)
	if err == nil || IsIOError(err) {
		t.Fatalf("out-of-bounds read: err %v; want a plain (non-IO) error", err)
	}
}

func TestAllRefusesOversizedSource(t *testing.T) {
	old := MaxResidentBytes
	MaxResidentBytes = 16
	defer func() { MaxResidentBytes = old }()
	data := make([]byte, 32)
	if _, err := NewSource(&countReader{data: data}, 32).All(); err == nil {
		t.Fatal("All materialized a source past MaxResidentBytes")
	}
	// Resident bytes are exempt: the caller already holds them.
	if _, err := BytesSource(data).All(); err != nil {
		t.Fatalf("All over resident bytes: %v", err)
	}
}

func TestCloseDropsAllMemo(t *testing.T) {
	data := []byte("0123456789abcdef")
	r := &countReader{data: data}
	src := NewSource(r, int64(len(data)))
	for i := 0; i < 2; i++ {
		got, err := src.All()
		if err != nil || string(got) != string(data) {
			t.Fatalf("All #%d = %q, %v", i, got, err)
		}
	}
	if n := r.fullReads.Load(); n != 1 {
		t.Fatalf("%d full reads before Close; want the memo to serve the second All", n)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := src.All(); err != nil {
		t.Fatalf("All after Close: %v", err)
	}
	if n := r.fullReads.Load(); n != 2 {
		t.Fatalf("%d full reads after Close+All; want Close to have dropped the memo", n)
	}
}

func TestResilientResidentPassthrough(t *testing.T) {
	src := BytesSource([]byte("resident"))
	if got := ResilientSource(src, RetryPolicy{Retries: 3}); got != src {
		t.Fatal("ResilientSource wrapped a resident source; memory cannot fail")
	}
}

func TestResilientWrapperDoesNotOwnFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.bin")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rs := ResilientSource(src, RetryPolicy{Retries: 1})
	if err := rs.Close(); err != nil {
		t.Fatalf("closing the wrapper: %v", err)
	}
	// The wrapper's Close must not have closed the file under the original.
	if _, err := src.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatalf("original source read after wrapper Close: %v", err)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("closing the original: %v", err)
	}
	if _, err := src.ReadAt(make([]byte, 4), 0); err == nil {
		t.Fatal("read succeeded through a closed file source")
	}
}
