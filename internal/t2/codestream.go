package t2

import (
	"encoding/binary"
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/quant"
)

// Marker codes (ISO/IEC 15444-1 Annex A).
const (
	mSOC = 0xFF4F
	mSIZ = 0xFF51
	mCOD = 0xFF52
	mRGN = 0xFF5E
	mQCD = 0xFF5C
	mSOT = 0xFF90
	mSOD = 0xFF93
	mEOC = 0xFFD9
)

// Params is the codestream-level configuration carried by the SIZ/COD/QCD
// markers. Deviations from the standard's field semantics (documented in
// DESIGN.md): the QCD step exponents are absolute rather than relative to the
// band's nominal dynamic range, and per-band maximum bit-plane counts are
// carried explicitly alongside the steps.
type Params struct {
	Width, Height int
	TileW, TileH  int // tile grid; equal to image size for single-tile
	BitDepth      int
	Levels        int
	Layers        int
	CBW, CBH      int // code-block size (powers of two, <= 64)
	Kernel        dwt.Kernel
	GuardBits     int
	Steps         []quant.Step // per band, empty for Rev53
	Mb            []int        // per band nominal max bit-planes
	ROIShift      int          // MAXSHIFT ROI scaling value (RGN marker); 0 = no ROI
}

// NumTiles returns the tile grid dimensions.
func (p Params) NumTiles() (int, int) {
	tx := (p.Width + p.TileW - 1) / p.TileW
	ty := (p.Height + p.TileH - 1) / p.TileH
	return tx, ty
}

// CheckGeometry verifies that the per-band header arrays cover the
// decomposition the COD marker declares. ReadCodestream is a lenient
// container parser and does not cross-check markers against each other;
// consumers that index Mb/Steps by band (the decoder, the codestream Index)
// must call this first so a corrupt stream yields an error instead of an
// out-of-range panic.
func (p Params) CheckGeometry() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("t2: missing or empty SIZ (%dx%d)", p.Width, p.Height)
	}
	if p.Layers < 1 {
		return fmt.Errorf("t2: missing COD (layers %d)", p.Layers)
	}
	nbands := 1 + 3*p.Levels
	if len(p.Mb) < nbands {
		return fmt.Errorf("t2: QCD carries %d bands, %d levels need %d", len(p.Mb), p.Levels, nbands)
	}
	if p.Kernel == dwt.Irr97 && len(p.Steps) < nbands {
		return fmt.Errorf("t2: QCD carries %d steps, %d levels need %d", len(p.Steps), p.Levels, nbands)
	}
	return nil
}

func put16(b []byte, v int) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v int) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// WriteCodestream serializes the full codestream: main header, one tile-part
// per tile (in raster order), EOC.
func WriteCodestream(p Params, tiles [][]byte) []byte {
	var out []byte
	out = put16(out, mSOC)

	// SIZ
	out = put16(out, mSIZ)
	out = put16(out, 38+3) // Lsiz for 1 component
	out = put16(out, 0)    // Rsiz
	out = put32(out, p.Width)
	out = put32(out, p.Height)
	out = put32(out, 0) // XOsiz
	out = put32(out, 0) // YOsiz
	out = put32(out, p.TileW)
	out = put32(out, p.TileH)
	out = put32(out, 0) // XTOsiz
	out = put32(out, 0) // YTOsiz
	out = put16(out, 1) // Csiz
	out = append(out, byte(p.BitDepth-1), 1, 1)

	// COD
	out = put16(out, mCOD)
	out = put16(out, 12)
	out = append(out, 0)       // Scod: default precincts, no SOP/EPH
	out = append(out, 0)       // progression: LRCP
	out = put16(out, p.Layers) // number of layers
	out = append(out, 0)       // MCT: none
	out = append(out, byte(p.Levels))
	out = append(out, byte(log2i(p.CBW)-2), byte(log2i(p.CBH)-2))
	out = append(out, 0) // code-block style: default
	if p.Kernel == dwt.Rev53 {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}

	// QCD: guard bits + per-band (Mb byte [+ step halfword for 9/7]).
	out = put16(out, mQCD)
	perBand := 1
	style := byte(0)
	if p.Kernel == dwt.Irr97 {
		perBand = 3
		style = 2
	}
	out = put16(out, 3+perBand*len(p.Mb))
	out = append(out, byte(p.GuardBits)<<5|style)
	for i, mb := range p.Mb {
		out = append(out, byte(mb))
		if p.Kernel == dwt.Irr97 {
			s := p.Steps[i]
			out = put16(out, s.Exponent<<11|s.Mantissa)
		}
	}

	// RGN: MAXSHIFT region of interest.
	if p.ROIShift > 0 {
		out = put16(out, mRGN)
		out = put16(out, 5)
		out = append(out, 0, 1, byte(p.ROIShift)) // Crgn, Srgn=maxshift, SPrgn
	}

	// Tile-parts.
	for i, td := range tiles {
		out = put16(out, mSOT)
		out = put16(out, 10)
		out = put16(out, i)
		out = put32(out, 12+2+len(td)) // Psot: SOT..end of data
		out = append(out, 0, 1)        // TPsot, TNsot
		out = put16(out, mSOD)
		out = append(out, td...)
	}
	out = put16(out, mEOC)
	return out
}

func log2i(v int) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) u16() (int, error) {
	if r.pos+2 > len(r.data) {
		return 0, fmt.Errorf("t2: truncated codestream at %d", r.pos)
	}
	v := int(binary.BigEndian.Uint16(r.data[r.pos:]))
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (int, error) {
	if r.pos+4 > len(r.data) {
		return 0, fmt.Errorf("t2: truncated codestream at %d", r.pos)
	}
	v := int(binary.BigEndian.Uint32(r.data[r.pos:]))
	r.pos += 4
	return v, nil
}

func (r *reader) u8() (int, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("t2: truncated codestream at %d", r.pos)
	}
	v := int(r.data[r.pos])
	r.pos++
	return v, nil
}

// ReadCodestream parses a codestream produced by WriteCodestream, returning
// the parameters and the per-tile packet data.
func ReadCodestream(data []byte) (Params, [][]byte, error) {
	var p Params
	r := &reader{data: data}
	if m, err := r.u16(); err != nil || m != mSOC {
		return p, nil, fmt.Errorf("t2: missing SOC (got %#x, %v)", m, err)
	}
	var tiles [][]byte
	for {
		m, err := r.u16()
		if err != nil {
			return p, nil, err
		}
		switch m {
		case mSIZ:
			if _, err = r.u16(); err != nil { // Lsiz
				return p, nil, err
			}
			if _, err = r.u16(); err != nil { // Rsiz
				return p, nil, err
			}
			if p.Width, err = r.u32(); err != nil {
				return p, nil, err
			}
			if p.Height, err = r.u32(); err != nil {
				return p, nil, err
			}
			for i := 0; i < 2; i++ { // XOsiz YOsiz
				if _, err = r.u32(); err != nil {
					return p, nil, err
				}
			}
			if p.TileW, err = r.u32(); err != nil {
				return p, nil, err
			}
			if p.TileH, err = r.u32(); err != nil {
				return p, nil, err
			}
			for i := 0; i < 2; i++ { // XTOsiz YTOsiz
				if _, err = r.u32(); err != nil {
					return p, nil, err
				}
			}
			ncomp, err := r.u16()
			if err != nil {
				return p, nil, err
			}
			if ncomp != 1 {
				return p, nil, fmt.Errorf("t2: %d components unsupported", ncomp)
			}
			ssiz, err := r.u8()
			if err != nil {
				return p, nil, err
			}
			p.BitDepth = ssiz&0x7F + 1
			if _, err = r.u8(); err != nil { // XRsiz
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // YRsiz
				return p, nil, err
			}
			// Sanity limits so corrupted headers cannot demand absurd
			// allocations downstream.
			if p.Width <= 0 || p.Height <= 0 || p.Width > 1<<20 || p.Height > 1<<20 ||
				p.Width*p.Height > 1<<28 {
				return p, nil, fmt.Errorf("t2: implausible image size %dx%d", p.Width, p.Height)
			}
			if p.TileW <= 0 || p.TileH <= 0 || p.TileW > p.Width+64 || p.TileH > p.Height+64 {
				return p, nil, fmt.Errorf("t2: implausible tile size %dx%d", p.TileW, p.TileH)
			}
			if p.BitDepth < 1 || p.BitDepth > 16 {
				return p, nil, fmt.Errorf("t2: unsupported bit depth %d", p.BitDepth)
			}
		case mCOD:
			if _, err = r.u16(); err != nil { // Lcod
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // Scod
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // progression
				return p, nil, err
			}
			if p.Layers, err = r.u16(); err != nil {
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // MCT
				return p, nil, err
			}
			if p.Levels, err = r.u8(); err != nil {
				return p, nil, err
			}
			xcb, err := r.u8()
			if err != nil {
				return p, nil, err
			}
			ycb, err := r.u8()
			if err != nil {
				return p, nil, err
			}
			p.CBW, p.CBH = 1<<(xcb+2), 1<<(ycb+2)
			if _, err = r.u8(); err != nil { // cb style
				return p, nil, err
			}
			tr, err := r.u8()
			if err != nil {
				return p, nil, err
			}
			if tr == 1 {
				p.Kernel = dwt.Rev53
			} else {
				p.Kernel = dwt.Irr97
			}
			if p.Levels < 0 || p.Levels > 32 || p.Layers < 1 || p.CBW < 4 || p.CBW > 64 || p.CBH < 4 || p.CBH > 64 {
				return p, nil, fmt.Errorf("t2: implausible COD (levels %d, layers %d, cb %dx%d)",
					p.Levels, p.Layers, p.CBW, p.CBH)
			}
		case mQCD:
			lqcd, err := r.u16()
			if err != nil {
				return p, nil, err
			}
			sq, err := r.u8()
			if err != nil {
				return p, nil, err
			}
			p.GuardBits = sq >> 5
			style := sq & 0x1F
			perBand := 1
			if style == 2 {
				perBand = 3
			}
			nb := (lqcd - 3) / perBand
			if nb < 0 || nb > 1+3*32 { // COD caps levels at 32
				return p, nil, fmt.Errorf("t2: implausible QCD band count %d", nb)
			}
			p.Mb = make([]int, nb)
			if style == 2 {
				p.Steps = make([]quant.Step, nb)
			}
			for i := 0; i < nb; i++ {
				mb, err := r.u8()
				if err != nil {
					return p, nil, err
				}
				p.Mb[i] = mb
				if style == 2 {
					v, err := r.u16()
					if err != nil {
						return p, nil, err
					}
					p.Steps[i] = quant.Step{Exponent: v >> 11, Mantissa: v & 0x7FF}
				}
			}
		case mRGN:
			if _, err = r.u16(); err != nil { // Lrgn
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // Crgn
				return p, nil, err
			}
			if _, err = r.u8(); err != nil { // Srgn
				return p, nil, err
			}
			if p.ROIShift, err = r.u8(); err != nil {
				return p, nil, err
			}
		case mSOT:
			if _, err = r.u16(); err != nil { // Lsot
				return p, nil, err
			}
			if _, err = r.u16(); err != nil { // Isot
				return p, nil, err
			}
			psot, err := r.u32()
			if err != nil {
				return p, nil, err
			}
			for i := 0; i < 2; i++ { // TPsot, TNsot
				if _, err = r.u8(); err != nil {
					return p, nil, err
				}
			}
			if m, err := r.u16(); err != nil || m != mSOD {
				return p, nil, fmt.Errorf("t2: missing SOD (got %#x, %v)", m, err)
			}
			dataLen := psot - 12 - 2
			if dataLen < 0 || r.pos+dataLen > len(r.data) {
				return p, nil, fmt.Errorf("t2: bad Psot %d", psot)
			}
			tiles = append(tiles, r.data[r.pos:r.pos+dataLen])
			r.pos += dataLen
		case mEOC:
			return p, tiles, nil
		default:
			return p, nil, fmt.Errorf("t2: unexpected marker %#x at %d", m, r.pos-2)
		}
	}
}
