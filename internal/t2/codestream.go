package t2

import (
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/quant"
	"pj2k/internal/t1"
)

// Marker codes (ISO/IEC 15444-1 Annex A).
const (
	mSOC = 0xFF4F
	mSIZ = 0xFF51
	mCOD = 0xFF52
	mRGN = 0xFF5E
	mQCD = 0xFF5C
	mQCC = 0xFF5D
	mSOT = 0xFF90
	mSOP = 0xFF91
	mEPH = 0xFF92
	mSOD = 0xFF93
	mEOC = 0xFFD9
)

// MaxComponents bounds Csiz so a corrupt header cannot demand absurd
// per-component allocations downstream (the standard allows 16384; nothing in
// this codebase needs more than a handful).
const MaxComponents = 256

// MaxImagePixels bounds the total sample budget a header may declare —
// Width x Height x Csiz, one sample per component plane — before any plane is
// allocated: the decompression-bomb guard keeping a 16-byte hostile header
// from demanding gigabytes. ReadCodestream and CheckGeometry both enforce it,
// so hand-built Params pass through the same gate as parsed streams. Mutable
// for deployments serving genuinely larger imagery; set it at startup, not
// concurrently with decoding.
var MaxImagePixels int64 = 1 << 28

// maxImageDim bounds each image axis independently of the pixel budget.
const maxImageDim = 1 << 20

// Params is the codestream-level configuration carried by the SIZ/COD/QCD/QCC
// markers. Deviations from the standard's field semantics (documented in
// DESIGN.md): the QCD/QCC step exponents are absolute rather than relative to
// the band's nominal dynamic range, and per-band maximum bit-plane counts are
// carried explicitly alongside the steps.
//
// All components share the image geometry, bit depth and coding style (equal
// Ssiz, XRsiz = YRsiz = 1); quantization is per component: Mb[c][b] and
// Steps[c][b] index component c, band b (dwt.Subbands order). Component 0's
// values travel in the QCD marker, further components in one QCC each.
type Params struct {
	Width, Height int
	TileW, TileH  int // tile grid; equal to image size for single-tile
	NComp         int // Csiz; 0 is treated as 1 for backward compatibility
	BitDepth      int
	Levels        int
	Layers        int
	CBW, CBH      int  // code-block size (powers of two, <= 64)
	MCT           bool // inter-component transform applied to components 0-2
	Kernel        dwt.Kernel
	GuardBits     int
	Steps         [][]quant.Step // per component, per band; empty for Rev53
	Mb            [][]int        // per component, per band nominal max bit-planes
	ROIShift      int            // MAXSHIFT ROI scaling value (RGN marker); 0 = no ROI

	// Error-resilience tools (all default off, leaving default bitstreams
	// bit-identical): UseSOP prefixes every packet with a sequence-numbered
	// SOP marker and UseEPH terminates every packet header with an EPH marker
	// (Scod bits 1 and 2), giving a resilient decoder resynchronization
	// points; SegSym flags segmentation symbols in the COD code-block style
	// byte — the tier-1 coder must be run with the matching option.
	UseSOP bool
	UseEPH bool
	SegSym bool

	// Optional tier-1 code-block coding styles, signalled alongside SegSym in
	// the COD code-block style byte: arithmetic bypass (bit 0x01), per-pass
	// context reset (0x02), per-pass segment termination (0x04) and vertically
	// stripe-causal contexts (0x08). All default off, leaving default
	// bitstreams bit-identical; the tier-1 coder must run with the matching
	// modes (CoderModes).
	Bypass   bool
	ResetCtx bool
	TermAll  bool
	Causal   bool
}

// CoderModes returns the tier-1 coder modes the COD marker signals; both the
// packet machinery (TileCoder.Modes) and the tier-1 coders must run with the
// same value for a codestream to round-trip.
func (p Params) CoderModes() t1.Modes {
	return t1.Modes{
		Bypass:   p.Bypass,
		ResetCtx: p.ResetCtx,
		TermAll:  p.TermAll,
		Causal:   p.Causal,
		SegSym:   p.SegSym,
	}
}

// Components returns the component count, treating the zero value as a
// single-component stream.
func (p Params) Components() int {
	if p.NComp < 1 {
		return 1
	}
	return p.NComp
}

// NumTiles returns the tile grid dimensions.
func (p Params) NumTiles() (int, int) {
	tx := (p.Width + p.TileW - 1) / p.TileW
	ty := (p.Height + p.TileH - 1) / p.TileH
	return tx, ty
}

// CheckGeometry verifies that the per-component per-band header arrays cover
// the decomposition the COD marker declares. ReadCodestream is a lenient
// container parser and does not cross-check markers against each other;
// consumers that index Mb/Steps by (component, band) — the decoder, the
// codestream Index — must call this first so a corrupt stream yields an error
// instead of an out-of-range panic.
func (p Params) CheckGeometry() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("t2: missing or empty SIZ (%dx%d)", p.Width, p.Height)
	}
	if p.Layers < 1 {
		return fmt.Errorf("t2: missing COD (layers %d)", p.Layers)
	}
	nc := p.Components()
	if nc > MaxComponents {
		return fmt.Errorf("t2: %d components exceeds the %d limit", nc, MaxComponents)
	}
	if p.Width > maxImageDim || p.Height > maxImageDim ||
		int64(p.Width)*int64(p.Height)*int64(nc) > MaxImagePixels {
		return fmt.Errorf("t2: declared size %dx%dx%d exceeds the %d-sample budget (MaxImagePixels)",
			p.Width, p.Height, nc, MaxImagePixels)
	}
	if p.MCT && nc != 3 {
		return fmt.Errorf("t2: MCT flagged on a %d-component stream (needs exactly 3)", nc)
	}
	if len(p.Mb) < nc {
		return fmt.Errorf("t2: quantization for %d of %d components", len(p.Mb), nc)
	}
	nbands := 1 + 3*p.Levels
	for ci := 0; ci < nc; ci++ {
		if len(p.Mb[ci]) < nbands {
			return fmt.Errorf("t2: component %d QCD/QCC carries %d bands, %d levels need %d",
				ci, len(p.Mb[ci]), p.Levels, nbands)
		}
		if p.Kernel == dwt.Irr97 {
			if len(p.Steps) <= ci || len(p.Steps[ci]) < nbands {
				ns := 0
				if len(p.Steps) > ci {
					ns = len(p.Steps[ci])
				}
				return fmt.Errorf("t2: component %d QCD/QCC carries %d steps, %d levels need %d",
					ci, ns, p.Levels, nbands)
			}
		}
	}
	return nil
}

func put16(b []byte, v int) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v int) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendQuant serializes the shared tail of QCD/QCC: the Sqcd/Sqcc byte
// followed by the per-band values of one component.
func appendQuant(out []byte, p Params, ci int) []byte {
	style := byte(0)
	if p.Kernel == dwt.Irr97 {
		style = 2
	}
	out = append(out, byte(p.GuardBits)<<5|style)
	if ci >= len(p.Mb) {
		return out
	}
	for i, mb := range p.Mb[ci] {
		out = append(out, byte(mb))
		if p.Kernel == dwt.Irr97 {
			s := p.Steps[ci][i]
			out = put16(out, s.Exponent<<11|s.Mantissa)
		}
	}
	return out
}

// WriteCodestream serializes the full codestream: main header, one tile-part
// per tile (in raster order), EOC. Multi-component streams carry Csiz = NComp
// in SIZ, the MCT flag in COD, component 0's quantization in QCD and one QCC
// marker per further component.
func WriteCodestream(p Params, tiles [][]byte) []byte {
	out := appendMainHeader(nil, p)
	for i, td := range tiles {
		out = appendSOT(out, i, len(td))
		out = append(out, td...)
	}
	out = put16(out, mEOC)
	return out
}

// appendMainHeader serializes SOC plus the main-header markers (SIZ, COD,
// QCD/QCC, RGN) — everything before the first tile-part. Shared between
// WriteCodestream and Index.WritePrefix so a layer-truncated re-emission can
// never drift from the canonical writer.
func appendMainHeader(out []byte, p Params) []byte {
	nc := p.Components()
	out = put16(out, mSOC)

	// SIZ
	out = put16(out, mSIZ)
	out = put16(out, 38+3*nc) // Lsiz
	out = put16(out, 0)       // Rsiz
	out = put32(out, p.Width)
	out = put32(out, p.Height)
	out = put32(out, 0) // XOsiz
	out = put32(out, 0) // YOsiz
	out = put32(out, p.TileW)
	out = put32(out, p.TileH)
	out = put32(out, 0)  // XTOsiz
	out = put32(out, 0)  // YTOsiz
	out = put16(out, nc) // Csiz
	for ci := 0; ci < nc; ci++ {
		out = append(out, byte(p.BitDepth-1), 1, 1) // Ssiz, XRsiz, YRsiz
	}

	// COD
	out = put16(out, mCOD)
	out = put16(out, 12)
	scod := byte(0) // default precincts
	if p.UseSOP {
		scod |= 0x02
	}
	if p.UseEPH {
		scod |= 0x04
	}
	out = append(out, scod)
	out = append(out, 0)       // progression: LRCP
	out = put16(out, p.Layers) // number of layers
	if p.MCT {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(p.Levels))
	out = append(out, byte(log2i(p.CBW)-2), byte(log2i(p.CBH)-2))
	cbStyle := byte(0)
	if p.Bypass {
		cbStyle |= 0x01 // arithmetic bypass (lazy coding)
	}
	if p.ResetCtx {
		cbStyle |= 0x02 // context reset on pass boundaries
	}
	if p.TermAll {
		cbStyle |= 0x04 // termination on every pass
	}
	if p.Causal {
		cbStyle |= 0x08 // vertically stripe-causal contexts
	}
	if p.SegSym {
		cbStyle |= 0x20 // segmentation symbols
	}
	out = append(out, cbStyle)
	if p.Kernel == dwt.Rev53 {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}

	// QCD (component 0): guard bits + per-band (Mb byte [+ step halfword for
	// 9/7]); QCC for each further component. Components beyond len(p.Mb)
	// carry no quantization marker (a zero-value Params still serializes,
	// matching the pre-multi-component tolerance for empty Mb). Marker
	// lengths are measured from the serialized tail so they can never drift
	// from appendQuant's layout.
	tail := appendQuant(nil, p, 0)
	out = put16(out, mQCD)
	out = put16(out, 2+len(tail))
	out = append(out, tail...)
	for ci := 1; ci < nc && ci < len(p.Mb); ci++ {
		tail = appendQuant(tail[:0], p, ci)
		out = put16(out, mQCC)
		out = put16(out, 3+len(tail))
		out = append(out, byte(ci)) // Cqcc (one byte: Csiz <= MaxComponents < 257)
		out = append(out, tail...)
	}

	// RGN: MAXSHIFT region of interest, one marker per component.
	if p.ROIShift > 0 {
		for ci := 0; ci < nc; ci++ {
			out = put16(out, mRGN)
			out = put16(out, 5)
			out = append(out, byte(ci), 1, byte(p.ROIShift)) // Crgn, Srgn=maxshift, SPrgn
		}
	}

	return out
}

// appendSOT serializes one tile-part header: SOT through SOD, for a body of
// bodyLen bytes.
func appendSOT(out []byte, isot, bodyLen int) []byte {
	out = put16(out, mSOT)
	out = put16(out, 10)
	out = put16(out, isot)
	out = put32(out, 12+2+bodyLen) // Psot: SOT..end of data
	out = append(out, 0, 1)        // TPsot, TNsot
	return put16(out, mSOD)
}

func log2i(v int) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// readQuant parses the shared tail of QCD/QCC (Sqcd/Sqcc byte plus per-band
// values) given the byte count the marker length leaves for it.
func (r *sreader) readQuant(tail int) (guard int, mb []int, steps []quant.Step, err error) {
	sq, err := r.u8()
	if err != nil {
		return 0, nil, nil, err
	}
	guard = sq >> 5
	style := sq & 0x1F
	perBand := 1
	if style == 2 {
		perBand = 3
	}
	nb := (tail - 1) / perBand
	if nb < 0 || nb > 1+3*32 { // COD caps levels at 32
		return 0, nil, nil, fmt.Errorf("t2: implausible quantization band count %d", nb)
	}
	mb = make([]int, nb)
	if style == 2 {
		steps = make([]quant.Step, nb)
	}
	for i := 0; i < nb; i++ {
		v, err := r.u8()
		if err != nil {
			return 0, nil, nil, err
		}
		mb[i] = v
		if style == 2 {
			s, err := r.u16()
			if err != nil {
				return 0, nil, nil, err
			}
			steps[i] = quant.Step{Exponent: s >> 11, Mantissa: s & 0x7FF}
		}
	}
	return guard, mb, steps, nil
}

// ContainerDamage counts what the resilient container walk had to skip or
// re-bound to keep parsing a damaged codestream.
type ContainerDamage struct {
	Truncated    bool // stream ended (or became unparseable) before EOC
	BadMarkers   int  // unknown marker segments skipped by declared length
	BadTileParts int  // tile-parts with implausible Psot, re-bounded by scanning
	BadStyles    int  // unsupported COD code-block style bits masked off
}

// Any reports whether the walk recorded any container-level damage.
func (d ContainerDamage) Any() bool {
	return d.Truncated || d.BadMarkers > 0 || d.BadTileParts > 0 || d.BadStyles > 0
}

// ReadCodestream parses a codestream produced by WriteCodestream, returning
// the parameters and the per-tile packet data. Inconsistent per-component SIZ
// fields (mismatched bit depths, subsampled components) are rejected with an
// error, never a panic. It is the resident-bytes adapter over ScanCodestream;
// the returned tile bodies alias data.
func ReadCodestream(data []byte) (Params, [][]byte, error) {
	p, tiles, _, err := readCodestream(data, false)
	return p, tiles, err
}

// ReadCodestreamResilient is ReadCodestream in best-effort mode: a truncated
// stream yields the tile-parts that survive, a tile-part with an implausible
// Psot is re-bounded by scanning for the next tile-part boundary, and unknown
// main-header markers are skipped by their declared length — with everything
// salvaged around reported in ContainerDamage. An error is returned only when
// not even the SOC survives; callers must still CheckGeometry the result
// before decoding.
func ReadCodestreamResilient(data []byte) (Params, [][]byte, ContainerDamage, error) {
	return readCodestream(data, true)
}

func readCodestream(data []byte, resilient bool) (Params, [][]byte, ContainerDamage, error) {
	p, spans, dmg, err := scanCodestream(BytesSource(data), resilient)
	if err != nil {
		return p, nil, dmg, err
	}
	var tiles [][]byte
	if len(spans) > 0 {
		tiles = make([][]byte, len(spans))
		for i, sp := range spans {
			tiles[i] = data[sp.Off:sp.End()]
		}
	}
	return p, tiles, dmg, nil
}

// readSIZ parses the SIZ segment into p, including the sanity limits that
// keep a corrupt header from demanding absurd allocations downstream: each
// axis is bounded, and the Width x Height x Csiz sample budget is bounded by
// MaxImagePixels. The budget covers ALL components (decoders allocate one
// plane per component), so a tiny header cannot multiply a legal per-plane
// size by Csiz.
func (r *sreader) readSIZ(p *Params) error {
	if _, err := r.u16(); err != nil { // Lsiz
		return err
	}
	if _, err := r.u16(); err != nil { // Rsiz
		return err
	}
	var err error
	if p.Width, err = r.u32(); err != nil {
		return err
	}
	if p.Height, err = r.u32(); err != nil {
		return err
	}
	for i := 0; i < 2; i++ { // XOsiz YOsiz
		if _, err = r.u32(); err != nil {
			return err
		}
	}
	if p.TileW, err = r.u32(); err != nil {
		return err
	}
	if p.TileH, err = r.u32(); err != nil {
		return err
	}
	for i := 0; i < 2; i++ { // XTOsiz YTOsiz
		if _, err = r.u32(); err != nil {
			return err
		}
	}
	ncomp, err := r.u16()
	if err != nil {
		return err
	}
	if ncomp < 1 || ncomp > MaxComponents {
		return fmt.Errorf("t2: %d components out of range [1, %d]", ncomp, MaxComponents)
	}
	p.NComp = ncomp
	for ci := 0; ci < ncomp; ci++ {
		ssiz, err := r.u8()
		if err != nil {
			return err
		}
		depth := ssiz&0x7F + 1
		if ci == 0 {
			p.BitDepth = depth
		} else if depth != p.BitDepth {
			return fmt.Errorf("t2: component %d depth %d differs from component 0's %d",
				ci, depth, p.BitDepth)
		}
		xr, err := r.u8()
		if err != nil {
			return err
		}
		yr, err := r.u8()
		if err != nil {
			return err
		}
		if xr != 1 || yr != 1 {
			return fmt.Errorf("t2: component %d subsampling %dx%d unsupported", ci, xr, yr)
		}
	}
	if p.Width <= 0 || p.Height <= 0 || p.Width > maxImageDim || p.Height > maxImageDim ||
		int64(p.Width)*int64(p.Height)*int64(ncomp) > MaxImagePixels {
		return fmt.Errorf("t2: implausible image size %dx%dx%d", p.Width, p.Height, ncomp)
	}
	if p.TileW <= 0 || p.TileH <= 0 || p.TileW > p.Width+64 || p.TileH > p.Height+64 {
		return fmt.Errorf("t2: implausible tile size %dx%d", p.TileW, p.TileH)
	}
	if p.BitDepth < 1 || p.BitDepth > 16 {
		return fmt.Errorf("t2: unsupported bit depth %d", p.BitDepth)
	}
	p.Mb = make([][]int, ncomp)
	p.Steps = make([][]quant.Step, ncomp)
	return nil
}

// codBlockStyles is the set of COD code-block style bits this decoder
// implements: bypass (0x01), context reset (0x02), per-pass termination
// (0x04), stripe-causal contexts (0x08) and segmentation symbols (0x20).
const codBlockStyles = 0x2F

// readCOD parses the COD segment into p, including the error-resilience and
// coding-style signalling: SOP/EPH use from the Scod bits, the tier-1 coder
// modes from the code-block style byte. Style bits this decoder does not
// implement (e.g. 0x10 predictable termination) would silently mis-decode
// every code-block, so strict parsing rejects them; resilient parsing masks
// them off — tier-1 concealment then bounds the damage per block — and counts
// the salvage in dmg.BadStyles.
func (r *sreader) readCOD(p *Params, resilient bool, dmg *ContainerDamage) error {
	if _, err := r.u16(); err != nil { // Lcod
		return err
	}
	scod, err := r.u8()
	if err != nil {
		return err
	}
	p.UseSOP = scod&0x02 != 0
	p.UseEPH = scod&0x04 != 0
	if _, err = r.u8(); err != nil { // progression
		return err
	}
	if p.Layers, err = r.u16(); err != nil {
		return err
	}
	mct, err := r.u8()
	if err != nil {
		return err
	}
	p.MCT = mct&1 == 1
	if p.Levels, err = r.u8(); err != nil {
		return err
	}
	xcb, err := r.u8()
	if err != nil {
		return err
	}
	ycb, err := r.u8()
	if err != nil {
		return err
	}
	p.CBW, p.CBH = 1<<(xcb+2), 1<<(ycb+2)
	cbStyle, err := r.u8()
	if err != nil {
		return err
	}
	if unknown := cbStyle &^ codBlockStyles; unknown != 0 {
		if !resilient {
			return fmt.Errorf("t2: unsupported COD code-block style bits %#02x", unknown)
		}
		dmg.BadStyles++
		cbStyle &= codBlockStyles
	}
	p.Bypass = cbStyle&0x01 != 0
	p.ResetCtx = cbStyle&0x02 != 0
	p.TermAll = cbStyle&0x04 != 0
	p.Causal = cbStyle&0x08 != 0
	p.SegSym = cbStyle&0x20 != 0
	tr, err := r.u8()
	if err != nil {
		return err
	}
	if tr == 1 {
		p.Kernel = dwt.Rev53
	} else {
		p.Kernel = dwt.Irr97
	}
	if p.Levels < 0 || p.Levels > 32 || p.Layers < 1 || p.CBW < 4 || p.CBW > 64 || p.CBH < 4 || p.CBH > 64 {
		return fmt.Errorf("t2: implausible COD (levels %d, layers %d, cb %dx%d)",
			p.Levels, p.Layers, p.CBW, p.CBH)
	}
	return nil
}

func (r *sreader) readQCD(p *Params, qccSeen []bool) error {
	if p.NComp == 0 {
		return fmt.Errorf("t2: QCD before SIZ")
	}
	lqcd, err := r.u16()
	if err != nil {
		return err
	}
	guard, mb, steps, err := r.readQuant(lqcd - 2)
	if err != nil {
		return err
	}
	p.GuardBits = guard
	// QCD is the default for every component; QCC overrides one.
	for ci := 0; ci < p.NComp; ci++ {
		if !qccSeen[ci] {
			p.Mb[ci] = mb
			p.Steps[ci] = steps
		}
	}
	return nil
}

func (r *sreader) readQCC(p *Params, qccSeen []bool) error {
	if p.NComp == 0 {
		return fmt.Errorf("t2: QCC before SIZ")
	}
	lqcc, err := r.u16()
	if err != nil {
		return err
	}
	ci, err := r.u8() // Cqcc (one byte: Csiz <= MaxComponents < 257)
	if err != nil {
		return err
	}
	if ci >= p.NComp {
		return fmt.Errorf("t2: QCC for component %d of %d", ci, p.NComp)
	}
	_, mb, steps, err := r.readQuant(lqcc - 3)
	if err != nil {
		return err
	}
	p.Mb[ci] = mb
	p.Steps[ci] = steps
	qccSeen[ci] = true
	return nil
}

func (r *sreader) readRGN(p *Params) error {
	if _, err := r.u16(); err != nil { // Lrgn
		return err
	}
	if _, err := r.u8(); err != nil { // Crgn
		return err
	}
	if _, err := r.u8(); err != nil { // Srgn
		return err
	}
	var err error
	if p.ROIShift, err = r.u8(); err != nil {
		return err
	}
	return nil
}

// findTilePartEnd scans for the next tile-part boundary — an SOT or EOC
// marker — at or after pos. MQ bit-stuffing keeps bytes above 0x8F out of the
// positions following any 0xFF inside codeword segments and stuffed packet
// headers, so the scan lands on a real boundary (a pathological SOP sequence
// number embedding 0xFF90 is the only false positive, and costs only some
// extra reported damage).
func findTilePartEnd(data []byte, pos int) int {
	for i := pos; i+1 < len(data); i++ {
		if data[i] == 0xFF && (data[i+1] == mSOT&0xFF || data[i+1] == mEOC&0xFF) {
			return i
		}
	}
	return len(data)
}
