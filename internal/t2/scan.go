package t2

import (
	"encoding/binary"
	"fmt"
)

// TileSpan is the byte range of one tile-part body (the bytes after SOD,
// through the end the Psot field declares) within its codestream.
type TileSpan struct {
	Off, Len int64
}

// End returns the offset one past the span.
func (s TileSpan) End() int64 { return s.Off + s.Len }

// sourceChunk is the read-ahead granularity of the windowed source reader.
// Main-header markers are parsed out of chunked windows (one refill usually
// covers the whole header); the tile-part chain walk bypasses chunking with
// exact reads so indexing never touches body bytes.
const sourceChunk = 8 << 10

// sreader reads a codestream through a Source with one buffered sliding
// window. For a resident-bytes Source the window is the whole stream and
// never refills, so parsing out of a []byte stays zero-copy and byte-for-byte
// identical to the pre-streaming reader.
type sreader struct {
	src *Source
	pos int64
	win []byte // buffered bytes src[wlo : wlo+len(win))
	wlo int64
	buf []byte // backing storage for non-resident windows
}

func newSreader(src *Source) *sreader {
	r := &sreader{src: src}
	if m := src.Mem(); m != nil {
		r.win = m
	}
	return r
}

// view returns n bytes at the current position without consuming them,
// refilling the window from the source on a miss. An exact refill reads
// precisely n bytes — the SOT-chain walk uses it so seeking tile to tile
// reads headers only — while a chunked refill reads ahead up to sourceChunk.
func (r *sreader) view(n int, exact bool) ([]byte, error) {
	if r.pos+int64(n) > r.src.Size() {
		return nil, fmt.Errorf("t2: truncated codestream at %d", r.pos)
	}
	if r.pos >= r.wlo && r.pos+int64(n) <= r.wlo+int64(len(r.win)) {
		o := int(r.pos - r.wlo)
		return r.win[o : o+n : o+n], nil
	}
	want := n
	if !exact {
		want = sourceChunk
		if rem := r.src.Size() - r.pos; int64(want) > rem {
			want = int(rem)
		}
		if want < n {
			want = n
		}
	}
	if cap(r.buf) < want {
		r.buf = make([]byte, want)
	}
	b := r.buf[:want]
	if _, err := r.src.ReadAt(b, r.pos); err != nil {
		return nil, err
	}
	r.win, r.wlo = b, r.pos
	return b[:n:n], nil
}

func (r *sreader) u8() (int, error) {
	b, err := r.view(1, false)
	if err != nil {
		return 0, err
	}
	r.pos++
	return int(b[0]), nil
}

func (r *sreader) u16() (int, error) {
	b, err := r.view(2, false)
	if err != nil {
		return 0, err
	}
	r.pos += 2
	return int(binary.BigEndian.Uint16(b)), nil
}

func (r *sreader) u32() (int, error) {
	b, err := r.view(4, false)
	if err != nil {
		return 0, err
	}
	r.pos += 4
	return int(binary.BigEndian.Uint32(b)), nil
}

// u16e is u16 with an exact refill: the between-tile-part marker read, which
// must not read ahead into the next tile body.
func (r *sreader) u16e() (int, error) {
	b, err := r.view(2, true)
	if err != nil {
		return 0, err
	}
	r.pos += 2
	return int(binary.BigEndian.Uint16(b)), nil
}

// ScanCodestream parses the main header and walks the SOT/Psot tile-part
// chain of a codestream, seeking tile to tile without reading any body bytes:
// the parse cost (and IO) of registering a stream is its headers, not its
// size. The returned spans locate each tile-part body in the source, in
// chain order.
func ScanCodestream(src *Source) (Params, []TileSpan, error) {
	p, spans, _, err := scanCodestream(src, false)
	return p, spans, err
}

// ScanCodestreamResilient is ScanCodestream in best-effort mode, with the
// same salvage semantics as ReadCodestreamResilient: truncation keeps the
// spans that survive, an implausible Psot is re-bounded by scanning for the
// next tile-part boundary, unknown markers are skipped by declared length.
// An error is returned only when not even the SOC survives.
func ScanCodestreamResilient(src *Source) (Params, []TileSpan, ContainerDamage, error) {
	return scanCodestream(src, true)
}

func scanCodestream(src *Source, resilient bool) (Params, []TileSpan, ContainerDamage, error) {
	var p Params
	var dmg ContainerDamage
	r := newSreader(src)
	if m, err := r.u16(); err != nil || m != mSOC {
		if err != nil {
			// Keep the read error in the chain: an unreadable first chunk is
			// an IO fault (errors.As-able), not a malformed stream.
			return p, nil, dmg, fmt.Errorf("t2: missing SOC: %w", err)
		}
		return p, nil, dmg, fmt.Errorf("t2: missing SOC (got %#x)", m)
	}
	var spans []TileSpan
	var qccSeen []bool // per component: quantization pinned by a QCC marker
	for {
		m, err := r.u16e()
		if err != nil { // stream ends without EOC
			if resilient {
				dmg.Truncated = true
				return p, spans, dmg, nil
			}
			return p, nil, dmg, err
		}
		switch m {
		case mSIZ:
			if err = r.readSIZ(&p); err == nil {
				qccSeen = make([]bool, p.NComp)
			}
		case mCOD:
			err = r.readCOD(&p, resilient, &dmg)
		case mQCD:
			err = r.readQCD(&p, qccSeen)
		case mQCC:
			err = r.readQCC(&p, qccSeen)
		case mRGN:
			err = r.readRGN(&p)
		case mSOT:
			spans, err = r.scanTilePart(spans, resilient, &dmg)
		case mEOC:
			return p, spans, dmg, nil
		default:
			if !resilient {
				return p, nil, dmg, fmt.Errorf("t2: unexpected marker %#x at %d", m, r.pos-2)
			}
			// Unknown or corrupt marker: skip it by its declared length, or
			// give up on the remainder when that overruns the stream.
			dmg.BadMarkers++
			l, lerr := r.u16()
			if lerr != nil || l < 2 || r.pos+int64(l)-2 > r.src.Size() {
				dmg.Truncated = true
				return p, spans, dmg, nil
			}
			r.pos += int64(l) - 2
			continue
		}
		if err != nil {
			if resilient {
				// Mid-marker damage: keep what already parsed; the caller's
				// CheckGeometry decides whether it is enough to decode.
				dmg.Truncated = true
				return p, spans, dmg, nil
			}
			return p, nil, dmg, err
		}
	}
}

// scanTilePart parses one SOT..SOD tile-part header (the SOT marker itself is
// already consumed) and records the body span. The fixed 12-byte header tail
// — Lsot, Isot, Psot, TPsot, TNsot, then the SOD marker — is read exactly and
// the body is skipped by seeking, never read. In resilient mode an
// implausible Psot does not abort: the body is re-bounded by scanning for the
// next tile-part boundary instead.
func (r *sreader) scanTilePart(spans []TileSpan, resilient bool, dmg *ContainerDamage) ([]TileSpan, error) {
	hdr, err := r.view(12, true)
	if err != nil {
		return spans, err
	}
	r.pos += 12
	psot := int64(binary.BigEndian.Uint32(hdr[4:8]))
	if m := int(binary.BigEndian.Uint16(hdr[10:12])); m != mSOD {
		return spans, fmt.Errorf("t2: missing SOD (got %#x, %v)", m, error(nil))
	}
	bodyOff := r.pos
	bodyLen := psot - 12 - 2 // Psot counts from the SOT marker itself
	if bodyLen < 0 || bodyOff+bodyLen > r.src.Size() {
		if !resilient {
			return spans, fmt.Errorf("t2: bad Psot %d", psot)
		}
		dmg.BadTileParts++
		bodyLen = r.findTilePartEnd(bodyOff) - bodyOff
	}
	r.pos = bodyOff + bodyLen
	return append(spans, TileSpan{Off: bodyOff, Len: bodyLen}), nil
}

// findTilePartEnd is the source-reading twin of the []byte findTilePartEnd:
// scan for the next SOT or EOC marker at or after pos. Only the resilient
// salvage path reaches it, so reading body bytes here is fine — the stream is
// already known damaged.
func (r *sreader) findTilePartEnd(pos int64) int64 {
	if m := r.src.Mem(); m != nil {
		return int64(findTilePartEnd(m, int(pos)))
	}
	size := r.src.Size()
	buf := make([]byte, sourceChunk)
	for pos+1 < size {
		n := int(size - pos)
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := r.src.ReadAt(buf[:n], pos); err != nil {
			return size
		}
		for i := 0; i+1 < n; i++ {
			if buf[i] == 0xFF && (buf[i+1] == mSOT&0xFF || buf[i+1] == mEOC&0xFF) {
				return pos + int64(i)
			}
		}
		// Overlap one byte so a marker split across chunk boundaries is seen.
		pos += int64(n - 1)
	}
	return size
}
