package t2

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// MaxResidentBytes bounds how much of a reader-backed source All may
// materialize at once — the same scale as MaxImagePixels, so a resilient
// decode of a huge file cannot silently pin gigabytes of stream bytes.
// Resident (BytesSource) streams are exempt: the caller already holds them.
var MaxResidentBytes int64 = 1 << 28

// Source is a random-access codestream: an io.ReaderAt plus its total size.
// It is the streaming substrate of the container layer — the scanner, the
// lazy Index and the decoder all consume a Source, so a codestream can live
// on disk (or behind any ReaderAt) and only the bytes a given operation needs
// are ever read. A Source built from resident bytes (BytesSource) is the
// zero-cost adapter: readers alias the slice and no copying happens, which is
// what keeps the []byte entry points bit- and allocation-identical to the
// pre-streaming code paths.
//
// A Source is safe for concurrent use as long as the underlying ReaderAt is
// (os.File and bytes are; both issue positioned reads with no shared cursor).
type Source struct {
	r    io.ReaderAt
	size int64
	data []byte // resident bytes, when the source wraps a []byte

	mu     sync.Mutex
	all    []byte    // memoized full materialization of a non-resident source
	closer io.Closer // closed by Close (file-backed sources)
}

// BytesSource wraps resident bytes as a Source. Readers alias data; the
// caller must not mutate it while the Source is in use.
func BytesSource(data []byte) *Source {
	return &Source{data: data, size: int64(len(data))}
}

// NewSource wraps an io.ReaderAt of the given size. The reader must support
// concurrent positioned reads (os.File does) for the Source to be shared
// between goroutines.
func NewSource(r io.ReaderAt, size int64) *Source {
	return &Source{r: r, size: size}
}

// OpenFile opens path as a file-backed Source. Close releases the file.
func OpenFile(path string) (*Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Source{r: f, size: st.Size(), closer: f}, nil
}

// Size returns the codestream length in bytes.
func (s *Source) Size() int64 { return s.size }

// Mem returns the resident bytes of a BytesSource, or nil for a reader-backed
// source. Fast paths use it to alias instead of copy.
func (s *Source) Mem() []byte { return s.data }

// ReadAt fills b from offset off, error-bounded to the source size. Unlike a
// raw io.ReaderAt it never returns io.EOF alongside a full read.
func (s *Source) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(b)) > s.size {
		return 0, fmt.Errorf("t2: source read [%d, %d) outside %d-byte stream", off, off+int64(len(b)), s.size)
	}
	if s.data != nil {
		return copy(b, s.data[off:]), nil
	}
	n, err := s.r.ReadAt(b, off)
	if err == io.EOF && n == len(b) {
		err = nil
	}
	if err != nil {
		// Every read failure escaping a Source is a typed *ReadError, so the
		// codec and serving tiers classify IO faults uniformly whether or not
		// the source is wrapped in a ResilientSource (which returns them
		// already wrapped, with its attempt accounting).
		var re *ReadError
		if !errors.As(err, &re) {
			err = &ReadError{Off: off, Len: len(b), Attempts: 1, Transient: Transient(err), Err: err}
		}
	}
	return n, err
}

// All returns the whole codestream as one slice: the resident bytes for a
// BytesSource, otherwise a single full read memoized on the Source (dropped
// by Close). Reader-backed sources larger than MaxResidentBytes are refused —
// full materialization is a convenience for modest streams, not a license to
// pin an arbitrarily large file in memory.
func (s *Source) All() ([]byte, error) {
	if s.data != nil {
		return s.data, nil
	}
	if s.size > MaxResidentBytes {
		return nil, fmt.Errorf("t2: refusing to materialize %d-byte source (limit %d bytes)", s.size, MaxResidentBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.all != nil {
		return s.all, nil
	}
	buf := make([]byte, s.size)
	if _, err := s.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	s.all = buf
	return buf, nil
}

// Close releases the underlying reader when the Source owns one (OpenFile)
// and drops the memoized All materialization; for byte- and
// caller-owned-reader sources releasing the memo is all it does.
func (s *Source) Close() error {
	s.mu.Lock()
	s.all = nil
	s.mu.Unlock()
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}
