package t2

import (
	"bytes"
	"math/rand"
	"testing"

	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/quant"
)

func TestMakeGrid(t *testing.T) {
	b := dwt.Subband{Type: dwt.HL, Level: 1, X0: 32, Y0: 0, X1: 100, Y1: 50}
	g := MakeGrid(b, 32, 32)
	if g.GW != 3 || g.GH != 2 {
		t.Fatalf("grid %dx%d, want 3x2", g.GW, g.GH)
	}
	// Blocks tile the band exactly.
	area := 0
	for _, r := range g.Rects {
		if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
			t.Fatalf("degenerate rect %+v", r)
		}
		area += (r.X1 - r.X0) * (r.Y1 - r.Y0)
	}
	if area != 68*50 {
		t.Fatalf("area %d != %d", area, 68*50)
	}
	last := g.Rects[len(g.Rects)-1]
	if last.X1 != 68 || last.Y1 != 50 {
		t.Fatalf("last rect %+v", last)
	}
}

func TestMakeGridEmpty(t *testing.T) {
	b := dwt.Subband{Type: dwt.HH, Level: 5, X0: 1, Y0: 1, X1: 1, Y1: 1}
	g := MakeGrid(b, 64, 64)
	if g.GW != 0 || g.GH != 0 || len(g.Rects) != 0 {
		t.Fatalf("empty band produced grid %dx%d", g.GW, g.GH)
	}
}

func TestPassCountVLC(t *testing.T) {
	for n := 1; n <= 164; n++ {
		w := bitio.NewStuffWriter()
		writePassCount(w, n)
		r := bitio.NewStuffReader(w.Bytes())
		got, err := readPassCount(r)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != n {
			t.Fatalf("n=%d decoded as %d", n, got)
		}
	}
}

// synthetic band setup: a single band with a grid of blocks holding random
// "segments" whose pass rates slice the data.
func synthBands(rng *rand.Rand, levels int) ([]BandBlocks, int) {
	bands := dwt.Subbands(64, 64, levels)
	out := make([]BandBlocks, len(bands))
	total := 0
	for i, b := range bands {
		g := MakeGrid(b, 16, 16)
		bb := BandBlocks{Grid: g, Mb: 12, Blocks: make([]*BlockStream, len(g.Rects))}
		for k := range bb.Blocks {
			npasses := rng.Intn(8)
			bs := &BlockStream{NumBitplanes: 1 + rng.Intn(11)}
			r := 0
			for pi := 0; pi < npasses; pi++ {
				r += rng.Intn(40)
				bs.PassRates = append(bs.PassRates, r)
			}
			bs.Data = make([]byte, r)
			rng.Read(bs.Data)
			bb.Blocks[k] = bs
			total++
		}
		out[i] = bb
	}
	return out, total
}

func TestPacketsRoundTripSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		levels := 1 + rng.Intn(3)
		bands, nblocks := synthBands(rng, levels)
		layer := make([]int, nblocks)
		id := 0
		for _, b := range bands {
			for _, blk := range b.Blocks {
				if n := len(blk.PassRates); n > 0 {
					layer[id] = rng.Intn(n + 1)
				}
				id++
			}
		}
		stream := EncodeTilePackets(bands, levels, [][]int{layer})

		decBands := make([]BandBlocks, len(bands))
		for i, b := range bands {
			decBands[i] = BandBlocks{Grid: b.Grid, Mb: b.Mb}
		}
		dec, n, err := DecodeTilePackets(decBands, levels, 1, stream)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(stream) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, n, len(stream))
		}
		id = 0
		for _, b := range bands {
			for _, blk := range b.Blocks {
				np := layer[id]
				if dec[id].Passes != np {
					t.Fatalf("trial %d block %d: decoded %d passes, want %d", trial, id, dec[id].Passes, np)
				}
				if np > 0 {
					want := blk.Data[:blk.PassRates[np-1]]
					if !bytes.Equal(dec[id].Data, want) {
						t.Fatalf("trial %d block %d: data mismatch (%d vs %d bytes)",
							trial, id, len(dec[id].Data), len(want))
					}
					if dec[id].NumBitplanes != blk.NumBitplanes {
						t.Fatalf("trial %d block %d: nbp %d want %d", trial, id, dec[id].NumBitplanes, blk.NumBitplanes)
					}
				}
				id++
			}
		}
	}
}

func TestPacketsRoundTripMultiLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		levels := 2
		bands, nblocks := synthBands(rng, levels)
		nlayers := 1 + rng.Intn(4)
		layers := make([][]int, nlayers)
		// Build non-decreasing cumulative pass counts per block.
		cur := make([]int, nblocks)
		for li := 0; li < nlayers; li++ {
			id := 0
			for _, b := range bands {
				for _, blk := range b.Blocks {
					if n := len(blk.PassRates); n > cur[id] && rng.Intn(2) == 1 {
						cur[id] += rng.Intn(n-cur[id]) + 1
					}
					id++
				}
			}
			layers[li] = append([]int(nil), cur...)
		}
		stream := EncodeTilePackets(bands, levels, layers)

		decBands := make([]BandBlocks, len(bands))
		for i, b := range bands {
			decBands[i] = BandBlocks{Grid: b.Grid, Mb: b.Mb}
		}
		dec, n, err := DecodeTilePackets(decBands, levels, nlayers, stream)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(stream) {
			t.Fatalf("trial %d: consumed %d of %d", trial, n, len(stream))
		}
		id := 0
		for _, b := range bands {
			for _, blk := range b.Blocks {
				np := layers[nlayers-1][id]
				if dec[id].Passes != np {
					t.Fatalf("trial %d block %d: %d passes, want %d", trial, id, dec[id].Passes, np)
				}
				if np > 0 && !bytes.Equal(dec[id].Data, blk.Data[:blk.PassRates[np-1]]) {
					t.Fatalf("trial %d block %d: data mismatch", trial, id)
				}
				id++
			}
		}
	}
}

func TestLayerPrefixDecodable(t *testing.T) {
	// Decoding only the first L layers of a multi-layer stream must yield
	// exactly the passes allocated through layer L-1: the embedded/scalable
	// property of JPEG2000 streams.
	rng := rand.New(rand.NewSource(3))
	levels := 2
	bands, nblocks := synthBands(rng, levels)
	cur := make([]int, nblocks)
	layers := make([][]int, 3)
	for li := range layers {
		id := 0
		for _, b := range bands {
			for _, blk := range b.Blocks {
				if n := len(blk.PassRates); n > cur[id] {
					cur[id]++
				}
				id++
			}
		}
		layers[li] = append([]int(nil), cur...)
	}
	stream := EncodeTilePackets(bands, levels, layers)
	for nl := 1; nl <= 3; nl++ {
		decBands := make([]BandBlocks, len(bands))
		for i, b := range bands {
			decBands[i] = BandBlocks{Grid: b.Grid, Mb: b.Mb}
		}
		dec, _, err := DecodeTilePackets(decBands, levels, nl, stream)
		if err != nil {
			t.Fatalf("layers=%d: %v", nl, err)
		}
		for id := range dec {
			if dec[id].Passes != layers[nl-1][id] {
				t.Fatalf("layers=%d block %d: %d passes want %d", nl, id, dec[id].Passes, layers[nl-1][id])
			}
		}
	}
}

func TestCodestreamRoundTrip(t *testing.T) {
	p := Params{
		Width: 517, Height: 311, TileW: 517, TileH: 311,
		BitDepth: 8, Levels: 5, Layers: 3, CBW: 64, CBH: 32,
		Kernel: dwt.Rev53, GuardBits: 2,
		Mb: [][]int{{10, 11, 11, 12, 9, 9, 10}},
	}
	tiles := [][]byte{{1, 2, 3, 4, 5}}
	cs := WriteCodestream(p, tiles)
	q, gotTiles, err := ReadCodestream(cs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Width != p.Width || q.Height != p.Height || q.BitDepth != 8 ||
		q.Levels != 5 || q.Layers != 3 || q.CBW != 64 || q.CBH != 32 ||
		q.Kernel != dwt.Rev53 || q.GuardBits != 2 || q.NComp != 1 {
		t.Fatalf("params mismatch: %+v", q)
	}
	if len(q.Mb) != 1 || len(q.Mb[0]) != len(p.Mb[0]) {
		t.Fatalf("Mb shape %d", len(q.Mb))
	}
	for i := range p.Mb[0] {
		if q.Mb[0][i] != p.Mb[0][i] {
			t.Fatalf("Mb[0][%d] = %d want %d", i, q.Mb[0][i], p.Mb[0][i])
		}
	}
	if len(gotTiles) != 1 || !bytes.Equal(gotTiles[0], tiles[0]) {
		t.Fatal("tile data mismatch")
	}
}

func TestCodestreamIrreversibleSteps(t *testing.T) {
	p := Params{
		Width: 64, Height: 64, TileW: 64, TileH: 64,
		BitDepth: 8, Levels: 2, Layers: 1, CBW: 32, CBH: 32,
		Kernel: dwt.Irr97, GuardBits: 1,
		Mb:    [][]int{{9, 10, 10, 11, 8, 8, 9}},
		Steps: [][]quant.Step{make([]quant.Step, 7)},
	}
	for i := range p.Steps[0] {
		p.Steps[0][i] = quant.StepFor(0.003 * float64(i+1))
	}
	cs := WriteCodestream(p, [][]byte{{0xAA}})
	q, _, err := ReadCodestream(cs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kernel != dwt.Irr97 || len(q.Steps) != 1 || len(q.Steps[0]) != 7 {
		t.Fatalf("bad params %+v", q)
	}
	for i := range p.Steps[0] {
		if q.Steps[0][i] != p.Steps[0][i] {
			t.Fatalf("step %d: %+v want %+v", i, q.Steps[0][i], p.Steps[0][i])
		}
	}
}

func TestCodestreamMultiTile(t *testing.T) {
	p := Params{
		Width: 100, Height: 100, TileW: 50, TileH: 50,
		BitDepth: 8, Levels: 1, Layers: 1, CBW: 64, CBH: 64,
		Kernel: dwt.Rev53, GuardBits: 2, Mb: [][]int{{8, 9, 9, 10}},
	}
	tiles := [][]byte{{1}, {2, 2}, {3, 3, 3}, {}}
	cs := WriteCodestream(p, tiles)
	q, gotTiles, err := ReadCodestream(cs)
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := q.NumTiles()
	if tx != 2 || ty != 2 {
		t.Fatalf("tile grid %dx%d", tx, ty)
	}
	if len(gotTiles) != 4 {
		t.Fatalf("%d tiles", len(gotTiles))
	}
	for i := range tiles {
		if !bytes.Equal(gotTiles[i], tiles[i]) {
			t.Fatalf("tile %d mismatch", i)
		}
	}
}

func TestCodestreamErrors(t *testing.T) {
	if _, _, err := ReadCodestream([]byte{0x00, 0x01}); err == nil {
		t.Fatal("want error for missing SOC")
	}
	p := Params{Width: 8, Height: 8, TileW: 8, TileH: 8, BitDepth: 8,
		Levels: 1, Layers: 1, CBW: 64, CBH: 64, Kernel: dwt.Rev53, GuardBits: 2, Mb: [][]int{{8, 8, 8, 8}}}
	cs := WriteCodestream(p, [][]byte{{1, 2, 3}})
	if _, _, err := ReadCodestream(cs[:len(cs)-4]); err == nil {
		t.Fatal("want error for truncated stream")
	}
}
