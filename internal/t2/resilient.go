package t2

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// ReadError is the typed failure of a Source read: the byte range that could
// not be read, how many attempts were made, and whether the final error was
// transient (a retry might have helped) or permanent. Every read failure that
// escapes a Source — wrapped or not in a ResilientSource — is a *ReadError,
// so callers at any tier can classify IO failures with errors.As without
// knowing what reader backs the stream.
type ReadError struct {
	Off       int64 // offset of the failed read
	Len       int   // requested length
	Attempts  int   // read attempts made (1 when retries are off)
	Transient bool  // the final error was transient (deadline, Temporary, short read)
	Err       error // the underlying reader's error
}

func (e *ReadError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("t2: read [%d, %d) failed after %d attempt(s) (%s): %v",
		e.Off, e.Off+int64(e.Len), e.Attempts, kind, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// IsIOError reports whether err (or anything it wraps) is a Source read
// failure — the classification the serving tier uses to feed per-image IO
// health, as opposed to parse errors or caller bugs.
func IsIOError(err error) bool {
	var re *ReadError
	return errors.As(err, &re)
}

// Transient classifies an IO error: true when a retry could plausibly succeed
// (deadline expiries, errors advertising Timeout() or Temporary(), short-read
// contract violations), false for everything else — closed files, missing
// ranges, corrupt filesystems. Permanent failures must not burn retry budget.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var re *ReadError
	if errors.As(err, &re) {
		return re.Transient
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// IOCounters aggregates the IO traffic of any number of resilient sources
// sharing it. All fields are atomic; a nil *IOCounters disables counting.
type IOCounters struct {
	Reads    atomic.Int64 // read attempts issued to the underlying reader
	Retries  atomic.Int64 // attempts that were retries of a failed read
	Failures atomic.Int64 // reads that failed for good (retries exhausted or permanent)
	Timeouts atomic.Int64 // attempts abandoned at the per-read deadline
}

// RetryBudget caps the total retries a group of reads may spend — the
// per-request bound that keeps one degraded image from multiplying its
// latency by (retries x tiles). A nil budget is unlimited.
type RetryBudget struct{ n atomic.Int64 }

// NewRetryBudget returns a budget allowing n retries in total.
func NewRetryBudget(n int) *RetryBudget {
	b := &RetryBudget{}
	b.n.Store(int64(n))
	return b
}

// take consumes one retry, reporting false when the budget is spent.
func (b *RetryBudget) take() bool {
	if b == nil {
		return true
	}
	return b.n.Add(-1) >= 0
}

// Remaining returns the retries left (never negative).
func (b *RetryBudget) Remaining() int64 {
	if b == nil {
		return 0
	}
	return max(b.n.Load(), 0)
}

// RetryPolicy shapes a ResilientSource: how many times a transient read
// failure is retried, how backoff grows, the per-read deadline, and where
// counters land. The zero policy retries nothing but still classifies errors,
// detects short reads and honors the deadline machinery.
type RetryPolicy struct {
	// Retries is the maximum retry count per read (attempts = Retries + 1).
	Retries int
	// Backoff is the sleep before the first retry; it doubles per retry.
	// Zero sleeps not at all (useful in tests and for purely local sources).
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means uncapped.
	MaxBackoff time.Duration
	// ReadTimeout bounds each attempt: a read still outstanding past it is
	// abandoned (counted as a timeout, classified transient) so a stalled
	// reader cannot hang a decode worker. Zero disables the deadline.
	// Deadline-guarded attempts read through an owned buffer, so an
	// abandoned straggler can never scribble on the caller's memory.
	ReadTimeout time.Duration
	// JitterSeed keys the deterministic backoff jitter (splitmix64 over
	// seed/offset/attempt): concurrent tile reads de-synchronize without any
	// global randomness, and a given failure always replays identically.
	JitterSeed uint64
	// Budget, when set, is consumed by every retry; reads keep failing fast
	// once it is spent. Shared per request across all of its tile reads.
	Budget *RetryBudget
	// Counters, when set, receives the read/retry/failure/timeout traffic.
	Counters *IOCounters
	// Sleep replaces time.Sleep between attempts (tests inject a fake).
	Sleep func(time.Duration)
}

// ResilientSource wraps src's reader in the retry/deadline/classification
// layer of pol and returns a Source over it. Resident-bytes sources are
// returned unchanged (memory cannot fail). The wrapper does not own the
// underlying reader: closing it is a no-op, and the original Source's Close
// still releases the file. Wrappers are cheap — the serving tier builds one
// per request so each request carries its own retry budget.
func ResilientSource(src *Source, pol RetryPolicy) *Source {
	if src.data != nil {
		return src
	}
	if pol.Sleep == nil {
		pol.Sleep = time.Sleep
	}
	return &Source{r: &retryReaderAt{r: src.r, pol: pol}, size: src.size}
}

// retryReaderAt is the io.ReaderAt implementing RetryPolicy over a raw
// reader. It is safe for concurrent use when the wrapped reader is.
type retryReaderAt struct {
	r   io.ReaderAt
	pol RetryPolicy
}

func (rr *retryReaderAt) ReadAt(p []byte, off int64) (int, error) {
	pol := &rr.pol
	for attempt := 0; ; attempt++ {
		if pol.Counters != nil {
			pol.Counters.Reads.Add(1)
		}
		n, err := rr.readOnce(p, off)
		if err == io.EOF && n == len(p) {
			err = nil
		}
		if err == nil && n < len(p) {
			// ReaderAt contract violation: a short read must carry an error.
			// Treat it as a transient fault — the bytes exist, the reader
			// just failed to deliver them this time.
			err = io.ErrUnexpectedEOF
		}
		if err == nil {
			return n, nil
		}
		transient := Transient(err)
		if !transient || attempt >= pol.Retries || !pol.Budget.take() {
			if pol.Counters != nil {
				pol.Counters.Failures.Add(1)
			}
			return 0, &ReadError{Off: off, Len: len(p), Attempts: attempt + 1, Transient: transient, Err: err}
		}
		if pol.Counters != nil {
			pol.Counters.Retries.Add(1)
		}
		if d := pol.backoff(off, attempt); d > 0 {
			pol.Sleep(d)
		}
	}
}

// readOnce issues one attempt, under the per-read deadline when configured.
// The deadline path reads into an owned buffer on a goroutine: whichever of
// {reader, timer} wins a CAS claims the result, so a straggling read that
// completes after abandonment has nowhere to write but its own garbage.
func (rr *retryReaderAt) readOnce(p []byte, off int64) (int, error) {
	if rr.pol.ReadTimeout <= 0 {
		return rr.r.ReadAt(p, off)
	}
	type result struct {
		n   int
		err error
	}
	buf := make([]byte, len(p))
	done := make(chan result, 1)
	var claimed atomic.Bool
	go func() {
		n, err := rr.r.ReadAt(buf, off)
		if claimed.CompareAndSwap(false, true) {
			done <- result{n, err}
		}
	}()
	timer := time.NewTimer(rr.pol.ReadTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		copy(p, buf[:res.n])
		return res.n, res.err
	case <-timer.C:
		if claimed.CompareAndSwap(false, true) {
			if rr.pol.Counters != nil {
				rr.pol.Counters.Timeouts.Add(1)
			}
			return 0, timeoutError{rr.pol.ReadTimeout}
		}
		// The reader won the claim as the timer fired: take its result.
		res := <-done
		copy(p, buf[:res.n])
		return res.n, res.err
	}
}

// backoff returns the sleep before retrying attempt (0-based): exponential
// from Backoff, capped at MaxBackoff, with deterministic ±25% jitter keyed by
// (seed, offset, attempt).
func (pol *RetryPolicy) backoff(off int64, attempt int) time.Duration {
	d := pol.Backoff
	if d <= 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d <<= uint(attempt)
	if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	if j := d / 4; j > 0 {
		x := pol.JitterSeed ^ uint64(off)*0x9E3779B97F4A7C15 ^ uint64(attempt+1)
		d = d - j + time.Duration(splitmix64(&x)%uint64(2*j))
	}
	return d
}

// splitmix64 is the deterministic PRNG behind the backoff jitter.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// timeoutError is the per-read deadline expiry; Timeout() marks it transient.
type timeoutError struct{ d time.Duration }

func (e timeoutError) Error() string { return fmt.Sprintf("t2: read exceeded %v deadline", e.d) }
func (e timeoutError) Timeout() bool { return true }
