package t2

import "testing"

func TestWriteCodestreamZeroValueMb(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	WriteCodestream(Params{Width: 8, Height: 8, TileW: 8, TileH: 8, Layers: 1, CBW: 64, CBH: 64}, [][]byte{{1}})
}
