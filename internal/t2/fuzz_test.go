package t2_test

import (
	"bytes"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// codStyleOffsetFuzz is codStyleOffset without the testing.T plumbing, for
// seed construction.
func codStyleOffsetFuzz(cs []byte) int {
	return bytes.Index(cs, []byte{0xFF, 0x52}) + 12
}

// FuzzReadCodestream drives the container parser, the packet-boundary index
// and the windowed decoder with arbitrary bytes. The contract under fuzzing
// is purely defensive: any input either parses or returns an error — no
// panics, no runaway allocations (the SIZ/COD sanity limits bound every
// size derived from the stream).
func FuzzReadCodestream(f *testing.F) {
	im := raster.Synthetic(96, 64, 3)
	for _, o := range []jp2k.Options{
		{Kernel: dwt.Rev53, Levels: 2},
		{Kernel: dwt.Rev53, TileW: 48, TileH: 32, Levels: 2, CBW: 16, CBH: 16},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0}},
	} {
		cs, _, err := jp2k.Encode(im, o)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(cs)
		f.Add(cs[:len(cs)/2])
	}
	// Coder-mode seeds: terminated and bypassed streams carry multiple
	// codeword-segment lengths per block in the packet headers — new framing
	// for the fuzzer to bend. The style-bit mutant exercises the unknown-bit
	// rejection path.
	for _, c := range []jp2k.CoderOptions{
		{Bypass: true},
		{Bypass: true, TermAll: true},
		{TermAll: true, ResetCtx: true, Causal: true},
	} {
		cs, _, err := jp2k.Encode(im, jp2k.Options{
			Kernel: dwt.Rev53, Levels: 2, CBW: 32, CBH: 32, Coder: c,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(cs)
		f.Add(cs[:3*len(cs)/4])
	}
	{
		cs, _, err := jp2k.Encode(im, jp2k.Options{Kernel: dwt.Rev53, Coder: jp2k.CoderOptions{Bypass: true}})
		if err != nil {
			f.Fatal(err)
		}
		styleMut := append([]byte(nil), cs...)
		styleMut[codStyleOffsetFuzz(styleMut)] |= 0x40 // reserved style bit
		f.Add(styleMut)
	}
	// Multi-component seeds: Csiz=3 MCT streams (QCC markers, interleaved
	// packets) for both kernels, plus a mutant whose component depths
	// disagree — the inconsistent-SIZ rejection path.
	pl := raster.RGB(im, raster.Synthetic(96, 64, 4), raster.Synthetic(96, 64, 5))
	for _, o := range []jp2k.Options{
		{Kernel: dwt.Rev53, Levels: 2, MCT: true, TileW: 48, TileH: 32},
		{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{0.5, 2.0}},
	} {
		cs, _, err := jp2k.EncodePlanar(pl, o)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(cs)
		f.Add(cs[:2*len(cs)/3])
		depthMut := append([]byte(nil), cs...)
		depthMut[45] = 11 // component 1 Ssiz inside SIZ: depth 12 vs 8
		f.Add(depthMut)
	}
	f.Add([]byte{0xFF, 0x4F})
	f.Add([]byte{0xFF, 0x4F, 0xFF, 0x51, 0x00, 0x29})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, tiles, err := t2.ReadCodestream(data)
		if err != nil {
			return
		}
		// A stream the container parser accepts must still index and decode
		// without panicking, whatever its packet bytes hold — every component
		// of it.
		_ = p
		_ = tiles
		_, _ = t2.BuildIndex(data)
		_, _ = jp2k.Decode(data, jp2k.DecodeOptions{})
		_, _ = jp2k.DecodePlanar(data, jp2k.DecodeOptions{})
		_, _ = jp2k.DecodeRegion(data, jp2k.Rect{X0: 1, Y0: 1, X1: 9, Y1: 9}, jp2k.DecodeOptions{MaxLayers: 1, DiscardLevels: 1})
		_, _ = jp2k.DecodeRegionPlanar(data, jp2k.Rect{X0: 1, Y0: 1, X1: 9, Y1: 9}, jp2k.DecodeOptions{MaxLayers: 1, DiscardLevels: 1})
	})
}
