// Package t2 implements JPEG2000 tier-2 coding: code-block partitioning,
// packet headers (inclusion and zero-bit-plane tag trees, pass-count VLC,
// Lblock length signalling, bit stuffing) and the codestream marker syntax
// (SOC/SIZ/COD/QCD/SOT/SOD/EOC). One precinct per resolution and LRCP
// progression, the defaults the paper's experiments used.
package t2

import (
	"fmt"

	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/t1"
	"pj2k/internal/tagtree"
)

// CBRect is one code-block's rectangle within its subband (band-relative
// coordinates).
type CBRect struct {
	X0, Y0, X1, Y1 int
}

// Grid describes the code-block partition of one subband.
type Grid struct {
	Band   dwt.Subband
	GW, GH int // grid dimensions in blocks
	Rects  []CBRect
}

// MakeGrid splits a subband into code-blocks of at most cbw x cbh samples.
func MakeGrid(band dwt.Subband, cbw, cbh int) Grid {
	w, h := band.Width(), band.Height()
	gw := (w + cbw - 1) / cbw
	gh := (h + cbh - 1) / cbh
	if w == 0 || h == 0 {
		return Grid{Band: band}
	}
	g := Grid{Band: band, GW: gw, GH: gh, Rects: make([]CBRect, 0, gw*gh)}
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			r := CBRect{X0: gx * cbw, Y0: gy * cbh, X1: (gx + 1) * cbw, Y1: (gy + 1) * cbh}
			if r.X1 > w {
				r.X1 = w
			}
			if r.Y1 > h {
				r.Y1 = h
			}
			g.Rects = append(g.Rects, r)
		}
	}
	return g
}

// BlockStream carries the tier-1 output tier-2 needs for one code-block.
type BlockStream struct {
	Data         []byte
	NumBitplanes int
	PassRates    []int // cumulative bytes through each pass
}

// BandBlocks couples a grid with its blocks' streams (encoder side) and the
// band's nominal maximum bit-plane count Mb (for zero-bit-plane signalling).
type BandBlocks struct {
	Grid   Grid
	Mb     int
	Blocks []*BlockStream // len GW*GH, raster order
}

// bandState is the per-band packet-header coding state shared across layers.
type bandState struct {
	gw, gh    int
	incl      *tagtree.Tree
	zbp       *tagtree.Tree
	included  []bool
	lblock    []int
	passesCum []int
}

func newBandState(g Grid) *bandState {
	if g.GW == 0 || g.GH == 0 {
		return &bandState{}
	}
	st := &bandState{
		gw:        g.GW,
		gh:        g.GH,
		incl:      tagtree.New(g.GW, g.GH),
		zbp:       tagtree.New(g.GW, g.GH),
		included:  make([]bool, g.GW*g.GH),
		lblock:    make([]int, g.GW*g.GH),
		passesCum: make([]int, g.GW*g.GH),
	}
	for i := range st.lblock {
		st.lblock[i] = 3
	}
	return st
}

// reset restores the state to the just-constructed condition for reuse.
func (st *bandState) reset() {
	if st.incl != nil {
		st.incl.Reset()
		st.zbp.Reset()
	}
	for i := range st.included {
		st.included[i] = false
	}
	for i := range st.lblock {
		st.lblock[i] = 3
	}
	clear(st.passesCum)
}

func floorLog2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// writePassCount emits the standard variable-length code for the number of
// new coding passes (1..164).
func writePassCount(w *bitio.StuffWriter, n int) {
	switch {
	case n == 1:
		w.WriteBit(0)
	case n == 2:
		w.WriteBits(0b10, 2)
	case n <= 5:
		w.WriteBits(0b11, 2)
		w.WriteBits(uint32(n-3), 2)
	case n <= 36:
		w.WriteBits(0b1111, 4)
		w.WriteBits(uint32(n-6), 5)
	case n <= 164:
		w.WriteBits(0b111111111, 9)
		w.WriteBits(uint32(n-37), 7)
	default:
		panic(fmt.Sprintf("t2: pass count %d exceeds 164", n))
	}
}

// readPassCount mirrors writePassCount.
func readPassCount(r *bitio.StuffReader) (int, error) {
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 1, nil
	}
	if b, err = r.ReadBit(); err != nil {
		return 0, err
	}
	if b == 0 {
		return 2, nil
	}
	v, err := r.ReadBits(2)
	if err != nil {
		return 0, err
	}
	if v < 3 {
		return 3 + int(v), nil
	}
	if v, err = r.ReadBits(5); err != nil {
		return 0, err
	}
	if v < 31 {
		return 6 + int(v), nil
	}
	if v, err = r.ReadBits(7); err != nil {
		return 0, err
	}
	return 37 + int(v), nil
}

// compCoder is the per-component slice of a TileCoder: one bandState per
// subband (dwt.Subbands order) plus the component-local block id layout.
type compCoder struct {
	states    []*bandState
	blockBase []int // component-local block id of each band's first block
	nblocks   int
}

func (cc *compCoder) build(bands []BandBlocks) {
	cc.states = make([]*bandState, len(bands))
	cc.blockBase = make([]int, len(bands))
	id := 0
	for i, b := range bands {
		cc.states[i] = newBandState(b.Grid)
		cc.blockBase[i] = id
		id += b.Grid.GW * b.Grid.GH
	}
	cc.nblocks = id
}

func (cc *compCoder) matches(bands []BandBlocks) bool {
	if len(cc.states) != len(bands) {
		return false
	}
	for i, b := range bands {
		if cc.states[i].gw != b.Grid.GW || cc.states[i].gh != b.Grid.GH {
			return false
		}
	}
	return true
}

// TileCoder holds per-tile packet coding state: per component, one bandState
// per subband, plus reusable header/body buffers shared across components.
// Pooled encoders keep one TileCoder per tile and Reset it before each
// packet-assembly round, so the tag trees and state arrays are allocated
// once per encoder lifetime. A TileCoder is not safe for concurrent use.
type TileCoder struct {
	comps []compCoder
	hw    *bitio.StuffWriter // reusable packet-header writer
	hr    bitio.StuffReader  // reusable packet-header reader
	body  []byte             // reusable packet-body buffer
	pend  []pendingSeg       // reusable decode-side body segment list
	segs  []int              // reusable per-block segment pass-end scratch
	one   [1][]BandBlocks    // scratch for the single-component entry points

	// SOP and EPH select the error-resilience markers of Annex A: a 6-byte
	// SOP (start-of-packet, with a wrapping sequence number) before every
	// packet, and a 2-byte EPH (end-of-packet-header) after every packet
	// header. Both sides of a codestream must agree — set them from the COD
	// Scod bits (Params.UseSOP/UseEPH) before encoding or decoding; Reset
	// does not touch them.
	SOP bool
	EPH bool

	// Modes carries the tier-1 coder modes the COD code-block style byte
	// signals. Terminating modes (bypass, TERMALL) split a block's coded data
	// into multiple codeword segments, and packet headers then signal one
	// length per segment instead of one per block contribution — both sides of
	// a codestream must agree. Set it from Params.CoderModes before encoding
	// or decoding; Reset does not touch it.
	Modes t1.Modes
}

// NewTileCoder builds coding state for one single-component tile geometry.
func NewTileCoder(bands []BandBlocks) *TileCoder {
	tc := &TileCoder{hw: bitio.NewStuffWriter()}
	tc.one[0] = bands
	tc.build(tc.one[:])
	tc.one[0] = nil
	return tc
}

// NewTileCoderComps builds coding state for one tile's per-component band
// geometry (comps[ci] lists component ci's bands in dwt.Subbands order).
func NewTileCoderComps(comps [][]BandBlocks) *TileCoder {
	tc := &TileCoder{hw: bitio.NewStuffWriter()}
	tc.build(comps)
	return tc
}

func (tc *TileCoder) build(comps [][]BandBlocks) {
	tc.comps = make([]compCoder, len(comps))
	for ci, bands := range comps {
		tc.comps[ci].build(bands)
	}
}

// Reset prepares the coder for a fresh single-component tile encode; see
// ResetComps.
func (tc *TileCoder) Reset(bands []BandBlocks) {
	tc.one[0] = bands
	tc.ResetComps(tc.one[:])
	tc.one[0] = nil
}

// ResetComps prepares the coder for a fresh tile encode over the same (or a
// new) per-component band geometry. Matching geometry reuses every buffer; a
// shape change rebuilds the state.
func (tc *TileCoder) ResetComps(comps [][]BandBlocks) {
	if len(tc.comps) != len(comps) {
		tc.build(comps)
		return
	}
	for ci := range comps {
		if !tc.comps[ci].matches(comps[ci]) {
			tc.build(comps)
			return
		}
	}
	for ci := range tc.comps {
		for _, st := range tc.comps[ci].states {
			st.reset()
		}
	}
}

// seedInclusion sets component ci's inclusion tag-tree leaf values from the
// full layer allocation: the first layer each block contributes passes in, or
// nlayers for blocks never included. Must be called before encoding any
// packet — tag-tree minima are global, so values cannot be revealed lazily.
func (tc *TileCoder) seedInclusion(ci int, bands []BandBlocks, layers [][]int) {
	cc := &tc.comps[ci]
	nlayers := len(layers)
	for bi, b := range bands {
		st := cc.states[bi]
		for k := range b.Blocks {
			id := cc.blockBase[bi] + k
			first := nlayers
			for li := 0; li < nlayers; li++ {
				if layers[li][id] > 0 {
					first = li
					break
				}
			}
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			st.incl.SetValue(gx, gy, first)
			st.zbp.SetValue(gx, gy, b.Mb-b.Blocks[k].NumBitplanes)
		}
	}
}

// encodePacket appends component ci's packet for (layer, resolution) to dst.
// bandIdx lists the subband indices of this resolution; target holds
// cumulative pass counts per component-local block id through this layer.
// The header writer and body buffer are reused across packets.
func (tc *TileCoder) encodePacket(ci int, dst []byte, bands []BandBlocks, bandIdx []int,
	layer int, target []int) []byte {

	cc := &tc.comps[ci]
	nonEmpty := false
	if target != nil {
		for _, bi := range bandIdx {
			st := cc.states[bi]
			for k := range st.passesCum {
				if target[cc.blockBase[bi]+k] > st.passesCum[k] {
					nonEmpty = true
				}
			}
		}
	}
	w := tc.hw
	w.Reset()
	if !nonEmpty {
		w.WriteBit(0)
		dst = append(dst, w.Bytes()...)
		if tc.EPH {
			dst = append(dst, 0xFF, byte(mEPH&0xFF))
		}
		return dst
	}
	w.WriteBit(1)
	body := tc.body[:0]
	for _, bi := range bandIdx {
		b := bands[bi]
		st := cc.states[bi]
		for k := range st.passesCum {
			blk := b.Blocks[k]
			id := cc.blockBase[bi] + k
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			cum := st.passesCum[k]
			newPasses := target[id] - cum
			if !st.included[k] {
				// Tag-tree inclusion: decoder learns whether the block's
				// first layer is <= this layer.
				st.incl.Encode(w, gx, gy, layer+1)
				if newPasses <= 0 {
					continue
				}
				st.zbp.EncodeValue(w, gx, gy)
				st.included[k] = true
			} else {
				if newPasses <= 0 {
					w.WriteBit(0)
					continue
				}
				w.WriteBit(1)
			}
			writePassCount(w, newPasses)
			start := 0
			if cum > 0 {
				start = blk.PassRates[cum-1]
			}
			end := blk.PassRates[cum+newPasses-1]
			if m := tc.Modes; m.Terminated() {
				// Terminating modes: one signalled length per codeword
				// segment. The Lblock raise is shared — a single 1-bit run
				// covering the worst segment — then each segment's length is
				// written with Lblock + floor(log2(its pass count)) bits.
				segs := m.AppendSegEnds(tc.segs[:0], cum, cum+newPasses)
				tc.segs = segs
				need := 0
				prev, segStart := cum, start
				for _, e := range segs {
					if d := bitLen(blk.PassRates[e-1]-segStart) - floorLog2(e-prev); d > need {
						need = d
					}
					prev, segStart = e, blk.PassRates[e-1]
				}
				for st.lblock[k] < need {
					w.WriteBit(1)
					st.lblock[k]++
				}
				w.WriteBit(0)
				prev, segStart = cum, start
				for _, e := range segs {
					w.WriteBits(uint32(blk.PassRates[e-1]-segStart), st.lblock[k]+floorLog2(e-prev))
					prev, segStart = e, blk.PassRates[e-1]
				}
			} else {
				segLen := end - start
				needed := bitLen(segLen)
				avail := st.lblock[k] + floorLog2(newPasses)
				for needed > avail {
					w.WriteBit(1)
					st.lblock[k]++
					avail++
				}
				w.WriteBit(0)
				w.WriteBits(uint32(segLen), avail)
			}
			body = append(body, blk.Data[start:end]...)
			st.passesCum[k] = target[id]
		}
	}
	tc.body = body // keep the grown capacity for the next packet
	dst = append(dst, w.Bytes()...)
	if tc.EPH {
		dst = append(dst, 0xFF, byte(mEPH&0xFF))
	}
	return append(dst, body...)
}

// DecodedBlock accumulates a block's data across packets on the decode side.
// Under terminating coder modes SegEnds collects the cumulative byte offset
// in Data of each *closed* codeword segment — one entry per segment whose
// last pass terminated; use SegmentEnds to obtain the full layout including
// the trailing still-open segment.
type DecodedBlock struct {
	Data         []byte
	Passes       int
	NumBitplanes int
	SegEnds      []int
}

// SegmentEnds returns the block's codeword-segment layout in the form the
// tier-1 decoder's BlockIn.SegEnds expects: one cumulative byte offset per
// segment covering the block's committed passes, the last always closing at
// len(Data). Nil for non-terminating modes (a single implicit segment).
func (b *DecodedBlock) SegmentEnds(m t1.Modes) []int {
	if !m.Terminated() || b.Passes == 0 {
		return nil
	}
	if len(b.SegEnds) == m.NumSegments(b.Passes) {
		return b.SegEnds
	}
	// The final committed pass did not terminate its segment (a mid-segment
	// rate truncation): the open segment runs to the end of the data.
	return append(b.SegEnds, len(b.Data))
}

type decodedBlock = DecodedBlock

// EncodeTilePackets assembles all packets of one single-component tile in
// LRCP order (layer outer, resolution inner; single precinct). layers[li][id]
// gives the cumulative pass count of block id through layer li; ids enumerate
// bands in dwt.Subbands order, blocks raster-scan within a band.
func EncodeTilePackets(bands []BandBlocks, levels int, layers [][]int) []byte {
	return NewTileCoder(bands).EncodeTilePackets(bands, levels, layers, nil)
}

// EncodeTilePackets is the pooled single-component form: the coder is Reset
// and the packets are appended to dst (which may be a recycled buffer sliced
// to length 0).
func (tc *TileCoder) EncodeTilePackets(bands []BandBlocks, levels int, layers [][]int, dst []byte) []byte {
	tc.one[0] = bands
	oneLayers := [1][][]int{layers}
	dst = tc.EncodeTileCompsPackets(tc.one[:], levels, oneLayers[:], dst, nil)
	tc.one[0] = nil // do not pin the caller's bands between calls
	return dst
}

// EncodeTileCompsPackets assembles all packets of one tile in LRCP order:
// layer outer, resolution middle, component inner (single precinct) — the
// standard's layer-resolution-component-position progression. layers[ci][li]
// holds component ci's cumulative pass counts per component-local block id
// through layer li. When compBytes is non-nil it accumulates the packet bytes
// emitted per component (for per-component rate accounting).
func (tc *TileCoder) EncodeTileCompsPackets(comps [][]BandBlocks, levels int,
	layers [][][]int, dst []byte, compBytes []int) []byte {

	tc.ResetComps(comps)
	nlayers := 0
	for ci := range comps {
		tc.seedInclusion(ci, comps[ci], layers[ci])
		if len(layers[ci]) > nlayers {
			nlayers = len(layers[ci])
		}
	}
	pk := 0 // flat LRCP packet index; Nsop carries its low 16 bits
	for li := 0; li < nlayers; li++ {
		for r := 0; r <= levels; r++ {
			bandIdx := dwt.BandsOfResolution(levels, r)
			for ci := range comps {
				// A component with fewer layers than the progression still
				// contributes one (empty) packet per remaining layer: its
				// last cumulative targets carry no new passes (nil for a
				// component with no layers at all).
				var target []int
				if n := len(layers[ci]); n > 0 {
					target = layers[ci][min(li, n-1)]
				}
				before := len(dst)
				if tc.SOP {
					dst = append(dst, 0xFF, byte(mSOP&0xFF), 0, 4, byte(pk>>8), byte(pk))
				}
				dst = tc.encodePacket(ci, dst, comps[ci], bandIdx, li, target)
				if compBytes != nil {
					compBytes[ci] += len(dst) - before
				}
				pk++
			}
		}
	}
	return dst
}

// DecodeTilePackets parses nlayers * (levels+1) packets of a single-component
// tile from data. bands carries the grid geometry and Mb per band (Blocks
// entries are ignored). Returns per-block accumulated segments and the bytes
// consumed.
func DecodeTilePackets(bands []BandBlocks, levels, nlayers int, data []byte) ([]DecodedBlock, int, error) {
	return NewTileCoder(bands).DecodeTilePackets(bands, levels, nlayers, data, nil)
}

// DecodeTilePackets is the pooled single-component form: the coder is Reset
// over the tile's band geometry and dec (which may be a recycled slice from a
// previous tile) is regrown to the tile's block count with each block's Data
// capacity retained, so steady-state decoding of same-shaped tiles performs
// no per-packet allocations. Returns the (possibly regrown) dec slice and the
// bytes consumed.
func (tc *TileCoder) DecodeTilePackets(bands []BandBlocks, levels, nlayers int, data []byte, dec []DecodedBlock) ([]DecodedBlock, int, error) {
	tc.one[0] = bands
	oneDec := [1][]DecodedBlock{dec}
	decs, pos, err := tc.DecodeTileCompsPackets(tc.one[:], levels, nlayers, data, oneDec[:])
	tc.one[0] = nil // do not pin the caller's bands between calls
	if err != nil {
		return nil, 0, err
	}
	return decs[0], pos, nil
}

// resetDec regrows dec to n blocks with each block's Data capacity retained.
func resetDec(dec []DecodedBlock, n int) []DecodedBlock {
	if cap(dec) < n {
		grown := make([]DecodedBlock, n)
		for i := range dec {
			grown[i].Data = dec[i].Data // keep warmed byte buffers
			grown[i].SegEnds = dec[i].SegEnds
		}
		dec = grown
	} else {
		dec = dec[:n]
	}
	for i := range dec {
		dec[i].Passes = 0
		dec[i].NumBitplanes = 0
		dec[i].Data = dec[i].Data[:0]
		dec[i].SegEnds = dec[i].SegEnds[:0]
	}
	return dec
}

// DecodeTileCompsPackets parses nlayers * (levels+1) * len(comps) packets in
// the LRCP interleaving EncodeTileCompsPackets emits. dec[ci] (which may be
// recycled, or nil) accumulates component ci's block segments, indexed by
// component-local block id. Returns the (possibly regrown) per-component dec
// slices and the bytes consumed. dec must have len(comps) entries.
func (tc *TileCoder) DecodeTileCompsPackets(comps [][]BandBlocks, levels, nlayers int,
	data []byte, dec [][]DecodedBlock) ([][]DecodedBlock, int, error) {

	tc.ResetComps(comps)
	for ci := range comps {
		dec[ci] = resetDec(dec[ci], tc.comps[ci].nblocks)
	}
	pos := 0
	for li := 0; li < nlayers; li++ {
		for r := 0; r <= levels; r++ {
			bandIdx := dwt.BandsOfResolution(levels, r)
			for ci := range comps {
				n, err := tc.decodePacket(ci, comps[ci], bandIdx, li, data[pos:], dec[ci], true)
				if err != nil {
					return nil, 0, fmt.Errorf("t2: layer %d resolution %d component %d: %w", li, r, ci, err)
				}
				pos += n
			}
		}
	}
	return dec, pos, nil
}

// pendingSeg records one block's body segment within a packet, discovered
// during the header walk and consumed after Terminate. Pass counts ride along
// so passesCum/Passes commit only as each body segment is verified present —
// a packet that fails mid-parse leaves the pass accounting consistent with
// the data actually accumulated, which resilient resync depends on.
type pendingSeg struct {
	id     int
	segLen int
	np     int
	st     *bandState
	k      int
	closed bool // the segment's last pass terminated it (terminating modes)
}

// decodePacket parses component ci's packet for (layer, resolution),
// appending segment bytes and pass counts to dec (indexed by component-local
// block id). NumBitplanes of first-included blocks is stored into dec. With
// copyBody false the body bytes are skipped rather than accumulated — the
// header-only walk the codestream Index uses to locate packet boundaries
// without touching block payloads. Returns the bytes consumed.
func (tc *TileCoder) decodePacket(ci int, bands []BandBlocks, bandIdx []int,
	layer int, data []byte, dec []decodedBlock, copyBody bool) (int, error) {

	skip := 0
	if tc.SOP {
		if len(data) < 6 || data[0] != 0xFF || data[1] != byte(mSOP&0xFF) ||
			data[2] != 0 || data[3] != 4 {
			return 0, fmt.Errorf("t2: missing SOP before packet")
		}
		// The Nsop sequence value is informative (resync uses it); the
		// in-order walk does not require any particular value.
		skip = 6
		data = data[skip:]
	}
	cc := &tc.comps[ci]
	r := &tc.hr
	r.Reset(data)
	bit, err := r.ReadBit()
	if err != nil {
		return 0, fmt.Errorf("t2: packet empty-bit: %w", err)
	}
	if bit == 0 {
		pos, err := r.Terminate()
		if err != nil {
			return 0, err
		}
		if pos, err = tc.expectEPH(data, pos); err != nil {
			return 0, err
		}
		return skip + pos, nil
	}
	body := tc.pend[:0]
	for _, bi := range bandIdx {
		b := bands[bi]
		st := cc.states[bi]
		for k := range st.passesCum {
			id := cc.blockBase[bi] + k
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			firstInclusion := false
			if !st.included[k] {
				inc, err := st.incl.Decode(r, gx, gy, layer+1)
				if err != nil {
					return 0, err
				}
				if !inc {
					continue
				}
				zbp, err := st.zbp.DecodeValue(r, gx, gy)
				if err != nil {
					return 0, err
				}
				dec[id].NumBitplanes = b.Mb - zbp
				st.included[k] = true
				firstInclusion = true
			} else {
				bit, err := r.ReadBit()
				if err != nil {
					return 0, err
				}
				if bit == 0 {
					continue
				}
			}
			_ = firstInclusion
			np, err := readPassCount(r)
			if err != nil {
				return 0, err
			}
			lb := &st.lblock[k]
			for {
				bit, err := r.ReadBit()
				if err != nil {
					return 0, err
				}
				if bit == 0 {
					break
				}
				*lb++
			}
			if m := tc.Modes; m.Terminated() {
				// One signalled length per codeword segment; commit each as
				// its own body segment so pass accounting and segment layout
				// stay consistent under mid-packet damage.
				segs := m.AppendSegEnds(tc.segs[:0], st.passesCum[k], st.passesCum[k]+np)
				tc.segs = segs
				prev := st.passesCum[k]
				for _, e := range segs {
					segLen, err := r.ReadBits(*lb + floorLog2(e-prev))
					if err != nil {
						return 0, err
					}
					body = append(body, pendingSeg{id: id, segLen: int(segLen), np: e - prev,
						st: st, k: k, closed: m.TermPass(e - 1)})
					prev = e
				}
			} else {
				segLen, err := r.ReadBits(*lb + floorLog2(np))
				if err != nil {
					return 0, err
				}
				body = append(body, pendingSeg{id: id, segLen: int(segLen), np: np, st: st, k: k})
			}
		}
	}
	tc.pend = body // keep the grown capacity for the next packet
	pos, err := r.Terminate()
	if err != nil {
		return 0, err
	}
	if pos, err = tc.expectEPH(data, pos); err != nil {
		return 0, err
	}
	for _, p := range body {
		if p.segLen < 0 || pos+p.segLen > len(data) {
			return 0, fmt.Errorf("t2: packet body truncated: need %d bytes at %d of %d", p.segLen, pos, len(data))
		}
		if copyBody {
			dec[p.id].Data = append(dec[p.id].Data, data[pos:pos+p.segLen]...)
			if p.closed {
				dec[p.id].SegEnds = append(dec[p.id].SegEnds, len(dec[p.id].Data))
			}
		}
		p.st.passesCum[p.k] += p.np
		dec[p.id].Passes += p.np
		pos += p.segLen
	}
	return skip + pos, nil
}

// DecodeDamage summarizes what a resilient packet walk lost.
type DecodeDamage struct {
	BadPackets      int // packets whose parse failed
	PacketsResynced int // successful resyncs to a later SOP marker
	PacketsLost     int // packets skipped: bad ones plus any swallowed by resync or abort
}

// Any reports whether the walk recorded any packet-level damage.
func (d DecodeDamage) Any() bool { return d.BadPackets > 0 || d.PacketsLost > 0 }

// DecodeTileCompsPacketsResilient is the best-effort form of
// DecodeTileCompsPackets: a malformed packet never fails the tile. When the
// stream carries SOP markers the walk scans forward for the next SOP whose
// sequence number maps to a later packet index and resumes there; without
// them it keeps everything committed so far and abandons the rest of the
// tile. Pass counts commit per verified body segment (see pendingSeg), so
// the returned blocks are always self-consistent — at worst shallow.
func (tc *TileCoder) DecodeTileCompsPacketsResilient(comps [][]BandBlocks, levels, nlayers int,
	data []byte, dec [][]DecodedBlock) ([][]DecodedBlock, int, DecodeDamage) {

	tc.ResetComps(comps)
	for ci := range comps {
		dec[ci] = resetDec(dec[ci], tc.comps[ci].nblocks)
	}
	var dmg DecodeDamage
	ncomp := len(comps)
	perLayer := (levels + 1) * ncomp
	npk := nlayers * perLayer
	pos := 0
	for pk := 0; pk < npk; {
		li := pk / perLayer
		r := (pk % perLayer) / ncomp
		ci := pk % ncomp
		bandIdx := dwt.BandsOfResolution(levels, r)
		n, err := tc.decodePacket(ci, comps[ci], bandIdx, li, data[pos:], dec[ci], true)
		if err == nil {
			pos += n
			pk++
			continue
		}
		dmg.BadPackets++
		if tc.SOP {
			if next, at := findSOP(data, pos+1, pk, npk); next >= 0 {
				dmg.PacketsResynced++
				dmg.PacketsLost += next - pk
				pk = next
				pos = at
				continue
			}
		}
		// No resync anchor ahead: keep every pass committed so far and give
		// up on the rest of the tile.
		dmg.PacketsLost += npk - pk
		return dec, pos, dmg
	}
	return dec, pos, dmg
}

// findSOP scans data at or after pos for an SOP marker whose sequence number
// maps to a packet index after cur and before npk, returning that index and
// the marker's offset (-1, 0 when none is found). MQ bit-stuffing keeps 0x91
// from following 0xFF inside codeword segments and stuffed headers, so a hit
// is a real marker rather than body bytes — the property that makes SOP a
// usable resync anchor.
func findSOP(data []byte, pos, cur, npk int) (int, int) {
	for i := pos; i+6 <= len(data); i++ {
		if data[i] != 0xFF || data[i+1] != byte(mSOP&0xFF) || data[i+2] != 0 || data[i+3] != 4 {
			continue
		}
		seq := int(data[i+4])<<8 | int(data[i+5])
		delta := (seq - (cur + 1)) & 0xFFFF // Nsop wraps at 2^16
		if next := cur + 1 + delta; next < npk {
			return next, i
		}
	}
	return -1, 0
}

// expectEPH consumes the end-of-packet-header marker after the stuffed
// header bytes when EPH signalling is on. A missing EPH is the cheapest
// possible header-integrity check: a header whose bit walk desynchronized
// almost never terminates exactly on a stray FF92.
func (tc *TileCoder) expectEPH(data []byte, pos int) (int, error) {
	if !tc.EPH {
		return pos, nil
	}
	if pos+2 > len(data) || data[pos] != 0xFF || data[pos+1] != byte(mEPH&0xFF) {
		return 0, fmt.Errorf("t2: missing EPH after packet header")
	}
	return pos + 2, nil
}
