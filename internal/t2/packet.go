// Package t2 implements JPEG2000 tier-2 coding: code-block partitioning,
// packet headers (inclusion and zero-bit-plane tag trees, pass-count VLC,
// Lblock length signalling, bit stuffing) and the codestream marker syntax
// (SOC/SIZ/COD/QCD/SOT/SOD/EOC). One precinct per resolution and LRCP
// progression, the defaults the paper's experiments used.
package t2

import (
	"fmt"

	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/tagtree"
)

// CBRect is one code-block's rectangle within its subband (band-relative
// coordinates).
type CBRect struct {
	X0, Y0, X1, Y1 int
}

// Grid describes the code-block partition of one subband.
type Grid struct {
	Band   dwt.Subband
	GW, GH int // grid dimensions in blocks
	Rects  []CBRect
}

// MakeGrid splits a subband into code-blocks of at most cbw x cbh samples.
func MakeGrid(band dwt.Subband, cbw, cbh int) Grid {
	w, h := band.Width(), band.Height()
	gw := (w + cbw - 1) / cbw
	gh := (h + cbh - 1) / cbh
	if w == 0 || h == 0 {
		return Grid{Band: band}
	}
	g := Grid{Band: band, GW: gw, GH: gh, Rects: make([]CBRect, 0, gw*gh)}
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			r := CBRect{X0: gx * cbw, Y0: gy * cbh, X1: (gx + 1) * cbw, Y1: (gy + 1) * cbh}
			if r.X1 > w {
				r.X1 = w
			}
			if r.Y1 > h {
				r.Y1 = h
			}
			g.Rects = append(g.Rects, r)
		}
	}
	return g
}

// BlockStream carries the tier-1 output tier-2 needs for one code-block.
type BlockStream struct {
	Data         []byte
	NumBitplanes int
	PassRates    []int // cumulative bytes through each pass
}

// BandBlocks couples a grid with its blocks' streams (encoder side) and the
// band's nominal maximum bit-plane count Mb (for zero-bit-plane signalling).
type BandBlocks struct {
	Grid   Grid
	Mb     int
	Blocks []*BlockStream // len GW*GH, raster order
}

// bandState is the per-band packet-header coding state shared across layers.
type bandState struct {
	gw, gh    int
	incl      *tagtree.Tree
	zbp       *tagtree.Tree
	included  []bool
	lblock    []int
	passesCum []int
}

func newBandState(g Grid) *bandState {
	if g.GW == 0 || g.GH == 0 {
		return &bandState{}
	}
	st := &bandState{
		gw:        g.GW,
		gh:        g.GH,
		incl:      tagtree.New(g.GW, g.GH),
		zbp:       tagtree.New(g.GW, g.GH),
		included:  make([]bool, g.GW*g.GH),
		lblock:    make([]int, g.GW*g.GH),
		passesCum: make([]int, g.GW*g.GH),
	}
	for i := range st.lblock {
		st.lblock[i] = 3
	}
	return st
}

// reset restores the state to the just-constructed condition for reuse.
func (st *bandState) reset() {
	if st.incl != nil {
		st.incl.Reset()
		st.zbp.Reset()
	}
	for i := range st.included {
		st.included[i] = false
	}
	for i := range st.lblock {
		st.lblock[i] = 3
	}
	clear(st.passesCum)
}

func floorLog2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// writePassCount emits the standard variable-length code for the number of
// new coding passes (1..164).
func writePassCount(w *bitio.StuffWriter, n int) {
	switch {
	case n == 1:
		w.WriteBit(0)
	case n == 2:
		w.WriteBits(0b10, 2)
	case n <= 5:
		w.WriteBits(0b11, 2)
		w.WriteBits(uint32(n-3), 2)
	case n <= 36:
		w.WriteBits(0b1111, 4)
		w.WriteBits(uint32(n-6), 5)
	case n <= 164:
		w.WriteBits(0b111111111, 9)
		w.WriteBits(uint32(n-37), 7)
	default:
		panic(fmt.Sprintf("t2: pass count %d exceeds 164", n))
	}
}

// readPassCount mirrors writePassCount.
func readPassCount(r *bitio.StuffReader) (int, error) {
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 1, nil
	}
	if b, err = r.ReadBit(); err != nil {
		return 0, err
	}
	if b == 0 {
		return 2, nil
	}
	v, err := r.ReadBits(2)
	if err != nil {
		return 0, err
	}
	if v < 3 {
		return 3 + int(v), nil
	}
	if v, err = r.ReadBits(5); err != nil {
		return 0, err
	}
	if v < 31 {
		return 6 + int(v), nil
	}
	if v, err = r.ReadBits(7); err != nil {
		return 0, err
	}
	return 37 + int(v), nil
}

// TileCoder holds per-tile packet coding state: one bandState per subband,
// indexed as in dwt.Subbands order, plus reusable header/body buffers.
// Pooled encoders keep one TileCoder per tile and Reset it before each
// packet-assembly round, so the tag trees and state arrays are allocated
// once per encoder lifetime. A TileCoder is not safe for concurrent use.
type TileCoder struct {
	states    []*bandState
	blockBase []int // global block id of each band's first block
	nblocks   int
	hw        *bitio.StuffWriter // reusable packet-header writer
	hr        bitio.StuffReader  // reusable packet-header reader
	body      []byte             // reusable packet-body buffer
	pend      []pendingSeg       // reusable decode-side body segment list
}

// NewTileCoder builds coding state for one tile's band geometry.
func NewTileCoder(bands []BandBlocks) *TileCoder {
	tc := &TileCoder{hw: bitio.NewStuffWriter()}
	tc.build(bands)
	return tc
}

func (tc *TileCoder) build(bands []BandBlocks) {
	tc.states = make([]*bandState, len(bands))
	tc.blockBase = make([]int, len(bands))
	id := 0
	for i, b := range bands {
		tc.states[i] = newBandState(b.Grid)
		tc.blockBase[i] = id
		id += b.Grid.GW * b.Grid.GH
	}
	tc.nblocks = id
}

// Reset prepares the coder for a fresh tile encode over the same (or a new)
// band geometry. Matching geometry reuses every buffer; a shape change
// rebuilds the state.
func (tc *TileCoder) Reset(bands []BandBlocks) {
	if len(tc.states) != len(bands) {
		tc.build(bands)
		return
	}
	for i, b := range bands {
		if tc.states[i].gw != b.Grid.GW || tc.states[i].gh != b.Grid.GH {
			tc.build(bands)
			return
		}
	}
	for _, st := range tc.states {
		st.reset()
	}
}

func newTileCoder(bands []BandBlocks) *TileCoder { return NewTileCoder(bands) }

// seedInclusion sets the inclusion tag-tree leaf values from the full layer
// allocation: the first layer each block contributes passes in, or nlayers
// for blocks never included. Must be called before encoding any packet —
// tag-tree minima are global, so values cannot be revealed lazily.
func (tc *TileCoder) seedInclusion(bands []BandBlocks, layers [][]int) {
	nlayers := len(layers)
	for bi, b := range bands {
		st := tc.states[bi]
		for k := range b.Blocks {
			id := tc.blockBase[bi] + k
			first := nlayers
			for li := 0; li < nlayers; li++ {
				if layers[li][id] > 0 {
					first = li
					break
				}
			}
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			st.incl.SetValue(gx, gy, first)
			st.zbp.SetValue(gx, gy, b.Mb-b.Blocks[k].NumBitplanes)
		}
	}
}

// encodePacket appends the packet for (layer, resolution) to dst. bandIdx
// lists the subband indices of this resolution; target holds cumulative pass
// counts per global block id through this layer. The header writer and body
// buffer are reused across packets.
func (tc *TileCoder) encodePacket(dst []byte, bands []BandBlocks, bandIdx []int,
	layer int, target []int) []byte {

	nonEmpty := false
	for _, bi := range bandIdx {
		st := tc.states[bi]
		for k := range st.passesCum {
			if target[tc.blockBase[bi]+k] > st.passesCum[k] {
				nonEmpty = true
			}
		}
	}
	w := tc.hw
	w.Reset()
	if !nonEmpty {
		w.WriteBit(0)
		return append(dst, w.Bytes()...)
	}
	w.WriteBit(1)
	body := tc.body[:0]
	for _, bi := range bandIdx {
		b := bands[bi]
		st := tc.states[bi]
		for k := range st.passesCum {
			blk := b.Blocks[k]
			id := tc.blockBase[bi] + k
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			cum := st.passesCum[k]
			newPasses := target[id] - cum
			if !st.included[k] {
				// Tag-tree inclusion: decoder learns whether the block's
				// first layer is <= this layer.
				st.incl.Encode(w, gx, gy, layer+1)
				if newPasses <= 0 {
					continue
				}
				st.zbp.EncodeValue(w, gx, gy)
				st.included[k] = true
			} else {
				if newPasses <= 0 {
					w.WriteBit(0)
					continue
				}
				w.WriteBit(1)
			}
			writePassCount(w, newPasses)
			start := 0
			if cum > 0 {
				start = blk.PassRates[cum-1]
			}
			end := blk.PassRates[cum+newPasses-1]
			segLen := end - start
			needed := bitLen(segLen)
			avail := st.lblock[k] + floorLog2(newPasses)
			for needed > avail {
				w.WriteBit(1)
				st.lblock[k]++
				avail++
			}
			w.WriteBit(0)
			w.WriteBits(uint32(segLen), avail)
			body = append(body, blk.Data[start:end]...)
			st.passesCum[k] = target[id]
		}
	}
	tc.body = body // keep the grown capacity for the next packet
	dst = append(dst, w.Bytes()...)
	return append(dst, body...)
}

// DecodedBlock accumulates a block's data across packets on the decode side.
type DecodedBlock struct {
	Data         []byte
	Passes       int
	NumBitplanes int
}

type decodedBlock = DecodedBlock

// EncodeTilePackets assembles all packets of one tile in LRCP order (layer
// outer, resolution inner; single component and precinct). layers[li][id]
// gives the cumulative pass count of global block id through layer li; ids
// enumerate bands in dwt.Subbands order, blocks raster-scan within a band.
func EncodeTilePackets(bands []BandBlocks, levels int, layers [][]int) []byte {
	return NewTileCoder(bands).EncodeTilePackets(bands, levels, layers, nil)
}

// EncodeTilePackets is the pooled form: the coder is Reset and the packets
// are appended to dst (which may be a recycled buffer sliced to length 0).
func (tc *TileCoder) EncodeTilePackets(bands []BandBlocks, levels int, layers [][]int, dst []byte) []byte {
	tc.Reset(bands)
	tc.seedInclusion(bands, layers)
	for li := range layers {
		for r := 0; r <= levels; r++ {
			dst = tc.encodePacket(dst, bands, dwt.BandsOfResolution(levels, r), li, layers[li])
		}
	}
	return dst
}

// DecodeTilePackets parses nlayers * (levels+1) packets from data. bands
// carries the grid geometry and Mb per band (Blocks entries are ignored).
// Returns per-global-block accumulated segments and the bytes consumed.
func DecodeTilePackets(bands []BandBlocks, levels, nlayers int, data []byte) ([]DecodedBlock, int, error) {
	return newTileCoder(bands).DecodeTilePackets(bands, levels, nlayers, data, nil)
}

// DecodeTilePackets is the pooled form: the coder is Reset over the tile's
// band geometry and dec (which may be a recycled slice from a previous tile)
// is regrown to the tile's block count with each block's Data capacity
// retained, so steady-state decoding of same-shaped tiles performs no
// per-packet allocations. Returns the (possibly regrown) dec slice and the
// bytes consumed.
func (tc *TileCoder) DecodeTilePackets(bands []BandBlocks, levels, nlayers int, data []byte, dec []DecodedBlock) ([]DecodedBlock, int, error) {
	tc.Reset(bands)
	if cap(dec) < tc.nblocks {
		grown := make([]DecodedBlock, tc.nblocks)
		for i := range dec {
			grown[i].Data = dec[i].Data // keep warmed byte buffers
		}
		dec = grown
	} else {
		dec = dec[:tc.nblocks]
	}
	for i := range dec {
		dec[i].Passes = 0
		dec[i].NumBitplanes = 0
		dec[i].Data = dec[i].Data[:0]
	}
	pos := 0
	for li := 0; li < nlayers; li++ {
		for r := 0; r <= levels; r++ {
			n, err := tc.decodePacket(bands, dwt.BandsOfResolution(levels, r), li, data[pos:], dec, true)
			if err != nil {
				return nil, 0, fmt.Errorf("t2: layer %d resolution %d: %w", li, r, err)
			}
			pos += n
		}
	}
	return dec, pos, nil
}

// pendingSeg records one block's body segment within a packet, discovered
// during the header walk and consumed after Terminate.
type pendingSeg struct {
	id     int
	segLen int
}

// decodePacket parses one packet for (layer, resolution), appending segment
// bytes and pass counts to dec (indexed by global block id). NumBitplanes of
// first-included blocks is stored into dec. With copyBody false the body
// bytes are skipped rather than accumulated — the header-only walk the
// codestream Index uses to locate packet boundaries without touching block
// payloads. Returns the bytes consumed.
func (tc *TileCoder) decodePacket(bands []BandBlocks, bandIdx []int,
	layer int, data []byte, dec []decodedBlock, copyBody bool) (int, error) {

	r := &tc.hr
	r.Reset(data)
	bit, err := r.ReadBit()
	if err != nil {
		return 0, fmt.Errorf("t2: packet empty-bit: %w", err)
	}
	if bit == 0 {
		return r.Terminate()
	}
	body := tc.pend[:0]
	for _, bi := range bandIdx {
		b := bands[bi]
		st := tc.states[bi]
		for k := range st.passesCum {
			id := tc.blockBase[bi] + k
			gx, gy := k%b.Grid.GW, k/b.Grid.GW
			firstInclusion := false
			if !st.included[k] {
				inc, err := st.incl.Decode(r, gx, gy, layer+1)
				if err != nil {
					return 0, err
				}
				if !inc {
					continue
				}
				zbp, err := st.zbp.DecodeValue(r, gx, gy)
				if err != nil {
					return 0, err
				}
				dec[id].NumBitplanes = b.Mb - zbp
				st.included[k] = true
				firstInclusion = true
			} else {
				bit, err := r.ReadBit()
				if err != nil {
					return 0, err
				}
				if bit == 0 {
					continue
				}
			}
			_ = firstInclusion
			np, err := readPassCount(r)
			if err != nil {
				return 0, err
			}
			lb := &st.lblock[k]
			for {
				bit, err := r.ReadBit()
				if err != nil {
					return 0, err
				}
				if bit == 0 {
					break
				}
				*lb++
			}
			segLen, err := r.ReadBits(*lb + floorLog2(np))
			if err != nil {
				return 0, err
			}
			body = append(body, pendingSeg{id: id, segLen: int(segLen)})
			st.passesCum[k] += np
			dec[id].Passes += np
		}
	}
	tc.pend = body // keep the grown capacity for the next packet
	pos, err := r.Terminate()
	if err != nil {
		return 0, err
	}
	for _, p := range body {
		if p.segLen < 0 || pos+p.segLen > len(data) {
			return 0, fmt.Errorf("t2: packet body truncated: need %d bytes at %d of %d", p.segLen, pos, len(data))
		}
		if copyBody {
			dec[p.id].Data = append(dec[p.id].Data, data[pos:pos+p.segLen]...)
		}
		pos += p.segLen
	}
	return pos, nil
}
