package t2_test

// External test package: building realistic codestreams for the Index tests
// requires the full jp2k encoder, which itself imports t2.

import (
	"math/rand"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

func encodeTestStream(t *testing.T, o jp2k.Options) []byte {
	t.Helper()
	im := raster.Synthetic(230, 190, 17)
	cs, _, err := jp2k.Encode(im, o)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func indexCases() []jp2k.Options {
	return []jp2k.Options{
		{Kernel: dwt.Rev53, Levels: 3},
		{Kernel: dwt.Rev53, TileW: 64, TileH: 96, CBW: 32, CBH: 16, Levels: 3},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 0.5, 1.0}, TileW: 100, TileH: 90},
	}
}

// TestIndexSpansPartitionTileBodies asserts the fundamental index invariant:
// per tile, the located packets are contiguous in LRCP order and exactly
// partition the tile-part body — no gap, no overlap, no trailing bytes.
func TestIndexSpansPartitionTileBodies(t *testing.T) {
	for ci, o := range indexCases() {
		cs := encodeTestStream(t, o)
		ix, err := t2.BuildIndex(cs)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		p := ix.Params
		ntx, nty := p.NumTiles()
		if ix.NumTiles() != ntx*nty {
			t.Fatalf("case %d: %d tiles indexed, grid %dx%d", ci, ix.NumTiles(), ntx, nty)
		}
		nc := p.Components()
		for ti := 0; ti < ix.NumTiles(); ti++ {
			tile, err := ix.Tile(ti)
			if err != nil {
				t.Fatalf("case %d tile %d: %v", ci, ti, err)
			}
			if len(tile.Packets) != nc {
				t.Fatalf("case %d tile %d: %d components indexed, want %d", ci, ti, len(tile.Packets), nc)
			}
			for cc, comp := range tile.Packets {
				if len(comp) != p.Layers {
					t.Fatalf("case %d tile %d comp %d: %d layers indexed, want %d", ci, ti, cc, len(comp), p.Layers)
				}
				for li, spans := range comp {
					if len(spans) != p.Levels+1 {
						t.Fatalf("case %d tile %d comp %d layer %d: %d resolutions, want %d",
							ci, ti, cc, li, len(spans), p.Levels+1)
					}
				}
			}
			// Walk the body in LRCP order (layer, resolution, component):
			// packets must be contiguous and exactly partition the body.
			pos := 0
			for li := 0; li < p.Layers; li++ {
				for r := 0; r <= p.Levels; r++ {
					for cc := 0; cc < nc; cc++ {
						s := tile.Packets[cc][li][r]
						if s.Off != pos {
							t.Fatalf("case %d tile %d layer %d res %d comp %d: off %d, want %d",
								ci, ti, li, r, cc, s.Off, pos)
						}
						if s.Len < 0 {
							t.Fatalf("case %d tile %d layer %d res %d comp %d: negative length", ci, ti, li, r, cc)
						}
						pos = s.End()
					}
				}
			}
			if pos != len(tile.Body) {
				t.Fatalf("case %d tile %d: packets cover %d of %d body bytes", ci, ti, pos, len(tile.Body))
			}
		}
	}
}

// TestIndexCodestreamPrefix asserts the layer-truncation primitive: the
// re-emitted stream with n layers must decode bit-identically to decoding
// the original with MaxLayers n — the embedded-stream property, now
// exercised end to end through the index.
func TestIndexCodestreamPrefix(t *testing.T) {
	cs := encodeTestStream(t, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{0.125, 0.5, 1.0}, TileW: 100, TileH: 90,
	})
	ix, err := t2.BuildIndex(cs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= ix.Params.Layers; n++ {
		pre, err := ix.CodestreamPrefix(n)
		if err != nil {
			t.Fatalf("layers=%d: %v", n, err)
		}
		if n < ix.Params.Layers && len(pre) >= len(cs) {
			t.Fatalf("layers=%d: prefix (%d bytes) not smaller than original (%d)", n, len(pre), len(cs))
		}
		got, err := jp2k.Decode(pre, jp2k.DecodeOptions{})
		if err != nil {
			t.Fatalf("layers=%d: decoding prefix: %v", n, err)
		}
		want, err := jp2k.Decode(cs, jp2k.DecodeOptions{MaxLayers: n})
		if err != nil {
			t.Fatalf("layers=%d: decoding original: %v", n, err)
		}
		if !raster.Equal(got, want) {
			t.Fatalf("layers=%d: truncated stream decodes differently from MaxLayers", n)
		}
	}
}

// TestIndexByteAccounting checks RegionBytes/LayerPrefixLen consistency and
// monotonicity: more layers or more resolutions never cost fewer bytes, and
// the full request equals the whole stream's packet payload.
func TestIndexByteAccounting(t *testing.T) {
	cs := encodeTestStream(t, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0}, TileW: 64, TileH: 96, Levels: 3,
	})
	ix, err := t2.BuildIndex(cs)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, ix.NumTiles())
	for i := range all {
		all[i] = i
	}
	if got, want := ix.RegionBytes(all, 0, 0), ix.TotalBytes(); got != want {
		t.Fatalf("full region costs %d bytes, stream carries %d", got, want)
	}
	prev := -1
	for layers := 1; layers <= ix.Params.Layers; layers++ {
		n := ix.RegionBytes(all, 0, layers)
		if n < prev {
			t.Fatalf("layers=%d: %d bytes < layers=%d's %d", layers, n, layers-1, prev)
		}
		prev = n
	}
	prev = 1 << 62
	for discard := 0; discard <= ix.Params.Levels; discard++ {
		n := ix.RegionBytes(all, discard, 0)
		if n > prev {
			t.Fatalf("discard=%d: %d bytes > discard=%d's %d", discard, n, discard-1, prev)
		}
		prev = n
	}
	for ti := 0; ti < ix.NumTiles(); ti++ {
		tile, err := ix.Tile(ti)
		if err != nil {
			t.Fatalf("tile %d: %v", ti, err)
		}
		full, err := ix.LayerPrefixLen(ti, ix.Params.Layers)
		if err != nil {
			t.Fatalf("tile %d: %v", ti, err)
		}
		if got, want := full, len(tile.Body); got != want {
			t.Fatalf("tile %d: full layer prefix %d != body %d", ti, got, want)
		}
	}
}

// TestIndexColorStream runs the span-partition and layer-truncation
// invariants over a Csiz=3 MCT stream: spans are keyed tile x component x
// layer x resolution, RegionBytes sums every component, and the truncated
// color stream decodes identically to MaxLayers.
func TestIndexColorStream(t *testing.T) {
	mk := func(seed uint64) *raster.Image { return raster.Synthetic(230, 190, seed) }
	pl := raster.RGB(mk(101), mk(102), mk(103))
	cs, _, err := jp2k.EncodePlanar(pl, jp2k.Options{
		Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{0.75, 3.0}, TileW: 100, TileH: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := t2.BuildIndex(cs)
	if err != nil {
		t.Fatal(err)
	}
	p := ix.Params
	if p.Components() != 3 || !p.MCT {
		t.Fatalf("indexed params: %d components, MCT %v", p.Components(), p.MCT)
	}
	// Spans partition each body in LRCP order across the three components.
	for ti := 0; ti < ix.NumTiles(); ti++ {
		tile, err := ix.Tile(ti)
		if err != nil {
			t.Fatalf("tile %d: %v", ti, err)
		}
		pos := 0
		for li := 0; li < p.Layers; li++ {
			for r := 0; r <= p.Levels; r++ {
				for ci := 0; ci < 3; ci++ {
					s := tile.Packets[ci][li][r]
					if s.Off != pos {
						t.Fatalf("tile %d layer %d res %d comp %d: off %d want %d", ti, li, r, ci, s.Off, pos)
					}
					pos = s.End()
				}
			}
		}
		if pos != len(tile.Body) {
			t.Fatalf("tile %d: packets cover %d of %d body bytes", ti, pos, len(tile.Body))
		}
	}
	all := make([]int, ix.NumTiles())
	for i := range all {
		all[i] = i
	}
	if got, want := ix.RegionBytes(all, 0, 0), ix.TotalBytes(); got != want {
		t.Fatalf("full region costs %d bytes, stream carries %d", got, want)
	}
	// Layer truncation: the re-emitted 1-layer color stream decodes exactly
	// as MaxLayers=1.
	pre, err := ix.CodestreamPrefix(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jp2k.DecodePlanar(pre, jp2k.DecodeOptions{})
	if err != nil {
		t.Fatalf("decoding prefix: %v", err)
	}
	want, err := jp2k.DecodePlanar(cs, jp2k.DecodeOptions{MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.PlanarEqual(got, want) {
		t.Fatal("truncated color stream decodes differently from MaxLayers=1")
	}
}

// TestIndexRobustness: corrupted and truncated streams must yield errors,
// never panics or absurd allocations.
func TestIndexRobustness(t *testing.T) {
	cs := encodeTestStream(t, jp2k.Options{Kernel: dwt.Rev53, TileW: 64, TileH: 96, Levels: 3})
	try := func(data []byte, label string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: BuildIndex panicked: %v", label, r)
			}
		}()
		_, _ = t2.BuildIndex(data)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), cs...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		try(mut, "flip")
	}
	for trial := 0; trial < 100; trial++ {
		try(cs[:rng.Intn(len(cs))], "truncate")
	}
	if _, err := t2.BuildIndex(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}
