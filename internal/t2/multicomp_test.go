package t2

import (
	"bytes"
	"math/rand"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/quant"
)

// TestCodestreamMultiComponent round-trips a Csiz=3 header: per-component
// quantization travels in QCD (component 0) plus one QCC per further
// component, and the MCT flag survives COD.
func TestCodestreamMultiComponent(t *testing.T) {
	p := Params{
		Width: 120, Height: 90, TileW: 60, TileH: 90, NComp: 3,
		BitDepth: 8, Levels: 2, Layers: 2, CBW: 32, CBH: 32, MCT: true,
		Kernel: dwt.Irr97, GuardBits: 2,
		Mb: [][]int{
			{9, 10, 10, 11, 8, 8, 9},
			{7, 8, 8, 9, 6, 6, 7},
			{6, 7, 7, 8, 5, 5, 6},
		},
		Steps: [][]quant.Step{
			make([]quant.Step, 7), make([]quant.Step, 7), make([]quant.Step, 7),
		},
	}
	for ci := range p.Steps {
		for i := range p.Steps[ci] {
			p.Steps[ci][i] = quant.StepFor(0.002 * float64(ci+1) * float64(i+1))
		}
	}
	tiles := [][]byte{{1, 2, 3}, {4, 5}}
	cs := WriteCodestream(p, tiles)
	q, gotTiles, err := ReadCodestream(cs)
	if err != nil {
		t.Fatal(err)
	}
	if q.NComp != 3 || !q.MCT || q.BitDepth != 8 || q.Layers != 2 {
		t.Fatalf("params mismatch: %+v", q)
	}
	if err := q.CheckGeometry(); err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < 3; ci++ {
		for i := range p.Mb[ci] {
			if q.Mb[ci][i] != p.Mb[ci][i] {
				t.Fatalf("Mb[%d][%d] = %d want %d", ci, i, q.Mb[ci][i], p.Mb[ci][i])
			}
			if q.Steps[ci][i] != p.Steps[ci][i] {
				t.Fatalf("Steps[%d][%d] = %+v want %+v", ci, i, q.Steps[ci][i], p.Steps[ci][i])
			}
		}
	}
	if len(gotTiles) != 2 || !bytes.Equal(gotTiles[0], tiles[0]) || !bytes.Equal(gotTiles[1], tiles[1]) {
		t.Fatal("tile data mismatch")
	}
}

// TestCodestreamInconsistentSIZ: per-component SIZ fields that this codec
// cannot represent — mismatched bit depths, subsampled components, absurd
// component counts — must be structured errors, never panics.
func TestCodestreamInconsistentSIZ(t *testing.T) {
	p := Params{
		Width: 64, Height: 64, TileW: 64, TileH: 64, NComp: 3,
		BitDepth: 8, Levels: 1, Layers: 1, CBW: 32, CBH: 32,
		Kernel: dwt.Rev53, GuardBits: 2,
		Mb: [][]int{{8, 8, 8, 8}, {8, 8, 8, 8}, {8, 8, 8, 8}},
	}
	cs := WriteCodestream(p, [][]byte{{0}})
	// SIZ layout: SOC(2) SIZ(2) Lsiz(2) Rsiz(2) 8*u32(32) Csiz(2) then
	// 3 bytes per component.
	const compOff = 2 + 2 + 2 + 2 + 32 + 2

	depthMut := append([]byte(nil), cs...)
	depthMut[compOff+3] = 11 // component 1 Ssiz: depth 12 vs component 0's 8
	if _, _, err := ReadCodestream(depthMut); err == nil {
		t.Error("want error for mismatched component depths")
	}

	subMut := append([]byte(nil), cs...)
	subMut[compOff+4] = 2 // component 1 XRsiz: 2x subsampling
	if _, _, err := ReadCodestream(subMut); err == nil {
		t.Error("want error for subsampled component")
	}

	csizMut := append([]byte(nil), cs...)
	csizMut[compOff-2], csizMut[compOff-1] = 0x40, 0x00 // Csiz = 16384
	if _, _, err := ReadCodestream(csizMut); err == nil {
		t.Error("want error for component count beyond the limit")
	}

	zeroMut := append([]byte(nil), cs...)
	zeroMut[compOff-2], zeroMut[compOff-1] = 0, 0 // Csiz = 0
	if _, _, err := ReadCodestream(zeroMut); err == nil {
		t.Error("want error for zero components")
	}
}

// TestCheckGeometryPerComponent: the cross-marker validation must reject
// quantization arrays that do not cover every component or band.
func TestCheckGeometryPerComponent(t *testing.T) {
	base := Params{
		Width: 64, Height: 64, TileW: 64, TileH: 64, NComp: 3,
		BitDepth: 8, Levels: 1, Layers: 1, CBW: 32, CBH: 32,
		Kernel: dwt.Rev53,
		Mb:     [][]int{{8, 8, 8, 8}, {8, 8, 8, 8}, {8, 8, 8, 8}},
	}
	if err := base.CheckGeometry(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}

	missingComp := base
	missingComp.Mb = base.Mb[:2]
	if err := missingComp.CheckGeometry(); err == nil {
		t.Error("want error for quantization covering 2 of 3 components")
	}

	shortBands := base
	shortBands.Mb = [][]int{{8, 8, 8, 8}, {8, 8}, {8, 8, 8, 8}}
	if err := shortBands.CheckGeometry(); err == nil {
		t.Error("want error for a component with too few bands")
	}

	mctTwo := base
	mctTwo.NComp = 2
	mctTwo.MCT = true
	mctTwo.Mb = base.Mb[:2]
	if err := mctTwo.CheckGeometry(); err == nil {
		t.Error("want error for MCT on a 2-component stream")
	}

	missingSteps := base
	missingSteps.Kernel = dwt.Irr97
	if err := missingSteps.CheckGeometry(); err == nil {
		t.Error("want error for 9/7 params without per-component steps")
	}
}

// TestTilePacketsMultiComponentRoundTrip drives the component-interleaved
// packet iteration directly: three components with different synthetic block
// populations encode into one LRCP body and decode back exactly.
func TestTilePacketsMultiComponentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	levels := 2
	const nc = 3
	comps := make([][]BandBlocks, nc)
	layers := make([][][]int, nc)
	nblocks := make([]int, nc)
	for ci := 0; ci < nc; ci++ {
		comps[ci], nblocks[ci] = synthBands(rng, levels)
		// Two layers of non-decreasing cumulative pass counts — except
		// component 2, which gets a single layer: the progression still
		// emits one (empty) packet for it in layer 1, exercising the
		// ragged-layer tolerance.
		perCompLayers := 2
		if ci == 2 {
			perCompLayers = 1
		}
		cur := make([]int, nblocks[ci])
		for li := 0; li < perCompLayers; li++ {
			id := 0
			for _, b := range comps[ci] {
				for _, blk := range b.Blocks {
					if n := len(blk.PassRates); n > cur[id] && rng.Intn(2) == 1 {
						cur[id] += rng.Intn(n-cur[id]) + 1
					}
					id++
				}
			}
			layers[ci] = append(layers[ci], append([]int(nil), cur...))
		}
	}
	tc := NewTileCoderComps(comps)
	stream := tc.EncodeTileCompsPackets(comps, levels, layers, nil, nil)

	decComps := make([][]BandBlocks, nc)
	for ci := range comps {
		decComps[ci] = make([]BandBlocks, len(comps[ci]))
		for bi, b := range comps[ci] {
			decComps[ci][bi] = BandBlocks{Grid: b.Grid, Mb: b.Mb}
		}
	}
	dec, n, err := NewTileCoderComps(decComps).DecodeTileCompsPackets(
		decComps, levels, 2, stream, make([][]DecodedBlock, nc))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(stream) {
		t.Fatalf("consumed %d of %d bytes", n, len(stream))
	}
	for ci := 0; ci < nc; ci++ {
		id := 0
		for _, b := range comps[ci] {
			for _, blk := range b.Blocks {
				np := layers[ci][len(layers[ci])-1][id]
				if dec[ci][id].Passes != np {
					t.Fatalf("comp %d block %d: %d passes, want %d", ci, id, dec[ci][id].Passes, np)
				}
				if np > 0 && !bytes.Equal(dec[ci][id].Data, blk.Data[:blk.PassRates[np-1]]) {
					t.Fatalf("comp %d block %d: data mismatch", ci, id)
				}
				id++
			}
		}
	}
}
