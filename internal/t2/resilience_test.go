package t2

import (
	"strings"
	"testing"

	"pj2k/internal/dwt"
)

func resilienceParams() Params {
	return Params{
		Width: 64, Height: 64, TileW: 64, TileH: 64,
		BitDepth: 8, Levels: 2, Layers: 1, CBW: 32, CBH: 32,
		Kernel: dwt.Rev53, GuardBits: 2, Mb: [][]int{{8, 9, 9, 10, 7, 7, 8}},
	}
}

func TestResilienceFlagsRoundTrip(t *testing.T) {
	for _, tc := range []struct{ sop, eph, seg bool }{
		{false, false, false},
		{true, false, false},
		{false, true, false},
		{false, false, true},
		{true, true, true},
	} {
		p := resilienceParams()
		p.UseSOP, p.UseEPH, p.SegSym = tc.sop, tc.eph, tc.seg
		cs := WriteCodestream(p, [][]byte{{1, 2, 3}})
		q, _, err := ReadCodestream(cs)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if q.UseSOP != tc.sop || q.UseEPH != tc.eph || q.SegSym != tc.seg {
			t.Fatalf("flags %+v round-tripped as SOP=%v EPH=%v SegSym=%v",
				tc, q.UseSOP, q.UseEPH, q.SegSym)
		}
	}
}

// TestDecompressionBombGuard patches a legitimate header to declare an
// absurd image: a few dozen bytes must not be able to command a multi-
// terabyte allocation, in either strict or resilient parsing.
func TestDecompressionBombGuard(t *testing.T) {
	cs := WriteCodestream(resilienceParams(), [][]byte{{1, 2, 3}})
	// SIZ layout: SOC(2) SIZ(2) Lsiz(2) Rsiz(2), then Xsiz at 8, Ysiz at 12.
	bomb := append([]byte(nil), cs...)
	for _, off := range []int{8, 12} {
		bomb[off], bomb[off+1], bomb[off+2], bomb[off+3] = 0x00, 0x10, 0x00, 0x00 // 1<<20
	}
	if _, _, err := ReadCodestream(bomb); err == nil {
		t.Fatal("strict parse accepted a 2^40-pixel header")
	} else if !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("unexpected error: %v", err)
	}
	p, _, dmg, err := ReadCodestreamResilient(bomb)
	if err != nil {
		t.Fatalf("resilient parse must degrade, not fail: %v", err)
	}
	if !dmg.Any() {
		t.Fatal("resilient parse of a bomb header reported no damage")
	}
	// Whatever partial params survive must still be refused by the
	// geometry gate every decoder runs before allocating.
	if err := p.CheckGeometry(); err == nil {
		t.Fatal("CheckGeometry accepted the partial bomb params")
	}
}

// TestBombCapConfigurable exercises the MaxImagePixels knob: a stream that
// parses under the default budget is rejected once the cap drops below its
// sample count.
func TestBombCapConfigurable(t *testing.T) {
	cs := WriteCodestream(resilienceParams(), [][]byte{{1, 2, 3}})
	if _, _, err := ReadCodestream(cs); err != nil {
		t.Fatalf("baseline parse: %v", err)
	}
	old := MaxImagePixels
	defer func() { MaxImagePixels = old }()
	MaxImagePixels = 63 * 63 // below the 64x64 sample count
	if _, _, err := ReadCodestream(cs); err == nil {
		t.Fatal("lowered MaxImagePixels did not reject the stream")
	}
}
