package t2_test

// Tests for the streaming half of the t2 layer: Source-backed scanning, the
// incremental (lazy) tile index, and the IO bounds that make registration
// cheap. External package: realistic streams come from the jp2k encoder.

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// countingReaderAt wraps an io.ReaderAt and tallies bytes actually read —
// the instrument the laziness assertions are built on.
type countingReaderAt struct {
	r     io.ReaderAt
	bytes atomic.Int64
	calls atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.bytes.Add(int64(n))
	c.calls.Add(1)
	return n, err
}

// bigTiledStream encodes a stream large enough that lazy vs eager IO is
// unmistakable: tens of tiles, well past the scanner's chunk size.
func bigTiledStream(t testing.TB) []byte {
	t.Helper()
	cs, _, err := jp2k.Encode(raster.Synthetic(512, 512, 29), jp2k.Options{
		Kernel: dwt.Rev53, TileW: 64, TileH: 64, Levels: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestScanReadsHeadersOnly pins the registration IO bound: indexing a stream
// through a counting ReaderAt must read about one scanner chunk for the main
// header plus a fixed few bytes per tile-part — never the tile bodies.
// Forcing one tile afterwards reads about that tile's body and nothing more.
func TestScanReadsHeadersOnly(t *testing.T) {
	cs := bigTiledStream(t)
	cr := &countingReaderAt{r: bytes.NewReader(cs)}
	ix, err := t2.NewIndex(t2.NewSource(cr, int64(len(cs))))
	if err != nil {
		t.Fatal(err)
	}
	ntiles := ix.NumTiles()
	if ntiles != 64 {
		t.Fatalf("%d tiles, want 64", ntiles)
	}
	registration := cr.bytes.Load()
	// One 8 KiB header chunk + SOT/marker reads (14 bytes per tile-part) +
	// slack; the stream itself is far larger.
	budget := int64(8<<10 + 64*ntiles)
	if registration > budget {
		t.Fatalf("registration read %d bytes (budget %d) — tile bodies are being read up front", registration, budget)
	}
	if int64(len(cs)) < 4*budget {
		t.Fatalf("stream too small (%d bytes) for the laziness bound to mean anything", len(cs))
	}

	// Touch one tile: the increment must be about that tile's body, not the
	// rest of the stream.
	ti := ntiles / 2
	tile, err := ix.Tile(ti)
	if err != nil {
		t.Fatal(err)
	}
	delta := cr.bytes.Load() - registration
	if delta < int64(len(tile.Body)) {
		t.Fatalf("tile force read %d bytes, body is %d", delta, len(tile.Body))
	}
	if delta > int64(len(tile.Body))+1024 {
		t.Fatalf("forcing one %d-byte tile read %d bytes — more than its own body", len(tile.Body), delta)
	}
	// A second touch of the same tile is free: the lazy cell is built once.
	before := cr.bytes.Load()
	if _, err := ix.Tile(ti); err != nil {
		t.Fatal(err)
	}
	if cr.bytes.Load() != before {
		t.Fatal("re-touching a built tile read the source again")
	}
}

// TestSourceKindsEqual: scanning and indexing must be oblivious to where the
// bytes live — resident slice, bytes.Reader behind the ReaderAt interface,
// and a real file on disk all produce identical params, spans and packet
// boundaries.
func TestSourceKindsEqual(t *testing.T) {
	cs := bigTiledStream(t)
	path := filepath.Join(t.TempDir(), "s.j2k")
	if err := os.WriteFile(path, cs, 0o644); err != nil {
		t.Fatal(err)
	}
	fileSrc, err := t2.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fileSrc.Close()
	sources := map[string]*t2.Source{
		"bytes":    t2.BytesSource(cs),
		"readerat": t2.NewSource(bytes.NewReader(cs), int64(len(cs))),
		"file":     fileSrc,
	}
	refP, refSpans, err := t2.ScanCodestream(t2.BytesSource(cs))
	if err != nil {
		t.Fatal(err)
	}
	refIx, err := t2.BuildIndex(cs)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range sources {
		p, spans, err := t2.ScanCodestream(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(p, refP) || !reflect.DeepEqual(spans, refSpans) {
			t.Fatalf("%s: scan differs from resident scan", name)
		}
		ix, err := t2.NewIndex(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for ti := 0; ti < ix.NumTiles(); ti++ {
			got, err := ix.Tile(ti)
			if err != nil {
				t.Fatalf("%s tile %d: %v", name, ti, err)
			}
			want, err := refIx.Tile(ti)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Body, want.Body) {
				t.Fatalf("%s tile %d: body differs", name, ti)
			}
			if !reflect.DeepEqual(got.Packets, want.Packets) {
				t.Fatalf("%s tile %d: packet boundaries differ", name, ti)
			}
		}
	}
}

// TestLazyIndexConcurrent is the -race gate for the lazy tile cells: many
// goroutines forcing overlapping and disjoint tiles of one shared Index must
// produce exactly the eager index's results, with no data races (the test is
// meaningful under `go test -race`, which CI runs).
func TestLazyIndexConcurrent(t *testing.T) {
	cs := bigTiledStream(t)
	eager, err := t2.BuildIndex(cs)
	if err != nil {
		t.Fatal(err)
	}
	// A ReaderAt source (not resident) so concurrent forcing really exercises
	// the shared read path, not just slice aliasing.
	ix, err := t2.NewIndex(t2.NewSource(bytes.NewReader(cs), int64(len(cs))))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks every tile, starting at a different point, so
			// every cell sees both first-build and already-built contention.
			for k := 0; k < ix.NumTiles(); k++ {
				ti := (w*7 + k) % ix.NumTiles()
				got, err := ix.Tile(ti)
				if err != nil {
					errs <- err
					return
				}
				want, err := eager.Tile(ti)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got.Body, want.Body) || !reflect.DeepEqual(got.Packets, want.Packets) {
					errs <- io.ErrUnexpectedEOF // sentinel; details below
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent lazy index: %v", err)
	}
}

// sotOffsets returns the byte offsets of every SOT marker in cs.
func sotOffsets(cs []byte) []int {
	var offs []int
	for i := 0; i+1 < len(cs); i++ {
		if cs[i] == 0xFF && cs[i+1] == 0x90 {
			offs = append(offs, i)
		}
	}
	return offs
}

// FuzzLazyIndex hammers the incremental indexer with hostile tile-part
// chains. Seeds cover the documented attack surface: truncation mid-SOT
// chain and lying Psot fields (zero, overlapping the next tile-part, pointing
// past EOF). The contract: strict scanning errors cleanly, resilient scanning
// salvages whatever spans stay in bounds, and forcing every indexed tile
// never panics or reads outside the stream.
func FuzzLazyIndex(f *testing.F) {
	cs, _, err := jp2k.Encode(raster.Synthetic(96, 96, 13), jp2k.Options{
		Kernel: dwt.Rev53, TileW: 48, TileH: 48, Levels: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cs)
	sots := sotOffsets(cs)
	if len(sots) < 2 {
		f.Fatalf("seed stream has %d SOTs, want several", len(sots))
	}
	// Truncation mid-SOT-chain: cut inside the second tile-part's header and
	// inside its body.
	f.Add(cs[:sots[1]+6])
	f.Add(cs[:sots[1]+40])
	// Lying Psot values on the second SOT (Psot lives 6 bytes past the
	// marker): zero, small-but-overlapping, and far past EOF.
	for _, psot := range []uint32{0, 13, 1 << 30} {
		mut := append([]byte(nil), cs...)
		binary.BigEndian.PutUint32(mut[sots[1]+6:], psot)
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		src := t2.BytesSource(data)
		// Strict: error or a fully forceable index with in-bounds spans.
		if ix, err := t2.NewIndex(src); err == nil {
			for ti := 0; ti < ix.NumTiles(); ti++ {
				_, _ = ix.Tile(ti)
			}
			_, _ = ix.CodestreamPrefix(1)
		}
		// Resilient: never panics, and every salvaged span stays in bounds.
		_, spans, _, err := t2.ScanCodestreamResilient(src)
		if err != nil {
			return
		}
		for _, sp := range spans {
			if sp.Off < 0 || sp.Len < 0 || sp.End() > int64(len(data)) {
				t.Fatalf("resilient scan salvaged out-of-bounds span [%d,%d) of %d bytes",
					sp.Off, sp.End(), len(data))
			}
		}
	})
}
