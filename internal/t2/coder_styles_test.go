package t2_test

import (
	"bytes"
	"strings"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// codStyleOffset locates the COD code-block style byte in a codestream: the
// marker (FF 52), its length field, and ten parameter bytes precede it.
func codStyleOffset(t *testing.T, cs []byte) int {
	t.Helper()
	i := bytes.Index(cs, []byte{0xFF, 0x52})
	if i < 0 {
		t.Fatal("no COD marker")
	}
	return i + 12
}

// TestUnknownStyleBitsRejected is the regression test for the silent
// mis-decode bug: a COD carrying a code-block style bit this decoder does not
// implement used to be ignored, and the packet walk then mis-parsed every
// block. Strict parsing must reject it with a clear error; resilient parsing
// must mask it off, count the salvage, and still decode the stream.
func TestUnknownStyleBitsRejected(t *testing.T) {
	im := raster.Synthetic(64, 64, 3)
	cs, _, err := jp2k.Encode(im, jp2k.Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	off := codStyleOffset(t, cs)
	for _, bit := range []byte{0x10, 0x40, 0x80} { // predictable termination + reserved bits
		bad := append([]byte(nil), cs...)
		bad[off] |= bit

		if _, _, err := t2.ReadCodestream(bad); err == nil {
			t.Fatalf("style bit %#02x accepted by strict parse", bit)
		} else if !strings.Contains(err.Error(), "style") {
			t.Fatalf("style bit %#02x: unhelpful error %q", bit, err)
		}
		if _, err := jp2k.Decode(bad, jp2k.DecodeOptions{}); err == nil {
			t.Fatalf("style bit %#02x decoded strictly", bit)
		}

		p, tiles, dmg, err := t2.ReadCodestreamResilient(bad)
		if err != nil {
			t.Fatalf("style bit %#02x: resilient parse failed: %v", bit, err)
		}
		if dmg.BadStyles != 1 || !dmg.Any() {
			t.Fatalf("style bit %#02x: salvage not reported: %+v", bit, dmg)
		}
		if len(tiles) == 0 || p.Bypass || p.TermAll || p.ResetCtx || p.Causal {
			t.Fatalf("style bit %#02x: salvaged params polluted: %+v", bit, p)
		}
		// The masked stream was in fact encoded without the unknown mode, so
		// the salvage decodes it losslessly.
		dec := jp2k.NewDecoder()
		out, err := dec.Decode(bad, jp2k.DecodeOptions{Resilient: true})
		if err != nil {
			t.Fatalf("style bit %#02x: resilient decode: %v", bit, err)
		}
		for i := range im.Pix {
			if out.Pix[i] != im.Pix[i] {
				t.Fatalf("style bit %#02x: salvaged decode differs at %d", bit, i)
			}
		}
	}
}

// TestKnownStyleBitsRoundTrip pins the COD byte itself: each supported style
// sets exactly its standard bit, and the parse restores the flag.
func TestKnownStyleBitsRoundTrip(t *testing.T) {
	im := raster.Synthetic(48, 48, 9)
	cases := []struct {
		coder jp2k.CoderOptions
		seg   bool
		want  byte
	}{
		{jp2k.CoderOptions{Bypass: true}, false, 0x01},
		{jp2k.CoderOptions{ResetCtx: true}, false, 0x02},
		{jp2k.CoderOptions{TermAll: true}, false, 0x04},
		{jp2k.CoderOptions{Causal: true}, false, 0x08},
		{jp2k.CoderOptions{}, true, 0x20},
		{jp2k.CoderOptions{Bypass: true, TermAll: true, ResetCtx: true, Causal: true}, true, 0x2F},
	}
	for _, c := range cases {
		cs, _, err := jp2k.Encode(im, jp2k.Options{
			Kernel: dwt.Rev53, Coder: c.coder,
			Resilience: jp2k.ResilienceOptions{SegSymbols: c.seg},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := cs[codStyleOffset(t, cs)]; got != c.want {
			t.Fatalf("%+v segsym=%v: COD style byte %#02x, want %#02x", c.coder, c.seg, got, c.want)
		}
		p, _, err := t2.ReadCodestream(cs)
		if err != nil {
			t.Fatal(err)
		}
		m := p.CoderModes()
		if m.Bypass != c.coder.Bypass || m.ResetCtx != c.coder.ResetCtx ||
			m.TermAll != c.coder.TermAll || m.Causal != c.coder.Causal || m.SegSym != c.seg {
			t.Fatalf("%+v segsym=%v: parsed modes %+v", c.coder, c.seg, m)
		}
	}
}
