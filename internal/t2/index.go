package t2

import (
	"fmt"

	"pj2k/internal/dwt"
)

// Span is a byte range relative to its tile-part body.
type Span struct {
	Off, Len int
}

// End returns the offset one past the span.
func (s Span) End() int { return s.Off + s.Len }

// TileIndex locates every packet of one tile. Body aliases the parsed
// codestream; Packets[component][layer][resolution] is the packet's byte
// range within Body. Packets are contiguous in LRCP order (layer outer,
// resolution middle, component inner), so the body prefix through any layer
// is a single range starting at offset 0.
type TileIndex struct {
	Body    []byte
	Packets [][][]Span
}

// Index is a parsed-once map of a codestream: the header parameters plus the
// byte range of every packet (per tile x component x layer x resolution),
// located by walking packet headers without entropy-decoding any code-block.
// It is the substrate of the serving subsystem: a region/resolution/layer
// request can be costed (RegionBytes) or sliced (CodestreamPrefix,
// LayerPrefixLen) per request while the Index itself is built once and shared
// read-only between any number of goroutines.
type Index struct {
	Params Params
	Tiles  []TileIndex
}

// BuildIndex parses a codestream and locates every packet boundary. The walk
// decodes only packet headers (tag trees, pass counts, length signalling);
// block payloads are skipped, so indexing is cheap compared to decoding.
// Corrupt or truncated streams yield an error, never a panic.
func BuildIndex(data []byte) (*Index, error) {
	p, tiles, err := ReadCodestream(data)
	if err != nil {
		return nil, err
	}
	if err := p.CheckGeometry(); err != nil {
		return nil, err
	}
	ntx, nty := p.NumTiles()
	if len(tiles) != ntx*nty {
		return nil, fmt.Errorf("t2: %d tile-parts for a %dx%d tile grid", len(tiles), ntx, nty)
	}
	nc := p.Components()
	ix := &Index{Params: p, Tiles: make([]TileIndex, len(tiles))}
	nbands := 1 + 3*p.Levels
	comps := make([][]BandBlocks, nc)
	for ci := range comps {
		comps[ci] = make([]BandBlocks, nbands)
	}
	dec := make([][]DecodedBlock, nc)
	var tc *TileCoder
	for ti, body := range tiles {
		tx, ty := ti%ntx, ti/ntx
		x0, y0 := tx*p.TileW, ty*p.TileH
		tw := min(x0+p.TileW, p.Width) - x0
		th := min(y0+p.TileH, p.Height) - y0
		for bi, b := range dwt.Subbands(tw, th, p.Levels) {
			g := MakeGrid(b, p.CBW, p.CBH)
			for ci := 0; ci < nc; ci++ {
				comps[ci][bi] = BandBlocks{Grid: g, Mb: p.Mb[ci][bi]}
			}
		}
		if tc == nil {
			tc = NewTileCoderComps(comps)
			tc.SOP, tc.EPH = p.UseSOP, p.UseEPH
			tc.Modes = p.CoderModes()
		} else {
			tc.ResetComps(comps)
		}
		for ci := 0; ci < nc; ci++ {
			dec[ci] = resetDec(dec[ci], tc.comps[ci].nblocks)
		}
		// Every packet costs at least one body byte (the empty-bit header),
		// so the declared layer/level/component counts bound the body size.
		// Checking before allocating keeps a tiny corrupt stream from
		// demanding gigabytes of span bookkeeping.
		if npackets := nc * p.Layers * (p.Levels + 1); npackets > len(body) {
			return nil, fmt.Errorf("t2: tile %d declares %d packets but carries %d bytes",
				ti, npackets, len(body))
		}
		packets := make([][][]Span, nc)
		for ci := range packets {
			packets[ci] = make([][]Span, p.Layers)
			for li := range packets[ci] {
				packets[ci][li] = make([]Span, p.Levels+1)
			}
		}
		pos := 0
		for li := 0; li < p.Layers; li++ {
			for r := 0; r <= p.Levels; r++ {
				bandIdx := dwt.BandsOfResolution(p.Levels, r)
				for ci := 0; ci < nc; ci++ {
					n, err := tc.decodePacket(ci, comps[ci], bandIdx, li, body[pos:], dec[ci], false)
					if err != nil {
						return nil, fmt.Errorf("t2: tile %d layer %d resolution %d component %d: %w",
							ti, li, r, ci, err)
					}
					packets[ci][li][r] = Span{Off: pos, Len: n}
					pos += n
				}
			}
		}
		ix.Tiles[ti] = TileIndex{Body: body, Packets: packets}
	}
	return ix, nil
}

// NumTiles returns the number of tiles in the indexed stream.
func (ix *Index) NumTiles() int { return len(ix.Tiles) }

// LayerPrefixLen returns the length of tile ti's body prefix that carries its
// first `layers` quality layers (every resolution, every component). layers
// outside [0, Params.Layers] is clamped. This is the embedded-stream property
// LRCP ordering guarantees: fewer layers are always a contiguous prefix.
func (ix *Index) LayerPrefixLen(ti, layers int) int {
	t := &ix.Tiles[ti]
	if layers > ix.Params.Layers {
		layers = ix.Params.Layers
	}
	if layers <= 0 {
		return 0
	}
	// The last packet of a layer belongs to the last component's highest
	// resolution (component is the innermost LRCP loop).
	last := t.Packets[len(t.Packets)-1][layers-1]
	return last[len(last)-1].End()
}

// RegionBytes sums the packet bytes a decode of the given tiles at the given
// discard-levels/layer limit must touch, across every component — the payload
// cost of a window request, before any caching. discard and layers are
// clamped to the stream.
func (ix *Index) RegionBytes(tiles []int, discard, layers int) int {
	p := ix.Params
	if discard < 0 {
		discard = 0
	}
	if discard > p.Levels {
		discard = p.Levels
	}
	if layers <= 0 || layers > p.Layers {
		layers = p.Layers
	}
	maxRes := p.Levels - discard
	total := 0
	for _, ti := range tiles {
		if ti < 0 || ti >= len(ix.Tiles) {
			continue
		}
		for _, comp := range ix.Tiles[ti].Packets {
			for li := 0; li < layers; li++ {
				for r := 0; r <= maxRes; r++ {
					total += comp[li][r].Len
				}
			}
		}
	}
	return total
}

// TotalBytes returns the packet bytes of the whole stream (all tiles, all
// components, all layers, all resolutions).
func (ix *Index) TotalBytes() int {
	total := 0
	for _, t := range ix.Tiles {
		for _, comp := range t.Packets {
			for _, spans := range comp {
				for _, s := range spans {
					total += s.Len
				}
			}
		}
	}
	return total
}

// CodestreamPrefix re-emits a valid standalone codestream carrying only the
// first maxLayers quality layers of every tile: the progressive-refinement
// primitive a server sends to a client that asked for a coarse image now and
// will fetch more layers later. maxLayers is clamped to [1, Params.Layers];
// with maxLayers >= Params.Layers the result is equivalent to the original
// stream (modulo any bytes outside the indexed packets).
func (ix *Index) CodestreamPrefix(maxLayers int) []byte {
	p := ix.Params
	if maxLayers < 1 {
		maxLayers = 1
	}
	if maxLayers > p.Layers {
		maxLayers = p.Layers
	}
	p.Layers = maxLayers
	bodies := make([][]byte, len(ix.Tiles))
	for ti := range ix.Tiles {
		bodies[ti] = ix.Tiles[ti].Body[:ix.LayerPrefixLen(ti, maxLayers)]
	}
	return WriteCodestream(p, bodies)
}
