package t2

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"pj2k/internal/dwt"
)

// Span is a byte range relative to its tile-part body.
type Span struct {
	Off, Len int
}

// End returns the offset one past the span.
func (s Span) End() int { return s.Off + s.Len }

// TileIndex locates every packet of one tile. Body aliases the parsed
// codestream for a resident-bytes Source (and is a private copy for a
// reader-backed one); Packets[component][layer][resolution] is the packet's
// byte range within Body. Packets are contiguous in LRCP order (layer outer,
// resolution middle, component inner), so the body prefix through any layer
// is a single range starting at offset 0.
type TileIndex struct {
	Body    []byte
	Packets [][][]Span
}

// layerPrefixLen returns the length of the body prefix carrying the first
// `layers` quality layers — the embedded-stream property LRCP ordering
// guarantees: fewer layers are always a contiguous prefix.
func (t *TileIndex) layerPrefixLen(layers int) int {
	if layers <= 0 {
		return 0
	}
	// The last packet of a layer belongs to the last component's highest
	// resolution (component is the innermost LRCP loop).
	last := t.Packets[len(t.Packets)-1][layers-1]
	return last[len(last)-1].End()
}

// lazyTile is one tile's once-built packet map. A successful build and a
// permanent parse failure are memoized; an IO failure is not, so a tile whose
// source was unreadable (and later healed — quarantine recovery) rebuilds on
// the next touch instead of being poisoned for the life of the Index.
type lazyTile struct {
	mu    sync.Mutex
	built bool
	ti    TileIndex
	err   error
}

// Index is a map of a codestream: the header parameters plus the byte range
// of every packet (per tile x component x layer x resolution), located by
// walking packet headers without entropy-decoding any code-block.
//
// Construction (NewIndex) is incremental: the main header and the SOT/Psot
// tile-part chain are parsed eagerly — seeking tile to tile without reading
// any body bytes — and each tile's packet-boundary map is built lazily on
// first touch (Tile), guarded for concurrent use. It is the substrate of the
// serving subsystem: a region/resolution/layer request can be costed
// (RegionBytes) or sliced (WritePrefix, LayerPrefixLen) per request while the
// Index itself is built once and shared between any number of goroutines.
type Index struct {
	Params Params
	src    *Source
	spans  []TileSpan
	tiles  []lazyTile
}

// NewIndex scans a codestream's main header and tile-part chain and returns
// the lazy index over it. Geometry and tile-grid consistency are validated
// here; per-tile packet walks happen on first Tile touch. The Index retains
// src (and reads from it lazily); the caller keeps ownership and must keep it
// open for the Index's lifetime.
func NewIndex(src *Source) (*Index, error) {
	p, spans, err := ScanCodestream(src)
	if err != nil {
		return nil, err
	}
	if err := p.CheckGeometry(); err != nil {
		return nil, err
	}
	ntx, nty := p.NumTiles()
	if len(spans) != ntx*nty {
		return nil, fmt.Errorf("t2: %d tile-parts for a %dx%d tile grid", len(spans), ntx, nty)
	}
	return &Index{Params: p, src: src, spans: spans, tiles: make([]lazyTile, len(spans))}, nil
}

// BuildIndex parses a resident codestream and locates every packet boundary
// eagerly — NewIndex over a BytesSource with every tile forced, so a corrupt
// stream is fully rejected here rather than on first touch. The walk decodes
// only packet headers (tag trees, pass counts, length signalling); block
// payloads are skipped, so indexing is cheap compared to decoding. Corrupt or
// truncated streams yield an error, never a panic.
func BuildIndex(data []byte) (*Index, error) {
	ix, err := NewIndex(BytesSource(data))
	if err != nil {
		return nil, err
	}
	for ti := range ix.tiles {
		if _, err := ix.Tile(ti); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Source returns the Source the index reads from.
func (ix *Index) Source() *Source { return ix.src }

// NumTiles returns the number of tiles in the indexed stream.
func (ix *Index) NumTiles() int { return len(ix.spans) }

// Tile returns tile ti's packet map, building it on first touch. Concurrent
// calls for the same tile coalesce on a per-tile lock; calls for different
// tiles build independently (each walk uses its own coder state), so disjoint
// tiles of one Index can be forced from many goroutines at once. Successful
// builds and permanent parse errors are memoized for the life of the Index;
// IO failures are returned but not memoized, so the tile is retried once its
// source reads again.
func (ix *Index) Tile(ti int) (*TileIndex, error) {
	if ti < 0 || ti >= len(ix.tiles) {
		return nil, fmt.Errorf("t2: tile %d of %d", ti, len(ix.tiles))
	}
	lt := &ix.tiles[ti]
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.built {
		if lt.err != nil {
			return nil, lt.err
		}
		return &lt.ti, nil
	}
	t, err := ix.buildTile(ti)
	if err != nil {
		if IsIOError(err) {
			return nil, err
		}
		lt.built, lt.err = true, err
		return nil, err
	}
	lt.built, lt.ti = true, t
	return &lt.ti, nil
}

// buildTile reads one tile-part body and walks its packet headers into a
// TileIndex. All state is local, so concurrent builds of different tiles
// never share coder scratch.
func (ix *Index) buildTile(ti int) (TileIndex, error) {
	p := ix.Params
	sp := ix.spans[ti]
	var body []byte
	if m := ix.src.Mem(); m != nil {
		body = m[sp.Off:sp.End()]
	} else {
		body = make([]byte, sp.Len)
		if _, err := ix.src.ReadAt(body, sp.Off); err != nil {
			return TileIndex{}, fmt.Errorf("t2: tile %d body: %w", ti, err)
		}
	}
	nc := p.Components()
	nbands := 1 + 3*p.Levels
	ntx, _ := p.NumTiles()
	tx, ty := ti%ntx, ti/ntx
	x0, y0 := tx*p.TileW, ty*p.TileH
	tw := min(x0+p.TileW, p.Width) - x0
	th := min(y0+p.TileH, p.Height) - y0
	comps := make([][]BandBlocks, nc)
	for ci := range comps {
		comps[ci] = make([]BandBlocks, nbands)
	}
	for bi, b := range dwt.Subbands(tw, th, p.Levels) {
		g := MakeGrid(b, p.CBW, p.CBH)
		for ci := 0; ci < nc; ci++ {
			comps[ci][bi] = BandBlocks{Grid: g, Mb: p.Mb[ci][bi]}
		}
	}
	tc := NewTileCoderComps(comps)
	tc.SOP, tc.EPH = p.UseSOP, p.UseEPH
	tc.Modes = p.CoderModes()
	dec := make([][]DecodedBlock, nc)
	for ci := 0; ci < nc; ci++ {
		dec[ci] = resetDec(dec[ci], tc.comps[ci].nblocks)
	}
	// Every packet costs at least one body byte (the empty-bit header), so
	// the declared layer/level/component counts bound the body size. Checking
	// before allocating keeps a tiny corrupt stream from demanding gigabytes
	// of span bookkeeping.
	if npackets := nc * p.Layers * (p.Levels + 1); npackets > len(body) {
		return TileIndex{}, fmt.Errorf("t2: tile %d declares %d packets but carries %d bytes",
			ti, npackets, len(body))
	}
	packets := make([][][]Span, nc)
	for ci := range packets {
		packets[ci] = make([][]Span, p.Layers)
		for li := range packets[ci] {
			packets[ci][li] = make([]Span, p.Levels+1)
		}
	}
	pos := 0
	for li := 0; li < p.Layers; li++ {
		for r := 0; r <= p.Levels; r++ {
			bandIdx := dwt.BandsOfResolution(p.Levels, r)
			for ci := 0; ci < nc; ci++ {
				n, err := tc.decodePacket(ci, comps[ci], bandIdx, li, body[pos:], dec[ci], false)
				if err != nil {
					return TileIndex{}, fmt.Errorf("t2: tile %d layer %d resolution %d component %d: %w",
						ti, li, r, ci, err)
				}
				packets[ci][li][r] = Span{Off: pos, Len: n}
				pos += n
			}
		}
	}
	return TileIndex{Body: body, Packets: packets}, nil
}

// LayerPrefixLen returns the length of tile ti's body prefix that carries its
// first `layers` quality layers (every resolution, every component). layers
// outside [0, Params.Layers] is clamped. Forces the tile's packet map.
func (ix *Index) LayerPrefixLen(ti, layers int) (int, error) {
	t, err := ix.Tile(ti)
	if err != nil {
		return 0, err
	}
	if layers > ix.Params.Layers {
		layers = ix.Params.Layers
	}
	return t.layerPrefixLen(layers), nil
}

// RegionBytes sums the packet bytes a decode of the given tiles at the given
// discard-levels/layer limit must touch, across every component — the payload
// cost of a window request, before any caching. discard and layers are
// clamped to the stream. Only the listed tiles are forced; a tile whose
// packet walk fails contributes zero (the serving path surfaces the error
// when the tile is actually decoded).
func (ix *Index) RegionBytes(tiles []int, discard, layers int) int {
	p := ix.Params
	if discard < 0 {
		discard = 0
	}
	if discard > p.Levels {
		discard = p.Levels
	}
	if layers <= 0 || layers > p.Layers {
		layers = p.Layers
	}
	maxRes := p.Levels - discard
	total := 0
	for _, ti := range tiles {
		t, err := ix.Tile(ti)
		if err != nil {
			continue
		}
		for _, comp := range t.Packets {
			for li := 0; li < layers; li++ {
				for r := 0; r <= maxRes; r++ {
					total += comp[li][r].Len
				}
			}
		}
	}
	return total
}

// TotalBytes returns the packet bytes of the whole stream (all tiles, all
// components, all layers, all resolutions), forcing every tile's packet map.
func (ix *Index) TotalBytes() int {
	total := 0
	for ti := range ix.tiles {
		t, err := ix.Tile(ti)
		if err != nil {
			continue
		}
		for _, comp := range t.Packets {
			for _, spans := range comp {
				for _, s := range spans {
					total += s.Len
				}
			}
		}
	}
	return total
}

// WritePrefix streams a valid standalone codestream carrying only the first
// maxLayers quality layers of every tile to w: the progressive-refinement
// primitive a server sends to a client that asked for a coarse image now and
// will fetch more layers later — without buffering the re-emitted stream.
// maxLayers is clamped to [1, Params.Layers]; with maxLayers >= Params.Layers
// the result is equivalent to the original stream (modulo any bytes outside
// the indexed packets). Returns the bytes written.
func (ix *Index) WritePrefix(w io.Writer, maxLayers int) (int64, error) {
	p := ix.Params
	if maxLayers < 1 {
		maxLayers = 1
	}
	if maxLayers > p.Layers {
		maxLayers = p.Layers
	}
	hp := p
	hp.Layers = maxLayers
	var written int64
	scratch := appendMainHeader(nil, hp)
	n, err := w.Write(scratch)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for ti := range ix.spans {
		t, err := ix.Tile(ti)
		if err != nil {
			return written, err
		}
		pl := t.layerPrefixLen(maxLayers)
		n, err = w.Write(appendSOT(scratch[:0], ti, pl))
		written += int64(n)
		if err != nil {
			return written, err
		}
		n, err = w.Write(t.Body[:pl])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	n, err = w.Write(put16(scratch[:0], mEOC))
	written += int64(n)
	return written, err
}

// CodestreamPrefix is WritePrefix materialized into a fresh slice, for
// callers that need the truncated stream as bytes (tests, re-encoding).
// Serving paths should prefer WritePrefix, which does not buffer.
func (ix *Index) CodestreamPrefix(maxLayers int) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := ix.WritePrefix(&buf, maxLayers); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
