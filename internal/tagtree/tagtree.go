// Package tagtree implements the JPEG2000 tag trees (ISO/IEC 15444-1 B.10.2)
// used by tier-2 packet headers to code code-block inclusion layers and
// zero-bit-plane counts. A tag tree codes a 2-D array of non-negative
// integers by quad-tree minima, emitting information incrementally across
// successive threshold queries.
package tagtree

// BitWriter is the bit sink used during encoding (a bitio.StuffWriter in
// tier-2).
type BitWriter interface {
	WriteBit(b int)
}

// BitReader is the bit source used during decoding.
type BitReader interface {
	ReadBit() (int, error)
}

type node struct {
	value  int // min of subtree leaf values (encoder side)
	low    int // lower bound established with the decoder
	known  bool
	parent int // index of parent node, -1 at root
}

// Tree is a tag tree over an ncols x nrows grid of leaves.
type Tree struct {
	ncols, nrows int
	nodes        []node
	levelBase    []int // index of first node of each level; leaves at level 0
	levels       int
	dirty        bool
}

// New builds a tag tree for the given grid. Leaf values are set with
// SetValue before encoding; decoders leave them unset.
func New(ncols, nrows int) *Tree {
	if ncols <= 0 || nrows <= 0 {
		panic("tagtree: empty grid")
	}
	t := &Tree{ncols: ncols, nrows: nrows}
	type dim struct{ c, r int }
	var dims []dim
	c, r := ncols, nrows
	for {
		dims = append(dims, dim{c, r})
		if c == 1 && r == 1 {
			break
		}
		c = (c + 1) / 2
		r = (r + 1) / 2
	}
	t.levels = len(dims)
	t.levelBase = make([]int, t.levels)
	total := 0
	for k, d := range dims {
		t.levelBase[k] = total
		total += d.c * d.r
	}
	t.nodes = make([]node, total)
	for i := range t.nodes {
		t.nodes[i].parent = -1
	}
	for k := 0; k+1 < t.levels; k++ {
		dc, dr := dims[k].c, dims[k].r
		pc := dims[k+1].c
		for y := 0; y < dr; y++ {
			for x := 0; x < dc; x++ {
				child := t.levelBase[k] + y*dc + x
				parent := t.levelBase[k+1] + (y/2)*pc + x/2
				t.nodes[child].parent = parent
			}
		}
	}
	return t
}

// Reset clears all coding state and values for reuse.
func (t *Tree) Reset() {
	for i := range t.nodes {
		t.nodes[i] = node{parent: t.nodes[i].parent}
	}
	t.dirty = false
}

// SetValue sets the leaf (x, y) to v. All leaf values must be set before the
// first Encode call; internal minima are recomputed lazily.
func (t *Tree) SetValue(x, y, v int) {
	t.nodes[y*t.ncols+x].value = v
	t.dirty = true
}

// Value returns the current leaf value (encoder side).
func (t *Tree) Value(x, y int) int { return t.nodes[y*t.ncols+x].value }

// propagate recomputes internal minima from leaf values.
func (t *Tree) propagate() {
	if !t.dirty {
		return
	}
	t.dirty = false
	if t.levels == 1 {
		return
	}
	const maxInt = int(^uint(0) >> 1)
	for i := t.levelBase[1]; i < len(t.nodes); i++ {
		t.nodes[i].value = maxInt
	}
	for i := 0; i < len(t.nodes)-1; i++ { // every node except the root
		p := t.nodes[i].parent
		if t.nodes[i].value < t.nodes[p].value {
			t.nodes[p].value = t.nodes[i].value
		}
	}
}

// path fills buf with the node indices from the leaf (x,y) up to the root and
// returns the count.
func (t *Tree) path(x, y int, buf *[32]int) int {
	n := 0
	for i := y*t.ncols + x; i != -1; i = t.nodes[i].parent {
		buf[n] = i
		n++
	}
	return n
}

// Encode emits the bits that tell the decoder whether value(x,y) < threshold,
// advancing the shared tree state.
func (t *Tree) Encode(w BitWriter, x, y, threshold int) {
	t.propagate()
	var buf [32]int
	n := t.path(x, y, &buf)
	low := 0
	for k := n - 1; k >= 0; k-- {
		nd := &t.nodes[buf[k]]
		if nd.low < low {
			nd.low = low
		}
		for !nd.known && nd.low < threshold {
			if nd.low < nd.value {
				w.WriteBit(0)
				nd.low++
			} else {
				w.WriteBit(1)
				nd.known = true
			}
		}
		low = nd.low
	}
}

// EncodeValue emits bits until the decoder knows value(x,y) exactly (used
// for zero-bit-plane counts at first inclusion).
func (t *Tree) EncodeValue(w BitWriter, x, y int) {
	t.propagate()
	leaf := &t.nodes[y*t.ncols+x]
	for thr := 1; !leaf.known; thr++ {
		t.Encode(w, x, y, thr)
	}
}

// Decode consumes bits and reports whether value(x,y) < threshold.
func (t *Tree) Decode(r BitReader, x, y, threshold int) (bool, error) {
	var buf [32]int
	n := t.path(x, y, &buf)
	low := 0
	for k := n - 1; k >= 0; k-- {
		nd := &t.nodes[buf[k]]
		if nd.low < low {
			nd.low = low
		}
		for !nd.known && nd.low < threshold {
			bit, err := r.ReadBit()
			if err != nil {
				return false, err
			}
			if bit == 0 {
				nd.low++
			} else {
				nd.known = true
			}
		}
		low = nd.low
	}
	leaf := &t.nodes[y*t.ncols+x]
	return leaf.known && leaf.low < threshold, nil
}

// DecodeValue consumes bits until value(x,y) is exactly known and returns it.
func (t *Tree) DecodeValue(r BitReader, x, y int) (int, error) {
	leaf := &t.nodes[y*t.ncols+x]
	for thr := 1; !leaf.known; thr++ {
		if _, err := t.Decode(r, x, y, thr); err != nil {
			return 0, err
		}
	}
	return leaf.low, nil
}
