package tagtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pj2k/internal/bitio"
)

// roundTrip encodes threshold queries for every leaf in a scan pattern and
// checks the decoder reaches identical conclusions.
func roundTrip(t *testing.T, ncols, nrows int, values []int, maxThr int) {
	t.Helper()
	enc := New(ncols, nrows)
	for y := 0; y < nrows; y++ {
		for x := 0; x < ncols; x++ {
			enc.SetValue(x, y, values[y*ncols+x])
		}
	}
	w := bitio.NewWriter()
	// Emulate tier-2: sweep thresholds outer, leaves inner.
	for thr := 1; thr <= maxThr; thr++ {
		for y := 0; y < nrows; y++ {
			for x := 0; x < ncols; x++ {
				enc.Encode(w, x, y, thr)
			}
		}
	}
	dec := New(ncols, nrows)
	r := bitio.NewReader(w.Bytes())
	for thr := 1; thr <= maxThr; thr++ {
		for y := 0; y < nrows; y++ {
			for x := 0; x < ncols; x++ {
				got, err := dec.Decode(r, x, y, thr)
				if err != nil {
					t.Fatalf("decode (%d,%d) thr %d: %v", x, y, thr, err)
				}
				want := values[y*ncols+x] < thr
				if got != want {
					t.Fatalf("(%d,%d) thr %d: got %v want %v (values %v)", x, y, thr, got, want, values)
				}
			}
		}
	}
}

func TestSingleLeaf(t *testing.T) {
	roundTrip(t, 1, 1, []int{3}, 6)
}

func TestSmallGrids(t *testing.T) {
	roundTrip(t, 2, 2, []int{0, 1, 2, 3}, 5)
	roundTrip(t, 3, 1, []int{2, 0, 1}, 4)
	roundTrip(t, 1, 4, []int{1, 1, 0, 2}, 4)
	roundTrip(t, 5, 3, []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9}, 11)
}

func TestRandomGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nc, nr := 1+rng.Intn(9), 1+rng.Intn(9)
		values := make([]int, nc*nr)
		maxv := 0
		for i := range values {
			values[i] = rng.Intn(8)
			if values[i] > maxv {
				maxv = values[i]
			}
		}
		roundTrip(t, nc, nr, values, maxv+2)
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nc, nr := 1+rng.Intn(6), 1+rng.Intn(6)
		values := make([]int, nc*nr)
		for i := range values {
			values[i] = rng.Intn(10)
		}
		enc := New(nc, nr)
		for y := 0; y < nr; y++ {
			for x := 0; x < nc; x++ {
				enc.SetValue(x, y, values[y*nc+x])
			}
		}
		w := bitio.NewWriter()
		for y := 0; y < nr; y++ {
			for x := 0; x < nc; x++ {
				enc.EncodeValue(w, x, y)
			}
		}
		dec := New(nc, nr)
		r := bitio.NewReader(w.Bytes())
		for y := 0; y < nr; y++ {
			for x := 0; x < nc; x++ {
				v, err := dec.DecodeValue(r, x, y)
				if err != nil {
					t.Fatal(err)
				}
				if v != values[y*nc+x] {
					t.Fatalf("(%d,%d): got %d want %d", x, y, v, values[y*nc+x])
				}
			}
		}
	}
}

func TestIncrementalThresholds(t *testing.T) {
	// Interleaved per-leaf queries at increasing thresholds, the tier-2
	// packet pattern: layer loop outer, block loop inner, shared state.
	values := []int{2, 0, 3, 1}
	enc := New(2, 2)
	enc.SetValue(0, 0, 2)
	enc.SetValue(1, 0, 0)
	enc.SetValue(0, 1, 3)
	enc.SetValue(1, 1, 1)
	w := bitio.NewWriter()
	type q struct{ x, y, thr int }
	var queries []q
	for thr := 1; thr <= 4; thr++ {
		queries = append(queries, q{0, 0, thr}, q{1, 0, thr}, q{0, 1, thr}, q{1, 1, thr})
	}
	for _, qq := range queries {
		enc.Encode(w, qq.x, qq.y, qq.thr)
	}
	dec := New(2, 2)
	r := bitio.NewReader(w.Bytes())
	for _, qq := range queries {
		got, err := dec.Decode(r, qq.x, qq.y, qq.thr)
		if err != nil {
			t.Fatal(err)
		}
		if want := values[qq.y*2+qq.x] < qq.thr; got != want {
			t.Fatalf("query %+v: got %v want %v", qq, got, want)
		}
	}
}

func TestResetReuse(t *testing.T) {
	tr := New(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			tr.SetValue(x, y, x+y)
		}
	}
	w1 := bitio.NewWriter()
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			tr.EncodeValue(w1, x, y)
		}
	}
	tr.Reset()
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			tr.SetValue(x, y, x+y)
		}
	}
	w2 := bitio.NewWriter()
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			tr.EncodeValue(w2, x, y)
		}
	}
	a, b := w1.Bytes(), w2.Bytes()
	if len(a) != len(b) {
		t.Fatalf("reset changed encoding length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reset changed encoding")
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(nc8, nr8 uint8, raw []byte) bool {
		nc, nr := 1+int(nc8%8), 1+int(nr8%8)
		values := make([]int, nc*nr)
		maxv := 0
		for i := range values {
			if len(raw) > 0 {
				values[i] = int(raw[i%len(raw)]) % 12
			}
			if values[i] > maxv {
				maxv = values[i]
			}
		}
		enc := New(nc, nr)
		for y := 0; y < nr; y++ {
			for x := 0; x < nc; x++ {
				enc.SetValue(x, y, values[y*nc+x])
			}
		}
		w := bitio.NewWriter()
		for thr := 1; thr <= maxv+1; thr++ {
			for y := 0; y < nr; y++ {
				for x := 0; x < nc; x++ {
					enc.Encode(w, x, y, thr)
				}
			}
		}
		dec := New(nc, nr)
		r := bitio.NewReader(w.Bytes())
		for thr := 1; thr <= maxv+1; thr++ {
			for y := 0; y < nr; y++ {
				for x := 0; x < nc; x++ {
					got, err := dec.Decode(r, x, y, thr)
					if err != nil || got != (values[y*nc+x] < thr) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
