package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

// Options configures a Server.
type Options struct {
	// CacheBytes is the decoded-tile cache budget: 0 uses DefaultCacheBytes,
	// negative disables caching (every request decodes; concurrent misses
	// are still deduplicated in flight).
	CacheBytes int64
	// TileWorkers bounds the parallelism of one tile decode. The default 1
	// is right for servers: concurrency comes from concurrent requests, and
	// single-worker tile decodes keep per-request CPU bounded.
	TileWorkers int
	// MaxPixels rejects region requests larger than this many output pixels
	// (protects against accidental whole-gigapixel fetches); <= 0 uses
	// DefaultMaxPixels.
	MaxPixels int64
	// Timeout bounds each decode-bearing request: past it the request fails
	// with 504 and the decode pipeline stops at its next stage boundary.
	// 0 means unbounded.
	Timeout time.Duration
	// MaxInFlight bounds concurrently admitted decode-bearing requests
	// (/img/{id} and /img/{id}/stream); excess load is shed with
	// 503 + Retry-After instead of queueing without bound. 0 uses
	// DefaultMaxInFlight, negative disables shedding.
	MaxInFlight int
	// Resilient decodes tiles in best-effort mode: damaged codestreams
	// degrade into partially-concealed tiles and damage counters in /stats
	// instead of failing the request.
	Resilient bool
}

// Defaults for Options zero values.
const (
	DefaultCacheBytes  = 256 << 20
	DefaultMaxPixels   = 64 << 20
	DefaultMaxInFlight = 64
)

// Server answers progressive image requests over HTTP:
//
//	GET /img/{id}?x0=&y0=&x1=&y1=&reduce=&layers=&format=pgm|ppm|raw
//	    Decode a window at a resolution/quality. Coordinates address the
//	    reduced grid (the pixel grid of the image at that reduce level);
//	    omitted coordinates mean the full image. The response defaults to
//	    binary PGM (P5) for grayscale streams and binary PPM (P6) for
//	    three-component (color) streams, or headerless big-endian planar
//	    samples with format=raw.
//	GET /img/{id}/info
//	    JSON geometry: size per reduce level, tile grid, layers, byte costs.
//	GET /img/{id}/stream?layers=N
//	    A valid JPEG2000 codestream truncated to the first N quality layers,
//	    sliced from the packet index without decoding — progressive refinement
//	    for clients that decode locally.
//	GET /stats
//	    JSON server and cache counters.
//
// Region pixels are assembled from per-tile decodes that pass through the
// tile cache, so a hot viewport costs memory copies, not tier-1 decoding.
type Server struct {
	store *Store
	cache *Cache
	opts  Options
	mux   *http.ServeMux

	pool     *core.Pool    // resident decode workers shared by every request
	decoders sync.Pool     // *jp2k.Decoder, pooled across requests
	inflight chan struct{} // admission semaphore; nil disables shedding

	// panicHook, when set (tests), observes the recovered value of every
	// handler panic after the 500 has been written.
	panicHook func(any)

	started     time.Time
	requests    atomic.Int64
	errors      atomic.Int64
	tileDecodes atomic.Int64
	shed        atomic.Int64
	panics      atomic.Int64
	timeouts    atomic.Int64
	// Damage counters, moved only by resilient tile decodes.
	damagedTiles    atomic.Int64
	packetsLost     atomic.Int64
	blocksConcealed atomic.Int64
}

// New returns a Server over the given store. The server owns one persistent
// worker pool shared by every request's tile decodes — concurrent requests
// multiplex onto the same resident workers instead of each fanning out its
// own goroutines; Close releases them.
func New(store *Store, opts Options) *Server {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	if opts.TileWorkers <= 0 {
		opts.TileWorkers = 1
	}
	if opts.MaxPixels <= 0 {
		opts.MaxPixels = DefaultMaxPixels
	}
	s := &Server{
		store:   store,
		cache:   NewCache(opts.CacheBytes),
		opts:    opts,
		mux:     http.NewServeMux(),
		pool:    core.NewPool(0),
		started: time.Now(),
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.opts = opts
	s.decoders.New = func() any { return jp2k.NewDecoderWithPool(s.pool) }
	s.mux.HandleFunc("GET /img/{id}", s.handleRegion)
	s.mux.HandleFunc("GET /img/{id}/info", s.handleInfo)
	s.mux.HandleFunc("GET /img/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// Close releases the server's worker pool. It must only be called once no
// request is in flight (after the HTTP server has shut down).
func (s *Server) Close() { s.pool.Close() }

// Cache exposes the tile cache (for tests and ops tooling).
func (s *Server) Cache() *Cache { return s.cache }

// TileDecodes returns the number of tile decodes performed so far; requests
// served entirely from cache do not move it.
func (s *Server) TileDecodes() int64 { return s.tileDecodes.Load() }

// ServeHTTP implements http.Handler. A panicking handler is converted into a
// 500 (when the response has not started) plus a counter instead of relying
// on net/http to kill the connection — the server, its worker pool and its
// cache stay usable, and /stats shows that it happened.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.errors.Add(1)
			http.Error(w, "internal error", http.StatusInternalServerError)
			if s.panicHook != nil {
				s.panicHook(rec)
			}
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// admit reserves an admission slot, reporting false when the server is at
// capacity (the caller sheds the request). release must be called for every
// successful admit.
func (s *Server) admit() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// shedRequest answers an over-capacity request: 503 with a Retry-After hint,
// counted separately from ordinary errors.
func (s *Server) shedRequest(w http.ResponseWriter) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusServiceUnavailable, "server at capacity; retry shortly")
}

// requestCtx derives the work-bounding context of one request: the client's
// (cancelled on disconnect) plus the server-side deadline when configured.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.Timeout)
	}
	return r.Context(), func() {}
}

// failCtx maps a context-ended decode to its status: 504 for the server-side
// deadline, 503 for a client that went away (nobody reads the body either
// way).
func (s *Server) failCtx(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return
	}
	s.fail(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// queryInt parses an integer query parameter, using def when absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

// decodeTile produces one cached tile variant (every component), charging the
// decode counter. The context bounds the decode between pipeline stages; in
// resilient mode damage is absorbed into the server's counters and the
// degraded tile is served (and cached) like any other.
func (s *Server) decodeTile(ctx context.Context, img *Image, colW, rowH []int, tx, ty, discard, layers int) (*raster.Planar, error) {
	s.tileDecodes.Add(1)
	dec := s.decoders.Get().(*jp2k.Decoder)
	defer s.decoders.Put(dec)
	region := jp2k.Rect{X0: colW[tx], Y0: rowH[ty], X1: colW[tx+1], Y1: rowH[ty+1]}
	pl, err := dec.DecodeRegionPlanar(img.Data, region, jp2k.DecodeOptions{
		DiscardLevels: discard,
		MaxLayers:     layers,
		Workers:       s.opts.TileWorkers,
		VertMode:      dwt.VertBlocked,
		Resilient:     s.opts.Resilient,
		Ctx:           ctx,
	})
	if err == nil && s.opts.Resilient {
		if dmg := dec.Damage(); dmg.Damaged() {
			t := dmg.Totals()
			s.damagedTiles.Add(1)
			s.packetsLost.Add(int64(t.PacketsLost))
			s.blocksConcealed.Add(int64(t.BlocksConcealed))
		}
	}
	return pl, err
}

func (s *Server) handleRegion(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedRequest(w)
		return
	}
	defer s.release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	img, ok, err := s.store.Lookup(ctx, r.PathValue("id"))
	if err != nil {
		s.failCtx(w, err)
		return
	}
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	discard, err1 := queryInt(r, "reduce", 0)
	layers, err2 := queryInt(r, "layers", 0)
	for _, err := range []error{err1, err2} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	discard = img.ClampDiscard(discard)
	layers = img.ClampLayers(layers)
	colW, rowH := img.Grid(discard)
	ntx, nty := len(colW)-1, len(rowH)-1
	fullW, fullH := colW[ntx], rowH[nty]

	x0, err1 := queryInt(r, "x0", 0)
	y0, err2 := queryInt(r, "y0", 0)
	x1, err3 := queryInt(r, "x1", fullW)
	y1, err4 := queryInt(r, "y1", fullH)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	win := jp2k.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}.
		Intersect(jp2k.Rect{X1: fullW, Y1: fullH})
	if win.Empty() {
		s.fail(w, http.StatusBadRequest,
			"empty window [%d,%d)x[%d,%d) of %dx%d at reduce=%d", x0, x1, y0, y1, fullW, fullH, discard)
		return
	}
	if int64(win.Dx())*int64(win.Dy()) > s.opts.MaxPixels {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"window %dx%d exceeds the %d-pixel limit; raise reduce=", win.Dx(), win.Dy(), s.opts.MaxPixels)
		return
	}

	// Assemble the window from cached per-tile decodes, every component.
	ncomp := img.Params().Components()
	out := raster.NewPlanar(win.Dx(), win.Dy(), ncomp)
	var tiles []int
	for ty := 0; ty < nty; ty++ {
		if rowH[ty+1] <= win.Y0 || rowH[ty] >= win.Y1 {
			continue
		}
		for tx := 0; tx < ntx; tx++ {
			if colW[tx+1] <= win.X0 || colW[tx] >= win.X1 {
				continue
			}
			tiles = append(tiles, ty*ntx+tx)
			key := TileKey{Image: img.ID, TX: tx, TY: ty, Discard: discard, Layers: layers}
			tile, err := s.cache.GetOrDecode(ctx, key, func() (*raster.Planar, error) {
				return s.decodeTile(ctx, img, colW, rowH, tx, ty, discard, layers)
			})
			if err != nil {
				if ctx.Err() != nil {
					s.failCtx(w, ctx.Err())
				} else {
					s.fail(w, http.StatusInternalServerError, "tile (%d,%d): %v", tx, ty, err)
				}
				return
			}
			lx0, ly0 := max(win.X0-colW[tx], 0), max(win.Y0-rowH[ty], 0)
			lx1, ly1 := min(win.X1-colW[tx], tile.Width()), min(win.Y1-rowH[ty], tile.Height())
			ox, oy := colW[tx]+lx0-win.X0, rowH[ty]+ly0-win.Y0
			for ci := 0; ci < ncomp; ci++ {
				src, dst := tile.Comps[ci], out.Comps[ci]
				for y := ly0; y < ly1; y++ {
					copy(dst.Pix[(oy+y-ly0)*dst.Stride+ox:(oy+y-ly0)*dst.Stride+ox+lx1-lx0],
						src.Pix[y*src.Stride+lx0:y*src.Stride+lx1])
				}
			}
		}
	}

	// The packet-byte cost of this window per the index (all components):
	// what a byte-range transport (JPIP-style) would have shipped instead of
	// pixels.
	w.Header().Set("X-PJ2K-Packet-Bytes", strconv.Itoa(img.Index.RegionBytes(tiles, discard, layers)))
	maxval := 255
	if bd := img.Params().BitDepth; bd > 8 {
		maxval = 1<<uint(bd) - 1
	}
	format := r.URL.Query().Get("format")
	if format == "" { // grayscale defaults to PGM, color to PPM, anything else to raw
		switch ncomp {
		case 1:
			format = "pgm"
		case 3:
			format = "ppm"
		default:
			format = "raw"
		}
	}
	switch format {
	case "pgm":
		if ncomp != 1 {
			s.fail(w, http.StatusBadRequest, "format=pgm needs 1 component, image has %d (use ppm or raw)", ncomp)
			return
		}
		if maxval == 255 {
			out.ClampTo8()
		}
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		if err := raster.WritePGM(w, out.Comps[0], maxval); err != nil {
			s.errors.Add(1)
			return
		}
	case "ppm":
		if ncomp != 3 {
			s.fail(w, http.StatusBadRequest, "format=ppm needs 3 components, image has %d", ncomp)
			return
		}
		if maxval == 255 {
			out.ClampTo8()
		}
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		if err := raster.WritePPM(w, out, maxval); err != nil {
			s.errors.Add(1)
			return
		}
	case "raw":
		// Headerless samples in planar component order: 1 byte/sample when
		// every sample fits a byte (maxval <= 255), big-endian 2 bytes/sample
		// otherwise. X-PJ2K-Max-Value tells the client which — without it a
		// raw payload is uninterpretable (the old responses always wrote two
		// bytes but never said so, and wasted half the bytes of 8-bit images).
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-PJ2K-Width", strconv.Itoa(out.Width()))
		w.Header().Set("X-PJ2K-Height", strconv.Itoa(out.Height()))
		w.Header().Set("X-PJ2K-Components", strconv.Itoa(ncomp))
		w.Header().Set("X-PJ2K-Max-Value", strconv.Itoa(maxval))
		wide := maxval > 255
		width := 1
		if wide {
			width = 2
		}
		buf := make([]byte, 0, out.Width()*out.Height()*ncomp*width)
		for _, comp := range out.Comps {
			for y := 0; y < comp.Height; y++ {
				for _, v := range comp.Row(y) {
					if v < 0 {
						v = 0
					} else if v > int32(maxval) {
						v = int32(maxval)
					}
					if wide {
						buf = append(buf, byte(v>>8), byte(v))
					} else {
						buf = append(buf, byte(v))
					}
				}
			}
		}
		if _, err := w.Write(buf); err != nil {
			s.errors.Add(1)
		}
	default:
		s.fail(w, http.StatusBadRequest, "unknown format %q", format)
	}
}

// infoResponse is the /img/{id}/info payload.
type infoResponse struct {
	ID          string     `json:"id"`
	Width       int        `json:"width"`
	Height      int        `json:"height"`
	TileW       int        `json:"tile_w"`
	TileH       int        `json:"tile_h"`
	Tiles       int        `json:"tiles"`
	Components  int        `json:"components"`
	MCT         bool       `json:"mct"`
	Levels      int        `json:"levels"`
	Layers      int        `json:"layers"`
	BitDepth    int        `json:"bit_depth"`
	Kernel      string     `json:"kernel"`
	Bytes       int        `json:"bytes"`
	PacketBytes int        `json:"packet_bytes"`
	Reductions  []sizeInfo `json:"reductions"`
}

type sizeInfo struct {
	Reduce int `json:"reduce"`
	Width  int `json:"width"`
	Height int `json:"height"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	img, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	p := img.Params()
	kernel := "9x7"
	if p.Kernel == dwt.Rev53 {
		kernel = "5x3"
	}
	info := infoResponse{
		ID: img.ID, Width: p.Width, Height: p.Height,
		TileW: p.TileW, TileH: p.TileH, Tiles: img.Index.NumTiles(),
		Components: p.Components(), MCT: p.MCT,
		Levels: p.Levels, Layers: p.Layers, BitDepth: p.BitDepth,
		Kernel: kernel, Bytes: len(img.Data), PacketBytes: img.Index.TotalBytes(),
	}
	for d := 0; d <= p.Levels; d++ {
		colW, rowH := img.Grid(d)
		info.Reductions = append(info.Reductions, sizeInfo{
			Reduce: d, Width: colW[len(colW)-1], Height: rowH[len(rowH)-1],
		})
	}
	s.writeJSON(w, info)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedRequest(w)
		return
	}
	defer s.release()
	img, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	layers, err := queryInt(r, "layers", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	layers = img.ClampLayers(layers)
	cs := img.Index.CodestreamPrefix(layers)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PJ2K-Layers", strconv.Itoa(layers))
	if _, err := w.Write(cs); err != nil {
		s.errors.Add(1)
	}
}

// handleHealthz is liveness: the process answers requests at all.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 while the admission semaphore is full, so a
// load balancer routes around a saturated instance before requests get shed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.inflight != nil && len(s.inflight) >= cap(s.inflight) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "at capacity", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// statsResponse is the /stats payload.
type statsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Images        int          `json:"images"`
	Requests      int64        `json:"requests"`
	Errors        int64        `json:"errors"`
	TileDecodes   int64        `json:"tile_decodes"`
	Shed          int64        `json:"shed"`
	Panics        int64        `json:"panics"`
	Timeouts      int64        `json:"timeouts"`
	InFlight      int          `json:"in_flight"`
	MaxInFlight   int          `json:"max_in_flight"`
	Resilient     bool         `json:"resilient"`
	Damage        damageCounts `json:"damage"`
	Cache         CacheStats   `json:"cache"`
}

// damageCounts aggregates what resilient tile decodes had to conceal.
type damageCounts struct {
	DamagedTiles    int64 `json:"damaged_tiles"`
	PacketsLost     int64 `json:"packets_lost"`
	BlocksConcealed int64 `json:"blocks_concealed"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	inflight, maxInflight := 0, 0
	if s.inflight != nil {
		inflight, maxInflight = len(s.inflight), cap(s.inflight)
	}
	s.writeJSON(w, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Images:        s.store.Len(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		TileDecodes:   s.TileDecodes(),
		Shed:          s.shed.Load(),
		Panics:        s.panics.Load(),
		Timeouts:      s.timeouts.Load(),
		InFlight:      inflight,
		MaxInFlight:   maxInflight,
		Resilient:     s.opts.Resilient,
		Damage: damageCounts{
			DamagedTiles:    s.damagedTiles.Load(),
			PacketsLost:     s.packetsLost.Load(),
			BlocksConcealed: s.blocksConcealed.Load(),
		},
		Cache: s.cache.Stats(),
	})
}

// writeJSON emits a JSON body, counting encode/write failures (a client that
// disconnected mid-response) so /stats stays truthful — the PGM/PPM paths
// already count their write errors; the JSON and raw paths must too.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.errors.Add(1)
	}
}
