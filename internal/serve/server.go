package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
	"pj2k/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// CacheBytes is the decoded-tile cache budget: 0 uses DefaultCacheBytes,
	// negative disables caching (every request decodes; concurrent misses
	// are still deduplicated in flight).
	CacheBytes int64
	// TileWorkers bounds the parallelism of one tile decode. The default 1
	// is right for servers: concurrency comes from concurrent requests, and
	// single-worker tile decodes keep per-request CPU bounded.
	TileWorkers int
	// MaxPixels rejects region requests larger than this many output pixels
	// (protects against accidental whole-gigapixel fetches); <= 0 uses
	// DefaultMaxPixels.
	MaxPixels int64
	// Timeout bounds each decode-bearing request: past it the request fails
	// with 504 and the decode pipeline stops at its next stage boundary.
	// 0 means unbounded.
	Timeout time.Duration
	// MaxInFlight bounds concurrently admitted decode-bearing requests
	// (/img/{id} and /img/{id}/stream); excess load is shed with
	// 503 + Retry-After instead of queueing without bound. 0 uses
	// DefaultMaxInFlight, negative disables shedding.
	MaxInFlight int
	// Resilient decodes tiles in best-effort mode: damaged codestreams
	// degrade into partially-concealed tiles and damage counters in /stats
	// instead of failing the request.
	Resilient bool
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ so a live
	// server can be CPU/heap/goroutine-profiled under load. Off by default:
	// profiles expose internals and cost CPU while running.
	Pprof bool
	// IORetries is the per-read retry count for reader-backed sources: a
	// transient ReadAt failure (timeout, Temporary error, short read) retries
	// with exponential backoff before the tile decode sees it. 0 uses
	// DefaultIORetries, negative disables retries.
	IORetries int
	// IOReadTimeout bounds each source read; a stalled ReaderAt is abandoned
	// past it (and the attempt counts as transient, so retries apply).
	// 0 disables the per-read deadline.
	IOReadTimeout time.Duration
	// IORetryBudget caps the total retries one request may spend across all
	// of its tile reads, so a degraded image cannot multiply request latency
	// by retries x tiles. 0 uses DefaultIORetryBudget, negative is unlimited.
	IORetryBudget int
	// QuarantineAfter takes an image out of service (503 + Retry-After, with
	// background re-probe until its source reads again) after this many
	// consecutive IO-failed decodes. 0 uses DefaultQuarantineAfter, negative
	// disables quarantine.
	QuarantineAfter int
	// ProbeInterval is the quarantine re-probe cadence (and the Retry-After
	// hint quarantined requests carry). 0 uses DefaultProbeInterval.
	ProbeInterval time.Duration
}

// Defaults for Options zero values.
const (
	DefaultCacheBytes      = 256 << 20
	DefaultMaxPixels       = 64 << 20
	DefaultMaxInFlight     = 64
	DefaultIORetries       = 2
	DefaultIORetryBudget   = 32
	DefaultQuarantineAfter = 3
	DefaultProbeInterval   = time.Second
)

// Server answers progressive image requests over HTTP:
//
//	GET /img/{id}?x0=&y0=&x1=&y1=&reduce=&layers=&format=pgm|ppm|raw
//	    Decode a window at a resolution/quality. Coordinates address the
//	    reduced grid (the pixel grid of the image at that reduce level);
//	    omitted coordinates mean the full image. The response defaults to
//	    binary PGM (P5) for grayscale streams and binary PPM (P6) for
//	    three-component (color) streams, or headerless big-endian planar
//	    samples with format=raw.
//	GET /img/{id}/info
//	    JSON geometry: size per reduce level, tile grid, layers, byte costs.
//	GET /img/{id}/stream?layers=N
//	    A valid JPEG2000 codestream truncated to the first N quality layers,
//	    sliced from the packet index without decoding — progressive refinement
//	    for clients that decode locally.
//	GET /stats
//	    JSON server and cache counters.
//
// Region pixels are assembled from per-tile decodes that pass through the
// tile cache, so a hot viewport costs memory copies, not tier-1 decoding.
type Server struct {
	store *Store
	cache *Cache
	opts  Options
	mux   *http.ServeMux

	pool     *core.Pool    // resident decode workers shared by every request
	decoders sync.Pool     // *jp2k.Decoder, pooled across requests
	inflight chan struct{} // admission semaphore; nil disables shedding

	// IO fault tolerance: the resolved retry count, the shared source-read
	// counters, and the quarantine machinery's lifecycle plumbing.
	ioRetries  int
	ioc        *t2.IOCounters
	done       chan struct{} // closed by Close; stops quarantine probes
	closeOnce  sync.Once
	probeWG    sync.WaitGroup // running probeLoop goroutines
	quarActive atomic.Int64   // images currently quarantined (gauge)

	// panicHook, when set (tests), observes the recovered value of every
	// handler panic after the 500 has been written.
	panicHook func(any)

	started time.Time

	// Telemetry: every server counter lives on the registry (one atomic
	// instrument each, exposed by both /stats and /metrics), the codec
	// metrics handle is shared by every pooled decoder, and the per-request
	// latency histograms split by outcome.
	reg         *telemetry.Registry
	codec       *jp2k.CodecMetrics
	requests    *telemetry.Counter
	errors      *telemetry.Counter
	tileDecodes *telemetry.Counter
	shed        *telemetry.Counter
	panics      *telemetry.Counter
	timeouts    *telemetry.Counter
	// Damage counters, moved only by resilient tile decodes.
	damagedTiles    *telemetry.Counter
	packetsLost     *telemetry.Counter
	blocksConcealed *telemetry.Counter
	// IO fault and quarantine counters.
	ioUnreadableTiles    *telemetry.Counter
	quarantines          *telemetry.Counter
	quarantineRecoveries *telemetry.Counter
	quarantinedReqs      *telemetry.Counter
	latency              [numOutcomes]*telemetry.Histogram
}

// reqOutcome classifies one region request for the latency histograms. The
// order is a severity ranking: a request touching many tiles reports the
// most severe per-tile outcome (miss > coalesced > hit), with damage,
// timeouts and shedding overriding.
type reqOutcome int

const (
	outcomeHit         reqOutcome = iota // every tile served from cache
	outcomeCoalesced                     // waited on another request's decode
	outcomeMiss                          // at least one tile decoded here
	outcomeDamaged                       // a decode concealed damage (resilient mode)
	outcomeShed                          // rejected at the admission gate (503)
	outcomeQuarantined                   // rejected because the image is quarantined (503)
	outcomeTimeout                       // server-side deadline expired (504)
	outcomeError                         // any other failure
	numOutcomes
)

// outcomeNames are the /metrics label values, index-aligned with reqOutcome.
var outcomeNames = [numOutcomes]string{
	"hit", "coalesced", "miss", "damaged", "shed", "quarantined", "timeout", "error",
}

// New returns a Server over the given store. The server owns one persistent
// worker pool shared by every request's tile decodes — concurrent requests
// multiplex onto the same resident workers instead of each fanning out its
// own goroutines; Close releases them.
func New(store *Store, opts Options) *Server {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	if opts.TileWorkers <= 0 {
		opts.TileWorkers = 1
	}
	if opts.MaxPixels <= 0 {
		opts.MaxPixels = DefaultMaxPixels
	}
	s := &Server{
		store:   store,
		cache:   NewCache(opts.CacheBytes),
		opts:    opts,
		mux:     http.NewServeMux(),
		pool:    core.NewPool(0),
		started: time.Now(),
		ioc:     &t2.IOCounters{},
		done:    make(chan struct{}),
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.opts = opts
	switch {
	case opts.IORetries < 0:
		s.ioRetries = 0
	case opts.IORetries == 0:
		s.ioRetries = DefaultIORetries
	default:
		s.ioRetries = opts.IORetries
	}
	s.initTelemetry()
	s.decoders.New = func() any {
		d := jp2k.NewDecoderWithPool(s.pool)
		d.Metrics = s.codec
		return d
	}
	s.mux.HandleFunc("GET /img/{id}", s.handleRegion)
	s.mux.HandleFunc("GET /img/{id}/info", s.handleInfo)
	s.mux.HandleFunc("GET /img/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if opts.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// initTelemetry builds the server's metric registry: request/error/damage
// counters, the outcome-split latency histograms, the codec pipeline
// histograms recorded by every pooled decoder, and read-through gauges over
// the worker pool, the tile cache and the admission semaphore. Everything
// /stats reports and /metrics exposes comes from here — there is exactly one
// copy of every counter.
func (s *Server) initTelemetry() {
	r := telemetry.NewRegistry()
	s.reg = r
	s.codec = jp2k.NewCodecMetrics(r)
	s.requests = r.Counter("pj2k_requests_total", "HTTP requests received.")
	s.errors = r.Counter("pj2k_request_errors_total", "Requests that failed or could not write their response.")
	s.tileDecodes = r.Counter("pj2k_tile_decodes_total", "Tile decodes performed (cache misses reaching the codec).")
	s.shed = r.Counter("pj2k_shed_total", "Requests shed at the admission gate (503 + Retry-After).")
	s.panics = r.Counter("pj2k_handler_panics_total", "Handler panics recovered into 500s.")
	s.timeouts = r.Counter("pj2k_timeouts_total", "Requests past the server-side deadline (504).")
	s.damagedTiles = r.Counter("pj2k_damaged_tiles_total", "Tiles decoded with concealed damage (resilient mode).")
	s.packetsLost = r.Counter("pj2k_packets_lost_total", "Packets lost to damage across resilient tile decodes.")
	s.blocksConcealed = r.Counter("pj2k_blocks_concealed_total", "Code-blocks concealed across resilient tile decodes.")
	s.ioUnreadableTiles = r.Counter("pj2k_io_unreadable_tiles_total", "Tiles concealed because their bodies could not be read (resilient mode).")
	s.quarantines = r.Counter("pj2k_quarantines_total", "Images quarantined after consecutive IO-failed decodes.")
	s.quarantineRecoveries = r.Counter("pj2k_quarantine_recoveries_total", "Quarantined images whose source probe succeeded again.")
	s.quarantinedReqs = r.Counter("pj2k_quarantined_requests_total", "Requests rejected because their image was quarantined (503).")
	r.GaugeFunc("pj2k_quarantined_images", "Images currently quarantined.", func() int64 { return s.quarActive.Load() })
	r.CounterFunc("pj2k_io_read_attempts_total", "Source read attempts issued through the resilient IO layer.",
		func() int64 { return s.ioc.Reads.Load() })
	r.CounterFunc("pj2k_io_read_retries_total", "Source reads retried after a transient IO failure.",
		func() int64 { return s.ioc.Retries.Load() })
	r.CounterFunc("pj2k_io_read_failures_total", "Source reads that failed permanently or exhausted their retries.",
		func() int64 { return s.ioc.Failures.Load() })
	r.CounterFunc("pj2k_io_read_timeouts_total", "Source reads abandoned at the per-read deadline.",
		func() int64 { return s.ioc.Timeouts.Load() })
	for i := range s.latency {
		s.latency[i] = r.HistogramWithLabels("pj2k_request_seconds",
			telemetry.Labels("outcome", outcomeNames[i]),
			"End-to-end region-request latency by outcome.")
	}
	r.GaugeFunc("pj2k_pool_workers", "Resident decode-pool worker goroutines.",
		func() int64 { return int64(s.pool.Stats().Workers) })
	r.GaugeFunc("pj2k_pool_queue_depth", "Batch shares queued on the decode pool and not yet claimed.",
		func() int64 { return int64(s.pool.Stats().QueueDepth) })
	r.GaugeFunc("pj2k_pool_in_flight", "Dispatch barriers currently executing on the decode pool.",
		func() int64 { return s.pool.Stats().InFlight })
	r.CounterFunc("pj2k_pool_dispatches_total", "Dispatch barriers completed by the decode pool.",
		func() int64 { return s.pool.Stats().Dispatches })
	r.CounterFunc("pj2k_pool_dispatch_wait_nanoseconds_total", "Cumulative wall time spent inside decode-pool dispatch barriers.",
		func() int64 { return s.pool.Stats().WaitNanos })
	r.CounterFunc("pj2k_cache_hits_total", "Tile cache hits.", func() int64 { return s.cache.Stats().Hits })
	r.CounterFunc("pj2k_cache_misses_total", "Tile cache misses.", func() int64 { return s.cache.Stats().Misses })
	r.CounterFunc("pj2k_cache_coalesced_total", "Lookups coalesced onto an in-flight decode.",
		func() int64 { return s.cache.Stats().Coalesced })
	r.CounterFunc("pj2k_cache_evictions_total", "Tile cache evictions.", func() int64 { return s.cache.Stats().Evictions })
	r.GaugeFunc("pj2k_cache_bytes", "Bytes of decoded tiles resident in the cache.", func() int64 { return s.cache.Stats().Bytes })
	r.GaugeFunc("pj2k_cache_entries", "Decoded tiles resident in the cache.", func() int64 { return int64(s.cache.Stats().Entries) })
	r.GaugeFunc("pj2k_inflight_requests", "Decode-bearing requests currently admitted.",
		func() int64 {
			if s.inflight == nil {
				return 0
			}
			return int64(len(s.inflight))
		})
	r.GaugeFunc("pj2k_images", "Images in the store.", func() int64 { return int64(s.store.Len()) })
	r.GaugeFunc("pj2k_uptime_seconds", "Seconds since the server started.",
		func() int64 { return int64(time.Since(s.started).Seconds()) })
	bi := r.GaugeWithLabels("pj2k_build_info",
		telemetry.Labels("go", runtime.Version(), "revision", buildRevision()), "Build information (constant 1).")
	bi.Set(1)
}

// buildRevision extracts the VCS revision baked into the binary, "unknown"
// when built without VCS stamping (go test, plain go run).
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				if len(kv.Value) > 12 {
					return kv.Value[:12]
				}
				return kv.Value
			}
		}
	}
	return "unknown"
}

// Close stops the quarantine probe loops, waits for them to exit, and
// releases the server's worker pool. It must only be called once no request
// is in flight (after the HTTP server has shut down) — and before
// Store.Close, so no probe ever reads a closed source.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.probeWG.Wait()
		s.pool.Close()
	})
}

// Cache exposes the tile cache (for tests and ops tooling).
func (s *Server) Cache() *Cache { return s.cache }

// TileDecodes returns the number of tile decodes performed so far; requests
// served entirely from cache do not move it.
func (s *Server) TileDecodes() int64 { return s.tileDecodes.Value() }

// Registry exposes the server's metric registry (for tests and for embedding
// servers that scrape programmatically).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ServeHTTP implements http.Handler. A panicking handler is converted into a
// 500 (when the response has not started) plus a counter instead of relying
// on net/http to kill the connection — the server, its worker pool and its
// cache stay usable, and /stats shows that it happened.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Inc()
			s.errors.Inc()
			http.Error(w, "internal error", http.StatusInternalServerError)
			if s.panicHook != nil {
				s.panicHook(rec)
			}
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// admit reserves an admission slot, reporting false when the server is at
// capacity (the caller sheds the request). release must be called for every
// successful admit.
func (s *Server) admit() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// shedRequest answers an over-capacity request: 503 with a Retry-After hint,
// counted separately from ordinary errors.
func (s *Server) shedRequest(w http.ResponseWriter) {
	s.shed.Inc()
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusServiceUnavailable, "server at capacity; retry shortly")
}

// requestCtx derives the work-bounding context of one request: the client's
// (cancelled on disconnect) plus the server-side deadline when configured.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.Timeout)
	}
	return r.Context(), func() {}
}

// failCtx maps a context-ended decode to its status: 504 for the server-side
// deadline, 503 for a client that went away (nobody reads the body either
// way). It returns the request outcome for the latency histograms.
func (s *Server) failCtx(w http.ResponseWriter, err error) reqOutcome {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Inc()
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return outcomeTimeout
	}
	s.fail(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
	return outcomeError
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Inc()
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// queryInt parses an integer query parameter, using def when absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

// decodeTile produces one cached tile variant (every component), charging the
// decode counter. The context bounds the decode between pipeline stages; in
// resilient mode damage is absorbed into the server's counters and the
// degraded tile is served (and cached) like any other — the damaged return
// reports it so the request can be classified. The pooled decoder carries the
// server's codec metrics, so every tile decode also lands in the per-stage
// pipeline histograms.
func (s *Server) decodeTile(ctx context.Context, img *Image, budget *t2.RetryBudget, colW, rowH []int, tx, ty, discard, layers int) (pl *raster.Planar, damaged bool, err error) {
	s.tileDecodes.Inc()
	dec := s.decoders.Get().(*jp2k.Decoder)
	defer s.decoders.Put(dec)
	region := jp2k.Rect{X0: colW[tx], Y0: rowH[ty], X1: colW[tx+1], Y1: rowH[ty+1]}
	pl, err = dec.DecodeRegionPlanarSource(s.requestSource(img, budget), region, jp2k.DecodeOptions{
		DiscardLevels: discard,
		MaxLayers:     layers,
		Workers:       s.opts.TileWorkers,
		VertMode:      dwt.VertBlocked,
		Resilient:     s.opts.Resilient,
		Ctx:           ctx,
	})
	// Per-image IO health: a decode that failed on (or concealed) unreadable
	// source bytes counts against the image; a decode that read cleanly
	// resets the streak. Context cancellations are the client's, not the
	// source's, and move nothing.
	ioFailed := err != nil && t2.IsIOError(err)
	if err == nil && s.opts.Resilient {
		if dmg := dec.Damage(); dmg.Damaged() {
			t := dmg.Totals()
			damaged = true
			s.damagedTiles.Inc()
			s.packetsLost.Add(int64(t.PacketsLost))
			s.blocksConcealed.Add(int64(t.BlocksConcealed))
			if t.IOUnreadable > 0 {
				s.ioUnreadableTiles.Add(int64(t.IOUnreadable))
				ioFailed = true
			}
		}
	}
	if ioFailed {
		s.noteIOFailure(img, err)
	} else if err == nil {
		s.noteIOSuccess(img)
	}
	return pl, damaged, err
}

func (s *Server) handleRegion(w http.ResponseWriter, r *http.Request) {
	// Outcome classification for the latency histograms: every return path
	// below leaves its verdict in outcome; the deferred observe records the
	// end-to-end latency under it (including panics, as outcomeError).
	start := time.Now()
	outcome := outcomeError
	defer func() { s.latency[outcome].Observe(time.Since(start)) }()
	if !s.admit() {
		outcome = outcomeShed
		s.shedRequest(w)
		return
	}
	defer s.release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	img, ok, err := s.store.Lookup(ctx, r.PathValue("id"))
	if err != nil {
		outcome = s.failCtx(w, err)
		return
	}
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	if s.isQuarantined(img) {
		outcome = outcomeQuarantined
		s.rejectQuarantined(w, img.ID)
		return
	}
	discard, err1 := queryInt(r, "reduce", 0)
	layers, err2 := queryInt(r, "layers", 0)
	for _, err := range []error{err1, err2} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	discard = img.ClampDiscard(discard)
	layers = img.ClampLayers(layers)
	colW, rowH := img.Grid(discard)
	ntx, nty := len(colW)-1, len(rowH)-1
	fullW, fullH := colW[ntx], rowH[nty]

	x0, err1 := queryInt(r, "x0", 0)
	y0, err2 := queryInt(r, "y0", 0)
	x1, err3 := queryInt(r, "x1", fullW)
	y1, err4 := queryInt(r, "y1", fullH)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	win := jp2k.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}.
		Intersect(jp2k.Rect{X1: fullW, Y1: fullH})
	if win.Empty() {
		s.fail(w, http.StatusBadRequest,
			"empty window [%d,%d)x[%d,%d) of %dx%d at reduce=%d", x0, x1, y0, y1, fullW, fullH, discard)
		return
	}
	if int64(win.Dx())*int64(win.Dy()) > s.opts.MaxPixels {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"window %dx%d exceeds the %d-pixel limit; raise reduce=", win.Dx(), win.Dy(), s.opts.MaxPixels)
		return
	}

	// Assemble the window from cached per-tile decodes, every component. The
	// request's outcome aggregates the per-tile cache outcomes (worst wins);
	// a damaged resilient decode overrides them all.
	ncomp := img.Params().Components()
	out := raster.NewPlanar(win.Dx(), win.Dy(), ncomp)
	agg := outcomeHit
	damaged := false
	budget := s.newRequestBudget()
	var tiles []int
	for ty := 0; ty < nty; ty++ {
		if rowH[ty+1] <= win.Y0 || rowH[ty] >= win.Y1 {
			continue
		}
		for tx := 0; tx < ntx; tx++ {
			if colW[tx+1] <= win.X0 || colW[tx] >= win.X1 {
				continue
			}
			tiles = append(tiles, ty*ntx+tx)
			key := TileKey{Image: img.ID, TX: tx, TY: ty, Discard: discard, Layers: layers}
			tile, co, err := s.cache.GetOrDecode(ctx, key, func() (*raster.Planar, error) {
				pl, dmg, err := s.decodeTile(ctx, img, budget, colW, rowH, tx, ty, discard, layers)
				if dmg {
					damaged = true
				}
				return pl, err
			})
			switch co {
			case OutcomeMiss:
				agg = max(agg, outcomeMiss)
			case OutcomeCoalesced:
				agg = max(agg, outcomeCoalesced)
			}
			if err != nil {
				if ctx.Err() != nil {
					outcome = s.failCtx(w, ctx.Err())
				} else {
					s.fail(w, http.StatusInternalServerError, "tile (%d,%d): %v", tx, ty, err)
				}
				return
			}
			lx0, ly0 := max(win.X0-colW[tx], 0), max(win.Y0-rowH[ty], 0)
			lx1, ly1 := min(win.X1-colW[tx], tile.Width()), min(win.Y1-rowH[ty], tile.Height())
			ox, oy := colW[tx]+lx0-win.X0, rowH[ty]+ly0-win.Y0
			for ci := 0; ci < ncomp; ci++ {
				src, dst := tile.Comps[ci], out.Comps[ci]
				for y := ly0; y < ly1; y++ {
					copy(dst.Pix[(oy+y-ly0)*dst.Stride+ox:(oy+y-ly0)*dst.Stride+ox+lx1-lx0],
						src.Pix[y*src.Stride+lx0:y*src.Stride+lx1])
				}
			}
		}
	}

	if damaged {
		agg = outcomeDamaged
	}
	outcome = agg

	// The packet-byte cost of this window per the index (all components):
	// what a byte-range transport (JPIP-style) would have shipped instead of
	// pixels.
	w.Header().Set("X-PJ2K-Packet-Bytes", strconv.Itoa(img.Index.RegionBytes(tiles, discard, layers)))
	maxval := 255
	if bd := img.Params().BitDepth; bd > 8 {
		maxval = 1<<uint(bd) - 1
	}
	format := r.URL.Query().Get("format")
	if format == "" { // grayscale defaults to PGM, color to PPM, anything else to raw
		switch ncomp {
		case 1:
			format = "pgm"
		case 3:
			format = "ppm"
		default:
			format = "raw"
		}
	}
	switch format {
	case "pgm":
		if ncomp != 1 {
			outcome = outcomeError
			s.fail(w, http.StatusBadRequest, "format=pgm needs 1 component, image has %d (use ppm or raw)", ncomp)
			return
		}
		if maxval == 255 {
			out.ClampTo8()
		}
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		if err := raster.WritePGM(w, out.Comps[0], maxval); err != nil {
			s.errors.Inc()
			return
		}
	case "ppm":
		if ncomp != 3 {
			outcome = outcomeError
			s.fail(w, http.StatusBadRequest, "format=ppm needs 3 components, image has %d", ncomp)
			return
		}
		if maxval == 255 {
			out.ClampTo8()
		}
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		if err := raster.WritePPM(w, out, maxval); err != nil {
			s.errors.Inc()
			return
		}
	case "raw":
		// Headerless samples in planar component order: 1 byte/sample when
		// every sample fits a byte (maxval <= 255), big-endian 2 bytes/sample
		// otherwise. X-PJ2K-Max-Value tells the client which — without it a
		// raw payload is uninterpretable (the old responses always wrote two
		// bytes but never said so, and wasted half the bytes of 8-bit images).
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-PJ2K-Width", strconv.Itoa(out.Width()))
		w.Header().Set("X-PJ2K-Height", strconv.Itoa(out.Height()))
		w.Header().Set("X-PJ2K-Components", strconv.Itoa(ncomp))
		w.Header().Set("X-PJ2K-Max-Value", strconv.Itoa(maxval))
		wide := maxval > 255
		width := 1
		if wide {
			width = 2
		}
		buf := make([]byte, 0, out.Width()*out.Height()*ncomp*width)
		for _, comp := range out.Comps {
			for y := 0; y < comp.Height; y++ {
				for _, v := range comp.Row(y) {
					if v < 0 {
						v = 0
					} else if v > int32(maxval) {
						v = int32(maxval)
					}
					if wide {
						buf = append(buf, byte(v>>8), byte(v))
					} else {
						buf = append(buf, byte(v))
					}
				}
			}
		}
		if _, err := w.Write(buf); err != nil {
			s.errors.Inc()
		}
	default:
		outcome = outcomeError
		s.fail(w, http.StatusBadRequest, "unknown format %q", format)
	}
}

// infoResponse is the /img/{id}/info payload.
type infoResponse struct {
	ID          string     `json:"id"`
	Width       int        `json:"width"`
	Height      int        `json:"height"`
	TileW       int        `json:"tile_w"`
	TileH       int        `json:"tile_h"`
	Tiles       int        `json:"tiles"`
	Components  int        `json:"components"`
	MCT         bool       `json:"mct"`
	Levels      int        `json:"levels"`
	Layers      int        `json:"layers"`
	BitDepth    int        `json:"bit_depth"`
	Kernel      string     `json:"kernel"`
	Bytes       int        `json:"bytes"`
	PacketBytes int        `json:"packet_bytes"`
	Reductions  []sizeInfo `json:"reductions"`
}

type sizeInfo struct {
	Reduce int `json:"reduce"`
	Width  int `json:"width"`
	Height int `json:"height"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	img, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	// Info forces every tile's packet map (TotalBytes) — reads the whole
	// tile-part chain — so a quarantined source is rejected here too.
	if s.isQuarantined(img) {
		s.rejectQuarantined(w, img.ID)
		return
	}
	p := img.Params()
	kernel := "9x7"
	if p.Kernel == dwt.Rev53 {
		kernel = "5x3"
	}
	info := infoResponse{
		ID: img.ID, Width: p.Width, Height: p.Height,
		TileW: p.TileW, TileH: p.TileH, Tiles: img.Index.NumTiles(),
		Components: p.Components(), MCT: p.MCT,
		Levels: p.Levels, Layers: p.Layers, BitDepth: p.BitDepth,
		Kernel: kernel, Bytes: int(img.Size()), PacketBytes: img.Index.TotalBytes(),
	}
	for d := 0; d <= p.Levels; d++ {
		colW, rowH := img.Grid(d)
		info.Reductions = append(info.Reductions, sizeInfo{
			Reduce: d, Width: colW[len(colW)-1], Height: rowH[len(rowH)-1],
		})
	}
	s.writeJSON(w, info)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedRequest(w)
		return
	}
	defer s.release()
	img, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown image %q", r.PathValue("id"))
		return
	}
	if s.isQuarantined(img) {
		s.rejectQuarantined(w, img.ID)
		return
	}
	layers, err := queryInt(r, "layers", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	layers = img.ClampLayers(layers)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PJ2K-Layers", strconv.Itoa(layers))
	// WritePrefix streams the truncated codestream straight to the response:
	// no whole-prefix buffer, tile layer prefixes are written as they are
	// indexed. Header and body errors alike land in the error counter — the
	// status line is already gone, so counting is all that's left to do.
	if _, err := img.Index.WritePrefix(w, layers); err != nil {
		s.errors.Inc()
	}
}

// handleHealthz is liveness: the process answers requests at all.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 while the admission semaphore is full, so a
// load balancer routes around a saturated instance before requests get shed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.inflight != nil && len(s.inflight) >= cap(s.inflight) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "at capacity", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// statsResponse is the /stats payload: the raw counters plus the percentile
// digests of the latency histograms /metrics exposes as buckets, uptime and
// build identity.
type statsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	GoVersion     string       `json:"go_version"`
	Revision      string       `json:"revision"`
	Images        int          `json:"images"`
	Requests      int64        `json:"requests"`
	Errors        int64        `json:"errors"`
	TileDecodes   int64        `json:"tile_decodes"`
	Shed          int64        `json:"shed"`
	Panics        int64        `json:"panics"`
	Timeouts      int64        `json:"timeouts"`
	InFlight      int          `json:"in_flight"`
	MaxInFlight   int          `json:"max_in_flight"`
	Resilient     bool         `json:"resilient"`
	Damage        damageCounts `json:"damage"`
	IO            ioCounts     `json:"io"`
	Quarantine    quarCounts   `json:"quarantine"`
	Cache         CacheStats   `json:"cache"`

	// RequestLatency digests the per-outcome end-to-end region-request
	// histograms (p50/p90/p99 in milliseconds); outcomes with no requests
	// yet are omitted.
	RequestLatency map[string]telemetry.LatencySummary `json:"request_latency"`
	// DecodeStages digests the codec's per-stage decode histograms — where
	// tile-decode time went (parse/t2/t1/idwt/intercomp).
	DecodeStages map[string]telemetry.LatencySummary `json:"decode_stage_latency"`
	Pool         poolStatsJSON                       `json:"pool"`
}

// poolStatsJSON is the /stats view of core.PoolStats.
type poolStatsJSON struct {
	Workers        int     `json:"workers"`
	QueueDepth     int     `json:"queue_depth"`
	InFlight       int64   `json:"in_flight"`
	Dispatches     int64   `json:"dispatches"`
	DispatchWaitMS float64 `json:"dispatch_wait_ms"`
}

// damageCounts aggregates what resilient tile decodes had to conceal.
type damageCounts struct {
	DamagedTiles      int64 `json:"damaged_tiles"`
	PacketsLost       int64 `json:"packets_lost"`
	BlocksConcealed   int64 `json:"blocks_concealed"`
	IOUnreadableTiles int64 `json:"io_unreadable_tiles"`
}

// ioCounts is the /stats view of the resilient source-read layer.
type ioCounts struct {
	ReadAttempts int64 `json:"read_attempts"`
	ReadRetries  int64 `json:"read_retries"`
	ReadFailures int64 `json:"read_failures"`
	ReadTimeouts int64 `json:"read_timeouts"`
}

// quarCounts is the /stats view of the image quarantine lifecycle.
type quarCounts struct {
	Active           int64 `json:"active"`
	Total            int64 `json:"total"`
	Recoveries       int64 `json:"recoveries"`
	RejectedRequests int64 `json:"rejected_requests"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	inflight, maxInflight := 0, 0
	if s.inflight != nil {
		inflight, maxInflight = len(s.inflight), cap(s.inflight)
	}
	lat := make(map[string]telemetry.LatencySummary, numOutcomes)
	for i, h := range s.latency {
		if sum := telemetry.Summary(h); sum.Count > 0 {
			lat[outcomeNames[i]] = sum
		}
	}
	stages := make(map[string]telemetry.LatencySummary, jp2k.NumDecStages)
	for i, name := range jp2k.DecStageNames {
		if sum := telemetry.Summary(s.codec.DecodeStages[i]); sum.Count > 0 {
			stages[name] = sum
		}
	}
	ps := s.pool.Stats()
	s.writeJSON(w, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		Images:        s.store.Len(),
		Requests:      s.requests.Value(),
		Errors:        s.errors.Value(),
		TileDecodes:   s.TileDecodes(),
		Shed:          s.shed.Value(),
		Panics:        s.panics.Value(),
		Timeouts:      s.timeouts.Value(),
		InFlight:      inflight,
		MaxInFlight:   maxInflight,
		Resilient:     s.opts.Resilient,
		Damage: damageCounts{
			DamagedTiles:      s.damagedTiles.Value(),
			PacketsLost:       s.packetsLost.Value(),
			BlocksConcealed:   s.blocksConcealed.Value(),
			IOUnreadableTiles: s.ioUnreadableTiles.Value(),
		},
		IO: ioCounts{
			ReadAttempts: s.ioc.Reads.Load(),
			ReadRetries:  s.ioc.Retries.Load(),
			ReadFailures: s.ioc.Failures.Load(),
			ReadTimeouts: s.ioc.Timeouts.Load(),
		},
		Quarantine: quarCounts{
			Active:           s.quarActive.Load(),
			Total:            s.quarantines.Value(),
			Recoveries:       s.quarantineRecoveries.Value(),
			RejectedRequests: s.quarantinedReqs.Value(),
		},
		Cache:          s.cache.Stats(),
		RequestLatency: lat,
		DecodeStages:   stages,
		Pool: poolStatsJSON{
			Workers:        ps.Workers,
			QueueDepth:     ps.QueueDepth,
			InFlight:       ps.InFlight,
			Dispatches:     ps.Dispatches,
			DispatchWaitMS: float64(ps.WaitNanos) / 1e6,
		},
	})
}

// handleMetrics serves the registry in the Prometheus text exposition format
// — the scrape endpoint. No client library involved: the format is emitted
// directly (see telemetry.WritePrometheus).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.errors.Inc()
	}
}

// writeJSON emits a JSON body, counting encode/write failures (a client that
// disconnected mid-response) so /stats stays truthful — the PGM/PPM paths
// already count their write errors; the JSON and raw paths must too.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.errors.Inc()
	}
}
