package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

func colorTestStream(t testing.TB) []byte {
	t.Helper()
	pl := raster.RGB(
		raster.Synthetic(230, 190, 201),
		raster.Synthetic(230, 190, 202),
		raster.Synthetic(230, 190, 203),
	)
	cs, _, err := jp2k.EncodePlanar(pl, jp2k.Options{
		Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{0.75, 3.0},
		TileW: 96, TileH: 80, Levels: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func fetchPPM(t *testing.T, ts *httptest.Server, path string) *raster.Planar {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: %d: %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/x-portable-pixmap" {
		t.Fatalf("%s: content type %q", path, ct)
	}
	pl, _, err := raster.ReadPPM(resp.Body)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return pl
}

// TestServerColorRegionMatchesDecode is the color-serving acceptance check:
// windows of a Csiz=3 stream, served as PPM through the tile cache, must
// equal cropping a straight DecodePlanar at every reduce level.
func TestServerColorRegionMatchesDecode(t *testing.T) {
	cs := colorTestStream(t)
	store := NewStore()
	if _, err := store.Add("color", cs); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{CacheBytes: 1 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, reduce := range []int{0, 1, 2} {
		full, err := jp2k.DecodePlanar(cs, jp2k.DecodeOptions{DiscardLevels: reduce})
		if err != nil {
			t.Fatal(err)
		}
		full.ClampTo8()
		w, h := full.Width(), full.Height()
		windows := []jp2k.Rect{
			{X0: 0, Y0: 0, X1: w, Y1: h},
			{X0: w / 4, Y0: h / 4, X1: 3 * w / 4, Y1: 3 * h / 4},
			{X0: w - 1, Y0: 0, X1: w, Y1: 1},
		}
		for _, win := range windows {
			path := fmt.Sprintf("/img/color?x0=%d&y0=%d&x1=%d&y1=%d&reduce=%d",
				win.X0, win.Y0, win.X1, win.Y1, reduce)
			got := fetchPPM(t, ts, path)
			if got.Width() != win.Dx() || got.Height() != win.Dy() {
				t.Fatalf("%s: got %dx%d", path, got.Width(), got.Height())
			}
			for ci := 0; ci < 3; ci++ {
				for y := 0; y < got.Height(); y++ {
					for x := 0; x < got.Width(); x++ {
						if got.Comps[ci].At(x, y) != full.Comps[ci].At(win.X0+x, win.Y0+y) {
							t.Fatalf("%s: comp %d pixel (%d,%d) = %d, want %d", path, ci, x, y,
								got.Comps[ci].At(x, y), full.Comps[ci].At(win.X0+x, win.Y0+y))
						}
					}
				}
			}
		}
	}
	// Repeats hit the cache instead of re-decoding.
	before := srv.TileDecodes()
	fetchPPM(t, ts, "/img/color?x0=10&y0=10&x1=100&y1=90")
	after := srv.TileDecodes()
	fetchPPM(t, ts, "/img/color?x0=10&y0=10&x1=100&y1=90")
	if srv.TileDecodes() != after {
		t.Fatal("repeated color window re-decoded tiles")
	}
	_ = before
}

// TestServerColorFormatsAndInfo: format negotiation and the component-aware
// info payload for color streams.
func TestServerColorFormatsAndInfo(t *testing.T) {
	cs := colorTestStream(t)
	store := NewStore()
	if _, err := store.Add("color", cs); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{CacheBytes: 1 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// PGM explicitly requested on a color image is a client error.
	resp, err := ts.Client().Get(ts.URL + "/img/color?format=pgm&x1=20&y1=20")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=pgm on color: status %d, want 400", resp.StatusCode)
	}

	// raw is planar with a component-count header; this 8-bit stream
	// (X-PJ2K-Max-Value 255) packs one byte per sample.
	resp, err = ts.Client().Get(ts.URL + "/img/color?format=raw&x1=20&y1=10")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("format=raw: status %d", resp.StatusCode)
	}
	if c := resp.Header.Get("X-PJ2K-Components"); c != "3" {
		t.Fatalf("X-PJ2K-Components = %q, want 3", c)
	}
	if mv := resp.Header.Get("X-PJ2K-Max-Value"); mv != "255" {
		t.Fatalf("X-PJ2K-Max-Value = %q, want 255", mv)
	}
	if len(raw) != 20*10*3 {
		t.Fatalf("raw payload %d bytes, want %d (1 byte/sample at maxval 255)", len(raw), 20*10*3)
	}

	// info reports the component count and MCT flag.
	resp, err = ts.Client().Get(ts.URL + "/img/color/info")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, frag := range []string{`"components": 3`, `"mct": true`} {
		if !bytes.Contains(body, []byte(frag)) {
			t.Errorf("info response missing %s: %s", frag, body)
		}
	}
}
