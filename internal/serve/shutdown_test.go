package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownOrderingUnderLoad drives long region decodes while the server
// shuts down in production order — http.Server.Shutdown (drain), Server.Close
// (stop probes, release the pool), Store.Close (close the files) — and
// verifies the ordering holds: every admitted request completes with a full
// body, no in-flight decode ever reads a closed file, and nothing panics.
// Run under -race this also exercises the close paths against concurrent
// decodes.
func TestShutdownOrderingUnderLoad(t *testing.T) {
	cs := encodeTest(t, testImage())
	dir := t.TempDir()
	for _, name := range []string{"a.j2k", "b.j2k"} {
		if err := os.WriteFile(filepath.Join(dir, name), cs, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store := NewStore()
	if n, err := store.LoadDir(dir); n != 2 || err != nil {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	srv := New(store, Options{CacheBytes: -1}) // every request decodes from disk
	ts := httptest.NewServer(srv)

	var (
		shuttingDown atomic.Bool
		early        atomic.Int64 // transport errors before shutdown began
		badStatus    atomic.Int64 // non-200 responses
		badBody      atomic.Int64 // 200s whose body did not arrive whole
		closedReads  atomic.Int64 // any response reporting a closed file
		wg           sync.WaitGroup
	)
	paths := []string{
		"/img/a?x0=0&y0=0&x1=96&y1=80&format=raw",
		"/img/b?x0=40&y0=30&x1=200&y1=170&format=raw",
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := ts.Client()
			for n := 0; ; n++ {
				resp, err := client.Get(ts.URL + paths[(i+n)%len(paths)])
				if err != nil {
					// The listener is gone: expected once shutdown started,
					// a failure before that.
					if !shuttingDown.Load() {
						early.Add(1)
					}
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if strings.Contains(string(body), "file already closed") {
					closedReads.Add(1)
					return
				}
				if resp.StatusCode != http.StatusOK {
					badStatus.Add(1)
					return
				}
				if rerr != nil || (resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength) {
					badBody.Add(1)
					return
				}
			}
		}(i)
	}

	time.Sleep(150 * time.Millisecond) // serve real load first
	shuttingDown.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatalf("Store.Close: %v", err)
	}
	wg.Wait()
	ts.Close()

	if v := early.Load(); v != 0 {
		t.Errorf("%d transport errors before shutdown began", v)
	}
	if v := badStatus.Load(); v != 0 {
		t.Errorf("%d non-200 responses under clean load", v)
	}
	if v := badBody.Load(); v != 0 {
		t.Errorf("%d 200 responses with incomplete bodies", v)
	}
	if v := closedReads.Load(); v != 0 {
		t.Errorf("%d responses read a closed file: shutdown ordering is broken", v)
	}
}
