package serve

// Per-image IO health and quarantine: the serving tier's answer to a source
// that stopped reading (failing NFS mount, yanked disk, dead object-store
// shard). Tile decodes report IO success/failure per image; after
// QuarantineAfter consecutive failures the image is quarantined — requests
// answer 503 + Retry-After instead of burning a decode worker on a source
// that will fail anyway — and a background probe re-reads the failing span
// until it succeeds, at which point the image returns to service on its own.

import (
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pj2k/internal/t2"
)

// imageHealth is one image's consecutive-IO-failure state. probeOff/probeLen
// remember the span of the last failed read, so the recovery probe re-reads
// the bytes that actually failed rather than an arbitrary offset.
type imageHealth struct {
	mu          sync.Mutex
	consecFails int
	quarantined bool
	probeOff    int64
	probeLen    int
}

// quarantineAfter resolves the Options knob: 0 means the default, negative
// disables quarantine entirely.
func (s *Server) quarantineAfter() int {
	if s.opts.QuarantineAfter < 0 {
		return 0
	}
	if s.opts.QuarantineAfter == 0 {
		return DefaultQuarantineAfter
	}
	return s.opts.QuarantineAfter
}

// probeInterval resolves the re-probe cadence (also the Retry-After hint).
func (s *Server) probeInterval() time.Duration {
	if s.opts.ProbeInterval > 0 {
		return s.opts.ProbeInterval
	}
	return DefaultProbeInterval
}

// ioPolicy is the per-request retry policy handed to ResilientSource: the
// server-wide retry/deadline knobs plus this request's budget, feeding the
// shared IO counters.
func (s *Server) ioPolicy(budget *t2.RetryBudget) t2.RetryPolicy {
	return t2.RetryPolicy{
		Retries:     s.ioRetries,
		Backoff:     2 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		ReadTimeout: s.opts.IOReadTimeout,
		JitterSeed:  0x7069326b_73657276, // constant: jitter mixes in offset+attempt
		Budget:      budget,
		Counters:    s.ioc,
	}
}

// requestSource returns the source a tile decode should read img through:
// the raw source for resident bytes or when the IO layer is fully disabled,
// otherwise a per-request resilient wrapper carrying the request's budget.
func (s *Server) requestSource(img *Image, budget *t2.RetryBudget) *t2.Source {
	if s.ioRetries <= 0 && s.opts.IOReadTimeout <= 0 {
		return img.src
	}
	return t2.ResilientSource(img.src, s.ioPolicy(budget))
}

// newRequestBudget builds one request's retry budget; nil means unlimited.
func (s *Server) newRequestBudget() *t2.RetryBudget {
	if s.opts.IORetryBudget < 0 {
		return nil
	}
	n := s.opts.IORetryBudget
	if n == 0 {
		n = DefaultIORetryBudget
	}
	return t2.NewRetryBudget(n)
}

// isQuarantined reports whether img is currently quarantined.
func (s *Server) isQuarantined(img *Image) bool {
	img.health.mu.Lock()
	q := img.health.quarantined
	img.health.mu.Unlock()
	return q
}

// rejectQuarantined answers a request for a quarantined image: 503 with the
// probe interval as the Retry-After hint, counted distinctly from shedding.
func (s *Server) rejectQuarantined(w http.ResponseWriter, id string) {
	s.quarantinedReqs.Inc()
	secs := int(s.probeInterval().Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.fail(w, http.StatusServiceUnavailable,
		"image %q quarantined after repeated IO failures; probing for recovery", id)
}

// noteIOSuccess resets img's consecutive-failure streak after a decode that
// read the source cleanly.
func (s *Server) noteIOSuccess(img *Image) {
	h := &img.health
	h.mu.Lock()
	h.consecFails = 0
	h.mu.Unlock()
}

// noteIOFailure records one IO-failed decode against img; crossing the
// quarantine threshold flips the image out of service and starts the
// recovery probe. err (when it wraps a *t2.ReadError) pins the probe to the
// span that failed.
func (s *Server) noteIOFailure(img *Image, err error) {
	threshold := s.quarantineAfter()
	if threshold == 0 {
		return
	}
	h := &img.health
	h.mu.Lock()
	var re *t2.ReadError
	if errors.As(err, &re) {
		h.probeOff, h.probeLen = re.Off, re.Len
	}
	h.consecFails++
	if h.quarantined || h.consecFails < threshold {
		h.mu.Unlock()
		return
	}
	h.quarantined = true
	h.mu.Unlock()
	s.quarantines.Inc()
	s.quarActive.Add(1)
	s.probeWG.Add(1)
	go s.probeLoop(img)
}

// probeLoop re-probes a quarantined image's source until a read succeeds
// (recover and exit) or the server closes. One loop per quarantined image.
func (s *Server) probeLoop(img *Image) {
	defer s.probeWG.Done()
	t := time.NewTicker(s.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if !s.probeOnce(img) {
				continue
			}
			h := &img.health
			h.mu.Lock()
			h.quarantined = false
			h.consecFails = 0
			h.mu.Unlock()
			s.quarActive.Add(-1)
			s.quarantineRecoveries.Inc()
			return
		}
	}
}

// probeOnce issues one cheap liveness read against the span that failed
// (capped at 4 KiB, falling back to the stream head), with no retries — the
// probe itself must stay cheap against a still-dead source.
func (s *Server) probeOnce(img *Image) bool {
	h := &img.health
	h.mu.Lock()
	off, ln := h.probeOff, int64(h.probeLen)
	h.mu.Unlock()
	sz := img.Size()
	if off < 0 || off >= sz {
		off = 0
	}
	if ln <= 0 || ln > 4096 {
		ln = 4096
	}
	if off+ln > sz {
		ln = sz - off
	}
	if ln <= 0 {
		return true
	}
	buf := make([]byte, ln)
	_, err := img.src.ReadAt(buf, off)
	return err == nil
}
