package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
)

func testImage() *raster.Image { return raster.Synthetic(230, 190, 99) }

func encodeTest(t testing.TB, im *raster.Image) []byte {
	t.Helper()
	cs, _, err := jp2k.Encode(im, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0},
		TileW: 96, TileH: 80, Levels: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func newTestServer(t testing.TB, cacheBytes int64) (*Server, []byte) {
	t.Helper()
	cs := encodeTest(t, testImage())
	store := NewStore()
	if _, err := store.Add("test", cs); err != nil {
		t.Fatal(err)
	}
	return New(store, Options{CacheBytes: cacheBytes}), cs
}

// --- Cache unit tests.

func tile(w, h int) *raster.Planar { return raster.Gray(raster.New(w, h)) }

func TestCacheLRUEviction(t *testing.T) {
	// Each 10x10 tile costs 400 + tileOverhead bytes; budget fits two.
	per := int64(400 + tileOverhead)
	c := NewCache(2 * per)
	get := func(id int) {
		_, _, err := c.GetOrDecode(context.Background(), TileKey{Image: "a", TX: id}, func() (*raster.Planar, error) {
			return tile(10, 10), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	get(0)
	get(1)
	get(0) // refresh 0: LRU order is now (0, 1)
	get(2) // evicts 1
	get(0) // hit
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*per {
		t.Fatalf("entries %d bytes %d, want 2 entries %d bytes", st.Entries, st.Bytes, 2*per)
	}
	if st.Evictions != 1 {
		t.Fatalf("%d evictions, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("hits %d misses %d, want 2/3", st.Hits, st.Misses)
	}
	// Tile 1 must re-decode (was evicted), tile 0 must not.
	decoded := 0
	c.GetOrDecode(context.Background(), TileKey{Image: "a", TX: 1}, func() (*raster.Planar, error) {
		decoded++
		return tile(10, 10), nil
	})
	c.GetOrDecode(context.Background(), TileKey{Image: "a", TX: 0}, func() (*raster.Planar, error) {
		decoded++
		return tile(10, 10), nil
	})
	if decoded != 1 {
		t.Fatalf("%d decodes after eviction round, want 1", decoded)
	}
}

// TestCacheBudgetNeverExceeded is the admission-policy regression test: no
// insert may leave the cache over budget. The old admission cached a new
// entry even when it alone exceeded maxBytes (the eviction loop refused to
// evict the entry it had just linked), pinning the cache over budget until
// some later miss happened to shrink it.
func TestCacheBudgetNeverExceeded(t *testing.T) {
	per := int64(400 + tileOverhead) // one 10x10 tile
	c := NewCache(2 * per)
	check := func(when string) {
		t.Helper()
		if st := c.Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("%s: cache %d bytes over budget %d", when, st.Bytes, st.MaxBytes)
		}
	}
	insert := func(key TileKey, w, h int) {
		t.Helper()
		if _, _, err := c.GetOrDecode(context.Background(), key, func() (*raster.Planar, error) { return tile(w, h), nil }); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("after %dx%d insert", w, h))
	}
	insert(TileKey{Image: "a", TX: 0}, 10, 10)
	insert(TileKey{Image: "a", TX: 1}, 10, 10)
	// An entry larger than the whole budget must bypass admission entirely —
	// and must not evict the resident entries to make room for nothing.
	insert(TileKey{Image: "a", TX: 2}, 40, 40)
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*per {
		t.Fatalf("oversized insert disturbed the cache: %d entries, %d bytes; want 2 entries, %d bytes",
			st.Entries, st.Bytes, 2*per)
	}
	// An entry that fits only alone evicts everything else, not nothing.
	insert(TileKey{Image: "a", TX: 3}, 14, 14) // 784+160 bytes < 2*per, > per
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("near-budget insert kept %d entries resident, want 1", st.Entries)
	}
	// The oversized variant decodes every time (never cached) but stays
	// correct and budget-clean.
	insert(TileKey{Image: "a", TX: 2}, 40, 40)
	if st := c.Stats(); st.Misses != 5 {
		t.Fatalf("oversized entry was cached: %d misses, want 5", st.Misses)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(1 << 20)
	fail := true
	decode := func() (*raster.Planar, error) {
		if fail {
			return nil, fmt.Errorf("boom")
		}
		return tile(4, 4), nil
	}
	if _, _, err := c.GetOrDecode(context.Background(), TileKey{Image: "x"}, decode); err == nil {
		t.Fatal("want error")
	}
	fail = false
	if _, _, err := c.GetOrDecode(context.Background(), TileKey{Image: "x"}, decode); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}

// TestCachePanicSafety: a panicking decode must unwedge the key — the
// inflight entry is cleared and waiters are released with an error, so the
// next request can retry instead of blocking forever.
func TestCachePanicSafety(t *testing.T) {
	c := NewCache(1 << 20)
	key := TileKey{Image: "a"}
	func() {
		defer func() { recover() }()
		c.GetOrDecode(context.Background(), key, func() (*raster.Planar, error) { panic("decoder bug") })
		t.Fatal("panic did not propagate")
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrDecode(context.Background(), key, func() (*raster.Planar, error) { return tile(2, 2), nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry after panic failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("key wedged: retry after panic blocked")
	}
}

// TestCacheInvalidateInFlight: invalidating an image while one of its tiles
// is still decoding must keep that (now stale) result out of the cache.
func TestCacheInvalidateInFlight(t *testing.T) {
	c := NewCache(1 << 20)
	key := TileKey{Image: "x"}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrDecode(context.Background(), key, func() (*raster.Planar, error) {
			close(started)
			<-release // decode of the OLD bytes straddles the invalidation
			return tile(4, 4), nil
		})
	}()
	<-started
	c.Invalidate("x")
	close(release)
	<-done
	fresh := 0
	c.GetOrDecode(context.Background(), key, func() (*raster.Planar, error) {
		fresh++
		return tile(4, 4), nil
	})
	if fresh != 1 {
		t.Fatal("stale in-flight decode entered the cache across Invalidate")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	var decodes atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]*raster.Planar, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			im, _, err := c.GetOrDecode(context.Background(), TileKey{Image: "a"}, func() (*raster.Planar, error) {
				decodes.Add(1)
				<-release
				return tile(8, 8), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = im
		}(i)
	}
	// Let the herd pile up on the key, then release the one decode.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := decodes.Load(); n != 1 {
		t.Fatalf("%d decodes for %d concurrent requests, want 1", n, waiters)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced callers got different images")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("misses %d coalesced %d, want 1/%d", st.Misses, st.Coalesced, waiters-1)
	}
}

// --- Server integration tests.

func fetchPGM(t *testing.T, ts *httptest.Server, path string) *raster.Image {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: %d: %s", path, resp.StatusCode, body)
	}
	im, _, err := raster.ReadPGM(resp.Body)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return im
}

// TestServerRegionMatchesDecode asserts the served window equals cropping a
// straight jp2k.Decode at every reduce level — the HTTP layer, the tile
// assembly and the cache must be invisible in the pixels.
func TestServerRegionMatchesDecode(t *testing.T) {
	srv, cs := newTestServer(t, 1<<20)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, reduce := range []int{0, 1, 2} {
		full, err := jp2k.Decode(cs, jp2k.DecodeOptions{DiscardLevels: reduce})
		if err != nil {
			t.Fatal(err)
		}
		full.ClampTo8()
		w, h := full.Width, full.Height
		windows := []jp2k.Rect{
			{X0: 0, Y0: 0, X1: w, Y1: h},
			{X0: w / 4, Y0: h / 4, X1: 3 * w / 4, Y1: 3 * h / 4},
			{X0: w - 1, Y0: 0, X1: w, Y1: 1},
		}
		for _, win := range windows {
			path := fmt.Sprintf("/img/test?x0=%d&y0=%d&x1=%d&y1=%d&reduce=%d",
				win.X0, win.Y0, win.X1, win.Y1, reduce)
			got := fetchPGM(t, ts, path)
			if got.Width != win.Dx() || got.Height != win.Dy() {
				t.Fatalf("%s: got %dx%d", path, got.Width, got.Height)
			}
			for y := 0; y < got.Height; y++ {
				for x := 0; x < got.Width; x++ {
					if got.At(x, y) != full.At(win.X0+x, win.Y0+y) {
						t.Fatalf("%s: pixel (%d,%d) = %d, want %d",
							path, x, y, got.At(x, y), full.At(win.X0+x, win.Y0+y))
					}
				}
			}
		}
	}
}

// TestServerCacheHitsSkipDecoding is the acceptance check for the tile
// cache: repeating a request must not run tier-1 again, observable through
// the decode and hit counters.
func TestServerCacheHitsSkipDecoding(t *testing.T) {
	srv, _ := newTestServer(t, 64<<20)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const path = "/img/test?x0=10&y0=10&x1=150&y1=120"
	a := fetchPGM(t, ts, path)
	decodesAfterFirst := srv.TileDecodes()
	if decodesAfterFirst == 0 {
		t.Fatal("first request performed no tile decodes")
	}
	b := fetchPGM(t, ts, path)
	if n := srv.TileDecodes(); n != decodesAfterFirst {
		t.Fatalf("repeat request decoded tiles: %d -> %d", decodesAfterFirst, n)
	}
	if !raster.Equal(a, b) {
		t.Fatal("cached response differs")
	}
	st := srv.Cache().Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", st)
	}
	// A different variant (other reduce) misses and decodes afresh.
	fetchPGM(t, ts, path+"&reduce=1")
	if srv.TileDecodes() == decodesAfterFirst {
		t.Fatal("reduce=1 variant served from reduce=0 tiles")
	}
}

// TestServerConcurrentRegions hammers the server from many goroutines with
// overlapping windows across reduce/layer variants; run under -race this is
// the data-race gate for the whole serve path (cache, singleflight, pooled
// decoders). Every response is verified against the reference decode.
func TestServerConcurrentRegions(t *testing.T) {
	srv, cs := newTestServer(t, 1<<20) // small cache: force eviction churn
	ts := httptest.NewServer(srv)
	defer ts.Close()
	refs := make([]*raster.Image, 3)
	for reduce := range refs {
		ref, err := jp2k.Decode(cs, jp2k.DecodeOptions{DiscardLevels: reduce})
		if err != nil {
			t.Fatal(err)
		}
		ref.ClampTo8()
		refs[reduce] = ref
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 12; i++ {
				reduce := rng.Intn(3)
				ref := refs[reduce]
				x0, y0 := rng.Intn(ref.Width), rng.Intn(ref.Height)
				x1, y1 := x0+1+rng.Intn(ref.Width-x0), y0+1+rng.Intn(ref.Height-y0)
				layers := rng.Intn(3)
				path := fmt.Sprintf("/img/test?x0=%d&y0=%d&x1=%d&y1=%d&reduce=%d&layers=%d",
					x0, y0, x1, y1, reduce, layers)
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				im, _, err := raster.ReadPGM(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				if im.Width != x1-x0 || im.Height != y1-y0 {
					t.Errorf("%s: got %dx%d", path, im.Width, im.Height)
					return
				}
				if layers == 0 || layers == 2 { // full-quality variants match the reference
					for y := 0; y < im.Height; y++ {
						for x := 0; x < im.Width; x++ {
							if im.At(x, y) != ref.At(x0+x, y0+y) {
								t.Errorf("%s: pixel (%d,%d) mismatch", path, x, y)
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// fetchRaw fetches a format=raw window and decodes the payload per the
// response headers: 1 byte/sample when X-PJ2K-Max-Value <= 255, big-endian
// 2 bytes/sample otherwise — the negotiation every raw client must do.
func fetchRaw(t *testing.T, ts *httptest.Server, path string) (*raster.Planar, int) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %d: %s", path, resp.StatusCode, body)
	}
	atoi := func(name string) int {
		v, err := strconv.Atoi(resp.Header.Get(name))
		if err != nil {
			t.Fatalf("%s: bad %s header %q", path, name, resp.Header.Get(name))
		}
		return v
	}
	w, h, ncomp, maxval := atoi("X-PJ2K-Width"), atoi("X-PJ2K-Height"), atoi("X-PJ2K-Components"), atoi("X-PJ2K-Max-Value")
	width := 1
	if maxval > 255 {
		width = 2
	}
	if len(body) != w*h*ncomp*width {
		t.Fatalf("%s: %d payload bytes for %dx%dx%d at %d bytes/sample", path, len(body), w, h, ncomp, width)
	}
	pl := raster.NewPlanar(w, h, ncomp)
	for ci := 0; ci < ncomp; ci++ {
		for i := 0; i < w*h; i++ {
			off := (ci*w*h + i) * width
			v := int32(body[off])
			if width == 2 {
				v = v<<8 | int32(body[off+1])
			}
			pl.Comps[ci].Pix[i] = v
		}
	}
	return pl, maxval
}

// TestServerRawBothWidths pins the raw wire format at both sample widths: an
// 8-bit stream ships 1 byte/sample, a 12-bit stream ships 2 bytes/sample,
// and both decode (per the headers alone) to the reference decode's pixels.
func TestServerRawBothWidths(t *testing.T) {
	im8 := testImage()
	deep := raster.Synthetic(120, 90, 7)
	for i, v := range deep.Pix {
		deep.Pix[i] = v << 4 // spread the 8-bit synthetic ramp over 12 bits
	}
	cs12, _, err := jp2k.Encode(deep, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{2.0}, BitDepth: 12, Levels: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	if _, err := store.Add("gray8", encodeTest(t, im8)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Add("gray12", cs12); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{CacheBytes: 1 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pl8, maxval8 := fetchRaw(t, ts, "/img/gray8?format=raw&x0=3&y0=5&x1=83&y1=45")
	if maxval8 != 255 {
		t.Fatalf("8-bit stream: maxval %d, want 255", maxval8)
	}
	ref8 := fetchPGM(t, ts, "/img/gray8?x0=3&y0=5&x1=83&y1=45")
	if !raster.Equal(pl8.Comps[0], ref8) {
		t.Fatal("8-bit raw pixels differ from the PGM response")
	}

	pl12, maxval12 := fetchRaw(t, ts, "/img/gray12?format=raw")
	if maxval12 != 4095 {
		t.Fatalf("12-bit stream: maxval %d, want 4095", maxval12)
	}
	ref12, err := jp2k.Decode(cs12, jp2k.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ref12.Pix {
		ref12.Pix[i] = min(max(v, 0), 4095)
	}
	if !raster.Equal(pl12.Comps[0], ref12) {
		t.Fatal("12-bit raw pixels differ from the reference decode")
	}
}

// TestServerSharedPoolConcurrentRequests drives overlapping window requests
// through a server whose tile decodes run at TileWorkers > 1, so every
// request's tier-1/DWT dispatches land concurrently on the server's one
// shared worker pool — under -race this is the gate for concurrent
// Pool.TasksID use from independent HTTP requests.
func TestServerSharedPoolConcurrentRequests(t *testing.T) {
	cs := encodeTest(t, testImage())
	store := NewStore()
	if _, err := store.Add("test", cs); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{CacheBytes: -1, TileWorkers: 3}) // no cache: every request decodes
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ref, err := jp2k.Decode(cs, jp2k.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref.ClampTo8()
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				x0, y0 := (g*17+i*11)%120, (g*13+i*7)%100
				path := fmt.Sprintf("/img/test?x0=%d&y0=%d&x1=%d&y1=%d", x0, y0, x0+64, y0+48)
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				im, _, err := raster.ReadPGM(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				for y := 0; y < im.Height; y++ {
					for x := 0; x < im.Width; x++ {
						if im.At(x, y) != ref.At(x0+x, y0+y) {
							t.Errorf("%s: pixel (%d,%d) mismatch", path, x, y)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServerStreamEndpoint verifies the progressive-refinement slice: the
// truncated codestream from /stream decodes identically to MaxLayers.
func TestServerStreamEndpoint(t *testing.T) {
	srv, cs := newTestServer(t, 1<<20)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/img/test/stream?layers=1")
	if err != nil {
		t.Fatal(err)
	}
	trunc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(trunc) >= len(cs) {
		t.Fatalf("1-layer stream (%d bytes) not smaller than original (%d)", len(trunc), len(cs))
	}
	got, err := jp2k.Decode(trunc, jp2k.DecodeOptions{})
	if err != nil {
		t.Fatalf("decoding truncated stream: %v", err)
	}
	want, err := jp2k.Decode(cs, jp2k.DecodeOptions{MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(got, want) {
		t.Fatal("served layer prefix decodes differently from MaxLayers=1")
	}
}

func TestServerInfoAndErrors(t *testing.T) {
	srv, _ := newTestServer(t, 1<<20)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for path, want := range map[string]int{
		"/img/test/info":          http.StatusOK,
		"/img/nosuch":             http.StatusNotFound,
		"/img/nosuch/info":        http.StatusNotFound,
		"/img/test?x0=bogus":      http.StatusBadRequest,
		"/img/test?x0=900&x1=950": http.StatusBadRequest,
		"/img/test?format=tiff":   http.StatusBadRequest,
		"/stats":                  http.StatusOK,
		"/img/test?x0=5&x1=4":     http.StatusBadRequest,
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	var body bytes.Buffer
	resp, _ := ts.Client().Get(ts.URL + "/img/test/info")
	io.Copy(&body, resp.Body)
	resp.Body.Close()
	for _, frag := range []string{`"width": 230`, `"height": 190`, `"layers": 2`, `"reductions"`} {
		if !bytes.Contains(body.Bytes(), []byte(frag)) {
			t.Errorf("info response missing %s: %s", frag, body.String())
		}
	}
}

// --- Cache benchmarks (the hot/cold split a serving fleet sizes against).

func BenchmarkServeTileCache(b *testing.B) {
	cs := encodeTest(b, testImage())
	store := NewStore()
	if _, err := store.Add("bench", cs); err != nil {
		b.Fatal(err)
	}
	img, _ := store.Get("bench")
	colW, rowH := img.Grid(0)
	b.Run("hit", func(b *testing.B) {
		srv := New(store, Options{CacheBytes: 64 << 20})
		key := TileKey{Image: "bench", TX: 0, TY: 0}
		decode := func() (*raster.Planar, error) {
			pl, _, err := srv.decodeTile(context.Background(), img, nil, colW, rowH, 0, 0, 0, 0)
			return pl, err
		}
		if _, _, err := srv.cache.GetOrDecode(context.Background(), key, decode); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := srv.cache.GetOrDecode(context.Background(), key, decode); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		srv := New(store, Options{CacheBytes: 64 << 20})
		decode := func() (*raster.Planar, error) {
			pl, _, err := srv.decodeTile(context.Background(), img, nil, colW, rowH, 0, 0, 0, 0)
			return pl, err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.cache.Invalidate("bench") // every lookup is a cold miss
			if _, _, err := srv.cache.GetOrDecode(context.Background(), TileKey{Image: "bench", TX: 0, TY: 0}, decode); err != nil {
				b.Fatal(err)
			}
		}
	})
}
