package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pj2k/internal/dwt"
	"pj2k/internal/faultinject"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// --- Failure-path tests: shedding, panics, deadlines, degraded decodes.

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", path, nil)
	srv.ServeHTTP(rec, req)
	return rec
}

// jamTile parks a never-finishing inflight entry on the given tile key, so
// any request touching it blocks in the cache until its context ends. The
// returned func unjams (releasing zero waiters — callers arrange that none
// remain).
func jamTile(srv *Server, key TileKey) func() {
	call := &inflightCall{done: make(chan struct{})}
	srv.cache.mu.Lock()
	srv.cache.inflight[key] = call
	srv.cache.mu.Unlock()
	return func() {
		srv.cache.mu.Lock()
		delete(srv.cache.inflight, key)
		srv.cache.mu.Unlock()
	}
}

func TestServerShedsAtCapacity(t *testing.T) {
	cs := encodeTest(t, testImage())
	store := NewStore()
	if _, err := store.Add("test", cs); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{MaxInFlight: 1})
	defer srv.Close()

	// Occupy the only admission slot.
	srv.inflight <- struct{}{}
	for _, path := range []string{"/img/test?x1=8&y1=8", "/img/test/stream"} {
		rec := get(t, srv, path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s at capacity: got %d, want 503", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: shed response missing Retry-After", path)
		}
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz at capacity: got %d, want 503", rec.Code)
	}
	// Liveness is orthogonal to saturation.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz at capacity: got %d, want 200", rec.Code)
	}
	if n := srv.shed.Value(); n != 2 {
		t.Fatalf("shed counter %d, want 2", n)
	}

	// Slot freed: requests and readiness recover.
	<-srv.inflight
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after release: got %d, want 200", rec.Code)
	}
	if rec := get(t, srv, "/img/test?x1=8&y1=8"); rec.Code != http.StatusOK {
		t.Fatalf("request after release: got %d, want 200", rec.Code)
	}
}

func TestServerPanicRecovery(t *testing.T) {
	srv, _ := newTestServer(t, DefaultCacheBytes)
	defer srv.Close()
	var recovered any
	srv.panicHook = func(v any) { recovered = v }
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})

	if rec := get(t, srv, "/boom"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: got %d, want 500", rec.Code)
	}
	if recovered != "kaboom" {
		t.Fatalf("panicHook saw %v, want kaboom", recovered)
	}
	if n := srv.panics.Value(); n != 1 {
		t.Fatalf("panics counter %d, want 1", n)
	}
	// The server, its pool and its cache survive: a real decode still works.
	if rec := get(t, srv, "/img/test?x1=8&y1=8"); rec.Code != http.StatusOK {
		t.Fatalf("decode after panic: got %d, want 200", rec.Code)
	}
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz after panic: got %d", rec.Code)
	}
}

func TestServerDeadlineExceeded(t *testing.T) {
	cs := encodeTest(t, testImage())
	store := NewStore()
	img, err := store.Add("test", cs)
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 50 * time.Millisecond
	srv := New(store, Options{Timeout: timeout})
	defer srv.Close()

	key := TileKey{Image: "test", TX: 0, TY: 0, Discard: 0, Layers: img.ClampLayers(0)}
	unjam := jamTile(srv, key)

	start := time.Now()
	rec := get(t, srv, "/img/test?x1=8&y1=8")
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("jammed tile: got %d, want 504 (body %q)", rec.Code, rec.Body.String())
	}
	if elapsed < timeout {
		t.Fatalf("request failed after %v, before the %v deadline", elapsed, timeout)
	}
	// "Promptly": one dispatch unit of slack, sized generously for -race on
	// a loaded machine — the point is it does not hang for the decode that
	// never comes.
	if elapsed > timeout+2*time.Second {
		t.Fatalf("request outlived its deadline by %v", elapsed-timeout)
	}
	if n := srv.timeouts.Value(); n != 1 {
		t.Fatalf("timeouts counter %d, want 1", n)
	}

	unjam()
	if rec := get(t, srv, "/img/test?x1=8&y1=8"); rec.Code != http.StatusOK {
		t.Fatalf("request after unjam: got %d, want 200", rec.Code)
	}
}

// TestServerDeadlineHammer saturates a small-capacity server whose only hot
// tile never finishes decoding: every request must end promptly as either a
// shed 503 (with Retry-After) or a deadline 504, the two counters must
// account for every request, and the server must come back healthy.
func TestServerDeadlineHammer(t *testing.T) {
	cs := encodeTest(t, testImage())
	store := NewStore()
	img, err := store.Add("test", cs)
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 50 * time.Millisecond
	srv := New(store, Options{Timeout: timeout, MaxInFlight: 4})
	defer srv.Close()
	key := TileKey{Image: "test", TX: 0, TY: 0, Discard: 0, Layers: img.ClampLayers(0)}
	unjam := jamTile(srv, key)

	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 24
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	times := make([]time.Duration, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Get(ts.URL + "/img/test?x1=8&y1=8")
			times[i] = time.Since(start)
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		switch code {
		case http.StatusServiceUnavailable:
			if retryAfter[i] == "" {
				t.Errorf("client %d: 503 without Retry-After", i)
			}
		case http.StatusGatewayTimeout:
		default:
			t.Errorf("client %d: status %d, want 503 or 504", i, code)
		}
		if times[i] > timeout+2*time.Second {
			t.Errorf("client %d outlived the deadline by %v", i, times[i]-timeout)
		}
	}
	shed, timeouts := srv.shed.Value(), srv.timeouts.Value()
	if shed+timeouts != clients {
		t.Fatalf("shed %d + timeouts %d != %d requests", shed, timeouts, clients)
	}
	if timeouts < 1 {
		t.Fatal("no request reached the jammed tile")
	}
	if got := srv.errors.Value(); got != clients {
		t.Fatalf("errors counter %d, want %d", got, clients)
	}

	unjam()
	if rec := get(t, srv, "/img/test?x1=8&y1=8"); rec.Code != http.StatusOK {
		t.Fatalf("request after hammer: got %d, want 200", rec.Code)
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after hammer: got %d, want 200", rec.Code)
	}
}

// TestServerResilientDamageCounters drives a damaged codestream through the
// resilient tile-decode path: the request is served (degraded, not failed)
// and the damage shows up in the server counters that /stats reports.
func TestServerResilientDamageCounters(t *testing.T) {
	im := raster.Synthetic(96, 96, 11)
	cs, _, err := jp2k.Encode(im, jp2k.Options{
		Kernel: dwt.Irr97, TileW: 48, TileH: 48, LayerBPP: []float64{1.0},
		Resilience: jp2k.ResilienceOptions{SOP: true, EPH: true, SegSymbols: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	img, err := store.Add("dmg", cs)
	if err != nil {
		t.Fatal(err)
	}
	// Rot the stored bytes after indexing — the index still matches the
	// framing (SOP/EPH survive bit flips to MQ payload), the payload does not.
	spans := faultinject.TileBodies(cs)
	if len(spans) != 4 {
		t.Fatalf("%d tile bodies, want 4", len(spans))
	}
	img.src = t2.BytesSource(faultinject.BitFlip(cs, spans[0], 16, 77))

	srv := New(store, Options{Resilient: true})
	defer srv.Close()
	rec := get(t, srv, "/img/dmg")
	if rec.Code != http.StatusOK {
		t.Fatalf("resilient server failed a damaged image: %d %q", rec.Code, rec.Body.String())
	}
	if srv.damagedTiles.Value() < 1 {
		t.Fatal("damaged tile decode moved no damage counters")
	}
	if srv.blocksConcealed.Value() < 1 && srv.packetsLost.Value() < 1 {
		t.Fatal("damage counters show neither concealed blocks nor lost packets")
	}
}
