package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pj2k/internal/jp2k"
	"pj2k/internal/t2"
)

// Image is one served codestream: the codestream Source (resident bytes or a
// file/ReaderAt on disk) plus the packet index built over it. Both are
// immutable after registration, so any number of request goroutines share
// them without locking; the index's lazy per-tile packet maps are internally
// synchronized.
type Image struct {
	ID    string
	src   *t2.Source
	Index *t2.Index

	// health is the server's per-image IO-failure tracking (quarantine
	// state); it is the one mutable part of an Image and is internally
	// locked.
	health imageHealth
}

// Source returns the codestream source the image is served from.
func (im *Image) Source() *t2.Source { return im.src }

// Size returns the codestream length in bytes.
func (im *Image) Size() int64 { return im.src.Size() }

// Params returns the codestream header parameters.
func (im *Image) Params() t2.Params { return im.Index.Params }

// ClampDiscard limits a requested reduction to what the stream carries.
func (im *Image) ClampDiscard(discard int) int {
	if discard < 0 {
		return 0
	}
	if l := im.Index.Params.Levels; discard > l {
		return l
	}
	return discard
}

// ClampLayers normalizes a layer limit: 0 (or out of range) means every
// layer in the stream.
func (im *Image) ClampLayers(layers int) int {
	if layers <= 0 || layers > im.Index.Params.Layers {
		return im.Index.Params.Layers
	}
	return layers
}

// Grid returns the reduced tile geometry at the given discard level as
// prefix sums: colW[tx] is the x origin of tile column tx in the reduced
// image (colW[ntx] its width), likewise rowH for rows. The geometry comes
// from the decoder (jp2k.TileGrid), so window/tile mapping here can never
// drift from what DecodeRegion actually decodes.
func (im *Image) Grid(discard int) (colW, rowH []int) {
	return jp2k.TileGrid(im.Index.Params, discard)
}

// Store is the registry of served images. Registration validates the stream
// container (eagerly for resident bytes, headers-only for lazy sources);
// lookups are lock-cheap and concurrent.
type Store struct {
	mu   sync.RWMutex
	imgs map[string]*Image
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{imgs: make(map[string]*Image)} }

// Add registers a resident codestream under id, building its packet index
// eagerly. A corrupt or truncated stream is rejected here, at registration,
// so request handlers never see an unindexable image. Re-adding an id
// replaces the image (the caller should invalidate any tile cache).
func (s *Store) Add(id string, data []byte) (*Image, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty image id")
	}
	ix, err := t2.BuildIndex(data)
	if err != nil {
		return nil, fmt.Errorf("serve: indexing %q: %w", id, err)
	}
	return s.put(&Image{ID: id, src: ix.Source(), Index: ix}), nil
}

// AddSource registers a codestream source under id with lazy ingest: only
// the main header and the tile-part chain are read at registration (no tile
// bodies), so a directory of huge scenes registers in milliseconds and memory
// scales with the tiles actually served, not the corpus. Container-level
// damage (bad geometry, broken tile-part chain) is still rejected here;
// packet-level damage inside a tile body surfaces on first touch of that
// tile. The store takes ownership of src on success (Close releases it); on
// error the caller still owns it.
func (s *Store) AddSource(id string, src *t2.Source) (*Image, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty image id")
	}
	ix, err := t2.NewIndex(src)
	if err != nil {
		return nil, fmt.Errorf("serve: indexing %q: %w", id, err)
	}
	return s.put(&Image{ID: id, src: src, Index: ix}), nil
}

func (s *Store) put(im *Image) *Image {
	s.mu.Lock()
	s.imgs[im.ID] = im
	s.mu.Unlock()
	return im
}

// Get returns the image registered under id.
func (s *Store) Get(id string) (*Image, bool) {
	s.mu.RLock()
	im, ok := s.imgs[id]
	s.mu.RUnlock()
	return im, ok
}

// Lookup is Get bound to a request context: a lookup for an already-expired
// or cancelled request fails fast with the context's error instead of
// starting work that nobody will read.
func (s *Store) Lookup(ctx context.Context, id string) (*Image, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	im, ok := s.Get(id)
	return im, ok, nil
}

// Len returns the number of registered images.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.imgs)
}

// IDs returns the registered image ids, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.imgs))
	for id := range s.imgs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// Close releases every registered image's source (file-backed sources close
// their files; byte sources are no-ops) and empties the store. Every close
// failure is reported (joined), not just the first — leaked file handles are
// an ops problem and each one deserves a line in the log. Call it after the
// server has drained; in-flight decodes reading a closed source fail with a
// read error, they do not crash.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for id, im := range s.imgs {
		if err := im.src.Close(); err != nil {
			errs = append(errs, fmt.Errorf("serve: closing %q: %w", id, err))
		}
		delete(s.imgs, id)
	}
	return errors.Join(errs...)
}

// LoadDir registers every *.j2k file in dir under its basename (without
// extension), as lazy file-backed sources: registration reads each file's
// headers and tile-part chain, never the tile bodies. A file that cannot be
// opened or indexed is skipped, not fatal — one corrupt file must not take
// down startup for the whole corpus. Returns the number of images added plus
// the joined per-file errors (n > 0 with err != nil means a partial load).
func (s *Store) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	var errs []error
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".j2k") {
			continue
		}
		src, err := t2.OpenFile(filepath.Join(dir, e.Name()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if _, err := s.AddSource(strings.TrimSuffix(e.Name(), ".j2k"), src); err != nil {
			src.Close()
			errs = append(errs, err)
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}
