package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pj2k/internal/jp2k"
	"pj2k/internal/t2"
)

// Image is one served codestream: the raw bytes plus the packet index built
// once at registration. Both are immutable after Add, so any number of
// request goroutines share them without locking.
type Image struct {
	ID    string
	Data  []byte
	Index *t2.Index
}

// Params returns the codestream header parameters.
func (im *Image) Params() t2.Params { return im.Index.Params }

// ClampDiscard limits a requested reduction to what the stream carries.
func (im *Image) ClampDiscard(discard int) int {
	if discard < 0 {
		return 0
	}
	if l := im.Index.Params.Levels; discard > l {
		return l
	}
	return discard
}

// ClampLayers normalizes a layer limit: 0 (or out of range) means every
// layer in the stream.
func (im *Image) ClampLayers(layers int) int {
	if layers <= 0 || layers > im.Index.Params.Layers {
		return im.Index.Params.Layers
	}
	return layers
}

// Grid returns the reduced tile geometry at the given discard level as
// prefix sums: colW[tx] is the x origin of tile column tx in the reduced
// image (colW[ntx] its width), likewise rowH for rows. The geometry comes
// from the decoder (jp2k.TileGrid), so window/tile mapping here can never
// drift from what DecodeRegion actually decodes.
func (im *Image) Grid(discard int) (colW, rowH []int) {
	return jp2k.TileGrid(im.Index.Params, discard)
}

// Store is the registry of served images. Registration indexes the stream
// (validating it end to end); lookups are lock-cheap and concurrent.
type Store struct {
	mu   sync.RWMutex
	imgs map[string]*Image
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{imgs: make(map[string]*Image)} }

// Add registers a codestream under id, building its packet index. A corrupt
// or truncated stream is rejected here, at registration, so request handlers
// never see an unindexable image. Re-adding an id replaces the image (the
// caller should invalidate any tile cache).
func (s *Store) Add(id string, data []byte) (*Image, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty image id")
	}
	ix, err := t2.BuildIndex(data)
	if err != nil {
		return nil, fmt.Errorf("serve: indexing %q: %w", id, err)
	}
	im := &Image{ID: id, Data: data, Index: ix}
	s.mu.Lock()
	s.imgs[id] = im
	s.mu.Unlock()
	return im, nil
}

// Get returns the image registered under id.
func (s *Store) Get(id string) (*Image, bool) {
	s.mu.RLock()
	im, ok := s.imgs[id]
	s.mu.RUnlock()
	return im, ok
}

// Lookup is Get bound to a request context: a lookup for an already-expired
// or cancelled request fails fast with the context's error instead of
// starting work that nobody will read.
func (s *Store) Lookup(ctx context.Context, id string) (*Image, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	im, ok := s.Get(id)
	return im, ok, nil
}

// Len returns the number of registered images.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.imgs)
}

// IDs returns the registered image ids, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.imgs))
	for id := range s.imgs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// LoadDir registers every *.j2k file in dir under its basename (without
// extension). Returns the number of images added; the first indexing error
// aborts the load.
func (s *Store) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".j2k") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if _, err := s.Add(strings.TrimSuffix(e.Name(), ".j2k"), data); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
