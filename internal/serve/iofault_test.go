package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pj2k/internal/faultinject"
	"pj2k/internal/t2"
)

// --- Store robustness: partial loads, aggregated close errors.

func TestLoadDirSkipAndCollect(t *testing.T) {
	cs := encodeTest(t, testImage())
	dir := t.TempDir()
	for _, name := range []string{"good1.j2k", "good2.j2k"} {
		if err := os.WriteFile(filepath.Join(dir, name), cs, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.j2k"), []byte("not a codestream"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	n, err := store.LoadDir(dir)
	if n != 2 {
		t.Fatalf("LoadDir loaded %d images; want the 2 good ones", n)
	}
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("LoadDir error %v does not report the corrupt file", err)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d images; want 2", store.Len())
	}
	for _, id := range []string{"good1", "good2"} {
		if _, ok := store.Get(id); !ok {
			t.Fatalf("image %q missing after partial load", id)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close after partial load: %v", err)
	}
}

// --- Quarantine lifecycle: consecutive IO failures take an image out of
// service (503 + Retry-After), the background probe brings it back once the
// source heals, and every transition is visible in /stats and /metrics.

// flakyImageServer registers one image backed by a FlakyReaderAt (registered
// healthy so indexing succeeds) and returns the server plus the fault handle.
func flakyImageServer(t *testing.T, opts Options, cfg faultinject.FlakyConfig) (*Server, *faultinject.FlakyReaderAt) {
	t.Helper()
	cs := encodeTest(t, testImage())
	fl := faultinject.NewFlaky(bytes.NewReader(cs), cfg)
	fl.Heal()
	store := NewStore()
	if _, err := store.AddSource("q", t2.NewSource(fl, int64(len(cs)))); err != nil {
		t.Fatal(err)
	}
	srv := New(store, opts)
	t.Cleanup(srv.Close)
	return srv, fl
}

// oneTileWindow covers exactly tile (0, 0) of the 230x190 / 96x80 test
// geometry, so each request decodes one tile and records one IO verdict.
const oneTileWindow = "/img/q?x0=0&y0=0&x1=96&y1=80&format=raw"

func serverStats(t *testing.T, srv *Server) statsResponse {
	t.Helper()
	rec := get(t, srv, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestQuarantineLifecycle(t *testing.T) {
	srv, fl := flakyImageServer(t, Options{
		CacheBytes:      -1, // every request decodes, so every request reads
		IORetries:       1,
		QuarantineAfter: 2,
		ProbeInterval:   20 * time.Millisecond,
	}, faultinject.FlakyConfig{FailNth: 1})

	if rec := get(t, srv, oneTileWindow); rec.Code != http.StatusOK {
		t.Fatalf("healthy request: %d, %s", rec.Code, rec.Body)
	}
	fl.Break()
	// Two consecutive IO-failed decodes cross the threshold; both requests
	// themselves fail with 500 (the decode really did fail).
	for i := 0; i < 2; i++ {
		if rec := get(t, srv, oneTileWindow); rec.Code != http.StatusInternalServerError {
			t.Fatalf("broken request %d: %d, %s", i, rec.Code, rec.Body)
		}
	}
	// The image is now quarantined: requests are rejected up front with 503 +
	// Retry-After, without burning a decode.
	rec := get(t, srv, oneTileWindow)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined request: %d, %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("quarantined 503 carries no Retry-After")
	}
	// Info and stream endpoints reject too — they read the same source.
	if rec := get(t, srv, "/img/q/info"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined /info: %d", rec.Code)
	}
	st := serverStats(t, srv)
	if st.Quarantine.Total != 1 || st.Quarantine.Active != 1 || st.Quarantine.RejectedRequests < 1 {
		t.Fatalf("stats quarantine = %+v; want total 1, active 1, rejections", st.Quarantine)
	}
	if st.IO.ReadFailures < 2 || st.IO.ReadAttempts < 2 {
		t.Fatalf("stats io = %+v; the failed reads left no trace", st.IO)
	}

	// The source heals; the background probe notices and restores service
	// without any operator action.
	fl.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := get(t, srv, oneTileWindow)
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("image never recovered from quarantine; last status %d", rec.Code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st = serverStats(t, srv)
	if st.Quarantine.Active != 0 || st.Quarantine.Recoveries != 1 || st.Quarantine.Total != 1 {
		t.Fatalf("stats quarantine after recovery = %+v; want active 0, recoveries 1", st.Quarantine)
	}
	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		"pj2k_quarantines_total 1",
		"pj2k_quarantine_recoveries_total 1",
		"pj2k_quarantined_images 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestQuarantineOnConcealedDamage: in resilient mode an unreadable tile body
// does not fail the request (the tile is concealed, 200), but it still counts
// as an IO failure against the image — repeated concealment quarantines it.
func TestQuarantineOnConcealedDamage(t *testing.T) {
	cs := encodeTest(t, testImage())
	body := faultinject.TileBodies(cs)
	if len(body) == 0 {
		t.Fatal("no tile bodies")
	}
	srv, fl := flakyImageServer(t, Options{
		CacheBytes:      -1,
		Resilient:       true,
		IORetries:       1,
		QuarantineAfter: 2,
		ProbeInterval:   time.Hour, // keep the probe out of this test
	}, faultinject.FlakyConfig{FailSpan: body[0]})
	fl.Break()
	for i := 0; i < 2; i++ {
		rec := get(t, srv, oneTileWindow)
		if rec.Code != http.StatusOK {
			t.Fatalf("degraded request %d: %d, %s", i, rec.Code, rec.Body)
		}
	}
	if rec := get(t, srv, oneTileWindow); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request after repeated concealment: %d; want quarantine", rec.Code)
	}
	st := serverStats(t, srv)
	if st.Damage.IOUnreadableTiles < 2 {
		t.Fatalf("stats damage = %+v; concealed IO tiles not counted", st.Damage)
	}
	if st.Quarantine.Total != 1 {
		t.Fatalf("stats quarantine = %+v; concealment did not quarantine", st.Quarantine)
	}
	if m := get(t, srv, "/metrics").Body.String(); !strings.Contains(m, "pj2k_io_unreadable_tiles_total 2") {
		t.Error("/metrics missing pj2k_io_unreadable_tiles_total 2")
	}
}

// TestQuarantineDisabled: a negative QuarantineAfter turns the health
// machinery off — failures keep failing individually, nothing is rejected.
func TestQuarantineDisabled(t *testing.T) {
	srv, fl := flakyImageServer(t, Options{
		CacheBytes:      -1,
		IORetries:       1,
		QuarantineAfter: -1,
	}, faultinject.FlakyConfig{FailNth: 1})
	fl.Break()
	for i := 0; i < 5; i++ {
		if rec := get(t, srv, oneTileWindow); rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: %d; want plain 500s with quarantine disabled", i, rec.Code)
		}
	}
	if st := serverStats(t, srv); st.Quarantine.Total != 0 {
		t.Fatalf("stats quarantine = %+v; want none", st.Quarantine)
	}
}

// TestRequestRetryBudget: one request's retries are capped by IORetryBudget
// across all of its reads, so a degraded source cannot multiply request
// latency by retries x tiles.
func TestRequestRetryBudget(t *testing.T) {
	srv, fl := flakyImageServer(t, Options{
		CacheBytes:    -1,
		IORetries:     8,
		IORetryBudget: 2,
	}, faultinject.FlakyConfig{FailNth: 1, Transient: true})
	fl.Break()
	if rec := get(t, srv, oneTileWindow); rec.Code != http.StatusInternalServerError {
		t.Fatalf("request over exhausted source: %d", rec.Code)
	}
	if st := serverStats(t, srv); st.IO.ReadRetries != 2 {
		t.Fatalf("stats io = %+v; want the retry budget (2) consumed exactly", st.IO)
	}
}
