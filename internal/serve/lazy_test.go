package serve

// Tests for lazy ingest: registration must never read tile bodies, serving
// must read only what the request's window touches, and LoadDir must behave
// identically to byte-slice registration end to end.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// meteredReaderAt counts bytes read so the tests can assert IO bounds.
type meteredReaderAt struct {
	r     io.ReaderAt
	bytes atomic.Int64
}

func (m *meteredReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := m.r.ReadAt(p, off)
	m.bytes.Add(int64(n))
	return n, err
}

// TestAddSourceLazyIngest pins the registration contract: AddSource over a
// counting ReaderAt reads the main header and the tile-part chain — a chunk
// plus a few bytes per tile — never the tile bodies, and a served region
// request then reads only about its window's tiles.
func TestAddSourceLazyIngest(t *testing.T) {
	// The stream must dwarf the scanner's 8 KiB header chunk, or "read the
	// whole thing" and "read the headers" are indistinguishable.
	cs := encodeTest(t, raster.Synthetic(768, 640, 99))
	if len(cs) < 4*(8<<10) {
		t.Fatalf("test stream too small (%d bytes) for IO bounds to discriminate", len(cs))
	}
	mr := &meteredReaderAt{r: bytes.NewReader(cs)}
	store := NewStore()
	img, err := store.AddSource("lazy", t2.NewSource(mr, int64(len(cs))))
	if err != nil {
		t.Fatal(err)
	}
	registration := mr.bytes.Load()
	budget := int64(8<<10 + 64*img.Index.NumTiles())
	if registration > budget {
		t.Fatalf("registration read %d of %d stream bytes (budget %d) — ingest is not lazy",
			registration, len(cs), budget)
	}

	// Serve one tile-sized window: the read increment must stay well under
	// the whole stream (only the window's tile bodies plus scan overhead).
	srv := New(store, Options{CacheBytes: -1})
	defer srv.Close()
	rec := get(t, srv, "/img/lazy?x0=0&y0=0&x1=96&y1=80&format=raw")
	if rec.Code != http.StatusOK {
		t.Fatalf("region request failed: %d %q", rec.Code, rec.Body.String())
	}
	served := mr.bytes.Load() - registration
	if served >= int64(len(cs))/2 {
		t.Fatalf("one-tile request read %d bytes of a %d-byte stream — serving is not windowed",
			served, len(cs))
	}
	if served == 0 {
		t.Fatal("region decode read nothing from the source")
	}
}

// TestLoadDirLazyServing: a directory ingested via LoadDir (file-backed lazy
// sources) serves byte-identical responses to the same stream registered as
// resident bytes, and Close releases the files.
func TestLoadDirLazyServing(t *testing.T) {
	cs := encodeTest(t, testImage())
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scene.j2k"), cs, 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-codestream file must be ignored by extension, not rejected.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	lazyStore := NewStore()
	n, err := lazyStore.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || lazyStore.Len() != 1 {
		t.Fatalf("loaded %d images (store %d), want 1", n, lazyStore.Len())
	}
	eagerStore := NewStore()
	if _, err := eagerStore.Add("scene", cs); err != nil {
		t.Fatal(err)
	}

	lazySrv := New(lazyStore, Options{})
	defer lazySrv.Close()
	eagerSrv := New(eagerStore, Options{})
	defer eagerSrv.Close()
	for _, path := range []string{
		"/img/scene?x0=10&y0=20&x1=200&y1=150&format=raw",
		"/img/scene?x0=0&y0=0&x1=115&y1=95&reduce=1&format=raw",
		"/img/scene/info",
		"/img/scene/stream?layers=1",
	} {
		lr := get(t, lazySrv, path)
		er := get(t, eagerSrv, path)
		if lr.Code != http.StatusOK || er.Code != http.StatusOK {
			t.Fatalf("%s: lazy %d, eager %d", path, lr.Code, er.Code)
		}
		if !bytes.Equal(lr.Body.Bytes(), er.Body.Bytes()) {
			t.Fatalf("%s: lazy and eager responses differ (%d vs %d bytes)",
				path, lr.Body.Len(), er.Body.Len())
		}
	}

	if err := lazyStore.Close(); err != nil {
		t.Fatal(err)
	}
	if lazyStore.Len() != 0 {
		t.Fatal("Close left images registered")
	}
}
