package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pj2k/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string // raw label body, "" when absent
	value  float64
}

// parseProm is a strict-enough parser for the 0.0.4 text format: it checks
// that every sample line is `name[{labels}] value`, that every family has
// exactly one HELP and one TYPE before its first sample, and returns the
// samples plus the family->type map.
func parseProm(t *testing.T, body string) ([]promSample, map[string]string) {
	t.Helper()
	types := map[string]string{}
	helps := map[string]bool{}
	var samples []promSample
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helps[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helps[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			types[name] = typ
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			head, val, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
			}
			name, labels := head, ""
			if i := strings.IndexByte(head, '{'); i >= 0 {
				if !strings.HasSuffix(head, "}") {
					t.Fatalf("line %d: unclosed labels: %q", ln+1, line)
				}
				name, labels = head[:i], head[i+1:len(head)-1]
			}
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if types[family] == "" && types[name] == "" {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			if fam := name; types[fam] != "" && !helps[fam] {
				t.Fatalf("line %d: sample %s before its HELP", ln+1, name)
			}
			samples = append(samples, promSample{name: name, labels: labels, value: v})
		}
	}
	return samples, types
}

// TestMetricsExposition drives mixed-outcome load through the server under
// concurrency (the -race build makes this a race test of the whole telemetry
// path), then checks that /metrics parses, that the counters add up, and that
// every histogram's buckets are monotone with consistent _count/_sum.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newTestServer(t, 64<<20)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Mixed workload: hits and misses on region requests (distinct reduce
	// levels miss, repeats hit), some 404s and bad requests (errors), plus
	// /stats and /metrics scrapes racing the writers.
	const workers, iters = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("%s/img/test?reduce=%d", ts.URL, (w+i)%3)
				case 1:
					url = ts.URL + "/img/test?reduce=1"
				case 2:
					url = ts.URL + "/img/nope"
				default:
					url = ts.URL + "/img/test?x0=bogus"
				}
				resp, err := ts.Client().Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	// Concurrent scrapes while the load runs.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, path := range []string{"/metrics", "/stats"} {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	body := scrape(t, ts)
	samples, types := parseProm(t, body)

	find := func(name, labels string) (float64, bool) {
		for _, s := range samples {
			if s.name == name && s.labels == labels {
				return s.value, true
			}
		}
		return 0, false
	}
	mustFind := func(name, labels string) float64 {
		v, ok := find(name, labels)
		if !ok {
			t.Fatalf("metric %s{%s} not exposed", name, labels)
		}
		return v
	}

	// Families the issue demands: stage histograms, pool gauges, request
	// latency by outcome, cache and damage counters, build info.
	for name, typ := range map[string]string{
		"pj2k_requests_total":        "counter",
		"pj2k_request_errors_total":  "counter",
		"pj2k_tile_decodes_total":    "counter",
		"pj2k_request_seconds":       "histogram",
		"pj2k_decode_seconds":        "histogram",
		"pj2k_decode_stage_seconds":  "histogram",
		"pj2k_encode_stage_seconds":  "histogram",
		"pj2k_pool_workers":          "gauge",
		"pj2k_pool_queue_depth":      "gauge",
		"pj2k_pool_in_flight":        "gauge",
		"pj2k_pool_dispatches_total": "counter",
		"pj2k_cache_hits_total":      "counter",
		"pj2k_build_info":            "gauge",
	} {
		if got := types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// The counters must add up against the known workload. Every iteration
	// issues one request; the scrape goroutines issue 2*iters each; plus the
	// final scrape in this test (which ran before this sample was taken, so
	// it is not yet counted — the handler increments before serving, so it
	// IS counted).
	wantRequests := float64(workers*iters + 2*2*iters + 1)
	if got := mustFind("pj2k_requests_total", ""); got != wantRequests {
		t.Errorf("pj2k_requests_total = %v, want %v", got, wantRequests)
	}
	// Half the worker iterations are deliberate failures (404 + bad query).
	wantErrors := float64(workers * iters / 2)
	if got := mustFind("pj2k_request_errors_total", ""); got != wantErrors {
		t.Errorf("pj2k_request_errors_total = %v, want %v", got, wantErrors)
	}
	// Cache accounting: hits + misses + coalesced must cover every tile
	// lookup, and tile decodes equal cache misses (every miss decodes once).
	hits := mustFind("pj2k_cache_hits_total", "")
	misses := mustFind("pj2k_cache_misses_total", "")
	coalesced := mustFind("pj2k_cache_coalesced_total", "")
	decodes := mustFind("pj2k_tile_decodes_total", "")
	if decodes != misses {
		t.Errorf("tile decodes (%v) != cache misses (%v)", decodes, misses)
	}
	if hits+misses+coalesced == 0 {
		t.Error("no cache activity recorded under load")
	}

	// Histogram invariants for every exposed histogram family: cumulative
	// buckets monotone, +Inf bucket == _count, _count consistent with _sum.
	type histKey struct{ name, labels string }
	buckets := map[histKey][]promSample{}
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_bucket") {
			base := strings.TrimSuffix(s.name, "_bucket")
			// Strip the le pair (always last, appended by the writer).
			i := strings.LastIndex(s.labels, "le=")
			lbl := strings.TrimSuffix(s.labels[:i], ",")
			buckets[histKey{base, lbl}] = append(buckets[histKey{base, lbl}], s)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets exposed")
	}
	for key, bs := range buckets {
		prev := -1.0
		for _, b := range bs {
			if b.value < prev {
				t.Errorf("%s{%s}: bucket counts not monotone: %v after %v", key.name, key.labels, b.value, prev)
			}
			prev = b.value
		}
		count, ok := find(key.name+"_count", key.labels)
		if !ok {
			t.Fatalf("%s{%s}: missing _count", key.name, key.labels)
		}
		if last := bs[len(bs)-1]; !strings.Contains(last.labels, `le="+Inf"`) {
			t.Errorf("%s{%s}: last bucket is %q, want +Inf", key.name, key.labels, last.labels)
		} else if last.value != count {
			t.Errorf("%s{%s}: +Inf bucket %v != count %v", key.name, key.labels, last.value, count)
		}
		sum, ok := find(key.name+"_sum", key.labels)
		if !ok {
			t.Fatalf("%s{%s}: missing _sum", key.name, key.labels)
		}
		// Zero-duration spans are legal (a grayscale decode's intercomp
		// stage is a no-op), so sum may be 0; it must never be negative.
		if sum < 0 {
			t.Errorf("%s{%s}: negative sum %v", key.name, key.labels, sum)
		}
	}

	// The request histograms must have observed every region request: the
	// per-outcome counts sum to the worker iterations (the only requests that
	// pass through handleRegion).
	var latTotal float64
	for _, name := range outcomeNames {
		if v, ok := find("pj2k_request_seconds_count", `outcome="`+name+`"`); ok {
			latTotal += v
		}
	}
	if want := float64(workers * iters); latTotal != want {
		t.Errorf("sum of pj2k_request_seconds counts = %v, want %v", latTotal, want)
	}

	// Decode stage histograms saw every tile decode.
	if v, ok := find("pj2k_decode_seconds_count", ""); !ok || v != decodes {
		t.Errorf("pj2k_decode_seconds_count = %v (ok=%v), want %v", v, ok, decodes)
	}
	for _, stage := range []string{"parse", "t2", "t1", "idwt"} {
		if v, ok := find("pj2k_decode_stage_seconds_count", `stage="`+stage+`"`); !ok || v != decodes {
			t.Errorf("decode stage %q count = %v (ok=%v), want %v", stage, v, ok, decodes)
		}
	}
}

// TestStatsEnriched checks the /stats additions: percentile digests, pool
// stats and build identity, all consistent with the raw counters.
func TestStatsEnriched(t *testing.T) {
	srv, _ := newTestServer(t, 64<<20)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ { // one miss, two hits
		resp, err := ts.Client().Get(ts.URL + "/img/test?reduce=2")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 4 { // 3 region requests + this /stats
		t.Errorf("requests = %d, want 4", st.Requests)
	}
	if st.GoVersion == "" || st.Revision == "" {
		t.Errorf("missing build identity: go=%q revision=%q", st.GoVersion, st.Revision)
	}
	if st.Pool.Workers <= 0 {
		t.Errorf("pool workers = %d, want > 0", st.Pool.Workers)
	}
	var latCount uint64
	for _, sum := range st.RequestLatency {
		latCount += sum.Count
		if sum.Count > 0 && (sum.P50MS <= 0 || sum.P99MS < sum.P50MS) {
			t.Errorf("implausible latency digest: %+v", sum)
		}
	}
	if latCount != 3 {
		t.Errorf("request_latency counts sum to %d, want 3", latCount)
	}
	if hit, ok := st.RequestLatency["hit"]; !ok || hit.Count != 2 {
		t.Errorf("hit latency = %+v (ok=%v), want count 2", hit, ok)
	}
	if miss, ok := st.RequestLatency["miss"]; !ok || miss.Count != 1 {
		t.Errorf("miss latency = %+v (ok=%v), want count 1", miss, ok)
	}
	if len(st.DecodeStages) == 0 {
		t.Error("decode_stage_latency empty after a decode")
	}
	for stage, sum := range st.DecodeStages {
		if sum.Count == 0 {
			t.Errorf("stage %q digested with zero count", stage)
		}
	}
}

// TestMetricsOutcomeShed checks the shed path lands in the right histogram
// series (admission gate full -> outcome="shed").
func TestMetricsOutcomeShed(t *testing.T) {
	cs := encodeTest(t, testImage())
	store := NewStore()
	if _, err := store.Add("test", cs); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{CacheBytes: 64 << 20, MaxInFlight: 1})
	defer srv.Close()
	srv.inflight <- struct{}{} // fill the gate
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/img/test")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	<-srv.inflight

	if sum := telemetry.Summary(srv.latency[outcomeShed]); sum.Count != 1 {
		t.Errorf("shed histogram count = %d, want 1", sum.Count)
	}
	body := scrape(t, ts)
	if !strings.Contains(body, `pj2k_request_seconds_count{outcome="shed"} 1`) {
		t.Error("shed outcome not exposed in /metrics")
	}
}
