// Package serve is the progressive image-serving subsystem built on the
// codec: a read-only store of indexed codestreams, an LRU cache of decoded
// tiles, and an HTTP server that answers window/resolution/layer requests by
// decoding only the tiles a request touches. This is the payoff of the
// JPEG2000 packet structure the paper's pipeline produces: one codestream
// serves thumbnails, viewports and progressive refinement to any number of
// clients, and the parallel decoder keeps per-request latency bounded by
// tile size rather than image size.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pj2k/internal/raster"
)

// TileKey identifies one decoded tile variant: a tile of an image decoded at
// a discard-level/layer-limit combination. Distinct variants cache
// independently — a thumbnail pass over a tile does not evict its full-
// resolution neighbour.
type TileKey struct {
	Image   string
	TX, TY  int
	Discard int
	Layers  int
}

// tileEntry is one cache resident on the intrusive LRU list.
type tileEntry struct {
	key        TileKey
	pl         *raster.Planar
	bytes      int64
	prev, next *tileEntry
}

// inflightCall coalesces concurrent misses on one key: the first caller
// decodes, everyone else blocks on done and shares the result. dropped is
// set (under the cache mutex) when the key is invalidated mid-decode, so a
// decode of since-replaced bytes is handed to its waiters but never cached.
type inflightCall struct {
	done    chan struct{}
	pl      *raster.Planar
	err     error
	dropped bool
}

// Cache is a byte-budgeted LRU cache of decoded tiles (all components of a
// tile variant cache as one entry) with single-flight deduplication of
// concurrent misses. It is safe for concurrent use; the cached images are
// shared read-only between callers and must not be mutated.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	entries  map[TileKey]*tileEntry
	head     tileEntry // sentinel: head.next is most recent
	inflight map[TileKey]*inflightCall

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// tileOverhead approximates the per-entry bookkeeping bytes charged against
// the budget on top of the pixel payload.
const tileOverhead = 160

// NewCache returns a cache holding at most maxBytes of decoded samples
// (plus per-entry overhead). maxBytes <= 0 disables caching: every lookup
// decodes (still deduplicated while in flight).
func NewCache(maxBytes int64) *Cache {
	c := &Cache{
		maxBytes: maxBytes,
		entries:  make(map[TileKey]*tileEntry),
		inflight: make(map[TileKey]*inflightCall),
	}
	c.head.prev, c.head.next = &c.head, &c.head
	return c
}

func (c *Cache) unlink(e *tileEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache) pushFront(e *tileEntry) {
	e.prev = &c.head
	e.next = c.head.next
	e.prev.next = e
	e.next.prev = e
}

// CacheOutcome reports how one GetOrDecode lookup was satisfied: from the
// cache, by running the decode, or by waiting on another caller's in-flight
// decode. The serving layer folds per-tile outcomes into the per-request
// latency histograms.
type CacheOutcome int

const (
	OutcomeHit CacheOutcome = iota
	OutcomeMiss
	OutcomeCoalesced
)

// String names the outcome (the /metrics label value).
func (o CacheOutcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	default:
		return "coalesced"
	}
}

// GetOrDecode returns the cached tile for key, or runs decode to produce it,
// reporting which happened. Concurrent calls for the same missing key run
// decode once and share the result (counted as coalesced, not hits).
// Successful results enter the cache, evicting least-recently-used tiles past
// the byte budget; errors are returned to every waiter and cached by nobody.
// A waiter whose ctx ends while the decode is in flight returns the context
// error immediately — the decode itself continues for the remaining waiters
// (and the cache), bounded by its own decode-side context.
func (c *Cache) GetOrDecode(ctx context.Context, key TileKey, decode func() (*raster.Planar, error)) (*raster.Planar, CacheOutcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.unlink(e)
		c.pushFront(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.pl, OutcomeHit, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-call.done:
			return call.pl, OutcomeCoalesced, call.err
		case <-ctx.Done():
			return nil, OutcomeCoalesced, ctx.Err()
		}
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()
	c.misses.Add(1)

	// The inflight entry must be cleared and waiters released even if decode
	// panics (net/http recovers handler panics, so a stuck entry would wedge
	// the key forever); the deferred cleanup runs before the panic unwinds
	// past us, and waiters see the nil-image error path.
	call.err = fmt.Errorf("serve: tile decode panicked")
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil && !call.dropped && c.maxBytes > 0 {
			bytes := int64(tileOverhead)
			for _, comp := range call.pl.Comps {
				bytes += int64(len(comp.Pix)) * 4
			}
			// Admission never violates the budget: an entry that alone
			// exceeds it bypasses the cache entirely (it would pin the cache
			// over budget until an unrelated miss evicted it), and any other
			// admission evicts LRU entries until the budget holds again.
			if bytes <= c.maxBytes {
				e := &tileEntry{key: key, pl: call.pl, bytes: bytes}
				c.entries[key] = e
				c.pushFront(e)
				c.size += e.bytes
				for c.size > c.maxBytes {
					lru := c.head.prev
					c.unlink(lru)
					delete(c.entries, lru.key)
					c.size -= lru.bytes
					c.evictions.Add(1)
				}
			}
		}
		c.mu.Unlock()
		close(call.done)
	}()
	call.pl, call.err = decode()
	return call.pl, OutcomeMiss, call.err
}

// Invalidate drops every cached tile of the given image and marks in-flight
// decodes of it as dropped (their waiters still get the result, but it will
// not enter the cache — a decode of since-replaced bytes must not outlive
// the replacement). Returns the number of cached entries removed.
func (c *Cache) Invalidate(image string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if key.Image == image {
			c.unlink(e)
			delete(c.entries, key)
			c.size -= e.bytes
			n++
		}
	}
	for key, call := range c.inflight {
		if key.Image == image {
			call.dropped = true
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Stats returns the current counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, size := len(c.entries), c.size
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     size,
		MaxBytes:  c.maxBytes,
	}
}
