// Package quant implements the scalar deadzone quantizer of JPEG2000 for the
// irreversible (9/7) path, step-size marshalling in the standard's
// exponent/mantissa format, and the chunk-parallel quantization stage the
// paper reports a ~3.2x speedup for on 4 CPUs.
package quant

import (
	"math"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
)

// Step describes one subband's quantizer step size in the QCD marker format:
// step = (1 + mantissa/2^11) * 2^(-exponent), relative to unit nominal range.
type Step struct {
	Exponent int // 0..31
	Mantissa int // 0..2047
}

// Value returns the step size the marker encodes.
func (s Step) Value() float64 {
	return (1 + float64(s.Mantissa)/2048) * math.Pow(2, -float64(s.Exponent))
}

// StepFor quantizes a real-valued step into marker form (round to nearest
// representable), clamping into the representable range.
func StepFor(step float64) Step {
	if step <= 0 {
		return Step{Exponent: 31}
	}
	e := 0
	for step < 1 && e < 31 {
		step *= 2
		e++
	}
	// step in [1, 2) now (unless clamped).
	m := int(math.Round((step - 1) * 2048))
	if m > 2047 {
		m = 2047
	}
	if m < 0 {
		m = 0
	}
	return Step{Exponent: e, Mantissa: m}
}

// BandSteps derives per-band steps for the given kernel, decomposition level
// count and base step. The base step is divided by the band synthesis norm so
// quantization error is (approximately) equalized in the image domain — the
// standard practice the QCD default tables encode.
func BandSteps(k dwt.Kernel, w, h, levels int, base float64) []Step {
	bands := dwt.Subbands(w, h, levels)
	steps := make([]Step, len(bands))
	for i, b := range bands {
		steps[i] = StepFor(base / dwt.BandNorm(k, levels, b))
	}
	return steps
}

// Forward quantizes the float coefficients of one band region into signed
// integers: q = sign(v) * floor(|v|/step). workers > 1 splits the rows as the
// paper's parallel quantization stage does ("every processor may have a chunk
// of coefficients").
func Forward(src []float64, stride int, b dwt.Subband, step float64, dst []int32, dstStride, workers int) {
	core.ParallelFor(workers, b.Height(), func(lo, hi int) {
		forwardRows(src, stride, b, step, dst, dstStride, lo, hi)
	})
}

func forwardRows(src []float64, stride int, b dwt.Subband, step float64, dst []int32, dstStride, lo, hi int) {
	inv := 1 / step
	for y := lo; y < hi; y++ {
		srow := src[(b.Y0+y)*stride+b.X0:]
		drow := dst[y*dstStride:]
		for x := 0; x < b.Width(); x++ {
			v := srow[x]
			if v >= 0 {
				drow[x] = int32(v * inv)
			} else {
				drow[x] = -int32(-v * inv)
			}
		}
	}
}

// BandJob describes one band's quantization for ForwardBands.
type BandJob struct {
	Band      dwt.Subband
	Step      float64
	Dst       []int32
	DstStride int
}

// ForwardBands quantizes several bands of one float plane under a single
// dispatch: every band contributes up to `workers` row chunks to one task
// set, staggered across workers like the tier-1 code-blocks, so the many
// small deep bands do not each pay their own dispatch. The task list is
// addressed arithmetically (task t is chunk t%p of band t/p), so dispatch
// does not allocate. Empty bands are skipped; the output is identical to
// calling Forward per band for any worker count. The tasks run on pool's
// resident workers (nil selects the shared core.Default pool).
func ForwardBands(src []float64, stride int, jobs []BandJob, workers int, pool *core.Pool) {
	if len(jobs) == 0 {
		return
	}
	if pool == nil {
		pool = core.Default()
	}
	p := core.Workers(workers)
	pool.TasksIDMax(p, len(jobs)*p, func(_, t int) {
		bj := jobs[t/p]
		h := bj.Band.Height()
		pc := p
		if pc > h {
			pc = h
		}
		i := t % p
		if i >= pc { // band has fewer rows than workers: chunk is empty
			return
		}
		sz, rem := h/pc, h%pc
		lo := i*sz + min(i, rem)
		hi := lo + sz
		if i < rem {
			hi++
		}
		forwardRows(src, stride, bj.Band, bj.Step, bj.Dst, bj.DstStride, lo, hi)
	})
}

// Inverse dequantizes integers back into float coefficients with the
// standard half-step midpoint bias for nonzero values (bit-plane truncation
// offsets at coarser granularity are already applied by the tier-1 decoder).
// The serial case bypasses the fork/join helper entirely: Inverse runs once
// per code-block on the decode path, where even a dead closure allocation
// per call would dominate the pooled decoder's steady-state alloc budget.
func Inverse(src []int32, srcStride int, b dwt.Subband, step float64, dst []float64, stride, workers int) {
	if workers == 1 {
		inverseRows(src, srcStride, b, step, dst, stride, 0, b.Height())
		return
	}
	core.ParallelFor(workers, b.Height(), func(lo, hi int) {
		inverseRows(src, srcStride, b, step, dst, stride, lo, hi)
	})
}

func inverseRows(src []int32, srcStride int, b dwt.Subband, step float64, dst []float64, stride, lo, hi int) {
	for y := lo; y < hi; y++ {
		srow := src[y*srcStride:]
		drow := dst[(b.Y0+y)*stride+b.X0:]
		for x := 0; x < b.Width(); x++ {
			switch v := srow[x]; {
			case v > 0:
				drow[x] = (float64(v) + 0.5) * step
			case v < 0:
				drow[x] = (float64(v) - 0.5) * step
			default:
				drow[x] = 0
			}
		}
	}
}
