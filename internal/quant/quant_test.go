package quant

import (
	"math"
	"testing"
	"testing/quick"

	"pj2k/internal/dwt"
)

func TestStepMarshalling(t *testing.T) {
	for _, v := range []float64{1.0, 0.5, 0.25, 0.1, 0.003, 1.0 / 512, 1e-9} {
		s := StepFor(v)
		got := s.Value()
		if v >= math.Pow(2, -31) {
			if math.Abs(got-v)/v > 0.001 {
				t.Fatalf("step %g marshalled to %g (%.4f%% error)", v, got, 100*math.Abs(got-v)/v)
			}
		}
	}
}

func TestStepForClamps(t *testing.T) {
	if s := StepFor(0); s.Exponent != 31 {
		t.Fatalf("zero step: %+v", s)
	}
	if s := StepFor(1.9999); s.Value() > 2 {
		t.Fatalf("max mantissa step: %v", s.Value())
	}
}

func TestBandStepsEqualizeImageError(t *testing.T) {
	steps := BandSteps(dwt.Irr97, 256, 256, 3, 1.0/512)
	bands := dwt.Subbands(256, 256, 3)
	// step * norm must be ~constant across bands (equalized image-domain
	// error per unit quantization noise).
	ref := steps[0].Value() * dwt.BandNorm(dwt.Irr97, 3, bands[0])
	for i, b := range bands[1:] {
		got := steps[i+1].Value() * dwt.BandNorm(dwt.Irr97, 3, b)
		if math.Abs(got-ref)/ref > 0.01 {
			t.Fatalf("band %d: step*norm %g vs %g", i+1, got, ref)
		}
	}
	// Deeper (larger-norm) bands need smaller steps.
	if steps[0].Value() >= steps[len(steps)-1].Value() {
		t.Fatal("LL step should be smallest")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	b := dwt.Subband{Type: dwt.HL, Level: 1, X0: 4, Y0: 2, X1: 20, Y1: 14}
	stride := 32
	src := make([]float64, stride*16)
	for y := b.Y0; y < b.Y1; y++ {
		for x := b.X0; x < b.X1; x++ {
			src[y*stride+x] = float64((x*31+y*17)%200) - 100 + 0.37
		}
	}
	const step = 0.25
	q := make([]int32, b.Width()*b.Height())
	Forward(src, stride, b, step, q, b.Width(), 1)
	back := make([]float64, stride*16)
	Inverse(q, b.Width(), b, step, back, stride, 1)
	for y := b.Y0; y < b.Y1; y++ {
		for x := b.X0; x < b.X1; x++ {
			diff := math.Abs(back[y*stride+x] - src[y*stride+x])
			if diff > step {
				t.Fatalf("(%d,%d): error %g exceeds step %g", x, y, diff, step)
			}
		}
	}
}

func TestDeadzoneSignSymmetry(t *testing.T) {
	b := dwt.Subband{X0: 0, Y0: 0, X1: 4, Y1: 1}
	src := []float64{1.7, -1.7, 0.3, -0.3}
	q := make([]int32, 4)
	Forward(src, 4, b, 1.0, q, 4, 1)
	if q[0] != 1 || q[1] != -1 {
		t.Fatalf("q = %v; want sign-symmetric floor", q)
	}
	if q[2] != 0 || q[3] != 0 {
		t.Fatalf("deadzone: %v", q)
	}
}

func TestParallelQuantizationMatchesSerial(t *testing.T) {
	b := dwt.Subband{X0: 0, Y0: 0, X1: 64, Y1: 64}
	src := make([]float64, 64*64)
	for i := range src {
		src[i] = float64(i%513)*0.37 - 90
	}
	qs := make([]int32, 64*64)
	qp := make([]int32, 64*64)
	Forward(src, 64, b, 0.1, qs, 64, 1)
	Forward(src, 64, b, 0.1, qp, 64, 8)
	for i := range qs {
		if qs[i] != qp[i] {
			t.Fatalf("parallel quantization differs at %d", i)
		}
	}
}

func TestQuickQuantBounds(t *testing.T) {
	f := func(raw int16, stepSeed uint8) bool {
		step := 0.01 + float64(stepSeed)/64
		b := dwt.Subband{X0: 0, Y0: 0, X1: 1, Y1: 1}
		src := []float64{float64(raw) / 16}
		q := make([]int32, 1)
		Forward(src, 1, b, step, q, 1, 1)
		back := make([]float64, 1)
		Inverse(q, 1, b, step, back, 1, 1)
		return math.Abs(back[0]-src[0]) <= step
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
