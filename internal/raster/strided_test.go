package raster

import "testing"

func TestStridedCheck(t *testing.T) {
	ok := Strided{Pix: make([]int32, 100), Stride: 10, Width: 10, Height: 10}
	if err := ok.Check(); err != nil {
		t.Fatal(err)
	}
	// The tightest legal buffer: the last row needs only Width samples, not a
	// full stride.
	tight := Strided{Pix: make([]int32, 5+3*12+7), Off: 5, Stride: 12, Width: 7, Height: 4}
	if err := tight.Check(); err != nil {
		t.Fatal(err)
	}
	bad := []Strided{
		{Pix: make([]int32, 100), Stride: 10, Width: 0, Height: 10}, // zero width
		{Pix: make([]int32, 100), Stride: 10, Width: 10, Height: 0}, // zero height
		{Pix: make([]int32, 100), Stride: 9, Width: 10, Height: 10}, // stride < width
		{Pix: make([]int32, 100), Off: -1, Stride: 10, Width: 10, Height: 10},
		{Pix: make([]int32, 99), Stride: 10, Width: 10, Height: 10}, // one short
		{Pix: make([]int32, 5+3*12+6), Off: 5, Stride: 12, Width: 7, Height: 4},
	}
	for i, v := range bad {
		if err := v.Check(); err == nil {
			t.Fatalf("bad view %d passed Check", i)
		}
	}
}

func TestStridedRowAtSub(t *testing.T) {
	// A 4x3 view at offset 2 with stride 6; samples numbered by position.
	pix := make([]int32, 2+2*6+4)
	for i := range pix {
		pix[i] = int32(i)
	}
	v := Strided{Pix: pix, Off: 2, Stride: 6, Width: 4, Height: 3}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 3; y++ {
		row := v.Row(y)
		if len(row) != 4 {
			t.Fatalf("row %d length %d", y, len(row))
		}
		for x := 0; x < 4; x++ {
			want := int32(2 + y*6 + x)
			if row[x] != want || v.At(x, y) != want {
				t.Fatalf("(%d,%d) = %d/%d, want %d", x, y, row[x], v.At(x, y), want)
			}
		}
	}
	sub, err := v.Sub(1, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Width != 2 || sub.Height != 2 || sub.Stride != 6 {
		t.Fatalf("sub geometry %dx%d stride %d", sub.Width, sub.Height, sub.Stride)
	}
	if got, want := sub.At(0, 0), v.At(1, 1); got != want {
		t.Fatalf("sub origin %d, parent (1,1) %d", got, want)
	}
	// Writes through the sub-view land in the parent's storage.
	sub.Row(1)[1] = -9
	if v.At(2, 2) != -9 {
		t.Fatal("sub write did not alias parent storage")
	}
	for _, bad := range [][4]int{{-1, 0, 2, 2}, {0, 0, 5, 2}, {2, 2, 2, 3}, {3, 0, 1, 2}} {
		if _, err := v.Sub(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Fatalf("Sub%v accepted", bad)
		}
	}
}

func TestStridedCompact(t *testing.T) {
	if !(Strided{Pix: make([]int32, 12), Stride: 4, Width: 4, Height: 3}).Compact() {
		t.Fatal("packed view not Compact")
	}
	loose := []Strided{
		{Pix: make([]int32, 13), Stride: 4, Width: 4, Height: 3},         // tail sample
		{Pix: make([]int32, 13), Off: 1, Stride: 4, Width: 4, Height: 3}, // offset
		{Pix: make([]int32, 15), Stride: 5, Width: 4, Height: 3},         // padded rows
	}
	for i, v := range loose {
		if v.Compact() {
			t.Fatalf("view %d claims Compact", i)
		}
	}
}

func TestStridedImage(t *testing.T) {
	v := Strided{Pix: make([]int32, 3+2*7+5), Off: 3, Stride: 7, Width: 5, Height: 3}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	v.Fill(0)
	im := v.Image()
	if im.Width != 5 || im.Height != 3 || im.Stride != 7 {
		t.Fatalf("image geometry %dx%d stride %d", im.Width, im.Height, im.Stride)
	}
	// Row addressing through the Image must hit the same storage.
	im.Row(2)[4] = 42
	if v.At(4, 2) != 42 {
		t.Fatal("Image row write did not land in the view")
	}
}

func TestViewOfRoundTrip(t *testing.T) {
	im := New(9, 4)
	v := ViewOf(im)
	if !v.Compact() && im.Stride == im.Width {
		t.Fatal("ViewOf a packed image is not Compact")
	}
	v.Fill(7)
	for _, p := range im.Pix {
		if p != 7 {
			t.Fatal("view fill missed image samples")
		}
	}
}
