// Package raster provides the image container used throughout the codec,
// deterministic synthetic test-image generators, and PGM/PPM I/O.
//
// Samples are stored as int32 in row-major order with an explicit stride so
// that sub-rectangles (tiles, subbands) can alias a parent image without
// copying. The codec works on signed samples; unsigned input is level-shifted
// by the pipeline, not by this package.
package raster

import (
	"errors"
	"fmt"
)

// Image is a single-component raster of signed samples.
//
// The sample at (x, y) is Pix[y*Stride+x]. Width and Height describe the
// visible rectangle; Stride may exceed Width (e.g. for padded images used by
// the cache experiments).
type Image struct {
	Width  int
	Height int
	Stride int
	Pix    []int32
}

// New allocates a Width x Height image with Stride == Width.
func New(width, height int) *Image {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("raster: invalid dimensions %dx%d", width, height))
	}
	return &Image{
		Width:  width,
		Height: height,
		Stride: width,
		Pix:    make([]int32, width*height),
	}
}

// NewPadded allocates a Width x Height image whose rows are padded to the
// given stride. Padding the stride off a power of two is one of the paper's
// two cache fixes for vertical filtering.
func NewPadded(width, height, stride int) *Image {
	if stride < width {
		panic("raster: stride < width")
	}
	return &Image{
		Width:  width,
		Height: height,
		Stride: stride,
		Pix:    make([]int32, stride*height),
	}
}

// At returns the sample at (x, y). It does not bounds-check beyond the slice.
func (im *Image) At(x, y int) int32 { return im.Pix[y*im.Stride+x] }

// Set stores v at (x, y).
func (im *Image) Set(x, y int, v int32) { im.Pix[y*im.Stride+x] = v }

// Row returns the x-th row as a slice aliasing the image.
func (im *Image) Row(y int) []int32 { return im.Pix[y*im.Stride : y*im.Stride+im.Width] }

// SubImage returns a view of the rectangle (x0,y0)-(x1,y1) (exclusive) that
// shares storage with im. Mutating the view mutates im.
func (im *Image) SubImage(x0, y0, x1, y1 int) (*Image, error) {
	if x0 < 0 || y0 < 0 || x1 > im.Width || y1 > im.Height || x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("raster: invalid subimage (%d,%d)-(%d,%d) of %dx%d", x0, y0, x1, y1, im.Width, im.Height)
	}
	return &Image{
		Width:  x1 - x0,
		Height: y1 - y0,
		Stride: im.Stride,
		Pix:    im.Pix[y0*im.Stride+x0 : (y1-1)*im.Stride+x1],
	}, nil
}

// Clone returns a deep copy with Stride == Width (padding dropped).
func (im *Image) Clone() *Image {
	out := New(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		copy(out.Row(y), im.Row(y))
	}
	return out
}

// Equal reports whether the visible rectangles of a and b hold identical
// samples.
func Equal(a, b *Image) bool {
	if a.Width != b.Width || a.Height != b.Height {
		return false
	}
	for y := 0; y < a.Height; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			if ra[x] != rb[x] {
				return false
			}
		}
	}
	return true
}

// Fill sets every visible sample to v.
func (im *Image) Fill(v int32) {
	for y := 0; y < im.Height; y++ {
		r := im.Row(y)
		for x := range r {
			r[x] = v
		}
	}
}

// ErrRange is returned when samples exceed the declared bit depth.
var ErrRange = errors.New("raster: sample out of range for bit depth")

// ClampTo8 clamps all samples into [0, 255]; used after lossy decoding.
func (im *Image) ClampTo8() {
	for y := 0; y < im.Height; y++ {
		r := im.Row(y)
		for x, v := range r {
			if v < 0 {
				r[x] = 0
			} else if v > 255 {
				r[x] = 255
			}
		}
	}
}
