package raster

import "math"

// xorshift64 is a tiny deterministic PRNG so synthetic workloads are
// reproducible across runs and hosts without pulling in math/rand's global
// state.
type xorshift64 uint64

func (s *xorshift64) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift64(x)
	return x
}

// float returns a uniform float64 in [0, 1).
func (s *xorshift64) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// Synthetic generates a deterministic 8-bit "natural" test image: a smooth
// illumination gradient, a few low-frequency blobs, oriented edges, and
// spatially low-pass-filtered noise. Natural images have a decaying power
// spectrum; the mix below provides one, which is what the rate-distortion
// experiments (Figs. 4, 5) depend on. seed selects the instance.
func Synthetic(width, height int, seed uint64) *Image {
	im := New(width, height)
	rng := xorshift64(seed*2654435761 + 0x9e3779b97f4a7c15)

	// Low-frequency blobs: random Gaussians.
	const nblobs = 12
	type blob struct{ cx, cy, sigma, amp float64 }
	blobs := make([]blob, nblobs)
	for i := range blobs {
		blobs[i] = blob{
			cx:    rng.float() * float64(width),
			cy:    rng.float() * float64(height),
			sigma: (0.05 + 0.20*rng.float()) * float64(min(width, height)),
			amp:   40*rng.float() - 20,
		}
	}
	// Oriented edge: a soft step across a random line.
	ex, ey := rng.float()*float64(width), rng.float()*float64(height)
	theta := rng.float() * math.Pi
	nx, ny := math.Cos(theta), math.Sin(theta)

	fw, fh := float64(width), float64(height)
	for y := 0; y < height; y++ {
		row := im.Row(y)
		fy := float64(y)
		for x := 0; x < width; x++ {
			fx := float64(x)
			v := 110.0 + 60.0*fx/fw + 30.0*fy/fh // illumination gradient
			for _, b := range blobs {
				dx, dy := fx-b.cx, fy-b.cy
				d2 := (dx*dx + dy*dy) / (2 * b.sigma * b.sigma)
				if d2 < 12 {
					v += b.amp * math.Exp(-d2)
				}
			}
			d := (fx-ex)*nx + (fy-ey)*ny
			v += 25.0 * math.Tanh(d/3.0) // soft edge
			row[x] = int32(v)
		}
	}

	// Low-pass-filtered noise: one pass of a 3x3 box over white noise,
	// generated row-by-row with a two-row buffer to stay O(width).
	noise := make([][]float64, 3)
	for i := range noise {
		noise[i] = make([]float64, width+2)
	}
	fill := func(dst []float64) {
		for i := range dst {
			dst[i] = rng.float()*24 - 12
		}
	}
	fill(noise[0])
	fill(noise[1])
	fill(noise[2])
	for y := 0; y < height; y++ {
		row := im.Row(y)
		n0, n1, n2 := noise[0], noise[1], noise[2]
		for x := 0; x < width; x++ {
			s := n0[x] + n0[x+1] + n0[x+2] +
				n1[x] + n1[x+1] + n1[x+2] +
				n2[x] + n2[x+1] + n2[x+2]
			nv := int32(float64(row[x]) + s/9.0)
			if nv < 0 {
				nv = 0
			} else if nv > 255 {
				nv = 255
			}
			row[x] = nv
		}
		noise[0], noise[1], noise[2] = noise[1], noise[2], noise[0]
		fill(noise[2])
	}
	return im
}

// SyntheticRadiograph generates a deterministic 12-bit-style medical image:
// dark background, a bright elliptical "bone" with internal texture, used by
// the lossless-coding example.
func SyntheticRadiograph(width, height int, seed uint64) *Image {
	im := New(width, height)
	rng := xorshift64(seed ^ 0xfeedfacecafebeef)
	cx, cy := float64(width)/2, float64(height)/2
	rx, ry := float64(width)*0.32, float64(height)*0.40
	for y := 0; y < height; y++ {
		row := im.Row(y)
		for x := 0; x < width; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			d := dx*dx + dy*dy
			v := 180.0 // background tissue level (of 4095)
			if d < 1 {
				v = 2600 + 900*(1-d) + 120*math.Sin(float64(x)/7.0)*math.Cos(float64(y)/9.0)
			} else if d < 1.3 {
				v = 180 + (1.3-d)/0.3*1400
			}
			v += rng.float()*40 - 20
			if v < 0 {
				v = 0
			} else if v > 4095 {
				v = 4095
			}
			row[x] = int32(v)
		}
	}
	return im
}

// KPixelImage returns a synthetic image holding approximately kpix*1024
// pixels with a 1:1 aspect ratio, matching the paper's image-size axis
// (256, 1024, 4096, 16384 Kpixels). The side is rounded to a multiple of 32.
func KPixelImage(kpix int, seed uint64) *Image {
	side := int(math.Sqrt(float64(kpix) * 1024))
	side = (side / 32) * 32
	if side < 32 {
		side = 32
	}
	return Synthetic(side, side, seed)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
