package raster

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(7, 5)
	if im.Stride != 7 || len(im.Pix) != 35 {
		t.Fatalf("stride %d len %d", im.Stride, len(im.Pix))
	}
	im.Set(6, 4, -42)
	if im.At(6, 4) != -42 {
		t.Fatalf("At = %d", im.At(6, 4))
	}
	if len(im.Row(4)) != 7 {
		t.Fatalf("row len %d", len(im.Row(4)))
	}
}

func TestPaddedStride(t *testing.T) {
	im := NewPadded(512, 4, 520)
	im.Set(511, 3, 9)
	if im.Pix[3*520+511] != 9 {
		t.Fatal("padded indexing broken")
	}
	c := im.Clone()
	if c.Stride != 512 || c.At(511, 3) != 9 {
		t.Fatal("clone must drop padding but keep samples")
	}
}

func TestSubImageAliases(t *testing.T) {
	im := New(8, 8)
	sub, err := im.SubImage(2, 3, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	sub.Set(0, 0, 77)
	if im.At(2, 3) != 77 {
		t.Fatal("subimage must alias parent")
	}
	if sub.Width != 4 || sub.Height != 4 {
		t.Fatalf("subimage dims %dx%d", sub.Width, sub.Height)
	}
	if _, err := im.SubImage(5, 5, 5, 9); err == nil {
		t.Fatal("want error for empty/oob rectangle")
	}
}

func TestEqualAndFill(t *testing.T) {
	a, b := New(4, 4), New(4, 4)
	a.Fill(3)
	if Equal(a, b) {
		t.Fatal("different images reported equal")
	}
	b.Fill(3)
	if !Equal(a, b) {
		t.Fatal("identical images reported unequal")
	}
	if Equal(a, New(4, 5)) {
		t.Fatal("different sizes reported equal")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 48, 7)
	b := Synthetic(64, 48, 7)
	if !Equal(a, b) {
		t.Fatal("same seed must give same image")
	}
	c := Synthetic(64, 48, 8)
	if Equal(a, c) {
		t.Fatal("different seeds gave identical images")
	}
	for y := 0; y < a.Height; y++ {
		for _, v := range a.Row(y) {
			if v < 0 || v > 255 {
				t.Fatalf("sample %d out of 8-bit range", v)
			}
		}
	}
}

func TestSyntheticHasStructure(t *testing.T) {
	// The generator must produce non-trivial variance (not flat) and local
	// correlation (neighbor diffs smaller than global spread) or the R/D
	// experiments would be meaningless.
	im := Synthetic(256, 256, 1)
	var sum, sum2 float64
	n := float64(im.Width * im.Height)
	for y := 0; y < im.Height; y++ {
		for _, v := range im.Row(y) {
			sum += float64(v)
			sum2 += float64(v) * float64(v)
		}
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 100 {
		t.Fatalf("variance %.1f too small; image nearly flat", variance)
	}
	var diff2 float64
	for y := 0; y < im.Height; y++ {
		r := im.Row(y)
		for x := 1; x < im.Width; x++ {
			d := float64(r[x] - r[x-1])
			diff2 += d * d
		}
	}
	diffVar := diff2 / n
	if diffVar > variance {
		t.Fatalf("neighbor-difference energy %.1f exceeds variance %.1f; no spatial correlation", diffVar, variance)
	}
}

func TestRadiographRange(t *testing.T) {
	im := SyntheticRadiograph(128, 128, 3)
	var maxv int32
	for y := 0; y < im.Height; y++ {
		for _, v := range im.Row(y) {
			if v < 0 || v > 4095 {
				t.Fatalf("sample %d out of 12-bit range", v)
			}
			if v > maxv {
				maxv = v
			}
		}
	}
	if maxv < 2000 {
		t.Fatalf("radiograph lacks bright structure (max %d)", maxv)
	}
}

func TestKPixelImageSizes(t *testing.T) {
	for _, kp := range []int{256, 1024, 4096} {
		im := KPixelImage(kp, 1)
		got := im.Width * im.Height
		want := kp * 1024
		if got < want*8/10 || got > want {
			t.Fatalf("KPixelImage(%d) = %d pixels, want ~%d", kp, got, want)
		}
		if im.Width%32 != 0 {
			t.Fatalf("width %d not a multiple of 32", im.Width)
		}
	}
}

func TestPGMRoundTrip8(t *testing.T) {
	im := Synthetic(33, 21, 5)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im, 255); err != nil {
		t.Fatal(err)
	}
	back, maxval, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if maxval != 255 || !Equal(im, back) {
		t.Fatal("8-bit PGM round trip failed")
	}
}

func TestPGMRoundTrip16(t *testing.T) {
	im := SyntheticRadiograph(17, 9, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im, 4095); err != nil {
		t.Fatal(err)
	}
	back, maxval, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if maxval != 4095 || !Equal(im, back) {
		t.Fatal("16-bit PGM round trip failed")
	}
}

func TestPGMComments(t *testing.T) {
	data := []byte("P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04")
	im, _, err := ReadPGM(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.At(1, 1) != 4 {
		t.Fatalf("got %d", im.At(1, 1))
	}
}

func TestPGMErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("P6\n2 2\n255\n....."),      // wrong magic
		[]byte("P5\n0 2\n255\n"),           // zero width
		[]byte("P5\n2 2\n255\n\x01"),       // truncated pixels
		[]byte("P5\n2 2\n70000\n\x01\x01"), // maxval too large
	}
	for i, c := range cases {
		if _, _, err := ReadPGM(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestQuickPGMRoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed uint64) bool {
		w, h := 1+int(w8%40), 1+int(h8%40)
		im := Synthetic(max(w, 8), max(h, 8), seed)
		var buf bytes.Buffer
		if err := WritePGM(&buf, im, 255); err != nil {
			return false
		}
		back, _, err := ReadPGM(&buf)
		return err == nil && Equal(im, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
