package raster

import "fmt"

// Strided is a view into caller-owned sample storage: the sample at (x, y) is
// Pix[Off+y*Stride+x]. It is the destination type of the decoder's
// DecodeInto entry points — a decode writes a window straight into a larger
// raster (a mosaic, a reused arena, a sub-rectangle of a display buffer)
// without an intermediate allocation. Unlike Image, the view carries an
// explicit origin offset, so a sub-rectangle anywhere in a parent buffer is
// expressible without reslicing Pix.
//
// A Strided is a value (three ints and a slice header); pass it by value.
// Views of one buffer may be used concurrently as long as they do not
// overlap.
type Strided struct {
	Pix           []int32
	Off           int // index of sample (0, 0) in Pix
	Stride        int // samples per row; Stride >= Width
	Width, Height int
}

// ViewOf returns the Strided view covering im's visible rectangle.
func ViewOf(im *Image) Strided {
	return Strided{Pix: im.Pix, Stride: im.Stride, Width: im.Width, Height: im.Height}
}

// Check validates the view's geometry against its backing slice: every
// addressable sample must fall inside Pix. Decode entry points call it before
// writing so a mis-built view fails fast instead of scribbling or panicking
// mid-decode.
func (v Strided) Check() error {
	if v.Width <= 0 || v.Height <= 0 {
		return fmt.Errorf("raster: invalid view dimensions %dx%d", v.Width, v.Height)
	}
	if v.Stride < v.Width {
		return fmt.Errorf("raster: view stride %d < width %d", v.Stride, v.Width)
	}
	if v.Off < 0 {
		return fmt.Errorf("raster: negative view offset %d", v.Off)
	}
	if last := v.Off + (v.Height-1)*v.Stride + v.Width; last > len(v.Pix) {
		return fmt.Errorf("raster: view needs %d samples, buffer holds %d", last, len(v.Pix))
	}
	return nil
}

// Row returns row y of the view as a slice aliasing the backing buffer.
func (v Strided) Row(y int) []int32 {
	o := v.Off + y*v.Stride
	return v.Pix[o : o+v.Width]
}

// At returns the sample at (x, y).
func (v Strided) At(x, y int) int32 { return v.Pix[v.Off+y*v.Stride+x] }

// Sub returns the view of the rectangle (x0,y0)-(x1,y1) (exclusive) within v,
// sharing storage.
func (v Strided) Sub(x0, y0, x1, y1 int) (Strided, error) {
	if x0 < 0 || y0 < 0 || x1 > v.Width || y1 > v.Height || x0 >= x1 || y0 >= y1 {
		return Strided{}, fmt.Errorf("raster: invalid subview (%d,%d)-(%d,%d) of %dx%d",
			x0, y0, x1, y1, v.Width, v.Height)
	}
	return Strided{
		Pix:    v.Pix,
		Off:    v.Off + y0*v.Stride + x0,
		Stride: v.Stride,
		Width:  x1 - x0,
		Height: y1 - y0,
	}, nil
}

// Compact reports whether the view is exactly a packed Width x Height buffer
// (no offset, no row padding, no tail) — the shape whole-plane fast paths can
// process as one flat slice.
func (v Strided) Compact() bool {
	return v.Off == 0 && v.Stride == v.Width && len(v.Pix) == v.Width*v.Height
}

// Image returns an Image header over the view's samples, sharing storage.
// Row-based consumers (the inter-component transforms) address it correctly
// for any offset and stride.
func (v Strided) Image() *Image {
	return &Image{
		Width:  v.Width,
		Height: v.Height,
		Stride: v.Stride,
		Pix:    v.Pix[v.Off : v.Off+(v.Height-1)*v.Stride+v.Width],
	}
}

// Fill sets every sample of the view to val.
func (v Strided) Fill(val int32) {
	for y := 0; y < v.Height; y++ {
		r := v.Row(y)
		for x := range r {
			r[x] = val
		}
	}
}
