package raster

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM writes the image as a binary PGM (P5). maxval selects 8- or 16-bit
// output; samples are clamped into [0, maxval].
func WritePGM(w io.Writer, im *Image, maxval int) error {
	if maxval <= 0 || maxval > 65535 {
		return fmt.Errorf("raster: invalid PGM maxval %d", maxval)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n%d\n", im.Width, im.Height, maxval)
	wide := maxval > 255
	for y := 0; y < im.Height; y++ {
		for _, v := range im.Row(y) {
			if v < 0 {
				v = 0
			} else if v > int32(maxval) {
				v = int32(maxval)
			}
			if wide {
				bw.WriteByte(byte(v >> 8))
			}
			bw.WriteByte(byte(v))
		}
	}
	return bw.Flush()
}

// WritePPM writes a three-component image as a binary PPM (P6) with
// interleaved RGB samples. maxval selects 8- or 16-bit output; samples are
// clamped into [0, maxval].
func WritePPM(w io.Writer, pl *Planar, maxval int) error {
	if maxval <= 0 || maxval > 65535 {
		return fmt.Errorf("raster: invalid PPM maxval %d", maxval)
	}
	if pl.NComp() != 3 {
		return fmt.Errorf("raster: PPM needs 3 components, have %d", pl.NComp())
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n%d\n", pl.Width(), pl.Height(), maxval)
	wide := maxval > 255
	for y := 0; y < pl.Height(); y++ {
		rows := [3][]int32{pl.Comps[0].Row(y), pl.Comps[1].Row(y), pl.Comps[2].Row(y)}
		for x := 0; x < pl.Width(); x++ {
			for c := 0; c < 3; c++ {
				v := rows[c][x]
				if v < 0 {
					v = 0
				} else if v > int32(maxval) {
					v = int32(maxval)
				}
				if wide {
					bw.WriteByte(byte(v >> 8))
				}
				bw.WriteByte(byte(v))
			}
		}
	}
	return bw.Flush()
}

// ReadPGM reads a binary PGM (P5). It returns the image and the maxval
// declared in the header.
func ReadPGM(r io.Reader) (*Image, int, error) {
	pl, maxval, err := ReadPNM(r)
	if err != nil {
		return nil, 0, err
	}
	if pl.NComp() != 1 {
		return nil, 0, fmt.Errorf("raster: expected PGM, got %d-component PNM", pl.NComp())
	}
	return pl.Comps[0], maxval, nil
}

// ReadPPM reads a binary PPM (P6) into a three-component Planar.
func ReadPPM(r io.Reader) (*Planar, int, error) {
	pl, maxval, err := ReadPNM(r)
	if err != nil {
		return nil, 0, err
	}
	if pl.NComp() != 3 {
		return nil, 0, fmt.Errorf("raster: expected PPM, got %d-component PNM", pl.NComp())
	}
	return pl, maxval, nil
}

// Dimension caps for PNM headers, matching the codestream parser's SIZ
// limits (t2.ReadCodestream): an image the codec could never decode is
// rejected at read time instead of allocating for it.
const (
	MaxPNMDim    = 1 << 20
	MaxPNMPixels = 1 << 28
)

// ReadPNM reads a binary PNM — PGM (P5, one component) or PPM (P6, three
// components) — returning the planes and the maxval declared in the header.
// Headers beyond MaxPNMDim per side or MaxPNMPixels total are rejected.
func ReadPNM(r io.Reader) (*Planar, int, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, 0, fmt.Errorf("raster: reading PNM magic: %w", err)
	}
	ncomp := 0
	switch magic {
	case "P5":
		ncomp = 1
	case "P6":
		ncomp = 3
	default:
		return nil, 0, fmt.Errorf("raster: unsupported PNM magic %q", magic)
	}
	width, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	height, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	maxval, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	if width <= 0 || height <= 0 || maxval <= 0 || maxval > 65535 ||
		width > MaxPNMDim || height > MaxPNMDim || height > MaxPNMPixels/width {
		return nil, 0, fmt.Errorf("raster: bad PNM header %dx%d maxval %d", width, height, maxval)
	}
	// Header ends with exactly one whitespace byte, already consumed by
	// readPNMInt.
	pl := NewPlanar(width, height, ncomp)
	wide := maxval > 255
	bpp := 1 + b2i(wide)
	buf := make([]byte, width*ncomp*bpp)
	for y := 0; y < height; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("raster: reading PNM row %d: %w", y, err)
		}
		for c := 0; c < ncomp; c++ {
			row := pl.Comps[c].Row(y)
			if wide {
				for x := 0; x < width; x++ {
					off := (x*ncomp + c) * 2
					row[x] = int32(buf[off])<<8 | int32(buf[off+1])
				}
			} else {
				for x := 0; x < width; x++ {
					row[x] = int32(buf[x*ncomp+c])
				}
			}
		}
	}
	return pl, maxval, nil
}

// readPNMInt reads the next decimal integer, skipping whitespace and
// '#'-comments, consuming exactly one trailing whitespace byte.
func readPNMInt(br *bufio.Reader) (int, error) {
	n := 0
	seen := false
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("raster: PGM header: %w", err)
		}
		switch {
		case c == '#' && !seen:
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
		case c >= '0' && c <= '9':
			seen = true
			n = n*10 + int(c-'0')
			if n > 1<<30 {
				return 0, fmt.Errorf("raster: PGM header value overflow")
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if seen {
				return n, nil
			}
		default:
			return 0, fmt.Errorf("raster: unexpected byte %q in PGM header", c)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
