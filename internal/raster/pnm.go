package raster

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM writes the image as a binary PGM (P5). maxval selects 8- or 16-bit
// output; samples are clamped into [0, maxval].
func WritePGM(w io.Writer, im *Image, maxval int) error {
	if maxval <= 0 || maxval > 65535 {
		return fmt.Errorf("raster: invalid PGM maxval %d", maxval)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n%d\n", im.Width, im.Height, maxval)
	wide := maxval > 255
	for y := 0; y < im.Height; y++ {
		for _, v := range im.Row(y) {
			if v < 0 {
				v = 0
			} else if v > int32(maxval) {
				v = int32(maxval)
			}
			if wide {
				bw.WriteByte(byte(v >> 8))
			}
			bw.WriteByte(byte(v))
		}
	}
	return bw.Flush()
}

// ReadPGM reads a binary PGM (P5). It returns the image and the maxval
// declared in the header.
func ReadPGM(r io.Reader) (*Image, int, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, 0, fmt.Errorf("raster: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, 0, fmt.Errorf("raster: unsupported PNM magic %q", magic)
	}
	width, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	height, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	maxval, err := readPNMInt(br)
	if err != nil {
		return nil, 0, err
	}
	if width <= 0 || height <= 0 || maxval <= 0 || maxval > 65535 {
		return nil, 0, fmt.Errorf("raster: bad PGM header %dx%d maxval %d", width, height, maxval)
	}
	// Header ends with exactly one whitespace byte, already consumed by
	// readPNMInt.
	im := New(width, height)
	wide := maxval > 255
	buf := make([]byte, width*(1+b2i(wide)))
	for y := 0; y < height; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("raster: reading PGM row %d: %w", y, err)
		}
		row := im.Row(y)
		if wide {
			for x := 0; x < width; x++ {
				row[x] = int32(buf[2*x])<<8 | int32(buf[2*x+1])
			}
		} else {
			for x := 0; x < width; x++ {
				row[x] = int32(buf[x])
			}
		}
	}
	return im, maxval, nil
}

// readPNMInt reads the next decimal integer, skipping whitespace and
// '#'-comments, consuming exactly one trailing whitespace byte.
func readPNMInt(br *bufio.Reader) (int, error) {
	n := 0
	seen := false
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("raster: PGM header: %w", err)
		}
		switch {
		case c == '#' && !seen:
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
		case c >= '0' && c <= '9':
			seen = true
			n = n*10 + int(c-'0')
			if n > 1<<30 {
				return 0, fmt.Errorf("raster: PGM header value overflow")
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if seen {
				return n, nil
			}
		default:
			return 0, fmt.Errorf("raster: unexpected byte %q in PGM header", c)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
