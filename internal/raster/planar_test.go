package raster

import (
	"bytes"
	"testing"
)

func testPlanar(w, h int) *Planar {
	pl := NewPlanar(w, h, 3)
	for ci, c := range pl.Comps {
		for y := 0; y < h; y++ {
			row := c.Row(y)
			for x := range row {
				row[x] = int32((x*3 + y*5 + ci*7) % 256)
			}
		}
	}
	return pl
}

func TestPPMRoundTrip(t *testing.T) {
	pl := testPlanar(33, 21)
	var buf bytes.Buffer
	if err := WritePPM(&buf, pl, 255); err != nil {
		t.Fatal(err)
	}
	back, maxval, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if maxval != 255 || !PlanarEqual(pl, back) {
		t.Fatal("8-bit PPM round trip failed")
	}
}

func TestPPMRoundTrip16(t *testing.T) {
	pl := NewPlanar(17, 9, 3)
	for ci, c := range pl.Comps {
		for i := range c.Pix {
			c.Pix[i] = int32((i*331 + ci*1000) % 4096)
		}
	}
	var buf bytes.Buffer
	if err := WritePPM(&buf, pl, 4095); err != nil {
		t.Fatal(err)
	}
	back, maxval, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if maxval != 4095 || !PlanarEqual(pl, back) {
		t.Fatal("16-bit PPM round trip failed")
	}
}

func TestReadPNMDispatch(t *testing.T) {
	im := New(5, 4)
	for i := range im.Pix {
		im.Pix[i] = int32(i * 10)
	}
	var pgm bytes.Buffer
	if err := WritePGM(&pgm, im, 255); err != nil {
		t.Fatal(err)
	}
	pl, _, err := ReadPNM(&pgm)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NComp() != 1 || !Equal(pl.Comps[0], im) {
		t.Fatal("P5 dispatch failed")
	}
	var ppm bytes.Buffer
	if err := WritePPM(&ppm, testPlanar(5, 4), 255); err != nil {
		t.Fatal(err)
	}
	if pl, _, err = ReadPNM(&ppm); err != nil || pl.NComp() != 3 {
		t.Fatalf("P6 dispatch failed: %v", err)
	}
	// Cross-format readers reject the other magic.
	var ppm2 bytes.Buffer
	WritePPM(&ppm2, testPlanar(5, 4), 255)
	if _, _, err := ReadPGM(&ppm2); err == nil {
		t.Error("ReadPGM accepted a P6 stream")
	}
	var pgm2 bytes.Buffer
	WritePGM(&pgm2, im, 255)
	if _, _, err := ReadPPM(&pgm2); err == nil {
		t.Error("ReadPPM accepted a P5 stream")
	}
}

func TestPlanarValidate(t *testing.T) {
	if err := (&Planar{}).Validate(); err == nil {
		t.Error("empty planar accepted")
	}
	if err := (&Planar{Comps: []*Image{New(4, 4), New(5, 4)}}).Validate(); err == nil {
		t.Error("mismatched component sizes accepted")
	}
	if err := RGB(New(4, 4), New(4, 4), New(4, 4)).Validate(); err != nil {
		t.Errorf("valid planar rejected: %v", err)
	}
	if !PlanarEqual(Gray(New(3, 3)), Gray(New(3, 3))) {
		t.Error("equal grays unequal")
	}
	if PlanarEqual(Gray(New(3, 3)), testPlanar(3, 3)) {
		t.Error("different component counts compare equal")
	}
}

func TestPlanarClone(t *testing.T) {
	pl := testPlanar(8, 6)
	cl := pl.Clone()
	cl.Comps[1].Set(0, 0, 999)
	if pl.Comps[1].At(0, 0) == 999 {
		t.Fatal("clone shares storage")
	}
	cl.Comps[1].Set(0, 0, pl.Comps[1].At(0, 0))
	if !PlanarEqual(pl, cl) {
		t.Fatal("clone differs")
	}
}
