package raster

import "fmt"

// Planar is a multi-component raster: one Image per component, all with equal
// visible dimensions (component interleaving is a transport concern; the
// codec works on planes). A single-component Planar wraps a grayscale image;
// three components are an RGB (or post-MCT YCbCr) triplet.
type Planar struct {
	Comps []*Image
}

// NewPlanar allocates ncomp components of width x height samples.
func NewPlanar(width, height, ncomp int) *Planar {
	if ncomp <= 0 {
		panic(fmt.Sprintf("raster: invalid component count %d", ncomp))
	}
	p := &Planar{Comps: make([]*Image, ncomp)}
	for i := range p.Comps {
		p.Comps[i] = New(width, height)
	}
	return p
}

// Gray wraps a single image as a one-component Planar (sharing storage).
func Gray(im *Image) *Planar { return &Planar{Comps: []*Image{im}} }

// RGB wraps three equally sized planes as a Planar (sharing storage).
func RGB(r, g, b *Image) *Planar { return &Planar{Comps: []*Image{r, g, b}} }

// NComp returns the component count.
func (p *Planar) NComp() int { return len(p.Comps) }

// Width returns the component width (all components agree).
func (p *Planar) Width() int { return p.Comps[0].Width }

// Height returns the component height (all components agree).
func (p *Planar) Height() int { return p.Comps[0].Height }

// Validate checks that the Planar has at least one component and that every
// component has identical visible dimensions.
func (p *Planar) Validate() error {
	if len(p.Comps) == 0 {
		return fmt.Errorf("raster: planar image with no components")
	}
	w, h := p.Comps[0].Width, p.Comps[0].Height
	for i, c := range p.Comps {
		if c == nil {
			return fmt.Errorf("raster: component %d is nil", i)
		}
		if c.Width != w || c.Height != h {
			return fmt.Errorf("raster: component %d is %dx%d, component 0 is %dx%d",
				i, c.Width, c.Height, w, h)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Planar) Clone() *Planar {
	out := &Planar{Comps: make([]*Image, len(p.Comps))}
	for i, c := range p.Comps {
		out.Comps[i] = c.Clone()
	}
	return out
}

// ClampTo8 clamps every component's samples into [0, 255].
func (p *Planar) ClampTo8() {
	for _, c := range p.Comps {
		c.ClampTo8()
	}
}

// PlanarEqual reports whether a and b have the same component count and every
// pair of components holds identical samples.
func PlanarEqual(a, b *Planar) bool {
	if len(a.Comps) != len(b.Comps) {
		return false
	}
	for i := range a.Comps {
		if !Equal(a.Comps[i], b.Comps[i]) {
			return false
		}
	}
	return true
}
