// Package telemetry is the dependency-free instrumentation core of the
// serving stack: sharded atomic counters, gauges and fixed-bucket latency
// histograms, collected in a Registry that snapshots to JSON-friendly
// structures and emits the Prometheus text exposition format directly.
//
// Everything on the recording path — Counter.Add, Gauge.Set,
// Histogram.Observe — is allocation-free and lock-free, so the codec pipeline
// and the HTTP serving layer can record per-stage durations and per-request
// outcomes at full load without perturbing the numbers they measure
// (TestHotPathAllocs pins the zero-allocation property).
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards is the shard count of a Counter; a power of two so the shard
// pick is a mask. Eight shards flatten the cache-line ping-pong of a hot
// counter shared by that many cores without bloating idle counters.
const counterShards = 8

// shardPad pads each shard to its own cache line so concurrent writers do not
// false-share.
type shardPad struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// ready to use.
type Counter struct {
	shards [counterShards]shardPad
}

// shardIndex picks a shard from the goroutine's stack address: goroutines
// live on distinct stacks, so concurrent writers spread across shards with no
// per-goroutine state and no allocation. The low bits inside a frame are
// noise; bits above the frame size discriminate stacks.
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>10) & (counterShards - 1)
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (useful for in-flight style gauges).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram buckets: log-spaced, base 2, anchored at 1µs. Bucket i counts
// observations in (1µs·2^(i-1), 1µs·2^i]; the first bucket catches everything
// up to 1µs and the last is the +Inf overflow. 28 finite buckets reach ~134s,
// past any request deadline worth histogramming.
const (
	histBuckets   = 28
	histFirstNano = 1000 // 1µs
)

// BucketBound returns the inclusive upper bound of finite bucket i in
// nanoseconds.
func BucketBound(i int) int64 { return histFirstNano << uint(i) }

// Histogram is a fixed-bucket latency histogram. Observations are durations;
// buckets are log-spaced so one histogram spans microsecond DWT stages and
// multi-second whole-image decodes with bounded relative error (each bucket
// is 2x the previous, so a derived percentile is within 2x — and after the
// within-bucket interpolation usually much closer). The zero value is ready
// to use.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64
	sum    atomic.Int64 // total observed nanoseconds
}

// bucketFor returns the index of the bucket owning an observation of ns
// nanoseconds: the smallest i with ns <= 1µs·2^i, or the overflow bucket.
func bucketFor(ns int64) int {
	if ns <= histFirstNano {
		return 0
	}
	// Ceil to whole microsecond-multiples of the first bound, then the bucket
	// is the number of doublings needed to cover it.
	x := uint64((ns + histFirstNano - 1) / histFirstNano)
	i := bits.Len64(x - 1)
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a histogram: cumulative bucket
// counts (Prometheus semantics: Cumulative[i] counts observations <= the
// bucket bound, the last entry is the total), the total count and the summed
// nanoseconds.
type HistogramSnapshot struct {
	Cumulative [histBuckets + 1]uint64
	Count      uint64
	SumNanos   int64
}

// Snapshot copies the histogram's current state. Concurrent Observe calls may
// land between bucket reads; the snapshot is still a valid histogram (each
// bucket is internally consistent), which is all percentile derivation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.SumNanos = h.sum.Load()
	return s
}

// Quantile derives the q-quantile (0 <= q <= 1) from the snapshot as a
// duration, interpolating linearly within the owning bucket (Prometheus's
// histogram_quantile rule). It returns 0 for an empty histogram; quantiles
// landing in the overflow bucket return the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Cumulative {
		if float64(cum) < rank {
			continue
		}
		if i >= histBuckets {
			return time.Duration(BucketBound(histBuckets - 1))
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		prev := uint64(0)
		if i > 0 {
			prev = s.Cumulative[i-1]
		}
		inBucket := float64(cum - prev)
		if inBucket == 0 {
			return time.Duration(hi)
		}
		frac := (rank - float64(prev)) / inBucket
		return time.Duration(float64(lo) + frac*float64(hi-lo))
	}
	return time.Duration(BucketBound(histBuckets - 1))
}

// Mean returns the snapshot's mean observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}
