package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHotPathAllocs pins the zero-allocation property of every recording
// operation: instrumentation threaded through the codec hot paths must cost
// atomic operations only, or the telemetry layer would perturb the numbers it
// reports (and the codec's own steady-state alloc caps).
func TestHotPathAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	var c Counter
	const goroutines, each = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Fatalf("counter = %d, want %d", got, goroutines*each)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {999, 0}, {1000, 0}, // first bucket: <= 1µs
		{1001, 1}, {2000, 1}, // second: <= 2µs
		{2001, 2}, {4000, 2},
		{BucketBound(10), 10},
		{BucketBound(10) + 1, 11},
		{1 << 62, histBuckets}, // overflow
	}
	for _, tc := range cases {
		if got := bucketFor(tc.ns); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 10 at ~100ms: p50 must land near 1ms, p99
	// near 100ms (within the 2x bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 > 2*time.Millisecond || p50 < 100*time.Microsecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 > 200*time.Millisecond || p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms", p99)
	}
	if mean := s.Mean(); mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Errorf("mean = %v, want ~10ms", mean)
	}
	// Cumulative counts must be monotone with the total as the last entry.
	prev := uint64(0)
	for i, c := range s.Cumulative {
		if c < prev {
			t.Fatalf("bucket %d: cumulative count %d < previous %d", i, c, prev)
		}
		prev = c
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Fatalf("last cumulative %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	h.Observe(time.Hour) // overflow bucket
	if got := h.Snapshot().Quantile(0.99); got != time.Duration(BucketBound(histBuckets-1)) {
		t.Errorf("overflow p99 = %v, want largest finite bound", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "help")
}

func TestLabels(t *testing.T) {
	if got := Labels("stage", "t1", "kind", "enc"); got != `stage="t1",kind="enc"` {
		t.Fatalf("Labels = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pj2k_requests_total", "Requests served.")
	g := r.Gauge("pj2k_in_flight", "In-flight requests.")
	r.GaugeFunc("pj2k_queue_depth", "Queue depth.", func() int64 { return 7 })
	h1 := r.HistogramWithLabels("pj2k_request_seconds", Labels("outcome", "hit"), "Request latency.")
	h2 := r.HistogramWithLabels("pj2k_request_seconds", Labels("outcome", "miss"), "Request latency.")
	c.Add(5)
	g.Set(2)
	h1.Observe(3 * time.Millisecond)
	h2.Observe(40 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pj2k_requests_total counter",
		"pj2k_requests_total 5",
		"# TYPE pj2k_in_flight gauge",
		"pj2k_in_flight 2",
		"pj2k_queue_depth 7",
		"# TYPE pj2k_request_seconds histogram",
		`pj2k_request_seconds_bucket{outcome="hit",le="+Inf"} 1`,
		`pj2k_request_seconds_count{outcome="miss"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family even with two series.
	if n := strings.Count(out, "# TYPE pj2k_request_seconds histogram"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}
