package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metricKind discriminates the registry's entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series: a family name, optional label pairs (a
// pre-rendered `k="v",...` string), and the backing instrument. Families with
// several label sets register one metric per label set under the same name.
type metric struct {
	name   string
	labels string // rendered label body, "" for unlabeled series
	help   string
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	fn     func() int64
	hist   *Histogram
}

// Registry is an ordered collection of metrics with Prometheus text
// exposition. Registration locks; the returned instruments record without
// touching the registry again, so registration cost is paid once at startup.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // name + "{" + labels: duplicate registration guard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// Labels renders label pairs for the *WithLabels registration calls:
// Labels("stage", "t1") → `stage="t1"`. Pairs must alternate key, value.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels needs key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name + "{" + m.labels
	if prev, ok := r.index[key]; ok {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s{%s} (help %q)", m.name, m.labels, prev.help))
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWithLabels(name, "", help)
}

// CounterWithLabels registers a counter series under a family name with the
// given rendered labels (see Labels).
func (r *Registry) CounterWithLabels(name, labels, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, labels: labels, help: help, kind: kindCounter, ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for monotone totals another subsystem already maintains atomically.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWithLabels(name, "", help)
}

// GaugeWithLabels registers a gauge series under a family name with the given
// rendered labels (see Labels) — the shape of the conventional
// `*_build_info{...} 1` metric.
func (r *Registry) GaugeWithLabels(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, labels: labels, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time
// — the shape for values another subsystem already maintains (queue depths,
// cache occupancy) that would be racy or wasteful to mirror.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers and returns an unlabeled latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWithLabels(name, "", help)
}

// HistogramWithLabels registers a histogram series under a family name with
// the given rendered labels (see Labels).
func (r *Registry) HistogramWithLabels(name, labels, help string) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, labels: labels, help: help, kind: kindHistogram, hist: h})
	return h
}

// formatLe renders a bucket bound in seconds the way Prometheus clients do:
// shortest float text that round-trips.
func formatLe(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// seconds renders a nanosecond total as seconds.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per family,
// histograms as cumulative _bucket/_sum/_count series with le bounds in
// seconds. Families keep registration order; series within a family are
// emitted together even when registered apart.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Group series by family, preserving first-appearance order.
	order := make([]string, 0, len(r.metrics))
	families := make(map[string][]*metric, len(r.metrics))
	for _, m := range r.metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		typ := "counter"
		switch fam[0].kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", name, fam[0].help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, m := range fam {
			switch m.kind {
			case kindCounter:
				writeSample(&b, m.name, m.labels, strconv.FormatInt(m.ctr.Value(), 10))
			case kindCounterFunc:
				writeSample(&b, m.name, m.labels, strconv.FormatInt(m.fn(), 10))
			case kindGauge:
				writeSample(&b, m.name, m.labels, strconv.FormatInt(m.gauge.Value(), 10))
			case kindGaugeFunc:
				writeSample(&b, m.name, m.labels, strconv.FormatInt(m.fn(), 10))
			case kindHistogram:
				s := m.hist.Snapshot()
				for i := 0; i < histBuckets; i++ {
					writeSample(&b, m.name+"_bucket", joinLabels(m.labels, `le="`+formatLe(BucketBound(i))+`"`),
						strconv.FormatUint(s.Cumulative[i], 10))
				}
				writeSample(&b, m.name+"_bucket", joinLabels(m.labels, `le="+Inf"`),
					strconv.FormatUint(s.Count, 10))
				writeSample(&b, m.name+"_sum", m.labels, seconds(s.SumNanos))
				writeSample(&b, m.name+"_count", m.labels, strconv.FormatUint(s.Count, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one exposition line.
func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// joinLabels concatenates two rendered label bodies.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// LatencySummary is the JSON-friendly percentile digest of one histogram,
// the /stats view of what /metrics exposes as buckets.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summary digests a histogram into count/mean/p50/p90/p99 milliseconds.
func Summary(h *Histogram) LatencySummary {
	s := h.Snapshot()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  s.Count,
		MeanMS: ms(s.Mean()),
		P50MS:  ms(s.Quantile(0.50)),
		P90MS:  ms(s.Quantile(0.90)),
		P99MS:  ms(s.Quantile(0.99)),
	}
}

// SortedNames returns every registered family name, sorted (for tests and
// debug dumps).
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var names []string
	for _, m := range r.metrics {
		if !seen[m.name] {
			seen[m.name] = true
			names = append(names, m.name)
		}
	}
	sort.Strings(names)
	return names
}
