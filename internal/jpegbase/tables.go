package jpegbase

// stdLuminanceQuant is the Annex K luminance quantization table.
var stdLuminanceQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// scaledQuant applies the IJG quality scaling (quality 1..100).
func scaledQuant(quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 5000 / quality
	if quality >= 50 {
		scale = 200 - 2*quality
	}
	var q [64]int
	for i, v := range stdLuminanceQuant {
		s := (v*scale + 50) / 100
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		q[i] = s
	}
	return q
}

// zigzag maps scan position to row-major block index.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Standard luminance Huffman specifications (Annex K): BITS then HUFFVAL.
var dcLumBits = [17]int{0, 0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0}
var dcLumVals = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

var acLumBits = [17]int{0, 0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D}
var acLumVals = []int{
	0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
	0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
	0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
	0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
	0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
	0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
	0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
	0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
	0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
	0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
	0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
	0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
	0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
	0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
	0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
	0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
	0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
	0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
	0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
	0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
	0xF9, 0xFA,
}

// huffTable holds encode (code/length per symbol) and decode structures.
type huffTable struct {
	codes   [256]uint32
	lengths [256]int
	// decode: mincode/maxcode/valptr per length, Annex F.
	minCode [17]int
	maxCode [17]int
	valPtr  [17]int
	vals    []int
}

// buildHuff constructs the canonical table from BITS/HUFFVAL.
func buildHuff(bits [17]int, vals []int) *huffTable {
	t := &huffTable{vals: vals}
	code := 0
	k := 0
	for l := 1; l <= 16; l++ {
		t.valPtr[l] = k
		t.minCode[l] = code
		for i := 0; i < bits[l]; i++ {
			sym := vals[k]
			t.codes[sym] = uint32(code)
			t.lengths[sym] = l
			code++
			k++
		}
		t.maxCode[l] = code - 1
		if bits[l] == 0 {
			t.maxCode[l] = -1
		}
		code <<= 1
	}
	return t
}

var dcTable = buildHuff(dcLumBits, dcLumVals)
var acTable = buildHuff(acLumBits, acLumVals)

// category returns the JPEG magnitude category (number of bits) of v.
func category(v int) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
