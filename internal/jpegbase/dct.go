// Package jpegbase implements a baseline DCT JPEG encoder and decoder
// (grayscale, 8-bit) as the fast comparator of the paper's Fig. 2: 8x8 FDCT,
// quality-scaled quantization of the Annex K luminance table, zigzag ordering
// and Huffman entropy coding with the standard tables.
package jpegbase

import "math"

// cosTable[u][x] = cos((2x+1) u pi / 16) * c(u) terms folded in at use sites.
var cosTable [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func cu(u int) float64 {
	if u == 0 {
		return math.Sqrt2 / 2
	}
	return 1
}

// fdct8x8 computes the forward 8x8 DCT of the level-shifted block (row-major)
// into out.
func fdct8x8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s * cu(u) / 2
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			out[v*8+u] = s * cu(v) / 2
		}
	}
}

// idct8x8 inverts fdct8x8.
func idct8x8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += cu(v) * in[v*8+u] * cosTable[v][y]
			}
			tmp[y*8+u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += cu(u) * tmp[y*8+u] * cosTable[u][x]
			}
			out[y*8+x] = s / 2
		}
	}
}
