package jpegbase

import (
	"math"
	"math/rand"
	"testing"

	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var in, freq, back [64]float64
		for i := range in {
			in[i] = rng.Float64()*255 - 128
		}
		fdct8x8(&in, &freq)
		idct8x8(&freq, &back)
		for i := range in {
			if math.Abs(in[i]-back[i]) > 1e-9 {
				t.Fatalf("trial %d sample %d: %g vs %g", trial, i, in[i], back[i])
			}
		}
	}
}

func TestDCTConstantBlock(t *testing.T) {
	var in, freq [64]float64
	for i := range in {
		in[i] = 100
	}
	fdct8x8(&in, &freq)
	if math.Abs(freq[0]-800) > 1e-9 { // DC = 8 * mean
		t.Fatalf("DC = %g, want 800", freq[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC %d = %g, want 0", i, freq[i])
		}
	}
}

func TestQualityScaling(t *testing.T) {
	q50 := scaledQuant(50)
	if q50 != stdLuminanceQuant {
		t.Fatal("quality 50 must reproduce the standard table")
	}
	q90, q10 := scaledQuant(90), scaledQuant(10)
	for i := range q90 {
		if q90[i] > q10[i] {
			t.Fatalf("entry %d: q90 %d > q10 %d", i, q90[i], q10[i])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, sz := range [][2]int{{8, 8}, {16, 16}, {64, 64}, {100, 60}, {33, 41}} {
		im := raster.Synthetic(sz[0], sz[1], 3)
		data := Encode(im, 90)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("size %v: %v", sz, err)
		}
		if back.Width != im.Width || back.Height != im.Height {
			t.Fatalf("size %v: got %dx%d", sz, back.Width, back.Height)
		}
		psnr, err := metrics.PSNR(im, back, 255)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 32 {
			t.Fatalf("size %v: PSNR %.2f dB too low at q90", sz, psnr)
		}
	}
}

func TestQualityMonotone(t *testing.T) {
	im := raster.Synthetic(128, 128, 5)
	prevPSNR := 0.0
	prevSize := 0
	for _, q := range []int{10, 30, 50, 75, 95} {
		data := Encode(im, q)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		psnr, _ := metrics.PSNR(im, back, 255)
		if psnr < prevPSNR-0.2 {
			t.Fatalf("PSNR fell from %.2f to %.2f at q%d", prevPSNR, psnr, q)
		}
		if len(data) < prevSize {
			t.Fatalf("size fell from %d to %d at q%d", prevSize, len(data), q)
		}
		prevPSNR, prevSize = psnr, len(data)
	}
	if prevPSNR < 40 {
		t.Fatalf("q95 PSNR %.2f too low", prevPSNR)
	}
}

func TestCompressionRatio(t *testing.T) {
	im := raster.Synthetic(256, 256, 7)
	data := Encode(im, 75)
	raw := 256 * 256
	if len(data) >= raw/2 {
		t.Fatalf("q75 stream %d bytes vs raw %d; not compressing", len(data), raw)
	}
}

func TestMarkerStructure(t *testing.T) {
	im := raster.Synthetic(16, 16, 9)
	data := Encode(im, 75)
	if data[0] != 0xFF || data[1] != 0xD8 {
		t.Fatal("missing SOI")
	}
	if data[len(data)-2] != 0xFF || data[len(data)-1] != 0xD9 {
		t.Fatal("missing EOI")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x00}); err == nil {
		t.Fatal("want error for garbage")
	}
	if _, err := Decode([]byte{0xFF, 0xD8, 0xFF, 0xFE, 0x00, 0x02}); err == nil {
		t.Fatal("want error for unsupported marker")
	}
}

func TestFlatImage(t *testing.T) {
	im := raster.New(32, 32)
	im.Fill(128)
	data := Encode(im, 75)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := metrics.MSE(im, back)
	if mse > 1 {
		t.Fatalf("flat image MSE %.3f", mse)
	}
}
