package jpegbase

import (
	"fmt"

	"pj2k/internal/raster"
)

// bitWriter emits MSB-first bits with JPEG byte stuffing (0xFF -> 0xFF 0x00).
type bitWriter struct {
	buf  []byte
	acc  uint32
	nacc uint
}

func (w *bitWriter) write(code uint32, n int) {
	w.acc = w.acc<<uint(n) | code
	w.nacc += uint(n)
	for w.nacc >= 8 {
		b := byte(w.acc >> (w.nacc - 8))
		w.buf = append(w.buf, b)
		if b == 0xFF {
			w.buf = append(w.buf, 0x00)
		}
		w.nacc -= 8
	}
}

func (w *bitWriter) flush() {
	for w.nacc%8 != 0 {
		w.write(1, 1) // pad with 1-bits per the standard
	}
}

// Encode compresses a grayscale image at the given IJG quality (1..100).
func Encode(im *raster.Image, quality int) []byte {
	q := scaledQuant(quality)
	var out []byte
	app := func(b ...byte) { out = append(out, b...) }
	// SOI
	app(0xFF, 0xD8)
	// DQT
	app(0xFF, 0xDB, 0x00, 0x43, 0x00)
	for i := 0; i < 64; i++ {
		app(byte(q[zigzag[i]]))
	}
	// SOF0: baseline, 8-bit, 1 component.
	app(0xFF, 0xC0, 0x00, 0x0B, 0x08,
		byte(im.Height>>8), byte(im.Height),
		byte(im.Width>>8), byte(im.Width),
		0x01, 0x01, 0x11, 0x00)
	// DHT for DC and AC luminance tables.
	writeDHT := func(class int, bits [17]int, vals []int) {
		length := 2 + 1 + 16 + len(vals)
		app(0xFF, 0xC4, byte(length>>8), byte(length), byte(class<<4))
		for l := 1; l <= 16; l++ {
			app(byte(bits[l]))
		}
		for _, v := range vals {
			app(byte(v))
		}
	}
	writeDHT(0, dcLumBits, dcLumVals)
	writeDHT(1, acLumBits, acLumVals)
	// SOS
	app(0xFF, 0xDA, 0x00, 0x08, 0x01, 0x01, 0x00, 0x00, 0x3F, 0x00)

	w := &bitWriter{}
	prevDC := 0
	var block, coef [64]float64
	var qz [64]int
	for by := 0; by < im.Height; by += 8 {
		for bx := 0; bx < im.Width; bx += 8 {
			// Load block with edge replication and level shift.
			for y := 0; y < 8; y++ {
				sy := by + y
				if sy >= im.Height {
					sy = im.Height - 1
				}
				row := im.Row(sy)
				for x := 0; x < 8; x++ {
					sx := bx + x
					if sx >= im.Width {
						sx = im.Width - 1
					}
					block[y*8+x] = float64(row[sx]) - 128
				}
			}
			fdct8x8(&block, &coef)
			for i := 0; i < 64; i++ {
				v := coef[zigzag[i]] / float64(q[zigzag[i]])
				if v >= 0 {
					qz[i] = int(v + 0.5)
				} else {
					qz[i] = int(v - 0.5)
				}
			}
			// DC difference.
			diff := qz[0] - prevDC
			prevDC = qz[0]
			cat := category(diff)
			w.write(dcTable.codes[cat], dcTable.lengths[cat])
			if cat > 0 {
				v := diff
				if v < 0 {
					v += (1 << cat) - 1
				}
				w.write(uint32(v)&((1<<cat)-1), cat)
			}
			// AC run-length coding.
			run := 0
			for i := 1; i < 64; i++ {
				if qz[i] == 0 {
					run++
					continue
				}
				for run >= 16 {
					w.write(acTable.codes[0xF0], acTable.lengths[0xF0]) // ZRL
					run -= 16
				}
				cat := category(qz[i])
				sym := run<<4 | cat
				w.write(acTable.codes[sym], acTable.lengths[sym])
				v := qz[i]
				if v < 0 {
					v += (1 << cat) - 1
				}
				w.write(uint32(v)&((1<<cat)-1), cat)
				run = 0
			}
			if run > 0 {
				w.write(acTable.codes[0x00], acTable.lengths[0x00]) // EOB
			}
		}
	}
	w.flush()
	out = append(out, w.buf...)
	// EOI
	out = append(out, 0xFF, 0xD9)
	return out
}

// bitReader consumes entropy-coded bits with byte unstuffing.
type bitReader struct {
	data []byte
	pos  int
	acc  uint32
	nacc uint
}

func (r *bitReader) bit() (int, error) {
	if r.nacc == 0 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("jpegbase: out of entropy data")
		}
		b := r.data[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.data) {
				return 0, fmt.Errorf("jpegbase: dangling 0xFF")
			}
			if r.data[r.pos] == 0x00 {
				r.pos++ // stuffed byte
			} else {
				// A marker terminates the scan; synthesize 1-bits.
				r.pos--
				return 1, nil
			}
		}
		r.acc = uint32(b)
		r.nacc = 8
	}
	r.nacc--
	return int(r.acc >> r.nacc & 1), nil
}

func (r *bitReader) bits(n int) (int, error) {
	v := 0
	for i := 0; i < n; i++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// decodeHuff reads one Huffman symbol (Annex F procedure).
func (r *bitReader) decodeHuff(t *huffTable) (int, error) {
	code := 0
	for l := 1; l <= 16; l++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] {
			return t.vals[t.valPtr[l]+code-t.minCode[l]], nil
		}
	}
	return 0, fmt.Errorf("jpegbase: invalid Huffman code")
}

// extend converts the raw magnitude bits to a signed value (F.2.2.1).
func extend(v, cat int) int {
	if cat == 0 {
		return 0
	}
	if v < 1<<(cat-1) {
		return v - (1 << cat) + 1
	}
	return v
}

// Decode reconstructs a grayscale image from an Encode stream.
func Decode(data []byte) (*raster.Image, error) {
	pos := 0
	u16 := func() int {
		v := int(data[pos])<<8 | int(data[pos+1])
		pos += 2
		return v
	}
	if len(data) < 4 || data[0] != 0xFF || data[1] != 0xD8 {
		return nil, fmt.Errorf("jpegbase: missing SOI")
	}
	pos = 2
	var q [64]int
	var width, height int
	for {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("jpegbase: truncated header")
		}
		if data[pos] != 0xFF {
			return nil, fmt.Errorf("jpegbase: bad marker alignment at %d", pos)
		}
		marker := data[pos+1]
		pos += 2
		switch marker {
		case 0xDB: // DQT
			l := u16()
			if data[pos] != 0 {
				return nil, fmt.Errorf("jpegbase: only 8-bit table 0 supported")
			}
			for i := 0; i < 64; i++ {
				q[zigzag[i]] = int(data[pos+1+i])
			}
			pos += l - 2
		case 0xC0: // SOF0
			l := u16()
			height = int(data[pos+1])<<8 | int(data[pos+2])
			width = int(data[pos+3])<<8 | int(data[pos+4])
			if data[pos+5] != 1 {
				return nil, fmt.Errorf("jpegbase: only grayscale supported")
			}
			pos += l - 2
		case 0xC4: // DHT: we use the standard tables; skip contents.
			l := u16()
			pos += l - 2
		case 0xDA: // SOS
			l := u16()
			pos += l - 2
			goto scan
		default:
			return nil, fmt.Errorf("jpegbase: unsupported marker FF%02X", marker)
		}
	}
scan:
	if width == 0 || height == 0 {
		return nil, fmt.Errorf("jpegbase: missing SOF")
	}
	im := raster.New(width, height)
	r := &bitReader{data: data[:len(data)-2], pos: pos} // strip EOI
	prevDC := 0
	var qz [64]int
	var coef, px [64]float64
	for by := 0; by < height; by += 8 {
		for bx := 0; bx < width; bx += 8 {
			for i := range qz {
				qz[i] = 0
			}
			cat, err := r.decodeHuff(dcTable)
			if err != nil {
				return nil, err
			}
			v, err := r.bits(cat)
			if err != nil {
				return nil, err
			}
			prevDC += extend(v, cat)
			qz[0] = prevDC
			for i := 1; i < 64; {
				sym, err := r.decodeHuff(acTable)
				if err != nil {
					return nil, err
				}
				if sym == 0x00 { // EOB
					break
				}
				if sym == 0xF0 { // ZRL
					i += 16
					continue
				}
				run, cat := sym>>4, sym&0xF
				i += run
				if i > 63 {
					return nil, fmt.Errorf("jpegbase: AC run overflow")
				}
				v, err := r.bits(cat)
				if err != nil {
					return nil, err
				}
				qz[i] = extend(v, cat)
				i++
			}
			for i := 0; i < 64; i++ {
				coef[zigzag[i]] = float64(qz[i] * q[zigzag[i]])
			}
			idct8x8(&coef, &px)
			for y := 0; y < 8 && by+y < height; y++ {
				row := im.Row(by + y)
				for x := 0; x < 8 && bx+x < width; x++ {
					v := px[y*8+x] + 128
					iv := int32(v + 0.5)
					if v < 0 {
						iv = 0
					} else if iv > 255 {
						iv = 255
					}
					row[bx+x] = iv
				}
			}
		}
	}
	return im, nil
}
