package spiht

import (
	"testing"

	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func TestTreeStructure(t *testing.T) {
	c := &codec{n: 64, levels: 3, rw: 8}
	// Top-left of each LL 2x2 group has no children.
	if _, ok := c.children(0, 0); ok {
		t.Fatal("(0,0) must have no children")
	}
	if _, ok := c.children(2, 4); ok {
		t.Fatal("(even,even) LL must have no children")
	}
	// TR root -> HL band.
	kids, ok := c.children(1, 0)
	if !ok {
		t.Fatal("(1,0) must have children")
	}
	if kids[0].x != 8 || kids[0].y != 0 {
		t.Fatalf("TR root children at (%d,%d), want (8,0)", kids[0].x, kids[0].y)
	}
	// BL root -> LH band.
	kids, _ = c.children(0, 1)
	if kids[0].x != 0 || kids[0].y != 8 {
		t.Fatalf("BL root children at (%d,%d), want (0,8)", kids[0].x, kids[0].y)
	}
	// BR root -> HH band.
	kids, _ = c.children(1, 1)
	if kids[0].x != 8 || kids[0].y != 8 {
		t.Fatalf("BR root children at (%d,%d), want (8,8)", kids[0].x, kids[0].y)
	}
	// Mid-pyramid coefficient: quadruple position.
	kids, ok = c.children(10, 2)
	if !ok || kids[0].x != 20 || kids[0].y != 4 {
		t.Fatalf("pyramid children wrong: %v ok=%v", kids, ok)
	}
	// Finest level has no children.
	if _, ok := c.children(40, 3); ok {
		t.Fatal("finest-level coefficient must be a leaf")
	}
}

func TestTreeCoversImage(t *testing.T) {
	// Every non-LL coefficient must be reachable from exactly one root.
	c := &codec{n: 32, levels: 3, rw: 4}
	seen := make([]int, 32*32)
	var walk func(x, y int16)
	walk = func(x, y int16) {
		kids, ok := c.children(x, y)
		if !ok {
			return
		}
		for _, k := range kids {
			seen[int(k.y)*32+int(k.x)]++
			walk(k.x, k.y)
		}
	}
	for y := int16(0); y < 4; y++ {
		for x := int16(0); x < 4; x++ {
			walk(x, y)
		}
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			want := 1
			if x < 4 && y < 4 {
				want = 0 // LL is not anyone's child
			}
			if seen[y*32+x] != want {
				t.Fatalf("(%d,%d) covered %d times, want %d", x, y, seen[y*32+x], want)
			}
		}
	}
}

func TestRoundTripQuality(t *testing.T) {
	im := raster.Synthetic(256, 256, 1)
	for _, tc := range []struct {
		bpp     float64
		minPSNR float64
	}{
		{2.0, 38}, {1.0, 34}, {0.5, 31}, {0.25, 28},
	} {
		budget := int(tc.bpp * 256 * 256 / 8)
		data, err := Encode(im, 5, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > budget+16 {
			t.Fatalf("%.2f bpp: stream %d exceeds budget %d", tc.bpp, len(data), budget)
		}
		back, err := Decode(data, 256, 5)
		if err != nil {
			t.Fatal(err)
		}
		psnr, _ := metrics.PSNR(im, back, 255)
		if psnr < tc.minPSNR {
			t.Fatalf("%.2f bpp: PSNR %.2f below %.1f", tc.bpp, psnr, tc.minPSNR)
		}
	}
}

func TestEmbeddedPrefixProperty(t *testing.T) {
	// Decoding a prefix of the stream must give a valid, lower-quality
	// image: SPIHT streams are embedded.
	im := raster.Synthetic(128, 128, 2)
	data, err := Encode(im, 4, 128*128)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		cut := int(float64(len(data)) * frac)
		back, err := Decode(data[:cut], 128, 4)
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		psnr, _ := metrics.PSNR(im, back, 255)
		if psnr < prev-0.5 {
			t.Fatalf("prefix %.2f: PSNR %.2f fell below %.2f", frac, psnr, prev)
		}
		prev = psnr
	}
	if prev < 35 {
		t.Fatalf("full-stream PSNR %.2f too low", prev)
	}
}

func TestGeometryErrors(t *testing.T) {
	im := raster.Synthetic(100, 100, 3) // not a power of two
	if _, err := Encode(im, 4, 1000); err == nil {
		t.Fatal("want error for non-power-of-two image")
	}
	rect := raster.Synthetic(64, 32, 3)
	if _, err := Encode(rect, 3, 1000); err == nil {
		t.Fatal("want error for non-square image")
	}
	if _, err := Decode([]byte{}, 64, 3); err == nil {
		t.Fatal("want error for empty stream")
	}
}

func TestFlatImageCodesTiny(t *testing.T) {
	im := raster.New(64, 64)
	im.Fill(128)
	data, err := Encode(im, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 600 {
		t.Fatalf("flat image coded to %d bytes", len(data))
	}
	back, err := Decode(data, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := metrics.MSE(im, back)
	if mse > 1 {
		t.Fatalf("flat image MSE %.3f", mse)
	}
}
