// Package spiht implements the SPIHT codec (Said & Pearlman 1996), the
// wavelet-based comparator of the paper's Fig. 2: set partitioning in
// hierarchical trees over the 9/7 DWT with raw (uncoded) significance bits,
// producing an embedded bitstream truncatable at any byte.
//
// Images must be square with power-of-two dimensions (the classic SPIHT
// restriction; the paper's benchmark sizes 256K/1024K/4096K/16384K pixels are
// all powers of two).
package spiht

import (
	"fmt"
	"math"

	"pj2k/internal/bitio"
	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// scale is the fixed-point factor applied to normalized wavelet coefficients
// before integer truncation; 3 fractional bits cap quality around 48 dB,
// well above the benchmark operating points.
const scale = 8

type coord struct{ x, y int16 }

type lisEntry struct {
	c     coord
	typeB bool
}

// codec holds shared encoder/decoder tree state.
type codec struct {
	n      int // image side
	levels int
	rw     int     // LL side
	val    []int32 // |coefficient| (encoder) or reconstruction accumulator (decoder)
	sign   []bool
	maxD   []int32 // max |c| over all descendants
	maxGD  []int32 // max |c| over grandchildren and deeper
	lip    []coord
	lis    []lisEntry
	lsp    []coord
}

func (c *codec) idx(x, y int16) int { return int(y)*c.n + int(x) }

// children returns the four offspring of (x, y), or ok=false for leaves.
func (c *codec) children(x, y int16) ([4]coord, bool) {
	var out [4]coord
	rw := int16(c.rw)
	if int(x) < c.rw && int(y) < c.rw {
		// LL root: top-left of each 2x2 group has no offspring; the other
		// three root the HL/LH/HH pyramids of their spatial group.
		gx, gy := x&^1, y&^1
		odd := coord{x & 1, y & 1}
		if odd.x == 0 && odd.y == 0 {
			return out, false
		}
		var bx, by int16
		switch {
		case odd.x == 1 && odd.y == 0:
			bx, by = rw+gx, gy // HL
		case odd.x == 0 && odd.y == 1:
			bx, by = gx, rw+gy // LH
		default:
			bx, by = rw+gx, rw+gy // HH
		}
		out = [4]coord{{bx, by}, {bx + 1, by}, {bx, by + 1}, {bx + 1, by + 1}}
		return out, true
	}
	if int(2*x) >= c.n || int(2*y) >= c.n {
		return out, false
	}
	out = [4]coord{{2 * x, 2 * y}, {2*x + 1, 2 * y}, {2 * x, 2*y + 1}, {2*x + 1, 2*y + 1}}
	return out, true
}

// buildMax computes maxD/maxGD bottom-up.
func (c *codec) buildMax() {
	c.maxD = make([]int32, c.n*c.n)
	c.maxGD = make([]int32, c.n*c.n)
	// Process coordinates from finest to coarsest: larger coordinates first.
	// A simple reverse raster order works because children always have
	// strictly larger (x+y) band placement... iterate by decreasing level
	// region instead for clarity.
	for side := c.n; side > c.rw; side /= 2 {
		// All coords with max(x,y) in [side/2, side) are at this level.
		lo, hi := int16(side/2), int16(side)
		for y := int16(0); y < hi; y++ {
			for x := int16(0); x < hi; x++ {
				if x < lo && y < lo {
					continue
				}
				kids, ok := c.children(x, y)
				if !ok {
					continue
				}
				var d, gd int32
				for _, k := range kids {
					ki := c.idx(k.x, k.y)
					if v := c.val[ki]; v > d {
						d = v
					}
					if c.maxD[ki] > d {
						d = c.maxD[ki]
					}
					if c.maxD[ki] > gd {
						gd = c.maxD[ki]
					}
				}
				i := c.idx(x, y)
				c.maxD[i] = d
				c.maxGD[i] = gd
			}
		}
	}
	// LL roots.
	for y := int16(0); y < int16(c.rw); y++ {
		for x := int16(0); x < int16(c.rw); x++ {
			kids, ok := c.children(x, y)
			if !ok {
				continue
			}
			var d, gd int32
			for _, k := range kids {
				ki := c.idx(k.x, k.y)
				if v := c.val[ki]; v > d {
					d = v
				}
				if c.maxD[ki] > d {
					d = c.maxD[ki]
				}
				if c.maxD[ki] > gd {
					gd = c.maxD[ki]
				}
			}
			i := c.idx(x, y)
			c.maxD[i] = d
			c.maxGD[i] = gd
		}
	}
}

func (c *codec) initLists() {
	c.lip = c.lip[:0]
	c.lis = c.lis[:0]
	c.lsp = c.lsp[:0]
	for y := int16(0); y < int16(c.rw); y++ {
		for x := int16(0); x < int16(c.rw); x++ {
			c.lip = append(c.lip, coord{x, y})
			if !(x&1 == 0 && y&1 == 0) {
				c.lis = append(c.lis, lisEntry{c: coord{x, y}})
			}
		}
	}
}

// budgetWriter stops after a byte budget.
type budgetWriter struct {
	w      *bitio.Writer
	budget int // bits
	done   bool
}

func (b *budgetWriter) bit(v int) bool {
	if b.done || b.w.BitLen() >= b.budget {
		b.done = true
		return false
	}
	b.w.WriteBit(v)
	return true
}

// Encode compresses a square power-of-two image to maxBytes.
func Encode(im *raster.Image, levels, maxBytes int) ([]byte, error) {
	n := im.Width
	if im.Height != n || n&(n-1) != 0 || n < 1<<uint(levels) {
		return nil, fmt.Errorf("spiht: need square power-of-two image with side >= 2^levels, got %dx%d", im.Width, im.Height)
	}
	// Transform: level shift, 9/7, normalize by band norms, fixed-point.
	p := dwt.FromImage(im)
	for i := range p.Data {
		p.Data[i] -= 128
	}
	dwt.Forward97(p, levels, dwt.Improved)
	c := &codec{n: n, levels: levels, rw: n >> uint(levels)}
	c.val = make([]int32, n*n)
	c.sign = make([]bool, n*n)
	for _, b := range dwt.Subbands(n, n, levels) {
		nw := dwt.BandNorm(dwt.Irr97, levels, b)
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				v := p.Data[y*p.Stride+x] * nw * scale
				i := y*n + x
				if v < 0 {
					c.sign[i] = true
					v = -v
				}
				c.val[i] = int32(v + 0.5)
			}
		}
	}
	c.buildMax()
	c.initLists()

	var maxv int32
	for _, v := range c.val {
		if v > maxv {
			maxv = v
		}
	}
	nbits := 0
	for m := maxv; m > 0; m >>= 1 {
		nbits++
	}
	if nbits == 0 {
		nbits = 1
	}
	w := bitio.NewWriter()
	w.WriteBits(uint32(nbits), 5)
	bw := &budgetWriter{w: w, budget: maxBytes * 8}

	for plane := nbits - 1; plane >= 0 && !bw.done; plane-- {
		c.sortingPass(bw, nil, int32(1)<<uint(plane))
		c.refinePassEnc(bw, uint(plane))
	}
	return w.Bytes(), nil
}

// sortingPass runs the LIP/LIS pass; with br != nil it decodes instead.
func (c *codec) sortingPass(bw *budgetWriter, br *budgetReader, thr int32) {
	// LIP
	keep := c.lip[:0]
	for _, p := range c.lip {
		i := c.idx(p.x, p.y)
		var sig int
		if br == nil {
			if c.val[i] >= thr {
				sig = 1
			}
			if !bw.bit(sig) {
				// Budget exhausted: retain remaining entries untouched.
				keep = append(keep, p)
				continue
			}
		} else {
			v, ok := br.bit()
			if !ok {
				keep = append(keep, p)
				continue
			}
			sig = v
		}
		if sig == 1 {
			if br == nil {
				s := 0
				if c.sign[i] {
					s = 1
				}
				bw.bit(s)
			} else {
				if s, ok := br.bit(); ok && s == 1 {
					c.sign[i] = true
				}
				c.val[i] = thr + thr/2 // 1.5 * 2^plane midpoint
			}
			c.lsp = append(c.lsp, p)
		} else {
			keep = append(keep, p)
		}
	}
	c.lip = keep
	// LIS (appending during iteration is part of the algorithm).
	for e := 0; e < len(c.lis); e++ {
		ent := c.lis[e]
		i := c.idx(ent.c.x, ent.c.y)
		if !ent.typeB {
			var sig int
			if br == nil {
				if c.maxD[i] >= thr {
					sig = 1
				}
				if !bw.bit(sig) {
					continue
				}
			} else {
				v, ok := br.bit()
				if !ok {
					continue
				}
				sig = v
			}
			if sig == 0 {
				continue
			}
			kids, _ := c.children(ent.c.x, ent.c.y)
			for _, k := range kids {
				ki := c.idx(k.x, k.y)
				var ksig int
				if br == nil {
					if c.val[ki] >= thr {
						ksig = 1
					}
					if !bw.bit(ksig) {
						continue
					}
				} else {
					v, ok := br.bit()
					if !ok {
						continue
					}
					ksig = v
				}
				if ksig == 1 {
					if br == nil {
						s := 0
						if c.sign[ki] {
							s = 1
						}
						bw.bit(s)
					} else {
						if s, ok := br.bit(); ok && s == 1 {
							c.sign[ki] = true
						}
						c.val[ki] = thr + thr/2
					}
					c.lsp = append(c.lsp, k)
				} else {
					c.lip = append(c.lip, k)
				}
			}
			// Type-B transition is structural (L(i,j) nonempty), so the
			// encoder and decoder decide it identically from geometry.
			if c.grandchildrenExist(ent.c) {
				c.lis = append(c.lis, lisEntry{c: ent.c, typeB: true})
			}
			c.lis[e].c.x = -1 // mark removed
		} else {
			var sig int
			if br == nil {
				if c.maxGD[i] >= thr {
					sig = 1
				}
				if !bw.bit(sig) {
					continue
				}
			} else {
				v, ok := br.bit()
				if !ok {
					continue
				}
				sig = v
			}
			if sig == 0 {
				continue
			}
			kids, _ := c.children(ent.c.x, ent.c.y)
			for _, k := range kids {
				c.lis = append(c.lis, lisEntry{c: k})
			}
			c.lis[e].c.x = -1
		}
	}
	// Compact removed entries.
	kept := c.lis[:0]
	for _, ent := range c.lis {
		if ent.c.x >= 0 {
			kept = append(kept, ent)
		}
	}
	c.lis = kept
}

// grandchildrenExist reports whether any child of p has children.
func (c *codec) grandchildrenExist(p coord) bool {
	kids, ok := c.children(p.x, p.y)
	if !ok {
		return false
	}
	for _, k := range kids {
		if _, ok := c.children(k.x, k.y); ok {
			return true
		}
	}
	return false
}

// refinePassEnc emits bit `plane` of every previously significant pixel.
func (c *codec) refinePassEnc(bw *budgetWriter, plane uint) {
	thr := int32(1) << plane
	for _, p := range c.lsp {
		i := c.idx(p.x, p.y)
		if c.val[i] >= thr<<1 { // significant before this plane
			bw.bit(int(c.val[i] >> plane & 1))
		}
	}
}

type budgetReader struct {
	r    *bitio.Reader
	done bool
}

func (b *budgetReader) bit() (int, bool) {
	if b.done {
		return 0, false
	}
	v, err := b.r.ReadBit()
	if err != nil {
		b.done = true
		return 0, false
	}
	return v, true
}

// refinePassDec mirrors refinePassEnc, updating midpoint reconstructions.
func (c *codec) refinePassDec(br *budgetReader, plane uint) {
	thr := int32(1) << plane
	for _, p := range c.lsp {
		i := c.idx(p.x, p.y)
		if c.val[i] >= thr<<1 {
			bit, ok := br.bit()
			if !ok {
				return
			}
			// Current value has midpoint offset thr (half the previous
			// step); replace with the refined midpoint.
			if bit == 1 {
				c.val[i] += thr / 2
			} else {
				c.val[i] -= (thr + 1) / 2
			}
		}
	}
}

// Decode reconstructs an n x n image from a SPIHT stream.
func Decode(data []byte, n, levels int) (*raster.Image, error) {
	if n&(n-1) != 0 || n < 1<<uint(levels) {
		return nil, fmt.Errorf("spiht: bad geometry n=%d levels=%d", n, levels)
	}
	r := bitio.NewReader(data)
	nbitsU, err := r.ReadBits(5)
	if err != nil {
		return nil, fmt.Errorf("spiht: empty stream: %w", err)
	}
	nbits := int(nbitsU)
	c := &codec{n: n, levels: levels, rw: n >> uint(levels)}
	c.val = make([]int32, n*n)
	c.sign = make([]bool, n*n)
	c.initLists()
	br := &budgetReader{r: r}
	for plane := nbits - 1; plane >= 0 && !br.done; plane-- {
		c.sortingPass(nil, br, int32(1)<<uint(plane))
		c.refinePassDec(br, uint(plane))
	}
	// Inverse: undo fixed point and band normalization, inverse transform.
	p := dwt.NewFPlane(n, n)
	for _, b := range dwt.Subbands(n, n, levels) {
		nw := dwt.BandNorm(dwt.Irr97, levels, b)
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				i := y*n + x
				v := float64(c.val[i]) / (nw * scale)
				if c.sign[i] {
					v = -v
				}
				p.Data[y*p.Stride+x] = v
			}
		}
	}
	dwt.Inverse97(p, levels, dwt.Improved)
	im := raster.New(n, n)
	for y := 0; y < n; y++ {
		row := im.Row(y)
		src := p.Data[y*p.Stride:]
		for x := 0; x < n; x++ {
			v := math.Round(src[x] + 128)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			row[x] = int32(v)
		}
	}
	return im, nil
}
