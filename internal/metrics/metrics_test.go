package metrics

import (
	"math"
	"testing"

	"pj2k/internal/raster"
)

func TestMSEAndPSNR(t *testing.T) {
	a := raster.New(4, 4)
	b := raster.New(4, 4)
	if mse, err := MSE(a, b); err != nil || mse != 0 {
		t.Fatalf("mse %v err %v", mse, err)
	}
	if p, _ := PSNR(a, b, 255); !math.IsInf(p, 1) {
		t.Fatalf("identical images PSNR %v", p)
	}
	b.Fill(10)
	mse, err := MSE(a, b)
	if err != nil || mse != 100 {
		t.Fatalf("mse %v err %v", mse, err)
	}
	p, _ := PSNR(a, b, 255)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR %v want %v", p, want)
	}
}

func TestMSESizeMismatch(t *testing.T) {
	if _, err := MSE(raster.New(4, 4), raster.New(5, 4)); err == nil {
		t.Fatal("want error")
	}
}

func TestBlockinessDetectsGrid(t *testing.T) {
	// An image with hard steps at 32-pixel boundaries must score far higher
	// than a smooth one.
	blocky := raster.New(128, 128)
	for y := 0; y < 128; y++ {
		row := blocky.Row(y)
		for x := 0; x < 128; x++ {
			row[x] = int32(((x/32)*37 + (y/32)*53) % 200)
		}
	}
	smooth := raster.New(128, 128)
	for y := 0; y < 128; y++ {
		row := smooth.Row(y)
		for x := 0; x < 128; x++ {
			row[x] = int32(x + y)
		}
	}
	bs := Blockiness(blocky, 32)
	ss := Blockiness(smooth, 32)
	if bs < 10*math.Max(ss, 0.1) {
		t.Fatalf("blockiness %.2f vs smooth %.2f; grid not detected", bs, ss)
	}
}

func TestBlockinessDegenerate(t *testing.T) {
	im := raster.New(16, 16)
	if Blockiness(im, 1) != 0 || Blockiness(im, 16) != 0 {
		t.Fatal("degenerate periods must return 0")
	}
}
