// Package metrics provides the image-quality measures the paper's evaluation
// reports: MSE/PSNR for the rate-distortion curves (Fig. 5) and a blockiness
// measure quantifying the tiling artifacts shown subjectively in Fig. 4.
package metrics

import (
	"fmt"
	"math"

	"pj2k/internal/raster"
)

// MSE returns the mean squared error between two equally sized images.
func MSE(a, b *raster.Image) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("metrics: size mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	var sum float64
	for y := 0; y < a.Height; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			d := float64(ra[x] - rb[x])
			sum += d * d
		}
	}
	return sum / float64(a.Width*a.Height), nil
}

// PSNR returns the peak signal-to-noise ratio in dB for the given peak value
// (255 for 8-bit imagery). Identical images give +Inf.
func PSNR(a, b *raster.Image, peak float64) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// Blockiness measures mean absolute intensity discontinuity across the given
// grid period, minus the discontinuity at non-grid positions; near zero for
// artifact-free images and increasingly positive as tile-boundary artifacts
// appear (the Fig. 4 effect, quantified).
func Blockiness(im *raster.Image, period int) float64 {
	if period < 2 || period >= im.Width {
		return 0
	}
	var gridSum, offSum float64
	var gridN, offN int
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		for x := 1; x < im.Width; x++ {
			d := math.Abs(float64(row[x] - row[x-1]))
			if x%period == 0 {
				gridSum += d
				gridN++
			} else {
				offSum += d
				offN++
			}
		}
	}
	for x := 0; x < im.Width; x++ {
		for y := 1; y < im.Height; y++ {
			d := math.Abs(float64(im.At(x, y) - im.At(x, y-1)))
			if y%period == 0 {
				gridSum += d
				gridN++
			} else {
				offSum += d
				offN++
			}
		}
	}
	if gridN == 0 || offN == 0 {
		return 0
	}
	return gridSum/float64(gridN) - offSum/float64(offN)
}
