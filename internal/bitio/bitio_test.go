package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		w := NewWriter()
		for _, b := range bits {
			w.WriteBit(b)
		}
		r := NewReader(w.Bytes())
		for i, want := range bits {
			got, err := r.ReadBit()
			if err != nil {
				t.Fatalf("bit %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("bit %d: got %d want %d", i, got, want)
			}
		}
	}
}

func TestWriteBitsReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0x5, 3)
	w.WriteBits(0x0, 0)
	w.WriteBits(0x1, 1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("got %#x", v)
	}
	if v, _ := r.ReadBits(3); v != 5 {
		t.Fatalf("got %d", v)
	}
	if v, _ := r.ReadBits(1); v != 1 {
		t.Fatalf("got %d", v)
	}
}

func TestReaderOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestAlignAndBitLen(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x3, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.Align()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after align = %d", w.BitLen())
	}
	if got := w.Bytes(); !bytes.Equal(got, []byte{0x60}) {
		t.Fatalf("bytes = %x", got)
	}
}

func TestStuffWriterNeverEmitsFFThenHighBit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		w := NewStuffWriter()
		n := 1 + rng.Intn(4000)
		for i := 0; i < n; i++ {
			// Bias toward ones to force 0xFF bytes.
			b := 1
			if rng.Float64() < 0.1 {
				b = 0
			}
			w.WriteBit(b)
		}
		out := w.Bytes()
		for i := 0; i+1 < len(out); i++ {
			if out[i] == 0xFF && out[i+1]&0x80 != 0 {
				t.Fatalf("trial %d: stuffing violated at byte %d: FF %02X", trial, i, out[i+1])
			}
		}
		if len(out) > 0 && out[len(out)-1] == 0xFF {
			t.Fatalf("trial %d: header ends in 0xFF", trial)
		}
	}
}

func TestStuffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		bits := make([]int, n)
		for i := range bits {
			b := 1
			if rng.Float64() < 0.3 {
				b = 0
			}
			bits[i] = b
		}
		w := NewStuffWriter()
		for _, b := range bits {
			w.WriteBit(b)
		}
		out := w.Bytes()
		r := NewStuffReader(out)
		for i, want := range bits {
			got, err := r.ReadBit()
			if err != nil {
				t.Fatalf("trial %d bit %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d bit %d: got %d want %d", trial, i, got, want)
			}
		}
		consumed, err := r.Terminate()
		if err != nil {
			t.Fatalf("terminate: %v", err)
		}
		if consumed != len(out) {
			t.Fatalf("trial %d: terminate consumed %d of %d bytes", trial, consumed, len(out))
		}
	}
}

func TestStuffRoundTripWithTrailingData(t *testing.T) {
	// The stuffed header is typically followed by packet body bytes; the
	// reader must stop exactly at the header boundary.
	w := NewStuffWriter()
	bits := []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1} // crosses a stuffed FF
	for _, b := range bits {
		w.WriteBit(b)
	}
	hdr := w.Bytes()
	full := append(append([]byte(nil), hdr...), 0xAA, 0xBB)
	r := NewStuffReader(full)
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
	consumed, err := r.Terminate()
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(hdr) {
		t.Fatalf("consumed %d, header is %d bytes", consumed, len(hdr))
	}
}

func TestQuickStuffRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		w := NewStuffWriter()
		for _, b := range raw {
			for k := 7; k >= 0; k-- {
				w.WriteBit(int(b >> k & 1))
			}
		}
		out := w.Bytes()
		r := NewStuffReader(out)
		for _, b := range raw {
			for k := 7; k >= 0; k-- {
				got, err := r.ReadBit()
				if err != nil || got != int(b>>k&1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
