// Package bitio provides MSB-first bit readers and writers, including the
// JPEG2000 packet-header variant that stuffs a zero bit after every 0xFF byte
// so packet headers cannot emulate codestream markers.
package bitio

import (
	"errors"
	"io"
)

// Writer writes bits MSB-first into an in-memory buffer.
type Writer struct {
	buf  []byte
	acc  uint8
	nacc uint8 // bits currently in acc (0..7)
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b int) {
	w.acc = w.acc<<1 | uint8(b&1)
	w.nacc++
	if w.nacc == 8 {
		w.buf = append(w.buf, w.acc)
		w.acc, w.nacc = 0, 0
	}
}

// WriteBits appends the low n bits of v, MSB-first. n may be 0..32.
func (w *Writer) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	for w.nacc != 0 {
		w.WriteBit(0)
	}
}

// Bytes aligns the writer and returns the accumulated bytes.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Reader reads bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int
	acc  uint8
	nacc uint8
}

// NewReader returns a bit reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ErrOutOfBits is returned when a read goes past the end of the buffer.
var ErrOutOfBits = errors.New("bitio: out of bits")

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (int, error) {
	if r.nacc == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		r.acc = r.buf[r.pos]
		r.pos++
		r.nacc = 8
	}
	r.nacc--
	return int(r.acc >> r.nacc & 1), nil
}

// ReadBits reads n bits MSB-first.
func (r *Reader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() { r.nacc = 0 }

// Offset returns the number of whole bytes consumed (after Align semantics:
// a partially consumed byte counts as consumed).
func (r *Reader) Offset() int { return r.pos }

// StuffWriter writes packet-header bits with JPEG2000 bit stuffing: after
// emitting a 0xFF byte, only seven bits are placed in the following byte (its
// MSB is a stuffed 0). Flush terminates the header, stuffing a full zero byte
// if the final byte was 0xFF.
type StuffWriter struct {
	buf  []byte
	acc  uint16
	nacc uint8 // bits currently in acc
	lim  uint8 // bits in current byte: 8, or 7 after a 0xFF
}

// NewStuffWriter returns an empty stuffing bit writer.
func NewStuffWriter() *StuffWriter { return &StuffWriter{lim: 8} }

// Reset empties the writer, retaining the buffer capacity for reuse.
// Previously returned Bytes views are invalidated by subsequent writes.
func (w *StuffWriter) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.nacc, w.lim = 0, 0, 8
}

// WriteBit appends one bit with stuffing.
func (w *StuffWriter) WriteBit(b int) {
	w.acc = w.acc<<1 | uint16(b&1)
	w.nacc++
	if w.nacc == w.lim {
		by := byte(w.acc)
		w.buf = append(w.buf, by)
		w.acc, w.nacc = 0, 0
		if by == 0xFF {
			w.lim = 7
		} else {
			w.lim = 8
		}
	}
}

// WriteBits appends the low n bits of v, MSB-first.
func (w *StuffWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// Len returns the number of bytes Bytes would return before its trailing
// 0xFF padding rule: whole bytes emitted plus one for any pending bits. Rate
// accounting for raw (bypass) codeword segments reads it mid-stream.
func (w *StuffWriter) Len() int {
	n := len(w.buf)
	if w.nacc > 0 {
		n++
	}
	return n
}

// Bytes terminates the header (zero padding; a trailing 0xFF is followed by a
// stuffed 0x00 per the standard) and returns the bytes.
func (w *StuffWriter) Bytes() []byte {
	for w.nacc != 0 {
		w.WriteBit(0)
	}
	if len(w.buf) > 0 && w.buf[len(w.buf)-1] == 0xFF {
		w.buf = append(w.buf, 0x00)
	}
	return w.buf
}

// StuffReader mirrors StuffWriter for decoding packet headers.
type StuffReader struct {
	buf  []byte
	pos  int
	acc  uint8
	nacc uint8
	prev byte
}

// NewStuffReader returns a stuffing-aware bit reader over buf.
func NewStuffReader(buf []byte) *StuffReader { return &StuffReader{buf: buf} }

// Reset re-aims the reader at a new buffer, allowing one StuffReader to be
// pooled across the many packet headers of a tile decode.
func (r *StuffReader) Reset(buf []byte) { *r = StuffReader{buf: buf} }

// ReadBit returns the next header bit, honouring stuffed bits.
func (r *StuffReader) ReadBit() (int, error) {
	if r.nacc == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		b := r.buf[r.pos]
		r.pos++
		if r.prev == 0xFF {
			// MSB of this byte is a stuffed zero.
			r.acc = b & 0x7F
			r.nacc = 7
		} else {
			r.acc = b
			r.nacc = 8
		}
		r.prev = b
	}
	r.nacc--
	return int(r.acc >> r.nacc & 1), nil
}

// ReadBits reads n bits MSB-first.
func (r *StuffReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// Terminate consumes the header's padding, mirroring StuffWriter.Bytes: it
// byte-aligns and, if the final consumed byte was 0xFF, also consumes the
// stuffed 0x00. Returns the number of bytes consumed in total.
func (r *StuffReader) Terminate() (int, error) {
	r.nacc = 0
	if r.prev == 0xFF {
		if r.pos >= len(r.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		r.prev = r.buf[r.pos]
		r.pos++
	}
	return r.pos, nil
}
