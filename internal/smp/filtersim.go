package smp

import (
	"pj2k/internal/cachesim"
	"pj2k/internal/dwt"
)

// FilterSpec describes one multi-level wavelet filtering workload for the
// cache analysis: the image geometry (Stride in samples — padding the stride
// is the paper's first cache fix) and the vertical strategy.
type FilterSpec struct {
	W, H, Stride int
	Levels       int
	Kernel       dwt.Kernel
	Mode         dwt.VertMode
	BlockWidth   int // for VertBlocked; <=0 selects dwt.DefaultBlockWidth
}

const bytesPerSample = 4

// kernel shape: window length of the column filter and the number of
// row sweeps of the lifting implementation.
func (s FilterSpec) shape() (window, sweeps int, opsPerElemDir float64) {
	if s.Kernel == dwt.Irr97 {
		return 9, 4, 8
	}
	return 5, 2, 4
}

func (s FilterSpec) blockWidth() int {
	if s.BlockWidth <= 0 {
		return dwt.DefaultBlockWidth
	}
	return s.BlockWidth
}

func levelDims(w, h, n int) (int, int) {
	for i := 0; i < n; i++ {
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return w, h
}

// VerticalWork estimates the operations and cache misses of the vertical
// filtering of all decomposition levels under the spec's strategy, by
// running the filter's exact access pattern through a simulated cache. Long
// dimensions are sampled (the pattern is periodic across columns) and misses
// are scaled back up.
func VerticalWork(cfg cachesim.Config, s FilterSpec) Work {
	window, sweeps, opsPerElem := s.shape()
	var work Work
	for l := 0; l < s.Levels; l++ {
		cw, ch := levelDims(s.W, s.H, l)
		if ch < 2 {
			continue
		}
		work.Ops += float64(cw) * float64(ch) * opsPerElem
		c := cachesim.New(cfg)
		switch s.Mode {
		case dwt.VertNaive:
			// Column-at-a-time filtering: for every output sample the
			// window rows of that column are read, then the sample written.
			sample := cw
			if sample > 256 {
				sample = 256
			}
			for x := 0; x < sample; x++ {
				for r := 0; r < ch; r++ {
					for k := -window / 2; k <= window/2; k++ {
						rr := clampInt(r+k, 0, ch-1)
						c.Access(uint64((rr*s.Stride + x) * bytesPerSample))
					}
					c.Access(uint64((r*s.Stride + x) * bytesPerSample))
				}
			}
			_, misses := c.Stats()
			work.Misses += float64(misses) * float64(cw) / float64(sample)
		case dwt.VertBlocked:
			// Improved filtering: row-wise sweeps over blocks of adjacent
			// columns, so loaded lines are fully consumed.
			bw := s.blockWidth()
			nblocks := (cw + bw - 1) / bw
			sample := nblocks
			if sample > 8 {
				sample = 8
			}
			for b := 0; b < sample; b++ {
				x0 := b * bw
				x1 := x0 + bw
				if x1 > cw {
					x1 = cw
				}
				for sweep := 0; sweep < sweeps; sweep++ {
					for r := 0; r < ch; r++ {
						for _, dr := range [3]int{-1, 0, 1} {
							rr := clampInt(r+dr, 0, ch-1)
							for x := x0; x < x1; x++ {
								c.Access(uint64((rr*s.Stride + x) * bytesPerSample))
							}
						}
					}
				}
			}
			_, misses := c.Stats()
			work.Misses += float64(misses) * float64(nblocks) / float64(sample)
		}
	}
	return work
}

// HorizontalWork estimates the row-filtering work; rows are contiguous, so
// this is the cache-friendly baseline the paper compares the vertical filter
// against.
func HorizontalWork(cfg cachesim.Config, s FilterSpec) Work {
	_, sweeps, opsPerElem := s.shape()
	var work Work
	for l := 0; l < s.Levels; l++ {
		cw, ch := levelDims(s.W, s.H, l)
		if cw < 2 {
			continue
		}
		work.Ops += float64(cw) * float64(ch) * opsPerElem
		c := cachesim.New(cfg)
		sample := ch
		if sample > 64 {
			sample = 64
		}
		for y := 0; y < sample; y++ {
			for sweep := 0; sweep < sweeps; sweep++ {
				for x := 0; x < cw; x++ {
					c.Access(uint64((y*s.Stride + x) * bytesPerSample))
				}
			}
		}
		_, misses := c.Stats()
		work.Misses += float64(misses) * float64(ch) / float64(sample)
	}
	return work
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
