// Package smp is a deterministic shared-memory multiprocessor model used to
// regenerate the paper's speedup figures on hosts without the original
// hardware (this reproduction runs on a single-core machine; the paper used a
// 4-CPU Intel Pentium II Xeon SMP and a 20-CPU SGI Power Challenge).
//
// The model captures exactly the three mechanisms the paper's results hinge
// on:
//
//  1. work partitioning — static chunks for the transform, staggered
//     round-robin for code-blocks — giving near-linear CPU scaling;
//  2. the serial fraction (image/bitstream I/O, setup, rate allocation)
//     bounding overall speedup per Amdahl's law;
//  3. cache-miss traffic serialized on the shared front-side bus, which caps
//     the original vertical filter's parallel speedup ("the constrained
//     speedup of the original filtering routine is due to the congestion of
//     the bus caused by the high number of cache misses").
package smp

// Machine describes a simulated SMP.
type Machine struct {
	Name           string
	CPUs           int
	ClockHz        float64 // per-CPU clock
	OpsPerCycle    float64 // sustained ops per cycle per CPU
	MissPenaltyCyc float64 // stall cycles per cache miss (memory latency)
	BusBytesPerSec float64 // shared-bus bandwidth
	LineBytes      int
	BarrierCostSec float64 // per barrier (one per filtering direction per level)
}

// PentiumIIXeon models the paper's 4-way Compaq server: 500 MHz Pentium II
// Xeon. The miss penalty is the *effective average* L1-miss cost (most
// conflict misses hit the on-package L2), and the bus constant is calibrated
// so the model reproduces the paper's observations: the original vertical
// filter saturates below 2x on 4 CPUs while horizontal and improved
// filtering scale to ~3.7x (Fig. 8).
func PentiumIIXeon(cpus int) Machine {
	return Machine{
		Name:           "Intel Pentium II Xeon SMP, 500 MHz",
		CPUs:           cpus,
		ClockHz:        500e6,
		OpsPerCycle:    1.0,
		MissPenaltyCyc: 5.5,
		BusBytesPerSec: 4.6e9,
		LineBytes:      32,
		BarrierCostSec: 5e-6,
	}
}

// SGIPowerChallenge models the 20-CPU SGI Power Challenge: 194 MHz IP25
// processors — "very poor computation times when compared with the fast
// Intel processors" — with a wide system bus that lets the improved filter
// scale to 16 CPUs (Figs. 10-13) while the original filter still saturates.
func SGIPowerChallenge(cpus int) Machine {
	return Machine{
		Name:           "SGI Power Challenge, 194 MHz IP25",
		CPUs:           cpus,
		ClockHz:        194e6,
		OpsPerCycle:    0.8,
		MissPenaltyCyc: 8,
		BusBytesPerSec: 8e9,
		LineBytes:      32,
		BarrierCostSec: 20e-6,
	}
}

// Work is a quantity of computation with its memory behaviour.
type Work struct {
	Ops    float64 // arithmetic/logical operations
	Misses float64 // cache misses (from cachesim-driven analysis)
}

// Add accumulates w2 into w.
func (w *Work) Add(w2 Work) {
	w.Ops += w2.Ops
	w.Misses += w2.Misses
}

// SerialTime is the single-CPU execution time of w on m: ops at the CPU's
// sustained rate plus a stall per miss.
func (m Machine) SerialTime(w Work) float64 {
	cycles := w.Ops/m.OpsPerCycle + w.Misses*m.MissPenaltyCyc
	return cycles / m.ClockHz
}

// ParallelTime is the execution time of w split evenly across p CPUs with
// the shared bus serializing miss traffic: the stage takes at least the bus
// time regardless of CPU count (the paper's vertical-filtering congestion),
// and nbarriers synchronization barriers are added.
func (m Machine) ParallelTime(w Work, p, nbarriers int) float64 {
	if p < 1 {
		p = 1
	}
	if p > m.CPUs {
		p = m.CPUs
	}
	cpu := m.SerialTime(w) / float64(p)
	bus := w.Misses * float64(m.LineBytes) / m.BusBytesPerSec
	t := cpu
	if bus > t {
		t = bus
	}
	return t + float64(nbarriers)*m.BarrierCostSec
}

// Makespan computes the completion time of per-task serial times assigned to
// workers by the given schedule (worker -> task indices): the slowest
// worker's total. Bus contention is applied afterwards by the caller when
// relevant; tier-1 code-block coding is compute-bound.
func Makespan(taskTime []float64, schedule [][]int) float64 {
	worst := 0.0
	for _, tasks := range schedule {
		sum := 0.0
		for _, t := range tasks {
			sum += taskTime[t]
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}
