package smp

import (
	"testing"

	"pj2k/internal/cachesim"
	"pj2k/internal/core"
	"pj2k/internal/dwt"
)

func specFor(mode dwt.VertMode, stride int) FilterSpec {
	return FilterSpec{W: 2048, H: 2048, Stride: stride, Levels: 3, Kernel: dwt.Irr97, Mode: mode}
}

func TestNaiveVerticalThrashesOnPow2Width(t *testing.T) {
	cfg := cachesim.NewPentiumII()
	naive := VerticalWork(cfg, specFor(dwt.VertNaive, 2048))
	horiz := HorizontalWork(cfg, specFor(dwt.VertNaive, 2048))
	// The paper: vertical filtering needs far more time than horizontal on
	// power-of-two widths; the ratio is driven by misses.
	if naive.Misses < 5*horiz.Misses {
		t.Fatalf("naive vertical misses %.0f not >> horizontal %.0f", naive.Misses, horiz.Misses)
	}
}

func TestPaddingReducesMisses(t *testing.T) {
	cfg := cachesim.NewPentiumII()
	pow2 := VerticalWork(cfg, specFor(dwt.VertNaive, 2048))
	padded := VerticalWork(cfg, specFor(dwt.VertNaive, 2048+8))
	if padded.Misses > pow2.Misses/2 {
		t.Fatalf("padding: misses %.0f vs pow2 %.0f; fix ineffective", padded.Misses, pow2.Misses)
	}
}

func TestBlockedFilterMatchesHorizontal(t *testing.T) {
	cfg := cachesim.NewPentiumII()
	blocked := VerticalWork(cfg, specFor(dwt.VertBlocked, 2048))
	horiz := HorizontalWork(cfg, specFor(dwt.VertBlocked, 2048))
	// "horizontal and vertical filtering are now almost identical with
	// respect to runtime": the improved filter's misses are line-limited
	// like horizontal's, within the factor the 4 lifting sweeps cost
	// (horizontal rows stay cached across sweeps; tall column blocks do
	// not).
	ratio := blocked.Misses / horiz.Misses
	if ratio > 5 || ratio < 1.0/5 {
		t.Fatalf("blocked/horizontal miss ratio %.2f, want within ~4x", ratio)
	}
	naive := VerticalWork(cfg, specFor(dwt.VertNaive, 2048))
	if naive.Misses < 4*blocked.Misses {
		t.Fatalf("improved filter misses %.0f not far below naive %.0f", blocked.Misses, naive.Misses)
	}
}

func TestSerialTimeComposition(t *testing.T) {
	m := PentiumIIXeon(4)
	w := Work{Ops: 500e6} // 1s of pure compute at 500MHz, 1 op/cycle
	if got := m.SerialTime(w); got < 0.99 || got > 1.01 {
		t.Fatalf("SerialTime = %v, want 1s", got)
	}
	w2 := Work{Misses: 1e6}
	want := 1e6 * m.MissPenaltyCyc / m.ClockHz
	if got := m.SerialTime(w2); got < want*0.99 || got > want*1.01 {
		t.Fatalf("miss time %v, want %v", got, want)
	}
}

func TestParallelTimeScalesComputeBoundWork(t *testing.T) {
	m := PentiumIIXeon(4)
	w := Work{Ops: 500e6}
	t1 := m.ParallelTime(w, 1, 0)
	t4 := m.ParallelTime(w, 4, 0)
	if sp := t1 / t4; sp < 3.9 || sp > 4.1 {
		t.Fatalf("compute-bound speedup %.2f, want ~4", sp)
	}
}

func TestBusSaturationCapsSpeedup(t *testing.T) {
	// Miss-heavy work (the original vertical filter) must stop scaling when
	// the bus is saturated — the paper's explanation for Fig. 8.
	m := PentiumIIXeon(4)
	w := Work{Ops: 100e6, Misses: 50e6}
	t1 := m.ParallelTime(w, 1, 0)
	t4 := m.ParallelTime(w, 4, 0)
	if sp := t1 / t4; sp > 2.5 {
		t.Fatalf("miss-bound speedup %.2f; bus model not binding", sp)
	}
	// The same ops with few misses scale fine.
	light := Work{Ops: 100e6, Misses: 0.1e6}
	if sp := m.ParallelTime(light, 1, 0) / m.ParallelTime(light, 4, 0); sp < 3.5 {
		t.Fatalf("light work speedup %.2f, want ~4", sp)
	}
}

func TestParallelTimeClampsToMachineCPUs(t *testing.T) {
	m := PentiumIIXeon(4)
	w := Work{Ops: 1e9}
	if m.ParallelTime(w, 16, 0) != m.ParallelTime(w, 4, 0) {
		t.Fatal("requesting more CPUs than the machine has must clamp")
	}
}

func TestBarrierCost(t *testing.T) {
	m := PentiumIIXeon(4)
	w := Work{Ops: 1e6}
	base := m.ParallelTime(w, 4, 0)
	with := m.ParallelTime(w, 4, 10)
	if with <= base {
		t.Fatal("barriers must add time")
	}
	if diff := with - base; diff < 9*m.BarrierCostSec || diff > 11*m.BarrierCostSec {
		t.Fatalf("barrier cost off: %v", diff)
	}
}

func TestMakespanStaggeredBeatsContiguousOnRamps(t *testing.T) {
	// Code-block costs correlate with image position (detail concentrates);
	// a cost ramp makes contiguous chunking imbalanced while staggered
	// round-robin stays even — the paper's scheduling choice.
	n, p := 64, 4
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}
	contig := make([][]int, p)
	per := n / p
	for w := 0; w < p; w++ {
		for k := 0; k < per; k++ {
			contig[w] = append(contig[w], w*per+k)
		}
	}
	staggered := core.StaggeredRoundRobin(n, p)
	mc := Makespan(times, contig)
	ms := Makespan(times, staggered)
	if ms >= mc {
		t.Fatalf("staggered makespan %.0f not below contiguous %.0f", ms, mc)
	}
	// Staggered should be within a few percent of the ideal balance.
	ideal := 0.0
	for _, v := range times {
		ideal += v
	}
	ideal /= float64(p)
	if ms > ideal*1.1 {
		t.Fatalf("staggered makespan %.0f vs ideal %.0f", ms, ideal)
	}
}

func TestSGIMachineProfile(t *testing.T) {
	m := SGIPowerChallenge(16)
	if m.CPUs != 16 || m.ClockHz >= PentiumIIXeon(4).ClockHz {
		t.Fatalf("SGI profile wrong: %+v", m)
	}
	// Slower CPUs: the same work takes longer serially than on the Xeon —
	// "very poor computation times when compared with the fast Intel
	// processors".
	w := Work{Ops: 1e9}
	if m.SerialTime(w) <= PentiumIIXeon(4).SerialTime(w) {
		t.Fatal("SGI must be slower per CPU")
	}
}

func TestVerticalWorkOpsIndependentOfMode(t *testing.T) {
	cfg := cachesim.NewPentiumII()
	a := VerticalWork(cfg, specFor(dwt.VertNaive, 2048))
	b := VerticalWork(cfg, specFor(dwt.VertBlocked, 2048))
	if a.Ops != b.Ops {
		t.Fatalf("ops must not depend on strategy: %.0f vs %.0f", a.Ops, b.Ops)
	}
}
