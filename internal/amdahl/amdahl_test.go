package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupBasics(t *testing.T) {
	pr := Profile{Sequential: 1, Parallel: 1}
	if got := pr.Speedup(1); got != 1 {
		t.Fatalf("speedup(1) = %v", got)
	}
	// 50% parallel on infinite CPUs -> 2x.
	if got := pr.Limit(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("limit = %v", got)
	}
	if got := pr.Speedup(2); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("speedup(2) = %v, want 4/3", got)
	}
}

func TestPaperValues(t *testing.T) {
	// Sec. 3.4: ~40% intrinsically sequential after optimization gives a
	// theoretical bound around 2.4 on 4 CPUs... check the paper's numbers:
	// expected theoretical speedups of ~2.1 (Jasper) and ~1.95 (JJ2000) on
	// 4 CPUs correspond to parallel fractions of ~0.70 and ~0.65.
	jasper := Profile{Sequential: 0.30, Parallel: 0.70}
	if got := jasper.Speedup(4); math.Abs(got-2.105) > 0.02 {
		t.Fatalf("jasper-like profile speedup(4) = %.3f, want ~2.1", got)
	}
	jj := Profile{Sequential: 0.35, Parallel: 0.65}
	if got := jj.Speedup(4); math.Abs(got-1.95) > 0.03 {
		t.Fatalf("jj2000-like profile speedup(4) = %.3f, want ~1.95", got)
	}
}

func TestFullyParallel(t *testing.T) {
	pr := Profile{Sequential: 0, Parallel: 5}
	if got := pr.Speedup(8); math.Abs(got-8) > 1e-12 {
		t.Fatalf("fully parallel speedup(8) = %v", got)
	}
	if pr.Limit() < 1e300 {
		t.Fatal("fully parallel limit must be unbounded")
	}
}

func TestDegenerate(t *testing.T) {
	var pr Profile
	if pr.Speedup(4) != 1 || pr.Limit() != 1 || pr.ParallelFraction() != 0 {
		t.Fatal("zero profile must be identity")
	}
	if (Profile{Sequential: 1}).Speedup(100) != 1 {
		t.Fatal("fully sequential cannot speed up")
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(s8, p8 uint8, n8 uint8) bool {
		pr := Profile{Sequential: float64(s8), Parallel: float64(p8)}
		n := 1 + int(n8%63)
		sp := pr.Speedup(n)
		// Bounds: 1 <= speedup <= min(n, limit).
		if sp < 1-1e-12 {
			return false
		}
		if sp > float64(n)+1e-12 {
			return false
		}
		if sp > pr.Limit()+1e-9 {
			return false
		}
		// Monotone in n.
		return pr.Speedup(n+1) >= sp-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
