// Package amdahl computes the theoretical speedup bounds of Sec. 3.4 of the
// paper: speedup(n) = (s + p) / (s + p/n), where s is time in inherently
// sequential code and p is time in parallelizable code.
package amdahl

// Profile splits a workload into its sequential and parallelizable parts
// (any time unit, only the ratio matters).
type Profile struct {
	Sequential float64
	Parallel   float64
}

// Speedup returns the Amdahl bound for n processors.
func (pr Profile) Speedup(n int) float64 {
	if n < 1 {
		n = 1
	}
	total := pr.Sequential + pr.Parallel
	if total == 0 {
		return 1
	}
	return total / (pr.Sequential + pr.Parallel/float64(n))
}

// Limit returns the asymptotic speedup bound (n -> infinity).
func (pr Profile) Limit() float64 {
	if pr.Sequential == 0 {
		if pr.Parallel == 0 {
			return 1
		}
		return 1e308 // unbounded
	}
	return (pr.Sequential + pr.Parallel) / pr.Sequential
}

// ParallelFraction returns p / (s + p).
func (pr Profile) ParallelFraction() float64 {
	total := pr.Sequential + pr.Parallel
	if total == 0 {
		return 0
	}
	return pr.Parallel / total
}

// Efficiency returns Speedup(n)/n.
func (pr Profile) Efficiency(n int) float64 {
	return pr.Speedup(n) / float64(n)
}
