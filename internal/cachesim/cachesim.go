// Package cachesim implements a set-associative cache simulator with LRU
// replacement. The paper's central performance diagnosis — an entire image
// column mapping onto a single cache set during vertical wavelet filtering
// when the width is a power of two — is reproduced here deterministically:
// the simulator counts misses for the exact access patterns of the filtering
// strategies in internal/dwt.
package cachesim

import "fmt"

// Config describes a cache. The defaults (NewPentiumII) model the L1 data
// cache of the paper's Intel Pentium II Xeon testbed: 16 KiB, 4-way,
// 32-byte lines.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// NewPentiumII returns the paper's L1 configuration.
func NewPentiumII() Config { return Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 32} }

// NewSGIIP25 approximates the SGI Power Challenge IP25 primary data cache:
// 16 KiB, 1-way (direct mapped), 32-byte lines.
func NewSGIIP25() Config { return Config{SizeBytes: 16 * 1024, Ways: 1, LineBytes: 32} }

// Cache is a simulated cache. Not safe for concurrent use; the SMP model
// instantiates one per simulated processor.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// tags[set*ways+way]; lru[set*ways+way] holds a recency counter.
	tags   []uint64
	valid  []bool
	lru    []uint64
	clock  uint64
	hits   uint64
	misses uint64
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cachesim: bad config %+v", cfg))
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: set count %d not a power of two", sets))
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lb,
		tags:     make([]uint64, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		lru:      make([]uint64, sets*cfg.Ways),
	}
}

// Access touches the byte address and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	tag := line >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	c.clock++
	// Hit?
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.lru[base+w] = c.clock
			c.hits++
			return true
		}
	}
	// Miss: evict LRU way.
	victim := base
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lru[victim] = c.clock
	c.misses++
	return false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// MissRate returns misses / accesses (0 if untouched).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// Sets returns the number of cache sets (exported for the experiments'
// explanatory output).
func (c *Cache) Sets() int { return c.sets }

func log2(v int) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}
