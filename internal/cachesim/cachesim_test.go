package cachesim

import "testing"

func TestSequentialAccessMissRate(t *testing.T) {
	c := New(NewPentiumII())
	// Streaming 64 KiB of int32s: one miss per 32-byte line = 1/8 accesses.
	for i := 0; i < 16384; i++ {
		c.Access(uint64(i * 4))
	}
	if mr := c.MissRate(); mr < 0.12 || mr > 0.13 {
		t.Fatalf("sequential miss rate %.4f, want 0.125", mr)
	}
}

func TestRepeatedAccessHits(t *testing.T) {
	c := New(NewPentiumII())
	c.Access(0x1000)
	for i := 0; i < 100; i++ {
		if !c.Access(0x1000) {
			t.Fatal("repeated access missed")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 100 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
}

func TestAssociativityConflict(t *testing.T) {
	cfg := NewPentiumII() // 128 sets x 4 ways x 32B
	c := New(cfg)
	setSpan := uint64(cfg.SizeBytes / cfg.Ways) // bytes between same-set lines
	// 4 distinct lines in one set: all fit.
	for round := 0; round < 3; round++ {
		for w := uint64(0); w < 4; w++ {
			c.Access(w * setSpan)
		}
	}
	_, misses := c.Stats()
	if misses != 4 {
		t.Fatalf("4-way set with 4 lines: %d misses, want 4 (capacity fits)", misses)
	}
	// A 5th line thrashes under LRU.
	c.Reset()
	for round := 0; round < 10; round++ {
		for w := uint64(0); w < 5; w++ {
			c.Access(w * setSpan)
		}
	}
	if mr := c.MissRate(); mr < 0.99 {
		t.Fatalf("5 lines cycling a 4-way set: miss rate %.3f, want ~1 (LRU thrash)", mr)
	}
}

func TestPowerOfTwoColumnPathology(t *testing.T) {
	// The paper's diagnosis: with width a power of two and "the filter
	// length longer than 4 (this corresponds to the 4-way associative
	// cache)", an entire image column maps onto a single cache set and the
	// sliding filter window thrashes. The default 9/7 filters are 9/7 taps.
	cfg := NewPentiumII()
	c := New(cfg)
	const width = 4096 // samples; 4096*4 = 16 KiB stride
	for r := 4; r < 1000; r++ {
		for k := -4; k <= 4; k++ { // 9-tap window down one column
			c.Access(uint64((r + k) * width * 4))
		}
	}
	if mr := c.MissRate(); mr < 0.9 {
		t.Fatalf("power-of-two column walk miss rate %.3f, want ~1", mr)
	}
	// A 5-tap window (5/3 filter) fits the 4 ways with LRU: the paper's
	// threshold is exactly the associativity.
	c5 := New(cfg)
	for r := 2; r < 1000; r++ {
		for k := -2; k <= 2; k++ {
			c5.Access(uint64((r + k) * width * 4))
		}
	}
	if mr := c5.MissRate(); mr > 0.3 {
		t.Fatalf("5-tap window miss rate %.3f; should survive a 4-way cache", mr)
	}
	// Padding the stride off the power of two spreads the column across
	// sets; the 9-tap window now stays resident.
	c2 := New(cfg)
	const padded = 4096 + 8
	for r := 4; r < 1000; r++ {
		for k := -4; k <= 4; k++ {
			c2.Access(uint64((r + k) * padded * 4))
		}
	}
	if mr := c2.MissRate(); mr > 0.2 {
		t.Fatalf("padded column walk miss rate %.3f, want ~0.11 (1 new row per output)", mr)
	}
}

func TestDirectMappedSGI(t *testing.T) {
	c := New(NewSGIIP25())
	if c.Sets() != 512 {
		t.Fatalf("SGI config: %d sets, want 512", c.Sets())
	}
	// Two lines in the same set of a direct-mapped cache always conflict.
	span := uint64(16 * 1024)
	for i := 0; i < 10; i++ {
		c.Access(0)
		c.Access(span)
	}
	if mr := c.MissRate(); mr != 1 {
		t.Fatalf("direct-mapped conflict miss rate %.3f, want 1", mr)
	}
}

func TestResetClearsState(t *testing.T) {
	c := New(NewPentiumII())
	c.Access(0)
	c.Reset()
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("reset did not clear counters")
	}
	if c.Access(0) {
		t.Fatal("reset did not clear contents")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero-way config")
		}
	}()
	New(Config{SizeBytes: 1024, Ways: 0, LineBytes: 32})
}
