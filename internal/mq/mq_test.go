package mq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// encodeDecode round-trips a decision sequence through nctx contexts and
// reports whether all decisions decode identically.
func encodeDecode(t *testing.T, decisions []int, ctxOf func(i int) int, nctx int) {
	t.Helper()
	encCtx := make([]Context, nctx)
	enc := NewEncoder()
	for i, d := range decisions {
		enc.Encode(d, &encCtx[ctxOf(i)])
	}
	seg := enc.Flush()

	decCtx := make([]Context, nctx)
	dec := NewDecoder(seg)
	for i, want := range decisions {
		got := dec.Decode(&decCtx[ctxOf(i)])
		if got != want {
			t.Fatalf("decision %d: got %d want %d (segment %d bytes)", i, got, want, len(seg))
		}
	}
}

func TestRoundTripAllZero(t *testing.T) {
	d := make([]int, 1000)
	encodeDecode(t, d, func(int) int { return 0 }, 1)
}

func TestRoundTripAllOne(t *testing.T) {
	d := make([]int, 1000)
	for i := range d {
		d[i] = 1
	}
	encodeDecode(t, d, func(int) int { return 0 }, 1)
}

func TestRoundTripAlternating(t *testing.T) {
	d := make([]int, 1001)
	for i := range d {
		d[i] = i & 1
	}
	encodeDecode(t, d, func(int) int { return 0 }, 1)
}

func TestRoundTripRandomSingleContext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4000)
		p := rng.Float64()
		d := make([]int, n)
		for i := range d {
			if rng.Float64() < p {
				d[i] = 1
			}
		}
		encodeDecode(t, d, func(int) int { return 0 }, 1)
	}
}

func TestRoundTripManyContexts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6000)
		nctx := 1 + rng.Intn(19)
		d := make([]int, n)
		cxs := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(2)
			cxs[i] = rng.Intn(nctx)
		}
		encodeDecode(t, d, func(i int) int { return cxs[i] }, nctx)
	}
}

func TestRoundTripNonzeroInitialStates(t *testing.T) {
	// Tier-1 initializes the run-length context to state 3, the uniform
	// context to state 46, and context 0 to state 4.
	decisions := make([]int, 3000)
	rng := rand.New(rand.NewSource(3))
	for i := range decisions {
		decisions[i] = rng.Intn(2)
	}
	var ec, dc Context
	ec.Reset(46, 0)
	dc.Reset(46, 0)
	enc := NewEncoder()
	for _, d := range decisions {
		enc.Encode(d, &ec)
	}
	seg := enc.Flush()
	dec := NewDecoder(seg)
	for i, want := range decisions {
		if got := dec.Decode(&dc); got != want {
			t.Fatalf("decision %d: got %d want %d", i, got, want)
		}
	}
}

func TestEmptyFlushDecodable(t *testing.T) {
	enc := NewEncoder()
	seg := enc.Flush()
	// Decoding an empty/terminal segment must not panic and must return
	// stable decisions (all-MPS).
	var cx Context
	dec := NewDecoder(seg)
	for i := 0; i < 100; i++ {
		dec.Decode(&cx)
	}
}

// TestTruncationWithMargin checks the rate-tracking contract used by tier-1:
// the NumBytes value observed after encoding a prefix of decisions, plus a
// small margin, is enough bytes of the FINAL segment to decode that prefix.
func TestTruncationWithMargin(t *testing.T) {
	const margin = 5
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(3000)
		cut := rng.Intn(n)
		d := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(2)
		}
		var ec Context
		enc := NewEncoder()
		var rateAtCut int
		for i, v := range d {
			if i == cut {
				rateAtCut = enc.NumBytes() + margin
			}
			enc.Encode(v, &ec)
		}
		seg := enc.Flush()
		if rateAtCut > len(seg) {
			rateAtCut = len(seg)
		}
		var dc Context
		dec := NewDecoder(seg[:rateAtCut])
		for i := 0; i < cut; i++ {
			if got := dec.Decode(&dc); got != d[i] {
				t.Fatalf("trial %d: truncated decode diverged at %d/%d (rate %d of %d)",
					trial, i, cut, rateAtCut, len(seg))
			}
		}
	}
}

func TestNoFFPairEmulatesMarker(t *testing.T) {
	// Stuffing must prevent any 0xFF byte being followed by a byte > 0x8F.
	rng := rand.New(rand.NewSource(5))
	var cx Context
	enc := NewEncoder()
	for i := 0; i < 100000; i++ {
		enc.Encode(rng.Intn(2), &cx)
	}
	seg := enc.Flush()
	for i := 0; i+1 < len(seg); i++ {
		if seg[i] == 0xFF && seg[i+1] > 0x8F {
			t.Fatalf("marker emulation at byte %d: FF %02X", i, seg[i+1])
		}
	}
}

func TestCompressionRatioSkewedSource(t *testing.T) {
	// A 99%-zeros source must compress far below 1 bit per symbol.
	rng := rand.New(rand.NewSource(6))
	var cx Context
	enc := NewEncoder()
	const n = 100000
	for i := 0; i < n; i++ {
		d := 0
		if rng.Float64() < 0.01 {
			d = 1
		}
		enc.Encode(d, &cx)
	}
	seg := enc.Flush()
	bits := float64(len(seg) * 8)
	if bits > 0.2*n {
		t.Fatalf("skewed source compressed to %.3f bpsímbolo, want < 0.2", bits/n)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, nctxSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nctx := 1 + int(nctxSeed%19)
		decisions := make([]int, 0, len(raw)*8)
		cxs := make([]int, 0, len(raw)*8)
		for i, b := range raw {
			for k := 0; k < 8; k++ {
				decisions = append(decisions, int(b>>k&1))
				cxs = append(cxs, (i*8+k)%nctx)
			}
		}
		encCtx := make([]Context, nctx)
		enc := NewEncoder()
		for i, d := range decisions {
			enc.Encode(d, &encCtx[cxs[i]])
		}
		seg := enc.Flush()
		decCtx := make([]Context, nctx)
		dec := NewDecoder(seg)
		for i, want := range decisions {
			if dec.Decode(&decCtx[cxs[i]]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReuse(t *testing.T) {
	enc := NewEncoder()
	var cx Context
	for i := 0; i < 100; i++ {
		enc.Encode(i&1, &cx)
	}
	first := append([]byte(nil), enc.Flush()...)

	enc.Init()
	cx.Reset(0, 0)
	for i := 0; i < 100; i++ {
		enc.Encode(i&1, &cx)
	}
	second := enc.Flush()
	if len(first) != len(second) {
		t.Fatalf("reused encoder produced %d bytes, fresh run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reused encoder output differs at byte %d", i)
		}
	}
}
