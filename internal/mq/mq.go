// Package mq implements the MQ binary arithmetic coder of JPEG2000
// (ISO/IEC 15444-1 Annex C), the entropy-coding engine used by the tier-1
// code-block coder. The encoder and decoder follow the software-convention
// flow charts of the standard: 16-bit probability estimates from the 47-entry
// Qe state table, renormalization-driven state transitions, byte output with
// 0xFF bit-stuffing so the bitstream cannot emulate markers.
package mq

// qeEntry is one row of the Annex C probability state table.
type qeEntry struct {
	qe    uint32
	nmps  uint8
	nlps  uint8
	swtch bool
}

// qeTable is the standard 47-state table (Table C.2).
var qeTable = [47]qeEntry{
	{0x5601, 1, 1, true},
	{0x3401, 2, 6, false},
	{0x1801, 3, 9, false},
	{0x0AC1, 4, 12, false},
	{0x0521, 5, 29, false},
	{0x0221, 38, 33, false},
	{0x5601, 7, 6, true},
	{0x5401, 8, 14, false},
	{0x4801, 9, 14, false},
	{0x3801, 10, 14, false},
	{0x3001, 11, 17, false},
	{0x2401, 12, 18, false},
	{0x1C01, 13, 20, false},
	{0x1601, 29, 21, false},
	{0x5601, 15, 14, true},
	{0x5401, 16, 14, false},
	{0x5101, 17, 15, false},
	{0x4801, 18, 16, false},
	{0x3801, 19, 17, false},
	{0x3401, 20, 18, false},
	{0x3001, 21, 19, false},
	{0x2801, 22, 19, false},
	{0x2401, 23, 20, false},
	{0x2201, 24, 21, false},
	{0x1C01, 25, 22, false},
	{0x1801, 26, 23, false},
	{0x1601, 27, 24, false},
	{0x1401, 28, 25, false},
	{0x1201, 29, 26, false},
	{0x1101, 30, 27, false},
	{0x0AC1, 31, 28, false},
	{0x09C1, 32, 29, false},
	{0x08A1, 33, 30, false},
	{0x0521, 34, 31, false},
	{0x0441, 35, 32, false},
	{0x02A1, 36, 33, false},
	{0x0221, 37, 34, false},
	{0x0141, 38, 35, false},
	{0x0111, 39, 36, false},
	{0x0085, 40, 37, false},
	{0x0049, 41, 38, false},
	{0x0025, 42, 39, false},
	{0x0015, 43, 40, false},
	{0x0009, 44, 41, false},
	{0x0005, 45, 42, false},
	{0x0001, 45, 43, false},
	{0x5601, 46, 46, false},
}

// Context holds the adaptive state of one coding context: the index into the
// Qe table and the current most-probable symbol.
type Context struct {
	index uint8
	mps   uint8
}

// Reset restores the context to state (index, mps).
func (c *Context) Reset(index int, mps int) {
	c.index = uint8(index)
	c.mps = uint8(mps)
}

// Encoder is an MQ arithmetic encoder. The zero value is not ready for use;
// call Init (or NewEncoder).
type Encoder struct {
	c   uint32
	a   uint32
	ct  int
	out []byte // out[0] is a sentinel dropped by Flush
}

// NewEncoder returns an initialized encoder.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.Init()
	return e
}

// Init resets the encoder for a fresh codeword segment (INITENC). The output
// buffer's capacity is retained, so a pooled encoder reaches a steady state
// with no per-segment allocations; any segment previously returned by Flush
// aliases that buffer and is invalidated by the next Encode.
func (e *Encoder) Init() {
	e.a = 0x8000
	e.c = 0
	e.ct = 12
	if e.out == nil {
		e.out = make([]byte, 1, 256)
	} else {
		e.out = e.out[:1]
	}
	e.out[0] = 0 // sentinel "B" byte; never 0xFF so ct starts at 12
}

// Encode codes decision d (0 or 1) in context cx, updating the context. The
// MPS and LPS flows are split so the dominant no-renormalization MPS case —
// the vast majority of tier-1 decisions once contexts adapt — costs one
// compare, one subtract and one add before returning.
func (e *Encoder) Encode(d int, cx *Context) {
	q := &qeTable[cx.index]
	a := e.a - q.qe
	if uint8(d) == cx.mps {
		// CODEMPS
		if a&0x8000 != 0 {
			// Fast path: interval still normalized, no state transition.
			e.a = a
			e.c += q.qe
			return
		}
		if a < q.qe {
			a = q.qe
		} else {
			e.c += q.qe
		}
		cx.index = q.nmps
		e.a = a
		e.renorm()
		return
	}
	// CODELPS (conditional exchange: the LPS keeps the larger subinterval).
	if a < q.qe {
		e.c += q.qe
	} else {
		a = q.qe
	}
	if q.swtch {
		cx.mps = 1 - cx.mps
	}
	cx.index = q.nlps
	e.a = a
	e.renorm()
}

// renorm is RENORME.
func (e *Encoder) renorm() {
	for {
		e.a <<= 1
		e.c <<= 1
		e.ct--
		if e.ct == 0 {
			e.byteOut()
		}
		if e.a&0x8000 != 0 {
			return
		}
	}
}

// byteOut is BYTEOUT with bit stuffing and carry resolution.
func (e *Encoder) byteOut() {
	last := len(e.out) - 1
	if e.out[last] == 0xFF {
		e.out = append(e.out, byte(e.c>>20))
		e.c &= 0xFFFFF
		e.ct = 7
		return
	}
	if e.c < 0x8000000 {
		e.out = append(e.out, byte(e.c>>19))
		e.c &= 0x7FFFF
		e.ct = 8
		return
	}
	// Propagate carry into the previous byte; it cannot cascade because a
	// 0xFF previous byte takes the stuffing branch above.
	e.out[last]++
	if e.out[last] == 0xFF {
		e.c &= 0x7FFFFFF
		e.out = append(e.out, byte(e.c>>20))
		e.c &= 0xFFFFF
		e.ct = 7
	} else {
		e.out = append(e.out, byte(e.c>>19))
		e.c &= 0x7FFFF
		e.ct = 8
	}
}

// NumBytes returns the number of codeword bytes that have been emitted so
// far, excluding bits still pending in the C register. Used with a safety
// margin for rate tracking at coding-pass boundaries.
func (e *Encoder) NumBytes() int { return len(e.out) - 1 }

// Flush terminates the codeword (FLUSH with SETBITS) and returns the final
// segment. Trailing 0xFF bytes are dropped as the standard permits: the
// decoder synthesizes 1-bits past the end of the segment. The returned slice
// aliases the encoder's internal buffer — callers reusing the encoder via
// Init must copy it first.
func (e *Encoder) Flush() []byte {
	// SETBITS
	tempC := e.c + e.a - 1
	e.c |= 0xFFFF
	if e.c >= tempC {
		e.c -= 0x8000
	}
	e.c <<= uint(e.ct)
	e.byteOut()
	e.c <<= uint(e.ct)
	e.byteOut()
	out := e.out[1:] // drop sentinel
	for len(out) > 0 && out[len(out)-1] == 0xFF {
		out = out[:len(out)-1]
	}
	return out
}

// Decoder is an MQ arithmetic decoder. Reads past the end of the segment
// behave as if 0xFF bytes followed, per the standard, so truncated segments
// decode without error.
type Decoder struct {
	data    []byte
	bp      int
	c       uint32
	a       uint32
	ct      int
	overrun int
}

// NewDecoder returns a decoder over one codeword segment (INITDEC).
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{}
	d.Reset(data)
	return d
}

// Reset re-initializes the decoder over a new segment (INITDEC), allowing one
// Decoder to be pooled across many code-blocks without reallocation.
func (d *Decoder) Reset(data []byte) {
	d.data = data
	d.bp = 0
	d.ct = 0
	d.overrun = 0
	d.c = uint32(d.byteAt(0)) << 16
	d.byteIn()
	d.c <<= 7
	d.ct -= 7
	d.a = 0x8000
}

func (d *Decoder) byteAt(i int) byte {
	if i < len(d.data) {
		return d.data[i]
	}
	return 0xFF
}

// byteIn is BYTEIN with unstuffing and end-of-segment synthesis. The common
// case — both the current and the next byte are inside the segment — reads
// the slice directly; only reads at or past the end go through the byteAt
// synthesis of trailing 0xFF bytes.
func (d *Decoder) byteIn() {
	if bp := d.bp; bp+1 < len(d.data) {
		b0 := d.data[bp]
		b1 := d.data[bp+1]
		if b0 != 0xFF {
			d.bp = bp + 1
			d.c += uint32(b1) << 8
			d.ct = 8
			return
		}
		if b1 > 0x8F {
			d.c += 0xFF00
			d.ct = 8
			return
		}
		d.bp = bp + 1
		d.c += uint32(b1) << 9
		d.ct = 7
		return
	}
	if d.bp >= len(d.data) {
		d.overrun++
	}
	if d.byteAt(d.bp) == 0xFF {
		if d.byteAt(d.bp+1) > 0x8F {
			d.c += 0xFF00
			d.ct = 8
		} else {
			d.bp++
			d.c += uint32(d.byteAt(d.bp)) << 9
			d.ct = 7
		}
	} else {
		d.bp++
		d.c += uint32(d.byteAt(d.bp)) << 8
		d.ct = 8
	}
}

// Overrun returns the number of synthetic byte reads performed past the end
// of the segment since Reset. Clean decodes read at most a couple of
// synthesized bytes (the flush bytes the encoder drops); a large overrun means
// the decoder was driven far past its data — the "MQ decoder ran off its
// segment" corruption signal resilient tier-1 decoding keys on.
func (d *Decoder) Overrun() int { return d.overrun }

// Decode returns the next decision in context cx, updating the context. As
// in Encode, the dominant path — MPS with the interval still normalized —
// returns after one compare, one subtract and one masked test.
func (d *Decoder) Decode(cx *Context) int {
	q := &qeTable[cx.index]
	a := d.a - q.qe
	if (d.c >> 16) >= q.qe {
		d.c -= q.qe << 16
		if a&0x8000 != 0 {
			// Fast path: no renormalization, no state transition.
			d.a = a
			return int(cx.mps)
		}
		// MPS exchange
		var bit uint8
		if a < q.qe {
			bit = 1 - cx.mps
			if q.swtch {
				cx.mps = 1 - cx.mps
			}
			cx.index = q.nlps
		} else {
			bit = cx.mps
			cx.index = q.nmps
		}
		d.a = a
		d.renorm()
		return int(bit)
	}
	// LPS exchange
	var bit uint8
	if a < q.qe {
		bit = cx.mps
		cx.index = q.nmps
	} else {
		bit = 1 - cx.mps
		if q.swtch {
			cx.mps = 1 - cx.mps
		}
		cx.index = q.nlps
	}
	d.a = q.qe
	d.renorm()
	return int(bit)
}

// renorm is RENORMD.
func (d *Decoder) renorm() {
	for {
		if d.ct == 0 {
			d.byteIn()
		}
		d.a <<= 1
		d.c <<= 1
		d.ct--
		if d.a&0x8000 != 0 {
			return
		}
	}
}
