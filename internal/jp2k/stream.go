package jp2k

import (
	"pj2k/internal/core"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// This file is the streaming/zero-copy decode surface: Source variants read
// the codestream through a t2.Source (an io.ReaderAt end to end — only the
// main header, the tile-part chain and the selected tiles' bodies are ever
// read), and Into variants write the decoded window straight into
// caller-owned strided buffers instead of allocating planes. The []byte entry
// points in decoder.go are thin adapters over the same pipeline via
// t2.BytesSource, which is what keeps them bit- and allocation-identical.

// DecodeSource is Decode reading through a Source: the full single-component
// image, freshly allocated.
func (d *Decoder) DecodeSource(src *t2.Source, opts DecodeOptions) (*raster.Image, error) {
	pl, err := d.decode(src, opts, nil, true, nil)
	if err != nil {
		return nil, err
	}
	return pl.Comps[0], nil
}

// DecodePlanarSource is DecodePlanar reading through a Source.
func (d *Decoder) DecodePlanarSource(src *t2.Source, opts DecodeOptions) (*raster.Planar, error) {
	return d.decode(src, opts, nil, false, nil)
}

// DecodeRegionSource is DecodeRegion reading through a Source: only the tiles
// the window intersects are read from the source and decoded.
func (d *Decoder) DecodeRegionSource(src *t2.Source, region Rect, opts DecodeOptions) (*raster.Image, error) {
	pl, err := d.decode(src, opts, &region, true, nil)
	if err != nil {
		return nil, err
	}
	return pl.Comps[0], nil
}

// DecodeRegionPlanarSource is DecodeRegionPlanar reading through a Source.
func (d *Decoder) DecodeRegionPlanarSource(src *t2.Source, region Rect, opts DecodeOptions) (*raster.Planar, error) {
	return d.decode(src, opts, &region, false, nil)
}

// DecodeInto decodes a single-component stream into the caller-owned view
// dst, which must be exactly the decoded image's size (Width x Height at
// opts.DiscardLevels); offset and stride are the caller's business — decoding
// into a sub-rectangle of a larger mosaic buffer is the intended use. Samples
// of dst's backing buffer outside the view are never touched. Output is
// pixel-identical to Decode for any view geometry.
func (d *Decoder) DecodeInto(dst raster.Strided, src *t2.Source, opts DecodeOptions) error {
	_, err := d.decode(src, opts, nil, true, []raster.Strided{dst})
	return err
}

// DecodeRegionInto is DecodeInto for a window: dst must be exactly the
// clamped region's size. Only the window's tiles are read and decoded, and
// only dst's view samples are written — the bounded-memory primitive for
// walking a huge image window by window through one recycled buffer.
func (d *Decoder) DecodeRegionInto(dst raster.Strided, src *t2.Source, region Rect, opts DecodeOptions) error {
	_, err := d.decode(src, opts, &region, true, []raster.Strided{dst})
	return err
}

// DecodePlanarInto is DecodeInto for any component count: one view per
// component, each exactly the decoded image's size.
func (d *Decoder) DecodePlanarInto(dst []raster.Strided, src *t2.Source, opts DecodeOptions) error {
	_, err := d.decode(src, opts, nil, false, dst)
	return err
}

// DecodeRegionPlanarInto is DecodeRegionInto for any component count.
func (d *Decoder) DecodeRegionPlanarInto(dst []raster.Strided, src *t2.Source, region Rect, opts DecodeOptions) error {
	_, err := d.decode(src, opts, &region, false, dst)
	return err
}

// DecodeSource is the one-shot convenience over a throwaway Decoder on the
// shared default pool; see Decoder.DecodeSource.
func DecodeSource(src *t2.Source, opts DecodeOptions) (*raster.Image, error) {
	return NewDecoderWithPool(core.Default()).DecodeSource(src, opts)
}

// DecodePlanarSource is the one-shot convenience over a throwaway Decoder;
// see Decoder.DecodePlanarSource.
func DecodePlanarSource(src *t2.Source, opts DecodeOptions) (*raster.Planar, error) {
	return NewDecoderWithPool(core.Default()).DecodePlanarSource(src, opts)
}

// DecodeRegionPlanarSource is the one-shot convenience over a throwaway
// Decoder; see Decoder.DecodeRegionPlanarSource.
func DecodeRegionPlanarSource(src *t2.Source, region Rect, opts DecodeOptions) (*raster.Planar, error) {
	return NewDecoderWithPool(core.Default()).DecodeRegionPlanarSource(src, region, opts)
}
