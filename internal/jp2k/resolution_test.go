package jp2k

import (
	"math"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func TestDiscardLevelsDimensions(t *testing.T) {
	im := raster.Synthetic(200, 120, 21)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= 4; d++ {
		back, err := Decode(cs, DecodeOptions{DiscardLevels: d})
		if err != nil {
			t.Fatalf("discard %d: %v", d, err)
		}
		wantW, wantH := 200, 120
		for i := 0; i < d; i++ {
			wantW, wantH = (wantW+1)/2, (wantH+1)/2
		}
		if back.Width != wantW || back.Height != wantH {
			t.Fatalf("discard %d: got %dx%d want %dx%d", d, back.Width, back.Height, wantW, wantH)
		}
	}
	// Beyond the stream's levels: clamps.
	back, err := Decode(cs, DecodeOptions{DiscardLevels: 9})
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 13 || back.Height != 8 {
		t.Fatalf("over-discard got %dx%d", back.Width, back.Height)
	}
}

func TestDiscardLevelsMatchesDownsampledTransform(t *testing.T) {
	// For the reversible path the 1-level-reduced decode must equal the LL
	// band of a 1-level forward transform (that is literally what the
	// stream stores).
	im := raster.Synthetic(128, 128, 22)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{DiscardLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := im.Clone()
	for i := range ref.Pix {
		ref.Pix[i] -= 128
	}
	dwt.Forward53(ref, 1, dwt.Serial)
	ll, _ := ref.SubImage(0, 0, 64, 64)
	llc := ll.Clone()
	for i := range llc.Pix {
		llc.Pix[i] += 128
	}
	if !raster.Equal(back, llc) {
		t.Fatal("1-level reduced decode != LL band of the forward transform")
	}
}

func TestDiscardLevelsLossyLooksLikeImage(t *testing.T) {
	// The half-resolution lossy decode must correlate strongly with a
	// box-downsampled original (PSNR against simple 2x2 mean downsample).
	im := raster.Synthetic(256, 256, 23)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{DiscardLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	back.ClampTo8()
	down := raster.New(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			s := im.At(2*x, 2*y) + im.At(2*x+1, 2*y) + im.At(2*x, 2*y+1) + im.At(2*x+1, 2*y+1)
			down.Set(x, y, (s+2)/4)
		}
	}
	psnr, err := metrics.PSNR(down, back, 255)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(psnr) || psnr < 22 {
		t.Fatalf("half-resolution decode PSNR %.2f vs box downsample; too low", psnr)
	}
}

func TestDiscardLevelsTiled(t *testing.T) {
	im := raster.Synthetic(130, 70, 24)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, TileW: 64, TileH: 32, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{DiscardLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reduced dims: columns 64,64,2 -> 32+32+1 = 65; rows 32,32,6 -> 16+16+3 = 35.
	if back.Width != 65 || back.Height != 35 {
		t.Fatalf("tiled reduced decode %dx%d, want 65x35", back.Width, back.Height)
	}
}

func TestDiscardWithLayersAndROI(t *testing.T) {
	im := raster.Synthetic(128, 128, 25)
	cs, _, err := Encode(im, Options{
		Kernel:   dwt.Irr97,
		LayerBPP: []float64{0.25, 1.0},
		ROI:      &ROIRect{X0: 32, Y0: 32, X1: 96, Y1: 96},
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{DiscardLevels: 2, MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 32 || back.Height != 32 {
		t.Fatalf("got %dx%d", back.Width, back.Height)
	}
}
