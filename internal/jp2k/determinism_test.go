package jp2k

import (
	"bytes"
	"fmt"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// determinismCases cover both kernels, single- and multi-tile layouts
// (multi-tile exercises the cross-tile parallel DWT), layered and lossless
// rate control, ROI scaling, and non-default code-block sizes.
func determinismCases() []Options {
	return []Options{
		{Kernel: dwt.Rev53},
		{Kernel: dwt.Rev53, TileW: 64, TileH: 96, CBW: 32, CBH: 16, Levels: 3},
		{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0}, TileW: 100, TileH: 90, VertMode: dwt.VertBlocked},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.5}, ROI: &ROIRect{X0: 30, Y0: 20, X1: 120, Y1: 100}},
	}
}

// TestEncodeDeterministicAcrossWorkers asserts the codestream is bit-
// identical for Workers in {1, 2, 4, 8}: the parallel decomposition (tile-,
// chunk- and block-level) must never influence coded output, which is what
// lets the paper's speedup experiments compare like with like.
func TestEncodeDeterministicAcrossWorkers(t *testing.T) {
	im := raster.Synthetic(230, 190, 99)
	for ci, base := range determinismCases() {
		var want []byte
		for _, w := range []int{1, 2, 4, 8} {
			o := base
			o.Workers = w
			cs, _, err := Encode(im, o)
			if err != nil {
				t.Fatalf("case %d workers %d: %v", ci, w, err)
			}
			if want == nil {
				want = cs
				continue
			}
			if !bytes.Equal(cs, want) {
				t.Errorf("case %d: workers=%d output differs from workers=1 (%d vs %d bytes)",
					ci, w, len(cs), len(want))
			}
		}
	}
}

// TestEncoderReuseDeterministic asserts a reused Encoder produces bit-
// identical output to the one-shot path across repeated encodes — pooled
// state must not leak between calls, even when the calls interleave
// different images, option sets and worker counts.
func TestEncoderReuseDeterministic(t *testing.T) {
	images := []*raster.Image{
		raster.Synthetic(230, 190, 99),
		raster.Synthetic(127, 255, 5),
	}
	cases := determinismCases()
	type key struct{ im, ci int }
	want := map[key][]byte{}
	for ii, im := range images {
		for ci, o := range cases {
			o.Workers = 2
			cs, _, err := Encode(im, o)
			if err != nil {
				t.Fatalf("reference image %d case %d: %v", ii, ci, err)
			}
			want[key{ii, ci}] = cs
		}
	}
	enc := NewEncoder()
	defer enc.Close()
	for round := 0; round < 3; round++ {
		for ii, im := range images {
			for ci, o := range cases {
				o.Workers = 1 + (round+ci)%4
				cs, _, err := enc.Encode(im, o)
				if err != nil {
					t.Fatalf("round %d image %d case %d: %v", round, ii, ci, err)
				}
				if !bytes.Equal(cs, want[key{ii, ci}]) {
					t.Errorf("round %d image %d case %d (workers=%d): reused encoder output differs from one-shot",
						round, ii, ci, o.Workers)
				}
			}
		}
	}
}

// TestEncoderReuseDecodes round-trips a reused Encoder's output, so a
// pooled-state bug that produced a self-consistent but wrong stream would
// still be caught.
func TestEncoderReuseDecodes(t *testing.T) {
	im := raster.Synthetic(160, 120, 31)
	enc := NewEncoder()
	defer enc.Close()
	for round := 0; round < 3; round++ {
		cs, _, err := enc.Encode(im, Options{Kernel: dwt.Rev53, Workers: 3, TileW: 80, TileH: 60})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if !raster.Equal(im, got) {
			t.Fatalf("round %d: lossless round trip failed", round)
		}
	}
}

func ExampleEncoder() {
	im := raster.Synthetic(64, 64, 1)
	enc := NewEncoder()
	defer enc.Close()
	opts := Options{Kernel: dwt.Rev53, Workers: 2}
	a, _, _ := enc.Encode(im, opts)
	b, _, _ := enc.Encode(im, opts) // pooled buffers reused, same output
	fmt.Println(bytes.Equal(a, b))
	// Output: true
}
