package jp2k

import (
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func rgbPlanes(w, h int) (*raster.Image, *raster.Image, *raster.Image) {
	r := raster.Synthetic(w, h, 101)
	g := raster.Synthetic(w, h, 102)
	b := raster.Synthetic(w, h, 103)
	return r, g, b
}

func TestColorLosslessRoundTrip(t *testing.T) {
	r, g, b := rgbPlanes(96, 64)
	cs, stats, err := EncodeColor(r, g, b, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != len(cs) {
		t.Fatal("stats mismatch")
	}
	r2, g2, b2, err := DecodeColor(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(r, r2) || !raster.Equal(g, g2) || !raster.Equal(b, b2) {
		t.Fatal("color lossless round trip failed")
	}
}

func TestColorLosslessBeatsIndependentPlanes(t *testing.T) {
	// The RCT decorrelates the channels, so joint coding should not be
	// larger than coding R, G, B independently (correlated synthetic
	// content: same structure with different seeds is only mildly
	// correlated, so just require we are within a few percent).
	r, g, b := rgbPlanes(128, 128)
	// Build strongly correlated channels: G = base, R/B = base +- detail.
	for i := range g.Pix {
		r.Pix[i] = clamp8(g.Pix[i] + (r.Pix[i]-g.Pix[i])/8)
		b.Pix[i] = clamp8(g.Pix[i] + (b.Pix[i]-g.Pix[i])/8)
	}
	joint, _, err := EncodeColor(r, g, b, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	var indep int
	for _, p := range []*raster.Image{r, g, b} {
		cs, _, err := Encode(p, Options{Kernel: dwt.Rev53})
		if err != nil {
			t.Fatal(err)
		}
		indep += len(cs)
	}
	if len(joint) > indep*105/100 {
		t.Fatalf("joint %d bytes vs independent %d; RCT not helping", len(joint), indep)
	}
}

func clamp8(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func TestColorLossyQuality(t *testing.T) {
	r, g, b := rgbPlanes(128, 128)
	cs, stats, err := EncodeColor(r, g, b, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BPP > 1.6 {
		t.Fatalf("bpp %.3f over budget", stats.BPP)
	}
	r2, g2, b2, err := DecodeColor(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range [][2]*raster.Image{{r, r2}, {g, g2}, {b, b2}} {
		pair[1].ClampTo8()
		psnr, _ := metrics.PSNR(pair[0], pair[1], 255)
		if psnr < 27 {
			t.Fatalf("channel %d PSNR %.2f too low", i, psnr)
		}
	}
}

func TestColorContainerErrors(t *testing.T) {
	if _, _, _, err := DecodeColor([]byte("nope"), DecodeOptions{}); err == nil {
		t.Fatal("want error for bad magic")
	}
	r, g, b := rgbPlanes(32, 32)
	cs, _, err := EncodeColor(r, g, b, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeColor(cs[:20], DecodeOptions{}); err == nil {
		t.Fatal("want error for truncated container")
	}
	bad := raster.New(16, 16)
	if _, _, err := EncodeColor(r, g, bad, Options{}); err == nil {
		t.Fatal("want error for mismatched planes")
	}
}

func TestROILosslessStaysLossless(t *testing.T) {
	im := raster.Synthetic(128, 128, 11)
	roi := &ROIRect{X0: 32, Y0: 32, X1: 96, Y1: 96}
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, ROI: roi})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(im, back) {
		t.Fatal("MAXSHIFT broke losslessness")
	}
}

func TestROIPrioritizesRegion(t *testing.T) {
	// At a starved bitrate, the ROI must decode much better than the
	// background — the whole point of MAXSHIFT.
	im := raster.Synthetic(256, 256, 12)
	roi := &ROIRect{X0: 96, Y0: 96, X1: 160, Y1: 160}
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.3}, ROI: roi})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back.ClampTo8()
	roiSub, _ := im.SubImage(roi.X0, roi.Y0, roi.X1, roi.Y1)
	roiBack, _ := back.SubImage(roi.X0, roi.Y0, roi.X1, roi.Y1)
	roiPSNR, _ := metrics.PSNR(roiSub.Clone(), roiBack.Clone(), 255)

	bgSub, _ := im.SubImage(0, 0, 64, 64)
	bgBack, _ := back.SubImage(0, 0, 64, 64)
	bgPSNR, _ := metrics.PSNR(bgSub.Clone(), bgBack.Clone(), 255)

	if roiPSNR < bgPSNR+6 {
		t.Fatalf("ROI PSNR %.2f not well above background %.2f", roiPSNR, bgPSNR)
	}
}

func TestROIWithoutRegionMatchesPlain(t *testing.T) {
	// A nil ROI must leave the stream unchanged.
	im := raster.Synthetic(64, 64, 13)
	a, _, err := Encode(im, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Encode(im, Options{Kernel: dwt.Rev53, ROI: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nil ROI changed the stream")
	}
}

func TestROIOnTiledImage(t *testing.T) {
	im := raster.Synthetic(128, 128, 14)
	roi := &ROIRect{X0: 50, Y0: 50, X1: 80, Y1: 80} // crosses tile borders
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, TileW: 64, TileH: 64, ROI: roi})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(im, back) {
		t.Fatal("tiled ROI lossless round trip failed")
	}
}
