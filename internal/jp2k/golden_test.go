package jp2k

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// goldenHash is the pinned digest of one golden case. The values were
// computed on the PR 4 tree (commit aad6dc5) and must never change: any
// refactor of the coding path — the tier-1 flag-word machinery, the MQ coder
// fast paths, parallel tier-2 — must reproduce these streams bit for bit.
// A legitimate format change (new marker syntax, different defaults) is the
// only reason to regenerate them; run the test with -run TestGoldenHashes -v
// after deleting a value to print the replacement.
type goldenHash struct {
	name string
	want string
	gen  func(t *testing.T, workers int) []byte
}

func hashBytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:16])
}

func goldenGray() *raster.Image { return raster.Synthetic(230, 190, 99) }

func goldenColor() *raster.Planar {
	return raster.RGB(
		raster.Synthetic(120, 88, 7),
		raster.Synthetic(120, 88, 8),
		raster.Synthetic(120, 88, 9),
	)
}

func goldenCases() []goldenHash {
	return []goldenHash{
		{
			name: "gray-53-lossless",
			want: "aca8b1676e0c806a79cc853fbbf9455b",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := Encode(goldenGray(), Options{Kernel: dwt.Rev53, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "gray-53-tiled",
			want: "f2bcacd868c7503f9c63b5f38f431d73",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := Encode(goldenGray(), Options{
					Kernel: dwt.Rev53, TileW: 64, TileH: 96, CBW: 32, CBH: 16, Levels: 3, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "gray-97-layered",
			want: "ece2ee24a41479f73e45feea4d4ec645",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := Encode(goldenGray(), Options{
					Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0}, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "gray-97-roi",
			want: "a444fb17aee6477f4a8cfca4bf477cfc",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := Encode(goldenGray(), Options{
					Kernel: dwt.Irr97, LayerBPP: []float64{0.5},
					ROI: &ROIRect{X0: 30, Y0: 20, X1: 120, Y1: 100}, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "color-53-mct",
			want: "4a5a24c72c9c72395e2403208430f167",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := EncodePlanar(goldenColor(), Options{Kernel: dwt.Rev53, MCT: true, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "color-97-mct-layered",
			want: "67d2eb2b1dbcf7c8a0de49e3a5d7a666",
			gen: func(t *testing.T, w int) []byte {
				cs, _, err := EncodePlanar(goldenColor(), Options{
					Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.0}, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cs
			},
		},
		{
			name: "gray-97-region-decode",
			want: "47dd2161cb667b779b40a43dc649f8d9",
			gen: func(t *testing.T, w int) []byte {
				im := raster.Synthetic(256, 256, 41)
				cs, _, err := Encode(im, Options{
					Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 64, TileH: 64, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				out, err := Decode(cs, DecodeOptions{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				reg, err := DecodeRegion(cs, Rect{X0: 50, Y0: 70, X1: 200, Y1: 130}, DecodeOptions{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				buf := append([]byte{}, cs...)
				for _, p := range []*raster.Image{out, reg} {
					for _, v := range p.Pix {
						buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
					}
				}
				return buf
			},
		},
	}
}

// TestGoldenHashes is the bit-identity gate: encoded streams (and region
// decodes) must hash to the PR 4 values for every worker count. The cross-
// worker determinism tests prove the output does not depend on Workers; this
// test pins WHAT that output is, so a coding-path change that is merely
// self-consistent (encoder and decoder wrong in compensating ways) still
// fails.
func TestGoldenHashes(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			for _, w := range []int{1, 2, 4, 8} {
				got := hashBytes(gc.gen(t, w))
				if gc.want == "" {
					t.Logf("workers=%d hash=%s", w, got)
					continue
				}
				if got != gc.want {
					t.Fatalf("workers=%d: hash %s, want %s — coded output changed", w, got, gc.want)
				}
			}
		})
	}
}
