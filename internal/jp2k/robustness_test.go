package jp2k

import (
	"math/rand"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// decodeNoPanic decodes arbitrary bytes and reports any panic as a test
// failure; errors are fine.
func decodeNoPanic(t *testing.T, data []byte, label string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked: %v", label, r)
		}
	}()
	_, _ = Decode(data, DecodeOptions{})
}

func TestDecodeCorruptedStreams(t *testing.T) {
	im := raster.Synthetic(96, 96, 31)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	// Single-byte corruptions all over the stream.
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), cs...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		decodeNoPanic(t, mut, "flip")
	}
	// Truncations.
	for trial := 0; trial < 100; trial++ {
		cut := rng.Intn(len(cs))
		decodeNoPanic(t, cs[:cut], "truncate")
	}
	// Random garbage with a valid SOC prefix.
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(200)
		garbage := make([]byte, n)
		rng.Read(garbage)
		garbage[0], garbage[1] = 0xFF, 0x4F
		decodeNoPanic(t, garbage, "garbage")
	}
	// Byte deletions (shift the whole tail).
	for trial := 0; trial < 100; trial++ {
		pos := rng.Intn(len(cs))
		mut := append(append([]byte(nil), cs[:pos]...), cs[pos+1:]...)
		decodeNoPanic(t, mut, "delete")
	}
}

func TestDecodeCorruptedLossless(t *testing.T) {
	im := raster.Synthetic(64, 64, 32)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, TileW: 32, TileH: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), cs...)
		// Corrupt a small window to exercise multi-byte damage.
		pos := rng.Intn(len(mut) - 4)
		for k := 0; k < 4; k++ {
			mut[pos+k] ^= byte(rng.Intn(256))
		}
		decodeNoPanic(t, mut, "window")
	}
}

func TestDecodeEmptyAndTiny(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {0xFF}, {0xFF, 0x4F}, {0x00, 0x00, 0x00}} {
		decodeNoPanic(t, data, "tiny")
	}
}

func TestDecodeHeaderBombs(t *testing.T) {
	// Hand-crafted SIZ claiming absurd dimensions must be rejected quickly
	// rather than attempting huge allocations.
	im := raster.Synthetic(32, 32, 33)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), cs...)
	// Width field lives at offset 2 (SOC) + 2 (SIZ marker) + 2 (Lsiz) + 2 (Rsiz).
	mut[8], mut[9], mut[10], mut[11] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(mut, DecodeOptions{}); err == nil {
		t.Fatal("want error for absurd width")
	}
}
