package jp2k

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/faultinject"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// fileSource writes cs to a temp file and opens it as a t2.Source, so the
// decode under test really goes through io.ReaderAt on the filesystem — the
// acceptance path for the streaming decoder.
func fileSource(t testing.TB, cs []byte) *t2.Source {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.j2k")
	if err := os.WriteFile(path, cs, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := t2.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func planarsEqual(t *testing.T, got, want *raster.Planar, label string) {
	t.Helper()
	if got.NComp() != want.NComp() || got.Width() != want.Width() || got.Height() != want.Height() {
		t.Fatalf("%s: %dx%dx%d vs %dx%dx%d", label,
			got.Width(), got.Height(), got.NComp(), want.Width(), want.Height(), want.NComp())
	}
	if !raster.PlanarEqual(got, want) {
		t.Fatalf("%s: pixels differ", label)
	}
}

// TestGoldenHashesFileSource is the streaming half of the bit-identity gate:
// every golden and coder-modes stream, written to disk and decoded through a
// file-backed Source, must come out pixel-identical to the in-memory []byte
// decode (which TestGoldenHashes/TestCoderModesGoldenHashes pin to the
// historical hashes). Together the two tests prove the ReaderAt path changes
// nothing about WHAT is decoded, only where the bytes live.
func TestGoldenHashesFileSource(t *testing.T) {
	for _, gc := range append(goldenCases(), modeGoldenCases()...) {
		t.Run(gc.name, func(t *testing.T) {
			// gen output always begins with the codestream; the region-decode
			// case appends raw pixels after EOC, which the parser never reads.
			cs := gc.gen(t, 4)
			want, err := DecodePlanar(cs, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dec := NewDecoder()
			defer dec.Close()
			got, err := dec.DecodePlanarSource(fileSource(t, cs), DecodeOptions{})
			if err != nil {
				t.Fatalf("file-source decode: %v", err)
			}
			planarsEqual(t, got, want, "file source vs in-memory")
		})
	}
}

// TestDecodeRegionFileSource: windowed decodes through a file Source only
// read the window's tiles, and must match the in-memory region decode for
// every reduction.
func TestDecodeRegionFileSource(t *testing.T) {
	im := raster.Synthetic(256, 256, 41)
	cs, _, err := Encode(im, Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 64, TileH: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := fileSource(t, cs)
	dec := NewDecoder()
	defer dec.Close()
	for _, reg := range []Rect{
		{X0: 50, Y0: 70, X1: 200, Y1: 130},
		{X0: 0, Y0: 0, X1: 64, Y1: 64},
		{X0: 63, Y0: 63, X1: 65, Y1: 65},
	} {
		for reduce := 0; reduce <= 2; reduce++ {
			// Region coordinates live in the reduced grid.
			rr := Rect{X0: reg.X0 >> reduce, Y0: reg.Y0 >> reduce, X1: reg.X1 >> reduce, Y1: reg.Y1 >> reduce}
			opts := DecodeOptions{DiscardLevels: reduce}
			want, err := DecodeRegion(cs, rr, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.DecodeRegionSource(src, rr, opts)
			if err != nil {
				t.Fatalf("region %v reduce %d: %v", rr, reduce, err)
			}
			if !raster.Equal(got, want) {
				t.Fatalf("region %v reduce %d: file-source decode differs", rr, reduce)
			}
		}
	}
}

// strideGeometries returns the DecodeInto view shapes under test, each
// building a view of the given size inside a deliberately awkward buffer:
// compact, offset into a larger arena, padded rows, and a sub-rectangle of a
// mosaic. The sentinel fill lets callers verify bytes outside the view are
// never touched.
func strideGeometries(w, h int) []struct {
	name string
	mk   func() raster.Strided
} {
	const sentinel = -77777
	return []struct {
		name string
		mk   func() raster.Strided
	}{
		{"compact", func() raster.Strided {
			v := raster.Strided{Pix: make([]int32, w*h), Stride: w, Width: w, Height: h}
			v.Fill(sentinel)
			return v
		}},
		{"offset", func() raster.Strided {
			buf := make([]int32, 131+w*h+57)
			for i := range buf {
				buf[i] = sentinel
			}
			return raster.Strided{Pix: buf, Off: 131, Stride: w, Width: w, Height: h}
		}},
		{"padded-rows", func() raster.Strided {
			stride := w + 29
			buf := make([]int32, 5+stride*h)
			for i := range buf {
				buf[i] = sentinel
			}
			return raster.Strided{Pix: buf, Off: 5, Stride: stride, Width: w, Height: h}
		}},
		{"mosaic-subrect", func() raster.Strided {
			parent := raster.Strided{
				Pix: make([]int32, (w+100)*(h+80)), Stride: w + 100, Width: w + 100, Height: h + 80,
			}
			parent.Fill(sentinel)
			sub, err := parent.Sub(60, 40, 60+w, 40+h)
			if err != nil {
				panic(err)
			}
			return sub
		}},
	}
}

// checkSentinels verifies every sample of v's backing buffer outside the view
// still holds the sentinel — the decode wrote the view and nothing else.
func checkSentinels(t *testing.T, v raster.Strided, label string) {
	t.Helper()
	const sentinel = -77777
	inView := func(i int) bool {
		rel := i - v.Off
		if rel < 0 {
			return false
		}
		y, x := rel/v.Stride, rel%v.Stride
		return y < v.Height && x < v.Width
	}
	for i, s := range v.Pix {
		if !inView(i) && s != sentinel {
			t.Fatalf("%s: sample %d outside the view was overwritten (%d)", label, i, s)
		}
	}
}

// TestDecodeIntoMatchesDecode is the identity gate for caller-owned buffers:
// for every golden stream and every view geometry, DecodeInto must produce
// exactly Decode's pixels inside the view and must not touch a single sample
// outside it.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	for _, gc := range append(goldenCases(), modeGoldenCases()...) {
		t.Run(gc.name, func(t *testing.T) {
			cs := gc.gen(t, 4)
			want, err := DecodePlanar(cs, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			w, h, nc := want.Width(), want.Height(), want.NComp()
			src := fileSource(t, cs)
			dec := NewDecoder()
			defer dec.Close()
			for _, g := range strideGeometries(w, h) {
				views := make([]raster.Strided, nc)
				for ci := range views {
					views[ci] = g.mk()
				}
				var err error
				if nc == 1 {
					err = dec.DecodeInto(views[0], src, DecodeOptions{})
				} else {
					err = dec.DecodePlanarInto(views, src, DecodeOptions{})
				}
				if err != nil {
					t.Fatalf("%s: %v", g.name, err)
				}
				for ci := 0; ci < nc; ci++ {
					wantC := want.Comps[ci]
					for y := 0; y < h; y++ {
						row := views[ci].Row(y)
						wrow := wantC.Pix[y*wantC.Stride : y*wantC.Stride+w]
						for x := range row {
							if row[x] != wrow[x] {
								t.Fatalf("%s: comp %d pixel (%d,%d) = %d, want %d",
									g.name, ci, x, y, row[x], wrow[x])
							}
						}
					}
					checkSentinels(t, views[ci], g.name)
				}
			}
		})
	}
}

// TestDecodeRegionIntoMatchesCrop: a windowed DecodeRegionInto through a file
// Source equals the windowed allocating decode for every geometry, including
// decoding straight into the matching sub-rectangle of a full-size mosaic —
// the tile-server assembly pattern.
func TestDecodeRegionIntoMatchesCrop(t *testing.T) {
	im := raster.Synthetic(256, 256, 41)
	cs, _, err := Encode(im, Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 64, TileH: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := fileSource(t, cs)
	dec := NewDecoder()
	defer dec.Close()
	reg := Rect{X0: 50, Y0: 70, X1: 200, Y1: 130}
	want, err := DecodeRegion(cs, reg, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, h := want.Width, want.Height
	for _, g := range strideGeometries(w, h) {
		v := g.mk()
		if err := dec.DecodeRegionInto(v, src, reg, DecodeOptions{}); err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		for y := 0; y < h; y++ {
			row := v.Row(y)
			wrow := want.Pix[y*want.Stride : y*want.Stride+w]
			for x := range row {
				if row[x] != wrow[x] {
					t.Fatalf("%s: pixel (%d,%d) = %d, want %d", g.name, x, y, row[x], wrow[x])
				}
			}
		}
		checkSentinels(t, v, g.name)
	}
}

// TestDecodeIntoReuse drives one backing buffer through decodes of different
// streams and geometries back to back — the recycling pattern DecodeInto
// exists for. Every decode must match its allocating twin regardless of what
// the buffer held before.
func TestDecodeIntoReuse(t *testing.T) {
	arena := make([]int32, 300*300)
	dec := NewDecoder()
	defer dec.Close()
	for round := 0; round < 2; round++ {
		for _, gc := range goldenCases()[:3] {
			cs := gc.gen(t, 2)
			want, err := Decode(cs, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			w, h := want.Width, want.Height
			// A different offset each case, over the same dirty arena.
			v := raster.Strided{Pix: arena, Off: 17 * (round + 1), Stride: w + 13, Width: w, Height: h}
			if err := v.Check(); err != nil {
				t.Fatal(err)
			}
			if err := dec.DecodeInto(v, t2.BytesSource(cs), DecodeOptions{}); err != nil {
				t.Fatalf("%s round %d: %v", gc.name, round, err)
			}
			for y := 0; y < h; y++ {
				row := v.Row(y)
				wrow := want.Pix[y*want.Stride : y*want.Stride+w]
				for x := range row {
					if row[x] != wrow[x] {
						t.Fatalf("%s round %d: pixel (%d,%d) differs", gc.name, round, x, y)
					}
				}
			}
		}
	}
}

// TestDecodeIntoRejectsBadViews: geometry errors must surface before any
// decoding work, with the caller's buffer untouched.
func TestDecodeIntoRejectsBadViews(t *testing.T) {
	cs, _, err := Encode(raster.Synthetic(64, 48, 3), Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	defer dec.Close()
	src := t2.BytesSource(cs)
	bad := []raster.Strided{
		{Pix: make([]int32, 64*48), Stride: 64, Width: 64, Height: 48, Off: 1}, // overruns
		{Pix: make([]int32, 64*48), Stride: 63, Width: 64, Height: 48},         // stride < width
		{Pix: make([]int32, 32*48), Stride: 32, Width: 32, Height: 48},         // wrong size
		{Pix: make([]int32, 64*48), Stride: 64, Width: 64, Height: 40},         // wrong height
	}
	for i, v := range bad {
		if err := dec.DecodeInto(v, src, DecodeOptions{}); err == nil {
			t.Fatalf("bad view %d accepted", i)
		}
	}
	// Wrong plane count for the stream.
	if err := dec.DecodePlanarInto(make([]raster.Strided, 3), src, DecodeOptions{}); err == nil {
		t.Fatal("3 planes accepted for a 1-component stream")
	}
}

// TestResilientSourceKindsEqual runs the fault matrix over both source kinds:
// resilient decode of a damaged stream must produce the same salvage whether
// the bytes are resident or behind a file ReaderAt.
func TestResilientSourceKindsEqual(t *testing.T) {
	e := resilienceCorpus()[1] // lossy-tiled, plain
	cs := encodeEntry(t, e)
	for _, m := range faultinject.Mutations(cs, 99) {
		t.Run(m.Name, func(t *testing.T) {
			dm := NewDecoder()
			memImg, memErr := dm.Decode(m.Data, DecodeOptions{Resilient: true})
			df := NewDecoder()
			fileImg, fileErr := df.DecodeSource(fileSource(t, m.Data), DecodeOptions{Resilient: true})
			if (memErr == nil) != (fileErr == nil) {
				t.Fatalf("outcome differs by source kind: mem err %v, file err %v", memErr, fileErr)
			}
			if memErr != nil {
				return
			}
			if !raster.Equal(memImg, fileImg) {
				t.Fatal("salvaged image differs between resident and file source")
			}
		})
	}
}

// TestDecodeRegionIntoBoundedMemory is the peak-memory regression gate for
// the streaming path: walking a many-tile image window by window through one
// recycled DecodeRegionInto buffer must keep the heap bounded by the window's
// tiles, far below the full image footprint. Gated off -short (CI runs the
// full suite; `go test -short` skips it for quick local iteration).
func TestDecodeRegionIntoBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("peak-memory walk skipped in -short mode")
	}
	const imgW, imgH, tile = 1536, 1536, 128 // 144 tiles, 9.4 MiB plane
	cs, _, err := Encode(raster.Synthetic(imgW, imgH, 23), Options{
		Kernel: dwt.Rev53, TileW: tile, TileH: tile, Levels: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := fileSource(t, cs)
	cs = nil // drop the resident copy; only the file remains

	const win = 256 // 2x2 tiles per window
	dec := NewDecoder()
	defer dec.Close()
	buf := make([]int32, win*win)
	decodeWindow := func(x0, y0 int) {
		x1, y1 := x0+win, y0+win
		v := raster.Strided{Pix: buf, Stride: win, Width: x1 - x0, Height: y1 - y0}
		if err := dec.DecodeRegionInto(v, src, Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}, DecodeOptions{}); err != nil {
			t.Fatalf("window (%d,%d): %v", x0, y0, err)
		}
	}
	// Warm the decoder's pools on one window, then baseline the heap: steady
	// state is what the bound is about, not first-touch pool growth.
	decodeWindow(0, 0)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for y := 0; y < imgH; y += win {
		for x := 0; x < imgW; x += win {
			decodeWindow(x, y)
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	// The full image is imgW*imgH*4 ≈ 9.4 MiB per plane (and a resident
	// decode holds several planes plus the codestream). Steady-state growth
	// across a 36-window walk must stay far below one full plane; 2 MiB
	// allows pool wobble while failing hard if anything starts accumulating
	// whole-image state.
	const capBytes = 2 << 20
	full := uint64(imgW * imgH * 4)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("heap growth %d bytes over the walk (full plane %d)", grew, full)
	if grew > capBytes {
		t.Fatalf("windowed walk grew the heap by %d bytes (cap %d, full plane %d) — "+
			"region decode is no longer memory-bounded", grew, capBytes, full)
	}
}
