package jp2k

import (
	"math/rand"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// regionCases are the encode configurations the windowed-decode contract is
// verified against: both kernels, single- and multi-tile layouts, layered
// rate control, ROI scaling and non-default code-block sizes.
func regionCases() []Options {
	return []Options{
		{Kernel: dwt.Rev53, Levels: 3},
		{Kernel: dwt.Rev53, TileW: 64, TileH: 96, CBW: 32, CBH: 16, Levels: 3},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0}, TileW: 100, TileH: 90},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.5}, ROI: &ROIRect{X0: 30, Y0: 20, X1: 120, Y1: 100}},
	}
}

func crop(im *raster.Image, r Rect) *raster.Image {
	out := raster.New(r.Dx(), r.Dy())
	for y := 0; y < out.Height; y++ {
		copy(out.Row(y), im.Pix[(r.Y0+y)*im.Stride+r.X0:(r.Y0+y)*im.Stride+r.X1])
	}
	return out
}

// TestDecodeRegionMatchesCrop is the windowed-decode analogue of
// TestEncodeDeterministicAcrossWorkers: for every case, every (reduce,
// layers) combination and Workers in {1, 2, 4, 8}, DecodeRegion must be
// bit-identical to cropping a full Decode — tile selection, the parallel
// decomposition and the pooled state must never influence decoded samples.
func TestDecodeRegionMatchesCrop(t *testing.T) {
	im := raster.Synthetic(230, 190, 99)
	dec := NewDecoder()
	defer dec.Close()
	for ci, o := range regionCases() {
		o.Workers = 2
		cs, _, err := Encode(im, o)
		if err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		for _, reduce := range []int{0, 1, 2} {
			for _, layers := range []int{0, 1} {
				opts := DecodeOptions{DiscardLevels: reduce, MaxLayers: layers}
				full, err := Decode(cs, opts)
				if err != nil {
					t.Fatalf("case %d reduce %d: decode: %v", ci, reduce, err)
				}
				w, h := full.Width, full.Height
				regions := []Rect{
					{0, 0, w, h},                         // everything
					{0, 0, min(17, w), min(13, h)},       // top-left corner
					{w - 1, h - 1, w, h},                 // single pixel
					{w / 3, h / 4, 2*w/3 + 1, 3*h/4 + 1}, // interior window
					{0, h / 2, w, h/2 + 1},               // full-width stripe
					{-50, -50, w + 50, h + 50},           // clamped overshoot
				}
				for _, workers := range []int{1, 2, 4, 8} {
					opts.Workers = workers
					for ri, r := range regions {
						got, err := dec.DecodeRegion(cs, r, opts)
						if err != nil {
							t.Fatalf("case %d reduce %d layers %d workers %d region %d: %v",
								ci, reduce, layers, workers, ri, err)
						}
						want := crop(full, r.Intersect(Rect{X1: w, Y1: h}))
						if !raster.Equal(got, want) {
							t.Errorf("case %d reduce %d layers %d workers %d region %d (%+v): window differs from crop",
								ci, reduce, layers, workers, ri, r)
						}
					}
				}
			}
		}
	}
}

// TestDecoderReuseDeterministic asserts a reused Decoder produces bit-
// identical output to the one-shot path across repeated decodes that
// interleave different streams, option sets and worker counts — pooled state
// must not leak between calls.
func TestDecoderReuseDeterministic(t *testing.T) {
	images := []*raster.Image{
		raster.Synthetic(230, 190, 99),
		raster.Synthetic(127, 255, 5),
	}
	cases := regionCases()
	type key struct{ im, ci, reduce int }
	streams := map[int][]byte{}
	want := map[key]*raster.Image{}
	for ii, im := range images {
		for ci, o := range cases {
			o.Workers = 2
			cs, _, err := Encode(im, o)
			if err != nil {
				t.Fatalf("image %d case %d: %v", ii, ci, err)
			}
			streams[ii*len(cases)+ci] = cs
			for _, reduce := range []int{0, 2} {
				ref, err := Decode(cs, DecodeOptions{DiscardLevels: reduce})
				if err != nil {
					t.Fatalf("image %d case %d reduce %d: %v", ii, ci, reduce, err)
				}
				want[key{ii, ci, reduce}] = ref
			}
		}
	}
	dec := NewDecoder()
	defer dec.Close()
	for round := 0; round < 3; round++ {
		for ii := range images {
			for ci := range cases {
				for _, reduce := range []int{0, 2} {
					opts := DecodeOptions{DiscardLevels: reduce, Workers: 1 + (round+ci)%4}
					got, err := dec.Decode(streams[ii*len(cases)+ci], opts)
					if err != nil {
						t.Fatalf("round %d image %d case %d: %v", round, ii, ci, err)
					}
					if !raster.Equal(got, want[key{ii, ci, reduce}]) {
						t.Errorf("round %d image %d case %d reduce %d (workers=%d): reused decoder differs from one-shot",
							round, ii, ci, reduce, opts.Workers)
					}
				}
			}
		}
	}
}

// TestDecoderSteadyStateAllocs enforces the pooled decode path's alloc
// budget: a warm Decoder must allocate at least 10x less per call than the
// one-shot Decode function (the ROADMAP perf-methodology bar for pooling a
// stage). The returned image itself is the only required allocation.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	im := raster.Synthetic(256, 256, 7)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	opts := DecodeOptions{Workers: 1}
	oneShot := testing.AllocsPerRun(5, func() {
		if _, err := Decode(cs, opts); err != nil {
			t.Fatal(err)
		}
	})
	dec := NewDecoder()
	defer dec.Close()
	for i := 0; i < 3; i++ { // warm the pools
		if _, err := dec.Decode(cs, opts); err != nil {
			t.Fatal(err)
		}
	}
	pooled := testing.AllocsPerRun(10, func() {
		if _, err := dec.Decode(cs, opts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("decode allocs/op: one-shot %.0f, pooled steady-state %.0f", oneShot, pooled)
	if pooled*10 > oneShot {
		t.Fatalf("pooled decode allocates %.0f/op, more than 1/10 of the one-shot path's %.0f", pooled, oneShot)
	}
}

// TestDecodeRegionRobustness feeds corrupted and truncated streams to the
// windowed decoder: errors are expected, panics are not.
func TestDecodeRegionRobustness(t *testing.T) {
	im := raster.Synthetic(96, 96, 31)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 48, TileH: 48})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	defer dec.Close()
	region := Rect{X0: 10, Y0: 10, X1: 60, Y1: 60}
	try := func(data []byte, label string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: DecodeRegion panicked: %v", label, r)
			}
		}()
		_, _ = dec.DecodeRegion(data, region, DecodeOptions{Workers: 2})
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), cs...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		try(mut, "flip")
	}
	for trial := 0; trial < 100; trial++ {
		try(cs[:rng.Intn(len(cs))], "truncate")
	}
}

// TestDecodeRegionErrors covers the argument contract: fully out-of-range
// windows are errors, not empty images.
func TestDecodeRegionErrors(t *testing.T) {
	im := raster.Synthetic(64, 64, 3)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Rect{
		{X0: 64, Y0: 0, X1: 96, Y1: 32},  // beyond right edge
		{X0: 10, Y0: 10, X1: 10, Y1: 40}, // empty
		{X0: 30, Y0: 30, X1: 20, Y1: 40}, // inverted
	} {
		if _, err := DecodeRegion(cs, r, DecodeOptions{}); err == nil {
			t.Errorf("region %+v: want error, got image", r)
		}
	}
}
