package jp2k

import (
	"context"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/faultinject"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// resilienceCorpus is the encode-option matrix the fault-injection tests run
// over: lossless and lossy, single-tile and tiled, each with and without the
// resilience markers (SOP+EPH+SegSym).
type corpusEntry struct {
	name string
	opts Options
	w, h int
}

func resilienceCorpus() []corpusEntry {
	var out []corpusEntry
	base := []corpusEntry{
		{name: "lossless-64", opts: Options{Kernel: dwt.Rev53}, w: 64, h: 64},
		{name: "lossy-tiled-96", opts: Options{
			Kernel: dwt.Irr97, TileW: 48, TileH: 48, LayerBPP: []float64{0.5, 1.0},
		}, w: 96, h: 96},
		// Terminated coder modes add codeword-segment boundaries inside every
		// block contribution — new framing a mutation can land on.
		{name: "lossless-bypass-termall-64", opts: Options{
			Kernel: dwt.Rev53, Coder: CoderOptions{Bypass: true, TermAll: true},
		}, w: 64, h: 64},
		{name: "lossy-bypass-96", opts: Options{
			Kernel: dwt.Irr97, TileW: 48, TileH: 48, LayerBPP: []float64{0.5, 1.0},
			Coder: CoderOptions{Bypass: true},
		}, w: 96, h: 96},
	}
	for _, e := range base {
		plain := e
		plain.name += "/plain"
		out = append(out, plain)
		marked := e
		marked.name += "/marked"
		marked.opts.Resilience = ResilienceOptions{SOP: true, EPH: true, SegSymbols: true}
		out = append(out, marked)
	}
	return out
}

func encodeEntry(t *testing.T, e corpusEntry) []byte {
	t.Helper()
	cs, _, err := Encode(raster.Synthetic(e.w, e.h, 17), e.opts)
	if err != nil {
		t.Fatalf("%s: encode: %v", e.name, err)
	}
	return cs
}

// TestResilientCleanEqualsStrict pins the zero-damage invariant: on an
// intact stream, resilient decode is bit-identical to strict decode and the
// damage report stays empty — resilience must cost nothing when nothing is
// wrong.
func TestResilientCleanEqualsStrict(t *testing.T) {
	for _, e := range resilienceCorpus() {
		t.Run(e.name, func(t *testing.T) {
			cs := encodeEntry(t, e)
			strict, err := Decode(cs, DecodeOptions{})
			if err != nil {
				t.Fatalf("strict decode: %v", err)
			}
			dec := NewDecoder()
			soft, err := dec.Decode(cs, DecodeOptions{Resilient: true})
			if err != nil {
				t.Fatalf("resilient decode: %v", err)
			}
			if dec.Damage().Damaged() {
				t.Fatalf("clean stream reported damage: %s", dec.Damage())
			}
			if soft.Width != strict.Width || soft.Height != strict.Height {
				t.Fatalf("size %dx%d vs %dx%d", soft.Width, soft.Height, strict.Width, strict.Height)
			}
			for i := range strict.Pix {
				if soft.Pix[i] != strict.Pix[i] {
					t.Fatalf("pixel %d differs: %d vs %d", i, soft.Pix[i], strict.Pix[i])
				}
			}
		})
	}
}

// TestFaultMatrix drives every corpus entry through the standard mutator set
// and requires resilient decode to degrade gracefully: no panic ever, and for
// structural damage (truncation, byte drops) a full-size image plus a
// populated damage report. Header mutations may fail outright — an
// unparseable header leaves nothing to degrade toward — but must fail with an
// error, not a crash.
func TestFaultMatrix(t *testing.T) {
	for _, e := range resilienceCorpus() {
		cs := encodeEntry(t, e)
		for _, m := range faultinject.Mutations(cs, 99) {
			t.Run(e.name+"/"+m.Name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("resilient decode panicked: %v", r)
					}
				}()
				dec := NewDecoder()
				img, err := dec.Decode(m.Data, DecodeOptions{Resilient: true})
				if m.Name == "header-bitflip" {
					return // any non-panic outcome is acceptable
				}
				if err != nil {
					t.Fatalf("tile-body damage must conceal, got error: %v", err)
				}
				if img == nil || img.Width == 0 || img.Height == 0 {
					t.Fatal("resilient decode returned no image")
				}
				// Bit flips can corrupt silently on unmarked streams; framing
				// damage cannot — the walk or the container must notice.
				structural := m.Name[len(m.Name)-len("truncate"):] == "truncate" ||
					m.Name[len(m.Name)-len("drop"):] == "drop"
				if structural && !dec.Damage().Damaged() {
					t.Fatalf("%s produced an empty damage report", m.Name)
				}
			})
		}
	}
}

// TestFaultMatrixStrictNeverPanics runs the same mutations through the
// strict decoder: it may (and usually should) error, but must never crash.
func TestFaultMatrixStrictNeverPanics(t *testing.T) {
	for _, e := range resilienceCorpus() {
		cs := encodeEntry(t, e)
		for _, m := range faultinject.Mutations(cs, 99) {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s/%s: strict decode panicked: %v", e.name, m.Name, r)
					}
				}()
				Decode(m.Data, DecodeOptions{})
			}()
		}
	}
}

// TestDamageLocality is the payoff of SOP/EPH/SegSym: with all three on,
// corrupting one tile's body must leave every pixel outside that tile
// bit-identical to the clean decode — damage stays where the fault is.
func TestDamageLocality(t *testing.T) {
	im := raster.Synthetic(96, 96, 5)
	cs, _, err := Encode(im, Options{
		Kernel: dwt.Irr97, TileW: 48, TileH: 48, LayerBPP: []float64{1.0},
		Resilience: ResilienceOptions{SOP: true, EPH: true, SegSymbols: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spans := faultinject.TileBodies(cs)
	if len(spans) != 4 {
		t.Fatalf("%d tile bodies, want 4", len(spans))
	}
	// Damage tile 3 (bottom-right: x,y in [48,96)).
	bad := faultinject.BitFlip(cs, spans[3], 16, 123)
	dec := NewDecoder()
	got, err := dec.Decode(bad, DecodeOptions{Resilient: true})
	if err != nil {
		t.Fatalf("resilient decode: %v", err)
	}
	if !dec.Damage().Damaged() {
		t.Fatal("16 bit flips in a segsym stream went unreported")
	}
	for _, td := range dec.Damage().Tiles {
		if td.Tile != 3 {
			t.Fatalf("damage reported on tile %d, only tile 3 was touched", td.Tile)
		}
	}
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			if x >= 48 && y >= 48 {
				continue // inside the damaged tile
			}
			if got.Pix[y*got.Stride+x] != clean.Pix[y*clean.Stride+x] {
				t.Fatalf("pixel (%d,%d) outside the damaged tile changed", x, y)
			}
		}
	}
}

// TestDecodeContextCancel checks the decode-side context: an already-
// cancelled context aborts before any tile work happens.
func TestDecodeContextCancel(t *testing.T) {
	cs := encodeEntry(t, resilienceCorpus()[0])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Decode(cs, DecodeOptions{Ctx: ctx}); err == nil {
		t.Fatal("cancelled context did not abort decode")
	}
	if _, err := Decode(cs, DecodeOptions{Ctx: context.Background()}); err != nil {
		t.Fatalf("live context broke decode: %v", err)
	}
}

// FuzzDecodeResilient feeds arbitrary bytes to both decode modes; neither
// may panic, and resilient mode may only return (image, nil) or (nil, error)
// — never a nil image with a nil error.
func FuzzDecodeResilient(f *testing.F) {
	for _, e := range []corpusEntry{
		{opts: Options{Kernel: dwt.Rev53}, w: 48, h: 48},
		{opts: Options{
			Kernel: dwt.Irr97, TileW: 32, TileH: 32, LayerBPP: []float64{1.0},
			Resilience: ResilienceOptions{SOP: true, EPH: true, SegSymbols: true},
		}, w: 64, h: 64},
		{opts: Options{
			Kernel: dwt.Rev53, Coder: CoderOptions{Bypass: true, TermAll: true},
			Resilience: ResilienceOptions{SegSymbols: true},
		}, w: 48, h: 48},
	} {
		cs, _, err := Encode(raster.Synthetic(e.w, e.h, 3), e.opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(cs)
		for _, m := range faultinject.Mutations(cs, 7) {
			f.Add(m.Data)
		}
		// The decompression-bomb shape: a legitimate stream whose SIZ claims
		// a 2^40-pixel image (Xsiz at byte 8, Ysiz at 12).
		bomb := append([]byte(nil), cs...)
		for _, off := range []int{8, 12} {
			bomb[off], bomb[off+1], bomb[off+2], bomb[off+3] = 0x00, 0x10, 0x00, 0x00
		}
		f.Add(bomb)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		// The default sample budget admits ~1GB of planes — fine as a DoS
		// bound, uselessly slow per fuzz exec. Tighten it so the fuzzer
		// spends its time in the codec, not in clearing huge allocations.
		old := t2.MaxImagePixels
		t2.MaxImagePixels = 1 << 22
		defer func() { t2.MaxImagePixels = old }()
		dec := NewDecoder()
		img, err := dec.Decode(data, DecodeOptions{Resilient: true})
		if err == nil && img == nil {
			t.Fatal("resilient decode returned nil image and nil error")
		}
		Decode(data, DecodeOptions{})
	})
}
