package jp2k

import (
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/faultinject"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// coderCombos is the mode matrix the end-to-end tests sweep: each style
// alone, the standard fast pairing (bypass+termall), and everything at once.
var coderCombos = []struct {
	name  string
	coder CoderOptions
}{
	{"bypass", CoderOptions{Bypass: true}},
	{"termall", CoderOptions{TermAll: true}},
	{"reset", CoderOptions{ResetCtx: true}},
	{"causal", CoderOptions{Causal: true}},
	{"bypass-termall", CoderOptions{Bypass: true, TermAll: true}},
	{"all", CoderOptions{Bypass: true, TermAll: true, ResetCtx: true, Causal: true}},
}

// TestCoderModesLosslessRoundTrip: every mode combo must stay lossless for
// every worker count — the modes change how bits are coded and segmented,
// never what they reconstruct to.
func TestCoderModesLosslessRoundTrip(t *testing.T) {
	im := raster.Synthetic(230, 190, 99)
	for _, c := range coderCombos {
		t.Run(c.name, func(t *testing.T) {
			for _, w := range []int{1, 2, 4, 8} {
				cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, Workers: w, Coder: c.coder})
				if err != nil {
					t.Fatalf("w=%d: encode: %v", w, err)
				}
				out, err := Decode(cs, DecodeOptions{Workers: w})
				if err != nil {
					t.Fatalf("w=%d: decode: %v", w, err)
				}
				for i := range im.Pix {
					if im.Pix[i] != out.Pix[i] {
						t.Fatalf("w=%d: pixel %d: got %d want %d", w, i, out.Pix[i], im.Pix[i])
					}
				}
			}
		})
	}
}

// TestCoderModesLossyLayered drives the terminated modes through PCRD rate
// allocation (where bypass restricts truncation points to exact segment
// boundaries) and layer-truncated decoding.
func TestCoderModesLossyLayered(t *testing.T) {
	im := raster.Synthetic(230, 190, 99)
	for _, c := range coderCombos {
		t.Run(c.name, func(t *testing.T) {
			cs, _, err := Encode(im, Options{
				Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0},
				TileW: 64, TileH: 96, Workers: 4, Coder: c.coder,
			})
			if err != nil {
				t.Fatal(err)
			}
			out, err := Decode(cs, DecodeOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			mse := 0.0
			for i := range im.Pix {
				d := float64(im.Pix[i] - out.Pix[i])
				mse += d * d
			}
			if mse /= float64(len(im.Pix)); mse > 100 {
				t.Fatalf("mse %.2f at 1 bpp", mse)
			}
			if _, err := Decode(cs, DecodeOptions{MaxLayers: 1}); err != nil {
				t.Fatalf("layer-truncated decode: %v", err)
			}
			if _, err := Decode(cs, DecodeOptions{DiscardLevels: 2}); err != nil {
				t.Fatalf("resolution-truncated decode: %v", err)
			}
		})
	}
}

// TestCoderModesResilienceInterplay combines every coder combo with the full
// resilience tool set: a clean stream must decode exactly with an empty
// damage report, and a corrupted tile body must conceal, not error.
func TestCoderModesResilienceInterplay(t *testing.T) {
	im := raster.Synthetic(96, 96, 5)
	for _, c := range coderCombos {
		t.Run(c.name, func(t *testing.T) {
			cs, _, err := Encode(im, Options{
				Kernel: dwt.Rev53, TileW: 48, TileH: 48, Coder: c.coder,
				Resilience: ResilienceOptions{SOP: true, EPH: true, SegSymbols: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			dec := NewDecoder()
			clean, err := dec.Decode(cs, DecodeOptions{Resilient: true})
			if err != nil {
				t.Fatalf("clean resilient decode: %v", err)
			}
			if dec.Damage().Damaged() {
				t.Fatalf("clean stream reported damage: %s", dec.Damage())
			}
			for i := range im.Pix {
				if clean.Pix[i] != im.Pix[i] {
					t.Fatalf("clean resilient decode not lossless at %d", i)
				}
			}
			spans := faultinject.TileBodies(cs)
			bad := faultinject.BitFlip(cs, spans[len(spans)-1], 16, 123)
			if _, err := dec.Decode(bad, DecodeOptions{Resilient: true}); err != nil {
				t.Fatalf("corrupt body must conceal, got error: %v", err)
			}
		})
	}
}

// TestCoderModesSignalled pins the COD signalling loop: the decoder learns
// the modes from the codestream alone, and the parsed Params reproduce the
// encoder's options bit for bit.
func TestCoderModesSignalled(t *testing.T) {
	im := raster.Synthetic(64, 64, 3)
	for _, c := range coderCombos {
		cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, Coder: c.coder})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		p, _, err := t2.ReadCodestream(cs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Bypass != c.coder.Bypass || p.ResetCtx != c.coder.ResetCtx ||
			p.TermAll != c.coder.TermAll || p.Causal != c.coder.Causal {
			t.Fatalf("%s: COD round-trip lost modes: got %+v", c.name, p.CoderModes())
		}
		if _, err := t2.BuildIndex(cs); err != nil {
			t.Fatalf("%s: index over terminated segments: %v", c.name, err)
		}
	}
}

// modeGoldenCases pins the coded output of the new modes the same way
// goldenCases pins the defaults: any change to the mode coding paths that
// alters the stream must be a deliberate format change.
func modeGoldenCases() []goldenHash {
	enc := func(o Options) func(t *testing.T, w int) []byte {
		return func(t *testing.T, w int) []byte {
			o.Workers = w
			cs, _, err := Encode(goldenGray(), o)
			if err != nil {
				t.Fatal(err)
			}
			return cs
		}
	}
	return []goldenHash{
		{
			name: "gray-53-bypass",
			want: "8328ad7ee9d3fa8d6c289eb1ffe86b92",
			gen:  enc(Options{Kernel: dwt.Rev53, Coder: CoderOptions{Bypass: true}}),
		},
		{
			name: "gray-53-termall-reset",
			want: "57c18035cadc93b75275828cbff1d041",
			gen:  enc(Options{Kernel: dwt.Rev53, Coder: CoderOptions{TermAll: true, ResetCtx: true}}),
		},
		{
			name: "gray-53-allmodes-tiled",
			want: "123b1c370fcc461ef850dd65cf9a3e59",
			gen: enc(Options{
				Kernel: dwt.Rev53, TileW: 64, TileH: 96, CBW: 32, CBH: 16, Levels: 3,
				Coder: CoderOptions{Bypass: true, TermAll: true, ResetCtx: true, Causal: true},
			}),
		},
		{
			name: "gray-97-layered-bypass",
			want: "a317a1619eda88ee5bd7fb26a53cc95a",
			gen: enc(Options{
				Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0},
				Coder: CoderOptions{Bypass: true},
			}),
		},
		{
			name: "gray-97-layered-bypass-termall",
			want: "2aed1aee316a3917d4041f968c60979c",
			gen: enc(Options{
				Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 1.0},
				Coder: CoderOptions{Bypass: true, TermAll: true},
			}),
		},
	}
}

// TestCoderModesGoldenHashes is the bit-identity gate for the mode coding
// paths, mirroring TestGoldenHashes: same stream for every worker count,
// pinned to the values of the tree that introduced the modes.
func TestCoderModesGoldenHashes(t *testing.T) {
	for _, gc := range modeGoldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			for _, w := range []int{1, 2, 4, 8} {
				got := hashBytes(gc.gen(t, w))
				if gc.want == "" {
					t.Logf("workers=%d hash=%s", w, got)
					continue
				}
				if got != gc.want {
					t.Fatalf("workers=%d: hash %s, want %s — mode coded output changed", w, got, gc.want)
				}
			}
		})
	}
}
