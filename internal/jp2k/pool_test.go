package jp2k

import (
	"runtime"
	"testing"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/raster"
)

// waitGoroutines polls until the process goroutine count drops back to n (or
// the deadline passes); pool workers unwind asynchronously after Close's join
// returns them from their loops.
func waitGoroutines(n int) int {
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > n && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// TestCodecCloseReleasesWorkers: an Encoder/Decoder built with NewEncoder/
// NewDecoder owns its worker pool, and Close joins those resident workers —
// codec instances must not leak goroutines into a long-lived process.
func TestCodecCloseReleasesWorkers(t *testing.T) {
	im := raster.Synthetic(128, 96, 11)
	before := runtime.NumGoroutine()
	enc := NewEncoder()
	cs, _, err := enc.Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if _, err := dec.Decode(cs, DecodeOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	enc.Close()
	dec.Close()
	if n := waitGoroutines(before); n > before {
		t.Fatalf("%d goroutines after Close, started with %d", n, before)
	}
}

// TestCodecSharedPoolSurvivesClose: codecs on a caller-owned pool must not
// tear it down on Close — the server shape, where many pooled Decoders come
// and go over one resident worker set.
func TestCodecSharedPoolSurvivesClose(t *testing.T) {
	pool := core.NewPool(2)
	defer pool.Close()
	im := raster.Synthetic(96, 64, 12)
	enc := NewEncoderWithPool(pool)
	cs, _, err := enc.Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	enc.Close()
	// The pool must still dispatch: a second codec keeps working on it.
	dec := NewDecoderWithPool(pool)
	defer dec.Close()
	got, err := dec.Decode(cs, DecodeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(got, want) {
		t.Fatal("shared-pool decode differs from one-shot decode")
	}
}
