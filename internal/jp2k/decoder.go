package jp2k

import (
	"context"
	"fmt"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/mct"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// Rect is an axis-aligned rectangle ([X0,X1) x [Y0,Y1)) in the coordinate
// system of the image a decode produces — for DiscardLevels > 0 that is the
// reduced grid, the natural addressing for a viewer that already fetched the
// stream's geometry at that scale.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Dx returns the rectangle's width.
func (r Rect) Dx() int { return r.X1 - r.X0 }

// Dy returns the rectangle's height.
func (r Rect) Dy() int { return r.Y1 - r.Y0 }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	if o.X0 > r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 > r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 < r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 < r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// Decoder is a reusable decode pipeline mirroring Encoder: it owns every
// pooled buffer the decode hot loops need — per-worker tier-1 block decoders
// and DWT scratch, per-tile tier-2 coding state, packet-segment accumulators
// and per-component coefficient planes — so repeated Decode/DecodeRegion
// calls reach a steady state with near-zero heap allocations beyond the
// returned image. Server workloads hold one Decoder per concurrent stream (or
// a sync.Pool of them) and decode windows out of large codestreams without
// ever reconstructing the full image.
//
// Multi-component codestreams decode natively: the packet walk de-interleaves
// per-component packets per tile, tier-1 runs over every kept (tile,
// component, block) job, and assembly + inverse transform parallelize over
// the tile x component grid; the inverse inter-component transform is applied
// when the stream's COD marker flags MCT.
//
// A Decoder is not safe for concurrent use; pooled state does not leak
// between calls (output is bit-identical to the one-shot Decode function for
// any worker count, and DecodeRegion is bit-identical to cropping a full
// Decode).
type Decoder struct {
	scratch      []*dwt.Scratch // per outer (unit-level) worker
	scratchInner int
	bds          []*t1.BlockDecoder // per block-level worker
	tiles        []*tileDec
	jobs         []decJob
	tileErrs     []error
	blockErrs    []error
	tileIOFail   []bool            // per selected tile: body unreadable (resilient decodes)
	tileDmg      []t2.DecodeDamage // per selected tile (resilient decodes)
	blockStats   []t1.SegStats     // per tier-1 job (resilient decodes)
	damage       *DamageReport     // of the last resilient decode
	colW, rowH   []int
	sel          []int
	mctFloats    [][]float64 // pooled float planes for the inverse ICT

	// Dispatch funcs bound once at construction, so the hot TasksIDMax call
	// sites pass a stored func instead of allocating a fresh closure per
	// decode; the per-call parameters travel through cur.
	walkFn  func(worker, si int)
	blockFn func(worker, i int)
	asmFn   func(worker, u int)
	views   []raster.Strided // pooled dst views for the allocate-own path
	cur     struct {
		p     t2.Params
		modes t1.Modes // tier-1 coder modes signalled in COD
		// The codestream travels as either resident spans or materialized
		// tile bodies: strict decodes carry src + spans (mem set when the
		// source is resident bytes, so bodies alias instead of copy);
		// resilient decodes carry the salvaged tiles slices.
		src      *t2.Source
		mem      []byte
		spans    []t2.TileSpan
		tiles    [][]byte
		dst      []raster.Strided // one destination view per component
		win      Rect
		ncomp    int
		nlayers  int
		discard  int
		keep     int
		ntx      int
		innerW   int
		outShift int32
		opts     DecodeOptions
	}

	pool    *core.Pool // resident workers for every stage dispatch
	ownPool bool       // created by this Decoder; released by Close

	// Metrics, when set, receives one per-stage latency/byte record per
	// successful decode (shared by all codecs pointed at the same handle).
	// Set it before the first decode; nil disables recording.
	Metrics *CodecMetrics
	stats   DecodeStats // of the most recent decode
}

// Stats returns the stage timings and input accounting of the most recent
// decode on this Decoder (zero after a failed decode). The returned value is
// a snapshot; it does not change when the Decoder is reused.
func (d *Decoder) Stats() DecodeStats { return d.stats }

// decSlot is one kept (entropy-decoded) code-block of a tile component.
type decSlot struct {
	bi   int
	rect t2.CBRect
	id   int // component-local block id within the tile
	vals []int32
}

// decJob addresses one kept block: selected-tile slot x component x block
// slot.
type decJob struct {
	ti, ci, si int
}

// compDec is the pooled per-(tile, component) decode state.
type compDec struct {
	bands  []t2.BandBlocks
	dec    []t2.DecodedBlock
	slots  []decSlot
	plane  *raster.Image // 5/3 coefficient plane
	fplane *dwt.FPlane   // 9/7 coefficient plane
}

// tileDec is the pooled per-tile decode state: geometry shared across
// components plus one compDec per component.
type tileDec struct {
	data     []byte // tile-part body (aliases the codestream or body below)
	body     []byte // pooled read buffer for non-resident sources
	w, h     int    // full-resolution tile dims
	rtw, rth int    // reduced dims
	ox, oy   int    // origin in the reduced image
	subbands []dwt.Subband
	gridKey  gridKey
	ncomp    int
	comps    []compDec
	bandsV   [][]t2.BandBlocks // per-component views for the packet walk
	decV     [][]t2.DecodedBlock
	tc       *t2.TileCoder
}

func newDecoder(p *core.Pool, own bool) *Decoder {
	d := &Decoder{pool: p, ownPool: own}
	d.walkFn = d.walkTask
	d.blockFn = d.blockTask
	d.asmFn = d.asmTask
	return d
}

// NewDecoder returns an empty Decoder; pooled buffers are sized on first use.
// The Decoder owns a persistent worker pool (its workers start on the first
// parallel decode); call Close when done with the Decoder to release them.
func NewDecoder() *Decoder {
	return newDecoder(core.NewPool(0), true)
}

// NewDecoderWithPool returns a Decoder dispatching on a shared worker pool —
// the tile-server shape, where every request's decodes fan into one resident
// worker set. The caller keeps ownership of the pool: Close releases only the
// Decoder's buffers, never the shared workers.
func NewDecoderWithPool(p *core.Pool) *Decoder {
	if p == nil {
		p = core.Default()
	}
	return newDecoder(p, false)
}

// Close releases the Decoder's worker pool (when owned) and drops the pooled
// buffers, so a retained reference to a closed Decoder pins neither workers
// nor arenas. The Decoder must not be used after Close.
func (d *Decoder) Close() {
	if d.ownPool {
		d.pool.Close()
	}
	*d = Decoder{}
}

// Damage returns the damage report of the most recent resilient decode: what
// the best-effort pipeline salvaged around, concealed or lost. It returns nil
// when the last decode was strict (DecodeOptions.Resilient false) or failed
// outright. The report is replaced by the next decode on this Decoder.
func (d *Decoder) Damage() *DamageReport { return d.damage }

// ctxErr is the between-stages cancellation probe; a nil context means the
// decode is unbounded.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ensureWorkers sizes the per-worker pools, mirroring Encoder.ensureWorkers:
// outer unit-level workers each carry DWT scratch for inner within-unit
// workers; block-level workers carry tier-1 decoders.
func (d *Decoder) ensureWorkers(outer, inner, block int) {
	if inner > d.scratchInner {
		d.scratch = d.scratch[:0]
		d.scratchInner = inner
	}
	for len(d.scratch) < outer {
		d.scratch = append(d.scratch, dwt.NewScratch(d.scratchInner))
	}
	for len(d.bds) < block {
		bd := t1.NewBlockDecoder()
		// Under Bypass+TERMALL a block's raw significance and refinement
		// segments decode concurrently on the shared pool (nested dispatches
		// run inline when the workers are saturated by the per-block fan-out).
		bd.Pool = d.pool
		d.bds = append(d.bds, bd)
	}
}

// Decode reconstructs the full image from a single-component codestream.
// With DiscardLevels > 0 the result is the 1/2^n-scale image carried by the
// lower resolutions of the stream. The returned image is freshly allocated
// and caller-owned. Multi-component streams are an error; use DecodePlanar.
func (d *Decoder) Decode(data []byte, opts DecodeOptions) (*raster.Image, error) {
	pl, err := d.decode(t2.BytesSource(data), opts, nil, true, nil)
	if err != nil {
		return nil, err
	}
	return pl.Comps[0], nil
}

// DecodePlanar reconstructs all components of a codestream, inverting the
// inter-component transform when the stream flags it. The returned planes are
// freshly allocated and caller-owned.
func (d *Decoder) DecodePlanar(data []byte, opts DecodeOptions) (*raster.Planar, error) {
	return d.decode(t2.BytesSource(data), opts, nil, false, nil)
}

// DecodeRegion reconstructs only the requested window of a single-component
// stream: tiles that do not intersect region are neither entropy-decoded nor
// transformed, which is what makes serving viewports out of a tiled
// gigapixel stream cheap. region is expressed in the output grid of Decode at
// opts.DiscardLevels and is clamped to the image; the result is bit-identical
// to cropping a full Decode for any worker count.
func (d *Decoder) DecodeRegion(data []byte, region Rect, opts DecodeOptions) (*raster.Image, error) {
	pl, err := d.decode(t2.BytesSource(data), opts, &region, true, nil)
	if err != nil {
		return nil, err
	}
	return pl.Comps[0], nil
}

// DecodeRegionPlanar is DecodeRegion for any component count: every component
// of the window is reconstructed (the inverse inter-component transform is
// per-pixel, so it applies cleanly to windows).
func (d *Decoder) DecodeRegionPlanar(data []byte, region Rect, opts DecodeOptions) (*raster.Planar, error) {
	return d.decode(t2.BytesSource(data), opts, &region, false, nil)
}

// walkTask parses one selected tile's packet headers and accumulates its
// code-block segments — the body of the cross-tile tier-2 dispatch.
func (d *Decoder) walkTask(_, si int) {
	p := &d.cur.p
	ncomp, nlayers, discard, ntx := d.cur.ncomp, d.cur.nlayers, d.cur.discard, d.cur.ntx
	nbands := 1 + 3*p.Levels
	ti := d.sel[si]
	tx, ty := ti%ntx, ti/ntx
	te := d.tiles[si]
	// Fetch the tile-part body: resilient decodes carry materialized tiles,
	// strict decodes carry spans — aliased for resident bytes, read into the
	// pooled per-tile buffer for a ReaderAt source (only selected tiles are
	// ever read, which is what bounds a window decode's IO to its tiles).
	if d.cur.tiles != nil {
		te.data = d.cur.tiles[ti]
	} else {
		sp := d.cur.spans[ti]
		switch {
		case sp.Off < 0:
			// Sentinel for a tile-part the resilient scan could not locate
			// (truncated chain): decode as an empty (gray) tile.
			te.data = nil
		case d.cur.mem != nil:
			te.data = d.cur.mem[sp.Off:sp.End()]
		default:
			te.body = grow(te.body, int(sp.Len))
			if _, err := d.cur.src.ReadAt(te.body, sp.Off); err != nil {
				if !d.cur.opts.Resilient {
					d.tileErrs[si] = &TileIOError{Tile: ti, Off: sp.Off, Len: sp.Len, Err: err}
					return
				}
				// The body is unreadable after whatever retries the source
				// performed: conceal the whole tile and record the IO damage
				// class — unreadable bytes degrade, they do not abort.
				d.tileIOFail[si] = true
				te.data = nil
				break
			}
			te.data = te.body
		}
	}
	x0, y0 := tx*p.TileW, ty*p.TileH
	te.w = min(x0+p.TileW, p.Width) - x0
	te.h = min(y0+p.TileH, p.Height) - y0
	te.rtw, te.rth = reduceDim(te.w, discard), reduceDim(te.h, discard)
	te.ox, te.oy = d.colW[tx], d.rowH[ty]

	if len(te.comps) < ncomp {
		te.comps = append(te.comps, make([]compDec, ncomp-len(te.comps))...)
	}
	te.bandsV = grow(te.bandsV, ncomp)
	te.decV = grow(te.decV, ncomp)
	key := gridKey{te.w, te.h, p.Levels, p.CBW, p.CBH}
	if te.gridKey != key || te.ncomp != ncomp {
		te.gridKey = key
		te.ncomp = ncomp
		te.subbands = dwt.SubbandsAppend(te.subbands[:0], te.w, te.h, p.Levels)
		for bi, b := range te.subbands {
			g := t2.MakeGrid(b, p.CBW, p.CBH)
			for ci := 0; ci < ncomp; ci++ {
				cd := &te.comps[ci]
				cd.bands = grow(cd.bands, nbands)
				cd.bands[bi] = t2.BandBlocks{Grid: g}
			}
		}
	}
	for ci := 0; ci < ncomp; ci++ {
		cd := &te.comps[ci]
		for bi := range cd.bands {
			cd.bands[bi].Mb = p.Mb[ci][bi]
		}
		te.bandsV[ci] = cd.bands
		te.decV[ci] = cd.dec
	}
	if te.tc == nil {
		te.tc = t2.NewTileCoderComps(te.bandsV[:ncomp])
	}
	te.tc.SOP, te.tc.EPH = p.UseSOP, p.UseEPH
	te.tc.Modes = d.cur.modes
	var decV [][]t2.DecodedBlock
	if d.cur.opts.Resilient {
		decV, _, d.tileDmg[si] = te.tc.DecodeTileCompsPacketsResilient(
			te.bandsV[:ncomp], p.Levels, nlayers, te.data, te.decV[:ncomp])
	} else {
		var err error
		decV, _, err = te.tc.DecodeTileCompsPackets(te.bandsV[:ncomp], p.Levels, nlayers, te.data, te.decV[:ncomp])
		if err != nil {
			d.tileErrs[si] = fmt.Errorf("jp2k: tile %d: %w", ti, err)
			return
		}
	}

	// Enumerate the blocks to entropy-decode: bands of discarded
	// resolutions were parsed (the packet walk needs their headers) but
	// are skipped here.
	for ci := 0; ci < ncomp; ci++ {
		cd := &te.comps[ci]
		cd.dec = decV[ci]
		cd.slots = cd.slots[:0]
		id := 0
		for bi := range cd.bands {
			keep := bi == 0 || te.subbands[bi].Level > discard
			for _, r := range cd.bands[bi].Grid.Rects {
				if keep {
					cd.slots = append(cd.slots, decSlot{bi: bi, rect: r, id: id})
				}
				id++
			}
		}
	}
}

// blockTask entropy-decodes one kept code-block on the dispatching worker's
// pooled BlockDecoder.
func (d *Decoder) blockTask(worker, i int) {
	te := d.tiles[d.jobs[i].ti]
	cd := &te.comps[d.jobs[i].ci]
	s := &cd.slots[d.jobs[i].si]
	blk := &cd.dec[s.id]
	// The coder modes travel from COD into each block decode; segmentation
	// symbols (when the stream carries them) are verified in strict mode too —
	// a symbol-carrying stream is self-checking — and drive concealment in
	// resilient mode.
	in := t1.BlockIn{
		W: s.rect.X1 - s.rect.X0, H: s.rect.Y1 - s.rect.Y0,
		Band:         te.subbands[s.bi].Type,
		NumBitplanes: blk.NumBitplanes,
		Data:         blk.Data,
		NPasses:      blk.Passes,
		Modes:        d.cur.modes,
		SegEnds:      blk.SegmentEnds(d.cur.modes),
	}
	s.vals, d.blockStats[i], d.blockErrs[i] = d.bds[worker].DecodeBlock(&in, d.cur.opts.Resilient)
}

// asmTask assembles one (selected tile, component) unit's coefficient plane,
// runs the inverse transform and copies the window into the output.
func (d *Decoder) asmTask(worker, u int) {
	p := &d.cur.p
	ncomp, win, opts := d.cur.ncomp, d.cur.win, &d.cur.opts
	te := d.tiles[u/ncomp]
	ci := u % ncomp
	cd := &te.comps[ci]
	if p.ROIShift > 0 {
		for _, s := range cd.slots {
			unscaleROI(s.vals, p.ROIShift)
		}
	}
	st := dwt.Strategy{
		VertMode: opts.VertMode, BlockWidth: opts.VertBlockWidth,
		Workers: d.cur.innerW, Scratch: d.scratch[worker], Pool: d.pool,
	}
	// The tile window to copy out, in tile-local reduced coordinates.
	lx0, ly0 := max(win.X0-te.ox, 0), max(win.Y0-te.oy, 0)
	lx1, ly1 := min(win.X1-te.ox, te.rtw), min(win.Y1-te.oy, te.rth)
	ox, oy := te.ox+lx0-win.X0, te.oy+ly0-win.Y0
	dst := &d.cur.dst[ci]
	outShift := d.cur.outShift
	if p.Kernel == dwt.Rev53 {
		cd.plane = reuseImage(cd.plane, te.rtw, te.rth)
		for _, s := range cd.slots {
			b := te.subbands[s.bi]
			w := s.rect.X1 - s.rect.X0
			for y := s.rect.Y0; y < s.rect.Y1; y++ {
				copy(cd.plane.Pix[(b.Y0+y)*cd.plane.Stride+b.X0+s.rect.X0:(b.Y0+y)*cd.plane.Stride+b.X0+s.rect.X1],
					s.vals[(y-s.rect.Y0)*w:(y-s.rect.Y0+1)*w])
			}
		}
		dwt.Inverse53(cd.plane, d.cur.keep, st)
		for y := ly0; y < ly1; y++ {
			src := cd.plane.Row(y)[lx0:lx1]
			o := dst.Off + (oy+y-ly0)*dst.Stride + ox
			drow := dst.Pix[o : o+lx1-lx0]
			for x, v := range src {
				drow[x] = v + outShift
			}
		}
	} else {
		cd.fplane = reuseFPlane(cd.fplane, te.rtw, te.rth)
		fp := cd.fplane
		for _, s := range cd.slots {
			b := te.subbands[s.bi]
			w := s.rect.X1 - s.rect.X0
			sub := dwt.Subband{X0: b.X0 + s.rect.X0, Y0: b.Y0 + s.rect.Y0, X1: b.X0 + s.rect.X1, Y1: b.Y0 + s.rect.Y1}
			quant.Inverse(s.vals, w, sub, p.Steps[ci][s.bi].Value(), fp.Data, fp.Stride, 1)
		}
		dwt.Inverse97(fp, d.cur.keep, st)
		for y := ly0; y < ly1; y++ {
			src := fp.Data[y*fp.Stride+lx0 : y*fp.Stride+lx1]
			o := dst.Off + (oy+y-ly0)*dst.Stride + ox
			drow := dst.Pix[o : o+lx1-lx0]
			for x, v := range src {
				if v >= 0 {
					drow[x] = int32(v+0.5) + outShift
				} else {
					drow[x] = int32(v-0.5) + outShift
				}
			}
		}
	}
}

func (d *Decoder) decode(src *t2.Source, opts DecodeOptions, region *Rect, singleOnly bool, dst []raster.Strided) (*raster.Planar, error) {
	// The task parameters and the pooled per-tile state alias the caller's
	// codestream, destination buffers and the result; drop them on the way
	// out so a pooled Decoder pins none of them between calls.
	defer func() {
		d.cur.src, d.cur.mem, d.cur.spans, d.cur.tiles, d.cur.dst = nil, nil, nil, nil, nil
		for i := range d.views {
			d.views[i] = raster.Strided{}
		}
		for _, te := range d.tiles {
			te.data = nil
		}
	}()
	d.damage = nil
	d.stats = DecodeStats{}
	tParse := time.Now()
	var p t2.Params
	var spans []t2.TileSpan
	var tiles [][]byte
	var cdmg t2.ContainerDamage
	var err error
	salvagedTiles := false
	if opts.Resilient {
		if mem := src.Mem(); mem != nil {
			// Resident bytes: full salvage (Psot re-bounding, marker resync)
			// over the slice is a free alias, exactly as before streaming.
			p, tiles, cdmg, err = t2.ReadCodestreamResilient(mem)
			salvagedTiles = true
		} else {
			// Reader-backed: salvage the tile-part chain without materializing
			// the stream — bodies are read per selected tile in walkTask, so
			// an unreadable body degrades that one tile instead of failing the
			// whole decode up front.
			p, spans, cdmg, err = t2.ScanCodestreamResilient(src)
		}
	} else {
		p, spans, err = t2.ScanCodestream(src)
	}
	if err != nil {
		return nil, err
	}
	// Even a resilient decode needs a viable geometry: without it there is
	// no image to degrade toward.
	if err := p.CheckGeometry(); err != nil {
		return nil, err
	}
	d.stats.Timings.Parse = time.Since(tParse)
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	ncomp := p.Components()
	if singleOnly && ncomp != 1 {
		// Reject before any tier-1 work: the single-plane entry points must
		// not pay a full multi-component decode just to report an error.
		return nil, fmt.Errorf("jp2k: %d-component stream; use DecodePlanar/DecodeRegionPlanar", ncomp)
	}
	nlayers := p.Layers
	if opts.MaxLayers > 0 && opts.MaxLayers < nlayers {
		nlayers = opts.MaxLayers
	}
	discard := opts.DiscardLevels
	if discard < 0 {
		discard = 0
	}
	if discard > p.Levels {
		discard = p.Levels
	}
	keepLevels := p.Levels - discard

	ntx, nty := p.NumTiles()
	if !opts.Resilient {
		if len(spans) != ntx*nty {
			return nil, fmt.Errorf("jp2k: %d tile-parts for a %dx%d tile grid", len(spans), ntx, nty)
		}
	} else if salvagedTiles {
		if len(tiles) != ntx*nty {
			// Salvage: missing tile-parts decode as empty (gray) tiles,
			// surplus ones are dropped.
			if len(tiles) < ntx*nty {
				cdmg.Truncated = true
				for len(tiles) < ntx*nty {
					tiles = append(tiles, nil)
				}
			} else {
				cdmg.BadTileParts += len(tiles) - ntx*nty
				tiles = tiles[:ntx*nty]
			}
		}
	} else if len(spans) != ntx*nty {
		// Reader-backed salvage: same reconciliation over spans, with a
		// negative-offset sentinel standing in for each missing tile-part.
		if len(spans) < ntx*nty {
			cdmg.Truncated = true
			for len(spans) < ntx*nty {
				spans = append(spans, t2.TileSpan{Off: -1})
			}
		} else {
			cdmg.BadTileParts += len(spans) - ntx*nty
			spans = spans[:ntx*nty]
		}
	}

	// Reduced tile geometry: per-column widths and per-row heights, plus
	// prefix-sum origins in the reduced image.
	d.colW, d.rowH = tileGridInto(d.colW, d.rowH, p, discard)
	colW, rowH := d.colW, d.rowH

	// Window selection: the requested rectangle (clamped) and the tiles it
	// intersects. A nil region decodes everything.
	full := Rect{X1: colW[ntx], Y1: rowH[nty]}
	win := full
	if region != nil {
		win = region.Intersect(full)
		if win.Empty() {
			return nil, fmt.Errorf("jp2k: region %+v outside image %dx%d", *region, full.X1, full.Y1)
		}
	}
	sel := d.sel[:0]
	for ty := 0; ty < nty; ty++ {
		if rowH[ty+1] <= win.Y0 || rowH[ty] >= win.Y1 {
			continue
		}
		for tx := 0; tx < ntx; tx++ {
			if colW[tx+1] <= win.X0 || colW[tx] >= win.X1 {
				continue
			}
			sel = append(sel, ty*ntx+tx)
		}
	}
	d.sel = sel
	nsel := len(sel)

	// Destination: caller-owned strided views (the Into entry points), or a
	// freshly allocated planar wrapped in views so the assembly stage has one
	// write path for both.
	var out *raster.Planar
	if dst == nil {
		out = raster.NewPlanar(win.Dx(), win.Dy(), ncomp)
		d.views = grow(d.views, ncomp)
		for ci, c := range out.Comps {
			d.views[ci] = raster.ViewOf(c)
		}
		dst = d.views[:ncomp]
	} else {
		if len(dst) != ncomp {
			return nil, fmt.Errorf("jp2k: %d destination planes for a %d-component stream", len(dst), ncomp)
		}
		for ci := range dst {
			if err := dst[ci].Check(); err != nil {
				return nil, fmt.Errorf("jp2k: destination plane %d: %w", ci, err)
			}
			if dst[ci].Width != win.Dx() || dst[ci].Height != win.Dy() {
				return nil, fmt.Errorf("jp2k: destination plane %d is %dx%d, decode window is %dx%d",
					ci, dst[ci].Width, dst[ci].Height, win.Dx(), win.Dy())
			}
		}
	}

	// Worker split, as in Encoder: the tier-2 packet walk parallelizes over
	// selected tiles; assembly + inverse transform over the tile x component
	// units.
	workers := core.Workers(opts.Workers)
	outerW := min(workers, max(nsel, 1))
	nunits := nsel * ncomp
	outerA := min(workers, max(nunits, 1))
	innerW := workers / outerA
	if innerW < 1 {
		innerW = 1
	}
	for len(d.tiles) < nsel {
		d.tiles = append(d.tiles, &tileDec{})
	}
	d.tileErrs = grow(d.tileErrs, nsel)
	tileErrs := d.tileErrs
	clear(tileErrs)
	d.tileDmg = grow(d.tileDmg, nsel)
	clear(d.tileDmg)
	d.tileIOFail = grow(d.tileIOFail, nsel)
	clear(d.tileIOFail)

	// --- Tier-2: walk each selected tile's packet headers (all components,
	// LRCP-interleaved) and accumulate the code-block segments, in parallel
	// across tiles with pooled per-tile coding state.
	d.cur.p = p
	d.cur.modes = p.CoderModes()
	d.cur.src = src
	d.cur.mem = src.Mem()
	d.cur.spans = spans
	d.cur.tiles = tiles
	d.cur.win = win
	d.cur.ncomp = ncomp
	d.cur.nlayers = nlayers
	d.cur.discard = discard
	d.cur.keep = keepLevels
	d.cur.ntx = ntx
	d.cur.innerW = innerW
	d.cur.opts = opts
	tT2 := time.Now()
	d.pool.TasksIDMax(outerW, nsel, d.walkFn)
	d.stats.Timings.Tier2 = time.Since(tT2)
	for _, err := range tileErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}

	// --- Tier-1: every kept block of every selected tile component, decoded
	// in parallel under the staggered round-robin assignment with per-worker
	// pooled BlockDecoders ("no synchronization is necessary due to the
	// processing of independent code-blocks").
	jobs := d.jobs[:0]
	for si := 0; si < nsel; si++ {
		for ci := 0; ci < ncomp; ci++ {
			for bs := range d.tiles[si].comps[ci].slots {
				jobs = append(jobs, decJob{ti: si, ci: ci, si: bs})
			}
		}
	}
	d.jobs = jobs
	njobs := len(jobs)
	d.ensureWorkers(outerA, innerW, min(workers, max(njobs, 1)))
	for _, bd := range d.bds {
		bd.Release()
	}
	d.blockErrs = grow(d.blockErrs, njobs)
	blockErrs := d.blockErrs
	clear(blockErrs)
	d.blockStats = grow(d.blockStats, njobs)
	clear(d.blockStats)
	tT1 := time.Now()
	d.pool.TasksIDMax(workers, njobs, d.blockFn)
	d.stats.Timings.Tier1 = time.Since(tT1)
	for i, err := range blockErrs {
		if err != nil {
			return nil, fmt.Errorf("jp2k: tile %d component %d block %d: %w",
				sel[jobs[i].ti], jobs[i].ci, jobs[i].si, err)
		}
	}
	if opts.Resilient {
		// Aggregate the damage report after both parallel stages are done, so
		// the accounting never races the workers.
		rep := &DamageReport{Container: cdmg}
		perTile := make([]TileDamage, nsel)
		for si := 0; si < nsel; si++ {
			dm := d.tileDmg[si]
			perTile[si] = TileDamage{
				Tile: sel[si], BadPackets: dm.BadPackets,
				PacketsResynced: dm.PacketsResynced, PacketsLost: dm.PacketsLost,
			}
			if d.tileIOFail[si] {
				perTile[si].IOUnreadable = 1
			}
		}
		for i, st := range d.blockStats[:njobs] {
			if st.Concealed {
				perTile[jobs[i].ti].BlocksConcealed++
				perTile[jobs[i].ti].PassesDropped += st.DroppedPasses
			}
		}
		for _, td := range perTile {
			if td.Any() {
				rep.Tiles = append(rep.Tiles, td)
			}
		}
		d.damage = rep
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}

	// --- Assembly + inverse transform per (selected tile, component) unit,
	// parallel across units; the kept bands exactly tile the reduced
	// coefficient plane, so the pooled planes need no clearing. For MCT
	// streams the level shift is folded into the post-transform pass below
	// instead of being added here only to be subtracted again.
	shift := int32(1) << uint(p.BitDepth-1)
	mctActive := p.MCT && ncomp == 3
	outShift := shift
	if mctActive {
		outShift = 0
	}
	d.cur.dst = dst
	d.cur.outShift = outShift
	tAsm := time.Now()
	d.pool.TasksIDMax(outerA, nunits, d.asmFn)
	d.stats.Timings.Assemble = time.Since(tAsm)

	// --- Inverse inter-component transform, when the stream flags MCT: the
	// decoded planes hold Y/Cb/Cr (assembled without the level shift); rotate
	// back to RGB with the legacy color container's arithmetic (the rotation
	// operates on the rounded integer samples) and apply the shift once. The
	// transforms are row-addressed, so caller-owned strided views transform
	// in place without touching samples outside the view.
	if mctActive {
		tMCT := time.Now()
		var comps []*raster.Image
		if out != nil {
			comps = out.Comps
		} else {
			comps = []*raster.Image{dst[0].Image(), dst[1].Image(), dst[2].Image()}
		}
		if p.Kernel == dwt.Rev53 {
			if err := mct.InverseRCT(comps[0], comps[1], comps[2], workers, d.pool); err != nil {
				return nil, err
			}
		} else {
			rotateICT(comps, &d.mctFloats, workers, d.pool, mct.InverseICT)
		}
		for ci := range dst {
			v := dst[ci]
			if v.Compact() {
				pix := v.Pix
				d.pool.ForMax(workers, len(pix), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						pix[i] += shift
					}
				})
				continue
			}
			// Strided view: shift row by row so samples outside the view —
			// caller memory the decode does not own — are never touched.
			d.pool.ForMax(workers, v.Height, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					row := v.Row(y)
					for x := range row {
						row[x] += shift
					}
				}
			})
		}
		d.stats.Timings.InterComp = time.Since(tMCT)
	}
	d.stats.BytesIn = int(src.Size())
	d.stats.Tiles = nsel
	d.stats.CodeBlocks = njobs
	d.Metrics.recordDecode(&d.stats)
	return out, nil
}

// reuseFPlane returns a float plane of the requested size backed by p's
// storage when it fits.
func reuseFPlane(p *dwt.FPlane, w, h int) *dwt.FPlane {
	if p == nil || cap(p.Data) < w*h {
		return dwt.NewFPlane(w, h)
	}
	p.Width, p.Height, p.Stride = w, h, w
	p.Data = p.Data[:w*h]
	return p
}
