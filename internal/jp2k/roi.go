package jp2k

import (
	"pj2k/internal/dwt"
)

// applyROI implements the MAXSHIFT region-of-interest method: every
// coefficient whose spatial footprint intersects the ROI rectangle is
// scaled up by s bit-planes, where 2^s exceeds every background magnitude.
// The decoder then recognizes ROI coefficients purely by magnitude — no
// mask is transmitted, only s (in the RGN marker). Returns the shift used
// (0 if ROI coding is not possible within the integer headroom).
//
// tiles hold the already-transformed (and, for 9/7, quantized) coefficients;
// origins are the tile top-left corners in image coordinates.
func applyROI(tiles []*tileEnc, origins [][2]int, roi ROIRect, o Options) int {
	// Background maximum magnitude across all tiles and bands.
	var maxMag int32
	forEachBand(tiles, o, func(te *tileEnc, bi int, b dwt.Subband, data []int32, stride int) {
		for y := 0; y < b.Height(); y++ {
			row := data[y*stride : y*stride+b.Width()]
			for _, v := range row {
				if v < 0 {
					v = -v
				}
				if v > maxMag {
					maxMag = v
				}
			}
		}
	})
	if maxMag == 0 {
		return 0
	}
	nbp := 0
	for m := maxMag; m > 0; m >>= 1 {
		nbp++
	}
	s := nbp
	if nbp+s > 30 {
		s = 30 - nbp
	}
	if s <= 0 {
		return 0
	}
	for ti, te := range tiles {
		ox, oy := origins[ti][0], origins[ti][1]
		// ROI in tile coordinates.
		rx0, ry0 := roi.X0-ox, roi.Y0-oy
		rx1, ry1 := roi.X1-ox, roi.Y1-oy
		if rx1 <= 0 || ry1 <= 0 || rx0 >= te.w || ry0 >= te.h {
			continue
		}
		forEachBandOf(te, o, func(bi int, b dwt.Subband, data []int32, stride int) {
			l := b.Level
			if b.Type == dwt.LL {
				l = o.Levels
			}
			// Footprint of the ROI in band coordinates, expanded by the
			// filter support.
			const margin = 3
			fx0 := clampi((rx0>>uint(l))-margin, 0, b.Width())
			fy0 := clampi((ry0>>uint(l))-margin, 0, b.Height())
			fx1 := clampi(((rx1-1)>>uint(l))+margin+1, 0, b.Width())
			fy1 := clampi(((ry1-1)>>uint(l))+margin+1, 0, b.Height())
			for y := fy0; y < fy1; y++ {
				row := data[y*stride : y*stride+b.Width()]
				for x := fx0; x < fx1; x++ {
					row[x] <<= uint(s)
				}
			}
		})
	}
	return s
}

// unscaleROI reverses MAXSHIFT on decoded block values: magnitudes at or
// above 2^s belong to the ROI and are shifted back down.
func unscaleROI(vals []int32, s int) {
	thr := int32(1) << uint(s)
	for i, v := range vals {
		m := v
		if m < 0 {
			m = -m
		}
		if m >= thr {
			m >>= uint(s)
			if v < 0 {
				m = -m
			}
			vals[i] = m
		}
	}
}

// forEachBand visits every band's coefficient plane of every tile.
func forEachBand(tiles []*tileEnc, o Options, fn func(te *tileEnc, bi int, b dwt.Subband, data []int32, stride int)) {
	for _, te := range tiles {
		forEachBandOf(te, o, func(bi int, b dwt.Subband, data []int32, stride int) {
			fn(te, bi, b, data, stride)
		})
	}
}

// forEachBandOf visits one tile's bands, handing out the coefficient
// storage for each (the Mallat plane for 5/3, the dense per-band buffers
// for 9/7).
func forEachBandOf(te *tileEnc, o Options, fn func(bi int, b dwt.Subband, data []int32, stride int)) {
	for bi, b := range te.subbands {
		if b.Empty() {
			continue
		}
		if o.Kernel == dwt.Rev53 {
			off := b.Y0*te.intPlane.Stride + b.X0
			fn(bi, b, te.intPlane.Pix[off:], te.intPlane.Stride)
		} else {
			fn(bi, b, te.bandInts[bi], b.Width())
		}
	}
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
