// Package jp2k is the top-level JPEG2000 codec: it chains the coding pipeline
// of the paper's Fig. 1 — setup, (inter-/intra-component) transform,
// quantization, tier-1 entropy coding of independent code-blocks, rate
// allocation, tier-2 packet assembly and bitstream I/O — over the substrate
// packages, with the paper's parallelization applied to the transform,
// quantization and tier-1 stages.
package jp2k

import (
	"context"
	"fmt"
	"time"

	"pj2k/internal/dwt"
)

// Options configures the encoder.
type Options struct {
	// Kernel selects reversible 5/3 (lossless unless Layers truncate) or
	// irreversible 9/7 coding. Default Rev53.
	Kernel dwt.Kernel
	// Levels is the decomposition depth; default 5 (the JPEG2000 default the
	// paper cites).
	Levels int
	// LayerBPP lists cumulative target bitrates (bits per pixel) for the
	// quality layers, ascending. Empty means a single layer carrying all
	// coded data (lossless for Rev53).
	LayerBPP []float64
	// TileW, TileH enable image tiling when positive (the Fig. 4/5 mode);
	// zero encodes the whole image as a single tile.
	TileW, TileH int
	// CBW, CBH are the code-block dimensions (powers of two, at most 64).
	// Default 64x64, the JPEG2000 maximum the paper cites.
	CBW, CBH int
	// BaseStep is the 9/7 base quantizer step before per-band norm scaling.
	// Smaller steps mean more bit-planes for PCRD to choose from. Default
	// 1.0/512.
	BaseStep float64
	// BitDepth of the input samples; default 8.
	BitDepth int
	// Workers bounds the parallelism of the transform, quantization and
	// tier-1 stages; <= 0 selects GOMAXPROCS, 1 is fully serial.
	Workers int
	// MCT applies the inter-component transform to a three-component
	// EncodePlanar input (the reversible color transform for Rev53, the
	// irreversible YCbCr rotation for Irr97) and flags it in the codestream's
	// COD marker. Under lossy rate control the byte budget splits luma-heavy
	// between the components. Setting it with any other component count
	// (including single-component Encode) is an error.
	MCT bool
	// VertMode and VertBlockWidth select the vertical filtering strategy
	// (the paper's original vs. improved filter).
	VertMode       dwt.VertMode
	VertBlockWidth int
	// ROI selects a region of interest coded with the MAXSHIFT method (the
	// "ROI scaling" stage of the paper's Fig. 1 pipeline): coefficients
	// whose spatial footprint intersects the rectangle are up-shifted past
	// every background bit-plane, so they decode first at any truncation
	// point. Nil disables ROI coding.
	ROI *ROIRect
	// Resilience selects the standard's error-resilience tools. All default
	// off, leaving default bitstreams bit-identical.
	Resilience ResilienceOptions
	// Coder selects the standard's optional tier-1 code-block coding styles.
	// All default off, leaving default bitstreams bit-identical; decoders
	// need no side-channel — the styles are signalled in COD.
	Coder CoderOptions
}

// CoderOptions selects the JPEG2000 Part 1 optional code-block coding styles
// (the COD marker's code-block style bits), mirroring ResilienceOptions.
// These trade a little compression for coder speed and decoder parallelism.
type CoderOptions struct {
	// Bypass (arithmetic bypass, "lazy" coding) codes significance and
	// refinement passes from the fourth significant bit-plane on as raw
	// stuffed bits, skipping the MQ coder where most coded data lives — the
	// biggest tier-1 speed lever among the Part 1 styles.
	Bypass bool
	// TermAll terminates the codeword segment at every coding pass, giving
	// each pass an independently positioned byte range. Combined with Bypass
	// the decoder can run a bypassed significance pass and the following
	// refinement pass concurrently.
	TermAll bool
	// ResetCtx resets the MQ context states at every pass boundary, making
	// passes statistically independent (costs compression, aids parallel or
	// error-resilient decoders).
	ResetCtx bool
	// Causal makes context formation vertically stripe-causal: the last row
	// of each 4-row stripe ignores the stripe below, removing the
	// inter-stripe dependency.
	Causal bool
}

// Any reports whether any coder style is enabled.
func (c CoderOptions) Any() bool { return c.Bypass || c.TermAll || c.ResetCtx || c.Causal }

// ResilienceOptions selects the JPEG2000 Part 1 error-resilience tools, the
// markers that let a resilient decoder localize damage instead of losing the
// tile: all are signalled in the codestream (COD), so decoders need no
// side-channel. Each costs a little rate — 6 bytes per packet for SOP, 2 for
// EPH, roughly a byte per code-block pass for segmentation symbols.
type ResilienceOptions struct {
	// SOP writes a start-of-packet marker (with a wrapping sequence number)
	// before every packet — the resync anchor resilient decoding scans for
	// after a malformed packet.
	SOP bool
	// EPH writes an end-of-packet-header marker after every packet header,
	// letting a decoder detect a corrupt header the moment its bit walk
	// terminates in the wrong place.
	EPH bool
	// SegSymbols terminates every cleanup pass with the four-symbol
	// segmentation marker, giving the tier-1 decoder a per-pass checkpoint:
	// corruption is detected at the pass that hit it and concealment keeps
	// every clean pass before it.
	SegSymbols bool
}

// Any reports whether any resilience tool is enabled.
func (r ResilienceOptions) Any() bool { return r.SOP || r.EPH || r.SegSymbols }

// ROIRect is a region of interest in image coordinates ([X0,X1) x [Y0,Y1)).
type ROIRect struct {
	X0, Y0, X1, Y1 int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Levels == 0 {
		o.Levels = 5
	}
	if o.CBW == 0 {
		o.CBW = 64
	}
	if o.CBH == 0 {
		o.CBH = 64
	}
	if o.BaseStep == 0 {
		o.BaseStep = 1.0 / 512
	}
	if o.BitDepth == 0 {
		o.BitDepth = 8
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// StageTimings records where encoding time went, mirroring the stage
// decomposition of the paper's Figs. 3, 6 and 9. When several tiles are
// transformed in parallel, IntraComp, DWTDetail and Quant sum the per-tile
// times (CPU time), which can exceed the stage's wall-clock time.
type StageTimings struct {
	Setup     time.Duration // pipeline setup: buffers, level shift, tiling
	InterComp time.Duration // inter-component (multiple-component) transform
	IntraComp time.Duration // wavelet transform (intra-component transform)
	DWTDetail dwt.Timings   // horizontal/vertical split of IntraComp
	Quant     time.Duration // quantization (lossy path only)
	Tier1     time.Duration // code-block entropy coding
	RateAlloc time.Duration // PCRD truncation-point search
	Tier2     time.Duration // packet headers + assembly
	StreamIO  time.Duration // marker segments, final byte stream
}

// Total sums all stages.
func (s StageTimings) Total() time.Duration {
	return s.Setup + s.InterComp + s.IntraComp + s.Quant + s.Tier1 + s.RateAlloc + s.Tier2 + s.StreamIO
}

// EncodeStats is returned alongside the codestream.
type EncodeStats struct {
	Timings    StageTimings
	Bytes      int
	BPP        float64
	CodeBlocks int
}

// Breakdown renders the per-stage timing table the CLIs print under -verbose;
// the same span values feed CodecMetrics, so the printed breakdown and the
// /metrics histograms can never disagree about where time went.
func (s StageTimings) Breakdown() string {
	return fmt.Sprintf("  setup      %8v\n  inter-comp %8v\n  DWT        %8v (H %v / V %v)\n"+
		"  quant      %8v\n  tier-1     %8v\n  rate-alloc %8v\n  tier-2     %8v\n"+
		"  stream-io  %8v\n  total      %8v\n",
		s.Setup, s.InterComp, s.IntraComp, s.DWTDetail.Horizontal, s.DWTDetail.Vertical,
		s.Quant, s.Tier1, s.RateAlloc, s.Tier2, s.StreamIO, s.Total())
}

// DecodeTimings records where decoding time went, per pipeline stage. Unlike
// the encoder's StageTimings (which sum per-tile CPU time), these are
// wall-clock spans around each stage's dispatch — what a request actually
// waited for.
type DecodeTimings struct {
	Parse     time.Duration // codestream markers + geometry validation
	Tier2     time.Duration // packet-header walk, segment gathering
	Tier1     time.Duration // code-block entropy decoding
	Assemble  time.Duration // coefficient assembly + dequant + inverse DWT
	InterComp time.Duration // inverse multiple-component transform
}

// Total sums all stages.
func (t DecodeTimings) Total() time.Duration {
	return t.Parse + t.Tier2 + t.Tier1 + t.Assemble + t.InterComp
}

// Breakdown renders the per-stage timing table the CLIs print under -verbose.
func (t DecodeTimings) Breakdown() string {
	return fmt.Sprintf("  parse      %8v\n  tier-2     %8v\n  tier-1     %8v\n"+
		"  IDWT+asm   %8v\n  inter-comp %8v\n  total      %8v\n",
		t.Parse, t.Tier2, t.Tier1, t.Assemble, t.InterComp, t.Total())
}

// DecodeStats describes the most recent decode on a Decoder (see
// Decoder.Stats): stage timings plus input accounting. It is valid until the
// next decode call.
type DecodeStats struct {
	Timings    DecodeTimings
	BytesIn    int // codestream bytes consumed
	Tiles      int // tiles selected (all of them for full decodes)
	CodeBlocks int // code-blocks entropy-decoded
}

// DecodeOptions configures the decoder.
type DecodeOptions struct {
	// Resilient selects best-effort decoding: instead of failing the decode,
	// container damage is salvaged around, malformed packets resync to the
	// next SOP marker (or truncate the tile's quality), and corrupt
	// code-blocks are concealed at their last clean coding pass. What was
	// lost is reported through Decoder.Damage. A clean stream decodes
	// bit-identically to strict mode with an empty report.
	Resilient bool
	// Ctx, when non-nil, bounds the decode: cancellation or deadline expiry
	// is checked between pipeline stages (packet walk, tier-1, assembly), so
	// a decode stops within one dispatch unit of the context ending.
	Ctx context.Context
	// MaxLayers decodes only the first n quality layers when positive.
	MaxLayers int
	// DiscardLevels drops the n highest resolution levels, reconstructing
	// the image at 1/2^n scale per axis — the resolution-scalable decode
	// JPEG2000's packet structure exists for. Code-blocks of discarded
	// resolutions are parsed but never entropy-decoded.
	DiscardLevels int
	// Workers bounds tier-1 and transform parallelism; <= 0 is GOMAXPROCS.
	Workers int
	// VertMode selects the inverse vertical filtering strategy.
	VertMode       dwt.VertMode
	VertBlockWidth int
}
