package jp2k

import (
	"time"

	"pj2k/internal/telemetry"
)

// Encode/decode stage indices for CodecMetrics histograms. The encode stages
// mirror StageTimings (the paper's Fig. 1 pipeline); the decode stages mirror
// DecodeTimings.
const (
	EncStageSetup = iota
	EncStageInterComp
	EncStageDWT
	EncStageQuant
	EncStageTier1
	EncStageRate
	EncStageTier2
	EncStageIO
	NumEncStages
)

const (
	DecStageParse = iota
	DecStageTier2
	DecStageTier1
	DecStageAssemble
	DecStageInterComp
	NumDecStages
)

// EncStageNames and DecStageNames are the stage label values, index-aligned
// with the stage constants.
var (
	EncStageNames = [NumEncStages]string{
		"setup", "intercomp", "dwt", "quant", "t1", "rate", "t2", "io",
	}
	DecStageNames = [NumDecStages]string{
		"parse", "t2", "t1", "idwt", "intercomp",
	}
)

// CodecMetrics is the telemetry view of the codec pipeline: end-to-end and
// per-stage latency histograms plus byte/operation counters, shared by every
// Encoder/Decoder pointed at it. Recording happens once per encode/decode
// call (never per sample or per block), so the instrumentation cost is a
// handful of atomic adds per image — invisible next to the work it measures.
// A nil *CodecMetrics disables recording entirely.
type CodecMetrics struct {
	Encodes      *telemetry.Counter // completed encode calls
	Decodes      *telemetry.Counter // completed decode calls
	BytesEncoded *telemetry.Counter // codestream bytes produced
	BytesDecoded *telemetry.Counter // codestream bytes consumed

	EncodeSeconds *telemetry.Histogram // end-to-end encode latency
	DecodeSeconds *telemetry.Histogram // end-to-end decode latency

	EncodeStages [NumEncStages]*telemetry.Histogram
	DecodeStages [NumDecStages]*telemetry.Histogram
}

// NewCodecMetrics registers the codec metric families on r and returns the
// recording handle:
//
//	pj2k_codec_encodes_total / pj2k_codec_decodes_total
//	pj2k_codec_encoded_bytes_total / pj2k_codec_decoded_bytes_total
//	pj2k_encode_seconds / pj2k_decode_seconds
//	pj2k_encode_stage_seconds{stage=...} / pj2k_decode_stage_seconds{stage=...}
func NewCodecMetrics(r *telemetry.Registry) *CodecMetrics {
	m := &CodecMetrics{
		Encodes:       r.Counter("pj2k_codec_encodes_total", "Completed encode calls."),
		Decodes:       r.Counter("pj2k_codec_decodes_total", "Completed decode calls."),
		BytesEncoded:  r.Counter("pj2k_codec_encoded_bytes_total", "Codestream bytes produced by encodes."),
		BytesDecoded:  r.Counter("pj2k_codec_decoded_bytes_total", "Codestream bytes consumed by decodes."),
		EncodeSeconds: r.Histogram("pj2k_encode_seconds", "End-to-end encode latency."),
		DecodeSeconds: r.Histogram("pj2k_decode_seconds", "End-to-end decode latency."),
	}
	for i, name := range EncStageNames {
		m.EncodeStages[i] = r.HistogramWithLabels("pj2k_encode_stage_seconds",
			telemetry.Labels("stage", name), "Per-stage encode pipeline time.")
	}
	for i, name := range DecStageNames {
		m.DecodeStages[i] = r.HistogramWithLabels("pj2k_decode_stage_seconds",
			telemetry.Labels("stage", name), "Per-stage decode pipeline time.")
	}
	return m
}

// recordEncode folds one successful encode into the metrics. Safe on a nil
// receiver (recording disabled).
func (m *CodecMetrics) recordEncode(st *EncodeStats) {
	if m == nil {
		return
	}
	m.Encodes.Inc()
	m.BytesEncoded.Add(int64(st.Bytes))
	tm := &st.Timings
	m.EncodeSeconds.Observe(tm.Total())
	for i, d := range [NumEncStages]time.Duration{
		tm.Setup, tm.InterComp, tm.IntraComp, tm.Quant,
		tm.Tier1, tm.RateAlloc, tm.Tier2, tm.StreamIO,
	} {
		m.EncodeStages[i].Observe(d)
	}
}

// recordDecode folds one successful decode into the metrics. Safe on a nil
// receiver (recording disabled).
func (m *CodecMetrics) recordDecode(st *DecodeStats) {
	if m == nil {
		return
	}
	m.Decodes.Inc()
	m.BytesDecoded.Add(int64(st.BytesIn))
	tm := &st.Timings
	m.DecodeSeconds.Observe(tm.Total())
	for i, d := range [NumDecStages]time.Duration{
		tm.Parse, tm.Tier2, tm.Tier1, tm.Assemble, tm.InterComp,
	} {
		m.DecodeStages[i].Observe(d)
	}
}
