package jp2k

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/mct"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

func colorPlanar(w, h int) *raster.Planar {
	r, g, b := rgbPlanes(w, h)
	return raster.RGB(r, g, b)
}

// colorCases cover both kernels, single- and multi-tile layouts, layered rate
// control and ROI over the native Csiz=3 path.
func colorCases() []Options {
	return []Options{
		{Kernel: dwt.Rev53, MCT: true},
		{Kernel: dwt.Rev53, MCT: true, TileW: 64, TileH: 48, CBW: 32, CBH: 16, Levels: 3},
		{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.5}},
		{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{0.5, 2.0}, TileW: 60, TileH: 50},
		{Kernel: dwt.Rev53, MCT: true, ROI: &ROIRect{X0: 20, Y0: 20, X1: 70, Y1: 60}},
	}
}

// TestColorDeterministicAcrossWorkers is the multi-component analogue of
// TestEncodeDeterministicAcrossWorkers: the Csiz=3 codestream and its decode
// must be bit-identical for Workers in {1, 2, 4, 8} — the component x tile
// task grid must never influence coded output or decoded samples.
func TestColorDeterministicAcrossWorkers(t *testing.T) {
	pl := colorPlanar(96, 80)
	for ci, base := range colorCases() {
		var wantCS []byte
		var wantPl *raster.Planar
		for _, w := range []int{1, 2, 4, 8} {
			o := base
			o.Workers = w
			cs, _, err := EncodePlanar(pl, o)
			if err != nil {
				t.Fatalf("case %d workers %d: %v", ci, w, err)
			}
			back, err := DecodePlanar(cs, DecodeOptions{Workers: w})
			if err != nil {
				t.Fatalf("case %d workers %d: decode: %v", ci, w, err)
			}
			if wantCS == nil {
				wantCS, wantPl = cs, back
				continue
			}
			if !bytes.Equal(cs, wantCS) {
				t.Errorf("case %d: workers=%d codestream differs from workers=1", ci, w)
			}
			if !raster.PlanarEqual(back, wantPl) {
				t.Errorf("case %d: workers=%d decode differs from workers=1", ci, w)
			}
		}
	}
}

// TestColorPooledReuseDeterministic interleaves color and grayscale images
// through one pooled Encoder and one pooled Decoder across rounds and worker
// counts: pooled state must not leak between calls or between component
// counts.
func TestColorPooledReuseDeterministic(t *testing.T) {
	gray := raster.Synthetic(96, 80, 7)
	color := colorPlanar(96, 80)
	type job struct {
		pl   *raster.Planar
		opts Options
	}
	jobs := []job{
		{raster.Gray(gray), Options{Kernel: dwt.Rev53}},
		{color, Options{Kernel: dwt.Rev53, MCT: true}},
		{color, Options{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.5}, TileW: 60, TileH: 50}},
		{raster.Gray(gray), Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}}},
	}
	wantCS := make([][]byte, len(jobs))
	wantPl := make([]*raster.Planar, len(jobs))
	for i, j := range jobs {
		o := j.opts
		o.Workers = 2
		cs, _, err := EncodePlanar(j.pl, o)
		if err != nil {
			t.Fatalf("reference job %d: %v", i, err)
		}
		wantCS[i] = cs
		if wantPl[i], err = DecodePlanar(cs, DecodeOptions{Workers: 2}); err != nil {
			t.Fatalf("reference job %d: decode: %v", i, err)
		}
	}
	enc := NewEncoder()
	defer enc.Close()
	dec := NewDecoder()
	defer dec.Close()
	for round := 0; round < 3; round++ {
		for i, j := range jobs {
			o := j.opts
			o.Workers = 1 + (round+i)%4
			cs, _, err := enc.EncodePlanar(j.pl, o)
			if err != nil {
				t.Fatalf("round %d job %d: %v", round, i, err)
			}
			if !bytes.Equal(cs, wantCS[i]) {
				t.Errorf("round %d job %d (workers=%d): reused encoder output differs from one-shot", round, i, o.Workers)
			}
			back, err := dec.DecodePlanar(cs, DecodeOptions{Workers: 1 + (round+i+1)%4})
			if err != nil {
				t.Fatalf("round %d job %d: decode: %v", round, i, err)
			}
			if !raster.PlanarEqual(back, wantPl[i]) {
				t.Errorf("round %d job %d: reused decoder output differs from one-shot", round, i)
			}
		}
	}
}

// legacyEncodeColor reproduces the retired three-codestream color container
// byte for byte: clone, level shift, inter-component transform, per-component
// encode with the luma-heavy budget split, container framing. It is the
// reference the native Csiz=3 path must match pixel-for-pixel after decode.
func legacyEncodeColor(t *testing.T, r, g, b *raster.Image, opts Options) []byte {
	t.Helper()
	o := opts.withDefaults()
	shift := int32(1) << uint(o.BitDepth-1)
	comps := [3]*raster.Image{r.Clone(), g.Clone(), b.Clone()}
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] -= shift
		}
	}
	if o.Kernel == dwt.Rev53 {
		if err := mct.ForwardRCT(comps[0], comps[1], comps[2], o.Workers, nil); err != nil {
			t.Fatal(err)
		}
	} else {
		fr := planeToFloat(comps[0])
		fg := planeToFloat(comps[1])
		fb := planeToFloat(comps[2])
		mct.ForwardICT(fr, fg, fb, o.Workers, nil)
		floatToPlane(fr, comps[0])
		floatToPlane(fg, comps[1])
		floatToPlane(fb, comps[2])
	}
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] += shift
		}
	}
	perComp := o
	perComp.MCT = false
	var budgets [3][]float64
	if len(o.LayerBPP) > 0 {
		for _, bpp := range o.LayerBPP {
			budgets[0] = append(budgets[0], bpp*(1-2*chromaShare))
			budgets[1] = append(budgets[1], bpp*chromaShare)
			budgets[2] = append(budgets[2], bpp*chromaShare)
		}
	}
	var streams [3][]byte
	enc := NewEncoder()
	defer enc.Close()
	for ci, c := range comps {
		if len(o.LayerBPP) > 0 {
			perComp.LayerBPP = budgets[ci]
		}
		cs, _, err := enc.Encode(c, perComp)
		if err != nil {
			t.Fatalf("legacy component %d: %v", ci, err)
		}
		streams[ci] = cs
	}
	out := make([]byte, 0, 16+len(streams[0])+len(streams[1])+len(streams[2]))
	out = append(out, colorMagic[:]...)
	for _, s := range streams {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		out = append(out, l[:]...)
	}
	for _, s := range streams {
		out = append(out, s...)
	}
	return out
}

// TestColorMatchesLegacyContainer pins the migration contract: for both
// kernels (lossless and rate-controlled lossy), decoding the new Csiz=3
// stream yields exactly the pixels the retired container pipeline produced —
// same MCT arithmetic, same per-component PCRD truncation.
func TestColorMatchesLegacyContainer(t *testing.T) {
	r, g, b := rgbPlanes(112, 88)
	for ci, o := range []Options{
		{Kernel: dwt.Rev53},
		{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}},
		{Kernel: dwt.Irr97, LayerBPP: []float64{0.5, 2.0}, TileW: 60, TileH: 50},
	} {
		legacy := legacyEncodeColor(t, r, g, b, o)
		lr, lg, lb, err := DecodeColor(legacy, DecodeOptions{})
		if err != nil {
			t.Fatalf("case %d: legacy decode: %v", ci, err)
		}
		oc := o
		oc.MCT = true
		cs, _, err := EncodePlanar(raster.RGB(r, g, b), oc)
		if err != nil {
			t.Fatalf("case %d: native encode: %v", ci, err)
		}
		nr, ng, nb, err := DecodeColor(cs, DecodeOptions{})
		if err != nil {
			t.Fatalf("case %d: native decode: %v", ci, err)
		}
		if !raster.Equal(nr, lr) || !raster.Equal(ng, lg) || !raster.Equal(nb, lb) {
			t.Errorf("case %d: native Csiz=3 decode differs from the legacy container pixel-for-pixel", ci)
		}
		if len(cs) >= len(legacy) {
			t.Logf("case %d: native %d bytes vs legacy %d (single header should not be larger)", ci, len(cs), len(legacy))
		}
	}
}

// TestDecodeRegionPlanarMatchesCrop extends the windowed-decode gate to
// 3-component streams: for every (reduce, layers) combination and Workers in
// {1, 2, 4, 8}, DecodeRegionPlanar must be bit-identical to cropping a full
// DecodePlanar — including through the inverse inter-component transform.
func TestDecodeRegionPlanarMatchesCrop(t *testing.T) {
	pl := colorPlanar(230, 190)
	dec := NewDecoder()
	defer dec.Close()
	for ci, o := range []Options{
		{Kernel: dwt.Rev53, MCT: true, TileW: 64, TileH: 96, Levels: 3},
		{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{0.75, 3.0}, TileW: 100, TileH: 90},
	} {
		o.Workers = 2
		cs, _, err := EncodePlanar(pl, o)
		if err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		for _, reduce := range []int{0, 1, 2} {
			for _, layers := range []int{0, 1} {
				opts := DecodeOptions{DiscardLevels: reduce, MaxLayers: layers}
				full, err := DecodePlanar(cs, opts)
				if err != nil {
					t.Fatalf("case %d reduce %d: decode: %v", ci, reduce, err)
				}
				w, h := full.Width(), full.Height()
				regions := []Rect{
					{0, 0, w, h},
					{0, 0, min(17, w), min(13, h)},
					{w - 1, h - 1, w, h},
					{w / 3, h / 4, 2*w/3 + 1, 3*h/4 + 1},
					{-50, -50, w + 50, h + 50},
				}
				for _, workers := range []int{1, 2, 4, 8} {
					opts.Workers = workers
					for ri, r := range regions {
						got, err := dec.DecodeRegionPlanar(cs, r, opts)
						if err != nil {
							t.Fatalf("case %d reduce %d layers %d workers %d region %d: %v",
								ci, reduce, layers, workers, ri, err)
						}
						rr := r.Intersect(Rect{X1: w, Y1: h})
						for compI := range full.Comps {
							want := crop(full.Comps[compI], rr)
							if !raster.Equal(got.Comps[compI], want) {
								t.Errorf("case %d reduce %d layers %d workers %d region %d comp %d: window differs from crop",
									ci, reduce, layers, workers, ri, compI)
							}
						}
					}
				}
			}
		}
	}
}

// TestColorROILosslessRoundTrip: MAXSHIFT applies uniformly across the
// component x tile grid (one RGN marker per component), and the reversible
// path stays exactly reversible through it.
func TestColorROILosslessRoundTrip(t *testing.T) {
	pl := colorPlanar(128, 96)
	cs, _, err := EncodePlanar(pl, Options{
		Kernel: dwt.Rev53, MCT: true, TileW: 64, TileH: 64,
		ROI: &ROIRect{X0: 40, Y0: 30, X1: 100, Y1: 80}, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlanar(cs, DecodeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.PlanarEqual(pl, back) {
		t.Fatal("color ROI lossless round trip failed")
	}
}

// TestPlanarNonMCTComponents exercises the generic Csiz=N path without the
// color transform: two and four independent components round-trip losslessly.
func TestPlanarNonMCTComponents(t *testing.T) {
	for _, ncomp := range []int{2, 4} {
		pl := &raster.Planar{}
		for i := 0; i < ncomp; i++ {
			pl.Comps = append(pl.Comps, raster.Synthetic(70, 50, uint64(31+i)))
		}
		cs, _, err := EncodePlanar(pl, Options{Kernel: dwt.Rev53, Workers: 2})
		if err != nil {
			t.Fatalf("ncomp=%d: %v", ncomp, err)
		}
		p, _, err := t2.ReadCodestream(cs)
		if err != nil {
			t.Fatal(err)
		}
		if p.NComp != ncomp || p.MCT {
			t.Fatalf("ncomp=%d: header says NComp=%d MCT=%v", ncomp, p.NComp, p.MCT)
		}
		back, err := DecodePlanar(cs, DecodeOptions{Workers: 3})
		if err != nil {
			t.Fatalf("ncomp=%d: decode: %v", ncomp, err)
		}
		if !raster.PlanarEqual(pl, back) {
			t.Fatalf("ncomp=%d: lossless round trip failed", ncomp)
		}
	}
}

// TestPlanarErrors covers the argument contract of the multi-component API.
func TestPlanarErrors(t *testing.T) {
	a := raster.Synthetic(32, 32, 1)
	b := raster.Synthetic(16, 16, 2)
	if _, _, err := EncodePlanar(raster.RGB(a, a.Clone(), b), Options{}); err == nil {
		t.Error("want error for mismatched component sizes")
	}
	if _, _, err := EncodePlanar(&raster.Planar{Comps: []*raster.Image{a, a}}, Options{MCT: true}); err == nil {
		t.Error("want error for MCT with 2 components")
	}
	if _, _, err := EncodePlanar(&raster.Planar{}, Options{}); err == nil {
		t.Error("want error for zero components")
	}
	cs, _, err := EncodeColor(a, a.Clone(), a.Clone(), Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(cs, DecodeOptions{}); err == nil {
		t.Error("single-component Decode accepted a Csiz=3 stream")
	}
	if _, err := DecodeRegion(cs, Rect{X1: 8, Y1: 8}, DecodeOptions{}); err == nil {
		t.Error("single-component DecodeRegion accepted a Csiz=3 stream")
	}
}

// TestColorSteadyStateAllocs enforces the multi-component alloc budget: a
// warm pooled color encode/decode must stay within 2x of 3x the
// single-component steady state (three planes' worth of work, with bounded
// bookkeeping on top).
func TestColorSteadyStateAllocs(t *testing.T) {
	gray := raster.Synthetic(128, 96, 3)
	gcs, _, err := Encode(gray, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	pl := colorPlanar(128, 96)
	copts := Options{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.0}, Workers: 1}
	ccs, _, err := EncodePlanar(pl, copts)
	if err != nil {
		t.Fatal(err)
	}

	genc, cenc := NewEncoder(), NewEncoder()
	defer genc.Close()
	defer cenc.Close()
	gdec, cdec := NewDecoder(), NewDecoder()
	defer gdec.Close()
	defer cdec.Close()
	gopts := Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 1}
	dopts := DecodeOptions{Workers: 1}
	for i := 0; i < 3; i++ { // warm the pools
		if _, _, err := genc.Encode(gray, gopts); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cenc.EncodePlanar(pl, copts); err != nil {
			t.Fatal(err)
		}
		if _, err := gdec.Decode(gcs, dopts); err != nil {
			t.Fatal(err)
		}
		if _, err := cdec.DecodePlanar(ccs, dopts); err != nil {
			t.Fatal(err)
		}
	}
	grayEnc := testing.AllocsPerRun(10, func() { genc.Encode(gray, gopts) })
	colorEnc := testing.AllocsPerRun(10, func() { cenc.EncodePlanar(pl, copts) })
	grayDec := testing.AllocsPerRun(10, func() { gdec.Decode(gcs, dopts) })
	colorDec := testing.AllocsPerRun(10, func() { cdec.DecodePlanar(ccs, dopts) })
	t.Logf("steady-state allocs/op: encode gray %.0f color %.0f; decode gray %.0f color %.0f",
		grayEnc, colorEnc, grayDec, colorDec)
	if colorEnc > 6*grayEnc {
		t.Errorf("pooled color encode allocates %.0f/op, over 6x the gray baseline %.0f", colorEnc, grayEnc)
	}
	if colorDec > 6*grayDec {
		t.Errorf("pooled color decode allocates %.0f/op, over 6x the gray baseline %.0f", colorDec, grayDec)
	}
}
