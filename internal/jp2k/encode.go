package jp2k

import (
	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// blockJob couples one code-block's coefficient view with its geometry.
type blockJob struct {
	data   []int32
	w, h   int
	stride int
	band   dwt.BandType
}

// gridKey identifies a tile's code-block partition; while it is unchanged
// across encodes the per-band grids are reused as-is.
type gridKey struct {
	w, h, levels, cbw, cbh int
}

// tileEnc is the per-tile encoding state, pooled inside an Encoder: the
// coefficient planes, quantization arena, subband enumeration and tier-2
// coding state all persist across encodes.
type tileEnc struct {
	w, h     int
	subbands []dwt.Subband
	gridKey  gridKey
	bands    []t2.BandBlocks
	blocks   []*t1.EncodedBlock // tile-local global order (bands raster)
	// coefficient storage kept alive for the tier-1 jobs
	intPlane  *raster.Image
	fplane    *dwt.FPlane
	bandArena []int32
	bandInts  [][]int32
	qjobs     []quant.BandJob
	tcoder    *t2.TileCoder
}

// Encode compresses a single-component image into a JPEG2000 codestream.
// It is a convenience wrapper over a throwaway Encoder dispatching on the
// shared default worker pool (so one-shot calls neither spawn nor leak
// workers); callers encoding repeatedly should hold an Encoder to amortize
// its pooled state.
func Encode(im *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	return NewEncoderWithPool(core.Default()).Encode(im, opts)
}

// EncodePlanar compresses a multi-component image into a single standard
// Csiz=N codestream. One-shot wrapper over a throwaway Encoder; see
// Encoder.EncodePlanar.
func EncodePlanar(pl *raster.Planar, opts Options) ([]byte, *EncodeStats, error) {
	return NewEncoderWithPool(core.Default()).EncodePlanar(pl, opts)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
