package jp2k

import (
	"fmt"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/rate"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// blockJob couples one code-block's coefficient view with its output slot.
type blockJob struct {
	data   []int32
	w, h   int
	stride int
	band   dwt.BandType
	out    *t1.EncodedBlock
}

// tileEnc is the per-tile encoding state.
type tileEnc struct {
	w, h   int
	bands  []t2.BandBlocks
	blocks []*t1.EncodedBlock // tile-local global order (bands raster)
	// coefficient storage kept alive for the jobs
	intPlane *raster.Image
	bandInts [][]int32
}

// Encode compresses a single-component image into a JPEG2000 codestream.
func Encode(im *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	o := opts.withDefaults()
	if o.CBW > 64 || o.CBH > 64 || o.CBW < 4 || o.CBH < 4 {
		return nil, nil, fmt.Errorf("jp2k: code-block size %dx%d out of range", o.CBW, o.CBH)
	}
	stats := &EncodeStats{}

	// --- Pipeline setup: tiling and level shift.
	t0 := time.Now()
	tileW, tileH := o.TileW, o.TileH
	if tileW <= 0 || tileH <= 0 {
		tileW, tileH = im.Width, im.Height
	}
	ntx := (im.Width + tileW - 1) / tileW
	nty := (im.Height + tileH - 1) / tileH
	shift := int32(1) << uint(o.BitDepth-1)
	tiles := make([]*tileEnc, 0, ntx*nty)
	origins := make([][2]int, 0, ntx*nty)
	for ty := 0; ty < nty; ty++ {
		for tx := 0; tx < ntx; tx++ {
			x0, y0 := tx*tileW, ty*tileH
			x1, y1 := min(x0+tileW, im.Width), min(y0+tileH, im.Height)
			sub, err := im.SubImage(x0, y0, x1, y1)
			if err != nil {
				return nil, nil, err
			}
			te := &tileEnc{w: x1 - x0, h: y1 - y0, intPlane: sub.Clone()}
			for i := range te.intPlane.Pix {
				te.intPlane.Pix[i] -= shift
			}
			tiles = append(tiles, te)
			origins = append(origins, [2]int{x0, y0})
		}
	}
	stats.Timings.Setup = time.Since(t0)

	// --- Intra-component transform (DWT), per tile.
	st := o.strategy()
	var steps []quant.Step
	if o.Kernel == dwt.Irr97 {
		steps = quant.BandSteps(dwt.Irr97, im.Width, im.Height, o.Levels, o.BaseStep)
	}
	for _, te := range tiles {
		tDWT := time.Now()
		bands := dwt.Subbands(te.w, te.h, o.Levels)
		var fp *dwt.FPlane
		if o.Kernel == dwt.Rev53 {
			tm := dwt.Forward53Timed(te.intPlane, o.Levels, st)
			stats.Timings.DWTDetail.Horizontal += tm.Horizontal
			stats.Timings.DWTDetail.Vertical += tm.Vertical
		} else {
			fp = dwt.FromImage(te.intPlane)
			tm := dwt.Forward97Timed(fp, o.Levels, st)
			stats.Timings.DWTDetail.Horizontal += tm.Horizontal
			stats.Timings.DWTDetail.Vertical += tm.Vertical
		}
		stats.Timings.IntraComp += time.Since(tDWT)

		// --- Quantization (9/7 only): per band into dense int32 planes.
		tQ := time.Now()
		te.bands = make([]t2.BandBlocks, len(bands))
		te.bandInts = make([][]int32, len(bands))
		for bi, b := range bands {
			g := t2.MakeGrid(b, o.CBW, o.CBH)
			te.bands[bi] = t2.BandBlocks{Grid: g, Blocks: make([]*t2.BlockStream, len(g.Rects))}
			if b.Empty() {
				continue
			}
			if o.Kernel == dwt.Irr97 {
				buf := make([]int32, b.Width()*b.Height())
				quant.Forward(fp.Data, fp.Stride, b, steps[bi].Value(), buf, b.Width(), o.Workers)
				te.bandInts[bi] = buf
			}
		}
		stats.Timings.Quant += time.Since(tQ)
	}

	// --- ROI scaling (MAXSHIFT) between quantization and tier-1, as in the
	// Fig. 1 pipeline.
	roiShift := 0
	if o.ROI != nil {
		roiShift = applyROI(tiles, origins, *o.ROI, o)
	}

	// --- Tier-1: gather every code-block of every tile, encode in parallel
	// with the paper's staggered round-robin worker assignment.
	tT1 := time.Now()
	var jobs []blockJob
	for _, te := range tiles {
		bands := dwt.Subbands(te.w, te.h, o.Levels)
		for bi, b := range bands {
			g := te.bands[bi].Grid
			for _, r := range g.Rects {
				var job blockJob
				if o.Kernel == dwt.Rev53 {
					off := (b.Y0+r.Y0)*te.intPlane.Stride + b.X0 + r.X0
					job = blockJob{
						data:   te.intPlane.Pix[off:],
						stride: te.intPlane.Stride,
					}
				} else {
					job = blockJob{
						data:   te.bandInts[bi][r.Y0*b.Width()+r.X0:],
						stride: b.Width(),
					}
				}
				job.w, job.h = r.X1-r.X0, r.Y1-r.Y0
				job.band = b.Type
				jobs = append(jobs, job)
			}
		}
	}
	results := make([]*t1.EncodedBlock, len(jobs))
	core.RunTasks(len(jobs), o.Workers, func(i int) {
		j := jobs[i]
		results[i] = t1.Encode(j.data, j.w, j.h, j.stride, j.band)
	})
	stats.CodeBlocks = len(jobs)
	// Distribute results back to tiles in order.
	k := 0
	for _, te := range tiles {
		n := 0
		for bi := range te.bands {
			n += len(te.bands[bi].Grid.Rects)
		}
		te.blocks = results[k : k+n]
		k += n
	}
	stats.Timings.Tier1 = time.Since(tT1)

	// --- Mb per band index (global across tiles) and BlockStream wiring.
	nbands := 1 + 3*o.Levels
	mb := make([]int, nbands)
	for _, te := range tiles {
		k := 0
		for bi := range te.bands {
			for range te.bands[bi].Grid.Rects {
				if nbp := te.blocks[k].NumBitplanes; nbp > mb[bi] {
					mb[bi] = nbp
				}
				k++
			}
		}
	}
	for bi := range mb {
		if mb[bi] == 0 {
			mb[bi] = 1
		}
	}
	for _, te := range tiles {
		k := 0
		for bi := range te.bands {
			te.bands[bi].Mb = mb[bi]
			for gi := range te.bands[bi].Grid.Rects {
				eb := te.blocks[k]
				bs := &t2.BlockStream{Data: eb.Data, NumBitplanes: eb.NumBitplanes}
				for _, p := range eb.Passes {
					bs.PassRates = append(bs.PassRates, p.Rate)
				}
				te.bands[bi].Blocks[gi] = bs
				k++
			}
		}
	}

	// --- Rate allocation (global across tiles).
	tRA := time.Now()
	weights := make([]float64, nbands)
	bandsRef := dwt.Subbands(im.Width, im.Height, o.Levels)
	for bi, b := range bandsRef {
		step := 1.0
		if o.Kernel == dwt.Irr97 {
			step = steps[bi].Value()
		}
		n := dwt.BandNorm(o.Kernel, o.Levels, b)
		weights[bi] = step * step * n * n
	}
	var rblocks []rate.BlockPasses
	for _, te := range tiles {
		k := 0
		for bi := range te.bands {
			for range te.bands[bi].Grid.Rects {
				eb := te.blocks[k]
				bp := rate.BlockPasses{}
				for _, p := range eb.Passes {
					bp.Rates = append(bp.Rates, p.Rate)
					bp.Dist = append(bp.Dist, p.DistDelta*weights[bi])
				}
				rblocks = append(rblocks, bp)
				k++
			}
		}
	}
	npixels := im.Width * im.Height
	var budgets []int
	var alloc rate.Allocation
	var headerEst int
	if len(o.LayerBPP) == 0 {
		// Single layer carrying every coding pass: PCRD hulls would drop
		// zero-gain final passes, so build the full allocation directly.
		budgets = []int{rate.TotalBytes(rblocks)}
		alloc = rate.Allocation{NPasses: [][]int{make([]int, len(rblocks))}, BodyBytes: budgets}
		for i := range rblocks {
			alloc.NPasses[0][i] = len(rblocks[i].Rates)
		}
	} else {
		for _, bpp := range o.LayerBPP {
			budgets = append(budgets, int(bpp*float64(npixels)/8))
		}
		// Headers shrink the body budget; estimate, assemble, and adjust
		// below until the stream fits (at most three rounds).
		headerEst = 70 + len(tiles)*(14+len(budgets)*(o.Levels+1))
		alloc = allocate(rblocks, budgets, headerEst)
	}
	nlayers := len(budgets)
	stats.Timings.RateAlloc = time.Since(tRA)

	// --- Tier-2 packet assembly (+ final budget adjustment rounds).
	tT2 := time.Now()
	var tileStreams [][]byte
	for round := 0; ; round++ {
		tileStreams = tileStreams[:0]
		base := 0
		total := 0
		for _, te := range tiles {
			n := len(te.blocks)
			layersLocal := make([][]int, nlayers)
			for li := 0; li < nlayers; li++ {
				layersLocal[li] = alloc.NPasses[li][base : base+n]
			}
			s := t2.EncodeTilePackets(te.bands, o.Levels, layersLocal)
			tileStreams = append(tileStreams, s)
			total += len(s)
			base += n
		}
		if len(o.LayerBPP) == 0 || round >= 2 {
			break
		}
		target := budgets[nlayers-1]
		if total+headerEst <= target {
			break
		}
		headerEst += total + headerEst - target
		alloc = allocate(rblocks, budgets, headerEst)
	}
	stats.Timings.Tier2 = time.Since(tT2)

	// --- Bitstream I/O.
	tIO := time.Now()
	params := t2.Params{
		Width: im.Width, Height: im.Height, TileW: tileW, TileH: tileH,
		BitDepth: o.BitDepth, Levels: o.Levels, Layers: nlayers,
		CBW: o.CBW, CBH: o.CBH, Kernel: o.Kernel, GuardBits: 2,
		Steps: steps, Mb: mb, ROIShift: roiShift,
	}
	out := t2.WriteCodestream(params, tileStreams)
	stats.Timings.StreamIO = time.Since(tIO)
	stats.Bytes = len(out)
	stats.BPP = float64(len(out)) * 8 / float64(npixels)
	return out, stats, nil
}

// allocate runs PCRD with the header estimate subtracted from each layer
// budget.
func allocate(blocks []rate.BlockPasses, budgets []int, headerEst int) rate.Allocation {
	adj := make([]int, len(budgets))
	for i, b := range budgets {
		adj[i] = b - headerEst
		if adj[i] < 0 {
			adj[i] = 0
		}
	}
	return rate.Allocate(blocks, adj)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
