package jp2k

import (
	"math"
	"testing"

	"pj2k/internal/dwt"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func TestLosslessRoundTrip(t *testing.T) {
	for _, sz := range [][2]int{{64, 64}, {128, 96}, {100, 100}, {33, 57}} {
		im := raster.Synthetic(sz[0], sz[1], 1)
		cs, stats, err := Encode(im, Options{Kernel: dwt.Rev53})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bytes != len(cs) {
			t.Fatalf("stats.Bytes %d != %d", stats.Bytes, len(cs))
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(im, back) {
			t.Fatalf("size %v: lossless round trip failed", sz)
		}
	}
}

func TestLosslessCompresses(t *testing.T) {
	im := raster.Synthetic(256, 256, 2)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53})
	if err != nil {
		t.Fatal(err)
	}
	raw := 256 * 256
	if len(cs) >= raw {
		t.Fatalf("lossless stream %d bytes >= raw %d", len(cs), raw)
	}
}

func TestLossyQualityAtRates(t *testing.T) {
	im := raster.Synthetic(256, 256, 3)
	for _, tc := range []struct {
		bpp     float64
		minPSNR float64
	}{
		{2.0, 40}, {1.0, 36}, {0.5, 33}, {0.25, 30},
	} {
		cs, stats, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{tc.bpp}})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BPP > tc.bpp*1.02+0.01 {
			t.Fatalf("bpp %.3f exceeds target %.3f", stats.BPP, tc.bpp)
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		back.ClampTo8()
		psnr, err := metrics.PSNR(im, back, 255)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < tc.minPSNR {
			t.Fatalf("%.2f bpp: PSNR %.2f dB below %.1f", tc.bpp, psnr, tc.minPSNR)
		}
	}
}

func TestRateDistortionMonotone(t *testing.T) {
	im := raster.Synthetic(128, 128, 4)
	prev := 0.0
	for _, bpp := range []float64{0.125, 0.25, 0.5, 1.0, 2.0} {
		cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}})
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		back.ClampTo8()
		psnr, _ := metrics.PSNR(im, back, 255)
		if psnr < prev-0.2 {
			t.Fatalf("PSNR fell from %.2f to %.2f at %.3f bpp", prev, psnr, bpp)
		}
		prev = psnr
	}
}

func TestMultiLayerScalability(t *testing.T) {
	im := raster.Synthetic(128, 128, 5)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.25, 0.5, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for nl := 1; nl <= 3; nl++ {
		back, err := Decode(cs, DecodeOptions{MaxLayers: nl})
		if err != nil {
			t.Fatalf("layers=%d: %v", nl, err)
		}
		back.ClampTo8()
		psnr, _ := metrics.PSNR(im, back, 255)
		if psnr < prev-0.1 {
			t.Fatalf("layer %d PSNR %.2f below layer %d PSNR %.2f", nl, psnr, nl-1, prev)
		}
		prev = psnr
	}
	if prev < 33 {
		t.Fatalf("full-stream PSNR %.2f too low", prev)
	}
}

func TestParallelOutputBitIdentical(t *testing.T) {
	// The paper's requirement: parallelization must not change the stream.
	im := raster.Synthetic(200, 144, 6)
	ref, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		for _, vm := range []dwt.VertMode{dwt.VertNaive, dwt.VertBlocked} {
			got, _, err := Encode(im, Options{
				Kernel: dwt.Irr97, LayerBPP: []float64{1.0},
				Workers: workers, VertMode: vm,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("workers=%d mode=%v: %d bytes vs %d serial", workers, vm, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d mode=%v: byte %d differs", workers, vm, i)
				}
			}
		}
	}
}

func TestLosslessParallelBitIdentical(t *testing.T) {
	im := raster.Synthetic(160, 160, 7)
	ref, _, err := Encode(im, Options{Kernel: dwt.Rev53, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Encode(im, Options{Kernel: dwt.Rev53, Workers: 4, VertMode: dwt.VertBlocked})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("parallel lossless differs: %d vs %d bytes", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestTiledLossless(t *testing.T) {
	im := raster.Synthetic(130, 70, 8)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, TileW: 64, TileH: 32})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(im, back) {
		t.Fatal("tiled lossless round trip failed")
	}
}

func TestTilingDegradesQualityAtLowRate(t *testing.T) {
	// Fig. 5's central claim: at a fixed low bitrate, more/smaller tiles
	// cost PSNR versus whole-image coding.
	im := raster.Synthetic(256, 256, 9)
	const bpp = 0.25
	psnrFor := func(tile int) float64 {
		opts := Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}}
		if tile > 0 {
			opts.TileW, opts.TileH = tile, tile
		}
		cs, _, err := Encode(im, opts)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		back.ClampTo8()
		p, _ := metrics.PSNR(im, back, 255)
		return p
	}
	whole := psnrFor(0)
	tiled32 := psnrFor(32)
	if tiled32 >= whole {
		t.Fatalf("32x32 tiling PSNR %.2f not below whole-image %.2f at %.2f bpp", tiled32, whole, bpp)
	}
	if whole-tiled32 < 0.5 {
		t.Fatalf("tiling penalty only %.2f dB; expected a clear loss", whole-tiled32)
	}
}

func TestDecodeWorkersMatchSerial(t *testing.T) {
	im := raster.Synthetic(128, 128, 10)
	cs, _, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decode(cs, DecodeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(cs, DecodeOptions{Workers: 4, VertMode: dwt.VertBlocked})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(a, b) {
		t.Fatal("parallel decode differs from serial")
	}
}

func Test12BitRadiograph(t *testing.T) {
	im := raster.SyntheticRadiograph(128, 128, 11)
	cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, BitDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(cs, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(im, back) {
		t.Fatal("12-bit lossless round trip failed")
	}
}

func TestStageTimingsPopulated(t *testing.T) {
	im := raster.Synthetic(128, 128, 12)
	_, stats, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	tm := stats.Timings
	if tm.IntraComp <= 0 || tm.Tier1 <= 0 {
		t.Fatalf("missing stage timings: %+v", tm)
	}
	if tm.Total() <= 0 {
		t.Fatal("total timing zero")
	}
	if stats.CodeBlocks == 0 {
		t.Fatal("no code blocks counted")
	}
	if d := tm.DWTDetail; d.Horizontal <= 0 || d.Vertical <= 0 {
		t.Fatalf("missing DWT detail: %+v", d)
	}
}

func TestCodeBlockSizes(t *testing.T) {
	im := raster.Synthetic(128, 128, 13)
	for _, cb := range [][2]int{{16, 16}, {32, 32}, {64, 64}, {64, 16}} {
		cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, CBW: cb[0], CBH: cb[1]})
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(im, back) {
			t.Fatalf("cb %v: round trip failed", cb)
		}
	}
	if _, _, err := Encode(im, Options{CBW: 128}); err == nil {
		t.Fatal("want error for oversized code-block")
	}
}

func TestFewLevels(t *testing.T) {
	im := raster.Synthetic(64, 64, 14)
	for levels := 1; levels <= 6; levels++ {
		cs, _, err := Encode(im, Options{Kernel: dwt.Rev53, Levels: levels})
		if err != nil {
			t.Fatalf("levels %d: %v", levels, err)
		}
		back, err := Decode(cs, DecodeOptions{})
		if err != nil {
			t.Fatalf("levels %d: %v", levels, err)
		}
		if !raster.Equal(im, back) {
			t.Fatalf("levels %d: round trip failed", levels)
		}
	}
}

func TestBPPAccuracy(t *testing.T) {
	// The achieved rate should be close to (and not above) the target.
	im := raster.Synthetic(256, 256, 15)
	for _, bpp := range []float64{0.25, 0.5, 1.0} {
		_, stats, err := Encode(im, Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BPP > bpp*1.02+0.01 {
			t.Fatalf("target %.3f bpp, got %.3f", bpp, stats.BPP)
		}
		if stats.BPP < bpp*0.7 && !math.IsInf(stats.BPP, 0) {
			t.Fatalf("target %.3f bpp, got only %.3f (allocator underfilling)", bpp, stats.BPP)
		}
	}
}
