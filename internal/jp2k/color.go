package jp2k

import (
	"encoding/binary"
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/mct"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// colorMagic heads the three-component container: the three component
// codestreams (Y, Cb, Cr after the inter-component transform) are stored
// back to back with a small directory. The inter-component transform and
// per-component coding follow the standard; the container framing is this
// library's own (a standard single-codestream multi-component layout is
// future work, documented in DESIGN.md).
var colorMagic = [4]byte{'P', 'J', '2', 'C'}

// chromaShare is the fraction of the byte budget given to each chroma
// component under lossy color coding; luma carries most of the perceptual
// weight.
const chromaShare = 0.15

// EncodeColor compresses an RGB image (three equally sized planes). With
// Kernel Rev53 the reversible color transform is used and the result is
// lossless; with Irr97 the YCbCr rotation is applied and LayerBPP gives the
// total bitrate across components.
func EncodeColor(r, g, b *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	o := opts.withDefaults()
	if r.Width != g.Width || r.Width != b.Width || r.Height != g.Height || r.Height != b.Height {
		return nil, nil, fmt.Errorf("jp2k: component size mismatch")
	}
	shift := int32(1) << uint(o.BitDepth-1)
	comps := [3]*raster.Image{r.Clone(), g.Clone(), b.Clone()}
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] -= shift
		}
	}
	if o.Kernel == dwt.Rev53 {
		if err := mct.ForwardRCT(comps[0], comps[1], comps[2], o.Workers); err != nil {
			return nil, nil, err
		}
	} else {
		fr := planeToFloat(comps[0])
		fg := planeToFloat(comps[1])
		fb := planeToFloat(comps[2])
		mct.ForwardICT(fr, fg, fb, o.Workers)
		floatToPlane(fr, comps[0])
		floatToPlane(fg, comps[1])
		floatToPlane(fb, comps[2])
	}
	// Re-apply the level shift so the per-component encoder (which shifts
	// unsigned input) sees what it expects; chroma simply rides along with
	// a wider effective range, which the transform and tier-1 handle.
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] += shift
		}
	}

	perComp := o
	var budgets [3][]float64
	if len(o.LayerBPP) > 0 {
		for li, bpp := range o.LayerBPP {
			_ = li
			budgets[0] = append(budgets[0], bpp*(1-2*chromaShare))
			budgets[1] = append(budgets[1], bpp*chromaShare)
			budgets[2] = append(budgets[2], bpp*chromaShare)
		}
	}

	total := &EncodeStats{}
	var streams [3][]byte
	enc := NewEncoder() // one pooled pipeline shared by the three components
	for ci, c := range comps {
		if len(o.LayerBPP) > 0 {
			perComp.LayerBPP = budgets[ci]
		}
		cs, st, err := enc.Encode(c, perComp)
		if err != nil {
			return nil, nil, fmt.Errorf("jp2k: component %d: %w", ci, err)
		}
		streams[ci] = cs
		total.CodeBlocks += st.CodeBlocks
		total.Timings.Setup += st.Timings.Setup
		total.Timings.IntraComp += st.Timings.IntraComp
		total.Timings.Quant += st.Timings.Quant
		total.Timings.Tier1 += st.Timings.Tier1
		total.Timings.RateAlloc += st.Timings.RateAlloc
		total.Timings.Tier2 += st.Timings.Tier2
		total.Timings.StreamIO += st.Timings.StreamIO
	}
	out := make([]byte, 0, 16+len(streams[0])+len(streams[1])+len(streams[2]))
	out = append(out, colorMagic[:]...)
	for _, s := range streams {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		out = append(out, l[:]...)
	}
	for _, s := range streams {
		out = append(out, s...)
	}
	total.Bytes = len(out)
	total.BPP = float64(len(out)) * 8 / float64(r.Width*r.Height)
	return out, total, nil
}

// DecodeColor reconstructs the three RGB planes from an EncodeColor stream.
func DecodeColor(data []byte, opts DecodeOptions) (r, g, b *raster.Image, err error) {
	if len(data) < 16 || [4]byte(data[:4]) != colorMagic {
		return nil, nil, nil, fmt.Errorf("jp2k: not a color container")
	}
	var lens [3]int
	pos := 4
	totalLen := 16
	for i := range lens {
		lens[i] = int(binary.BigEndian.Uint32(data[pos:]))
		totalLen += lens[i]
		pos += 4
	}
	if totalLen > len(data) {
		return nil, nil, nil, fmt.Errorf("jp2k: color container truncated")
	}
	var comps [3]*raster.Image
	var kernel dwt.Kernel
	var depth int
	for i := range comps {
		var err error
		comps[i], err = Decode(data[pos:pos+lens[i]], opts)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("jp2k: component %d: %w", i, err)
		}
		if i == 0 {
			k, d, perr := peekParams(data[pos : pos+lens[i]])
			if perr != nil {
				return nil, nil, nil, perr
			}
			kernel, depth = k, d
		}
		pos += lens[i]
	}
	shift := int32(1) << uint(depth-1)
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] -= shift
		}
	}
	if kernel == dwt.Rev53 {
		if err := mct.InverseRCT(comps[0], comps[1], comps[2], opts.Workers); err != nil {
			return nil, nil, nil, err
		}
	} else {
		fy := planeToFloat(comps[0])
		fcb := planeToFloat(comps[1])
		fcr := planeToFloat(comps[2])
		mct.InverseICT(fy, fcb, fcr, opts.Workers)
		floatToPlane(fy, comps[0])
		floatToPlane(fcb, comps[1])
		floatToPlane(fcr, comps[2])
	}
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] += shift
		}
	}
	return comps[0], comps[1], comps[2], nil
}

func planeToFloat(im *raster.Image) []float64 {
	out := make([]float64, im.Width*im.Height)
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		for x, v := range row {
			out[y*im.Width+x] = float64(v)
		}
	}
	return out
}

func floatToPlane(src []float64, im *raster.Image) {
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		for x := range row {
			v := src[y*im.Width+x]
			if v >= 0 {
				row[x] = int32(v + 0.5)
			} else {
				row[x] = int32(v - 0.5)
			}
		}
	}
}

// peekParams extracts the kernel and bit depth from a component codestream
// header without tier-1-decoding it.
func peekParams(cs []byte) (dwt.Kernel, int, error) {
	p, _, err := t2.ReadCodestream(cs)
	if err != nil {
		return 0, 0, err
	}
	return p.Kernel, p.BitDepth, nil
}
