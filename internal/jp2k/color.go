package jp2k

import (
	"encoding/binary"
	"fmt"

	"pj2k/internal/dwt"
	"pj2k/internal/mct"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// colorMagic headed the retired three-codestream color container (three
// component codestreams stored back to back behind a small directory).
// EncodeColor now emits standard Csiz=3 codestreams; the magic remains so
// DecodeColor can keep reading containers produced by earlier releases.
var colorMagic = [4]byte{'P', 'J', '2', 'C'}

// EncodeColor compresses an RGB image (three equally sized planes) into a
// standard Csiz=3 codestream with the inter-component transform applied. With
// Kernel Rev53 the reversible color transform is used and the result is
// lossless; with Irr97 the YCbCr rotation is applied and LayerBPP gives the
// total bitrate across components (split luma-heavy, as the retired color
// container did). Thin wrapper over Encoder.EncodePlanar with MCT on.
func EncodeColor(r, g, b *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	opts.MCT = true
	return EncodePlanar(raster.RGB(r, g, b), opts)
}

// DecodeColor reconstructs the three RGB planes of a color codestream. It
// accepts both standard Csiz=3 streams (from EncodeColor / EncodePlanar with
// MCT) and the legacy PJ2C container of earlier releases.
func DecodeColor(data []byte, opts DecodeOptions) (r, g, b *raster.Image, err error) {
	if len(data) >= 16 && [4]byte(data[:4]) == colorMagic {
		return decodeLegacyColor(data, opts)
	}
	pl, err := DecodePlanar(data, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	if pl.NComp() != 3 {
		return nil, nil, nil, fmt.Errorf("jp2k: %d-component stream is not a color image", pl.NComp())
	}
	return pl.Comps[0], pl.Comps[1], pl.Comps[2], nil
}

// decodeLegacyColor reads the retired PJ2C container: three independent
// component codestreams decoded separately, then rotated back to RGB.
func decodeLegacyColor(data []byte, opts DecodeOptions) (r, g, b *raster.Image, err error) {
	var lens [3]int
	pos := 4
	totalLen := 16
	for i := range lens {
		lens[i] = int(binary.BigEndian.Uint32(data[pos:]))
		totalLen += lens[i]
		pos += 4
	}
	if totalLen > len(data) {
		return nil, nil, nil, fmt.Errorf("jp2k: color container truncated")
	}
	var comps [3]*raster.Image
	var kernel dwt.Kernel
	var depth int
	for i := range comps {
		var err error
		comps[i], err = Decode(data[pos:pos+lens[i]], opts)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("jp2k: component %d: %w", i, err)
		}
		if i == 0 {
			k, d, perr := peekParams(data[pos : pos+lens[i]])
			if perr != nil {
				return nil, nil, nil, perr
			}
			kernel, depth = k, d
		}
		pos += lens[i]
	}
	shift := int32(1) << uint(depth-1)
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] -= shift
		}
	}
	if kernel == dwt.Rev53 {
		if err := mct.InverseRCT(comps[0], comps[1], comps[2], opts.Workers, nil); err != nil {
			return nil, nil, nil, err
		}
	} else {
		fy := planeToFloat(comps[0])
		fcb := planeToFloat(comps[1])
		fcr := planeToFloat(comps[2])
		mct.InverseICT(fy, fcb, fcr, opts.Workers, nil)
		floatToPlane(fy, comps[0])
		floatToPlane(fcb, comps[1])
		floatToPlane(fcr, comps[2])
	}
	for _, c := range comps {
		for i := range c.Pix {
			c.Pix[i] += shift
		}
	}
	return comps[0], comps[1], comps[2], nil
}

func planeToFloat(im *raster.Image) []float64 {
	out := make([]float64, im.Width*im.Height)
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		for x, v := range row {
			out[y*im.Width+x] = float64(v)
		}
	}
	return out
}

func floatToPlane(src []float64, im *raster.Image) {
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		for x := range row {
			v := src[y*im.Width+x]
			if v >= 0 {
				row[x] = int32(v + 0.5)
			} else {
				row[x] = int32(v - 0.5)
			}
		}
	}
}

// peekParams extracts the kernel and bit depth from a component codestream
// header without tier-1-decoding it.
func peekParams(cs []byte) (dwt.Kernel, int, error) {
	p, _, err := t2.ReadCodestream(cs)
	if err != nil {
		return 0, 0, err
	}
	return p.Kernel, p.BitDepth, nil
}
