package jp2k

import (
	"fmt"
	"strings"

	"pj2k/internal/t2"
)

// TileDamage aggregates what a resilient decode lost in one tile: the tier-2
// packet walk's losses plus the tier-1 concealments of the tile's blocks.
type TileDamage struct {
	Tile            int // tile index (row-major in the tile grid)
	BadPackets      int // packets whose parse failed
	PacketsResynced int // successful resyncs to a later SOP marker
	PacketsLost     int // packets skipped (bad + swallowed by resync or abort)
	BlocksConcealed int // code-blocks truncated or zeroed by tier-1 concealment
	PassesDropped   int // coding passes those concealments discarded
	// IOUnreadable is the IO damage class: 1 when the tile's body could not
	// be read from the source (after whatever retries the source performed)
	// and the whole tile was concealed — damaged bytes vs unreadable bytes
	// are different operational problems and are reported distinctly.
	IOUnreadable int
}

// Any reports whether the tile recorded any damage.
func (d TileDamage) Any() bool {
	return d.BadPackets > 0 || d.PacketsLost > 0 || d.BlocksConcealed > 0 ||
		d.PassesDropped > 0 || d.IOUnreadable > 0
}

// DamageReport is what a resilient decode had to work around, aggregated per
// tile plus the container-level salvage. A fully clean stream produces a
// report with Damaged() == false.
type DamageReport struct {
	Container t2.ContainerDamage
	Tiles     []TileDamage // one entry per decoded tile that recorded damage
}

// Damaged reports whether anything at all was lost or concealed.
func (r *DamageReport) Damaged() bool {
	if r == nil {
		return false
	}
	if r.Container.Any() {
		return true
	}
	for _, t := range r.Tiles {
		if t.Any() {
			return true
		}
	}
	return false
}

// Totals sums the per-tile damage (the Tile field of the result is -1).
func (r *DamageReport) Totals() TileDamage {
	sum := TileDamage{Tile: -1}
	if r == nil {
		return sum
	}
	for _, t := range r.Tiles {
		sum.BadPackets += t.BadPackets
		sum.PacketsResynced += t.PacketsResynced
		sum.PacketsLost += t.PacketsLost
		sum.BlocksConcealed += t.BlocksConcealed
		sum.PassesDropped += t.PassesDropped
		sum.IOUnreadable += t.IOUnreadable
	}
	return sum
}

// String renders a one-line human-readable summary, e.g. for CLI stderr.
func (r *DamageReport) String() string {
	if !r.Damaged() {
		return "no damage"
	}
	var b strings.Builder
	if c := r.Container; c.Any() {
		fmt.Fprintf(&b, "container:")
		if c.Truncated {
			b.WriteString(" truncated")
		}
		if c.BadMarkers > 0 {
			fmt.Fprintf(&b, " %d bad markers", c.BadMarkers)
		}
		if c.BadTileParts > 0 {
			fmt.Fprintf(&b, " %d bad tile-parts", c.BadTileParts)
		}
	}
	t := r.Totals()
	if t.Any() {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%d packets lost (%d bad, %d resyncs), %d blocks concealed (%d passes dropped)",
			t.PacketsLost, t.BadPackets, t.PacketsResynced, t.BlocksConcealed, t.PassesDropped)
		if t.IOUnreadable > 0 {
			fmt.Fprintf(&b, ", %d tile bodies unreadable (IO)", t.IOUnreadable)
		}
	}
	return b.String()
}

// TileIOError is a strict decode's typed failure to read a tile body from
// its source: the tile index and the byte span that could not be read. It
// wraps the source's *t2.ReadError, so errors.As reaches both layers.
type TileIOError struct {
	Tile     int   // tile index (row-major in the tile grid)
	Off, Len int64 // the unreadable body span within the codestream
	Err      error // the underlying source read failure
}

func (e *TileIOError) Error() string {
	return fmt.Sprintf("jp2k: tile %d body [%d, %d) unreadable: %v", e.Tile, e.Off, e.Off+e.Len, e.Err)
}

func (e *TileIOError) Unwrap() error { return e.Err }
