package jp2k

import (
	"fmt"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/rate"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// Encoder is a reusable encode pipeline. It owns every pooled buffer the
// pipeline's hot loops need — per-worker tier-1 coders and DWT scratch, the
// per-tile coefficient planes, quantization arenas and tier-2 coding state,
// and the rate-allocation scratch — so repeated Encode calls reach a steady
// state with near-zero heap allocations. This is the per-process state the
// paper's threads keep privately; server and streaming workloads hold one
// Encoder per concurrent stream.
//
// An Encoder is not safe for concurrent use; pooled state does not leak
// between calls (output is bit-identical to the one-shot Encode function for
// any worker count).
type Encoder struct {
	coders       []*t1.Coder    // per tier-1 worker
	scratch      []*dwt.Scratch // per tile-level worker
	scratchInner int            // worker count each scratch was sized for
	ralloc       rate.Allocator

	tiles        []*tileEnc
	origins      [][2]int
	timings      []tileTiming
	jobs         []blockJob
	results      []*t1.EncodedBlock
	blockStreams []t2.BlockStream
	rblocks      []rate.BlockPasses
	rates        []int     // arena: per-pass cumulative rates (shared by rate and tier-2)
	dists        []float64 // arena: per-pass weighted distortion deltas
	mb           []int
	weights      []float64
	bandsRef     []dwt.Subband
	layersLocal  [][]int
	tileStreams  [][]byte
}

// tileTiming collects one tile's stage timings so the parallel tile loop
// writes without synchronization; the totals are summed afterwards.
type tileTiming struct {
	dwt   dwt.Timings
	intra time.Duration
	quant time.Duration
}

// NewEncoder returns an empty Encoder; pooled buffers are sized on first use.
func NewEncoder() *Encoder { return &Encoder{} }

// grow returns s with length n, reallocating only when capacity is short.
// Retained elements are stale from the previous encode and must be
// overwritten by the caller.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reuseImage returns an image of the requested size backed by p's storage
// when it fits.
func reuseImage(p *raster.Image, w, h int) *raster.Image {
	if p == nil || cap(p.Pix) < w*h {
		return raster.New(w, h)
	}
	p.Width, p.Height, p.Stride = w, h, w
	p.Pix = p.Pix[:w*h]
	return p
}

// ensureWorkers sizes the per-worker pools: outer tile-level workers, each
// with DWT scratch for inner within-tile workers. Scratch sized for more
// workers than a call uses stays valid (unused slots are empty headers), so
// the pool is only rebuilt when the inner count grows — shrinking Workers
// between calls keeps every warm buffer.
func (e *Encoder) ensureWorkers(outer, inner int) {
	if inner > e.scratchInner {
		e.scratch = e.scratch[:0]
		e.scratchInner = inner
	}
	for len(e.scratch) < outer {
		e.scratch = append(e.scratch, dwt.NewScratch(e.scratchInner))
	}
}

func (e *Encoder) ensureCoders(n int) {
	for len(e.coders) < n {
		e.coders = append(e.coders, t1.NewCoder())
	}
}

// Encode compresses a single-component image into a JPEG2000 codestream.
// The returned codestream is freshly allocated and caller-owned; EncodeStats
// is valid until the next call.
func (e *Encoder) Encode(im *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	o := opts.withDefaults()
	if o.CBW > 64 || o.CBH > 64 || o.CBW < 4 || o.CBH < 4 {
		return nil, nil, fmt.Errorf("jp2k: code-block size %dx%d out of range", o.CBW, o.CBH)
	}
	stats := &EncodeStats{}
	// Reclaim the tier-1 arenas of the previous encode; every reference into
	// them died with that call's tier-2 assembly.
	for _, co := range e.coders {
		co.Release()
	}

	// --- Pipeline setup: tiling and level shift.
	t0 := time.Now()
	tileW, tileH := o.TileW, o.TileH
	if tileW <= 0 || tileH <= 0 {
		tileW, tileH = im.Width, im.Height
	}
	ntx := (im.Width + tileW - 1) / tileW
	nty := (im.Height + tileH - 1) / tileH
	ntiles := ntx * nty
	shift := int32(1) << uint(o.BitDepth-1)
	for len(e.tiles) < ntiles {
		e.tiles = append(e.tiles, &tileEnc{})
	}
	tiles := e.tiles[:ntiles]
	e.origins = grow(e.origins, ntiles)
	origins := e.origins
	ti := 0
	for ty := 0; ty < nty; ty++ {
		for tx := 0; tx < ntx; tx++ {
			x0, y0 := tx*tileW, ty*tileH
			x1, y1 := min(x0+tileW, im.Width), min(y0+tileH, im.Height)
			te := tiles[ti]
			te.w, te.h = x1-x0, y1-y0
			te.intPlane = reuseImage(te.intPlane, te.w, te.h)
			for y := 0; y < te.h; y++ {
				src := im.Pix[(y0+y)*im.Stride+x0 : (y0+y)*im.Stride+x1]
				dst := te.intPlane.Row(y)
				for x, v := range src {
					dst[x] = v - shift
				}
			}
			te.subbands = dwt.SubbandsAppend(te.subbands[:0], te.w, te.h, o.Levels)
			origins[ti] = [2]int{x0, y0}
			ti++
		}
	}
	stats.Timings.Setup = time.Since(t0)

	// --- Intra-component transform (DWT) + quantization, parallel ACROSS
	// tiles (the paper's Fig. 9 "improved" scaling): with several tiles each
	// worker transforms whole tiles serially; a single tile is transformed
	// with all workers cooperating inside it as before.
	outerW := o.Workers
	if outerW > ntiles {
		outerW = ntiles
	}
	innerW := o.Workers / outerW
	if innerW < 1 {
		innerW = 1
	}
	e.ensureWorkers(min(o.Workers, ntiles), innerW)
	var steps []quant.Step
	if o.Kernel == dwt.Irr97 {
		steps = quant.BandSteps(dwt.Irr97, im.Width, im.Height, o.Levels, o.BaseStep)
	}
	e.timings = grow(e.timings, ntiles)
	nbands := 1 + 3*o.Levels
	core.RunTasksID(ntiles, outerW, func(worker, ti int) {
		te := tiles[ti]
		tt := &e.timings[ti]
		st := dwt.Strategy{
			VertMode: o.VertMode, BlockWidth: o.VertBlockWidth,
			Workers: innerW, Scratch: e.scratch[worker],
		}
		tDWT := time.Now()
		var fp *dwt.FPlane
		if o.Kernel == dwt.Rev53 {
			tt.dwt = dwt.Forward53Timed(te.intPlane, o.Levels, st)
		} else {
			te.fplane = dwt.FromImageReuse(te.fplane, te.intPlane)
			fp = te.fplane
			tt.dwt = dwt.Forward97Timed(fp, o.Levels, st)
		}
		tt.intra = time.Since(tDWT)

		// --- Quantization (9/7 only): per band into dense int32 views of
		// the tile's pooled arena (bands partition the tile, so the arena is
		// exactly tile-sized).
		tQ := time.Now()
		key := gridKey{te.w, te.h, o.Levels, o.CBW, o.CBH}
		if te.gridKey != key {
			te.gridKey = key
			te.bands = grow(te.bands, nbands)
			for bi, b := range te.subbands {
				g := t2.MakeGrid(b, o.CBW, o.CBH)
				te.bands[bi] = t2.BandBlocks{Grid: g, Blocks: grow(te.bands[bi].Blocks, len(g.Rects))}
			}
		}
		te.bandInts = grow(te.bandInts, nbands)
		if cap(te.bandArena) < te.w*te.h {
			te.bandArena = make([]int32, te.w*te.h)
		}
		te.qjobs = te.qjobs[:0]
		off := 0
		for bi, b := range te.subbands {
			te.bandInts[bi] = nil
			if b.Empty() || o.Kernel != dwt.Irr97 {
				continue
			}
			n := b.Width() * b.Height()
			buf := te.bandArena[off : off+n : off+n]
			off += n
			te.qjobs = append(te.qjobs, quant.BandJob{
				Band: b, Step: steps[bi].Value(), Dst: buf, DstStride: b.Width(),
			})
			te.bandInts[bi] = buf
		}
		if len(te.qjobs) > 0 {
			quant.ForwardBands(fp.Data, fp.Stride, te.qjobs, innerW)
		}
		tt.quant = time.Since(tQ)
	})
	for ti := range tiles {
		tt := &e.timings[ti]
		stats.Timings.DWTDetail.Horizontal += tt.dwt.Horizontal
		stats.Timings.DWTDetail.Vertical += tt.dwt.Vertical
		stats.Timings.IntraComp += tt.intra
		stats.Timings.Quant += tt.quant
	}

	// --- ROI scaling (MAXSHIFT) between quantization and tier-1, as in the
	// Fig. 1 pipeline.
	roiShift := 0
	if o.ROI != nil {
		roiShift = applyROI(tiles, origins, *o.ROI, o)
	}

	// --- Tier-1: gather every code-block of every tile, encode in parallel
	// with the paper's staggered round-robin worker assignment; each worker
	// codes with its own pooled Coder ("no synchronization is necessary due
	// to the processing of independent code-blocks").
	tT1 := time.Now()
	jobs := e.jobs[:0]
	for _, te := range tiles {
		for bi, b := range te.subbands {
			g := te.bands[bi].Grid
			for _, r := range g.Rects {
				var job blockJob
				if o.Kernel == dwt.Rev53 {
					off := (b.Y0+r.Y0)*te.intPlane.Stride + b.X0 + r.X0
					job = blockJob{
						data:   te.intPlane.Pix[off:],
						stride: te.intPlane.Stride,
					}
				} else {
					job = blockJob{
						data:   te.bandInts[bi][r.Y0*b.Width()+r.X0:],
						stride: b.Width(),
					}
				}
				job.w, job.h = r.X1-r.X0, r.Y1-r.Y0
				job.band = b.Type
				jobs = append(jobs, job)
			}
		}
	}
	e.jobs = jobs
	nblocks := len(jobs)
	e.ensureCoders(min(o.Workers, max(nblocks, 1)))
	e.results = grow(e.results, nblocks)
	results := e.results
	core.RunTasksID(nblocks, o.Workers, func(worker, i int) {
		j := jobs[i]
		results[i] = e.coders[worker].Encode(j.data, j.w, j.h, j.stride, j.band)
	})
	stats.CodeBlocks = nblocks
	// Distribute results back to tiles in order.
	k := 0
	for _, te := range tiles {
		n := 0
		for bi := range te.bands {
			n += len(te.bands[bi].Grid.Rects)
		}
		te.blocks = results[k : k+n]
		k += n
	}
	stats.Timings.Tier1 = time.Since(tT1)

	// --- Mb per band index (global across tiles).
	mb := grow(e.mb, nbands)
	e.mb = mb
	clear(mb)
	for _, te := range tiles {
		k := 0
		for bi := range te.bands {
			for range te.bands[bi].Grid.Rects {
				if nbp := te.blocks[k].NumBitplanes; nbp > mb[bi] {
					mb[bi] = nbp
				}
				k++
			}
		}
	}
	for bi := range mb {
		if mb[bi] == 0 {
			mb[bi] = 1
		}
	}

	// --- Per-band R-D weights for the allocator.
	tRA := time.Now()
	weights := grow(e.weights, nbands)
	e.weights = weights
	e.bandsRef = dwt.SubbandsAppend(e.bandsRef[:0], im.Width, im.Height, o.Levels)
	for bi, b := range e.bandsRef {
		step := 1.0
		if o.Kernel == dwt.Irr97 {
			step = steps[bi].Value()
		}
		n := dwt.BandNorm(o.Kernel, o.Levels, b)
		weights[bi] = step * step * n * n
	}

	// --- BlockStream wiring and rate-allocator inputs, in one pass. The
	// per-pass rate list is built once in the shared arena and aliased by
	// both consumers.
	totalPasses := 0
	for _, eb := range results {
		totalPasses += len(eb.Passes)
	}
	rates := grow(e.rates, totalPasses)[:0]
	dists := grow(e.dists, totalPasses)[:0]
	e.blockStreams = grow(e.blockStreams, nblocks)
	e.rblocks = grow(e.rblocks, nblocks)
	k = 0
	for _, te := range tiles {
		kt := 0 // tile-local block index; k stays global for the arenas
		for bi := range te.bands {
			te.bands[bi].Mb = mb[bi]
			for gi := range te.bands[bi].Grid.Rects {
				eb := te.blocks[kt]
				kt++
				base := len(rates)
				for _, p := range eb.Passes {
					rates = append(rates, p.Rate)
					dists = append(dists, p.DistDelta*weights[bi])
				}
				pr := rates[base:len(rates):len(rates)]
				bs := &e.blockStreams[k]
				*bs = t2.BlockStream{Data: eb.Data, NumBitplanes: eb.NumBitplanes, PassRates: pr}
				te.bands[bi].Blocks[gi] = bs
				e.rblocks[k] = rate.BlockPasses{Rates: pr, Dist: dists[base:len(dists):len(dists)]}
				k++
			}
		}
	}
	e.rates, e.dists = rates, dists
	rblocks := e.rblocks

	// --- Rate allocation (global across tiles).
	npixels := im.Width * im.Height
	var budgets []int
	var alloc rate.Allocation
	var headerEst int
	if len(o.LayerBPP) == 0 {
		// Single layer carrying every coding pass: PCRD hulls would drop
		// zero-gain final passes, so build the full allocation directly.
		budgets = []int{rate.TotalBytes(rblocks)}
		alloc = rate.Allocation{NPasses: [][]int{make([]int, len(rblocks))}, BodyBytes: budgets}
		for i := range rblocks {
			alloc.NPasses[0][i] = len(rblocks[i].Rates)
		}
	} else {
		for _, bpp := range o.LayerBPP {
			budgets = append(budgets, int(bpp*float64(npixels)/8))
		}
		// Headers shrink the body budget; estimate, assemble, and adjust
		// below until the stream fits (at most three rounds).
		headerEst = 70 + ntiles*(14+len(budgets)*(o.Levels+1))
		alloc = e.allocate(rblocks, budgets, headerEst)
	}
	nlayers := len(budgets)
	stats.Timings.RateAlloc = time.Since(tRA)

	// --- Tier-2 packet assembly (+ final budget adjustment rounds), with
	// per-tile pooled coding state and recycled stream buffers.
	tT2 := time.Now()
	e.tileStreams = grow(e.tileStreams, ntiles)
	tileStreams := e.tileStreams
	e.layersLocal = grow(e.layersLocal, nlayers)
	for round := 0; ; round++ {
		total := 0
		base := 0
		for ti, te := range tiles {
			n := len(te.blocks)
			layersLocal := e.layersLocal
			for li := 0; li < nlayers; li++ {
				layersLocal[li] = alloc.NPasses[li][base : base+n]
			}
			if te.tcoder == nil {
				te.tcoder = t2.NewTileCoder(te.bands)
			}
			s := te.tcoder.EncodeTilePackets(te.bands, o.Levels, layersLocal, tileStreams[ti][:0])
			tileStreams[ti] = s
			total += len(s)
			base += n
		}
		if len(o.LayerBPP) == 0 || round >= 2 {
			break
		}
		target := budgets[nlayers-1]
		if total+headerEst <= target {
			break
		}
		headerEst += total + headerEst - target
		alloc = e.allocate(rblocks, budgets, headerEst)
	}
	stats.Timings.Tier2 = time.Since(tT2)

	// --- Bitstream I/O.
	tIO := time.Now()
	params := t2.Params{
		Width: im.Width, Height: im.Height, TileW: tileW, TileH: tileH,
		BitDepth: o.BitDepth, Levels: o.Levels, Layers: nlayers,
		CBW: o.CBW, CBH: o.CBH, Kernel: o.Kernel, GuardBits: 2,
		Steps: steps, Mb: mb, ROIShift: roiShift,
	}
	out := t2.WriteCodestream(params, tileStreams)
	stats.Timings.StreamIO = time.Since(tIO)
	stats.Bytes = len(out)
	stats.BPP = float64(len(out)) * 8 / float64(npixels)
	return out, stats, nil
}

// allocate runs PCRD with the header estimate subtracted from each layer
// budget.
func (e *Encoder) allocate(blocks []rate.BlockPasses, budgets []int, headerEst int) rate.Allocation {
	adj := make([]int, len(budgets))
	for i, b := range budgets {
		adj[i] = b - headerEst
		if adj[i] < 0 {
			adj[i] = 0
		}
	}
	return e.ralloc.Allocate(blocks, adj)
}
