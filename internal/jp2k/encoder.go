package jp2k

import (
	"fmt"
	"time"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/mct"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/rate"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// Encoder is a reusable encode pipeline. It owns every pooled buffer the
// pipeline's hot loops need — per-worker tier-1 coders and DWT scratch, the
// per-tile coefficient planes, quantization arenas and tier-2 coding state,
// the inter-component transform planes and the rate-allocation scratch — so
// repeated Encode/EncodePlanar calls reach a steady state with near-zero heap
// allocations. This is the per-process state the paper's threads keep
// privately; server and streaming workloads hold one Encoder per concurrent
// stream.
//
// Multi-component images pipeline natively: the component x tile grid is the
// parallel task axis for the transform, quantization and tier-1 stages;
// rate allocation fans out per component and tier-2 packet assembly per tile
// (shrinking the serial tail the paper's Amdahl analysis charges against
// total speedup); tier-2 interleaves per-component packets into standard
// Csiz=N codestreams.
//
// An Encoder is not safe for concurrent use; pooled state does not leak
// between calls (output is bit-identical to the one-shot Encode function for
// any worker count).
type Encoder struct {
	coders       []*t1.Coder      // per tier-1 worker
	scratch      []*dwt.Scratch   // per unit-level worker
	scratchInner int              // worker count each scratch was sized for
	rallocs      []rate.Allocator // per rate-allocation worker
	t2scratch    []*t2Scratch     // per tier-2 worker

	units        []*tileEnc      // per (component, tile): unit u = ci*ntiles + ti
	tcoders      []*t2.TileCoder // per tile: multi-component packet assembly
	origins      [][2]int        // per unit: tile origin in image coordinates
	timings      []tileTiming    // per unit
	jobs         []blockJob
	results      []*t1.EncodedBlock
	blockStreams []t2.BlockStream
	rblocks      []rate.BlockPasses
	rates        []int     // arena: per-pass cumulative rates (shared by rate and tier-2)
	dists        []float64 // arena: per-pass weighted distortion deltas
	terms        []bool    // arena: per-pass truncation eligibility (bypass modes)
	mb           [][]int   // per component, per band
	stepsPerComp [][]quant.Step
	weights      []float64
	bandsRef     []dwt.Subband
	compBase     []int // first global block id of each component (+ total)
	blockOff     []int // per tile: first component-local block id (+ total)
	compBytes    []int
	allocs       []rate.Allocation
	headerEst    []int
	budgets      [][]int
	tileStreams  [][]byte

	mctPlanes []*raster.Image // pooled level-shifted inter-component planes
	mctFloats [][]float64     // pooled float planes for the ICT rotation
	one       [1]*raster.Image

	// Dispatch funcs bound once at construction, so the hot TasksIDMax call
	// sites pass a stored func instead of allocating a fresh closure per
	// encode; the per-call parameters travel through cur.
	unitFn  func(worker, u int)
	blockFn func(worker, i int)
	rateFn  func(worker, ci int)
	t2Fn    func(worker, ti int)
	cur     struct {
		o       Options
		steps   []quant.Step
		modes   t1.Modes // tier-1 coder modes, shared with tier-2 signalling
		innerW  int
		nbands  int
		ntiles  int
		ncomp   int
		nlayers int
		npixels int
	}

	pool    *core.Pool // resident workers for every stage dispatch
	ownPool bool       // created by this Encoder; released by Close

	// Metrics, when set, receives one per-stage latency/byte record per
	// successful encode (shared by all codecs pointed at the same handle).
	// Set it before the first encode; nil disables recording.
	Metrics *CodecMetrics
}

// t2Scratch is the per-worker scratch of the parallel tier-2 stage: the
// per-component band/layer views a tile's packet assembly needs, plus a
// per-worker byte accumulator summed (in worker order) after the dispatch —
// so the stage writes no shared state and allocates nothing once warm.
type t2Scratch struct {
	compBands  [][]t2.BandBlocks
	compLayers [][][]int
	compBytes  []int
}

// tileTiming collects one unit's stage timings so the parallel loop writes
// without synchronization; the totals are summed afterwards.
type tileTiming struct {
	dwt   dwt.Timings
	intra time.Duration
	quant time.Duration
}

func newEncoder(p *core.Pool, own bool) *Encoder {
	e := &Encoder{pool: p, ownPool: own}
	e.unitFn = e.unitTask
	e.blockFn = e.blockTask
	e.rateFn = e.rateTask
	e.t2Fn = e.t2Task
	return e
}

// NewEncoder returns an empty Encoder; pooled buffers are sized on first use.
// The Encoder owns a persistent worker pool (its workers start on the first
// parallel encode); call Close when done with the Encoder to release them.
func NewEncoder() *Encoder {
	return newEncoder(core.NewPool(0), true)
}

// NewEncoderWithPool returns an Encoder dispatching on a shared worker pool —
// the shape for servers running many codec instances over one resident worker
// set. The caller keeps ownership of the pool: Close releases only the
// Encoder's buffers, never the shared workers.
func NewEncoderWithPool(p *core.Pool) *Encoder {
	if p == nil {
		p = core.Default()
	}
	return newEncoder(p, false)
}

// Close releases the Encoder's worker pool (when owned) and drops the pooled
// buffers, so a retained reference to a closed Encoder pins neither workers
// nor arenas. The Encoder must not be used after Close.
func (e *Encoder) Close() {
	if e.ownPool {
		e.pool.Close()
	}
	*e = Encoder{}
}

// grow returns s with length n, reallocating only when capacity is short.
// Retained elements are stale from the previous encode and must be
// overwritten by the caller.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reuseImage returns an image of the requested size backed by p's storage
// when it fits.
func reuseImage(p *raster.Image, w, h int) *raster.Image {
	if p == nil || cap(p.Pix) < w*h {
		return raster.New(w, h)
	}
	p.Width, p.Height, p.Stride = w, h, w
	p.Pix = p.Pix[:w*h]
	return p
}

// ensureWorkers sizes the per-worker pools: outer unit-level workers, each
// with DWT scratch for inner within-unit workers. Scratch sized for more
// workers than a call uses stays valid (unused slots are empty headers), so
// the pool is only rebuilt when the inner count grows — shrinking Workers
// between calls keeps every warm buffer.
func (e *Encoder) ensureWorkers(outer, inner int) {
	if inner > e.scratchInner {
		e.scratch = e.scratch[:0]
		e.scratchInner = inner
	}
	for len(e.scratch) < outer {
		e.scratch = append(e.scratch, dwt.NewScratch(e.scratchInner))
	}
}

func (e *Encoder) ensureCoders(n int) {
	for len(e.coders) < n {
		e.coders = append(e.coders, t1.NewCoder())
	}
}

// ensureT2 sizes the per-worker tier-2 scratch and the per-worker rate
// allocators for the current component/layer shape.
func (e *Encoder) ensureT2(workers, ncomp, nlayers int) {
	for len(e.rallocs) < workers {
		e.rallocs = append(e.rallocs, rate.Allocator{})
	}
	for len(e.t2scratch) < workers {
		e.t2scratch = append(e.t2scratch, &t2Scratch{})
	}
	for _, sc := range e.t2scratch[:workers] {
		sc.compBands = grow(sc.compBands, ncomp)
		sc.compLayers = grow(sc.compLayers, ncomp)
		for ci := range sc.compLayers {
			sc.compLayers[ci] = grow(sc.compLayers[ci], nlayers)
		}
		sc.compBytes = grow(sc.compBytes, ncomp)
	}
}

// Encode compresses a single-component image into a JPEG2000 codestream.
// The returned codestream is freshly allocated and caller-owned; EncodeStats
// is valid until the next call.
func (e *Encoder) Encode(im *raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	e.one[0] = im
	out, stats, err := e.encode(e.one[:], opts)
	e.one[0] = nil // do not pin the caller's image until the next call
	return out, stats, err
}

// EncodePlanar compresses a multi-component image into a single standard
// codestream with Csiz = NComp. With opts.MCT set (three components only) the
// inter-component transform — the reversible color transform for the 5/3
// kernel, the YCbCr rotation for 9/7 — is applied first and flagged in the
// COD marker, and under lossy rate control the byte budget is split between
// luma and chroma. All components share geometry and bit depth.
func (e *Encoder) EncodePlanar(pl *raster.Planar, opts Options) ([]byte, *EncodeStats, error) {
	if err := pl.Validate(); err != nil {
		return nil, nil, err
	}
	return e.encode(pl.Comps, opts)
}

// chromaShare is the fraction of the byte budget given to each chroma
// component under lossy MCT coding; luma carries most of the perceptual
// weight.
const chromaShare = 0.15

// unitTask transforms and quantizes one (component, tile) unit: the DWT over
// the unit's plane, then per-band quantization into the unit's arena. It is
// the body of the intra-component TasksIDMax dispatch (the paper's Fig. 9
// "improved" scaling, widened by the component axis).
func (e *Encoder) unitTask(worker, u int) {
	o := &e.cur.o
	te := e.units[u]
	tt := &e.timings[u]
	st := dwt.Strategy{
		VertMode: o.VertMode, BlockWidth: o.VertBlockWidth,
		Workers: e.cur.innerW, Scratch: e.scratch[worker], Pool: e.pool,
	}
	tDWT := time.Now()
	var fp *dwt.FPlane
	if o.Kernel == dwt.Rev53 {
		tt.dwt = dwt.Forward53Timed(te.intPlane, o.Levels, st)
	} else {
		te.fplane = dwt.FromImageReuse(te.fplane, te.intPlane)
		fp = te.fplane
		tt.dwt = dwt.Forward97Timed(fp, o.Levels, st)
	}
	tt.intra = time.Since(tDWT)

	// Quantization (9/7 only): per band into dense int32 views of the unit's
	// pooled arena (bands partition the tile, so the arena is exactly
	// tile-sized).
	tQ := time.Now()
	key := gridKey{te.w, te.h, o.Levels, o.CBW, o.CBH}
	if te.gridKey != key {
		te.gridKey = key
		te.bands = grow(te.bands, e.cur.nbands)
		for bi, b := range te.subbands {
			g := t2.MakeGrid(b, o.CBW, o.CBH)
			te.bands[bi] = t2.BandBlocks{Grid: g, Blocks: grow(te.bands[bi].Blocks, len(g.Rects))}
		}
	}
	te.bandInts = grow(te.bandInts, e.cur.nbands)
	if cap(te.bandArena) < te.w*te.h {
		te.bandArena = make([]int32, te.w*te.h)
	}
	te.qjobs = te.qjobs[:0]
	off := 0
	for bi, b := range te.subbands {
		te.bandInts[bi] = nil
		if b.Empty() || o.Kernel != dwt.Irr97 {
			continue
		}
		n := b.Width() * b.Height()
		buf := te.bandArena[off : off+n : off+n]
		off += n
		te.qjobs = append(te.qjobs, quant.BandJob{
			Band: b, Step: e.cur.steps[bi].Value(), Dst: buf, DstStride: b.Width(),
		})
		te.bandInts[bi] = buf
	}
	if len(te.qjobs) > 0 {
		quant.ForwardBands(fp.Data, fp.Stride, te.qjobs, e.cur.innerW, e.pool)
	}
	tt.quant = time.Since(tQ)
}

// blockTask entropy-codes one code-block on the dispatching worker's pooled
// tier-1 Coder ("no synchronization is necessary due to the processing of
// independent code-blocks").
func (e *Encoder) blockTask(worker, i int) {
	j := e.jobs[i]
	e.results[i] = e.coders[worker].Encode(j.data, j.w, j.h, j.stride, j.band)
}

// rateTask runs component ci's PCRD allocation on the dispatching worker's
// pooled allocator — the per-component axis of the parallel rate stage.
func (e *Encoder) rateTask(worker, ci int) {
	o := &e.cur.o
	crb := e.rblocks[e.compBase[ci]:e.compBase[ci+1]]
	if len(o.LayerBPP) == 0 {
		// Single layer carrying every coding pass: PCRD hulls would drop
		// zero-gain final passes, so build the full allocation directly.
		np := make([]int, len(crb))
		for i := range crb {
			np[i] = len(crb[i].Rates)
		}
		e.allocs[ci] = rate.Allocation{NPasses: [][]int{np}, BodyBytes: []int{rate.TotalBytes(crb)}}
		return
	}
	share := 1.0
	if e.cur.ncomp > 1 {
		if o.MCT {
			share = chromaShare
			if ci == 0 {
				share = 1 - 2*chromaShare
			}
		} else {
			share = 1 / float64(e.cur.ncomp)
		}
	}
	e.budgets[ci] = e.budgets[ci][:0]
	for _, bpp := range o.LayerBPP {
		e.budgets[ci] = append(e.budgets[ci], int(bpp*share*float64(e.cur.npixels)/8))
	}
	// Headers shrink the body budget; estimate here, assemble, and adjust
	// in the tier-2 rounds until the stream fits (at most three rounds).
	e.headerEst[ci] = 70 + e.cur.ntiles*(14+e.cur.nlayers*(o.Levels+1))
	e.allocs[ci] = allocate(&e.rallocs[worker], crb, e.budgets[ci], e.headerEst[ci])
}

// t2Task assembles one tile's packets (all components, LRCP-interleaved) on
// the dispatching worker's scratch views — the cross-tile axis of the
// parallel tier-2 stage. Per-tile coding state (tag trees, packet buffers)
// lives in e.tcoders[ti]; the only worker-shared writes are to per-worker
// scratch.
func (e *Encoder) t2Task(worker, ti int) {
	sc := e.t2scratch[worker]
	ncomp, ntiles, nlayers := e.cur.ncomp, e.cur.ntiles, e.cur.nlayers
	base := e.blockOff[ti]
	n := e.blockOff[ti+1] - base
	for ci := 0; ci < ncomp; ci++ {
		te := e.units[ci*ntiles+ti]
		sc.compBands[ci] = te.bands
		for li := 0; li < nlayers; li++ {
			sc.compLayers[ci][li] = e.allocs[ci].NPasses[li][base : base+n]
		}
	}
	if e.tcoders[ti] == nil {
		e.tcoders[ti] = t2.NewTileCoderComps(sc.compBands[:ncomp])
	}
	e.tcoders[ti].SOP = e.cur.o.Resilience.SOP
	e.tcoders[ti].EPH = e.cur.o.Resilience.EPH
	e.tcoders[ti].Modes = e.cur.modes
	e.tileStreams[ti] = e.tcoders[ti].EncodeTileCompsPackets(
		sc.compBands[:ncomp], e.cur.o.Levels, sc.compLayers[:ncomp],
		e.tileStreams[ti][:0], sc.compBytes)
}

func (e *Encoder) encode(comps []*raster.Image, opts Options) ([]byte, *EncodeStats, error) {
	o := opts.withDefaults()
	ncomp := len(comps)
	if ncomp > t2.MaxComponents {
		return nil, nil, fmt.Errorf("jp2k: %d components exceeds the %d limit", ncomp, t2.MaxComponents)
	}
	if o.MCT && ncomp != 3 {
		return nil, nil, fmt.Errorf("jp2k: MCT needs exactly 3 components, have %d", ncomp)
	}
	if o.CBW > 64 || o.CBH > 64 || o.CBW < 4 || o.CBH < 4 {
		return nil, nil, fmt.Errorf("jp2k: code-block size %dx%d out of range", o.CBW, o.CBH)
	}
	width, height := comps[0].Width, comps[0].Height
	stats := &EncodeStats{}
	// Reclaim the tier-1 arenas of the previous encode; every reference into
	// them died with that call's tier-2 assembly.
	for _, co := range e.coders {
		co.Release()
	}

	// --- Inter-component transform (the first stage of the paper's Fig. 1
	// pipeline): level-shift into pooled planes, rotate, and hand the shifted
	// planes to the tiling stage. The float rotation rounds back to integer
	// planes, matching the legacy color container's arithmetic exactly.
	tMCT := time.Now()
	shift := int32(1) << uint(o.BitDepth-1)
	srcs := comps
	srcShift := shift // subtracted during the tile copy
	if o.MCT {
		for len(e.mctPlanes) < 3 {
			e.mctPlanes = append(e.mctPlanes, nil)
		}
		for ci, c := range comps {
			p := reuseImage(e.mctPlanes[ci], width, height)
			e.mctPlanes[ci] = p
			e.pool.ForMax(o.Workers, height, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					src := c.Row(y)
					dst := p.Row(y)
					for x, v := range src {
						dst[x] = v - shift
					}
				}
			})
		}
		if o.Kernel == dwt.Rev53 {
			if err := mct.ForwardRCT(e.mctPlanes[0], e.mctPlanes[1], e.mctPlanes[2], o.Workers, e.pool); err != nil {
				return nil, nil, err
			}
		} else {
			rotateICT(e.mctPlanes[:3], &e.mctFloats, o.Workers, e.pool, mct.ForwardICT)
		}
		srcs = e.mctPlanes[:3]
		srcShift = 0
	}
	stats.Timings.InterComp = time.Since(tMCT)

	// --- Pipeline setup: tiling and level shift, per component. Units
	// enumerate the component x tile grid component-major, so each
	// component's blocks stay contiguous for per-component rate allocation.
	t0 := time.Now()
	tileW, tileH := o.TileW, o.TileH
	if tileW <= 0 || tileH <= 0 {
		tileW, tileH = width, height
	}
	ntx := (width + tileW - 1) / tileW
	nty := (height + tileH - 1) / tileH
	ntiles := ntx * nty
	nunits := ncomp * ntiles
	for len(e.units) < nunits {
		e.units = append(e.units, &tileEnc{})
	}
	units := e.units[:nunits]
	e.origins = grow(e.origins, nunits)
	origins := e.origins
	for ci, src := range srcs {
		u := ci * ntiles
		for ty := 0; ty < nty; ty++ {
			for tx := 0; tx < ntx; tx++ {
				x0, y0 := tx*tileW, ty*tileH
				x1, y1 := min(x0+tileW, width), min(y0+tileH, height)
				te := units[u]
				te.w, te.h = x1-x0, y1-y0
				te.intPlane = reuseImage(te.intPlane, te.w, te.h)
				for y := 0; y < te.h; y++ {
					srow := src.Pix[(y0+y)*src.Stride+x0 : (y0+y)*src.Stride+x1]
					dst := te.intPlane.Row(y)
					for x, v := range srow {
						dst[x] = v - srcShift
					}
				}
				te.subbands = dwt.SubbandsAppend(te.subbands[:0], te.w, te.h, o.Levels)
				origins[u] = [2]int{x0, y0}
				u++
			}
		}
	}
	stats.Timings.Setup = time.Since(t0)

	// --- Intra-component transform (DWT) + quantization, parallel ACROSS
	// the component x tile units (the paper's Fig. 9 "improved" scaling,
	// widened by the component axis): with several units each worker
	// transforms whole units serially; a single unit is transformed with all
	// workers cooperating inside it as before.
	outerW := o.Workers
	if outerW > nunits {
		outerW = nunits
	}
	innerW := o.Workers / outerW
	if innerW < 1 {
		innerW = 1
	}
	e.ensureWorkers(min(o.Workers, nunits), innerW)
	var steps []quant.Step
	if o.Kernel == dwt.Irr97 {
		steps = quant.BandSteps(dwt.Irr97, width, height, o.Levels, o.BaseStep)
	}
	e.timings = grow(e.timings, nunits)
	nbands := 1 + 3*o.Levels
	nlayers := len(o.LayerBPP)
	if nlayers == 0 {
		nlayers = 1
	}
	e.cur.o = o
	e.cur.steps = steps
	e.cur.innerW = innerW
	e.cur.nbands = nbands
	e.cur.ntiles = ntiles
	e.cur.ncomp = ncomp
	e.cur.nlayers = nlayers
	e.cur.npixels = width * height
	e.pool.TasksIDMax(outerW, nunits, e.unitFn)
	for u := range units {
		tt := &e.timings[u]
		stats.Timings.DWTDetail.Horizontal += tt.dwt.Horizontal
		stats.Timings.DWTDetail.Vertical += tt.dwt.Vertical
		stats.Timings.IntraComp += tt.intra
		stats.Timings.Quant += tt.quant
	}

	// --- ROI scaling (MAXSHIFT) between quantization and tier-1, as in the
	// Fig. 1 pipeline; the shift applies uniformly across components.
	roiShift := 0
	if o.ROI != nil {
		roiShift = applyROI(units, origins, *o.ROI, o)
	}

	// --- Tier-1: gather every code-block of every unit, encode in parallel
	// with the paper's staggered round-robin worker assignment; each worker
	// codes with its own pooled Coder.
	tT1 := time.Now()
	jobs := e.jobs[:0]
	for _, te := range units {
		for bi, b := range te.subbands {
			g := te.bands[bi].Grid
			for _, r := range g.Rects {
				var job blockJob
				if o.Kernel == dwt.Rev53 {
					off := (b.Y0+r.Y0)*te.intPlane.Stride + b.X0 + r.X0
					job = blockJob{
						data:   te.intPlane.Pix[off:],
						stride: te.intPlane.Stride,
					}
				} else {
					job = blockJob{
						data:   te.bandInts[bi][r.Y0*b.Width()+r.X0:],
						stride: b.Width(),
					}
				}
				job.w, job.h = r.X1-r.X0, r.Y1-r.Y0
				job.band = b.Type
				jobs = append(jobs, job)
			}
		}
	}
	e.jobs = jobs
	nblocks := len(jobs)
	e.ensureCoders(min(o.Workers, max(nblocks, 1)))
	modes := t1.Modes{
		Bypass:   o.Coder.Bypass,
		ResetCtx: o.Coder.ResetCtx,
		TermAll:  o.Coder.TermAll,
		Causal:   o.Coder.Causal,
		SegSym:   o.Resilience.SegSymbols,
	}
	e.cur.modes = modes
	for _, co := range e.coders {
		co.Modes = modes
	}
	e.results = grow(e.results, nblocks)
	e.pool.TasksIDMax(o.Workers, nblocks, e.blockFn)
	results := e.results
	stats.CodeBlocks = nblocks
	// Distribute results back to units in order.
	k := 0
	for _, te := range units {
		n := 0
		for bi := range te.bands {
			n += len(te.bands[bi].Grid.Rects)
		}
		te.blocks = results[k : k+n]
		k += n
	}
	stats.Timings.Tier1 = time.Since(tT1)

	// --- Mb per (component, band) index (global across tiles).
	mb := grow(e.mb, ncomp)
	e.mb = mb
	for ci := 0; ci < ncomp; ci++ {
		mb[ci] = grow(mb[ci], nbands)
		clear(mb[ci])
		for _, te := range units[ci*ntiles : (ci+1)*ntiles] {
			k := 0
			for bi := range te.bands {
				for range te.bands[bi].Grid.Rects {
					if nbp := te.blocks[k].NumBitplanes; nbp > mb[ci][bi] {
						mb[ci][bi] = nbp
					}
					k++
				}
			}
		}
		for bi := range mb[ci] {
			if mb[ci][bi] == 0 {
				mb[ci][bi] = 1
			}
		}
	}

	// --- Per-band R-D weights for the allocator (geometry-derived, so shared
	// by every component).
	tRA := time.Now()
	weights := grow(e.weights, nbands)
	e.weights = weights
	e.bandsRef = dwt.SubbandsAppend(e.bandsRef[:0], width, height, o.Levels)
	for bi, b := range e.bandsRef {
		step := 1.0
		if o.Kernel == dwt.Irr97 {
			step = steps[bi].Value()
		}
		n := dwt.BandNorm(o.Kernel, o.Levels, b)
		weights[bi] = step * step * n * n
	}

	// --- BlockStream wiring and rate-allocator inputs, in one pass. The
	// per-pass rate list is built once in the shared arena and aliased by
	// both consumers. Blocks stay component-major, so each component's
	// allocator inputs are one contiguous slice; blockOff records each
	// tile's slice of a component's blocks for the parallel tier-2 stage
	// (identical for every component — they share the tile geometry).
	totalPasses := 0
	for _, eb := range results {
		totalPasses += len(eb.Passes)
	}
	rates := grow(e.rates, totalPasses)[:0]
	dists := grow(e.dists, totalPasses)[:0]
	// Under bypass without TERMALL, only segment boundaries carry exact byte
	// rates (other passes carry margined estimates); restricting PCRD to them
	// keeps every signalled length exact. Under TERMALL every pass is a
	// boundary, so no restriction is needed.
	var terms []bool
	if modes.Bypass && !modes.TermAll {
		terms = grow(e.terms, totalPasses)[:0]
	}
	e.blockStreams = grow(e.blockStreams, nblocks)
	e.rblocks = grow(e.rblocks, nblocks)
	e.compBase = grow(e.compBase, ncomp+1)
	e.blockOff = grow(e.blockOff, ntiles+1)
	k = 0
	for u, te := range units {
		ci := u / ntiles
		if u%ntiles == 0 {
			e.compBase[ci] = k
		}
		if ci == 0 {
			e.blockOff[u] = k
		}
		kt := 0 // unit-local block index; k stays global for the arenas
		for bi := range te.bands {
			te.bands[bi].Mb = mb[ci][bi]
			for gi := range te.bands[bi].Grid.Rects {
				eb := te.blocks[kt]
				kt++
				base := len(rates)
				for _, p := range eb.Passes {
					rates = append(rates, p.Rate)
					dists = append(dists, p.DistDelta*weights[bi])
				}
				pr := rates[base:len(rates):len(rates)]
				bs := &e.blockStreams[k]
				*bs = t2.BlockStream{Data: eb.Data, NumBitplanes: eb.NumBitplanes, PassRates: pr}
				te.bands[bi].Blocks[gi] = bs
				e.rblocks[k] = rate.BlockPasses{Rates: pr, Dist: dists[base:len(dists):len(dists)]}
				if terms != nil {
					for pi := range eb.Passes {
						terms = append(terms, pi == len(eb.Passes)-1 || modes.TermPass(pi))
					}
					e.rblocks[k].Terminal = terms[base:len(terms):len(terms)]
				}
				k++
			}
		}
	}
	e.compBase[ncomp] = k
	e.blockOff[ntiles] = e.compBase[1] // component 0's total = per-component total
	e.rates, e.dists = rates, dists
	if terms != nil {
		e.terms = terms
	}

	// --- Rate allocation, parallel per component (the legacy color container
	// ran PCRD per component stream; keeping the same budgets, header
	// estimate and adjustment policy keeps the decoded pixels identical).
	// Under MCT the budget splits luma-heavy; other multi-component streams
	// split evenly.
	e.allocs = grow(e.allocs, ncomp)
	e.headerEst = grow(e.headerEst, ncomp)
	e.budgets = grow(e.budgets, ncomp)
	t2W := min(o.Workers, max(ntiles, 1))
	e.ensureT2(max(t2W, min(o.Workers, ncomp)), ncomp, nlayers)
	e.pool.TasksIDMax(o.Workers, ncomp, e.rateFn)
	stats.Timings.RateAlloc = time.Since(tRA)

	// --- Tier-2 packet assembly (+ final budget adjustment rounds), parallel
	// ACROSS tiles with per-tile pooled coding state, per-worker scratch
	// views and recycled stream buffers — the stage the paper leaves in the
	// serial tail. Packets interleave components within each (layer,
	// resolution) — the standard's LRCP progression.
	tT2 := time.Now()
	e.tileStreams = grow(e.tileStreams, ntiles)
	for len(e.tcoders) < ntiles {
		e.tcoders = append(e.tcoders, nil)
	}
	e.compBytes = grow(e.compBytes, ncomp)
	compBytes := e.compBytes
	for round := 0; ; round++ {
		for _, sc := range e.t2scratch[:t2W] {
			clear(sc.compBytes)
		}
		e.pool.TasksIDMax(t2W, ntiles, e.t2Fn)
		clear(compBytes)
		for _, sc := range e.t2scratch[:t2W] {
			for ci := 0; ci < ncomp; ci++ {
				compBytes[ci] += sc.compBytes[ci]
			}
		}
		if len(o.LayerBPP) == 0 || round >= 2 {
			break
		}
		over := false
		for ci := 0; ci < ncomp; ci++ {
			target := e.budgets[ci][nlayers-1]
			if compBytes[ci]+e.headerEst[ci] > target {
				e.headerEst[ci] += compBytes[ci] + e.headerEst[ci] - target
				crb := e.rblocks[e.compBase[ci]:e.compBase[ci+1]]
				e.allocs[ci] = allocate(&e.rallocs[0], crb, e.budgets[ci], e.headerEst[ci])
				over = true
			}
		}
		if !over {
			break
		}
	}
	stats.Timings.Tier2 = time.Since(tT2)

	// --- Bitstream I/O.
	tIO := time.Now()
	var stepsAll [][]quant.Step
	if o.Kernel == dwt.Irr97 {
		e.stepsPerComp = grow(e.stepsPerComp, ncomp)
		for ci := range e.stepsPerComp[:ncomp] {
			e.stepsPerComp[ci] = steps
		}
		stepsAll = e.stepsPerComp[:ncomp]
	}
	params := t2.Params{
		Width: width, Height: height, TileW: tileW, TileH: tileH,
		NComp: ncomp, BitDepth: o.BitDepth, Levels: o.Levels, Layers: nlayers,
		CBW: o.CBW, CBH: o.CBH, MCT: o.MCT, Kernel: o.Kernel, GuardBits: 2,
		Steps: stepsAll, Mb: mb[:ncomp], ROIShift: roiShift,
		UseSOP: o.Resilience.SOP, UseEPH: o.Resilience.EPH, SegSym: o.Resilience.SegSymbols,
		Bypass: o.Coder.Bypass, ResetCtx: o.Coder.ResetCtx,
		TermAll: o.Coder.TermAll, Causal: o.Coder.Causal,
	}
	out := t2.WriteCodestream(params, e.tileStreams[:ntiles])
	stats.Timings.StreamIO = time.Since(tIO)
	stats.Bytes = len(out)
	stats.BPP = float64(len(out)) * 8 / float64(e.cur.npixels)
	e.Metrics.recordEncode(stats)
	return out, stats, nil
}

// allocate runs PCRD on the given allocator with the header estimate
// subtracted from each layer budget.
func allocate(a *rate.Allocator, blocks []rate.BlockPasses, budgets []int, headerEst int) rate.Allocation {
	adj := make([]int, len(budgets))
	for i, b := range budgets {
		adj[i] = b - headerEst
		if adj[i] < 0 {
			adj[i] = 0
		}
	}
	return a.Allocate(blocks, adj)
}

// rotateICT applies the irreversible color rotation to three integer planes
// in place: pooled float copies, the rotation, and the round-back, each
// parallel over rows on the codec's resident workers. The same helper serves
// the encoder (ForwardICT) and decoder (InverseICT), so the legacy-compatible
// rounding arithmetic cannot diverge between the two.
func rotateICT(planes []*raster.Image, floats *[][]float64, workers int, pool *core.Pool, rotate func(a, b, c []float64, workers int, pool *core.Pool)) {
	n := planes[0].Width * planes[0].Height
	for len(*floats) < 3 {
		*floats = append(*floats, nil)
	}
	fl := *floats
	for ci := 0; ci < 3; ci++ {
		fl[ci] = grow(fl[ci], n)
		im, dst := planes[ci], fl[ci]
		pool.ForMax(workers, im.Height, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				row := im.Row(y)
				for x, v := range row {
					dst[y*im.Width+x] = float64(v)
				}
			}
		})
	}
	rotate(fl[0], fl[1], fl[2], workers, pool)
	for ci := 0; ci < 3; ci++ {
		src, im := fl[ci], planes[ci]
		pool.ForMax(workers, im.Height, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				row := im.Row(y)
				for x := range row {
					v := src[y*im.Width+x]
					if v >= 0 {
						row[x] = int32(v + 0.5)
					} else {
						row[x] = int32(v - 0.5)
					}
				}
			}
		})
	}
}
