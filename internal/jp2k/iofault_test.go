package jp2k

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pj2k/internal/dwt"
	"pj2k/internal/faultinject"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// --- IO-fault chaos matrix: flaky sources x strict/resilient x worker
// counts. Transient faults must be invisible (bit-identical output under
// retries); permanent faults must stay local (resilient conceals only the
// affected tile, strict names it in a typed error); nothing ever panics.

// chaosStream encodes a synthetic image; tile == 0 keeps the single-tile
// geometry.
func chaosStream(t testing.TB, w, h, tile int) []byte {
	t.Helper()
	opts := Options{Kernel: dwt.Rev53}
	if tile > 0 {
		opts.TileW, opts.TileH = tile, tile
	}
	cs, _, err := Encode(raster.Synthetic(w, h, 17), opts)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// flakySource wraps cs behind a FlakyReaderAt and the retry layer — the full
// degraded-IO read path a decode exercises.
func flakySource(cs []byte, cfg faultinject.FlakyConfig, pol t2.RetryPolicy) (*t2.Source, *faultinject.FlakyReaderAt) {
	fl := faultinject.NewFlaky(bytes.NewReader(cs), cfg)
	return t2.ResilientSource(t2.NewSource(fl, int64(len(cs))), pol), fl
}

// lastBody returns the last tile body span of cs (the fault target: its read
// is issued for exactly that range, so span containment matches it and
// nothing else).
func lastBody(t testing.TB, cs []byte) faultinject.Span {
	t.Helper()
	spans := faultinject.TileBodies(cs)
	if len(spans) == 0 {
		t.Fatal("no tile bodies found")
	}
	return spans[len(spans)-1]
}

var chaosWorkers = []int{1, 2, 4, 8}

// TestChaosTransientBitIdentity: every transient fault shape — plain failure,
// short read, stall past the deadline — healing within the retry budget must
// yield output bit-identical to a clean decode, at every worker count, with
// an empty damage report in resilient mode.
func TestChaosTransientBitIdentity(t *testing.T) {
	streams := []struct {
		name string
		w, h int
		tile int
	}{
		{"single-64", 64, 64, 0},
		{"tiled-96", 96, 96, 48},
	}
	for _, s := range streams {
		cs := chaosStream(t, s.w, s.h, s.tile)
		dec := NewDecoder()
		ref, err := dec.DecodePlanarSource(t2.BytesSource(cs), DecodeOptions{})
		dec.Close()
		if err != nil {
			t.Fatal(err)
		}
		body := lastBody(t, cs)
		modes := []struct {
			name string
			cfg  faultinject.FlakyConfig
			pol  t2.RetryPolicy
		}{
			// The very first read (header scan) fails three times, then the
			// source heals: retries absorb it before any tile work starts.
			{"scan-fail-recover",
				faultinject.FlakyConfig{FailNth: 1, Transient: true, Recover: 3},
				t2.RetryPolicy{Retries: 5}},
			// One tile's body read fails twice, then heals: the retry fires
			// inside the parallel tile walk.
			{"tile-fail-recover",
				faultinject.FlakyConfig{FailSpan: body, Transient: true, Recover: 2},
				t2.RetryPolicy{Retries: 4}},
			// The body read violates the ReaderAt contract (half the bytes,
			// nil error) twice; the wrapper must detect and retry it.
			{"tile-short-read",
				faultinject.FlakyConfig{FailSpan: body, ShortRead: true, Recover: 2},
				t2.RetryPolicy{Retries: 4}},
			// The body read stalls past the per-read deadline twice; the
			// abandoned attempts retry and the third responds in time.
			{"tile-stall",
				faultinject.FlakyConfig{FailSpan: body, Stall: 30 * time.Millisecond, Recover: 2},
				t2.RetryPolicy{Retries: 4, ReadTimeout: 5 * time.Millisecond}},
		}
		for _, m := range modes {
			for _, workers := range chaosWorkers {
				t.Run(fmt.Sprintf("%s/%s/w%d", s.name, m.name, workers), func(t *testing.T) {
					src, fl := flakySource(cs, m.cfg, m.pol)
					d := NewDecoder()
					defer d.Close()
					got, err := d.DecodePlanarSource(src, DecodeOptions{Workers: workers})
					if err != nil {
						t.Fatalf("decode under transient faults: %v", err)
					}
					planarsEqual(t, got, ref, "transient-fault decode")
					if fl.Failures() == 0 {
						t.Fatal("the fault never fired; the matrix tested nothing")
					}
					// Resilient mode over the same (re-armed) fault shape:
					// identical pixels and a clean damage report.
					src2, _ := flakySource(cs, m.cfg, m.pol)
					d2 := NewDecoder()
					defer d2.Close()
					got2, err := d2.DecodePlanarSource(src2, DecodeOptions{Resilient: true, Workers: workers})
					if err != nil {
						t.Fatalf("resilient decode under transient faults: %v", err)
					}
					planarsEqual(t, got2, ref, "transient-fault resilient decode")
					if d2.Damage().Damaged() {
						t.Fatalf("absorbed transient faults left a damage report: %s", d2.Damage())
					}
				})
			}
		}
	}
}

// TestChaosPermanentStrictTypedError: a permanently unreadable tile body must
// fail a strict decode with a TileIOError naming the tile and the exact span,
// wrapping the retry layer's permanent ReadError.
func TestChaosPermanentStrictTypedError(t *testing.T) {
	cs := chaosStream(t, 96, 96, 48) // 2x2 tile grid
	spans := faultinject.TileBodies(cs)
	if len(spans) != 4 {
		t.Fatalf("%d tile bodies; want 4", len(spans))
	}
	const target = 3
	for _, workers := range chaosWorkers {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			src, _ := flakySource(cs, faultinject.FlakyConfig{FailSpan: spans[target]}, t2.RetryPolicy{Retries: 2})
			d := NewDecoder()
			defer d.Close()
			_, err := d.DecodePlanarSource(src, DecodeOptions{Workers: workers})
			if err == nil {
				t.Fatal("strict decode of an unreadable tile body succeeded")
			}
			var tie *TileIOError
			if !errors.As(err, &tie) {
				t.Fatalf("error %v (%T) is not a *TileIOError", err, err)
			}
			if tie.Tile != target || tie.Off != int64(spans[target].Off) || tie.Len != int64(spans[target].Len) {
				t.Fatalf("TileIOError = tile %d span [%d, %d); want tile %d span [%d, %d)",
					tie.Tile, tie.Off, tie.Off+tie.Len, target, spans[target].Off, spans[target].End())
			}
			var re *t2.ReadError
			if !errors.As(err, &re) || re.Transient {
				t.Fatalf("TileIOError does not wrap a permanent *t2.ReadError: %v", err)
			}
			if !t2.IsIOError(err) {
				t.Fatal("IsIOError = false for an unreadable tile body")
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("tile %d", target)) {
				t.Fatalf("error text %q does not name the tile", err)
			}
		})
	}
	// A window that avoids the broken tile decodes strictly: only the tiles a
	// region touches are ever read.
	win := Rect{X0: 0, Y0: 0, X1: 48, Y1: 48}
	dref := NewDecoder()
	defer dref.Close()
	ref, err := dref.DecodeRegionPlanarSource(t2.BytesSource(cs), win, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := flakySource(cs, faultinject.FlakyConfig{FailSpan: spans[target]}, t2.RetryPolicy{Retries: 2})
	d := NewDecoder()
	defer d.Close()
	got, err := d.DecodeRegionPlanarSource(src, win, DecodeOptions{})
	if err != nil {
		t.Fatalf("window avoiding the broken tile failed: %v", err)
	}
	planarsEqual(t, got, ref, "window beside unreadable tile")
}

// TestChaosPermanentResilientConceals: resilient decode of the same permanent
// fault must succeed, flag exactly the affected tile as IO-unreadable, and
// leave every pixel outside that tile bit-identical to a clean decode.
func TestChaosPermanentResilientConceals(t *testing.T) {
	cs := chaosStream(t, 96, 96, 48)
	spans := faultinject.TileBodies(cs)
	const target = 3 // tile (1,1): pixels [48,96) x [48,96)
	dref := NewDecoder()
	ref, err := dref.DecodePlanarSource(t2.BytesSource(cs), DecodeOptions{})
	dref.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range chaosWorkers {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			src, _ := flakySource(cs, faultinject.FlakyConfig{FailSpan: spans[target]}, t2.RetryPolicy{Retries: 1})
			d := NewDecoder()
			defer d.Close()
			got, err := d.DecodePlanarSource(src, DecodeOptions{Resilient: true, Workers: workers})
			if err != nil {
				t.Fatalf("resilient decode: %v", err)
			}
			if got.Width() != ref.Width() || got.Height() != ref.Height() {
				t.Fatalf("dims %dx%d; want %dx%d", got.Width(), got.Height(), ref.Width(), ref.Height())
			}
			dmg := d.Damage()
			if tot := dmg.Totals(); tot.IOUnreadable != 1 {
				t.Fatalf("IOUnreadable total = %d; want exactly the one broken tile (%s)", tot.IOUnreadable, dmg)
			}
			for _, td := range dmg.Tiles {
				if td.IOUnreadable > 0 && td.Tile != target {
					t.Fatalf("tile %d flagged IO-unreadable; only tile %d is broken", td.Tile, target)
				}
			}
			// Damage locality: everything outside the broken tile's pixel
			// rect is bit-identical to the clean decode.
			for c := range ref.Comps {
				rp, gp := ref.Comps[c], got.Comps[c]
				for y := 0; y < rp.Height; y++ {
					for x := 0; x < rp.Width; x++ {
						if x >= 48 && y >= 48 {
							continue // inside the concealed tile
						}
						if rp.Pix[y*rp.Stride+x] != gp.Pix[y*gp.Stride+x] {
							t.Fatalf("pixel (%d, %d) comp %d differs outside the broken tile", x, y, c)
						}
					}
				}
			}
		})
	}
}

// TestChaosPermanentStallBounded: a source that stalls forever on one span
// must fail a strict decode in bounded time under a per-read deadline — the
// typed error is transient (a deadline expiry), but the decode does not hang.
func TestChaosPermanentStallBounded(t *testing.T) {
	cs := chaosStream(t, 64, 64, 0)
	body := lastBody(t, cs)
	src, _ := flakySource(cs,
		faultinject.FlakyConfig{FailSpan: body, Stall: 300 * time.Millisecond},
		t2.RetryPolicy{Retries: 1, ReadTimeout: 10 * time.Millisecond})
	d := NewDecoder()
	defer d.Close()
	start := time.Now()
	_, err := d.DecodePlanarSource(src, DecodeOptions{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("decode over a stalled span succeeded")
	}
	if !t2.IsIOError(err) {
		t.Fatalf("stalled decode error %v is not an IO error", err)
	}
	var re *t2.ReadError
	if !errors.As(err, &re) || !re.Transient {
		t.Fatalf("deadline expiry %v not classified transient", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("decode took %v; the deadline did not bound the stall", elapsed)
	}
}

// FuzzDecodeFlakySource drives resilient and strict decodes of a valid
// stream through arbitrary fault shapes: any (selector, fault kind, recovery)
// combination may fail the decode, but must never panic and never return a
// nil image with a nil error.
func FuzzDecodeFlakySource(f *testing.F) {
	cs, _, err := Encode(raster.Synthetic(48, 48, 9), Options{Kernel: dwt.Rev53, TileW: 24, TileH: 24})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), uint32(0), uint8(0), uint8(0))
	f.Add(uint32(1), uint32(0), uint8(1), uint8(2))     // fail-nth, permanent
	f.Add(uint32(100), uint32(500), uint8(2), uint8(1)) // span, transient
	f.Add(uint32(200), uint32(64), uint8(6), uint8(3))  // span, transient short-read
	f.Add(uint32(3), uint32(0), uint8(5), uint8(0))     // fail-nth short-read, never heals
	bodies := faultinject.TileBodies(cs)
	for _, b := range bodies {
		f.Add(uint32(b.Off), uint32(b.Len), uint8(2), uint8(0))
	}
	f.Fuzz(func(t *testing.T, off, ln uint32, mode, rec uint8) {
		cfg := faultinject.FlakyConfig{
			Transient: mode&2 != 0,
			ShortRead: mode&4 != 0,
			Recover:   int(rec % 8),
		}
		if mode&1 != 0 {
			cfg.FailNth = int(off%64) + 1
		} else {
			cfg.FailSpan = faultinject.Span{Off: int(off) % len(cs), Len: int(ln) % (len(cs) + 1)}
		}
		src, _ := flakySource(cs, cfg, t2.RetryPolicy{Retries: 2})
		d := NewDecoder()
		defer d.Close()
		img, err := d.DecodePlanarSource(src, DecodeOptions{Resilient: true})
		if err == nil && img == nil {
			t.Fatal("resilient decode returned nil image and nil error")
		}
		src2, _ := flakySource(cs, cfg, t2.RetryPolicy{Retries: 2})
		d.DecodePlanarSource(src2, DecodeOptions{})
	})
}
