package jp2k

import (
	"fmt"

	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// reduceDim halves a dimension d times with the transform's ceil convention.
func reduceDim(n, d int) int {
	for i := 0; i < d; i++ {
		n = (n + 1) / 2
	}
	return n
}

// Decode reconstructs an image from a codestream produced by Encode. With
// DiscardLevels > 0 the result is the 1/2^n-scale image carried by the lower
// resolutions of the stream.
func Decode(data []byte, opts DecodeOptions) (*raster.Image, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	p, tiles, err := t2.ReadCodestream(data)
	if err != nil {
		return nil, err
	}
	nlayers := p.Layers
	if opts.MaxLayers > 0 && opts.MaxLayers < nlayers {
		nlayers = opts.MaxLayers
	}
	discard := opts.DiscardLevels
	if discard < 0 {
		discard = 0
	}
	if discard > p.Levels {
		discard = p.Levels
	}
	keepLevels := p.Levels - discard

	ntx, nty := p.NumTiles()
	if len(tiles) != ntx*nty {
		return nil, fmt.Errorf("jp2k: %d tile-parts for a %dx%d tile grid", len(tiles), ntx, nty)
	}
	// Reduced tile geometry: per-column widths and per-row heights, plus
	// prefix-sum origins in the reduced image.
	colW := make([]int, ntx+1)
	for tx := 0; tx < ntx; tx++ {
		x0 := tx * p.TileW
		x1 := min(x0+p.TileW, p.Width)
		colW[tx+1] = colW[tx] + reduceDim(x1-x0, discard)
	}
	rowH := make([]int, nty+1)
	for ty := 0; ty < nty; ty++ {
		y0 := ty * p.TileH
		y1 := min(y0+p.TileH, p.Height)
		rowH[ty+1] = rowH[ty] + reduceDim(y1-y0, discard)
	}
	out := raster.New(colW[ntx], rowH[nty])
	st := dwt.Strategy{VertMode: opts.VertMode, BlockWidth: opts.VertBlockWidth, Workers: opts.Workers}
	shift := int32(1) << uint(p.BitDepth-1)

	for ti, tdata := range tiles {
		tx, ty := ti%ntx, ti/ntx
		x0, y0 := tx*p.TileW, ty*p.TileH
		x1, y1 := min(x0+p.TileW, p.Width), min(y0+p.TileH, p.Height)
		tw, th := x1-x0, y1-y0
		rtw, rth := reduceDim(tw, discard), reduceDim(th, discard)

		bands := dwt.Subbands(tw, th, p.Levels)
		bb := make([]t2.BandBlocks, len(bands))
		for bi, b := range bands {
			g := t2.MakeGrid(b, p.CBW, p.CBH)
			bb[bi] = t2.BandBlocks{Grid: g, Mb: p.Mb[bi]}
		}
		decoded, _, err := t2.DecodeTilePackets(bb, p.Levels, nlayers, tdata)
		if err != nil {
			return nil, fmt.Errorf("jp2k: tile %d: %w", ti, err)
		}

		// Tier-1 decode each kept block in parallel, then scatter into the
		// coefficient plane. Bands of discarded resolutions were parsed
		// (the packet walk needs their headers) but are skipped here.
		type slot struct {
			bi   int
			rect t2.CBRect
			vals []int32
		}
		keepBand := func(bi int) bool {
			return bi == 0 || bands[bi].Level > discard
		}
		var slots []slot
		var slotDecoded []int // slot index -> global decoded-block index
		id := 0
		for bi := range bb {
			for _, r := range bb[bi].Grid.Rects {
				if keepBand(bi) {
					slots = append(slots, slot{bi: bi, rect: r})
					slotDecoded = append(slotDecoded, id)
				}
				id++
			}
		}
		errs := make([]error, len(slots))
		core.RunTasks(len(slots), opts.Workers, func(i int) {
			d := decoded[slotDecoded[i]]
			s := &slots[i]
			eb := &t1.EncodedBlock{
				W: s.rect.X1 - s.rect.X0, H: s.rect.Y1 - s.rect.Y0,
				Band:         bands[s.bi].Type,
				NumBitplanes: d.NumBitplanes,
				Data:         d.Data,
			}
			for k := 0; k < d.Passes; k++ {
				eb.Passes = append(eb.Passes, t1.Pass{Rate: len(d.Data)})
			}
			s.vals, errs[i] = t1.Decode(eb, d.Passes)
		})
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("jp2k: tile %d block %d: %w", ti, i, err)
			}
		}
		if p.ROIShift > 0 {
			for _, s := range slots {
				unscaleROI(s.vals, p.ROIShift)
			}
		}

		// Assemble the (reduced) coefficient plane, dequantize, inverse
		// transform with the kept levels only.
		tileIm := raster.New(rtw, rth)
		if p.Kernel == dwt.Rev53 {
			for _, s := range slots {
				b := bands[s.bi]
				w := s.rect.X1 - s.rect.X0
				for y := s.rect.Y0; y < s.rect.Y1; y++ {
					copy(tileIm.Pix[(b.Y0+y)*tileIm.Stride+b.X0+s.rect.X0:(b.Y0+y)*tileIm.Stride+b.X0+s.rect.X1],
						s.vals[(y-s.rect.Y0)*w:(y-s.rect.Y0+1)*w])
				}
			}
			dwt.Inverse53(tileIm, keepLevels, st)
		} else {
			fp := dwt.NewFPlane(rtw, rth)
			for _, s := range slots {
				b := bands[s.bi]
				w := s.rect.X1 - s.rect.X0
				sub := dwt.Subband{X0: b.X0 + s.rect.X0, Y0: b.Y0 + s.rect.Y0, X1: b.X0 + s.rect.X1, Y1: b.Y0 + s.rect.Y1}
				quant.Inverse(s.vals, w, sub, p.Steps[s.bi].Value(), fp.Data, fp.Stride, 1)
			}
			dwt.Inverse97(fp, keepLevels, st)
			tileIm = fp.ToImage()
		}
		ox, oy := colW[tx], rowH[ty]
		for y := 0; y < rth; y++ {
			src := tileIm.Row(y)
			dst := out.Pix[(oy+y)*out.Stride+ox : (oy+y)*out.Stride+ox+rtw]
			for x, v := range src {
				dst[x] = v + shift
			}
		}
	}
	return out, nil
}
