package jp2k

import (
	"pj2k/internal/core"
	"pj2k/internal/raster"
	"pj2k/internal/t2"
)

// reduceDim halves a dimension d times with the transform's ceil convention.
func reduceDim(n, d int) int {
	for i := 0; i < d; i++ {
		n = (n + 1) / 2
	}
	return n
}

// TileGrid returns the reduced tile geometry of a stream with the given
// parameters after discard resolution reductions, as prefix sums: colW[tx]
// is the x origin of tile column tx in the reduced image and colW[ntx] the
// reduced image width; likewise rowH for rows. Tiles reduce independently
// with the transform's ceil-halving convention (a tile's reduced width is
// not simply tileW>>discard), so consumers addressing the reduced grid —
// tile servers mapping window requests onto tiles — must use this geometry
// rather than deriving their own.
func TileGrid(p t2.Params, discard int) (colW, rowH []int) {
	return tileGridInto(nil, nil, p, discard)
}

// tileGridInto is TileGrid writing into recycled prefix-sum slices.
func tileGridInto(colW, rowH []int, p t2.Params, discard int) ([]int, []int) {
	ntx, nty := p.NumTiles()
	colW = grow(colW, ntx+1)
	colW[0] = 0
	for tx := 0; tx < ntx; tx++ {
		x0 := tx * p.TileW
		x1 := min(x0+p.TileW, p.Width)
		colW[tx+1] = colW[tx] + reduceDim(x1-x0, discard)
	}
	rowH = grow(rowH, nty+1)
	rowH[0] = 0
	for ty := 0; ty < nty; ty++ {
		y0 := ty * p.TileH
		y1 := min(y0+p.TileH, p.Height)
		rowH[ty+1] = rowH[ty] + reduceDim(y1-y0, discard)
	}
	return colW, rowH
}

// Decode reconstructs an image from a codestream produced by Encode. With
// DiscardLevels > 0 the result is the 1/2^n-scale image carried by the lower
// resolutions of the stream. It is a convenience wrapper over a throwaway
// Decoder dispatching on the shared default worker pool (one-shot calls
// neither spawn nor leak workers); callers decoding repeatedly (servers, viewers) should hold a
// Decoder to amortize its pooled state.
func Decode(data []byte, opts DecodeOptions) (*raster.Image, error) {
	return NewDecoderWithPool(core.Default()).Decode(data, opts)
}

// DecodeRegion decodes only the window of the image that intersects region
// (expressed in the output grid at opts.DiscardLevels), touching only the
// tiles the window overlaps. One-shot wrapper over a throwaway Decoder; see
// Decoder.DecodeRegion.
func DecodeRegion(data []byte, region Rect, opts DecodeOptions) (*raster.Image, error) {
	return NewDecoderWithPool(core.Default()).DecodeRegion(data, region, opts)
}

// DecodePlanar reconstructs every component of a codestream (inverting the
// inter-component transform when flagged). One-shot wrapper over a throwaway
// Decoder; see Decoder.DecodePlanar.
func DecodePlanar(data []byte, opts DecodeOptions) (*raster.Planar, error) {
	return NewDecoderWithPool(core.Default()).DecodePlanar(data, opts)
}

// DecodeRegionPlanar decodes only the window of a (possibly multi-component)
// image that intersects region. One-shot wrapper over a throwaway Decoder;
// see Decoder.DecodeRegionPlanar.
func DecodeRegionPlanar(data []byte, region Rect, opts DecodeOptions) (*raster.Planar, error) {
	return NewDecoderWithPool(core.Default()).DecodeRegionPlanar(data, region, opts)
}
