package dwt

import (
	"testing"

	"pj2k/internal/raster"
)

func TestForward53TimedMatchesUntimed(t *testing.T) {
	a := randomImage(96, 80, 41)
	b := a.Clone()
	tm := Forward53Timed(a, 3, Serial)
	Forward53(b, 3, Serial)
	if !raster.Equal(a, b) {
		t.Fatal("timed transform produced different output")
	}
	if tm.Horizontal < 0 || tm.Vertical < 0 || tm.Total() <= 0 {
		t.Fatalf("bad timings: %+v", tm)
	}
}

func TestForward97TimedMatchesUntimed(t *testing.T) {
	im := randomImage(96, 80, 42)
	a := FromImage(im)
	b := FromImage(im)
	tm := Forward97Timed(a, 3, Improved)
	Forward97(b, 3, Improved)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("timed 9/7 differs at %d", i)
		}
	}
	if tm.Total() <= 0 {
		t.Fatal("zero timing")
	}
}

func TestDirectionOnlyHelpers(t *testing.T) {
	// The direction-only helpers exist for the filtering microbenches; they
	// must touch the image (not be optimized away) and not panic on odd
	// geometry.
	im := randomImage(65, 33, 43)
	before := im.Clone()
	dV := VerticalOnly53(im, 2, Serial)
	if raster.Equal(im, before) {
		t.Fatal("vertical-only filtering left the image untouched")
	}
	im2 := randomImage(65, 33, 44)
	before2 := im2.Clone()
	dH := HorizontalOnly53(im2, 2, Serial)
	if raster.Equal(im2, before2) {
		t.Fatal("horizontal-only filtering left the image untouched")
	}
	if dV < 0 || dH < 0 {
		t.Fatal("negative durations")
	}
}
