package dwt

import "pj2k/internal/core"

// Scratch holds per-worker filtering buffers so repeated transforms perform
// no allocations in their level loops. The paper's threads keep private
// per-processor state; Scratch is that state for the Go implementation:
// worker w of a ParallelForID chunking uses only slot w, so no
// synchronization is needed. Buffers grow to the largest level's demand on
// first use (levels run largest first) and are retained across calls.
//
// A Scratch must only be shared by transforms that run sequentially with
// respect to each other; concurrent transforms (e.g. parallel tiles) need
// one Scratch each.
type Scratch struct {
	ws []scratchSlot
}

// scratchSlot is one worker's buffers. Two slots of each element type cover
// the worst case (the naive 9/7 vertical filter needs a gather column and a
// deinterleave buffer at once).
type scratchSlot struct {
	i32 [2][]int32
	f64 [2][]float64
}

// NewScratch returns scratch state for up to `workers` parallel workers
// (<= 0 selects GOMAXPROCS, matching Strategy.Workers semantics).
func NewScratch(workers int) *Scratch {
	workers = core.Workers(workers)
	return &Scratch{ws: make([]scratchSlot, workers)}
}

// i32 returns worker's int32 buffer for the given slot with length n,
// growing it if needed. A nil Scratch (or an out-of-range worker index, which
// only happens when a Scratch sized for fewer workers is passed) falls back
// to a fresh allocation, preserving correctness.
func (s *Scratch) i32(worker, slot, n int) []int32 {
	if s == nil || worker >= len(s.ws) {
		return make([]int32, n)
	}
	b := &s.ws[worker].i32[slot]
	if cap(*b) < n {
		*b = make([]int32, n)
	}
	return (*b)[:n]
}

// f64 is the float64 counterpart of i32.
func (s *Scratch) f64(worker, slot, n int) []float64 {
	if s == nil || worker >= len(s.ws) {
		return make([]float64, n)
	}
	b := &s.ws[worker].f64[slot]
	if cap(*b) < n {
		*b = make([]float64, n)
	}
	return (*b)[:n]
}
