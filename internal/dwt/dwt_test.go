package dwt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pj2k/internal/raster"
)

func randomImage(w, h int, seed int64) *raster.Image {
	im := raster.New(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Pix {
		im.Pix[i] = int32(rng.Intn(256)) - 128
	}
	return im
}

var testStrategies = []Strategy{
	{VertMode: VertNaive, Workers: 1},
	{VertMode: VertBlocked, BlockWidth: 8, Workers: 1},
	{VertMode: VertBlocked, BlockWidth: 32, Workers: 1},
	{VertMode: VertNaive, Workers: 4},
	{VertMode: VertBlocked, BlockWidth: 16, Workers: 4},
}

func TestForward53PerfectReconstruction(t *testing.T) {
	sizes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 9}, {16, 16}, {17, 31}, {64, 64}, {33, 65}, {128, 96}}
	for _, sz := range sizes {
		for levels := 0; levels <= 5; levels++ {
			for si, st := range testStrategies {
				im := randomImage(sz[0], sz[1], int64(levels*100+si))
				orig := im.Clone()
				Forward53(im, levels, st)
				Inverse53(im, levels, st)
				if !raster.Equal(im, orig) {
					t.Fatalf("5/3 PR failed: size %v levels %d strategy %d (%v)", sz, levels, si, st)
				}
			}
		}
	}
}

func TestForward53StrategiesBitIdentical(t *testing.T) {
	// All vertical modes and worker counts must produce the same transform,
	// or the paper's "parallelize without changing the output" claim breaks.
	im0 := randomImage(67, 43, 1)
	ref := im0.Clone()
	Forward53(ref, 3, testStrategies[0])
	for si, st := range testStrategies[1:] {
		im := im0.Clone()
		Forward53(im, 3, st)
		if !raster.Equal(im, ref) {
			t.Fatalf("strategy %d (%v) output differs from naive serial", si+1, st)
		}
	}
}

func TestForward53OnPaddedStride(t *testing.T) {
	// The width-padding cache fix must not change the transform.
	w, h := 64, 48
	src := randomImage(w, h, 2)
	ref := src.Clone()
	Forward53(ref, 3, Serial)

	pad := raster.NewPadded(w, h, w+24)
	for y := 0; y < h; y++ {
		copy(pad.Pix[y*pad.Stride:y*pad.Stride+w], src.Row(y))
	}
	Forward53(pad, 3, Serial)
	if !raster.Equal(pad.Clone(), ref) {
		t.Fatal("padded-stride transform differs from dense transform")
	}
}

func TestForward97PerfectReconstruction(t *testing.T) {
	sizes := [][2]int{{1, 1}, {2, 2}, {5, 9}, {16, 16}, {17, 31}, {64, 64}, {128, 96}}
	for _, sz := range sizes {
		for levels := 0; levels <= 5; levels++ {
			for si, st := range testStrategies {
				im := randomImage(sz[0], sz[1], int64(levels*100+si+7))
				p := FromImage(im)
				orig := append([]float64(nil), p.Data...)
				Forward97(p, levels, st)
				Inverse97(p, levels, st)
				for i := range p.Data {
					if math.Abs(p.Data[i]-orig[i]) > 1e-6 {
						t.Fatalf("9/7 PR failed at %d: got %g want %g (size %v levels %d strategy %d)",
							i, p.Data[i], orig[i], sz, levels, si)
					}
				}
			}
		}
	}
}

func TestForward97StrategiesMatch(t *testing.T) {
	im := randomImage(67, 43, 3)
	ref := FromImage(im)
	Forward97(ref, 3, testStrategies[0])
	for si, st := range testStrategies[1:] {
		p := FromImage(im)
		Forward97(p, 3, st)
		for i := range p.Data {
			if math.Abs(p.Data[i]-ref.Data[i]) > 1e-9 {
				t.Fatalf("strategy %d (%v) differs from naive serial at %d: %g vs %g",
					si+1, st, i, p.Data[i], ref.Data[i])
			}
		}
	}
}

func TestDWT53EnergyCompaction(t *testing.T) {
	// On a smooth natural image most energy must land in the LL band.
	im := raster.Synthetic(128, 128, 9)
	// Remove the mean so energy compares fairly.
	var mean int64
	for _, v := range im.Pix {
		mean += int64(v)
	}
	m := int32(mean / int64(len(im.Pix)))
	for i := range im.Pix {
		im.Pix[i] -= m
	}
	total := float64(0)
	for _, v := range im.Pix {
		total += float64(v) * float64(v)
	}
	Forward53(im, 3, Serial)
	// The transform is not orthonormal (lowpass DC gain 1), so weight each
	// band's energy by its synthesis norm to compare in the image domain.
	var llE, all float64
	for _, b := range Subbands(128, 128, 3) {
		w := BandNorm(Rev53, 3, b)
		var e float64
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				v := float64(im.At(x, y))
				e += v * v
			}
		}
		e *= w * w
		all += e
		if b.Type == LL {
			llE = e
		}
	}
	// Weighted total should approximate the image energy. The 5/3 pair is
	// biorthogonal rather than orthogonal, so allow a generous band.
	if all < 0.3*total || all > 3*total {
		t.Fatalf("weighted transform energy %.0f vs image energy %.0f; norms inconsistent", all, total)
	}
	// The LL band holds 1/64 of the samples; energy compaction should put
	// well over half the energy there for a natural image.
	if llE < 0.5*all {
		t.Fatalf("LL energy fraction %.3f too small; DWT not compacting", llE/all)
	}
}

func TestDWT97DCGain(t *testing.T) {
	// A constant image must transform to (almost) pure LL with unit DC gain
	// per level in the JPEG2000 normalization.
	p := NewFPlane(64, 64)
	for i := range p.Data {
		p.Data[i] = 100
	}
	Forward97(p, 3, Serial)
	bands := Subbands(64, 64, 3)
	ll := bands[0]
	for y := ll.Y0 + 1; y < ll.Y1-1; y++ {
		for x := ll.X0 + 1; x < ll.X1-1; x++ {
			if math.Abs(p.Data[y*p.Stride+x]-100) > 1e-6 {
				t.Fatalf("LL interior sample %g, want 100 (DC gain 1)", p.Data[y*p.Stride+x])
			}
		}
	}
	for _, b := range bands[1:] {
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				if math.Abs(p.Data[y*p.Stride+x]) > 1e-6 {
					t.Fatalf("%v sample %g, want 0 for constant input", b.Type, p.Data[y*p.Stride+x])
				}
			}
		}
	}
}

func TestSubbandsGeometry(t *testing.T) {
	bands := Subbands(64, 48, 3)
	if len(bands) != 10 {
		t.Fatalf("got %d bands", len(bands))
	}
	if bands[0].Type != LL || bands[0].X1 != 8 || bands[0].Y1 != 6 {
		t.Fatalf("LL band wrong: %+v", bands[0])
	}
	// Bands must tile the image exactly: total area matches, no overlap.
	area := 0
	covered := make([]bool, 64*48)
	for _, b := range bands {
		area += b.Width() * b.Height()
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				if covered[y*64+x] {
					t.Fatalf("band overlap at (%d,%d) in %+v", x, y, b)
				}
				covered[y*64+x] = true
			}
		}
	}
	if area != 64*48 {
		t.Fatalf("bands cover %d of %d samples", area, 64*48)
	}
}

func TestSubbandsOddSizes(t *testing.T) {
	// Odd dimensions: lowpass gets the extra sample at every level.
	bands := Subbands(5, 7, 2)
	ll := bands[0]
	if ll.X1 != 2 || ll.Y1 != 2 {
		t.Fatalf("LL of 5x7 @2 levels = %dx%d, want 2x2", ll.X1, ll.Y1)
	}
	area := 0
	for _, b := range bands {
		if b.Width() < 0 || b.Height() < 0 {
			t.Fatalf("negative band %+v", b)
		}
		area += b.Width() * b.Height()
	}
	if area != 35 {
		t.Fatalf("area %d != 35", area)
	}
}

func TestBandsOfResolution(t *testing.T) {
	levels := 3
	if got := BandsOfResolution(levels, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("r0: %v", got)
	}
	bands := Subbands(64, 64, levels)
	for r := 1; r <= levels; r++ {
		idx := BandsOfResolution(levels, r)
		wantLevel := levels - r + 1
		for _, i := range idx {
			if bands[i].Level != wantLevel {
				t.Fatalf("resolution %d includes band level %d, want %d", r, bands[i].Level, wantLevel)
			}
		}
	}
}

func TestBandNorms(t *testing.T) {
	for _, k := range []Kernel{Rev53, Irr97} {
		levels := 3
		bands := Subbands(64, 64, levels)
		var prevLL float64
		for _, b := range bands {
			n := BandNorm(k, levels, b)
			if n <= 0 || math.IsNaN(n) {
				t.Fatalf("%v %v norm = %g", k, b.Type, n)
			}
			if b.Type == LL {
				prevLL = n
			}
		}
		// Deeper lowpass synthesis vectors have larger norms: LL norm must
		// exceed the shallowest HH norm.
		hh1 := bands[len(bands)-1]
		if BandNorm(k, levels, hh1) >= prevLL {
			t.Fatalf("%v: HH1 norm %g >= LL norm %g", k, BandNorm(k, levels, hh1), prevLL)
		}
	}
}

func TestBandNorm97LLValue(t *testing.T) {
	// For the normalized 9/7, the 1-level LL synthesis norm is known to be
	// close to 1.9659 (the standard's energy-weight tables).
	b := Subbands(32, 32, 1)[0]
	n := BandNorm(Irr97, 1, b)
	if math.Abs(n-1.9659) > 0.05 {
		t.Fatalf("LL1 norm %g, want ~1.9659", n)
	}
}

func TestQuick53RoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64, lv uint8) bool {
		w, h := 1+int(w8%70), 1+int(h8%70)
		levels := int(lv % 6)
		im := randomImage(w, h, seed)
		orig := im.Clone()
		st := testStrategies[int(uint8(seed))%len(testStrategies)]
		Forward53(im, levels, st)
		Inverse53(im, levels, st)
		return raster.Equal(im, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuick97RoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64, lv uint8) bool {
		w, h := 1+int(w8%70), 1+int(h8%70)
		levels := int(lv % 6)
		im := randomImage(w, h, seed)
		p := FromImage(im)
		orig := append([]float64(nil), p.Data...)
		st := testStrategies[int(uint8(seed))%len(testStrategies)]
		Forward97(p, levels, st)
		Inverse97(p, levels, st)
		for i := range p.Data {
			if math.Abs(p.Data[i]-orig[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
