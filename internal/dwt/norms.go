package dwt

import (
	"math"
	"sync"
)

// Kernel selects the wavelet filter pair.
type Kernel int

const (
	Rev53 Kernel = iota // reversible 5/3 integer lifting (lossless)
	Irr97               // irreversible 9/7 float lifting (lossy)
)

func (k Kernel) String() string {
	if k == Rev53 {
		return "5/3"
	}
	return "9/7"
}

// BandNorm returns the L2 norm of the synthesis basis vectors of the given
// subband: the factor by which unit quantization error in that band inflates
// image-domain MSE. Rather than hard-coding tables, the norms are measured
// numerically by synthesizing a centered impulse per band, which keeps them
// consistent with this implementation's exact filter conventions. Results
// are cached per (kernel, levels).
func BandNorm(k Kernel, levels int, b Subband) float64 {
	norms := bandNorms(k, levels)
	if b.Type == LL {
		return norms[0]
	}
	// Bands are stored LL, then (HL,LH,HH) per level from deepest (levels)
	// to shallowest (1).
	base := 1 + 3*(levels-b.Level)
	return norms[base+int(b.Type-HL)]
}

type normKey struct {
	k      Kernel
	levels int
}

var (
	normMu    sync.Mutex
	normCache = map[normKey][]float64{}
)

func bandNorms(k Kernel, levels int) []float64 {
	normMu.Lock()
	defer normMu.Unlock()
	if v, ok := normCache[normKey{k, levels}]; ok {
		return v
	}
	// A plane large enough that the deepest band is at least 8x8, so the
	// centered impulse's synthesis footprint avoids the borders.
	n := 8 << uint(levels)
	bands := Subbands(n, n, levels)
	norms := make([]float64, len(bands))
	for i, b := range bands {
		p := NewFPlane(n, n)
		cx := (b.X0 + b.X1) / 2
		cy := (b.Y0 + b.Y1) / 2
		p.Data[cy*p.Stride+cx] = 1
		inverseFloat(p, levels, k)
		var sum2 float64
		for _, v := range p.Data {
			sum2 += v * v
		}
		norms[i] = math.Sqrt(sum2)
	}
	normCache[normKey{k, levels}] = norms
	return norms
}

// inverseFloat runs the float inverse transform with the selected kernel;
// for Rev53 it uses the exact (unrounded) 5/3 synthesis, which is what the
// norm of the underlying linear operator requires.
func inverseFloat(p *FPlane, levels int, k Kernel) {
	if k == Irr97 {
		Inverse97(p, levels, Strategy{VertMode: VertNaive, Workers: 1})
		return
	}
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(p.Width, p.Height, l)
		// Vertical then horizontal, mirroring Inverse53.
		if ch >= 2 {
			col := make([]float64, ch)
			buf := make([]float64, ch)
			for x := 0; x < cw; x++ {
				for y := 0; y < ch; y++ {
					col[y] = p.Data[y*p.Stride+x]
				}
				interleave97(col, buf)
				lift53InvFloat(buf)
				for y := 0; y < ch; y++ {
					p.Data[y*p.Stride+x] = buf[y]
				}
			}
		}
		if cw >= 2 {
			tmp := make([]float64, cw)
			for y := 0; y < ch; y++ {
				row := p.Data[y*p.Stride : y*p.Stride+cw]
				interleave97(row, tmp)
				copy(row, tmp)
				lift53InvFloat(row)
			}
		}
	}
}

// lift53InvFloat is the linearized 5/3 synthesis (no floor rounding).
func lift53InvFloat(buf []float64) {
	n := len(buf)
	if n < 2 {
		return
	}
	sn := (n + 1) / 2
	dn := n / 2
	for i := 0; i < sn; i++ {
		d0 := buf[2*clamp(i-1, dn)+1]
		d1 := buf[2*clamp(i, dn)+1]
		buf[2*i] -= (d0 + d1) / 4
	}
	for i := 0; i < dn; i++ {
		s1 := buf[2*clamp(i+1, sn)]
		buf[2*i+1] += (buf[2*i] + s1) / 2
	}
}
