package dwt

import (
	"fmt"

	"pj2k/internal/core"
	"pj2k/internal/raster"
)

// VertMode selects the vertical filtering implementation under study.
type VertMode int

const (
	// VertNaive is the original reference-implementation strategy: each
	// image column is gathered, filtered and scattered one at a time. For
	// power-of-two widths every sample of a column lands in the same cache
	// set of a low-associativity cache (the paper's pathology).
	VertNaive VertMode = iota
	// VertBlocked is the paper's improved filtering: several adjacent
	// columns are filtered concurrently within a single processor, so each
	// loaded cache line is fully consumed.
	VertBlocked
)

func (m VertMode) String() string {
	switch m {
	case VertNaive:
		return "naive"
	case VertBlocked:
		return "blocked"
	}
	return fmt.Sprintf("VertMode(%d)", int(m))
}

// Strategy bundles the knobs the paper varies: the vertical filtering mode,
// its column-block width, and the number of parallel workers.
type Strategy struct {
	VertMode   VertMode
	BlockWidth int // columns per block for VertBlocked; <=0 selects 32
	Workers    int // <=0 selects GOMAXPROCS
	// Scratch supplies reusable per-worker filtering buffers, eliminating
	// the per-level allocations of the hot loops. Nil keeps the original
	// allocate-per-call behavior. Must be sized (NewScratch) for at least
	// this strategy's worker count.
	Scratch *Scratch
	// Pool supplies resident workers for the level barriers, so each level's
	// horizontal/vertical dispatch costs channel operations instead of
	// goroutine spawns. Nil dispatches on the shared core.Default pool. The
	// chunking is identical either way; Workers bounds the width in both.
	Pool *core.Pool
}

// forID runs one level barrier: fn over [0, n) in at most st.Workers chunks
// on the strategy's pool (or the shared default pool).
func (st Strategy) forID(n int, fn func(worker, lo, hi int)) {
	if st.Pool != nil {
		st.Pool.ForIDMax(core.Workers(st.Workers), n, fn)
		return
	}
	core.ParallelForID(st.Workers, n, fn)
}

// DefaultBlockWidth is the column-block width used when Strategy.BlockWidth
// is unset; chosen by the ablation bench (8 int32 samples per 32-byte line,
// times a few lines of lookahead).
const DefaultBlockWidth = 32

func (st Strategy) blockWidth() int {
	if st.BlockWidth <= 0 {
		return DefaultBlockWidth
	}
	return st.BlockWidth
}

// Serial is the baseline strategy of the original reference implementations.
var Serial = Strategy{VertMode: VertNaive, Workers: 1}

// Improved is the paper's optimized serial strategy.
var Improved = Strategy{VertMode: VertBlocked, Workers: 1}

// levelDims returns the LL-region size after applying n halvings.
func levelDims(w, h, n int) (int, int) {
	for i := 0; i < n; i++ {
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return w, h
}

// Forward53 applies `levels` levels of the reversible 5/3 transform in place.
// Subbands land in the Mallat layout described by Subbands.
func Forward53(im *raster.Image, levels int, st Strategy) {
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(im.Width, im.Height, l)
		horizontalLevel53(im, cw, ch, st, true)
		verticalLevel53(im, cw, ch, st, true)
	}
}

// Inverse53 inverts Forward53.
func Inverse53(im *raster.Image, levels int, st Strategy) {
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(im.Width, im.Height, l)
		verticalLevel53(im, cw, ch, st, false)
		horizontalLevel53(im, cw, ch, st, false)
	}
}

// horizontalLevel53 filters the rows of the cw x ch LL region.
func horizontalLevel53(im *raster.Image, cw, ch int, st Strategy, fwd bool) {
	if cw < 2 {
		return
	}
	st.forID(ch, func(worker, lo, hi int) {
		tmp := st.Scratch.i32(worker, 0, cw)
		for y := lo; y < hi; y++ {
			row := im.Pix[y*im.Stride : y*im.Stride+cw]
			if fwd {
				lift53Fwd(row)
				deinterleave53(row, tmp)
				copy(row, tmp)
			} else {
				interleave53(row, tmp)
				copy(row, tmp)
				lift53Inv(row)
			}
		}
	})
}

// verticalLevel53 filters the columns of the cw x ch LL region using the
// strategy's vertical mode.
func verticalLevel53(im *raster.Image, cw, ch int, st Strategy, fwd bool) {
	if ch < 2 {
		return
	}
	switch st.VertMode {
	case VertNaive:
		st.forID(cw, func(worker, lo, hi int) {
			col := st.Scratch.i32(worker, 0, ch)
			for x := lo; x < hi; x++ {
				// Gather the column with strided reads (the original
				// implementations' access pattern).
				for y := 0; y < ch; y++ {
					col[y] = im.Pix[y*im.Stride+x]
				}
				if fwd {
					lift53Fwd(col)
					sn := (ch + 1) / 2
					for i := 0; i < sn; i++ {
						im.Pix[i*im.Stride+x] = col[2*i]
					}
					for i := 0; i < ch/2; i++ {
						im.Pix[(sn+i)*im.Stride+x] = col[2*i+1]
					}
				} else {
					buf := st.Scratch.i32(worker, 1, ch)
					interleave53(col, buf)
					lift53Inv(buf)
					for y := 0; y < ch; y++ {
						im.Pix[y*im.Stride+x] = buf[y]
					}
				}
			}
		})
	case VertBlocked:
		// Block bi covers columns [bi*width, min((bi+1)*width, cw)): computed
		// arithmetically instead of materializing a range slice per level.
		width := st.blockWidth()
		nblocks := (cw + width - 1) / width
		bw := width
		if bw > cw {
			bw = cw
		}
		st.forID(nblocks, func(worker, lo, hi int) {
			tmp := st.Scratch.i32(worker, 0, bw*ch)
			for bi := lo; bi < hi; bi++ {
				x0 := bi * width
				x1 := min(x0+width, cw)
				if fwd {
					vertBlockFwd53(im, x0, x1, ch, tmp)
				} else {
					vertBlockInv53(im, x0, x1, ch, tmp)
				}
			}
		})
	default:
		panic("dwt: unknown vertical mode")
	}
}

// vertBlockFwd53 lifts the columns [x0,x1) over rows [0,ch) in place,
// sweeping row-wise so adjacent columns share cache lines, then deinterleaves
// the rows through tmp.
func vertBlockFwd53(im *raster.Image, x0, x1, ch int, tmp []int32) {
	pix, stride := im.Pix, im.Stride
	sn := (ch + 1) / 2
	dn := ch / 2
	// Predict: odd row 2i+1 -= (row 2i + row 2*min(i+1,sn-1)) >> 1.
	for i := 0; i < dn; i++ {
		rd := (2*i + 1) * stride
		rs0 := 2 * i * stride
		rs1 := 2 * clamp(i+1, sn) * stride
		for x := x0; x < x1; x++ {
			pix[rd+x] -= (pix[rs0+x] + pix[rs1+x]) >> 1
		}
	}
	// Update: even row 2i += (odd clamp(i-1) + odd clamp(i) + 2) >> 2.
	for i := 0; i < sn; i++ {
		rs := 2 * i * stride
		rd0 := (2*clamp(i-1, dn) + 1) * stride
		rd1 := (2*clamp(i, dn) + 1) * stride
		for x := x0; x < x1; x++ {
			pix[rs+x] += (pix[rd0+x] + pix[rd1+x] + 2) >> 2
		}
	}
	deinterleaveRows53(im, x0, x1, ch, tmp)
}

// vertBlockInv53 inverts vertBlockFwd53.
func vertBlockInv53(im *raster.Image, x0, x1, ch int, tmp []int32) {
	interleaveRows53(im, x0, x1, ch, tmp)
	pix, stride := im.Pix, im.Stride
	sn := (ch + 1) / 2
	dn := ch / 2
	for i := 0; i < sn; i++ {
		rs := 2 * i * stride
		rd0 := (2*clamp(i-1, dn) + 1) * stride
		rd1 := (2*clamp(i, dn) + 1) * stride
		for x := x0; x < x1; x++ {
			pix[rs+x] -= (pix[rd0+x] + pix[rd1+x] + 2) >> 2
		}
	}
	for i := 0; i < dn; i++ {
		rd := (2*i + 1) * stride
		rs0 := 2 * i * stride
		rs1 := 2 * clamp(i+1, sn) * stride
		for x := x0; x < x1; x++ {
			pix[rd+x] += (pix[rs0+x] + pix[rs1+x]) >> 1
		}
	}
}

// deinterleaveRows53 moves even rows to the top half and odd rows to the
// bottom half for columns [x0,x1), via tmp (size >= (x1-x0)*ch).
func deinterleaveRows53(im *raster.Image, x0, x1, ch int, tmp []int32) {
	w := x1 - x0
	sn := (ch + 1) / 2
	for i := 0; i < sn; i++ {
		copy(tmp[i*w:(i+1)*w], im.Pix[2*i*im.Stride+x0:2*i*im.Stride+x1])
	}
	for i := 0; i < ch/2; i++ {
		copy(tmp[(sn+i)*w:(sn+i+1)*w], im.Pix[(2*i+1)*im.Stride+x0:(2*i+1)*im.Stride+x1])
	}
	for y := 0; y < ch; y++ {
		copy(im.Pix[y*im.Stride+x0:y*im.Stride+x1], tmp[y*w:(y+1)*w])
	}
}

// interleaveRows53 is the inverse of deinterleaveRows53.
func interleaveRows53(im *raster.Image, x0, x1, ch int, tmp []int32) {
	w := x1 - x0
	sn := (ch + 1) / 2
	for y := 0; y < ch; y++ {
		copy(tmp[y*w:(y+1)*w], im.Pix[y*im.Stride+x0:y*im.Stride+x1])
	}
	for i := 0; i < sn; i++ {
		copy(im.Pix[2*i*im.Stride+x0:2*i*im.Stride+x1], tmp[i*w:(i+1)*w])
	}
	for i := 0; i < ch/2; i++ {
		copy(im.Pix[(2*i+1)*im.Stride+x0:(2*i+1)*im.Stride+x1], tmp[(sn+i)*w:(sn+i+1)*w])
	}
}
