package dwt

import (
	"pj2k/internal/raster"
)

// FPlane is a float64 sample plane used by the irreversible 9/7 path.
type FPlane struct {
	Width  int
	Height int
	Stride int
	Data   []float64
}

// NewFPlane allocates a dense float plane.
func NewFPlane(w, h int) *FPlane {
	return &FPlane{Width: w, Height: h, Stride: w, Data: make([]float64, w*h)}
}

// FromImage converts an integer image into a float plane (no level shift).
func FromImage(im *raster.Image) *FPlane {
	return FromImageReuse(nil, im)
}

// FromImageReuse is FromImage writing into p when its backing storage is
// large enough, so pooled callers avoid reallocating the plane every encode.
// A nil (or too small) p is replaced by a fresh plane; the used plane is
// returned either way.
func FromImageReuse(p *FPlane, im *raster.Image) *FPlane {
	if p == nil || cap(p.Data) < im.Width*im.Height {
		p = NewFPlane(im.Width, im.Height)
	} else {
		p.Width, p.Height, p.Stride = im.Width, im.Height, im.Width
		p.Data = p.Data[:im.Width*im.Height]
	}
	for y := 0; y < im.Height; y++ {
		row := im.Row(y)
		out := p.Data[y*p.Stride : y*p.Stride+p.Width]
		for x, v := range row {
			out[x] = float64(v)
		}
	}
	return p
}

// ToImage rounds the plane into an integer image.
func (p *FPlane) ToImage() *raster.Image {
	im := raster.New(p.Width, p.Height)
	for y := 0; y < p.Height; y++ {
		src := p.Data[y*p.Stride : y*p.Stride+p.Width]
		row := im.Row(y)
		for x, v := range src {
			if v >= 0 {
				row[x] = int32(v + 0.5)
			} else {
				row[x] = int32(v - 0.5)
			}
		}
	}
	return im
}

// Forward97 applies `levels` levels of the irreversible 9/7 transform in
// place, producing the Mallat layout.
func Forward97(p *FPlane, levels int, st Strategy) {
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(p.Width, p.Height, l)
		horizontalLevel97(p, cw, ch, st, true)
		verticalLevel97(p, cw, ch, st, true)
	}
}

// Inverse97 inverts Forward97.
func Inverse97(p *FPlane, levels int, st Strategy) {
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(p.Width, p.Height, l)
		verticalLevel97(p, cw, ch, st, false)
		horizontalLevel97(p, cw, ch, st, false)
	}
}

func horizontalLevel97(p *FPlane, cw, ch int, st Strategy, fwd bool) {
	if cw < 2 {
		return
	}
	st.forID(ch, func(worker, lo, hi int) {
		tmp := st.Scratch.f64(worker, 0, cw)
		for y := lo; y < hi; y++ {
			row := p.Data[y*p.Stride : y*p.Stride+cw]
			if fwd {
				lift97Fwd(row)
				deinterleave97(row, tmp)
				copy(row, tmp)
			} else {
				interleave97(row, tmp)
				copy(row, tmp)
				lift97Inv(row)
			}
		}
	})
}

func verticalLevel97(p *FPlane, cw, ch int, st Strategy, fwd bool) {
	if ch < 2 {
		return
	}
	switch st.VertMode {
	case VertNaive:
		st.forID(cw, func(worker, lo, hi int) {
			col := st.Scratch.f64(worker, 0, ch)
			buf := st.Scratch.f64(worker, 1, ch)
			for x := lo; x < hi; x++ {
				for y := 0; y < ch; y++ {
					col[y] = p.Data[y*p.Stride+x]
				}
				if fwd {
					lift97Fwd(col)
					deinterleave97(col, buf)
				} else {
					interleave97(col, buf)
					lift97Inv(buf)
				}
				for y := 0; y < ch; y++ {
					p.Data[y*p.Stride+x] = buf[y]
				}
			}
		})
	case VertBlocked:
		// Block bi covers columns [bi*width, min((bi+1)*width, cw)): computed
		// arithmetically instead of materializing a range slice per level.
		width := st.blockWidth()
		nblocks := (cw + width - 1) / width
		bw := width
		if bw > cw {
			bw = cw
		}
		st.forID(nblocks, func(worker, lo, hi int) {
			tmp := st.Scratch.f64(worker, 0, bw*ch)
			for bi := lo; bi < hi; bi++ {
				x0 := bi * width
				x1 := min(x0+width, cw)
				if fwd {
					vertBlockFwd97(p, x0, x1, ch, tmp)
				} else {
					vertBlockInv97(p, x0, x1, ch, tmp)
				}
			}
		})
	default:
		panic("dwt: unknown vertical mode")
	}
}

// liftRows97 applies one lifting step target[i] += c*(n0[i]+n1[i]) row-wise
// over the column block, for all step targets described by rows.
func vertBlockFwd97(p *FPlane, x0, x1, ch int, tmp []float64) {
	data, stride := p.Data, p.Stride
	sn := (ch + 1) / 2
	dn := ch / 2
	if dn == 0 {
		return
	}
	step := func(c float64, odd bool) {
		if odd { // update odd rows from even neighbours
			for i := 0; i < dn; i++ {
				rd := (2*i + 1) * stride
				rs0 := 2 * i * stride
				rs1 := 2 * clamp(i+1, sn) * stride
				for x := x0; x < x1; x++ {
					data[rd+x] += c * (data[rs0+x] + data[rs1+x])
				}
			}
		} else { // update even rows from odd neighbours
			for i := 0; i < sn; i++ {
				rs := 2 * i * stride
				rd0 := (2*clamp(i-1, dn) + 1) * stride
				rd1 := (2*clamp(i, dn) + 1) * stride
				for x := x0; x < x1; x++ {
					data[rs+x] += c * (data[rd0+x] + data[rd1+x])
				}
			}
		}
	}
	step(alpha97, true)
	step(beta97, false)
	step(gamma97, true)
	step(delta97, false)
	for i := 0; i < sn; i++ {
		r := 2 * i * stride
		for x := x0; x < x1; x++ {
			data[r+x] *= 1 / k97
		}
	}
	for i := 0; i < dn; i++ {
		r := (2*i + 1) * stride
		for x := x0; x < x1; x++ {
			data[r+x] *= k97
		}
	}
	deinterleaveRows97(p, x0, x1, ch, tmp)
}

func vertBlockInv97(p *FPlane, x0, x1, ch int, tmp []float64) {
	sn := (ch + 1) / 2
	dn := ch / 2
	if dn == 0 {
		return
	}
	interleaveRows97(p, x0, x1, ch, tmp)
	data, stride := p.Data, p.Stride
	for i := 0; i < sn; i++ {
		r := 2 * i * stride
		for x := x0; x < x1; x++ {
			data[r+x] *= k97
		}
	}
	for i := 0; i < dn; i++ {
		r := (2*i + 1) * stride
		for x := x0; x < x1; x++ {
			data[r+x] *= 1 / k97
		}
	}
	step := func(c float64, odd bool) {
		if odd {
			for i := 0; i < dn; i++ {
				rd := (2*i + 1) * stride
				rs0 := 2 * i * stride
				rs1 := 2 * clamp(i+1, sn) * stride
				for x := x0; x < x1; x++ {
					data[rd+x] -= c * (data[rs0+x] + data[rs1+x])
				}
			}
		} else {
			for i := 0; i < sn; i++ {
				rs := 2 * i * stride
				rd0 := (2*clamp(i-1, dn) + 1) * stride
				rd1 := (2*clamp(i, dn) + 1) * stride
				for x := x0; x < x1; x++ {
					data[rs+x] -= c * (data[rd0+x] + data[rd1+x])
				}
			}
		}
	}
	step(delta97, false)
	step(gamma97, true)
	step(beta97, false)
	step(alpha97, true)
}

func deinterleaveRows97(p *FPlane, x0, x1, ch int, tmp []float64) {
	w := x1 - x0
	sn := (ch + 1) / 2
	for i := 0; i < sn; i++ {
		copy(tmp[i*w:(i+1)*w], p.Data[2*i*p.Stride+x0:2*i*p.Stride+x1])
	}
	for i := 0; i < ch/2; i++ {
		copy(tmp[(sn+i)*w:(sn+i+1)*w], p.Data[(2*i+1)*p.Stride+x0:(2*i+1)*p.Stride+x1])
	}
	for y := 0; y < ch; y++ {
		copy(p.Data[y*p.Stride+x0:y*p.Stride+x1], tmp[y*w:(y+1)*w])
	}
}

func interleaveRows97(p *FPlane, x0, x1, ch int, tmp []float64) {
	w := x1 - x0
	sn := (ch + 1) / 2
	for y := 0; y < ch; y++ {
		copy(tmp[y*w:(y+1)*w], p.Data[y*p.Stride+x0:y*p.Stride+x1])
	}
	for i := 0; i < sn; i++ {
		copy(p.Data[2*i*p.Stride+x0:2*i*p.Stride+x1], tmp[i*w:(i+1)*w])
	}
	for i := 0; i < ch/2; i++ {
		copy(p.Data[(2*i+1)*p.Stride+x0:(2*i+1)*p.Stride+x1], tmp[(sn+i)*w:(sn+i+1)*w])
	}
}
