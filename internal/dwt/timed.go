package dwt

import (
	"time"

	"pj2k/internal/raster"
)

// Timings separates the horizontal and vertical filtering time of a
// multi-level transform — the quantities Figs. 7, 8, 10 and 11 of the paper
// plot.
type Timings struct {
	Horizontal time.Duration
	Vertical   time.Duration
}

// Total returns the summed filtering time.
func (t Timings) Total() time.Duration { return t.Horizontal + t.Vertical }

// Forward53Timed is Forward53 with per-direction timing.
func Forward53Timed(im *raster.Image, levels int, st Strategy) Timings {
	var tm Timings
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(im.Width, im.Height, l)
		t0 := time.Now()
		horizontalLevel53(im, cw, ch, st, true)
		t1 := time.Now()
		verticalLevel53(im, cw, ch, st, true)
		tm.Horizontal += t1.Sub(t0)
		tm.Vertical += time.Since(t1)
	}
	return tm
}

// Forward97Timed is Forward97 with per-direction timing.
func Forward97Timed(p *FPlane, levels int, st Strategy) Timings {
	var tm Timings
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(p.Width, p.Height, l)
		t0 := time.Now()
		horizontalLevel97(p, cw, ch, st, true)
		t1 := time.Now()
		verticalLevel97(p, cw, ch, st, true)
		tm.Horizontal += t1.Sub(t0)
		tm.Vertical += time.Since(t1)
	}
	return tm
}

// VerticalOnly53 runs only the vertical filtering of every level (horizontal
// structure is still applied to keep the data layout consistent is NOT done
// here — this is a microbenchmark helper that filters columns of the full
// image once per level region).
func VerticalOnly53(im *raster.Image, levels int, st Strategy) time.Duration {
	t0 := time.Now()
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(im.Width, im.Height, l)
		verticalLevel53(im, cw, ch, st, true)
	}
	return time.Since(t0)
}

// HorizontalOnly53 mirrors VerticalOnly53 for row filtering.
func HorizontalOnly53(im *raster.Image, levels int, st Strategy) time.Duration {
	t0 := time.Now()
	for l := 0; l < levels; l++ {
		cw, ch := levelDims(im.Width, im.Height, l)
		horizontalLevel53(im, cw, ch, st, true)
	}
	return time.Since(t0)
}
