// Package dwt implements the JPEG2000 wavelet transforms: the reversible 5/3
// integer lifting (lossless path) and the irreversible 9/7 float lifting
// (lossy path), over multiple decomposition levels, with the three vertical
// filtering strategies the paper studies: the original column-at-a-time
// filter, width padding, and the improved blocked filter that processes
// several adjacent columns concurrently inside one processor.
package dwt

// 9/7 lifting constants (ISO/IEC 15444-1, Table F.4 conventions).
const (
	alpha97 = -1.586134342059924
	beta97  = -0.052980118572961
	gamma97 = 0.882911075530934
	delta97 = 0.443506852043971
	k97     = 1.230174104914001
)

// sExt clamps a lowpass index for symmetric extension: for the 5/3 and 9/7
// lifting steps, mirroring the signal at even boundaries is equivalent to
// clamping neighbour indices into the valid range.
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// lift53Fwd applies the forward 5/3 lifting to an interleaved contiguous
// signal buf (even samples = lowpass positions). len(buf) >= 2.
func lift53Fwd(buf []int32) {
	n := len(buf)
	if n < 2 {
		return
	}
	sn := (n + 1) / 2 // lowpass count (even origin)
	dn := n / 2       // highpass count
	// Predict: d(i) -= (s(i) + s(i+1)) >> 1
	for i := 0; i < dn; i++ {
		s1 := buf[2*clamp(i+1, sn)]
		buf[2*i+1] -= (buf[2*i] + s1) >> 1
	}
	// Update: s(i) += (d(i-1) + d(i) + 2) >> 2
	for i := 0; i < sn; i++ {
		d0 := buf[2*clamp(i-1, dn)+1]
		d1 := buf[2*clamp(i, dn)+1]
		buf[2*i] += (d0 + d1 + 2) >> 2
	}
}

// lift53Inv inverts lift53Fwd.
func lift53Inv(buf []int32) {
	n := len(buf)
	if n < 2 {
		return
	}
	sn := (n + 1) / 2
	dn := n / 2
	for i := 0; i < sn; i++ {
		d0 := buf[2*clamp(i-1, dn)+1]
		d1 := buf[2*clamp(i, dn)+1]
		buf[2*i] -= (d0 + d1 + 2) >> 2
	}
	for i := 0; i < dn; i++ {
		s1 := buf[2*clamp(i+1, sn)]
		buf[2*i+1] += (buf[2*i] + s1) >> 1
	}
}

// lift97Fwd applies the forward 9/7 lifting (four steps plus scaling) to an
// interleaved contiguous signal.
func lift97Fwd(buf []float64) {
	n := len(buf)
	sn := (n + 1) / 2
	dn := n / 2
	if dn == 0 {
		return // single lowpass sample passes through
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] += alpha97 * (buf[2*i] + buf[2*clamp(i+1, sn)])
	}
	for i := 0; i < sn; i++ {
		buf[2*i] += beta97 * (buf[2*clamp(i-1, dn)+1] + buf[2*clamp(i, dn)+1])
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] += gamma97 * (buf[2*i] + buf[2*clamp(i+1, sn)])
	}
	for i := 0; i < sn; i++ {
		buf[2*i] += delta97 * (buf[2*clamp(i-1, dn)+1] + buf[2*clamp(i, dn)+1])
	}
	for i := 0; i < sn; i++ {
		buf[2*i] *= 1 / k97
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] *= k97
	}
}

// lift97Inv inverts lift97Fwd.
func lift97Inv(buf []float64) {
	n := len(buf)
	sn := (n + 1) / 2
	dn := n / 2
	if dn == 0 {
		return
	}
	for i := 0; i < sn; i++ {
		buf[2*i] *= k97
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] *= 1 / k97
	}
	for i := 0; i < sn; i++ {
		buf[2*i] -= delta97 * (buf[2*clamp(i-1, dn)+1] + buf[2*clamp(i, dn)+1])
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] -= gamma97 * (buf[2*i] + buf[2*clamp(i+1, sn)])
	}
	for i := 0; i < sn; i++ {
		buf[2*i] -= beta97 * (buf[2*clamp(i-1, dn)+1] + buf[2*clamp(i, dn)+1])
	}
	for i := 0; i < dn; i++ {
		buf[2*i+1] -= alpha97 * (buf[2*i] + buf[2*clamp(i+1, sn)])
	}
}

// deinterleave53 scatters an interleaved lifted buffer into low|high halves.
func deinterleave53(src, dst []int32) {
	n := len(src)
	sn := (n + 1) / 2
	for i := 0; i < sn; i++ {
		dst[i] = src[2*i]
	}
	for i := 0; i < n/2; i++ {
		dst[sn+i] = src[2*i+1]
	}
}

// interleave53 is the inverse of deinterleave53.
func interleave53(src, dst []int32) {
	n := len(src)
	sn := (n + 1) / 2
	for i := 0; i < sn; i++ {
		dst[2*i] = src[i]
	}
	for i := 0; i < n/2; i++ {
		dst[2*i+1] = src[sn+i]
	}
}

func deinterleave97(src, dst []float64) {
	n := len(src)
	sn := (n + 1) / 2
	for i := 0; i < sn; i++ {
		dst[i] = src[2*i]
	}
	for i := 0; i < n/2; i++ {
		dst[sn+i] = src[2*i+1]
	}
}

func interleave97(src, dst []float64) {
	n := len(src)
	sn := (n + 1) / 2
	for i := 0; i < sn; i++ {
		dst[2*i] = src[i]
	}
	for i := 0; i < n/2; i++ {
		dst[2*i+1] = src[sn+i]
	}
}
