package dwt

import "fmt"

// BandType identifies a subband orientation. The tier-1 context tables
// depend on it.
type BandType int

const (
	LL BandType = iota
	HL          // horizontally high-pass
	LH          // vertically high-pass
	HH
)

func (b BandType) String() string {
	switch b {
	case LL:
		return "LL"
	case HL:
		return "HL"
	case LH:
		return "LH"
	case HH:
		return "HH"
	}
	return fmt.Sprintf("BandType(%d)", int(b))
}

// Subband describes one subband's rectangle in the Mallat layout produced by
// the forward transforms. Level counts down from the shallowest (1) to the
// deepest (= total decomposition levels); the LL band carries the deepest
// level.
type Subband struct {
	Type   BandType
	Level  int
	X0, Y0 int // inclusive
	X1, Y1 int // exclusive
}

// Width returns the band's width in samples.
func (s Subband) Width() int { return s.X1 - s.X0 }

// Height returns the band's height in samples.
func (s Subband) Height() int { return s.Y1 - s.Y0 }

// Empty reports whether the band has no samples (possible for degenerate
// image sizes).
func (s Subband) Empty() bool { return s.X1 <= s.X0 || s.Y1 <= s.Y0 }

// Subbands enumerates the subbands of a w x h image after `levels`
// decomposition levels, in resolution order: LL_levels first, then for each
// level from the deepest to the shallowest its HL, LH, HH bands. This is the
// order tier-2 emits packets in.
func Subbands(w, h, levels int) []Subband {
	return SubbandsAppend(nil, w, h, levels)
}

// SubbandsAppend is Subbands appending into dst, so pooled callers can
// recycle the enumeration buffer (pass dst[:0]).
func SubbandsAppend(dst []Subband, w, h, levels int) []Subband {
	if levels == 0 {
		return append(dst, Subband{Type: LL, Level: 0, X1: w, Y1: h})
	}
	bands := dst
	llw, llh := levelDims(w, h, levels)
	bands = append(bands, Subband{Type: LL, Level: levels, X1: llw, Y1: llh})
	for l := levels; l >= 1; l-- {
		cw, ch := levelDims(w, h, l)   // LL region at this level
		pw, ph := levelDims(w, h, l-1) // parent region
		bands = append(bands,
			Subband{Type: HL, Level: l, X0: cw, Y0: 0, X1: pw, Y1: ch},
			Subband{Type: LH, Level: l, X0: 0, Y0: ch, X1: cw, Y1: ph},
			Subband{Type: HH, Level: l, X0: cw, Y0: ch, X1: pw, Y1: ph},
		)
	}
	return bands
}

// ResolutionCount returns the number of resolution levels (levels + 1).
func ResolutionCount(levels int) int { return levels + 1 }

// BandsOfResolution returns the indices into Subbands(w,h,levels) that belong
// to resolution r (r = 0 is the LL band alone).
func BandsOfResolution(levels, r int) []int {
	if r == 0 {
		return []int{0}
	}
	base := 1 + 3*(r-1)
	return []int{base, base + 1, base + 2}
}
