package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversRange(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			ParallelFor(p, n, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestParallelForBarrier(t *testing.T) {
	// ParallelFor must not return before all chunks complete.
	var done int32
	ParallelFor(8, 64, func(lo, hi int) {
		atomic.AddInt32(&done, int32(hi-lo))
	})
	if done != 64 {
		t.Fatalf("returned with %d of 64 items done", done)
	}
}

func TestStaggeredRoundRobin(t *testing.T) {
	assign := StaggeredRoundRobin(10, 3)
	if len(assign) != 3 {
		t.Fatalf("%d workers", len(assign))
	}
	if got := assign[0]; len(got) != 4 || got[0] != 0 || got[1] != 3 || got[2] != 6 || got[3] != 9 {
		t.Fatalf("worker 0 tasks %v", got)
	}
	// All tasks exactly once.
	seen := make([]bool, 10)
	for _, ts := range assign {
		for _, i := range ts {
			if seen[i] {
				t.Fatalf("task %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d unassigned", i)
		}
	}
}

func TestStaggeredRoundRobinEdgeCases(t *testing.T) {
	if got := StaggeredRoundRobin(2, 8); len(got) != 2 {
		t.Fatalf("more workers than tasks: %d lists", len(got))
	}
	if got := StaggeredRoundRobin(0, 4); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("zero tasks: %v", got)
	}
}

func TestRunTasksExecutesAll(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n := 37
		counts := make([]int32, n)
		RunTasks(n, p, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: task %d ran %d times", p, i, c)
			}
		}
	}
}

func TestQuickPartitionInvariants(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16 % 2000)
		p := 1 + int(p8%32)
		total := 0
		ParallelFor(1, 0, func(lo, hi int) {}) // degenerate must not panic
		assign := StaggeredRoundRobin(n, p)
		for _, ts := range assign {
			total += len(ts)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
