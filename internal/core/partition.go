// Package core implements the paper's parallelization strategy as a reusable
// library: static contiguous partitioning for the deterministic-workload
// wavelet transform (Sec. 3.2: "the deterministic workload allows a static
// load allocation"), a staggered round-robin scheduler for code-blocks (the
// load-balance fix for tier-1 coding), and a worker pool.
package core

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: w <= 0 selects GOMAXPROCS.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ParallelFor splits the index range [0, n) into at most p contiguous chunks
// and runs fn(lo, hi) for each chunk, using p-1 extra goroutines. It returns
// after all chunks complete (a barrier, as required between the vertical and
// horizontal filtering of each DWT level). With p == 1 or tiny n it runs
// inline with zero goroutine overhead.
func ParallelFor(p, n int, fn func(lo, hi int)) {
	ParallelForID(p, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ParallelForID is ParallelFor with the chunk's worker index passed to fn,
// so callers can hand each worker private scratch state (the paper's threads
// keep per-processor buffers for exactly this reason). Worker indices are
// dense in [0, min(p, n)).
func ParallelForID(p, n int, fn func(worker, lo, hi int)) {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := n / p
	rem := n % p
	lo := 0
	for i := 0; i < p; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// StaggeredRoundRobin assigns n tasks to p workers the way the paper assigns
// code-blocks to its thread pool: worker w receives tasks w, w+p, w+2p, ...
// Adjacent code-blocks have correlated cost (they cover neighbouring image
// regions), so striding by p spreads expensive regions across workers instead
// of giving one worker a contiguous run of hard blocks.
// The returned slice maps worker index to its task indices.
func StaggeredRoundRobin(n, p int) [][]int {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	out := make([][]int, p)
	for w := 0; w < p; w++ {
		for t := w; t < n; t += p {
			out[w] = append(out[w], t)
		}
	}
	return out
}

// BlockRanges splits [0, n) into blocks of the given width; used by the
// improved (blocked) vertical filtering to hand each worker whole column
// blocks. The final block may be short.
func BlockRanges(n, width int) [][2]int {
	if width <= 0 {
		width = n
	}
	var out [][2]int
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// RunTasks executes tasks under a staggered round-robin assignment on p
// workers. Each worker runs its tasks in sequence; workers run concurrently.
func RunTasks(n, p int, task func(i int)) {
	RunTasksID(n, p, func(_, i int) { task(i) })
}

// RunTasksID is RunTasks with the worker index passed to the task, enabling
// per-worker pooled state (reusable tier-1 coders, scratch arenas). Worker
// indices are dense in [0, min(p, n)). The staggered assignment is iterated
// arithmetically (worker w runs w, w+p, w+2p, ...) rather than materialized,
// so dispatch itself does not allocate.
func RunTasksID(n, p int, task func(worker, i int)) {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += p {
				task(w, i)
			}
		}(w)
	}
	wg.Wait()
}
