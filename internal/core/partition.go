// Package core implements the paper's parallelization strategy as a reusable
// library: static contiguous partitioning for the deterministic-workload
// wavelet transform (Sec. 3.2: "the deterministic workload allows a static
// load allocation"), a staggered round-robin scheduler for code-blocks (the
// load-balance fix for tier-1 coding), and a worker pool.
package core

import "runtime"

// Workers normalizes a worker-count request: w <= 0 selects GOMAXPROCS.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ParallelFor splits the index range [0, n) into at most p contiguous chunks
// and runs fn(lo, hi) for each chunk on the shared default pool's resident
// workers. It returns after all chunks complete (a barrier, as required
// between the vertical and horizontal filtering of each DWT level). With
// p == 1 or tiny n it runs inline with zero dispatch overhead.
func ParallelFor(p, n int, fn func(lo, hi int)) {
	Default().ForMax(Workers(p), n, fn)
}

// ParallelForID is ParallelFor with the chunk's worker index passed to fn,
// so callers can hand each worker private scratch state (the paper's threads
// keep per-processor buffers for exactly this reason). Worker indices are
// dense in [0, min(p, n)). One-shot wrapper over the shared default Pool;
// callers dispatching repeatedly should hold their own Pool.
func ParallelForID(p, n int, fn func(worker, lo, hi int)) {
	Default().ForIDMax(Workers(p), n, fn)
}

// StaggeredRoundRobin assigns n tasks to p workers the way the paper assigns
// code-blocks to its thread pool: worker w receives tasks w, w+p, w+2p, ...
// Adjacent code-blocks have correlated cost (they cover neighbouring image
// regions), so striding by p spreads expensive regions across workers instead
// of giving one worker a contiguous run of hard blocks.
// The returned slice maps worker index to its task indices.
func StaggeredRoundRobin(n, p int) [][]int {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	out := make([][]int, p)
	for w := 0; w < p; w++ {
		for t := w; t < n; t += p {
			out[w] = append(out[w], t)
		}
	}
	return out
}

// RunTasks executes tasks under a staggered round-robin assignment on p
// workers. Each worker runs its tasks in sequence; workers run concurrently.
func RunTasks(n, p int, task func(i int)) {
	RunTasksID(n, p, func(_, i int) { task(i) })
}

// RunTasksID is RunTasks with the worker index passed to the task, enabling
// per-worker pooled state (reusable tier-1 coders, scratch arenas). Worker
// indices are dense in [0, min(p, n)). The staggered assignment is iterated
// arithmetically (worker w runs w, w+p, w+2p, ...) rather than materialized,
// so dispatch itself does not allocate. One-shot wrapper over the shared
// default Pool; callers dispatching repeatedly should hold their own Pool.
func RunTasksID(n, p int, task func(worker, i int)) {
	Default().TasksIDMax(Workers(p), n, task)
}
