package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolForIDMatchesSpawn checks the pooled chunked barrier against the
// original spawn-per-call chunking for a sweep of (p, n): same dense worker
// ids, same chunk boundaries, every index covered exactly once.
func TestPoolForIDMatchesSpawn(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 33} {
			var mu sync.Mutex
			got := make(map[int][2]int) // worker -> chunk
			cover := make([]int, n)
			p.ForIDMax(workers, n, func(worker, lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := got[worker]; dup {
					t.Errorf("p=%d n=%d: worker %d ran two chunks", workers, n, worker)
				}
				got[worker] = [2]int{lo, hi}
				for i := lo; i < hi; i++ {
					cover[i]++
				}
			})
			q := workers
			if q > n {
				q = n
			}
			for i, c := range cover {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
			if n > 0 && len(got) != max(q, 1) {
				t.Fatalf("p=%d n=%d: %d workers ran, want %d", workers, n, len(got), max(q, 1))
			}
			// Chunk boundaries must match the historical contiguous split.
			chunk, rem := 0, 0
			if q > 0 {
				chunk, rem = n/q, n%q
			}
			for w, c := range got {
				if w < 0 || w >= max(q, 1) {
					t.Fatalf("p=%d n=%d: worker id %d out of [0,%d)", workers, n, w, q)
				}
				lo := w*chunk + min(w, rem)
				hi := lo + chunk
				if w < rem {
					hi++
				}
				if c != [2]int{lo, hi} {
					t.Fatalf("p=%d n=%d worker %d: chunk %v, want [%d,%d)", workers, n, w, c, lo, hi)
				}
			}
		}
	}
}

// TestPoolTasksIDStaggered checks that the pooled task dispatch preserves the
// staggered round-robin assignment: worker w runs exactly tasks w, w+q,
// w+2q, ... — the assignment the determinism gates depend on.
func TestPoolTasksIDStaggered(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 23
		owner := make([]int64, n)
		p.TasksIDMax(workers, n, func(worker, i int) {
			atomic.StoreInt64(&owner[i], int64(worker)+1)
		})
		q := workers
		if q > n {
			q = n
		}
		for i, w := range owner {
			if w == 0 {
				t.Fatalf("p=%d: task %d never ran", workers, i)
			}
			if int(w-1) != i%q {
				t.Fatalf("p=%d: task %d ran on worker %d, want %d", workers, i, w-1, i%q)
			}
		}
	}
}

// TestPoolCloseJoinsWorkers is the goroutine-leak gate: after Close returns,
// every resident worker the pool spawned has exited.
func TestPoolCloseJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	var ran atomic.Int64
	p.TasksID(64, func(_, _ int) { ran.Add(1) })
	if ran.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", ran.Load())
	}
	p.Close()
	p.Close() // idempotent
	// NumGoroutine is racy against unrelated runtime goroutines; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("%d goroutines after Close, started with %d", n, before)
	}
	// A never-started pool closes without having spawned anything.
	NewPool(4).Close()
}

// TestPoolSteadyStateAllocs caps the allocation cost of a warm dispatch: the
// batch recycles through the pool's free list and the shares travel by
// channel, so a dispatch allocates at most the caller's closure (hoisted out
// here, hence the budget of ~zero; 1 tolerates a GC-cleared free list).
func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	task := func(worker, i int) { sink.Add(int64(worker + i)) }
	rng := func(worker, lo, hi int) { sink.Add(int64(worker + hi - lo)) }
	p.TasksID(16, task) // warm the free list and spawn the workers
	p.ForID(16, rng)
	if avg := testing.AllocsPerRun(100, func() { p.TasksID(16, task) }); avg > 1 {
		t.Errorf("TasksID steady state: %.1f allocs/op, want <= 1", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.ForID(16, rng) }); avg > 1 {
		t.Errorf("ForID steady state: %.1f allocs/op, want <= 1", avg)
	}
}

// TestPoolConcurrentDispatch hammers one pool from many goroutines at once —
// the serve-layer shape, where every request fans its tile decodes into the
// server's shared pool. Run under -race this is the data-race gate for the
// dispatch machinery itself.
func TestPoolConcurrentDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const requests = 16
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				n := 1 + (r+round)%13
				got := make([]int64, n)
				p.TasksIDMax(1+r%5, n, func(worker, i int) {
					atomic.AddInt64(&got[i], 1)
				})
				for i, c := range got {
					if c != 1 {
						t.Errorf("request %d round %d: task %d ran %d times", r, round, i, c)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestPoolSaturatedNestedDispatch floods a tiny pool with far more
// concurrent nested dispatches than its work queue can buffer. This is the
// regression test for an enqueue deadlock: a dispatcher that blocks sending
// shares into a full channel (instead of helping drain it) wedges the whole
// pool once every resident worker is itself stuck in a nested send.
func TestPoolSaturatedNestedDispatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const clients = 300
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.TasksIDMax(4, 6, func(_, _ int) {
					p.ForIDMax(3, 5, func(_, lo, hi int) {
						total.Add(int64(hi - lo))
					})
				})
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("saturated nested dispatch deadlocked")
	}
	if total.Load() != clients*6*5 {
		t.Fatalf("covered %d indices, want %d", total.Load(), clients*6*5)
	}
}

// TestPoolNestedDispatch exercises the encoder's shape — an outer unit-level
// dispatch whose tasks run inner level barriers on the same pool — at widths
// that oversubscribe the residents, proving the helping waiter makes nested
// dispatch deadlock-free.
func TestPoolNestedDispatch(t *testing.T) {
	p := NewPool(2) // smaller than the dispatch widths below
	defer p.Close()
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.TasksIDMax(4, 8, func(worker, i int) {
			p.ForIDMax(4, 12, func(_, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested dispatch deadlocked")
	}
	if total.Load() != 8*12 {
		t.Fatalf("nested tasks covered %d indices, want %d", total.Load(), 8*12)
	}
}

// TestPoolStats checks the dispatch gauges: inline short-circuits (q <= 1)
// move nothing, real barriers count once each with nonzero cumulative wait,
// and in-flight returns to zero once every barrier completes.
func TestPoolStats(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	if s := p.Stats(); s.Workers != 4 || s.Dispatches != 0 || s.InFlight != 0 || s.WaitNanos != 0 {
		t.Fatalf("fresh pool stats = %+v, want zeros with 4 workers", s)
	}

	p.ForIDMax(1, 100, func(_, _, _ int) {}) // inline path: no barrier
	if s := p.Stats(); s.Dispatches != 0 {
		t.Fatalf("inline dispatch moved the barrier counter: %+v", s)
	}

	const barriers = 5
	for i := 0; i < barriers; i++ {
		p.ForID(64, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				_ = j * j
			}
		})
	}
	s := p.Stats()
	if s.Dispatches != barriers {
		t.Errorf("dispatches = %d, want %d", s.Dispatches, barriers)
	}
	if s.InFlight != 0 {
		t.Errorf("in-flight = %d after all barriers returned, want 0", s.InFlight)
	}
	if s.WaitNanos <= 0 {
		t.Errorf("wait nanos = %d, want > 0", s.WaitNanos)
	}

	// A barrier observed mid-flight shows up in InFlight.
	gate := make(chan struct{})
	seen := make(chan PoolStats, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.TasksIDMax(2, 2, func(_, i int) {
			if i == 0 {
				seen <- p.Stats()
			}
			<-gate
		})
	}()
	got := <-seen
	if got.InFlight != 1 {
		t.Errorf("mid-barrier in-flight = %d, want 1", got.InFlight)
	}
	close(gate)
	wg.Wait()
	if s := p.Stats(); s.Dispatches != barriers+1 || s.InFlight != 0 {
		t.Errorf("final stats = %+v, want %d dispatches and 0 in flight", s, barriers+1)
	}
}
