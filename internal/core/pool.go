package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a persistent set of worker goroutines executing the package's
// dispatch shapes — chunked parallel-for barriers and staggered round-robin
// task sets — without the per-call fork/join of spawning goroutines. The
// paper's thread pool is created once per process and reused for every stage
// of every image; Pool is that object: encoders, decoders and the tile server
// each hold one (or share one) across calls, so steady-state dispatch costs a
// few channel operations instead of goroutine spawns.
//
// Worker identity is per dispatch, not per goroutine: each dispatch of width
// q hands out dense ids in [0, q) to whichever resident workers claim its
// shares, so callers can index per-worker scratch exactly as they did with
// spawn-per-call dispatch, and the task-to-id assignment (worker w runs tasks
// w, w+q, w+2q, ...) is byte-for-byte the one ParallelForID/RunTasksID used —
// pooling cannot perturb deterministic output.
//
// Dispatches may overlap freely (a server fans out many requests over one
// Pool) and may nest (a unit-level dispatch whose tasks dispatch DWT level
// barriers): a dispatcher waiting for its own batch helps drain the queue, so
// nested dispatch cannot deadlock even when every resident worker is busy.
type Pool struct {
	size   int
	work   chan *batch
	free   chan *batch // recycled batches; unlike sync.Pool, immune to GC purges
	start  sync.Once   // workers spawn on first non-inline dispatch
	wg     sync.WaitGroup
	closed atomic.Bool

	// Dispatch observability (see Stats): totals move once per dispatch
	// barrier, never per task, so a saturated pool pays a few atomic adds per
	// barrier for full queue visibility.
	dispatches atomic.Int64 // completed dispatch barriers
	inFlight   atomic.Int64 // barriers currently executing
	waitNanos  atomic.Int64 // cumulative wall time inside dispatch barriers
}

// PoolStats is a point-in-time view of a pool's dispatch activity — the
// queue-depth/in-flight/dispatch-wait gauges the serving layer exposes.
type PoolStats struct {
	Workers    int   // resident worker goroutines
	QueueDepth int   // batch shares queued and not yet claimed
	InFlight   int64 // dispatch barriers currently executing
	Dispatches int64 // dispatch barriers completed since creation
	WaitNanos  int64 // cumulative wall time spent inside dispatch barriers
}

// Stats snapshots the pool's dispatch gauges. Safe to call concurrently with
// dispatches; the fields are independently atomic (a snapshot is not a
// consistent cut, which monitoring does not need).
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    p.size,
		QueueDepth: len(p.work),
		InFlight:   p.inFlight.Load(),
		Dispatches: p.dispatches.Load(),
		WaitNanos:  p.waitNanos.Load(),
	}
}

// batch is one dispatch in flight: the function to run, the width q, the id
// allocator and the completion signal. Batches are recycled through the
// pool's free list (a buffered channel, so recycling survives GC cycles —
// a sync.Pool here leaked ~1 batch+channel alloc per GC back into the
// steady state), so warm dispatch does not allocate.
type batch struct {
	rng    func(worker, lo, hi int) // chunked barrier (ForID): chunk id of q
	task   func(worker, i int)      // strided tasks (TasksID): ids i, i+q, ...
	n, q   int
	next   atomic.Int64 // dense worker-id allocator
	undone atomic.Int64 // shares not yet finished
	done   chan struct{}
}

// run claims the next dense worker id and executes that id's share of the
// batch, signalling done when it is the last share to finish.
func (b *batch) run() {
	id := int(b.next.Add(1)) - 1
	if b.rng != nil {
		chunk, rem := b.n/b.q, b.n%b.q
		lo := id*chunk + min(id, rem)
		hi := lo + chunk
		if id < rem {
			hi++
		}
		b.rng(id, lo, hi)
	} else {
		for i := id; i < b.n; i += b.q {
			b.task(id, i)
		}
	}
	if b.undone.Add(-1) == 0 {
		b.done <- struct{}{}
	}
}

// NewPool returns a pool of the given size (<= 0 selects GOMAXPROCS). The
// worker goroutines start lazily on the first dispatch that needs them, so an
// unused pool costs nothing; Close joins whatever was started.
func NewPool(size int) *Pool {
	return &Pool{size: Workers(size), work: make(chan *batch, 64), free: make(chan *batch, 64)}
}

// getBatch pops a recycled batch or allocates a fresh one.
func (p *Pool) getBatch() *batch {
	select {
	case b := <-p.free:
		return b
	default:
		return &batch{done: make(chan struct{}, 1)}
	}
}

// putBatch recycles a finished batch, dropping it when the free list is full.
func (p *Pool) putBatch(b *batch) {
	b.rng, b.task = nil, nil
	select {
	case p.free <- b:
	default:
	}
}

// Size returns the number of resident workers.
func (p *Pool) Size() int { return p.size }

// Close joins every worker goroutine; it returns once all have exited. Close
// must not race with an in-flight dispatch, and dispatching on a closed pool
// panics. Closing a never-used or already-closed pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	p.start.Do(func() {}) // a later dispatch must not spawn workers
	close(p.work)
	p.wg.Wait()
}

func (p *Pool) spawn() {
	p.start.Do(func() {
		for i := 0; i < p.size; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for b := range p.work {
					b.run()
				}
			}()
		}
	})
}

// dispatch enqueues q-1 shares for the resident workers, runs one share on
// the calling goroutine, and waits for the rest — helping with other queued
// batches rather than blocking, which is what makes nested and concurrent
// dispatch on a saturated pool deadlock-free: both the enqueue (sendShare)
// and the wait below drain the queue instead of parking, so a thread parks
// only when the queue is momentarily empty and its own shares are running
// elsewhere.
func (p *Pool) dispatch(q, n int, rng func(worker, lo, hi int), task func(worker, i int)) {
	p.spawn()
	start := time.Now()
	p.inFlight.Add(1)
	defer func() {
		p.inFlight.Add(-1)
		p.dispatches.Add(1)
		p.waitNanos.Add(int64(time.Since(start)))
	}()
	b := p.getBatch()
	b.rng, b.task, b.n, b.q = rng, task, n, q
	b.next.Store(0)
	b.undone.Store(int64(q))
	for i := 1; i < q; i++ {
		p.sendShare(b)
	}
	b.run()
	for b.undone.Load() != 0 {
		select {
		case ob := <-p.work:
			ob.run()
		case <-b.done:
			p.putBatch(b)
			return
		}
	}
	<-b.done // consume the completion token before recycling
	p.putBatch(b)
}

// sendShare enqueues one share of b, running other queued shares whenever
// the channel is full. A plain blocking send here can deadlock a saturated
// pool: with every resident worker parked in a nested send and every
// dispatcher still in its enqueue loop, no goroutine would ever receive.
// This select never parks without progress — the send is ready whenever the
// queue has room, the receive is ready whenever it does not.
func (p *Pool) sendShare(b *batch) {
	for {
		select {
		case p.work <- b:
			return
		case ob := <-p.work:
			ob.run()
		}
	}
}

// ForID runs fn over [0, n) in at most Size contiguous chunks on the resident
// workers, returning after all complete (a barrier). Semantics match the
// package-level ParallelForID with p = Size.
func (p *Pool) ForID(n int, fn func(worker, lo, hi int)) {
	p.ForIDMax(p.size, n, fn)
}

// ForIDMax is ForID with the chunk count capped at w instead of the pool
// size (w <= 0 selects the pool size, mirroring Workers): the index range
// splits into q = min(w, n) chunks with dense worker ids in [0, q), exactly
// as ParallelForID(w, n, fn) splits it, so per-worker scratch sized for
// min(w, n) workers stays valid. When w exceeds the pool size the resident
// workers multiplex the extra shares; the chunking — and therefore any
// worker-indexed state use — is unchanged.
func (p *Pool) ForIDMax(w, n int, fn func(worker, lo, hi int)) {
	q := w
	if q <= 0 {
		q = p.size
	}
	if q > n {
		q = n
	}
	if q <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	p.dispatch(q, n, fn, nil)
}

// ForMax is ForIDMax without the worker id.
func (p *Pool) ForMax(w, n int, fn func(lo, hi int)) {
	p.ForIDMax(w, n, func(_, lo, hi int) { fn(lo, hi) })
}

// TasksID runs n tasks under the staggered round-robin assignment on the
// resident workers: worker w runs tasks w, w+q, w+2q, ... Semantics match the
// package-level RunTasksID with p = Size.
func (p *Pool) TasksID(n int, fn func(worker, i int)) {
	p.TasksIDMax(p.size, n, fn)
}

// TasksIDMax is TasksID with the assignment width capped at w (w <= 0
// selects the pool size): the staggered assignment uses stride q = min(w, n)
// with dense worker ids in [0, q), exactly as RunTasksID(n, w, fn) assigns
// tasks, whatever the pool size.
func (p *Pool) TasksIDMax(w, n int, fn func(worker, i int)) {
	q := w
	if q <= 0 {
		q = p.size
	}
	if q > n {
		q = n
	}
	if q <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.dispatch(q, n, nil, fn)
}

// defaultPool backs the package-level one-shot dispatch functions: one shared
// GOMAXPROCS-sized pool per process, created on first use and never closed
// (its parked workers are the process's resident parallelism, like the Go
// runtime's own worker threads).
var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the shared process-wide pool, creating it on first use.
// Callers that want an isolated worker set (for Close semantics or fairness)
// should hold their own NewPool.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}
