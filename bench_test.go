// Package pj2k's root benchmark harness: one bench per table/figure of the
// paper (see DESIGN.md's per-experiment index) plus the ablations DESIGN.md
// calls out and microbenchmarks of the substrates.
//
// Run everything with: go test -bench=. -benchmem
package pj2k

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"pj2k/internal/cachesim"
	"pj2k/internal/core"
	"pj2k/internal/dwt"
	"pj2k/internal/experiments"
	"pj2k/internal/jp2k"
	"pj2k/internal/jpegbase"
	"pj2k/internal/mq"
	"pj2k/internal/quant"
	"pj2k/internal/raster"
	"pj2k/internal/smp"
	"pj2k/internal/spiht"
	"pj2k/internal/t1"
	"pj2k/internal/t2"
)

// benchKpix keeps the host-measured benches affordable; the experiments
// binary sweeps the full size axis.
const benchKpix = 256

func benchImage() *raster.Image { return raster.KPixelImage(benchKpix, 1) }

// --- Fig. 2: compression timings per codec.

func BenchmarkFig2_JPEG(b *testing.B) {
	im := benchImage()
	b.SetBytes(int64(im.Width * im.Height))
	for i := 0; i < b.N; i++ {
		jpegbase.Encode(im, 75)
	}
}

func BenchmarkFig2_SPIHT(b *testing.B) {
	im := benchImage()
	b.SetBytes(int64(im.Width * im.Height))
	for i := 0; i < b.N; i++ {
		if _, err := spiht.Encode(im, 5, im.Width*im.Height/8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_JPEG2000(b *testing.B) {
	im := benchImage()
	b.SetBytes(int64(im.Width * im.Height))
	opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 1}
	for i := 0; i < b.N; i++ {
		if _, _, err := jp2k.Encode(im, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: serial stage analysis (the full pipeline, naive filtering).

func BenchmarkFig3_Stages(b *testing.B) {
	im := benchImage()
	opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 1, VertMode: dwt.VertNaive}
	for i := 0; i < b.N; i++ {
		if _, _, err := jp2k.Encode(im, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 4/5: tiling quality experiments (encode+decode round trip).

func BenchmarkFig4_Tiling(b *testing.B) {
	im := raster.Synthetic(512, 512, 4242)
	opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.125}, TileW: 128, TileH: 128}
	for i := 0; i < b.N; i++ {
		cs, _, err := jp2k.Encode(im, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jp2k.Decode(cs, jp2k.DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_RD(b *testing.B) {
	im := raster.Synthetic(512, 512, 4242)
	for i := 0; i < b.N; i++ {
		for _, bpp := range []float64{0.0625, 0.25, 1.0} {
			if _, _, err := jp2k.Encode(im, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figs. 6-13 and Sec. 3.3/3.4: the machine-model tables.

func BenchmarkFig6_Parallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6([]int{benchKpix})
	}
}

func BenchmarkFig7_Filtering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(1024)
	}
}

func BenchmarkFig8_FilterSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(1024)
	}
}

func BenchmarkFig9_Improved4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9([]int{benchKpix})
	}
}

func BenchmarkFig10_SGIFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10()
	}
}

func BenchmarkFig11_SGIFilterSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11()
	}
}

func BenchmarkFig12_TotalSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12(16384)
	}
}

func BenchmarkFig13_ClassicSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13(16384)
	}
}

func BenchmarkQuant_Parallel(b *testing.B) {
	// Real parallel quantization on the host (the Sec. 3.3 stage).
	const n = 2048
	src := make([]float64, n*n)
	for i := range src {
		src[i] = float64(i%4093)*0.31 - 600
	}
	dst := make([]int32, n*n)
	band := dwt.Subband{X0: 0, Y0: 0, X1: n, Y1: n}
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Forward(src, n, band, 1.0/512, dst, n, runtime.GOMAXPROCS(0))
	}
}

func BenchmarkAmdahl_Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Amdahl(benchKpix)
	}
}

// --- Ablations (DESIGN.md Sec. 5).

// BenchmarkAblation_BlockWidth sweeps the improved filter's column-block
// width on the host.
func BenchmarkAblation_BlockWidth(b *testing.B) {
	for _, bw := range []int{8, 16, 32, 64, 128} {
		b.Run(byName("bw", bw), func(b *testing.B) {
			im := raster.Synthetic(1024, 1024, 3)
			st := dwt.Strategy{VertMode: dwt.VertBlocked, BlockWidth: bw, Workers: 1}
			b.SetBytes(int64(im.Width * im.Height * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work := im.Clone()
				dwt.Forward53(work, 5, st)
			}
		})
	}
}

// BenchmarkAblation_PadVsBlocked compares the paper's two cache fixes in the
// cache model: width padding (keep the naive filter, change the stride)
// versus the blocked filter.
func BenchmarkAblation_PadVsBlocked(b *testing.B) {
	cfg := cachesim.NewPentiumII()
	m := smp.PentiumIIXeon(4)
	variants := []struct {
		name string
		spec smp.FilterSpec
	}{
		{"naive-pow2", smp.FilterSpec{W: 2048, H: 2048, Stride: 2048, Levels: 5, Kernel: dwt.Irr97, Mode: dwt.VertNaive}},
		{"naive-padded", smp.FilterSpec{W: 2048, H: 2048, Stride: 2048 + 8, Levels: 5, Kernel: dwt.Irr97, Mode: dwt.VertNaive}},
		{"blocked-pow2", smp.FilterSpec{W: 2048, H: 2048, Stride: 2048, Levels: 5, Kernel: dwt.Irr97, Mode: dwt.VertBlocked}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				last = m.SerialTime(smp.VerticalWork(cfg, v.spec))
			}
			b.ReportMetric(last*1e3, "model-ms")
		})
	}
}

// BenchmarkAblation_Scheduling compares the paper's staggered round-robin
// code-block assignment against contiguous chunking on a cost ramp.
func BenchmarkAblation_Scheduling(b *testing.B) {
	const n, p = 1024, 4
	times := make([]float64, n)
	for i := range times {
		times[i] = 1 + float64(i)/64 // spatially correlated block costs
	}
	contig := make([][]int, p)
	for w := 0; w < p; w++ {
		for k := w * n / p; k < (w+1)*n/p; k++ {
			contig[w] = append(contig[w], k)
		}
	}
	b.Run("contiguous", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = smp.Makespan(times, contig)
		}
		b.ReportMetric(mk, "makespan")
	})
	b.Run("staggered", func(b *testing.B) {
		var mk float64
		sched := core.StaggeredRoundRobin(n, p)
		for i := 0; i < b.N; i++ {
			mk = smp.Makespan(times, sched)
		}
		b.ReportMetric(mk, "makespan")
	})
}

// --- Real-goroutine parallel encode (bit-identical by construction; on a
// multi-core host this shows true wall-clock scaling). Each sub-bench holds
// one pooled jp2k.Encoder, so allocs/op reports the steady state the server
// workloads will see.

func BenchmarkEncodeWorkers(b *testing.B) {
	im := benchImage()
	for _, w := range []int{1, 2, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: w, VertMode: dwt.VertBlocked}
			enc := jp2k.NewEncoder()
			defer enc.Close()
			b.SetBytes(int64(im.Width * im.Height))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := enc.Encode(im, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeOneShot is the throwaway-Encoder path for comparison (every
// call pays the pool construction the pooled bench amortizes).
func BenchmarkEncodeOneShot(b *testing.B) {
	im := benchImage()
	opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: 4, VertMode: dwt.VertBlocked}
	b.SetBytes(int64(im.Width * im.Height))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := jp2k.Encode(im, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode sweeps the pooled decode path over worker counts and
// reduce levels; each sub-bench holds one pooled jp2k.Decoder, so allocs/op
// reports the steady state a tile server sees.
func BenchmarkDecode(b *testing.B) {
	im := benchImage()
	cs, _, err := jp2k.Encode(im, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		for _, reduce := range []int{0, 2} {
			b.Run(byName("w", w)+"/"+byName("reduce", reduce), func(b *testing.B) {
				dec := jp2k.NewDecoder()
				defer dec.Close()
				opts := jp2k.DecodeOptions{Workers: w, DiscardLevels: reduce, VertMode: dwt.VertBlocked}
				b.SetBytes(int64(im.Width * im.Height))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dec.Decode(cs, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDecodeOneShot is the throwaway-Decoder path for comparison (every
// call pays the pool construction the pooled bench amortizes).
func BenchmarkDecodeOneShot(b *testing.B) {
	im := benchImage()
	cs, _, err := jp2k.Encode(im, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(im.Width * im.Height))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jp2k.Decode(cs, jp2k.DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeStream compares the two codestream source kinds through the
// streaming decode path: resident bytes (mem) against a real file read via
// io.ReaderAt (readerat). The spread between the two is the price of leaving
// the stream on disk; allocs/op on the readerat variant watches the pooled
// per-tile read buffer (a broken pool shows up as allocs scaling with tiles).
func BenchmarkDecodeStream(b *testing.B) {
	im := benchImage()
	cs, _, err := jp2k.Encode(im, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 128, TileH: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.j2k")
	if err := os.WriteFile(path, cs, 0o644); err != nil {
		b.Fatal(err)
	}
	fileSrc, err := t2.OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer fileSrc.Close()
	for _, sk := range []struct {
		name string
		src  *t2.Source
	}{
		{"mem", t2.BytesSource(cs)},
		{"readerat", fileSrc},
	} {
		b.Run(sk.name, func(b *testing.B) {
			dec := jp2k.NewDecoder()
			defer dec.Close()
			opts := jp2k.DecodeOptions{Workers: 4, VertMode: dwt.VertBlocked}
			b.SetBytes(int64(im.Width * im.Height))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeSource(sk.src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeColor is the multi-component analogue of
// BenchmarkEncodeWorkers: a Csiz=3 MCT encode through one pooled Encoder, so
// allocs/op reports the steady state of the component x tile pipeline
// (ROADMAP budget: within 2x of 3x the single-component baseline).
func BenchmarkEncodeColor(b *testing.B) {
	im := benchImage()
	pl := raster.RGB(im, raster.Synthetic(im.Width, im.Height, 2), raster.Synthetic(im.Width, im.Height, 3))
	for _, w := range []int{1, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			opts := jp2k.Options{
				Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.0},
				Workers: w, VertMode: dwt.VertBlocked,
			}
			enc := jp2k.NewEncoder()
			defer enc.Close()
			b.SetBytes(int64(3 * im.Width * im.Height))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := enc.EncodePlanar(pl, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeColor decodes the Csiz=3 stream through one pooled Decoder:
// the steady state a color tile server sees.
func BenchmarkDecodeColor(b *testing.B) {
	im := benchImage()
	pl := raster.RGB(im, raster.Synthetic(im.Width, im.Height, 2), raster.Synthetic(im.Width, im.Height, 3))
	cs, _, err := jp2k.EncodePlanar(pl, jp2k.Options{Kernel: dwt.Irr97, MCT: true, LayerBPP: []float64{1.0}})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			dec := jp2k.NewDecoder()
			defer dec.Close()
			opts := jp2k.DecodeOptions{Workers: w, VertMode: dwt.VertBlocked}
			b.SetBytes(int64(3 * im.Width * im.Height))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodePlanar(cs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeRegion measures windowed decoding out of a tiled stream:
// the viewport case the serving subsystem is built around. The window spans
// 2x2 of the 4x4 tile grid, so roughly 1/4 of the stream is decoded.
func BenchmarkDecodeRegion(b *testing.B) {
	im := raster.Synthetic(1024, 1024, 77)
	cs, _, err := jp2k.Encode(im, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, TileW: 256, TileH: 256, Workers: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	region := jp2k.Rect{X0: 300, Y0: 300, X1: 700, Y1: 700}
	for _, w := range []int{1, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			dec := jp2k.NewDecoder()
			defer dec.Close()
			opts := jp2k.DecodeOptions{Workers: w, VertMode: dwt.VertBlocked}
			b.SetBytes(int64(region.Dx() * region.Dy()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeRegion(cs, region, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks.

func BenchmarkMQEncode(b *testing.B) {
	decisions := make([]int, 1<<16)
	for i := range decisions {
		decisions[i] = (i * 2654435761) >> 13 & 1
	}
	b.SetBytes(int64(len(decisions)) / 8)
	b.ReportAllocs()
	enc := mq.NewEncoder()
	for i := 0; i < b.N; i++ {
		enc.Init()
		var cx mq.Context
		for _, d := range decisions {
			enc.Encode(d, &cx)
		}
		enc.Flush()
	}
}

// BenchmarkMQDecode is the decode analogue of BenchmarkMQEncode: the same
// pseudo-random decision stream, decoded through one pooled mq.Decoder via
// Reset, so the Decode/byteIn fast paths are measured without per-segment
// allocation noise.
func BenchmarkMQDecode(b *testing.B) {
	decisions := make([]int, 1<<16)
	for i := range decisions {
		decisions[i] = (i * 2654435761) >> 13 & 1
	}
	enc := mq.NewEncoder()
	var cx mq.Context
	for _, d := range decisions {
		enc.Encode(d, &cx)
	}
	seg := append([]byte(nil), enc.Flush()...)
	// Sanity: the segment must decode back to the input decisions.
	dec := mq.NewDecoder(seg)
	cx = mq.Context{}
	for i, d := range decisions {
		if got := dec.Decode(&cx); got != d {
			b.Fatalf("decision %d: decoded %d, want %d", i, got, d)
		}
	}
	b.SetBytes(int64(len(decisions)) / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset(seg)
		cx = mq.Context{}
		for range decisions {
			dec.Decode(&cx)
		}
	}
}

func BenchmarkDWT53(b *testing.B) {
	for _, mode := range []dwt.VertMode{dwt.VertNaive, dwt.VertBlocked} {
		b.Run(mode.String(), func(b *testing.B) {
			im := raster.Synthetic(1024, 1024, 1)
			work := im.Clone()
			st := dwt.Strategy{VertMode: mode, Workers: 1, Scratch: dwt.NewScratch(1)}
			b.SetBytes(int64(im.Width * im.Height * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for y := 0; y < im.Height; y++ {
					copy(work.Row(y), im.Row(y))
				}
				b.StartTimer()
				dwt.Forward53(work, 5, st)
			}
		})
	}
}

func BenchmarkT1Block(b *testing.B) {
	data := make([]int32, 64*64)
	for i := range data {
		v := int32((i * 2654435761) % 512)
		if i%3 == 0 {
			v = -v
		}
		if i%5 != 0 {
			v = 0
		}
		data[i] = v
	}
	b.Run("oneshot", func(b *testing.B) {
		b.SetBytes(64 * 64 * 4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t1.Encode(data, 64, 64, 64, dwt.HH)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		co := t1.NewCoder()
		b.SetBytes(64 * 64 * 4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			co.Encode(data, 64, 64, 64, dwt.HH)
			co.Release()
		}
	})
	// Mode variants: the lazy (bypass) coder replaces MQ coding with raw
	// bit-stuffing for most SigProp/MagRef passes — the headline perf claim
	// of this PR's coder-options work. TERMALL adds per-pass flush cost on
	// top; the pair is what a speed-tuned encoder ships. The sparse 9-plane
	// block above shows the modest 8-bit-imagery win; the dense 14-plane
	// "deep" block is the use case the mode was designed for (high-bit-depth
	// imagery, where most passes sit below the bypass threshold) and carries
	// the headline >=1.3x bypass+termall vs MQ claim.
	modeCases := []struct {
		name  string
		modes t1.Modes
	}{
		{"mq", t1.Modes{}},
		{"bypass", t1.Modes{Bypass: true}},
		{"bypass+termall", t1.Modes{Bypass: true, TermAll: true}},
		{"termall", t1.Modes{TermAll: true}},
	}
	for _, mc := range modeCases[1:] {
		b.Run(mc.name, func(b *testing.B) {
			co := t1.NewCoder()
			co.Modes = mc.modes
			b.SetBytes(64 * 64 * 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				co.Encode(data, 64, 64, 64, dwt.HH)
				co.Release()
			}
		})
	}
	deep := make([]int32, 64*64)
	for i := range deep {
		v := int32((i * 2654435761) % 16384)
		if i%3 == 0 {
			v = -v
		}
		deep[i] = v
	}
	for _, mc := range modeCases[:3] {
		b.Run("deep/"+mc.name, func(b *testing.B) {
			co := t1.NewCoder()
			co.Modes = mc.modes
			b.SetBytes(64 * 64 * 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				co.Encode(deep, 64, 64, 64, dwt.HH)
				co.Release()
			}
		})
	}
}

// BenchmarkEncodeCoderModes and BenchmarkDecodeCoderModes measure the
// end-to-end wall-time effect of the coder options: same pooled pipeline as
// BenchmarkEncodeWorkers/BenchmarkDecode, with bypass+TERMALL turned on.
// The decode side additionally exercises the parallel in-block segment
// decode (raw segments have no cross-pass MQ state, so a block's bypassed
// passes decode concurrently on the worker pool when w>1).
func BenchmarkEncodeCoderModes(b *testing.B) {
	im := benchImage()
	coder := jp2k.CoderOptions{Bypass: true, TermAll: true}
	for _, w := range []int{1, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			opts := jp2k.Options{
				Kernel: dwt.Irr97, LayerBPP: []float64{1.0}, Workers: w,
				VertMode: dwt.VertBlocked, Coder: coder,
			}
			enc := jp2k.NewEncoder()
			defer enc.Close()
			b.SetBytes(int64(im.Width * im.Height))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := enc.Encode(im, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeCoderModes(b *testing.B) {
	im := benchImage()
	cs, _, err := jp2k.Encode(im, jp2k.Options{
		Kernel: dwt.Irr97, LayerBPP: []float64{1.0},
		Coder: jp2k.CoderOptions{Bypass: true, TermAll: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		b.Run(byName("w", w), func(b *testing.B) {
			dec := jp2k.NewDecoder()
			defer dec.Close()
			opts := jp2k.DecodeOptions{Workers: w, VertMode: dwt.VertBlocked}
			b.SetBytes(int64(im.Width * im.Height))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(cs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCacheSim(b *testing.B) {
	c := cachesim.New(cachesim.NewPentiumII())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) & 0xFFFFF)
	}
}

// helpers

func byName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
