module pj2k

go 1.24
