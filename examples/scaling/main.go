// Scaling example: the paper's experiment on your own machine. Encodes the
// same image with 1..NumCPU workers using real goroutines (verifying the
// stream is bit-identical every time), then prints the simulated-SMP speedup
// for the paper's 4-CPU Intel testbed for comparison.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"time"

	"pj2k/internal/cachesim"
	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/raster"
	"pj2k/internal/smp"
)

func main() {
	im := raster.Synthetic(1024, 1024, 99)
	opts := jp2k.Options{
		Kernel:   dwt.Irr97,
		LayerBPP: []float64{1.0},
		VertMode: dwt.VertBlocked,
	}

	fmt.Printf("host: %d CPU(s)\n\nreal goroutines (1024x1024 @ 1.0 bpp):\n", runtime.NumCPU())
	var ref []byte
	var serial time.Duration
	enc := jp2k.NewEncoder() // pooled pipeline: repeated encodes don't churn the allocator
	defer enc.Close()        // joins the encoder's resident workers
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		opts.Workers = w
		t0 := time.Now()
		cs, _, err := enc.Encode(im, opts)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(t0)
		if w == 1 {
			ref, serial = cs, el
		} else if !bytes.Equal(cs, ref) {
			log.Fatal("parallel encoding changed the codestream!")
		}
		fmt.Printf("  workers=%-2d  %8v  speedup %.2f\n", w, el.Round(time.Millisecond),
			serial.Seconds()/el.Seconds())
	}

	fmt.Println("\nsimulated 4-CPU Pentium II Xeon SMP (the paper's testbed):")
	m := smp.PentiumIIXeon(4)
	spec := smp.FilterSpec{W: 1024, H: 1024, Stride: 1024, Levels: 5, Kernel: dwt.Irr97, Mode: dwt.VertBlocked}
	work := smp.VerticalWork(cachesim.NewPentiumII(), spec)
	base := m.ParallelTime(work, 1, 5)
	for p := 1; p <= 4; p++ {
		fmt.Printf("  CPUs=%d  vertical filtering speedup %.2f\n", p, base/m.ParallelTime(work, p, 5))
	}
}
