// Medical imaging example: lossless compression of a 12-bit radiograph with
// the reversible 5/3 path (diagnostic imagery cannot tolerate loss), plus a
// lossy preview layer for fast remote viewing — the layered-stream use case
// JPEG2000 was designed for.
package main

import (
	"fmt"
	"log"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func main() {
	// A deterministic 12-bit synthetic radiograph (values 0..4095).
	im := raster.SyntheticRadiograph(512, 512, 2026)

	// Lossless archive copy.
	cs, stats, err := jp2k.Encode(im, jp2k.Options{
		Kernel:   dwt.Rev53,
		BitDepth: 12,
		VertMode: dwt.VertBlocked,
	})
	if err != nil {
		log.Fatal(err)
	}
	back, err := jp2k.Decode(cs, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !raster.Equal(im, back) {
		log.Fatal("medical archive MUST be bit-exact and is not")
	}
	raw := im.Width * im.Height * 2 // 12-bit stored as 2 bytes
	fmt.Printf("archive: %d -> %d bytes (%.2f:1), bit-exact\n",
		raw, stats.Bytes, float64(raw)/float64(stats.Bytes))

	// Layered lossy stream: a thin preview layer a viewer can render first,
	// refined by further layers up to high fidelity.
	cs, _, err = jp2k.Encode(im, jp2k.Options{
		Kernel:   dwt.Irr97,
		BitDepth: 12,
		LayerBPP: []float64{0.25, 1.0, 3.0},
		VertMode: dwt.VertBlocked,
	})
	if err != nil {
		log.Fatal(err)
	}
	for layers := 1; layers <= 3; layers++ {
		prev, err := jp2k.Decode(cs, jp2k.DecodeOptions{MaxLayers: layers})
		if err != nil {
			log.Fatal(err)
		}
		psnr, _ := metrics.PSNR(im, prev, 4095)
		fmt.Printf("preview with %d layer(s): PSNR %.2f dB\n", layers, psnr)
	}
}
