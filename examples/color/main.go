// Color example: three-component coding with the inter-component transforms
// of the paper's Fig. 1 pipeline — the reversible color transform (RCT) for
// lossless RGB and the YCbCr rotation (ICT) for lossy coding — plus
// region-of-interest coding and resolution-scalable decoding. Color images
// are standard Csiz=3 codestreams (EncodeColor wraps EncodePlanar with MCT
// on), so every single-codestream capability — windowed decode, layer
// truncation, the serving subsystem — works on them directly.
package main

import (
	"fmt"
	"log"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func main() {
	// Correlated RGB planes (synthetic scene with per-channel tinting).
	g := raster.Synthetic(256, 256, 77)
	r, b := g.Clone(), g.Clone()
	for i := range g.Pix {
		r.Pix[i] = clamp(g.Pix[i] + int32(i%31) - 15)
		b.Pix[i] = clamp(g.Pix[i] - int32(i%23) + 11)
	}

	// Lossless RGB via the reversible color transform.
	cs, stats, err := jp2k.EncodeColor(r, g, b, jp2k.Options{Kernel: dwt.Rev53})
	if err != nil {
		log.Fatal(err)
	}
	r2, g2, b2, err := jp2k.DecodeColor(cs, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossless RGB: %d bytes (%.2f:1), exact=%v\n",
		stats.Bytes, float64(3*256*256)/float64(stats.Bytes),
		raster.Equal(r, r2) && raster.Equal(g, g2) && raster.Equal(b, b2))

	// Lossy RGB at 1.0 bpp total via the YCbCr rotation.
	cs, stats, err = jp2k.EncodeColor(r, g, b, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{1.0}})
	if err != nil {
		log.Fatal(err)
	}
	r2, g2, b2, err = jp2k.DecodeColor(cs, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []*raster.Image{r2, g2, b2} {
		c.ClampTo8()
	}
	pr, _ := metrics.PSNR(r, r2, 255)
	pg, _ := metrics.PSNR(g, g2, 255)
	pb, _ := metrics.PSNR(b, b2, 255)
	fmt.Printf("lossy RGB @ %.2f bpp: PSNR R %.1f / G %.1f / B %.1f dB\n", stats.BPP, pr, pg, pb)

	// Region of interest: the center decodes at high fidelity even when the
	// overall rate is starved.
	gray := raster.Synthetic(256, 256, 78)
	roi := &jp2k.ROIRect{X0: 96, Y0: 96, X1: 160, Y1: 160}
	cs2, _, err := jp2k.Encode(gray, jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{0.3}, ROI: roi})
	if err != nil {
		log.Fatal(err)
	}
	back, err := jp2k.Decode(cs2, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	back.ClampTo8()
	roiIm, _ := gray.SubImage(roi.X0, roi.Y0, roi.X1, roi.Y1)
	roiBack, _ := back.SubImage(roi.X0, roi.Y0, roi.X1, roi.Y1)
	pROI, _ := metrics.PSNR(roiIm.Clone(), roiBack.Clone(), 255)
	pAll, _ := metrics.PSNR(gray, back, 255)
	fmt.Printf("ROI @ 0.3 bpp: region %.1f dB vs whole image %.1f dB\n", pROI, pAll)

	// Resolution scalability: thumbnails straight from the codestream.
	for d := 0; d <= 3; d++ {
		thumb, err := jp2k.Decode(cs2, jp2k.DecodeOptions{DiscardLevels: d})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("discard %d level(s): %dx%d\n", d, thumb.Width, thumb.Height)
	}
}

func clamp(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
