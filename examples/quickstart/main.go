// Quickstart: compress and decompress an image with the parallel JPEG2000
// codec, losslessly and at a fixed bitrate, and print what happened.
package main

import (
	"fmt"
	"log"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func main() {
	// A deterministic synthetic photograph; any *raster.Image works (see
	// raster.ReadPGM for file input).
	im := raster.Synthetic(512, 512, 7)

	// --- Lossless: reversible 5/3 transform, every coding pass kept.
	cs, stats, err := jp2k.Encode(im, jp2k.Options{
		Kernel:   dwt.Rev53,
		VertMode: dwt.VertBlocked, // the paper's improved vertical filtering
	})
	if err != nil {
		log.Fatal(err)
	}
	back, err := jp2k.Decode(cs, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossless: %d -> %d bytes (%.2f:1), identical=%v\n",
		im.Width*im.Height, stats.Bytes,
		float64(im.Width*im.Height)/float64(stats.Bytes),
		raster.Equal(im, back))

	// --- Lossy: irreversible 9/7 at 0.5 bits per pixel.
	cs, stats, err = jp2k.Encode(im, jp2k.Options{
		Kernel:   dwt.Irr97,
		LayerBPP: []float64{0.5},
		VertMode: dwt.VertBlocked,
	})
	if err != nil {
		log.Fatal(err)
	}
	back, err = jp2k.Decode(cs, jp2k.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	back.ClampTo8()
	psnr, _ := metrics.PSNR(im, back, 255)
	fmt.Printf("lossy:    %.3f bpp, PSNR %.2f dB\n", stats.BPP, psnr)

	// Where the encoder spent its time (the paper's Fig. 3 decomposition).
	tm := stats.Timings
	fmt.Printf("stages:   DWT %v (H %v / V %v), tier-1 %v, rate-alloc %v, tier-2 %v\n",
		tm.IntraComp, tm.DWTDetail.Horizontal, tm.DWTDetail.Vertical,
		tm.Tier1, tm.RateAlloc, tm.Tier2)
}
