// Tiledstream example: why the paper rejects tile-based parallelization.
// Encodes the same image at the same bitrate with progressively smaller
// tiles — the work partition a naive "one tile per CPU" scheme would use —
// and prints the resulting quality loss and blocking artifacts (Figs. 4/5).
package main

import (
	"fmt"
	"log"

	"pj2k/internal/dwt"
	"pj2k/internal/jp2k"
	"pj2k/internal/metrics"
	"pj2k/internal/raster"
)

func main() {
	im := raster.Synthetic(512, 512, 31)
	const bpp = 0.25
	fmt.Printf("512x512 @ %.2f bpp\n\n%-18s %-10s %s\n", bpp, "tiling", "PSNR(dB)", "blockiness at tile grid")
	for _, tile := range []int{0, 256, 128, 64, 32} {
		opts := jp2k.Options{Kernel: dwt.Irr97, LayerBPP: []float64{bpp}, VertMode: dwt.VertBlocked}
		label := "whole image"
		if tile > 0 {
			opts.TileW, opts.TileH = tile, tile
			label = fmt.Sprintf("%dx%d tiles", tile, tile)
		}
		cs, _, err := jp2k.Encode(im, opts)
		if err != nil {
			log.Fatal(err)
		}
		back, err := jp2k.Decode(cs, jp2k.DecodeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		back.ClampTo8()
		psnr, _ := metrics.PSNR(im, back, 255)
		block := 0.0
		if tile > 0 {
			block = metrics.Blockiness(back, tile)
		}
		fmt.Printf("%-18s %-10.2f %.3f\n", label, psnr, block)
	}
	fmt.Println("\nconclusion: partitioning work by tiles buys parallelism at a")
	fmt.Println("visible quality cost; the paper parallelizes the global DWT and")
	fmt.Println("the code-block coding instead (see examples/scaling).")
}
